package soxq

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// This file is the mutation-differential fuzz harness of the annotation
// write path: a seeded generator drives random insert/delete sequences —
// interleaved with queries, compactions and in-flight cursors — against the
// incremental engine AND a plain Go model of the annotation set. After every
// round the incremental engine must agree, across the full execution matrix
// (Exec and Stream over the fuzzConfigs chunk × parallelism grid), with a
// fresh engine built from the model's regenerated document: the
// delta-layered LSM indexes versus a full rebuild.
//
//	go test -fuzz=FuzzMutationEquivalence     # explore new seeds
//	go test -run TestMutationEquivalenceQuick # 200 fixed seeds, tier-1
//
// The model is deliberately trivial — an ordered slice of (layer, bounds)
// records, appended on insert and filtered on delete — so any divergence is
// the engine's. Regeneration preserves document order (inserts append, like
// the engine's Appender), so serialised results compare byte-for-byte.

// modelAnn is one live annotation in the model. Inserted annotations carry
// no id, exactly like the elements InsertAnnotation writes.
type modelAnn struct {
	layer      string
	id         string
	start, end int64
}

func modelXML(anns []modelAnn) string {
	var sb strings.Builder
	sb.WriteString("<corpus>")
	for _, a := range anns {
		if a.id != "" {
			fmt.Fprintf(&sb, `<%s id="%s" start="%d" end="%d"/>`, a.layer, a.id, a.start, a.end)
		} else {
			fmt.Fprintf(&sb, `<%s start="%d" end="%d"/>`, a.layer, a.start, a.end)
		}
	}
	sb.WriteString("</corpus>")
	return sb.String()
}

// modelOracle builds the full-rebuild reference: a fresh engine over the
// model's regenerated document.
func modelOracle(t *testing.T, model []modelAnn) *Engine {
	t.Helper()
	oracle := New()
	if err := oracle.LoadXML("f.xml", []byte(modelXML(model))); err != nil {
		t.Fatalf("model document does not parse: %v\n%s", err, modelXML(model))
	}
	return oracle
}

// mutRegion draws a random valid annotation region.
func mutRegion(r *rand.Rand, span int64) (int64, int64) {
	start := r.Int63n(span)
	end := start + 1 + r.Int63n(span/4)
	if end > span {
		end = span
	}
	return start, end
}

// checkMutationEquivalence compares the incremental engine against the
// full-rebuild oracle for every query: Exec and Stream under each config,
// with exact error equality. full=false checks a two-config slice (the
// per-round interleave); full=true runs the whole fuzzConfigs matrix.
func checkMutationEquivalence(t *testing.T, seed uint64, round int, eng *Engine, model []modelAnn, queries []string, r *rand.Rand, full bool) {
	t.Helper()
	oracle := modelOracle(t, model)
	cfgs := []Config{{}, fuzzConfigs()[r.Intn(len(fuzzConfigs()))]}
	if full {
		cfgs = append([]Config{{}}, fuzzConfigs()...)
	}
	for _, q := range queries {
		var want string
		res, wantErr := oracle.Query(q)
		if wantErr == nil {
			want = res.String()
		}
		prep, err := eng.Prepare(q)
		if err != nil {
			t.Fatalf("seed %d round %d: %q does not compile: %v", seed, round, q, err)
		}
		for _, cfg := range cfgs {
			var gotExec string
			res, execErr := prep.Exec(cfg)
			if execErr == nil {
				gotExec = res.String()
			}
			var gotStream string
			cur, streamErr := prep.Stream(cfg)
			if streamErr == nil {
				gotStream, streamErr = drainStream(cur)
			}
			if fmt.Sprint(wantErr) != fmt.Sprint(execErr) || fmt.Sprint(wantErr) != fmt.Sprint(streamErr) {
				t.Fatalf("seed %d round %d query %q cfg %+v: errors diverge: oracle=%v exec=%v stream=%v",
					seed, round, q, cfg, wantErr, execErr, streamErr)
			}
			if wantErr != nil {
				continue
			}
			if gotExec != want {
				t.Fatalf("seed %d round %d query %q cfg %+v:\nincremental exec %q\nfull rebuild     %q\nmodel: %s",
					seed, round, q, cfg, gotExec, want, modelXML(model))
			}
			if gotStream != want {
				t.Fatalf("seed %d round %d query %q cfg %+v:\nincremental stream %q\nfull rebuild       %q\nmodel: %s",
					seed, round, q, cfg, gotStream, want, modelXML(model))
			}
		}
	}
}

// runMutationFuzzCase executes one seed: generate an initial annotation set,
// then rounds of random writes with equivalence checks in between, an
// in-flight cursor spanning each round's writes, and a final full-matrix
// check before and after an explicit compaction.
func runMutationFuzzCase(t *testing.T, seed uint64) {
	t.Helper()
	r := rand.New(rand.NewSource(int64(seed)))
	span := int64(150 + r.Intn(350))

	var model []modelAnn
	id := 0
	for _, layer := range fuzzLayers {
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			start, end := mutRegion(r, span)
			id++
			model = append(model, modelAnn{layer: layer, id: fmt.Sprintf("%s%d", layer[:1], id), start: start, end: end})
		}
	}
	r.Shuffle(len(model), func(i, j int) { model[i], model[j] = model[j], model[i] })

	eng := New()
	if err := eng.LoadXML("f.xml", []byte(modelXML(model))); err != nil {
		t.Fatalf("seed %d: generated document does not parse: %v", seed, err)
	}
	if r.Intn(2) == 0 {
		// Pre-warm the index so writes derive delta layers; otherwise the
		// first post-write read builds fresh from the snapshot — both paths
		// must satisfy the property.
		if err := eng.BuildIndex("f.xml"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Intn(3) == 0 {
		eng.SetAutoCompactThreshold(1 + r.Intn(5))
	}
	queries := fuzzQueries(r)

	rounds := 1 + r.Intn(3)
	for round := 0; round < rounds; round++ {
		// Open a cursor before this round's writes and drain part of it, so
		// the writes land mid-drain. Its full output must match the oracle
		// of either the pre-write or the post-write model: the run pins
		// whichever snapshot it resolves first, never a mix.
		preModel := append([]modelAnn(nil), model...)
		pinQ := queries[r.Intn(len(queries))]
		pinPrep, err := eng.Prepare(pinQ)
		if err != nil {
			t.Fatalf("seed %d: %q does not compile: %v", seed, pinQ, err)
		}
		pinCur, pinErr := pinPrep.Stream(Config{StreamChunk: 1 + r.Intn(3)})
		var pinned []string
		if pinErr == nil {
			for i := r.Intn(3); i >= 0 && pinCur.Next(); i-- {
				pinned = append(pinned, pinCur.Value().XML())
			}
		}

		ops := 1 + r.Intn(5)
		for o := 0; o < ops; o++ {
			if len(model) > 0 && r.Intn(3) == 0 {
				victim := model[r.Intn(len(model))]
				n, err := eng.DeleteAnnotation("f.xml", victim.layer, victim.start, victim.end)
				if err != nil {
					t.Fatalf("seed %d round %d: delete: %v", seed, round, err)
				}
				removed := 0
				kept := model[:0]
				for _, a := range model {
					if a.layer == victim.layer && a.start == victim.start && a.end == victim.end {
						removed++
						continue
					}
					kept = append(kept, a)
				}
				model = kept
				if n != removed {
					t.Fatalf("seed %d round %d: delete(%s, %d, %d) removed %d, model says %d",
						seed, round, victim.layer, victim.start, victim.end, n, removed)
				}
			} else {
				layer := fuzzLayers[r.Intn(len(fuzzLayers))]
				start, end := mutRegion(r, span)
				if err := eng.InsertAnnotation("f.xml", layer, Region{Start: start, End: end}); err != nil {
					t.Fatalf("seed %d round %d: insert: %v", seed, round, err)
				}
				model = append(model, modelAnn{layer: layer, start: start, end: end})
			}
		}
		if r.Intn(4) == 0 {
			if err := eng.CompactAnnotations("f.xml"); err != nil {
				t.Fatal(err)
			}
		}

		// Finish the in-flight cursor across the writes.
		if pinErr == nil {
			for pinCur.Next() {
				pinned = append(pinned, pinCur.Value().XML())
			}
			if err := pinCur.Err(); err == nil {
				if err := pinCur.Close(); err != nil {
					t.Fatalf("seed %d round %d: pinned close: %v", seed, round, err)
				}
				got := strings.Join(pinned, " ")
				oldWant, newWant := "", ""
				if res, err := modelOracle(t, preModel).Query(pinQ); err == nil {
					oldWant = res.String()
				}
				if res, err := modelOracle(t, model).Query(pinQ); err == nil {
					newWant = res.String()
				}
				if got != oldWant && got != newWant {
					t.Fatalf("seed %d round %d query %q: in-flight cursor mixed generations:\ngot %q\npre-write  %q\npost-write %q",
						seed, round, pinQ, got, oldWant, newWant)
				}
			}
		}

		checkMutationEquivalence(t, seed, round, eng, model, queries, r, round == rounds-1)
	}

	// Compaction is equivalence-preserving: fold everything and re-check.
	if err := eng.CompactAnnotations("f.xml"); err != nil {
		t.Fatal(err)
	}
	checkMutationEquivalence(t, seed, rounds, eng, model, queries[:3], r, false)
}

// FuzzMutationEquivalence is the open-ended harness: `go test
// -fuzz=FuzzMutationEquivalence` mutates seeds beyond the checked-in corpus
// (testdata/fuzz/FuzzMutationEquivalence) looking for a divergence between
// the incremental write path and a full rebuild.
func FuzzMutationEquivalence(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 42, 1234, 31337, 99999, 8675309} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		runMutationFuzzCase(t, seed)
	})
}

// TestMutationEquivalenceQuick is the deterministic tier-1 slice of the
// harness: 200 fixed seeds on every `go test` run.
func TestMutationEquivalenceQuick(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		runMutationFuzzCase(t, seed)
	}
}

package httpserve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// serveOn starts Serve on a loopback listener and returns the base URL, the
// cancel that triggers shutdown, and the channel Serve's result lands on.
func serveOn(t *testing.T, h http.Handler, o Options) (string, context.CancelFunc, chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, l, h, o) }()
	return "http://" + l.Addr().String(), cancel, done
}

// TestServeGracefulShutdown pins the bugfix contract: cancellation (the
// signal path) returns nil from Serve instead of killing the process, and an
// in-flight request completes during the grace period.
func TestServeGracefulShutdown(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(started)
			<-release
		}
		fmt.Fprint(w, "ok")
	})
	base, cancel, done := serveOn(t, h, Options{ShutdownGrace: 5 * time.Second})

	resp, err := http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Fatalf("body = %q", b)
	}
	resp.Body.Close()

	// Start a slow request, then request shutdown while it is in flight.
	slowDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			slowDone <- err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		slowDone <- string(b)
	}()
	<-started
	cancel()
	// New connections are refused once shutdown begins; the listener is
	// closed before Shutdown waits on stragglers.
	time.Sleep(50 * time.Millisecond)
	if _, err := http.Get(base + "/"); err == nil {
		t.Error("listener still accepting after shutdown began")
	}
	close(release)
	if got := <-slowDone; got != "ok" {
		t.Fatalf("in-flight request got %q, want graceful completion", got)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}

// TestServeForceCloseAfterGrace pins the straggler path: a handler that
// never finishes is force-closed once the grace expires, Serve still
// returns (with the overrun error) instead of hanging forever.
func TestServeForceCloseAfterGrace(t *testing.T) {
	started := make(chan struct{})
	hang := make(chan struct{})
	defer close(hang)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-hang
	})
	base, cancel, done := serveOn(t, h, Options{ShutdownGrace: 100 * time.Millisecond})
	go func() {
		resp, err := http.Get(base + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil, want the grace-overrun error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung past the shutdown grace")
	}
}

// TestServeTimeoutsConfigured pins that the defaults land on the server —
// the other half of the bugfix (bare ListenAndServe has none).
func TestServeTimeoutsConfigured(t *testing.T) {
	srv := Options{}.withDefaults().server(http.NotFoundHandler())
	if srv.ReadHeaderTimeout == 0 || srv.ReadTimeout == 0 || srv.IdleTimeout == 0 {
		t.Fatalf("zero timeout left on server: header=%v read=%v idle=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout = %v, want 0 (streams are unbounded)", srv.WriteTimeout)
	}
	custom := Options{WriteTimeout: time.Minute, ShutdownGrace: time.Second}.withDefaults()
	if custom.WriteTimeout != time.Minute || custom.ShutdownGrace != time.Second {
		t.Fatal("explicit options overridden by defaults")
	}
}

// TestServeCancelledBeforeStart: cancelling before any request still shuts
// down cleanly.
func TestServeCancelledBeforeStart(t *testing.T) {
	_, cancel, done := serveOn(t, http.NotFoundHandler(), Options{})
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
}

// Package httpserve is the shared HTTP serving helper of the soxq binaries
// (soxq -ops and the soxqd corpus server): an http.Server configured with
// the timeouts a long-lived process needs, driven to a graceful shutdown by
// context cancellation instead of dying mid-request on the first signal.
//
// The bare http.ListenAndServe it replaces has two production defects: no
// read/header/idle timeouts (one slow-loris client pins a connection
// forever), and no shutdown path at all — SIGINT kills the process in the
// middle of whatever scrape or query stream is in flight. Serve installs
// the timeouts, waits for ctx cancellation (the callers wire
// signal.NotifyContext), drains in-flight requests for ShutdownGrace, and
// only then force-closes what remains.
package httpserve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Options tunes the server; every zero field takes the documented default.
type Options struct {
	// ReadHeaderTimeout bounds how long a connection may take to send the
	// request headers (the slow-loris guard). Default 10s.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the whole request including the body
	// (document uploads). Default 2m.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response. The default 0 means no
	// limit: streamed query results legitimately run for as long as the
	// client keeps reading, and request-context cancellation — not a wall
	// clock — is the abandonment signal. Ops-only servers that never
	// stream unbounded responses should set one.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit between
	// requests. Default 2m.
	IdleTimeout time.Duration
	// ShutdownGrace is how long a cancelled Serve waits for in-flight
	// requests (and streams) to finish before force-closing their
	// connections. Default 10s.
	ShutdownGrace time.Duration
}

func (o Options) withDefaults() Options {
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = 10 * time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 2 * time.Minute
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.ShutdownGrace == 0 {
		o.ShutdownGrace = 10 * time.Second
	}
	return o
}

// server builds the configured http.Server.
func (o Options) server(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: o.ReadHeaderTimeout,
		ReadTimeout:       o.ReadTimeout,
		WriteTimeout:      o.WriteTimeout,
		IdleTimeout:       o.IdleTimeout,
	}
}

// ListenAndServe listens on addr and calls Serve. It returns the listen
// error, the serve error, or nil after a graceful (ctx-driven) shutdown.
func ListenAndServe(ctx context.Context, addr string, h http.Handler, o Options) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, l, h, o)
}

// Serve serves h on l until ctx is cancelled, then shuts down gracefully:
// the listener closes immediately (no new connections), in-flight requests
// get ShutdownGrace to finish, and stragglers are force-closed. A clean
// shutdown returns nil; an over-grace shutdown returns the Shutdown error
// after the force-close completes. Serve owns l and closes it.
func Serve(ctx context.Context, l net.Listener, h http.Handler, o Options) error {
	o = o.withDefaults()
	srv := o.server(h)
	errch := make(chan error, 1)
	go func() { errch <- srv.Serve(l) }()
	select {
	case err := <-errch:
		// Serve failed on its own (bad listener, accept error) before any
		// shutdown was requested.
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), o.ShutdownGrace)
	defer cancel()
	err := srv.Shutdown(sctx)
	if err != nil {
		// Grace expired with requests still streaming: force-close them so
		// the process can actually exit, then report the overrun.
		srv.Close()
	}
	if serveErr := <-errch; !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}

package tree

import (
	"fmt"
)

// This file implements the document write path: append-only snapshots.
//
// A sealed Doc never changes. Instead, a mutation derives a new *Doc snapshot
// that shares the column arrays of its ancestors:
//
//   - Appends (Appender) push new rows beyond every older snapshot's slice
//     length — old snapshots cannot see them because their slice headers cap
//     reads — and override the two subtree sizes that grow (document node and
//     root element) in a small per-snapshot sizeHead array.
//   - Deletes (WithTombstones) mark whole subtrees dead in a copy-on-write
//     bitset; the pre/size shape is untouched, traversal just skips dead
//     nodes.
//
// Writers must be serialized by the caller and must always mutate the newest
// snapshot (the engine holds its write lock across a mutation); readers of
// any snapshot are lock-free and never disturbed. This is the storage half of
// the LSM-style annotation write path — internal/core layers the region-index
// delta merge on top.

// RootElement returns the pre of the document's root element, or -1 when the
// document node has no element child (possible for fragments).
func (d *Doc) RootElement() int32 {
	for c := d.FirstChild(0); c >= 0; c = d.NextSibling(c) {
		if d.kind[c] == ElementNode {
			return c
		}
	}
	return -1
}

// cloneSnapshot derives a new snapshot sharing all column storage with d.
// The caller adjusts sizeHead/dead as its mutation requires. (Doc holds a
// sync.Once and a sync.Map, so snapshots are built field-by-field rather than
// by struct copy.)
func (d *Doc) cloneSnapshot() *Doc {
	c := &Doc{
		Name:     d.Name,
		Fragment: d.Fragment,
		kind:     d.kind,
		name:     d.name,
		size:     d.size,
		level:    d.level,
		parent:   d.parent,
		valOff:   d.valOff,
		valLen:   d.valLen,
		attOwner: d.attOwner,
		attName:  d.attName,
		attValOf: d.attValOf,
		attValLn: d.attValLn,
		attFirst: d.attFirst,
		content:  d.content,
		dict:     d.dict,
		order:    d.order,
		mutSeq:   d.mutSeq + 1,
		sizeHead: d.sizeHead,
		dead:     d.dead,
		deadCnt:  d.deadCnt,
	}
	if d.base != nil {
		c.base = d.base
	} else {
		c.base = d
	}
	return c
}

// WithTombstones returns a snapshot with the subtrees rooted at the given
// pres marked deleted. The document node and the root element cannot be
// tombstoned; already-dead pres are rejected (the caller addressed a node the
// snapshot no longer contains).
func (d *Doc) WithTombstones(pres []int32) (*Doc, error) {
	if len(pres) == 0 {
		return d, nil
	}
	root := d.RootElement()
	n := int32(len(d.kind))
	c := d.cloneSnapshot()
	nd := make([]uint64, (int(n)+63)/64)
	copy(nd, d.dead)
	for _, pre := range pres {
		switch {
		case pre <= 0 || pre >= n:
			return nil, fmt.Errorf("tree: tombstone pre %d out of range", pre)
		case pre == root:
			return nil, fmt.Errorf("tree: cannot tombstone the root element")
		case !d.Alive(pre):
			return nil, fmt.Errorf("tree: node %d is already deleted", pre)
		}
		for p := pre; p <= pre+d.Size(pre); p++ {
			w, b := p>>6, uint(p)&63
			if nd[w]&(1<<b) == 0 {
				nd[w] |= 1 << b
				c.deadCnt++
			}
		}
	}
	c.dead = nd
	return c, nil
}

// Appender extends a sealed document with new subtrees appended as the last
// children of its root element, producing a new snapshot on Commit. The event
// API mirrors Builder:
//
//	a, err := tree.NewAppender(doc)
//	pre := a.StartElement("hit")
//	a.Attr("start", "10")
//	a.Attr("end", "20")
//	a.EndElement()
//	doc2, err := a.Commit()
//
// The appended rows land beyond doc's slice lengths, so doc (and every older
// snapshot) is unaffected. An Appender is single-use and not safe for
// concurrent use; callers serialize writers and always append to the newest
// snapshot.
type Appender struct {
	d   *Doc // the snapshot under construction
	src *Doc // the snapshot being extended

	open       []int32 // stack of open appended elements; open[0] = root element
	inTag      bool
	err        error
	finished   bool
	baseN      int32 // node count before this append session
	rootElem   int32
	dictCloned bool
}

// NewAppender starts an append session on d. It fails when the document has
// no root element or has content after it (appending as last children of the
// root element requires the root element's subtree to end the document).
func NewAppender(d *Doc) (*Appender, error) {
	root := d.RootElement()
	if root < 0 {
		return nil, fmt.Errorf("tree: document %q has no root element", d.Name)
	}
	n := int32(len(d.kind))
	if root+d.Size(root) != n-1 {
		return nil, fmt.Errorf("tree: document %q has content after the root element", d.Name)
	}
	return &Appender{
		d:        d.cloneSnapshot(),
		src:      d,
		open:     []int32{root},
		baseN:    n,
		rootElem: root,
	}, nil
}

func (a *Appender) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("tree: "+format, args...)
	}
}

// intern resolves a name against the shared dictionary, cloning it
// copy-on-write before the first genuinely new name is added.
func (a *Appender) intern(name string) int32 {
	if id, ok := a.d.dict.Lookup(name); ok {
		return id
	}
	if !a.dictCloned {
		a.d.dict = a.d.dict.clone()
		a.dictCloned = true
	}
	return a.d.dict.Intern(name)
}

func (a *Appender) pushNode(k Kind, nameID int32, value []byte) int32 {
	d := a.d
	pre := int32(len(d.kind))
	parent := a.open[len(a.open)-1]
	d.kind = append(d.kind, k)
	d.name = append(d.name, nameID)
	d.size = append(d.size, 0)
	d.level = append(d.level, d.level[parent]+1)
	d.parent = append(d.parent, parent)
	if value != nil {
		d.valOff = append(d.valOff, int64(len(d.content)))
		d.valLen = append(d.valLen, int32(len(value)))
		d.content = append(d.content, value...)
	} else {
		d.valOff = append(d.valOff, 0)
		d.valLen = append(d.valLen, 0)
	}
	return pre
}

// StartElement opens an element node and returns its pre in the snapshot
// Commit will produce.
func (a *Appender) StartElement(name string) int32 {
	if a.err != nil {
		return -1
	}
	if a.finished {
		a.fail("StartElement after Commit")
		return -1
	}
	pre := a.pushNode(ElementNode, a.intern(name), nil)
	a.open = append(a.open, pre)
	a.inTag = true
	return pre
}

// Attr attaches an attribute to the most recently opened element.
func (a *Appender) Attr(name, value string) {
	if a.err != nil {
		return
	}
	if !a.inTag || len(a.open) <= 1 {
		a.fail("Attr(%q) outside an open tag", name)
		return
	}
	d := a.d
	owner := a.open[len(a.open)-1]
	nameID := a.intern(name)
	for i := d.attFirstRow(owner); i < int32(len(d.attOwner)); i++ {
		if d.attName[i] == nameID {
			a.fail("duplicate attribute %q on element %q", name, d.NodeName(owner))
			return
		}
	}
	d.attOwner = append(d.attOwner, owner)
	d.attName = append(d.attName, nameID)
	d.attValOf = append(d.attValOf, int64(len(d.content)))
	d.attValLn = append(d.attValLn, int32(len(value)))
	d.content = append(d.content, value...)
}

// Text appends a text node (empty text is dropped; adjacent texts appended in
// this session are merged, like Builder — never with pre-existing nodes,
// whose rows are shared with older snapshots).
func (a *Appender) Text(value string) {
	if a.err != nil || value == "" {
		return
	}
	if a.finished {
		a.fail("Text after Commit")
		return
	}
	d := a.d
	if n := int32(len(d.kind)); n > a.baseN && d.kind[n-1] == TextNode && !a.inTag &&
		d.parent[n-1] == a.open[len(a.open)-1] &&
		d.valOff[n-1]+int64(d.valLen[n-1]) == int64(len(d.content)) {
		d.content = append(d.content, value...)
		d.valLen[n-1] += int32(len(value))
		return
	}
	a.pushNode(TextNode, NoName, []byte(value))
	a.inTag = false
}

// Comment appends a comment node.
func (a *Appender) Comment(value string) {
	if a.err != nil {
		return
	}
	a.pushNode(CommentNode, NoName, []byte(value))
	a.inTag = false
}

// EndElement closes the innermost open appended element and fixes its subtree
// size.
func (a *Appender) EndElement() {
	if a.err != nil {
		return
	}
	if len(a.open) <= 1 {
		a.fail("EndElement without matching StartElement")
		return
	}
	pre := a.open[len(a.open)-1]
	a.open = a.open[:len(a.open)-1]
	a.d.size[pre] = int32(len(a.d.kind)) - pre - 1
	a.inTag = false
}

// Commit seals the append session and returns the new snapshot. The appender
// must not be reused.
func (a *Appender) Commit() (*Doc, error) {
	if a.err != nil {
		return nil, a.err
	}
	if len(a.open) != 1 {
		return nil, fmt.Errorf("%w: %q", ErrUnclosedElement, a.d.NodeName(a.open[len(a.open)-1]))
	}
	a.finished = true
	d := a.d
	n := int32(len(d.kind))
	added := n - a.baseN

	// Size overrides: only the document node and the root element grew. The
	// head is rebuilt per snapshot (never mutated in place — the previous
	// snapshot may share it).
	head := make([]int32, a.rootElem+1)
	for pre := int32(0); pre <= a.rootElem; pre++ {
		head[pre] = a.src.Size(pre)
	}
	head[0] += added
	head[a.rootElem] += added
	d.sizeHead = head

	// Extend attFirst for the appended nodes. The previous terminator
	// attFirst[baseN] already equals the first appended attribute row, so the
	// shared array extends in place.
	row := d.attFirst[a.baseN]
	for pre := a.baseN + 1; pre <= n; pre++ {
		for row < int32(len(d.attOwner)) && d.attOwner[row] < pre {
			row++
		}
		d.attFirst = append(d.attFirst, row)
	}

	// The tombstone bitset (when present) must cover the appended pres; the
	// extra words are zero, so the new nodes are alive everywhere.
	for int64(len(d.dead))*64 < int64(n) && d.dead != nil {
		d.dead = append(d.dead, 0)
	}
	return d, nil
}

package tree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// docSpec drives random document construction through the Builder.
type docSpec struct {
	Ops []uint8
}

// Generate implements quick.Generator.
func (docSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(120)
	s := docSpec{Ops: make([]uint8, n)}
	for i := range s.Ops {
		s.Ops[i] = uint8(r.Intn(256))
	}
	return reflect.ValueOf(s)
}

// build replays the spec as balanced builder events.
func (s docSpec) build() (*Doc, error) {
	b := NewBuilder("quick.xml")
	names := []string{"a", "b", "c"}
	depth := 0
	b.StartElement("root")
	depth++
	for _, op := range s.Ops {
		switch op % 5 {
		case 0, 1:
			b.StartElement(names[int(op/5)%len(names)])
			if op%7 == 0 {
				b.Attr("k", "v")
			}
			depth++
		case 2:
			if depth > 1 {
				b.EndElement()
				depth--
			}
		case 3:
			b.Text("t")
		case 4:
			b.Comment("c")
		}
	}
	for depth > 0 {
		b.EndElement()
		depth--
	}
	return b.Done()
}

// TestQuickBuilderInvariants: any balanced event stream yields a document
// that passes Validate, whose navigation agrees with the parent column, and
// whose serialisation re-parses to the same shape.
func TestQuickBuilderInvariants(t *testing.T) {
	f := func(spec docSpec) bool {
		d, err := spec.build()
		if err != nil {
			return false
		}
		if err := d.Validate(); err != nil {
			return false
		}
		// FirstChild/NextSibling enumeration agrees with the parent column.
		for pre := int32(0); pre < int32(d.NumNodes()); pre++ {
			var viaNav []int32
			for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
				viaNav = append(viaNav, c)
			}
			var viaParent []int32
			for c := int32(0); c < int32(d.NumNodes()); c++ {
				if d.Parent(c) == pre {
					viaParent = append(viaParent, c)
				}
			}
			if len(viaNav) != len(viaParent) {
				return false
			}
			for i := range viaNav {
				if viaNav[i] != viaParent[i] {
					return false
				}
			}
		}
		// Subtree sizes sum up: size(n) == count of nodes with an ancestor n.
		for pre := int32(0); pre < int32(d.NumNodes()); pre++ {
			count := int32(0)
			for c := int32(0); c < int32(d.NumNodes()); c++ {
				if d.IsAncestorOf(pre, c) {
					count++
				}
			}
			if count != d.Size(pre) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package tree

import (
	"strings"
	"testing"
)

// appendHit appends <hit start end> under the root element and commits.
func appendHit(t *testing.T, d *Doc, start, end string) (*Doc, int32) {
	t.Helper()
	a, err := NewAppender(d)
	if err != nil {
		t.Fatalf("NewAppender: %v", err)
	}
	pre := a.StartElement("hit")
	a.Attr("start", start)
	a.Attr("end", end)
	a.EndElement()
	d2, err := a.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := d2.Validate(); err != nil {
		t.Fatalf("Validate after append: %v", err)
	}
	return d2, pre
}

func TestAppenderSnapshot(t *testing.T) {
	d := buildSample(t)
	beforeXML := d.XMLString(0)
	beforeN := d.NumNodes()
	beforeSize0, beforeSize1 := d.Size(0), d.Size(1)

	d2, pre := appendHit(t, d, "5", "9")

	// The original snapshot is byte-for-byte untouched.
	if d.NumNodes() != beforeN || d.Size(0) != beforeSize0 || d.Size(1) != beforeSize1 {
		t.Fatalf("base snapshot changed: n=%d size0=%d size1=%d", d.NumNodes(), d.Size(0), d.Size(1))
	}
	if got := d.XMLString(0); got != beforeXML {
		t.Fatalf("base serialisation changed:\n%s", got)
	}
	if _, ok := d.Dict().Lookup("hit"); ok {
		t.Fatal("base dictionary gained the appended name (CoW broken)")
	}

	// The new snapshot sees the appended element as the root's last child.
	if d2.NumNodes() != beforeN+1 {
		t.Fatalf("NumNodes = %d, want %d", d2.NumNodes(), beforeN+1)
	}
	if pre != int32(beforeN) {
		t.Fatalf("appended pre = %d, want %d", pre, beforeN)
	}
	if d2.Size(0) != beforeSize0+1 || d2.Size(1) != beforeSize1+1 {
		t.Fatalf("grown sizes = %d/%d, want %d/%d", d2.Size(0), d2.Size(1), beforeSize0+1, beforeSize1+1)
	}
	if d2.Parent(pre) != 1 || d2.Level(pre) != 2 {
		t.Fatalf("appended node parent/level = %d/%d", d2.Parent(pre), d2.Level(pre))
	}
	startID, _ := d2.Dict().Lookup("start")
	if ai := d2.Attr(pre, startID); ai < 0 || d2.AttrValue(ai) != "5" {
		t.Fatalf("appended start attribute not found (row %d)", ai)
	}
	if got := d2.XMLString(pre); got != `<hit start="5" end="9"/>` {
		t.Fatalf("appended XML = %s", got)
	}
	if !strings.Contains(d2.XMLString(0), `<hit start="5" end="9"/></site>`) {
		t.Fatalf("snapshot XML misses appended child: %s", d2.XMLString(0))
	}
	if d2.MutSeq() != d.MutSeq()+1 {
		t.Fatalf("MutSeq = %d, want %d", d2.MutSeq(), d.MutSeq()+1)
	}
	if d2.OrderKey() != d.OrderKey() {
		t.Fatal("snapshot changed the document order key")
	}

	// ElementsByName merges the appended tail; the base list is unchanged.
	hitID, _ := d2.Dict().Lookup("hit")
	if got := d2.ElementsByName(hitID); len(got) != 1 || got[0] != pre {
		t.Fatalf("ElementsByName(hit) = %v", got)
	}
	aID, _ := d.Dict().Lookup("a")
	if got := d2.ElementsByName(aID); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ElementsByName(a) = %v", got)
	}
}

func TestAppenderChainAndText(t *testing.T) {
	d := buildSample(t)
	d2, _ := appendHit(t, d, "1", "2")
	a, err := NewAppender(d2)
	if err != nil {
		t.Fatalf("NewAppender on snapshot: %v", err)
	}
	a.StartElement("note")
	a.Text("one ")
	a.Text("two") // merges with the previous in-session text
	a.EndElement()
	d3, err := a.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := d3.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d3.MutSeq() != 2 {
		t.Fatalf("MutSeq = %d, want 2", d3.MutSeq())
	}
	if d3.NumNodes() != d2.NumNodes()+2 {
		t.Fatalf("text merge failed: %d nodes", d3.NumNodes()-d2.NumNodes())
	}
	if !strings.HasSuffix(d3.XMLString(0), `<note>one two</note></site>`) {
		t.Fatalf("chained snapshot XML: %s", d3.XMLString(0))
	}
	// The middle snapshot still ends with the hit element.
	if !strings.HasSuffix(d2.XMLString(0), `<hit start="1" end="2"/></site>`) {
		t.Fatalf("middle snapshot XML changed: %s", d2.XMLString(0))
	}
}

func TestAppenderErrors(t *testing.T) {
	d := buildSample(t)
	a, _ := NewAppender(d)
	a.StartElement("x")
	if _, err := a.Commit(); err == nil {
		t.Fatal("Commit with open element succeeded")
	}

	a2, _ := NewAppender(d)
	a2.StartElement("x")
	a2.Text("t")
	a2.Attr("late", "1")
	a2.EndElement()
	if _, err := a2.Commit(); err == nil {
		t.Fatal("Attr after content not rejected")
	}

	a3, _ := NewAppender(d)
	a3.StartElement("x")
	a3.Attr("k", "1")
	a3.Attr("k", "2")
	a3.EndElement()
	if _, err := a3.Commit(); err == nil {
		t.Fatal("duplicate attribute not rejected")
	}

	a4, _ := NewAppender(d)
	a4.EndElement()
	if _, err := a4.Commit(); err == nil {
		t.Fatal("EndElement underflow not rejected")
	}
}

func TestWithTombstones(t *testing.T) {
	d := buildSample(t)
	// pre 4 = <b x y>two<c/>three</b> (subtree 4..7)
	d2, err := d.WithTombstones([]int32{4})
	if err != nil {
		t.Fatalf("WithTombstones: %v", err)
	}
	if err := d2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("base Validate: %v", err)
	}
	for pre := int32(0); pre < int32(d.NumNodes()); pre++ {
		if !d.Alive(pre) {
			t.Fatalf("base node %d died", pre)
		}
		wantDead := pre >= 4 && pre <= 7
		if d2.Alive(pre) == wantDead {
			t.Fatalf("snapshot Alive(%d) = %v", pre, d2.Alive(pre))
		}
	}
	// Traversal, serialisation and string value all skip the dead subtree.
	if got := d2.XMLString(0); got != `<site id="s1"><a>one</a><!--note--><?pi data?></site>` {
		t.Fatalf("tombstoned XML = %s", got)
	}
	if got := d2.StringValue(1); got != "one" {
		t.Fatalf("StringValue = %q", got)
	}
	if c := d2.NextSibling(2); c != 8 {
		t.Fatalf("NextSibling(a) = %d, want comment 8", c)
	}
	bID, _ := d.Dict().Lookup("b")
	if got := d2.ElementsByName(bID); len(got) != 0 {
		t.Fatalf("ElementsByName(b) = %v, want empty", got)
	}

	// Invalid targets.
	if _, err := d2.WithTombstones([]int32{5}); err == nil {
		t.Fatal("tombstoning inside a dead subtree succeeded")
	}
	if _, err := d.WithTombstones([]int32{1}); err == nil {
		t.Fatal("tombstoning the root element succeeded")
	}
	if _, err := d.WithTombstones([]int32{0}); err == nil {
		t.Fatal("tombstoning the document node succeeded")
	}
	if _, err := d.WithTombstones([]int32{99}); err == nil {
		t.Fatal("out-of-range tombstone succeeded")
	}
}

func TestAppendAfterTombstone(t *testing.T) {
	d := buildSample(t)
	d2, err := d.WithTombstones([]int32{2}) // <a>one</a>
	if err != nil {
		t.Fatalf("WithTombstones: %v", err)
	}
	d3, pre := appendHit(t, d2, "0", "3")
	if !d3.Alive(pre) {
		t.Fatal("appended node dead")
	}
	if d3.Alive(2) {
		t.Fatal("tombstone lost across append")
	}
	if !strings.Contains(d3.XMLString(0), `<hit start="0" end="3"/>`) {
		t.Fatalf("append after tombstone: %s", d3.XMLString(0))
	}
}

package tree

import (
	"strings"
	"testing"
)

// buildSample constructs:
//
//	<site id="s1"><a>one</a><b x="1" y="2">two<c/>three</b><!--note--><?pi data?></site>
func buildSample(t *testing.T) *Doc {
	t.Helper()
	b := NewBuilder("sample.xml")
	b.StartElement("site")
	b.Attr("id", "s1")
	b.StartElement("a")
	b.Text("one")
	b.EndElement()
	b.StartElement("b")
	b.Attr("x", "1")
	b.Attr("y", "2")
	b.Text("two")
	b.StartElement("c")
	b.EndElement()
	b.Text("three")
	b.EndElement()
	b.Comment("note")
	b.PI("pi", "data")
	b.EndElement()
	d, err := b.Done()
	if err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

func TestBuilderShape(t *testing.T) {
	d := buildSample(t)
	// pre: 0 doc, 1 site, 2 a, 3 text(one), 4 b, 5 text(two), 6 c,
	// 7 text(three), 8 comment, 9 pi
	if d.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", d.NumNodes())
	}
	wantKinds := []Kind{DocumentNode, ElementNode, ElementNode, TextNode,
		ElementNode, TextNode, ElementNode, TextNode, CommentNode, PINode}
	for pre, k := range wantKinds {
		if d.Kind(int32(pre)) != k {
			t.Fatalf("kind[%d] = %v, want %v", pre, d.Kind(int32(pre)), k)
		}
	}
	if d.Size(0) != 9 || d.Size(1) != 8 || d.Size(4) != 3 || d.Size(6) != 0 {
		t.Fatalf("sizes wrong: %d %d %d %d", d.Size(0), d.Size(1), d.Size(4), d.Size(6))
	}
	if d.Level(0) != 0 || d.Level(1) != 1 || d.Level(6) != 3 {
		t.Fatal("levels wrong")
	}
	if d.Parent(6) != 4 || d.Parent(1) != 0 || d.Parent(0) != -1 {
		t.Fatal("parents wrong")
	}
	if d.NodeName(1) != "site" || d.NodeName(4) != "b" || d.NodeName(9) != "pi" {
		t.Fatal("names wrong")
	}
	if d.Value(3) != "one" || d.Value(7) != "three" || d.Value(8) != "note" {
		t.Fatal("values wrong")
	}
}

func TestAttributes(t *testing.T) {
	d := buildSample(t)
	if d.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d", d.NumAttrs())
	}
	if v, ok := d.AttrByName(1, "id"); !ok || v != "s1" {
		t.Fatalf("site/@id = %q,%v", v, ok)
	}
	if v, ok := d.AttrByName(4, "y"); !ok || v != "2" {
		t.Fatalf("b/@y = %q,%v", v, ok)
	}
	if _, ok := d.AttrByName(4, "nope"); ok {
		t.Fatal("nonexistent attribute found")
	}
	if _, ok := d.AttrByName(2, "x"); ok {
		t.Fatal("attribute of other node found")
	}
	lo, hi := d.Attrs(4)
	if hi-lo != 2 || d.AttrName(lo) != "x" || d.AttrName(lo+1) != "y" {
		t.Fatal("attr range of b wrong")
	}
	if lo, hi := d.Attrs(2); hi != lo {
		t.Fatal("element a should have no attributes")
	}
}

func TestNavigation(t *testing.T) {
	d := buildSample(t)
	if d.FirstChild(0) != 1 || d.FirstChild(1) != 2 || d.FirstChild(6) != -1 {
		t.Fatal("FirstChild wrong")
	}
	if d.NextSibling(2) != 4 || d.NextSibling(4) != 8 || d.NextSibling(9) != -1 {
		t.Fatal("NextSibling wrong")
	}
	kids := d.Children(1)
	want := []int32{2, 4, 8, 9}
	if len(kids) != len(want) {
		t.Fatalf("Children(1) = %v", kids)
	}
	for i := range want {
		if kids[i] != want[i] {
			t.Fatalf("Children(1) = %v, want %v", kids, want)
		}
	}
	if !d.IsAncestorOf(1, 6) || !d.IsAncestorOf(4, 6) || d.IsAncestorOf(6, 6) || d.IsAncestorOf(2, 4) {
		t.Fatal("IsAncestorOf wrong")
	}
}

func TestStringValue(t *testing.T) {
	d := buildSample(t)
	if got := d.StringValue(1); got != "onetwothree" {
		t.Fatalf("StringValue(site) = %q", got)
	}
	if got := d.StringValue(4); got != "twothree" {
		t.Fatalf("StringValue(b) = %q", got)
	}
	if got := d.StringValue(3); got != "one" {
		t.Fatalf("StringValue(text) = %q", got)
	}
	if got := d.StringValue(6); got != "" {
		t.Fatalf("StringValue(c) = %q", got)
	}
	if got := d.StringValue(8); got != "note" {
		t.Fatalf("StringValue(comment) = %q", got)
	}
}

func TestElementsByName(t *testing.T) {
	d := buildSample(t)
	id, ok := d.Dict().Lookup("b")
	if !ok {
		t.Fatal("name b not interned")
	}
	pres := d.ElementsByName(id)
	if len(pres) != 1 || pres[0] != 4 {
		t.Fatalf("ElementsByName(b) = %v", pres)
	}
	if cID, ok := d.Dict().Lookup("c"); !ok || len(d.ElementsByName(cID)) != 1 {
		t.Fatal("ElementsByName(c) wrong")
	}
}

func TestSerialize(t *testing.T) {
	d := buildSample(t)
	got := d.XMLString(0)
	want := `<site id="s1"><a>one</a><b x="1" y="2">two<c/>three</b><!--note--><?pi data?></site>`
	if got != want {
		t.Fatalf("serialize:\n got %s\nwant %s", got, want)
	}
	if got := d.XMLString(4); got != `<b x="1" y="2">two<c/>three</b>` {
		t.Fatalf("serialize subtree: %s", got)
	}
}

func TestEscaping(t *testing.T) {
	b := NewBuilder("esc.xml")
	b.StartElement("e")
	b.Attr("a", `x<&>"y`)
	b.Text(`1 < 2 & "3"`)
	b.EndElement()
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	got := d.XMLString(0)
	want := `<e a="x&lt;&amp;&gt;&quot;y">1 &lt; 2 &amp; "3"</e>`
	if got != want {
		t.Fatalf("escaping:\n got %s\nwant %s", got, want)
	}
}

func TestTextMerging(t *testing.T) {
	b := NewBuilder("merge.xml")
	b.StartElement("e")
	b.Text("ab")
	b.Text("cd")
	b.Text("") // dropped
	b.EndElement()
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 3 {
		t.Fatalf("adjacent text should merge, NumNodes = %d", d.NumNodes())
	}
	if d.Value(2) != "abcd" {
		t.Fatalf("merged text = %q", d.Value(2))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad.xml")
	b.StartElement("e")
	if _, err := b.Done(); err == nil {
		t.Fatal("unclosed element must fail")
	}

	b = NewBuilder("bad2.xml")
	b.EndElement()
	b.StartElement("e")
	b.EndElement()
	if _, err := b.Done(); err == nil {
		t.Fatal("unbalanced EndElement must fail")
	}

	b = NewBuilder("bad3.xml")
	b.StartElement("e")
	b.Text("t")
	b.Attr("late", "1")
	b.EndElement()
	if _, err := b.Done(); err == nil {
		t.Fatal("attribute after content must fail")
	}

	b = NewBuilder("bad4.xml")
	b.StartElement("e")
	b.Attr("a", "1")
	b.Attr("a", "2")
	b.EndElement()
	if _, err := b.Done(); err == nil {
		t.Fatal("duplicate attribute must fail")
	}
}

func TestDeepDocument(t *testing.T) {
	b := NewBuilder("deep.xml")
	const depth = 500
	for i := 0; i < depth; i++ {
		b.StartElement("d")
	}
	b.Text("bottom")
	for i := 0; i < depth; i++ {
		b.EndElement()
	}
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Level(int32(depth)) != int16(depth) {
		t.Fatalf("level = %d", d.Level(int32(depth)))
	}
	if !strings.Contains(d.XMLString(0), "bottom") {
		t.Fatal("serialization lost the leaf")
	}
}

func TestDictBasics(t *testing.T) {
	dict := NewDict()
	a := dict.Intern("alpha")
	b := dict.Intern("beta")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if dict.Intern("alpha") != a {
		t.Fatal("re-intern changed id")
	}
	if dict.Name(a) != "alpha" || dict.Len() != 2 {
		t.Fatal("dict lookup broken")
	}
	if _, ok := dict.Lookup("gamma"); ok {
		t.Fatal("unknown name found")
	}
}

// Package tree implements the shredded XML document store that the engine
// evaluates queries against. Like MonetDB/XQuery, each document is a set of
// columns indexed by the pre-order rank of the node (the "pre" value, which
// doubles as node id, section 4.3 of the paper) together with a subtree size
// and level per node. This pre/size/level encoding supports all XPath axes
// and the staircase join, while attribute values and text content live in a
// byte arena so that multi-gigabyte documents do not drown the Go heap in
// small strings.
package tree

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a node.
type Kind uint8

const (
	// DocumentNode is the virtual root; pre 0 of every Doc.
	DocumentNode Kind = iota
	// ElementNode is an XML element.
	ElementNode
	// TextNode is character data.
	TextNode
	// CommentNode is an XML comment.
	CommentNode
	// PINode is a processing instruction.
	PINode
)

func (k Kind) String() string {
	switch k {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case PINode:
		return "processing-instruction"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NoName marks nodes without a name (text, comments, the document node).
const NoName int32 = -1

// Doc is one shredded XML document or constructed fragment. All slices are
// indexed by pre-order rank; pre 0 is always the document node. A Doc is
// immutable after the Builder seals it and therefore safe for concurrent
// readers.
//
// Mutation produces a new Doc snapshot instead of changing this one: an
// Appender appends subtrees under the root element and WithTombstones marks
// subtrees deleted. Snapshots share the column arrays of their ancestors
// (appends land beyond every older snapshot's slice length, tombstones live
// in a copy-on-write bitset), so in-flight readers of an older snapshot are
// never disturbed — see mutate.go.
type Doc struct {
	// Name is the document URI under which the document was loaded, or ""
	// for constructed fragments.
	Name string
	// Fragment marks docs created by node constructors rather than parsing.
	Fragment bool

	kind   []Kind
	name   []int32 // dict id of element name / PI target, or NoName
	size   []int32 // number of descendants of the node
	level  []int16 // depth; document node is 0
	parent []int32 // pre of parent; -1 for the document node

	// Text/comment/PI content: slice [valOff:valOff+valLen] of content.
	valOff []int64
	valLen []int32

	// Attribute table, clustered on owner pre (ascending). attFirst[pre]
	// gives the first attribute row of a node; attFirst[pre+1] bounds it
	// (attFirst has len(kind)+1 entries).
	attOwner []int32
	attName  []int32
	attValOf []int64
	attValLn []int32
	attFirst []int32

	content []byte // arena holding every text and attribute value
	dict    *Dict  // element/attribute name dictionary
	order   int64  // global creation rank, for stable cross-document order

	elemIndexOnce sync.Once
	elemIndex     map[int32][]int32 // element name id -> ascending pre list

	// Snapshot state (nil/zero on a pristine, Builder-sealed doc).
	// base points at the pristine ancestor of a mutation lineage; mutSeq
	// counts the mutations applied since (0 on the pristine doc). sizeHead
	// overrides size[0..len) — appending under the root element grows the
	// document node's and root element's subtree without touching the size
	// column older snapshots still read. dead is the tombstone bitset
	// (whole subtrees; copy-on-write per delete); elemSnap memoizes the
	// snapshot's merged live element-name lists.
	base     *Doc
	mutSeq   uint64
	sizeHead []int32
	dead     []uint64
	deadCnt  int32
	elemSnap sync.Map // element name id -> []int32
}

var docOrderCounter atomic.Int64

// OrderKey returns a process-wide unique rank assigned at construction time.
// XQuery leaves the relative document order of distinct trees implementation
// defined; we order them by creation, which is stable within a session.
// Mutation snapshots keep their ancestor's rank: the document's identity (and
// its order relative to other documents) is stable across writes.
func (d *Doc) OrderKey() int64 { return d.order }

// MutSeq returns the number of mutations (append/tombstone snapshots) between
// the pristine document and this snapshot; 0 for a Builder-sealed doc. The
// (OrderKey, MutSeq) pair identifies a document generation.
func (d *Doc) MutSeq() uint64 { return d.mutSeq }

// Alive reports whether node pre is part of this snapshot's logical document
// (not tombstoned). Tombstones always cover whole subtrees, so every ancestor
// of a live node is live.
func (d *Doc) Alive(pre int32) bool {
	return d.dead == nil || d.dead[pre>>6]&(1<<(uint(pre)&63)) == 0
}

// NumNodes returns the node count including the document node.
func (d *Doc) NumNodes() int { return len(d.kind) }

// NumAttrs returns the total attribute count.
func (d *Doc) NumAttrs() int { return len(d.attOwner) }

// Dict exposes the name dictionary (read-only).
func (d *Doc) Dict() *Dict { return d.dict }

// Kind returns the kind of node pre.
func (d *Doc) Kind(pre int32) Kind { return d.kind[pre] }

// NameID returns the dictionary id of the node's name, or NoName.
func (d *Doc) NameID(pre int32) int32 { return d.name[pre] }

// NodeName returns the name of an element/PI node, or "".
func (d *Doc) NodeName(pre int32) string {
	id := d.name[pre]
	if id == NoName {
		return ""
	}
	return d.dict.Name(id)
}

// Size returns the number of descendants of node pre. A node's subtree is
// the pre range [pre, pre+Size(pre)]. On a mutation snapshot the prefix
// through the root element reads the snapshot's own size overrides (appends
// grow those two subtrees without touching the shared column).
func (d *Doc) Size(pre int32) int32 {
	if int(pre) < len(d.sizeHead) {
		return d.sizeHead[pre]
	}
	return d.size[pre]
}

// Level returns the depth of node pre (document node = 0).
func (d *Doc) Level(pre int32) int16 { return d.level[pre] }

// Parent returns the pre of the parent node, or -1 for the document node.
func (d *Doc) Parent(pre int32) int32 { return d.parent[pre] }

// ValueBytes returns the content of a text/comment/PI node without copying.
// The returned slice must not be modified.
func (d *Doc) ValueBytes(pre int32) []byte {
	return d.content[d.valOff[pre] : d.valOff[pre]+int64(d.valLen[pre])]
}

// Value returns the content of a text/comment/PI node as a string.
func (d *Doc) Value(pre int32) string { return string(d.ValueBytes(pre)) }

// Attrs returns the attribute row range [lo,hi) of node pre.
func (d *Doc) Attrs(pre int32) (lo, hi int32) {
	return d.attFirst[pre], d.attFirst[pre+1]
}

// AttrOwner returns the pre of the element owning attribute row i.
func (d *Doc) AttrOwner(i int32) int32 { return d.attOwner[i] }

// AttrNameID returns the dictionary id of attribute row i's name.
func (d *Doc) AttrNameID(i int32) int32 { return d.attName[i] }

// AttrName returns the name of attribute row i.
func (d *Doc) AttrName(i int32) string { return d.dict.Name(d.attName[i]) }

// AttrValueBytes returns the value of attribute row i without copying.
func (d *Doc) AttrValueBytes(i int32) []byte {
	return d.content[d.attValOf[i] : d.attValOf[i]+int64(d.attValLn[i])]
}

// AttrValue returns the value of attribute row i as a string.
func (d *Doc) AttrValue(i int32) string { return string(d.AttrValueBytes(i)) }

// Attr looks up an attribute of node pre by name id and returns its row
// index, or -1 when absent.
func (d *Doc) Attr(pre int32, nameID int32) int32 {
	lo, hi := d.Attrs(pre)
	for i := lo; i < hi; i++ {
		if d.attName[i] == nameID {
			return i
		}
	}
	return -1
}

// AttrByName looks up an attribute of node pre by name string.
func (d *Doc) AttrByName(pre int32, name string) (value string, ok bool) {
	id, found := d.dict.Lookup(name)
	if !found {
		return "", false
	}
	i := d.Attr(pre, id)
	if i < 0 {
		return "", false
	}
	return d.AttrValue(i), true
}

// ElementsByName returns the ascending pre list of live elements named id.
// The index is built lazily on first use and shared by all callers; the
// returned slice must not be modified. A mutation snapshot serves the
// pristine ancestor's list filtered by its tombstones plus a scan of the
// appended tail, memoized per (snapshot, name).
func (d *Doc) ElementsByName(id int32) []int32 {
	if d.base == nil {
		d.elemIndexOnce.Do(func() {
			idx := make(map[int32][]int32)
			for pre := int32(0); pre < int32(len(d.kind)); pre++ {
				if d.kind[pre] == ElementNode {
					idx[d.name[pre]] = append(idx[d.name[pre]], pre)
				}
			}
			d.elemIndex = idx
		})
		return d.elemIndex[id]
	}
	if v, ok := d.elemSnap.Load(id); ok {
		return v.([]int32)
	}
	actual, _ := d.elemSnap.LoadOrStore(id, d.mergeElemsByName(id))
	return actual.([]int32)
}

// mergeElemsByName builds a snapshot's live element list for one name: the
// pristine base list (dead-filtered) followed by matches in the appended tail
// [base nodes, snapshot nodes). When nothing touched the name the base list
// is returned as-is (zero-copy).
func (d *Doc) mergeElemsByName(id int32) []int32 {
	base := d.base.ElementsByName(id)
	var tail []int32
	for pre := int32(len(d.base.kind)); pre < int32(len(d.kind)); pre++ {
		if d.kind[pre] == ElementNode && d.name[pre] == id && d.Alive(pre) {
			tail = append(tail, pre)
		}
	}
	deadHit := false
	if d.dead != nil {
		for _, p := range base {
			if !d.Alive(p) {
				deadHit = true
				break
			}
		}
	}
	if !deadHit {
		if tail == nil {
			return base
		}
		return append(base[:len(base):len(base)], tail...)
	}
	merged := make([]int32, 0, len(base)+len(tail))
	for _, p := range base {
		if d.Alive(p) {
			merged = append(merged, p)
		}
	}
	return append(merged, tail...)
}

// StringValue computes the XPath string-value of node pre: for text,
// comment and PI nodes their content; for elements and the document node the
// concatenation of all descendant text nodes in document order.
func (d *Doc) StringValue(pre int32) string {
	switch d.kind[pre] {
	case TextNode, CommentNode, PINode:
		return d.Value(pre)
	}
	end := pre + d.Size(pre)
	var total int
	for p := pre + 1; p <= end; p++ {
		if d.kind[p] == TextNode && d.Alive(p) {
			total += int(d.valLen[p])
		}
	}
	if total == 0 {
		return ""
	}
	buf := make([]byte, 0, total)
	for p := pre + 1; p <= end; p++ {
		if d.kind[p] == TextNode && d.Alive(p) {
			buf = append(buf, d.ValueBytes(p)...)
		}
	}
	return string(buf)
}

// IsAncestorOf reports whether node a is a proper ancestor of node b, using
// the pre/size containment property of the encoding.
func (d *Doc) IsAncestorOf(a, b int32) bool {
	return a < b && b <= a+d.Size(a)
}

// FirstChild returns the pre of the first live child of node pre, or -1.
func (d *Doc) FirstChild(pre int32) int32 {
	if d.Size(pre) == 0 {
		return -1
	}
	c := pre + 1
	if !d.Alive(c) {
		return d.NextSibling(c)
	}
	return c
}

// NextSibling returns the pre of the next live following sibling, or -1.
// Tombstoned siblings are stepped over structurally (a dead subtree keeps its
// pre/size shape, it just no longer belongs to the document).
func (d *Doc) NextSibling(pre int32) int32 {
	for {
		next := pre + d.Size(pre) + 1
		if next >= int32(len(d.kind)) || d.parent[next] != d.parent[pre] {
			return -1
		}
		if d.Alive(next) {
			return next
		}
		pre = next
	}
}

// Children returns the pre values of all child nodes of pre.
func (d *Doc) Children(pre int32) []int32 {
	var out []int32
	for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
		out = append(out, c)
	}
	return out
}

// Validate performs internal consistency checks over the encoding; it is
// used by tests and the fuzzing harness, not on the hot path.
func (d *Doc) Validate() error {
	n := int32(len(d.kind))
	if n == 0 || d.kind[0] != DocumentNode {
		return fmt.Errorf("tree: doc must start with a document node")
	}
	if d.Size(0) != n-1 {
		return fmt.Errorf("tree: document node size %d != %d", d.Size(0), n-1)
	}
	if len(d.attFirst) != int(n)+1 {
		return fmt.Errorf("tree: attFirst length %d != nodes+1", len(d.attFirst))
	}
	for pre := int32(1); pre < n; pre++ {
		p := d.parent[pre]
		if p < 0 || p >= pre {
			return fmt.Errorf("tree: node %d has bad parent %d", pre, p)
		}
		if pre+d.Size(pre) > p+d.Size(p) {
			return fmt.Errorf("tree: node %d leaks out of parent %d", pre, p)
		}
		if d.level[pre] != d.level[p]+1 {
			return fmt.Errorf("tree: node %d level %d, parent level %d", pre, d.level[pre], d.level[p])
		}
		if d.kind[pre] != ElementNode && d.Size(pre) != 0 {
			return fmt.Errorf("tree: leaf node %d has size %d", pre, d.Size(pre))
		}
		// Tombstones cover whole subtrees: under a dead subtree root every
		// descendant is dead too.
		if !d.Alive(pre) && d.Alive(p) {
			for c := pre + 1; c <= pre+d.Size(pre); c++ {
				if d.Alive(c) {
					return fmt.Errorf("tree: live node %d inside dead subtree %d", c, pre)
				}
			}
		}
	}
	if !sort.SliceIsSorted(d.attOwner, func(i, j int) bool { return d.attOwner[i] < d.attOwner[j] }) {
		return fmt.Errorf("tree: attribute table not clustered on owner")
	}
	for i := range d.attOwner {
		if d.kind[d.attOwner[i]] != ElementNode {
			return fmt.Errorf("tree: attribute %d owned by non-element", i)
		}
	}
	return nil
}

package tree

import (
	"errors"
	"fmt"
	"math"
)

// Builder assembles a Doc from a stream of document-order events, the way a
// shredder feeds the store. The sequence must be well nested:
//
//	b := tree.NewBuilder("example.xml")
//	b.StartElement("site")
//	b.Attr("id", "s1")
//	b.Text("hello")
//	b.EndElement()
//	doc, err := b.Done()
//
// Attr calls must directly follow the StartElement (or another Attr) they
// belong to.
type Builder struct {
	doc      *Doc
	open     []int32 // stack of pre values of open elements
	inTag    bool    // attributes still allowed
	err      error
	finished bool
}

// NewBuilder starts a fresh document with the given name. The document node
// (pre 0) is created implicitly.
func NewBuilder(name string) *Builder {
	d := &Doc{Name: name, dict: NewDict()}
	b := &Builder{doc: d}
	pre := b.pushNode(DocumentNode, NoName, nil)
	b.open = append(b.open, pre) // the document node stays open until Done
	return b
}

// NewFragmentBuilder starts a constructed fragment (node-constructor
// result); identical to NewBuilder but flags the Doc as a fragment.
func NewFragmentBuilder() *Builder {
	b := NewBuilder("")
	b.doc.Fragment = true
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("tree: "+format, args...)
	}
}

func (b *Builder) pushNode(k Kind, nameID int32, value []byte) int32 {
	d := b.doc
	pre := int32(len(d.kind))
	d.kind = append(d.kind, k)
	d.name = append(d.name, nameID)
	d.size = append(d.size, 0)
	d.level = append(d.level, int16(len(b.open)))
	if len(b.open) == 0 {
		d.parent = append(d.parent, -1) // only the document node itself
	} else {
		d.parent = append(d.parent, b.open[len(b.open)-1])
	}
	if value != nil {
		d.valOff = append(d.valOff, int64(len(d.content)))
		d.valLen = append(d.valLen, int32(len(value)))
		d.content = append(d.content, value...)
	} else {
		d.valOff = append(d.valOff, 0)
		d.valLen = append(d.valLen, 0)
	}
	return pre
}

// StartElement opens an element node.
func (b *Builder) StartElement(name string) {
	if b.err != nil {
		return
	}
	if b.finished {
		b.fail("StartElement after Done")
		return
	}
	if len(b.doc.kind) >= math.MaxInt32 {
		b.fail("document exceeds 2^31 nodes")
		return
	}
	pre := b.pushNode(ElementNode, b.doc.dict.Intern(name), nil)
	b.open = append(b.open, pre)
	b.inTag = true
}

// Attr attaches an attribute to the most recently opened element.
func (b *Builder) Attr(name, value string) {
	if b.err != nil {
		return
	}
	if !b.inTag || len(b.open) <= 1 {
		b.fail("Attr(%q) outside an open tag", name)
		return
	}
	d := b.doc
	owner := b.open[len(b.open)-1]
	nameID := d.dict.Intern(name)
	lo := d.attFirstRow(owner)
	for i := lo; i < int32(len(d.attOwner)); i++ {
		if d.attName[i] == nameID {
			b.fail("duplicate attribute %q on element %q", name, d.NodeName(owner))
			return
		}
	}
	d.attOwner = append(d.attOwner, owner)
	d.attName = append(d.attName, nameID)
	d.attValOf = append(d.attValOf, int64(len(d.content)))
	d.attValLn = append(d.attValLn, int32(len(value)))
	d.content = append(d.content, value...)
}

// attFirstRow returns the first attribute row of owner while the doc is
// still under construction (attFirst is not built yet).
func (d *Doc) attFirstRow(owner int32) int32 {
	i := int32(len(d.attOwner))
	for i > 0 && d.attOwner[i-1] == owner {
		i--
	}
	return i
}

// Text appends a text node. Empty text is dropped silently (the data model
// has no empty text nodes); adjacent Text calls are merged.
func (b *Builder) Text(value string) {
	if b.err != nil || value == "" {
		return
	}
	if b.finished {
		b.fail("Text after Done")
		return
	}
	d := b.doc
	// Merge with a directly preceding text sibling.
	if n := len(d.kind); n > 0 && d.kind[n-1] == TextNode && !b.inTag &&
		d.parent[n-1] == b.currentParent() {
		d.content = append(d.content, value...)
		d.valLen[n-1] += int32(len(value))
		return
	}
	b.pushNode(TextNode, NoName, []byte(value))
	b.inTag = false
}

func (b *Builder) currentParent() int32 {
	return b.open[len(b.open)-1]
}

// Comment appends a comment node.
func (b *Builder) Comment(value string) {
	if b.err != nil {
		return
	}
	b.pushNode(CommentNode, NoName, []byte(value))
	b.inTag = false
}

// PI appends a processing-instruction node with the given target and data.
func (b *Builder) PI(target, data string) {
	if b.err != nil {
		return
	}
	b.pushNode(PINode, b.doc.dict.Intern(target), []byte(data))
	b.inTag = false
}

// EndElement closes the innermost open element and fixes its subtree size.
func (b *Builder) EndElement() {
	if b.err != nil {
		return
	}
	if len(b.open) <= 1 { // only the document node is open
		b.fail("EndElement without matching StartElement")
		return
	}
	pre := b.open[len(b.open)-1]
	b.open = b.open[:len(b.open)-1]
	b.doc.size[pre] = int32(len(b.doc.kind)) - pre - 1
	b.inTag = false
}

// ErrUnclosedElement is wrapped by Done when elements remain open.
var ErrUnclosedElement = errors.New("tree: unclosed element at end of document")

// Done seals and returns the document. The builder must not be reused.
func (b *Builder) Done() (*Doc, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.open) != 1 {
		return nil, fmt.Errorf("%w: %q", ErrUnclosedElement, b.doc.NodeName(b.open[len(b.open)-1]))
	}
	b.finished = true
	d := b.doc
	d.order = docOrderCounter.Add(1)
	d.size[0] = int32(len(d.kind)) - 1
	// Build attFirst: attFirst[pre] = first attribute row owned by a node
	// with pre' >= pre. attOwner is ascending because events arrive in
	// document order.
	n := len(d.kind)
	d.attFirst = make([]int32, n+1)
	row := int32(0)
	for pre := 0; pre <= n; pre++ {
		for row < int32(len(d.attOwner)) && int(d.attOwner[row]) < pre {
			row++
		}
		d.attFirst[pre] = row
	}
	return d, nil
}

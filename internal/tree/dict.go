package tree

// Dict is an append-only string dictionary mapping element and attribute
// names to dense int32 ids. One Dict belongs to one Doc (documents do not
// share dictionaries, keeping each document self-contained, which mirrors
// the per-fragment indexing argument of section 3.3).
//
// Dict is not safe for concurrent writers; after the owning Doc is sealed it
// is only read.
type Dict struct {
	byName map[string]int32
	names  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]int32)}
}

// Intern returns the id for name, assigning a fresh id when unseen.
func (d *Dict) Intern(name string) int32 {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.byName[name] = id
	return id
}

// Lookup returns the id for name without interning.
func (d *Dict) Lookup(name string) (int32, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// clone returns an independent copy with identical id assignments. An
// Appender interning a name unseen by the shared dictionary clones first
// (copy-on-write), so concurrent readers of older snapshots never observe a
// map write.
func (d *Dict) clone() *Dict {
	c := &Dict{
		byName: make(map[string]int32, len(d.byName)),
		names:  append([]string(nil), d.names...),
	}
	for name, id := range d.byName {
		c.byName[name] = id
	}
	return c
}

// Name returns the string for id.
func (d *Dict) Name(id int32) string { return d.names[id] }

// Len returns the number of interned names.
func (d *Dict) Len() int { return len(d.names) }

package tree

import (
	"io"
	"strings"
)

// SerializeNode writes node pre (and its subtree) as XML text. For the
// document node all children are written in order; attributes are emitted in
// stored order. Text content and attribute values are escaped so that the
// output re-parses to an identical tree.
func (d *Doc) SerializeNode(w io.Writer, pre int32) error {
	s := serializer{d: d, w: w}
	s.node(pre)
	return s.err
}

// XMLString renders node pre (and its subtree) as a string.
func (d *Doc) XMLString(pre int32) string {
	var sb strings.Builder
	_ = d.SerializeNode(&sb, pre)
	return sb.String()
}

type serializer struct {
	d   *Doc
	w   io.Writer
	err error
}

func (s *serializer) write(str string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, str)
	}
}

func (s *serializer) node(pre int32) {
	d := s.d
	switch d.kind[pre] {
	case DocumentNode:
		for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
			s.node(c)
		}
	case ElementNode:
		name := d.NodeName(pre)
		s.write("<")
		s.write(name)
		lo, hi := d.Attrs(pre)
		for i := lo; i < hi; i++ {
			s.write(" ")
			s.write(d.AttrName(i))
			s.write("=\"")
			s.write(EscapeAttr(d.AttrValue(i)))
			s.write("\"")
		}
		if d.Size(pre) == 0 {
			s.write("/>")
			return
		}
		s.write(">")
		for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
			s.node(c)
		}
		s.write("</")
		s.write(name)
		s.write(">")
	case TextNode:
		s.write(EscapeText(d.Value(pre)))
	case CommentNode:
		s.write("<!--")
		s.write(d.Value(pre))
		s.write("-->")
	case PINode:
		s.write("<?")
		s.write(d.NodeName(pre))
		if v := d.Value(pre); v != "" {
			s.write(" ")
			s.write(v)
		}
		s.write("?>")
	}
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>\r") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '\r':
			sb.WriteString("&#13;")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// EscapeAttr escapes an attribute value for a double-quoted attribute.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<>\"\t\n\r") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '"':
			sb.WriteString("&quot;")
		case '\t':
			sb.WriteString("&#9;")
		case '\n':
			sb.WriteString("&#10;")
		case '\r':
			sb.WriteString("&#13;")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

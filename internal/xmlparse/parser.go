// Package xmlparse implements a from-scratch, non-validating XML parser that
// shreds documents straight into the columnar store of internal/tree. It
// handles elements, attributes (single- or double-quoted), character data,
// CDATA sections, comments, processing instructions, the XML declaration, a
// (skipped) DOCTYPE, and the predefined plus numeric character references.
// Namespace prefixes are kept verbatim as part of the name — the engine
// treats QNames as opaque strings, exactly like the paper's configurable
// "qualified-name" options.
package xmlparse

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"soxq/internal/tree"
)

// Options tunes parsing behaviour.
type Options struct {
	// DropWhitespaceText discards text nodes that consist solely of XML
	// whitespace (space, tab, CR, LF). Useful for pretty-printed documents
	// where indentation is not data.
	DropWhitespaceText bool
}

// SyntaxError describes a well-formedness violation with its position.
type SyntaxError struct {
	Doc  string
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlparse: %s:%d:%d: %s", e.Doc, e.Line, e.Col, e.Msg)
}

// Parse shreds data into a document named name.
func Parse(name string, data []byte) (*tree.Doc, error) {
	return ParseWithOptions(name, data, Options{})
}

// ParseFile reads and shreds the file at path, using path as document name.
func ParseFile(path string) (*tree.Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

// ParseWithOptions shreds data into a document named name using opts.
func ParseWithOptions(name string, data []byte, opts Options) (*tree.Doc, error) {
	p := &parser{
		name: name,
		data: data,
		b:    tree.NewBuilder(name),
		opts: opts,
		line: 1,
		col:  1,
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.b.Done()
}

type parser struct {
	name string
	data []byte
	pos  int
	line int
	col  int
	b    *tree.Builder
	opts Options

	depth   int  // open element depth
	sawRoot bool // a root element has been completed or opened
	stack   []string
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Doc: p.name, Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.data) }

// advance moves the cursor n bytes forward, maintaining line/col.
func (p *parser) advance(n int) {
	for i := 0; i < n; i++ {
		if p.data[p.pos] == '\n' {
			p.line++
			p.col = 1
		} else {
			p.col++
		}
		p.pos++
	}
}

func (p *parser) rest() []byte { return p.data[p.pos:] }

func (p *parser) hasPrefix(s string) bool {
	r := p.rest()
	return len(r) >= len(s) && string(r[:len(s)]) == s
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func (p *parser) skipSpace() {
	for !p.eof() && isSpace(p.data[p.pos]) {
		p.advance(1)
	}
}

// isNameStart / isNameChar implement a pragmatic superset of XML name rules
// covering ASCII names plus any multi-byte UTF-8 (accepted verbatim).
func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) readName() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.data[p.pos]) {
		return "", p.errf("expected name")
	}
	for !p.eof() && isNameChar(p.data[p.pos]) {
		p.advance(1)
	}
	return string(p.data[start:p.pos]), nil
}

func (p *parser) expect(s string) error {
	if !p.hasPrefix(s) {
		return p.errf("expected %q", s)
	}
	p.advance(len(s))
	return nil
}

func (p *parser) run() error {
	// Optional XML declaration.
	if p.hasPrefix("<?xml") && len(p.data) > p.pos+5 && (isSpace(p.data[p.pos+5]) || p.data[p.pos+5] == '?') {
		end := bytes.Index(p.rest(), []byte("?>"))
		if end < 0 {
			return p.errf("unterminated XML declaration")
		}
		p.advance(end + 2)
	}
	for !p.eof() {
		c := p.data[p.pos]
		if c == '<' {
			if err := p.markup(); err != nil {
				return err
			}
			continue
		}
		if err := p.text(); err != nil {
			return err
		}
	}
	if p.depth != 0 {
		return p.errf("unexpected end of input: %d unclosed element(s), innermost <%s>", p.depth, p.stack[len(p.stack)-1])
	}
	if !p.sawRoot {
		return p.errf("document has no root element")
	}
	return nil
}

func (p *parser) markup() error {
	switch {
	case p.hasPrefix("<!--"):
		return p.comment()
	case p.hasPrefix("<![CDATA["):
		return p.cdata()
	case p.hasPrefix("<!DOCTYPE"):
		return p.doctype()
	case p.hasPrefix("<?"):
		return p.pi()
	case p.hasPrefix("</"):
		return p.endTag()
	default:
		return p.startTag()
	}
}

func (p *parser) comment() error {
	p.advance(4)
	idx := bytes.Index(p.rest(), []byte("-->"))
	if idx < 0 {
		return p.errf("unterminated comment")
	}
	body := string(p.rest()[:idx])
	if strings.Contains(body, "--") {
		return p.errf("'--' not allowed inside comment")
	}
	p.b.Comment(body)
	p.advance(idx + 3)
	return nil
}

func (p *parser) cdata() error {
	if p.depth == 0 {
		return p.errf("CDATA outside the root element")
	}
	p.advance(9)
	idx := bytes.Index(p.rest(), []byte("]]>"))
	if idx < 0 {
		return p.errf("unterminated CDATA section")
	}
	p.b.Text(string(p.rest()[:idx]))
	p.advance(idx + 3)
	return nil
}

// doctype skips over an (optionally bracketed) document type declaration.
func (p *parser) doctype() error {
	if p.sawRoot {
		return p.errf("DOCTYPE after root element")
	}
	p.advance(len("<!DOCTYPE"))
	bracket := 0
	for !p.eof() {
		switch p.data[p.pos] {
		case '[':
			bracket++
		case ']':
			bracket--
		case '>':
			if bracket == 0 {
				p.advance(1)
				return nil
			}
		}
		p.advance(1)
	}
	return p.errf("unterminated DOCTYPE")
}

func (p *parser) pi() error {
	p.advance(2)
	target, err := p.readName()
	if err != nil {
		return p.errf("expected processing-instruction target")
	}
	if strings.EqualFold(target, "xml") {
		return p.errf("reserved PI target %q", target)
	}
	idx := bytes.Index(p.rest(), []byte("?>"))
	if idx < 0 {
		return p.errf("unterminated processing instruction")
	}
	data := strings.TrimLeft(string(p.rest()[:idx]), " \t\r\n")
	p.b.PI(target, data)
	p.advance(idx + 2)
	return nil
}

func (p *parser) startTag() error {
	p.advance(1) // '<'
	name, err := p.readName()
	if err != nil {
		return p.errf("malformed start tag")
	}
	if p.depth == 0 {
		if p.sawRoot {
			return p.errf("multiple root elements: second root <%s>", name)
		}
		p.sawRoot = true
	}
	p.b.StartElement(name)
	p.depth++
	p.stack = append(p.stack, name)

	seen := map[string]bool{}
	for {
		p.skipSpace()
		if p.eof() {
			return p.errf("unterminated start tag <%s>", name)
		}
		switch p.data[p.pos] {
		case '>':
			p.advance(1)
			return nil
		case '/':
			if err := p.expect("/>"); err != nil {
				return err
			}
			p.b.EndElement()
			p.depth--
			p.stack = p.stack[:len(p.stack)-1]
			return nil
		}
		attName, err := p.readName()
		if err != nil {
			return p.errf("malformed attribute in <%s>", name)
		}
		if seen[attName] {
			return p.errf("duplicate attribute %q in <%s>", attName, name)
		}
		seen[attName] = true
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return err
		}
		p.skipSpace()
		val, err := p.attValue()
		if err != nil {
			return err
		}
		p.b.Attr(attName, val)
	}
}

func (p *parser) attValue() (string, error) {
	if p.eof() || (p.data[p.pos] != '"' && p.data[p.pos] != '\'') {
		return "", p.errf("attribute value must be quoted")
	}
	quote := p.data[p.pos]
	p.advance(1)
	start := p.pos
	for !p.eof() && p.data[p.pos] != quote {
		if p.data[p.pos] == '<' {
			return "", p.errf("'<' not allowed in attribute value")
		}
		p.advance(1)
	}
	if p.eof() {
		return "", p.errf("unterminated attribute value")
	}
	raw := string(p.data[start:p.pos])
	p.advance(1)
	return p.decodeEntities(raw, true)
}

func (p *parser) endTag() error {
	p.advance(2)
	name, err := p.readName()
	if err != nil {
		return p.errf("malformed end tag")
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return err
	}
	if p.depth == 0 {
		return p.errf("end tag </%s> without open element", name)
	}
	open := p.stack[len(p.stack)-1]
	if open != name {
		return p.errf("end tag </%s> does not match <%s>", name, open)
	}
	p.b.EndElement()
	p.depth--
	p.stack = p.stack[:len(p.stack)-1]
	return nil
}

func (p *parser) text() error {
	start := p.pos
	for !p.eof() && p.data[p.pos] != '<' {
		if p.data[p.pos] == '>' && p.pos >= start+2 && p.data[p.pos-1] == ']' && p.data[p.pos-2] == ']' {
			return p.errf("']]>' not allowed in character data")
		}
		p.advance(1)
	}
	raw := string(p.data[start:p.pos])
	decoded, err := p.decodeEntities(raw, false)
	if err != nil {
		return err
	}
	if p.depth == 0 {
		if strings.TrimLeft(decoded, " \t\r\n") != "" {
			return p.errf("character data outside the root element")
		}
		return nil // ignorable whitespace between top-level constructs
	}
	if p.opts.DropWhitespaceText && strings.TrimLeft(decoded, " \t\r\n") == "" {
		return nil
	}
	p.b.Text(normalizeNewlines(decoded))
	return nil
}

// normalizeNewlines applies XML end-of-line handling: CRLF and lone CR
// become LF.
func normalizeNewlines(s string) string {
	if !strings.Contains(s, "\r") {
		return s
	}
	s = strings.ReplaceAll(s, "\r\n", "\n")
	return strings.ReplaceAll(s, "\r", "\n")
}

// decodeEntities expands the five predefined entities and numeric character
// references. In attribute values, tabs/newlines are normalised to spaces
// per the XML attribute-value normalisation rules.
func (p *parser) decodeEntities(s string, inAttr bool) (string, error) {
	if !strings.ContainsAny(s, "&\t\n\r") {
		return s, nil
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if inAttr && (c == '\t' || c == '\n' || c == '\r') {
			sb.WriteByte(' ')
			if c == '\r' && i+1 < len(s) && s[i+1] == '\n' {
				i++
			}
			i++
			continue
		}
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi == 1 {
			return "", p.errf("malformed entity reference")
		}
		ent := s[i+1 : i+semi]
		switch {
		case ent == "amp":
			sb.WriteByte('&')
		case ent == "lt":
			sb.WriteByte('<')
		case ent == "gt":
			sb.WriteByte('>')
		case ent == "quot":
			sb.WriteByte('"')
		case ent == "apos":
			sb.WriteByte('\'')
		case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
			r, err := parseCharRef(ent[2:], 16)
			if err != nil {
				return "", p.errf("bad character reference &%s;", ent)
			}
			sb.WriteRune(r)
		case strings.HasPrefix(ent, "#"):
			r, err := parseCharRef(ent[1:], 10)
			if err != nil {
				return "", p.errf("bad character reference &%s;", ent)
			}
			sb.WriteRune(r)
		default:
			return "", p.errf("unknown entity &%s;", ent)
		}
		i += semi + 1
	}
	return sb.String(), nil
}

func parseCharRef(digits string, base int32) (rune, error) {
	if digits == "" {
		return 0, fmt.Errorf("empty")
	}
	var v int64
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		var d int32
		switch {
		case c >= '0' && c <= '9':
			d = int32(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int32(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int32(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		v = v*int64(base) + int64(d)
		if v > 0x10FFFF {
			return 0, fmt.Errorf("out of range")
		}
	}
	if v == 0 || (v >= 0xD800 && v <= 0xDFFF) {
		return 0, fmt.Errorf("invalid code point")
	}
	return rune(v), nil
}

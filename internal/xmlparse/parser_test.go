package xmlparse

import (
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"

	"soxq/internal/tree"
)

func mustParse(t *testing.T, src string) *tree.Doc {
	t.Helper()
	d, err := Parse("test.xml", []byte(src))
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

func TestParseBasic(t *testing.T) {
	d := mustParse(t, `<a x="1"><b>hi</b><c/></a>`)
	if d.NumNodes() != 5 { // doc, a, b, text, c
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
	if d.NodeName(1) != "a" || d.NodeName(2) != "b" || d.NodeName(4) != "c" {
		t.Fatal("names wrong")
	}
	if v, ok := d.AttrByName(1, "x"); !ok || v != "1" {
		t.Fatal("attribute wrong")
	}
	if d.Value(3) != "hi" {
		t.Fatal("text wrong")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		`<a/>`,
		`<a x="1" y="2"/>`,
		`<a><b/><c/><b/></a>`,
		`<a>text</a>`,
		`<a>pre<b>mid</b>post</a>`,
		`<root><!--comment--><?target data?></root>`,
		`<ns:a ns:b="v"><x.y-z/></ns:a>`,
		`<a>&amp;&lt;&gt;&quot;&apos;</a>`,
	}
	for _, src := range cases {
		d := mustParse(t, src)
		got := d.XMLString(0)
		d2 := mustParse(t, got)
		if again := d2.XMLString(0); again != got {
			t.Errorf("round trip diverges:\n src  %s\n got  %s\n again %s", src, got, again)
		}
	}
}

func TestParseDeclDoctype(t *testing.T) {
	d := mustParse(t, `<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE site [ <!ELEMENT site ANY> ]>
<site><x/></site>`)
	if d.NodeName(1) != "site" {
		t.Fatal("root wrong")
	}
}

func TestParseCDATA(t *testing.T) {
	d := mustParse(t, `<a><![CDATA[1 < 2 & "x" ]]>tail</a>`)
	if got := d.StringValue(1); got != `1 < 2 & "x" tail` {
		t.Fatalf("CDATA text = %q", got)
	}
	// CDATA merges with adjacent text into one node.
	if d.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", d.NumNodes())
	}
}

func TestParseEntities(t *testing.T) {
	d := mustParse(t, `<a b="&#65;&#x42;c">&#x263A;</a>`)
	if v, _ := d.AttrByName(1, "b"); v != "ABc" {
		t.Fatalf("numeric refs in attribute = %q", v)
	}
	if d.StringValue(1) != "☺" {
		t.Fatalf("numeric ref in text = %q", d.StringValue(1))
	}
}

func TestAttributeNormalization(t *testing.T) {
	d := mustParse(t, "<a b=\"x\ty\nz\"/>")
	if v, _ := d.AttrByName(1, "b"); v != "x y z" {
		t.Fatalf("attribute whitespace normalisation = %q", v)
	}
}

func TestNewlineNormalization(t *testing.T) {
	d := mustParse(t, "<a>l1\r\nl2\rl3</a>")
	if got := d.StringValue(1); got != "l1\nl2\nl3" {
		t.Fatalf("newline normalisation = %q", got)
	}
}

func TestDropWhitespaceText(t *testing.T) {
	src := "<a>\n  <b>x</b>\n  <c/>\n</a>"
	d, err := ParseWithOptions("t", []byte(src), Options{DropWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 5 { // doc a b text c
		t.Fatalf("NumNodes = %d, want 5", d.NumNodes())
	}
	d2 := mustParse(t, src)
	if d2.NumNodes() != 8 { // + 3 whitespace text nodes
		t.Fatalf("default keeps whitespace, NumNodes = %d, want 8", d2.NumNodes())
	}
}

func TestSingleQuotedAttributes(t *testing.T) {
	d := mustParse(t, `<a b='it"s'/>`)
	if v, _ := d.AttrByName(1, "b"); v != `it"s` {
		t.Fatalf("single-quoted attr = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"empty", ``},
		{"no root", `<!-- only a comment -->`},
		{"unclosed", `<a><b></b>`},
		{"mismatch", `<a></b>`},
		{"two roots", `<a/><b/>`},
		{"text outside", `<a/>junk`},
		{"stray end", `</a>`},
		{"dup attr", `<a x="1" x="2"/>`},
		{"unquoted attr", `<a x=1/>`},
		{"lt in attr", `<a x="<"/>`},
		{"bad entity", `<a>&nope;</a>`},
		{"bad charref", `<a>&#xZZ;</a>`},
		{"zero charref", `<a>&#0;</a>`},
		{"unterminated comment", `<a><!-- x</a>`},
		{"double dash comment", `<a><!-- a -- b --></a>`},
		{"unterminated cdata", `<a><![CDATA[x</a>`},
		{"cdata top level", `<![CDATA[x]]><a/>`},
		{"unterminated pi", `<a><?pi x</a>`},
		{"reserved pi", `<a><?xMl data?></a>`},
		{"unterminated tag", `<a`},
		{"bad name", `<1a/>`},
		{"cdata end in text", `<a>x]]>y</a>`},
		{"doctype after root", `<a/><!DOCTYPE a>`},
	}
	for _, c := range bad {
		if _, err := Parse(c.name, []byte(c.src)); err == nil {
			t.Errorf("%s: Parse(%q) should fail", c.name, c.src)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("pos.xml", []byte("<a>\n<b>\n</c>\n</a>"))
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 3 {
		t.Fatalf("error line = %d, want 3", se.Line)
	}
	if !strings.Contains(se.Error(), "pos.xml:3:") {
		t.Fatalf("error string = %q", se.Error())
	}
}

// randomDoc emits a pseudo-random well-formed document for the encoding/xml
// cross-check.
func randomDoc(rng *rand.Rand) string {
	var sb strings.Builder
	names := []string{"a", "b", "cc", "dd", "e-f", "g.h"}
	texts := []string{"x", "hello world", "1 &lt; 2", "tail &amp; more", "é☺"}
	var emit func(depth int)
	emit = func(depth int) {
		name := names[rng.Intn(len(names))]
		sb.WriteString("<" + name)
		for i, n := 0, rng.Intn(3); i < n; i++ {
			sb.WriteString(` at` + string(rune('a'+i)) + `="v` + string(rune('0'+byte(rng.Intn(10)))) + `"`)
		}
		if depth > 3 || rng.Intn(4) == 0 {
			sb.WriteString("/>")
			return
		}
		sb.WriteString(">")
		for i, n := 0, rng.Intn(4); i < n; i++ {
			if rng.Intn(2) == 0 {
				sb.WriteString(texts[rng.Intn(len(texts))])
			} else {
				emit(depth + 1)
			}
		}
		sb.WriteString("</" + name + ">")
	}
	emit(0)
	return sb.String()
}

// TestAgainstEncodingXML replays random documents through both our parser
// and encoding/xml and compares the event streams.
func TestAgainstEncodingXML(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		src := randomDoc(rng)
		d, err := Parse("rand.xml", []byte(src))
		if err != nil {
			t.Fatalf("our parser failed on %q: %v", src, err)
		}
		var ours []string
		collect(d, 0, &ours)

		dec := xml.NewDecoder(strings.NewReader(src))
		var theirs []string
		for {
			tok, err := dec.Token()
			if tok == nil {
				break
			}
			if err != nil {
				t.Fatalf("encoding/xml failed on %q: %v", src, err)
			}
			switch tk := tok.(type) {
			case xml.StartElement:
				s := "start " + tk.Name.Local
				for _, a := range tk.Attr {
					s += " " + a.Name.Local + "=" + a.Value
				}
				theirs = append(theirs, s)
			case xml.EndElement:
				theirs = append(theirs, "end "+tk.Name.Local)
			case xml.CharData:
				theirs = append(theirs, "text "+string(tk))
			}
		}
		theirs = mergeText(theirs)
		if strings.Join(ours, "\n") != strings.Join(theirs, "\n") {
			t.Fatalf("event mismatch on %q:\nours:\n%s\ntheirs:\n%s",
				src, strings.Join(ours, "\n"), strings.Join(theirs, "\n"))
		}
	}
}

func collect(d *tree.Doc, pre int32, out *[]string) {
	switch d.Kind(pre) {
	case tree.DocumentNode:
		for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
			collect(d, c, out)
		}
	case tree.ElementNode:
		s := "start " + localName(d.NodeName(pre))
		lo, hi := d.Attrs(pre)
		for i := lo; i < hi; i++ {
			s += " " + localName(d.AttrName(i)) + "=" + d.AttrValue(i)
		}
		*out = append(*out, s)
		for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
			collect(d, c, out)
		}
		*out = append(*out, "end "+localName(d.NodeName(pre)))
	case tree.TextNode:
		*out = append(*out, "text "+d.Value(pre))
	}
}

func localName(n string) string {
	if i := strings.IndexByte(n, ':'); i >= 0 {
		return n[i+1:]
	}
	return n
}

// mergeText coalesces adjacent text events (encoding/xml splits around
// entity references; our store merges them).
func mergeText(events []string) []string {
	var out []string
	for _, e := range events {
		if strings.HasPrefix(e, "text ") && len(out) > 0 && strings.HasPrefix(out[len(out)-1], "text ") {
			out[len(out)-1] += strings.TrimPrefix(e, "text")
			continue
		}
		out = append(out, e)
	}
	return out
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 2000; i++ {
		sb.WriteString(`<item id="i"><name>widget</name><price cur="usd">12</price></item>`)
	}
	sb.WriteString("</root>")
	data := []byte(sb.String())
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("bench.xml", data); err != nil {
			b.Fatal(err)
		}
	}
}

package xqexec

import (
	"fmt"

	"soxq/internal/xqast"
	"soxq/internal/xqplan"
)

// OpExplain describes one operator of the pipeline a plan would stream
// through: whether it is pipelined or materialised, and why. It mirrors the
// decisions build makes, without executing anything — the one decision only
// the run time can make (is the final path context disjoint?) is reported as
// the condition it is.
type OpExplain struct {
	// Kind names the operator: "flwor", "flwor-nested", "path", "seq",
	// "range", "materialise".
	Kind string
	// Pipelined reports whether the operator streams its output.
	Pipelined bool
	// Detail explains the decision (what streams, or why it cannot).
	Detail string
	// Children are the operator's streamed inputs (a flwor's binding
	// stream, a seq's operands).
	Children []*OpExplain
}

// Describe returns the pipeline shape Build would construct for the plan:
// the operator tree of the top-level expression with each operator's
// pipelined/materialised decision.
func Describe(plan *xqplan.Plan) *OpExplain {
	return describeExpr(plan, plan.Body())
}

func describeExpr(plan *xqplan.Plan, e xqast.Expr) *OpExplain {
	switch v := e.(type) {
	case *xqast.FLWOR:
		if !streamableFLWOR(v) {
			reason := "no for clause to stream over"
			if len(v.OrderBy) > 0 {
				reason = "order by needs every tuple before the first result"
			}
			return &OpExplain{Kind: "flwor", Detail: reason}
		}
		var first *xqast.ForClause
		var firstAt int
		for i, cl := range v.Clauses {
			if fc, ok := cl.(*xqast.ForClause); ok {
				first, firstAt = fc, i
				break
			}
		}
		op := &OpExplain{
			Kind:      "flwor",
			Pipelined: true,
			Detail: fmt.Sprintf("for $%s tuples stream in chunks; loop body loop-lifted per chunk; work-stealing parallel eligible",
				first.Var),
			Children: []*OpExplain{describeExpr(plan, first.Seq)},
		}
		// Nested cursor-valued bindings: each immediately following for
		// clause over a streamable StandOff-free binding drives a child
		// cursor per parent tuple (under bounded chunks), compounding the
		// memory bound; the chain stops at the first clause that expands.
		for _, cl := range v.Clauses[firstAt+1:] {
			fc, ok := cl.(*xqast.ForClause)
			if !ok || !streamableBinding(fc.Seq) {
				break
			}
			op.Children = append(op.Children, &OpExplain{
				Kind:      "flwor-nested",
				Pipelined: true,
				Detail: fmt.Sprintf("inner for $%s binds a child cursor per parent tuple under bounded chunks; inner tuples stream in chunks of their own",
					fc.Var),
				Children: []*OpExplain{describeExpr(plan, fc.Seq)},
			})
		}
		return op
	case *xqast.Path:
		return describePath(plan, v)
	case *xqast.Binary:
		switch v.Op {
		case ",":
			op := &OpExplain{Kind: "seq", Pipelined: true,
				Detail: "operands stream one after another"}
			for _, part := range flattenSeq(v) {
				op.Children = append(op.Children, describeExpr(plan, part))
			}
			return op
		case "to":
			return &OpExplain{Kind: "range", Pipelined: true,
				Detail: "integers generated on demand"}
		}
	case *xqast.Enclosed:
		return describeExpr(plan, v.X)
	}
	return &OpExplain{Kind: "materialise", Detail: exprName(e) + " evaluates in full"}
}

func describePath(plan *xqplan.Plan, p *xqast.Path) *OpExplain {
	prog := plan.Program(p)
	if len(prog) == 0 {
		return &OpExplain{Kind: "path", Detail: "no steps"}
	}
	last := prog[len(prog)-1]
	// Consecutive chunk-streamable StandOff steps before the final step
	// compose into chained pres-based stages.
	chain := 0
	for i := len(prog) - 2; i >= 0; i-- {
		s := prog[i].Streamability()
		if s != xqplan.StreamChunked && s != xqplan.StreamChunkedReject {
			break
		}
		chain++
	}
	suffix := ""
	if chain > 0 {
		suffix = fmt.Sprintf("; %d StandOff prefix step(s) stream through composed pres-based stages", chain)
	}
	switch last.Streamability() {
	case xqplan.StreamTree:
		return &OpExplain{Kind: "path", Pipelined: true,
			Detail: fmt.Sprintf("final step %s::%s streams per context node when context subtrees are disjoint%s",
				last.Axis, last.Test, suffix)}
	case xqplan.StreamChunked:
		return &OpExplain{Kind: "path", Pipelined: true,
			Detail: fmt.Sprintf("final StandOff step %s streams per context chunk through an ordered dedup merge when the context is single-document%s",
				last.SO.Op, suffix)}
	case xqplan.StreamChunkedReject:
		return &OpExplain{Kind: "path", Pipelined: true,
			Detail: fmt.Sprintf("final StandOff step %s streams per context chunk through a matched-candidate bitset and one complement when the context is single-document%s",
				last.SO.Op, suffix)}
	}
	reason := "final step materialises"
	switch {
	case len(last.Predicates) > 0:
		reason = "predicates on the final step re-rank positions per context group"
	default:
		reason = fmt.Sprintf("final axis %s is not order-safe to stream", last.Axis)
	}
	return &OpExplain{Kind: "path", Detail: reason + suffix}
}

// exprName gives a friendly name for a non-pipelined expression form.
func exprName(e xqast.Expr) string {
	switch e.(type) {
	case *xqast.FuncCall:
		return "function call"
	case *xqast.IfExpr:
		return "conditional"
	case *xqast.Quantified:
		return "quantified expression"
	case *xqast.Filter:
		return "filter expression"
	case *xqast.DirectElem, *xqast.ComputedElem, *xqast.ComputedAttr, *xqast.ComputedText:
		return "node constructor"
	case *xqast.Binary, *xqast.Unary:
		return "operator expression"
	case *xqast.VarRef, *xqast.ContextItem:
		return "variable/context reference"
	case *xqast.StringLit, *xqast.IntLit, *xqast.FloatLit, *xqast.EmptySeq:
		return "literal"
	case *xqast.FLWOR:
		return "flwor"
	default:
		return fmt.Sprintf("%T", e)
	}
}

package xqexec

import (
	"sync"
	"sync/atomic"

	"soxq/internal/obs"
	"soxq/internal/xqeval"
)

// Cross-document merge: a corpus query fans out into one cursor pipeline per
// member document (a shard), and MergeShards drains them back into a single
// stream in shard order — the corpus's document order. Shards are
// independent by construction (each pipeline runs over its own evaluator and
// its own document snapshot), so the parallel form needs no cross-shard
// coordination beyond the order-preserving merge; what it borrows from the
// FLWOR work-stealing pool is the bounding discipline — an in-flight token
// budget that keeps claimed-but-unconsumed shards, and therefore buffered
// results, proportional to the worker count rather than the corpus size —
// and the pool's InflightWaits saturation counter.

// ShardSource lazily constructs one shard's cursor. Sources are invoked at
// most once each, on the goroutine that will drain the cursor, so pipeline
// state with single-goroutine affinity (join arenas) stays correct.
type ShardSource func() (Cursor, error)

// MergeShards returns a cursor over the concatenation of the shard streams
// in slice order. With workers <= 1 (or a single shard) the shards run
// lazily one after another on the consumer's goroutine — bounded memory, no
// goroutines. With workers > 1 a bounded pool drains up to that many shards
// concurrently, buffering completed chunks of `chunk` items per shard while
// the merge catches up; the stream is item-for-item identical either way. A
// shard's error surfaces after every item of the shards before it, exactly
// where the sequential drain would have failed. Close mid-stream stops the
// pool and closes every open shard cursor; like every Cursor it is
// idempotent and leaks no goroutines.
func MergeShards(sources []ShardSource, workers, chunk int, met *obs.ExecMetrics) Cursor {
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 || len(sources) <= 1 {
		return &shardSeq{sources: sources}
	}
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	return newShardPar(sources, workers, chunk, met)
}

// shardSeq drains shards one at a time, building each source only when the
// previous shard is exhausted (the seqCursor discipline, across documents).
type shardSeq struct {
	sources []ShardSource
	i       int
	cur     Cursor
	item    xqeval.Item
	err     error
}

func (c *shardSeq) Next() bool {
	for c.err == nil {
		if c.cur == nil {
			if c.i >= len(c.sources) {
				return false
			}
			c.cur, c.err = c.sources[c.i]()
			c.i++
			if c.err != nil {
				return false
			}
		}
		if c.cur.Next() {
			c.item = c.cur.Item()
			return true
		}
		c.err = c.cur.Err()
		c.cur.Close()
		c.cur = nil
	}
	return false
}

func (c *shardSeq) Item() xqeval.Item { return c.item }
func (c *shardSeq) Err() error        { return c.err }
func (c *shardSeq) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.i = len(c.sources)
}

// shardChunk is one slice of a shard's output (or its terminal error) on the
// way to the merge.
type shardChunk struct {
	items []xqeval.Item
	err   error
}

// shardPar drains shards on a bounded worker pool. Workers claim shard
// indexes in order off a shared counter and stream each claimed shard's
// output as bounded chunks into that shard's channel; the consumer reads the
// channels strictly in shard order, so the merged stream is deterministic
// regardless of which worker ran what. The token budget (2x workers) caps
// how many shards may be claimed ahead of the consumer: without it, a corpus
// of many small shards would buffer every completed shard at once.
type shardPar struct {
	chans  []chan shardChunk
	tokens chan struct{} // acquired per shard claim, released per shard consumed
	donech chan struct{}
	wg     sync.WaitGroup
	claim  atomic.Int64
	met    *obs.ExecMetrics

	// Consumer state (single goroutine, never shared).
	si     int
	out    []xqeval.Item
	oi     int
	item   xqeval.Item
	err    error
	done   bool
	closed bool
}

func newShardPar(sources []ShardSource, workers, chunk int, met *obs.ExecMetrics) *shardPar {
	p := &shardPar{
		chans:  make([]chan shardChunk, len(sources)),
		tokens: make(chan struct{}, 2*workers),
		donech: make(chan struct{}),
		met:    met,
	}
	for i := range p.chans {
		// Capacity 1 lets a shard's worker run one chunk ahead of the merge;
		// the token budget bounds the shard count, so peak buffered memory is
		// O(workers x chunk), independent of corpus size.
		p.chans[i] = make(chan shardChunk, 1)
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(sources, chunk)
	}
	return p
}

func (p *shardPar) worker(sources []ShardSource, chunk int) {
	defer p.wg.Done()
	for {
		if !p.acquireToken() {
			return
		}
		i := int(p.claim.Add(1)) - 1
		if i >= len(sources) {
			// Nothing left to claim; the held token dies with the pool.
			return
		}
		if !p.runShard(i, sources[i], chunk) {
			return
		}
	}
}

// acquireToken takes one in-flight shard token, counting a stall when the
// worker genuinely has to wait for the consumer to retire a shard (the
// pool's saturation signal, same meaning as the FLWOR pool's). Returns false
// when the pool shut down instead.
func (p *shardPar) acquireToken() bool {
	select {
	case p.tokens <- struct{}{}:
		return true
	default:
	}
	p.met.InflightWait()
	select {
	case p.tokens <- struct{}{}:
		return true
	case <-p.donech:
		return false
	}
}

// runShard builds shard i's cursor, streams its output in chunks, and closes
// the shard channel so the consumer sees end-of-shard. Returns false when
// the pool shut down mid-shard.
func (p *shardPar) runShard(i int, src ShardSource, chunk int) bool {
	defer close(p.chans[i])
	cur, err := src()
	if err != nil {
		return p.send(i, shardChunk{err: err})
	}
	defer cur.Close()
	buf := make([]xqeval.Item, 0, min(chunk, 64))
	for cur.Next() {
		buf = append(buf, cur.Item())
		if len(buf) >= chunk {
			if !p.send(i, shardChunk{items: buf}) {
				return false
			}
			buf = make([]xqeval.Item, 0, chunk)
		}
	}
	if len(buf) > 0 {
		if !p.send(i, shardChunk{items: buf}) {
			return false
		}
	}
	if err := cur.Err(); err != nil {
		return p.send(i, shardChunk{err: err})
	}
	return true
}

func (p *shardPar) send(i int, c shardChunk) bool {
	select {
	case p.chans[i] <- c:
		return true
	case <-p.donech:
		return false
	}
}

func (p *shardPar) Next() bool {
	if p.err != nil || p.done {
		return false
	}
	for {
		if p.oi < len(p.out) {
			p.item = p.out[p.oi]
			p.oi++
			return true
		}
		if p.si >= len(p.chans) {
			p.done = true
			return false
		}
		c, ok := <-p.chans[p.si]
		if !ok {
			// Shard retired: release its token so a worker may claim the
			// next shard beyond the look-ahead window. The claiming worker
			// acquired before closing, so the token is always present.
			p.si++
			<-p.tokens
			continue
		}
		if c.err != nil {
			p.err = c.err
			return false
		}
		p.out, p.oi = c.items, 0
	}
}

func (p *shardPar) Item() xqeval.Item { return p.item }
func (p *shardPar) Err() error        { return p.err }

// Close shuts the pool down: workers blocked on a send or a token acquire
// exit via donech, a worker mid-chunk finishes that chunk and exits on its
// next send, and every open shard cursor is closed by its worker's deferred
// Close. Close returns only after every worker has exited, so no pool
// goroutine outlives the cursor.
func (p *shardPar) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.done = true
	close(p.donech)
	p.wg.Wait()
	p.out, p.oi = nil, 0
}

package xqexec

import (
	"soxq/internal/xqast"
	"soxq/internal/xqeval"
	"soxq/internal/xqplan"
)

// pathCursor pipelines the final step of a path expression. The prefix —
// starting context and all steps but the last — evaluates in bulk exactly as
// the materialising path does (StandOff steps inside the prefix need the
// bulk context for their loop-lifted joins), but the final step streams when
// its compiled plan classifies as streamable (xqplan.Streamability):
//
//   - StreamTree: an order-safe tree step streams one context node at a
//     time, so `//a/b`-style scans emit b-nodes as the cursor walks the
//     a-contexts. Order safety is decided against the actual context at run
//     time: strictly ascending context nodes with disjoint subtrees confine
//     each node's forward-axis results to disjoint ascending pre ranges, so
//     their concatenation is exactly the sorted, duplicate-free bulk result.
//
//   - StreamChunked: a StandOff select step streams per context chunk — the
//     loop-lifted join runs one chunk of context areas at a time and the
//     chunk outputs merge through the watermark-gated document-order heap
//     (see standoffCursor). Requires a single-document context at run time.
//
// Contexts that fail the run-time condition — nested tree contexts,
// multi-document join contexts — and the remaining step forms (reverse
// axes, predicates, reject joins) fall back to the bulk step.
type pathCursor struct {
	x *executor
	p *xqast.Path
	f *xqeval.Frame

	started bool
	err     error

	// Tree streaming mode: remaining context nodes and the current node's
	// matches.
	last *xqplan.StepPlan
	ctx  []xqeval.Item
	buf  []xqeval.Item

	// StandOff chunked mode: the chunk-join-merge cursor.
	soc *standoffCursor

	// Fallback mode: the fully evaluated result.
	items []xqeval.Item

	// produced counts emitted items for the ANALYZE path counter,
	// recorded once when the stream ends (or at Close for a partial
	// drain). The streaming mode never sees its full result at once, so
	// the counter accumulates here instead of in the evaluator.
	produced int64
	recorded bool

	cur xqeval.Item
}

func (c *pathCursor) init() {
	c.started = true
	ctxSeq, last, err := c.x.ev.PathPrefix(c.p, c.f)
	if err != nil {
		c.err = err
		return
	}
	g := ctxSeq.Group(0)
	if last == nil {
		c.items = g
		return
	}
	for _, it := range g {
		if !it.IsNode() {
			// The bulk step rejects atomic context items before joining;
			// fail identically before any streaming starts.
			c.err = c.x.ev.EvalStepTypeError()
			return
		}
	}
	switch last.Streamability() {
	case xqplan.StreamTree:
		if disjointContext(g) {
			c.last = last
			c.ctx = g
			return
		}
	case xqplan.StreamChunked:
		soc, err := newStandoffCursor(c.x, last, g)
		if err != nil {
			c.err = err
			return
		}
		if soc != nil {
			c.soc = soc
			return
		}
	}
	out, err := c.x.ev.EvalStepBulk(last, ctxSeq, c.f)
	if err != nil {
		c.err = err
		return
	}
	c.items = out.Group(0)
}

// disjointContext reports whether the context nodes are strictly ascending
// in document order with pairwise-disjoint subtrees (and are all element- or
// document-kind nodes — attribute contexts take the bulk path).
func disjointContext(ctx []xqeval.Item) bool {
	for i, it := range ctx {
		if it.Kind != xqeval.KNode {
			return false
		}
		if i == 0 {
			continue
		}
		prev := ctx[i-1]
		if prev.D == it.D {
			if it.Pre <= prev.Pre+prev.D.Size(prev.Pre) {
				return false // nested, duplicate, or out of order
			}
		} else if xqeval.CompareDocOrder(prev, it) >= 0 {
			return false
		}
	}
	return true
}

func (c *pathCursor) Next() bool {
	if !c.started {
		c.init()
	}
	if c.err != nil {
		return false
	}
	if c.soc != nil { // chunked StandOff final step
		if c.soc.Next() {
			c.cur = c.soc.Item()
			c.produced++
			return true
		}
		c.record()
		return false
	}
	if c.last == nil { // fallback: iterate the materialised result
		if len(c.items) == 0 {
			c.record()
			return false
		}
		c.cur = c.items[0]
		c.items = c.items[1:]
		c.produced++
		return true
	}
	for {
		if len(c.buf) > 0 {
			c.cur = c.buf[0]
			c.buf = c.buf[1:]
			c.produced++
			return true
		}
		if len(c.ctx) == 0 {
			c.record()
			return false
		}
		buf, err := c.x.ev.TreeStepItems(c.last, c.ctx[0])
		if err != nil {
			c.err = err
			return false
		}
		c.ctx = c.ctx[1:]
		c.buf = buf
	}
}

// record reports the path's emitted item count to the ANALYZE collector,
// once. A cursor closed before it is drained reports what it produced.
func (c *pathCursor) record() {
	if c.recorded {
		return
	}
	c.recorded = true
	c.x.ev.Stats.RecordOp(c.p, 0, c.produced)
}

func (c *pathCursor) Item() xqeval.Item { return c.cur }
func (c *pathCursor) Err() error        { return c.err }

// Close terminates the cursor: started is set so a later Next cannot
// re-evaluate the path, and last is cleared so the drained fallback branch
// (empty items) answers it.
func (c *pathCursor) Close() {
	if c.started && c.err == nil {
		c.record()
	}
	c.started = true
	c.last = nil
	c.ctx, c.buf, c.items = nil, nil, nil
	if c.soc != nil {
		c.soc.Close()
		c.soc = nil
	}
}

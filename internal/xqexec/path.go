package xqexec

import (
	"soxq/internal/xqast"
	"soxq/internal/xqeval"
	"soxq/internal/xqplan"
)

// pathCursor pipelines the chunk-streamable suffix of a path expression. The
// prefix — starting context and the steps before the suffix — evaluates in
// bulk exactly as the materialising path does; the suffix streams when the
// compiled plans classify as streamable (xqplan.Streamability):
//
//   - StreamTree: an order-safe tree step streams one context node at a
//     time, so `//a/b`-style scans emit b-nodes as the cursor walks the
//     a-contexts. Order safety is decided against the actual context at run
//     time: strictly ascending context nodes with disjoint subtrees confine
//     each node's forward-axis results to disjoint ascending pre ranges, so
//     their concatenation is exactly the sorted, duplicate-free bulk result.
//
//   - StreamChunked: a StandOff select step streams per context chunk — the
//     loop-lifted join runs one chunk of context areas at a time and the
//     chunk outputs merge through the watermark-gated document-order heap
//     (see standoffCursor). Requires a single-document context at run time.
//
//   - StreamChunkedReject: a StandOff reject step — each chunk's select-side
//     join marks matched candidates in a bitset and one complement at the
//     end emits the unmatched candidates (see rejectCursor). Blocking but
//     memory-bounded; requires a single-document context at run time.
//
// Chunk-capable StandOff steps in the path *prefix* stream too: consecutive
// StreamChunked/StreamChunkedReject steps before the final step compose into
// chained stages, each draining its upstream's pre ranks (12 bytes per
// intermediate row) into its own start-sorted context — intermediate results
// never materialise as item sequences.
//
// Contexts that fail the run-time condition — nested tree contexts,
// multi-document join contexts — and the remaining step forms (reverse
// axes, predicates) fall back to the bulk step.
type pathCursor struct {
	x *executor
	p *xqast.Path
	f *xqeval.Frame

	started bool
	err     error

	// Tree streaming mode: remaining context nodes and the current node's
	// matches.
	last *xqplan.StepPlan
	ctx  []xqeval.Item
	buf  []xqeval.Item

	// StandOff chunked mode: the final chunked stage — a select
	// chunk-join-merge cursor or a reject bitset cursor, possibly fed by a
	// chain of upstream chunked stages it already drained at init.
	soc soStage

	// Fallback mode: the fully evaluated result.
	items []xqeval.Item

	// produced counts emitted items for the ANALYZE path counter,
	// recorded once when the stream ends (or at Close for a partial
	// drain). The streaming mode never sees its full result at once, so
	// the counter accumulates here instead of in the evaluator.
	produced int64
	recorded bool

	cur xqeval.Item
}

func (c *pathCursor) init() {
	c.started = true
	ctxSeq, steps, err := c.x.ev.PathPrefixStream(c.p, c.f)
	if err != nil {
		c.err = err
		return
	}
	g := ctxSeq.Group(0)
	if len(steps) == 0 {
		c.items = g
		return
	}
	for _, it := range g {
		if !it.IsNode() {
			// The bulk step rejects atomic context items before joining;
			// fail identically before any streaming starts.
			c.err = c.x.ev.EvalStepTypeError()
			return
		}
	}
	// Compose the chunk-streamable prefix steps into chained pres-based
	// cursors. A step whose context defeats chunking (multiple documents)
	// runs in bulk instead, and the chain restarts after it; step outputs
	// are always nodes, so the atomic-context check never recurs.
	var up soStage
	for len(steps) > 1 {
		sp := steps[0]
		var st soStage
		if up != nil {
			st, err = newStageFromUpstream(c.x, sp, up)
		} else {
			st, err = newStage(c.x, sp, g)
		}
		if err != nil {
			c.err = err
			return
		}
		if st == nil {
			out, err := c.x.ev.EvalStepBulk(sp, ctxSeq, c.f)
			if err != nil {
				c.err = err
				return
			}
			ctxSeq = out
			g = out.Group(0)
			steps = steps[1:]
			continue
		}
		up = st
		steps = steps[1:]
	}
	last := steps[0]
	if up != nil {
		switch last.Streamability() {
		case xqplan.StreamChunked, xqplan.StreamChunkedReject:
			st, err := newStageFromUpstream(c.x, last, up)
			if err != nil {
				c.err = err
				return
			}
			c.soc = st
			return
		}
		// The final step is not chunk-capable: materialise the chain output
		// (exactly the context the bulk prefix would have built) and take
		// the per-node or bulk final-step paths below.
		g = drainStageItems(up)
		ctxSeq = xqeval.GroupSeq(g)
	}
	switch last.Streamability() {
	case xqplan.StreamTree:
		if disjointContext(g) {
			c.last = last
			c.ctx = g
			return
		}
	case xqplan.StreamChunked, xqplan.StreamChunkedReject:
		st, err := newStage(c.x, last, g)
		if err != nil {
			c.err = err
			return
		}
		if st != nil {
			c.soc = st
			return
		}
	}
	out, err := c.x.ev.EvalStepBulk(last, ctxSeq, c.f)
	if err != nil {
		c.err = err
		return
	}
	c.items = out.Group(0)
}

// newStage builds the chunked stage for one StandOff step over an item
// context, dispatching on the step's class. A nil stage (with nil error)
// means the context is not chunkable and the caller must run the bulk step.
func newStage(x *executor, sp *xqplan.StepPlan, g []xqeval.Item) (soStage, error) {
	if sp.Streamability() == xqplan.StreamChunkedReject {
		rc, err := newRejectCursor(x, sp, g)
		if rc == nil || err != nil {
			return nil, err
		}
		return rc, nil
	}
	sc, err := newStandoffCursor(x, sp, g)
	if sc == nil || err != nil {
		return nil, err
	}
	return sc, nil
}

// newStageFromUpstream drains the upstream stage into a pres context — 12
// bytes per row, never a materialised item sequence — and builds the next
// chunked stage over it. The drain is what composition costs: a chunked
// stage needs its whole context sorted by region start before its first
// join, which is exactly the materialisation point the bulk prefix would
// have had, minus the items.
func newStageFromUpstream(x *executor, sp *xqplan.StepPlan, up soStage) (soStage, error) {
	var pres []int32
	for {
		p, ok := up.nextPre()
		if !ok {
			break
		}
		pres = append(pres, p)
	}
	d := up.streamDoc()
	up.Close()
	if sp.Streamability() == xqplan.StreamChunkedReject {
		return newRejectCursorFromPres(x, sp, d, pres)
	}
	return newStandoffCursorFromPres(x, sp, d, pres)
}

// drainStageItems materialises a chain stage's remaining output as items,
// for final steps that need the full context sequence anyway.
func drainStageItems(st soStage) []xqeval.Item {
	var out []xqeval.Item
	d := st.streamDoc()
	for {
		p, ok := st.nextPre()
		if !ok {
			break
		}
		out = append(out, xqeval.NodeItem(d, p))
	}
	st.Close()
	return out
}

// disjointContext reports whether the context nodes are strictly ascending
// in document order with pairwise-disjoint subtrees (and are all element- or
// document-kind nodes — attribute contexts take the bulk path).
func disjointContext(ctx []xqeval.Item) bool {
	for i, it := range ctx {
		if it.Kind != xqeval.KNode {
			return false
		}
		if i == 0 {
			continue
		}
		prev := ctx[i-1]
		if prev.D == it.D {
			if it.Pre <= prev.Pre+prev.D.Size(prev.Pre) {
				return false // nested, duplicate, or out of order
			}
		} else if xqeval.CompareDocOrder(prev, it) >= 0 {
			return false
		}
	}
	return true
}

func (c *pathCursor) Next() bool {
	if !c.started {
		c.init()
	}
	if c.err != nil {
		return false
	}
	if c.soc != nil { // chunked StandOff final step
		if c.soc.Next() {
			c.cur = c.soc.Item()
			c.produced++
			return true
		}
		c.record()
		return false
	}
	if c.last == nil { // fallback: iterate the materialised result
		if len(c.items) == 0 {
			c.record()
			return false
		}
		c.cur = c.items[0]
		c.items = c.items[1:]
		c.produced++
		return true
	}
	for {
		if len(c.buf) > 0 {
			c.cur = c.buf[0]
			c.buf = c.buf[1:]
			c.produced++
			return true
		}
		if len(c.ctx) == 0 {
			c.record()
			return false
		}
		buf, err := c.x.ev.TreeStepItems(c.last, c.ctx[0])
		if err != nil {
			c.err = err
			return false
		}
		c.ctx = c.ctx[1:]
		c.buf = buf
	}
}

// record reports the path's emitted item count to the ANALYZE collector,
// once. A cursor closed before it is drained reports what it produced.
func (c *pathCursor) record() {
	if c.recorded {
		return
	}
	c.recorded = true
	c.x.ev.Stats.RecordOp(c.p, 0, c.produced)
}

func (c *pathCursor) Item() xqeval.Item { return c.cur }
func (c *pathCursor) Err() error        { return c.err }

// Close terminates the cursor: started is set so a later Next cannot
// re-evaluate the path, and last is cleared so the drained fallback branch
// (empty items) answers it.
func (c *pathCursor) Close() {
	if c.started && c.err == nil {
		c.record()
	}
	c.started = true
	c.last = nil
	c.ctx, c.buf, c.items = nil, nil, nil
	if c.soc != nil {
		c.soc.Close()
		c.soc = nil
	}
}

package xqexec

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"soxq/internal/xqeval"
)

// fakeShard is a ShardSource-backed cursor over a fixed item sequence, with
// an optional error injected after the items and close tracking for the
// teardown assertions.
type fakeShard struct {
	items  []xqeval.Item
	err    error
	i      int
	closed atomic.Bool
}

func (f *fakeShard) Next() bool {
	if f.i >= len(f.items) {
		return false
	}
	f.i++
	return true
}

func (f *fakeShard) Item() xqeval.Item { return f.items[f.i-1] }
func (f *fakeShard) Err() error {
	if f.i >= len(f.items) {
		return f.err
	}
	return nil
}
func (f *fakeShard) Close() { f.closed.Store(true) }

// intShard builds n items tagged with the shard id so merge order is
// checkable: shard s yields s*1000, s*1000+1, ...
func intShard(s, n int) *fakeShard {
	f := &fakeShard{}
	for i := 0; i < n; i++ {
		f.items = append(f.items, xqeval.Int(int64(s*1000+i)))
	}
	return f
}

func sourcesFor(shards []*fakeShard) []ShardSource {
	out := make([]ShardSource, len(shards))
	for i, f := range shards {
		out[i] = func() (Cursor, error) { return f, nil }
	}
	return out
}

func drainInts(t *testing.T, c Cursor) ([]int64, error) {
	t.Helper()
	var got []int64
	for c.Next() {
		n, ok, err := xqeval.SingletonInt([]xqeval.Item{c.Item()})
		if err != nil || !ok {
			t.Fatalf("non-int item: %v %v", ok, err)
		}
		got = append(got, n)
	}
	err := c.Err()
	c.Close()
	return got, err
}

// TestMergeShardsOrder pins the document-order merge: whatever the worker
// count and chunk size, the merged stream is the in-order concatenation of
// the shard streams — including empty shards and shard counts that do not
// divide evenly across workers.
func TestMergeShardsOrder(t *testing.T) {
	sizes := []int{3, 0, 7, 1, 0, 5, 2}
	var want []int64
	for s, n := range sizes {
		for i := 0; i < n; i++ {
			want = append(want, int64(s*1000+i))
		}
	}
	for _, workers := range []int{0, 1, 2, 3, 16} {
		for _, chunk := range []int{1, 2, 1024} {
			t.Run(fmt.Sprintf("workers=%d/chunk=%d", workers, chunk), func(t *testing.T) {
				shards := make([]*fakeShard, len(sizes))
				for s, n := range sizes {
					shards[s] = intShard(s, n)
				}
				got, err := drainInts(t, MergeShards(sourcesFor(shards), workers, chunk, nil))
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("got %d items, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("item %d = %d, want %d", i, got[i], want[i])
					}
				}
				for s, f := range shards {
					if f.i > 0 && !f.closed.Load() {
						t.Errorf("shard %d cursor not closed", s)
					}
				}
			})
		}
	}
}

// TestMergeShardsErrorPosition pins the sequential error contract for both
// forms: a failing shard surfaces its error after every item of the shards
// before it and after its own pre-error items.
func TestMergeShardsErrorPosition(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			shards := []*fakeShard{intShard(0, 2), intShard(1, 2), intShard(2, 3)}
			shards[1].err = boom
			got, err := drainInts(t, MergeShards(sourcesFor(shards), workers, 1, nil))
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want boom", err)
			}
			want := []int64{0, 1, 1000, 1001}
			if len(got) != len(want) {
				t.Fatalf("got %v, want %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("got %v, want %v", got, want)
				}
			}
		})
	}
}

// TestMergeShardsSourceError pins a failing source (the shard pipeline could
// not even be built): its error takes the shard's position in the stream.
func TestMergeShardsSourceError(t *testing.T) {
	boom := errors.New("no such document")
	for _, workers := range []int{1, 2} {
		first := intShard(0, 2)
		srcs := []ShardSource{
			func() (Cursor, error) { return first, nil },
			func() (Cursor, error) { return nil, boom },
			func() (Cursor, error) { return intShard(2, 2), nil },
		}
		got, err := drainInts(t, MergeShards(srcs, workers, 4, nil))
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want source error", workers, err)
		}
		if len(got) != 2 {
			t.Fatalf("workers=%d: got %v, want shard 0 only", workers, got)
		}
	}
}

// TestMergeShardsEarlyCloseNoLeak closes the parallel merge mid-stream and
// asserts the pool unwinds: every started shard cursor is closed and no
// worker goroutine survives.
func TestMergeShardsEarlyCloseNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		shards := make([]*fakeShard, 12)
		for s := range shards {
			shards[s] = intShard(s, 500)
		}
		c := MergeShards(sourcesFor(shards), 4, 8, nil)
		for i := 0; i < 1+round*7; i++ {
			if !c.Next() {
				t.Fatal("stream ended early")
			}
		}
		c.Close()
		c.Close() // idempotent
		for _, f := range shards {
			if f.i > 0 && !f.closed.Load() {
				t.Fatal("started shard cursor left open after Close")
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines leaked after early closes",
				runtime.NumGoroutine()-baseline)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestMergeShardsLazySequential pins that the sequential form builds shard
// sources lazily: closing after the first shard's items must not have
// invoked the later sources at all.
func TestMergeShardsLazySequential(t *testing.T) {
	var built [3]atomic.Bool
	shards := []*fakeShard{intShard(0, 4), intShard(1, 4), intShard(2, 4)}
	srcs := make([]ShardSource, 3)
	for i := range srcs {
		srcs[i] = func() (Cursor, error) { built[i].Store(true); return shards[i], nil }
	}
	c := MergeShards(srcs, 1, 0, nil)
	for i := 0; i < 3; i++ {
		if !c.Next() {
			t.Fatal("stream ended early")
		}
	}
	c.Close()
	if !built[0].Load() || built[1].Load() || built[2].Load() {
		t.Fatalf("sources built = %v %v %v, want only the first",
			built[0].Load(), built[1].Load(), built[2].Load())
	}
}

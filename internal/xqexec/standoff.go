package xqexec

import (
	"sort"

	"soxq/internal/tree"
	"soxq/internal/xqeval"
	"soxq/internal/xqplan"
)

// standoffCursor pipelines a StandOff select final step per context-node
// chunk. The bulk step runs one loop-lifted join over the whole context and
// materialises the whole output; this cursor instead sorts the context areas
// by region start, runs the same join one chunk of context nodes at a time,
// and feeds the chunk outputs through a streaming ordered merge — so only
// one chunk's join state plus the merge's pending heap is ever live.
//
// The merge is where the streaming is earned. Chunk outputs are each sorted
// in document order, but outputs of different chunks may interleave
// arbitrarily (region order and document order are unrelated in a permuted
// stand-off document), so the cursor cannot simply concatenate them. It
// keeps pending items in a document-order heap keyed by node identity (all
// items are nodes of one document, so the pre rank is the identity) and
// emits an item only when the candidate-interval watermark proves no
// remaining chunk can produce a smaller one: once every unprocessed context
// area starts at or after position S, a contained candidate must start at or
// after S (select-narrow) and an overlapping candidate must end at or after
// S (select-wide), and the suffix-min arrays over the candidate sequence's
// start- and end-ordered rows (internal/core) translate that interval bound
// into the smallest still-reachable pre. Everything below it is final.
// Cross-chunk duplicates — one candidate matched by context nodes of
// different chunks — are still pending together when the second copy
// arrives (the watermark that let the first copy out would have ruled the
// second one impossible), so dedup at heap pop is exact.
//
// For annotation corpora whose document order roughly follows region order —
// the common case the paper's conversion produces — the watermark advances
// with the frontier and the heap stays near the chunk size. A fully permuted
// layer degrades gracefully: the heap grows toward the output size, never
// past it, and the result is still byte-identical to the bulk step.
type standoffCursor struct {
	x  *executor
	sp *xqplan.StepPlan
	so *xqeval.StandOffStream

	ctx     []soCtx       // area context nodes, ascending by region start
	i       int           // next unprocessed context index
	scratch []xqeval.Item // reused per-chunk context buffer

	heap preHeap
	out  []xqeval.Item // items proven final, in document order
	oi   int

	rowsIn   int64 // full context row count, for the step's ANALYZE record
	produced int64
	lastPre  int32
	emitted  bool // lastPre is valid (guards the pre==0 first emission)
	recorded bool

	done bool
	cur  xqeval.Item
}

// soCtx is one context area with its sort key (minimum region start).
type soCtx struct {
	start int64
	item  xqeval.Item
}

// newStandoffCursor builds the chunked cursor for a StandOff select final
// step over the evaluated context g. It returns (nil, nil) when the context
// is not chunkable — nodes of more than one document (the join partitions
// per document fragment; the bulk step handles that) — and the caller falls
// back to the bulk step. Non-area and attribute context nodes can never
// match and are dropped from the chunk stream.
func newStandoffCursor(x *executor, sp *xqplan.StepPlan, g []xqeval.Item) (*standoffCursor, error) {
	var d *tree.Doc
	for _, it := range g {
		if it.Kind != xqeval.KNode {
			continue
		}
		if d == nil {
			d = it.D
		} else if it.D != d {
			return nil, nil
		}
	}
	c := &standoffCursor{x: x, sp: sp, rowsIn: int64(len(g))}
	if d == nil {
		// No element context at all: the step is empty, but still streams
		// (and still reports its ANALYZE row counts).
		return c, nil
	}
	so, err := x.ev.NewStandOffStream(sp, d, len(g))
	if err != nil {
		return nil, err
	}
	if so == nil {
		return c, nil // no candidate can ever match: empty stream
	}
	c.so = so
	c.ctx = make([]soCtx, 0, len(g))
	for _, it := range g {
		if s, ok := so.CtxStart(it); ok {
			c.ctx = append(c.ctx, soCtx{start: s, item: it})
		}
	}
	sort.Slice(c.ctx, func(a, b int) bool { return c.ctx[a].start < c.ctx[b].start })
	return c, nil
}

// refill processes context chunks until at least one pending item is proven
// final (or the context is exhausted). A chunk's join output is itself a
// sorted run, so when nothing is pending the run's prefix below the
// watermark is emitted wholesale — an in-order corpus never pays for the
// heap at all (the whole run is handed over without a copy); the heap only
// engages for runs that genuinely interleave across chunks.
func (c *standoffCursor) refill() {
	chunkSize := c.x.chunkSize()
	for {
		if c.i >= len(c.ctx) {
			c.flush()
			return
		}
		n := min(chunkSize, len(c.ctx)-c.i)
		if cap(c.scratch) < n {
			c.scratch = make([]xqeval.Item, 0, n)
		}
		c.scratch = c.scratch[:0]
		for j := 0; j < n; j++ {
			c.scratch = append(c.scratch, c.ctx[c.i+j].item)
		}
		c.i += n
		joined := c.so.JoinChunk(c.scratch)
		final := c.i >= len(c.ctx)
		var wm int32
		if !final {
			w, ok := c.so.Watermark(c.ctx[c.i].start)
			if !ok {
				// No remaining candidate can match any remaining context
				// area: the joins of the remaining chunks would all come
				// back empty, so skip them (the chunked analogue of the
				// merge join's early break) and finish.
				c.i = len(c.ctx)
				final = true
			} else {
				wm = w
			}
		}
		switch {
		case final:
			if c.heap.len() == 0 {
				c.emitRun(joined)
			} else {
				for _, it := range joined {
					c.heap.push(it)
				}
			}
			c.flush()
			return
		case c.heap.len() == 0:
			k := sort.Search(len(joined), func(i int) bool { return joined[i].Pre >= wm })
			c.emitRun(joined[:k])
			for _, it := range joined[k:] {
				c.heap.push(it)
			}
		default:
			for _, it := range joined {
				c.heap.push(it)
			}
			for c.heap.len() > 0 && c.heap.top().Pre < wm {
				c.emit(c.heap.pop())
			}
		}
		if c.oi < len(c.out) {
			return
		}
	}
}

// flush drains the heap (every pending item is final) and ends the stream.
func (c *standoffCursor) flush() {
	for c.heap.len() > 0 {
		c.emit(c.heap.pop())
	}
	c.done = true
}

// emitRun appends a sorted duplicate-free run of final items to the output
// buffer; an empty buffer takes the run without a copy. Runs never overlap
// previously emitted items — a run is only emitted below a watermark that
// ruled its items out for every remaining chunk.
func (c *standoffCursor) emitRun(items []xqeval.Item) {
	if len(items) == 0 {
		return
	}
	if len(c.out) == 0 {
		c.out = items
	} else {
		c.out = append(c.out, items...)
	}
	c.emitted, c.lastPre = true, items[len(items)-1].Pre
	c.produced += int64(len(items))
}

// emit appends a popped item to the output buffer, dropping cross-chunk
// duplicates (the heap pops equal pres adjacently).
func (c *standoffCursor) emit(it xqeval.Item) {
	if c.emitted && it.Pre == c.lastPre {
		return
	}
	c.emitted, c.lastPre = true, it.Pre
	c.out = append(c.out, it)
	c.produced++
}

func (c *standoffCursor) Next() bool {
	for {
		if c.oi < len(c.out) {
			c.cur = c.out[c.oi]
			c.oi++
			return true
		}
		if c.done {
			c.record()
			return false
		}
		c.out, c.oi = c.out[:0], 0
		c.refill()
	}
}

// record reports the step's ANALYZE row counts, once — a cursor closed
// before it is drained reports what it produced.
func (c *standoffCursor) record() {
	if c.recorded {
		return
	}
	c.recorded = true
	c.x.ev.Stats.RecordStep(c.sp, c.rowsIn, c.produced)
}

func (c *standoffCursor) Item() xqeval.Item { return c.cur }
func (c *standoffCursor) Err() error        { return nil }

func (c *standoffCursor) Close() {
	c.record()
	c.done = true
	c.ctx, c.out, c.heap.items, c.scratch = nil, nil, nil, nil
	c.i, c.oi = 0, 0
}

// preHeap is a binary min-heap of node items keyed by pre rank — the
// document-order heap of the streaming merge (all items share one document,
// so pre order is document order and equal pres are the same node).
type preHeap struct {
	items []xqeval.Item
}

func (h *preHeap) len() int         { return len(h.items) }
func (h *preHeap) top() xqeval.Item { return h.items[0] }

func (h *preHeap) push(it xqeval.Item) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].Pre <= h.items[i].Pre {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *preHeap) pop() xqeval.Item {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].Pre < h.items[small].Pre {
			small = l
		}
		if r < len(h.items) && h.items[r].Pre < h.items[small].Pre {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

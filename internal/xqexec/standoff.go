package xqexec

import (
	"slices"
	"sort"

	"soxq/internal/tree"
	"soxq/internal/xqeval"
	"soxq/internal/xqplan"
)

// standoffCursor pipelines a StandOff select final step per context-node
// chunk. The bulk step runs one loop-lifted join over the whole context and
// materialises the whole output; this cursor instead sorts the context areas
// by region start, runs the same join one chunk of context nodes at a time,
// and feeds the chunk outputs through a streaming ordered merge — so only
// one chunk's join state plus the merge's pending heap is ever live.
//
// The merge is where the streaming is earned. Chunk outputs are each sorted
// in document order, but outputs of different chunks may interleave
// arbitrarily (region order and document order are unrelated in a permuted
// stand-off document), so the cursor cannot simply concatenate them. It
// keeps pending items in a document-order heap keyed by node identity (all
// items are nodes of one document, so the pre rank is the identity) and
// emits an item only when the candidate-interval watermark proves no
// remaining chunk can produce a smaller one: once every unprocessed context
// area starts at or after position S, a contained candidate must start at or
// after S (select-narrow) and an overlapping candidate must end at or after
// S (select-wide), and the suffix-min arrays over the candidate sequence's
// start- and end-ordered rows (internal/core) translate that interval bound
// into the smallest still-reachable pre. Everything below it is final.
// Cross-chunk duplicates — one candidate matched by context nodes of
// different chunks — are still pending together when the second copy
// arrives (the watermark that let the first copy out would have ruled the
// second one impossible), so dedup at heap pop is exact.
//
// The whole pipeline runs on pre ranks, not items: context areas, the
// pending heap, and the final output buffer are all int32 pres (a sixteenth
// of an Item), and the one-document Item materialises only at emission in
// Item(). Together with the stream's recycled join buffers this makes the
// per-chunk steady state allocation-free.
//
// For annotation corpora whose document order roughly follows region order —
// the common case the paper's conversion produces — the watermark advances
// with the frontier and the heap stays near the chunk size. A fully permuted
// layer degrades gracefully: the heap grows toward the output size, never
// past it, and the result is still byte-identical to the bulk step.
type standoffCursor struct {
	x  *executor
	sp *xqplan.StepPlan
	so *xqeval.StandOffStream
	d  *tree.Doc // the stream's single document; nil when the step is empty

	ctx     []soCtx // area context nodes, ascending by region start
	i       int     // next unprocessed context index
	scratch []int32 // reused per-chunk context pre buffer

	heap preHeap
	out  []int32 // pres proven final, in document order
	oi   int

	rowsIn   int64 // full context row count, for the step's ANALYZE record
	produced int64
	lastPre  int32
	emitted  bool // lastPre is valid (guards the pre==0 first emission)
	recorded bool

	done bool
	cur  xqeval.Item
}

// soCtx is one context area pre with its sort key (minimum region start).
type soCtx struct {
	start int64
	pre   int32
}

// newStandoffCursor builds the chunked cursor for a StandOff select final
// step over the evaluated context g. It returns (nil, nil) when the context
// is not chunkable — nodes of more than one document (the join partitions
// per document fragment; the bulk step handles that) — and the caller falls
// back to the bulk step. Non-area and attribute context nodes can never
// match and are dropped from the chunk stream.
func newStandoffCursor(x *executor, sp *xqplan.StepPlan, g []xqeval.Item) (*standoffCursor, error) {
	var d *tree.Doc
	for _, it := range g {
		if it.Kind != xqeval.KNode {
			continue
		}
		if d == nil {
			d = it.D
		} else if it.D != d {
			return nil, nil
		}
	}
	c := &standoffCursor{x: x, sp: sp, rowsIn: int64(len(g))}
	if d == nil {
		// No element context at all: the step is empty, but still streams
		// (and still reports its ANALYZE row counts).
		return c, nil
	}
	so, err := x.ev.NewStandOffStream(sp, d, len(g))
	if err != nil {
		return nil, err
	}
	if so == nil {
		return c, nil // no candidate can ever match: empty stream
	}
	c.so = so
	c.d = so.Doc()
	c.ctx = make([]soCtx, 0, len(g))
	for _, it := range g {
		if s, ok := so.CtxStart(it); ok {
			c.ctx = append(c.ctx, soCtx{start: s, pre: it.Pre})
		}
	}
	slices.SortFunc(c.ctx, func(a, b soCtx) int {
		switch {
		case a.start < b.start:
			return -1
		case a.start > b.start:
			return 1
		default:
			return 0
		}
	})
	return c, nil
}

// refill processes context chunks until at least one pending item is proven
// final (or the context is exhausted). A chunk's join output is itself a
// sorted run, so when nothing is pending the run's prefix below the
// watermark is emitted wholesale — an in-order corpus never pays for the
// heap at all; the heap only engages for runs that genuinely interleave
// across chunks.
func (c *standoffCursor) refill() {
	chunkSize := c.x.chunkSize()
	for {
		if c.i >= len(c.ctx) {
			c.flush()
			return
		}
		n := min(chunkSize, len(c.ctx)-c.i)
		if cap(c.scratch) < n {
			c.scratch = make([]int32, 0, n)
		}
		c.scratch = c.scratch[:0]
		for j := 0; j < n; j++ {
			c.scratch = append(c.scratch, c.ctx[c.i+j].pre)
		}
		c.i += n
		joined := c.so.JoinChunkPres(c.scratch)
		final := c.i >= len(c.ctx)
		var wm int32
		if !final {
			w, ok := c.so.Watermark(c.ctx[c.i].start)
			if !ok {
				// No remaining candidate can match any remaining context
				// area: the joins of the remaining chunks would all come
				// back empty, so skip them (the chunked analogue of the
				// merge join's early break) and finish.
				c.i = len(c.ctx)
				final = true
			} else {
				wm = w
			}
		}
		switch {
		case final:
			if c.heap.len() == 0 {
				c.emitRun(joined)
			} else {
				for _, pre := range joined {
					c.heap.push(pre)
				}
			}
			c.flush()
			return
		case c.heap.len() == 0:
			k := sort.Search(len(joined), func(i int) bool { return joined[i] >= wm })
			c.emitRun(joined[:k])
			for _, pre := range joined[k:] {
				c.heap.push(pre)
			}
		default:
			for _, pre := range joined {
				c.heap.push(pre)
			}
			for c.heap.len() > 0 && c.heap.top() < wm {
				c.emit(c.heap.pop())
			}
		}
		if c.oi < len(c.out) {
			// The cursor drains c.out completely before the next refill, so
			// returning here is what makes reusing the stream's joined
			// buffer safe: by the next JoinChunkPres every emitted pre has
			// been copied out or consumed.
			return
		}
	}
}

// flush drains the heap (every pending item is final) and ends the stream.
func (c *standoffCursor) flush() {
	for c.heap.len() > 0 {
		c.emit(c.heap.pop())
	}
	c.done = true
}

// emitRun appends a sorted duplicate-free run of final pres to the output
// buffer. Runs never overlap previously emitted pres — a run is only emitted
// below a watermark that ruled its items out for every remaining chunk.
func (c *standoffCursor) emitRun(pres []int32) {
	if len(pres) == 0 {
		return
	}
	c.out = append(c.out, pres...)
	c.emitted, c.lastPre = true, pres[len(pres)-1]
	c.produced += int64(len(pres))
}

// emit appends a popped pre to the output buffer, dropping cross-chunk
// duplicates (the heap pops equal pres adjacently).
func (c *standoffCursor) emit(pre int32) {
	if c.emitted && pre == c.lastPre {
		return
	}
	c.emitted, c.lastPre = true, pre
	c.out = append(c.out, pre)
	c.produced++
}

func (c *standoffCursor) Next() bool {
	for {
		if c.oi < len(c.out) {
			c.cur = xqeval.NodeItem(c.d, c.out[c.oi])
			c.oi++
			return true
		}
		if c.done {
			c.record()
			return false
		}
		c.out, c.oi = c.out[:0], 0
		c.refill()
	}
}

// record reports the step's ANALYZE row counts, once — a cursor closed
// before it is drained reports what it produced.
func (c *standoffCursor) record() {
	if c.recorded {
		return
	}
	c.recorded = true
	c.x.ev.Stats.RecordStep(c.sp, c.rowsIn, c.produced)
}

func (c *standoffCursor) Item() xqeval.Item { return c.cur }
func (c *standoffCursor) Err() error        { return nil }

func (c *standoffCursor) Close() {
	c.record()
	c.done = true
	c.ctx, c.out, c.heap.pres, c.scratch = nil, nil, nil, nil
	c.i, c.oi = 0, 0
}

// preHeap is a binary min-heap of pre ranks — the document-order heap of the
// streaming merge (all items share one document, so pre order is document
// order and equal pres are the same node).
type preHeap struct {
	pres []int32
}

func (h *preHeap) len() int   { return len(h.pres) }
func (h *preHeap) top() int32 { return h.pres[0] }

func (h *preHeap) push(pre int32) {
	h.pres = append(h.pres, pre)
	i := len(h.pres) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.pres[p] <= h.pres[i] {
			break
		}
		h.pres[p], h.pres[i] = h.pres[i], h.pres[p]
		i = p
	}
}

func (h *preHeap) pop() int32 {
	top := h.pres[0]
	last := len(h.pres) - 1
	h.pres[0] = h.pres[last]
	h.pres = h.pres[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.pres) && h.pres[l] < h.pres[small] {
			small = l
		}
		if r < len(h.pres) && h.pres[r] < h.pres[small] {
			small = r
		}
		if small == i {
			break
		}
		h.pres[i], h.pres[small] = h.pres[small], h.pres[i]
		i = small
	}
	return top
}

package xqexec

import (
	"slices"
	"sort"

	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xqeval"
	"soxq/internal/xqplan"
)

// soStage is one chunked StandOff pipeline stage: a document-order stream of
// candidate pre ranks over a single document. Both the select cursor and the
// reject cursor implement it; the path cursor composes consecutive
// chunk-streamable steps by draining each stage's pres into the next one's
// context — 12 bytes per intermediate row, never a materialised item
// sequence.
type soStage interface {
	Cursor
	// nextPre advances the pre-rank stream (the item-free form of Next).
	nextPre() (int32, bool)
	// streamDoc returns the stage's single document; nil when the stage is
	// statically empty.
	streamDoc() *tree.Doc
}

// standoffCursor pipelines a StandOff select final step per context-node
// chunk. The bulk step runs one loop-lifted join over the whole context and
// materialises the whole output; this cursor instead sorts the context areas
// by region start, runs the same join one chunk of context nodes at a time,
// and feeds the chunk outputs through a streaming ordered merge — so only
// one chunk's join state plus the merge's pending heap is ever live.
//
// The merge is where the streaming is earned. Chunk outputs are each sorted
// in document order, but outputs of different chunks may interleave
// arbitrarily (region order and document order are unrelated in a permuted
// stand-off document), so the cursor cannot simply concatenate them. It
// keeps pending items in a document-order heap keyed by node identity (all
// items are nodes of one document, so the pre rank is the identity) and
// emits an item only when the candidate-interval watermark proves no
// remaining chunk can produce a smaller one: once every unprocessed context
// area starts at or after position S, a contained candidate must start at or
// after S (select-narrow) and an overlapping candidate must end at or after
// S (select-wide), and the suffix-min arrays over the candidate sequence's
// start- and end-ordered rows (internal/core) translate that interval bound
// into the smallest still-reachable pre. Everything below it is final.
// Cross-chunk duplicates — one candidate matched by context nodes of
// different chunks — are still pending together when the second copy
// arrives (the watermark that let the first copy out would have ruled the
// second one impossible), so dedup at heap pop is exact.
//
// The whole pipeline runs on pre ranks, not items: context areas, the
// pending heap, and the final output buffer are all int32 pres (a sixteenth
// of an Item), and the one-document Item materialises only at emission in
// Item(). Together with the stream's recycled join buffers this makes the
// per-chunk steady state allocation-free.
//
// For annotation corpora whose document order roughly follows region order —
// the common case the paper's conversion produces — the watermark advances
// with the frontier and the heap stays near the chunk size. A fully permuted
// layer degrades gracefully: the heap grows toward the output size, never
// past it, and the result is still byte-identical to the bulk step.
type standoffCursor struct {
	x  *executor
	sp *xqplan.StepPlan
	so *xqeval.StandOffStream
	d  *tree.Doc // the stream's single document; nil when the step is empty

	ctx     []soCtx // area context nodes, ascending by region start
	i       int     // next unprocessed context index
	scratch []int32 // reused per-chunk context pre buffer

	// chunk is the adaptive per-refill context chunk size, re-sized between
	// chunks from the merge heap's occupancy (see adaptChunk) within
	// [configured/4, configured*4]. chunkMin/chunkMax/chunks feed the step's
	// ANALYZE record.
	chunk    int
	chunkMin int
	chunkMax int
	chunks   int64

	heap preHeap
	out  []int32 // pres proven final, in document order
	oi   int

	rowsIn   int64 // full context row count, for the step's ANALYZE record
	produced int64
	lastPre  int32
	emitted  bool // lastPre is valid (guards the pre==0 first emission)
	recorded bool

	done bool
	cur  xqeval.Item
}

// soCtx is one context area pre with its sort key (minimum region start).
type soCtx struct {
	start int64
	pre   int32
}

// newStandoffCursor builds the chunked cursor for a StandOff select final
// step over the evaluated context g. It returns (nil, nil) when the context
// is not chunkable — nodes of more than one document (the join partitions
// per document fragment; the bulk step handles that) — and the caller falls
// back to the bulk step. Non-area and attribute context nodes can never
// match and are dropped from the chunk stream.
func newStandoffCursor(x *executor, sp *xqplan.StepPlan, g []xqeval.Item) (*standoffCursor, error) {
	var d *tree.Doc
	for _, it := range g {
		if it.Kind != xqeval.KNode {
			continue
		}
		if d == nil {
			d = it.D
		} else if it.D != d {
			return nil, nil
		}
	}
	c := &standoffCursor{x: x, sp: sp, rowsIn: int64(len(g)), chunk: x.chunkSize()}
	if d == nil {
		// No element context at all: the step is empty, but still streams
		// (and still reports its ANALYZE row counts).
		return c, nil
	}
	so, err := x.ev.NewStandOffStream(sp, d, len(g))
	if err != nil {
		return nil, err
	}
	if so == nil {
		return c, nil // no candidate can ever match: empty stream
	}
	c.so = so
	c.d = so.Doc()
	c.ctx = make([]soCtx, 0, len(g))
	for _, it := range g {
		if s, ok := so.CtxStart(it); ok {
			c.ctx = append(c.ctx, soCtx{start: s, pre: it.Pre})
		}
	}
	sortCtxByStart(c.ctx)
	return c, nil
}

// newStandoffCursorFromPres builds the chunked select cursor over an
// upstream chain stage's drained output: pres of a single document, already
// deduplicated and in document order. Unlike the item form this never fails
// over to the bulk step — a single document is guaranteed by construction.
func newStandoffCursorFromPres(x *executor, sp *xqplan.StepPlan, d *tree.Doc, pres []int32) (*standoffCursor, error) {
	c := &standoffCursor{x: x, sp: sp, rowsIn: int64(len(pres)), chunk: x.chunkSize()}
	if d == nil || len(pres) == 0 {
		return c, nil
	}
	so, err := x.ev.NewStandOffStream(sp, d, len(pres))
	if err != nil {
		return nil, err
	}
	if so == nil {
		return c, nil
	}
	c.so = so
	c.d = so.Doc()
	c.ctx = ctxFromPres(so, pres)
	return c, nil
}

// ctxFromPres builds the start-sorted context table from bare pres (the
// composed-cursor handoff). Pres without regions can never match and drop.
func ctxFromPres(so *xqeval.StandOffStream, pres []int32) []soCtx {
	ctx := make([]soCtx, 0, len(pres))
	for _, pre := range pres {
		if s, ok := so.CtxStartPre(pre); ok {
			ctx = append(ctx, soCtx{start: s, pre: pre})
		}
	}
	sortCtxByStart(ctx)
	return ctx
}

func sortCtxByStart(ctx []soCtx) {
	slices.SortFunc(ctx, func(a, b soCtx) int {
		switch {
		case a.start < b.start:
			return -1
		case a.start > b.start:
			return 1
		default:
			return 0
		}
	})
}

// refill processes context chunks until at least one pending item is proven
// final (or the context is exhausted). A chunk's join output is itself a
// sorted run, so when nothing is pending the run's prefix below the
// watermark is emitted wholesale — an in-order corpus never pays for the
// heap at all; the heap only engages for runs that genuinely interleave
// across chunks.
func (c *standoffCursor) refill() {
	for {
		if c.i >= len(c.ctx) {
			c.flush()
			return
		}
		n := min(c.chunk, len(c.ctx)-c.i)
		c.noteChunk(n)
		if cap(c.scratch) < n {
			c.scratch = make([]int32, 0, n)
		}
		c.scratch = c.scratch[:0]
		for j := 0; j < n; j++ {
			c.scratch = append(c.scratch, c.ctx[c.i+j].pre)
		}
		c.i += n
		joined := c.so.JoinChunkPres(c.scratch)
		final := c.i >= len(c.ctx)
		var wm int32
		if !final {
			w, ok := c.so.Watermark(c.ctx[c.i].start)
			if !ok {
				// No remaining candidate can match any remaining context
				// area: the joins of the remaining chunks would all come
				// back empty, so skip them (the chunked analogue of the
				// merge join's early break) and finish.
				c.i = len(c.ctx)
				final = true
			} else {
				wm = w
			}
		}
		switch {
		case final:
			if c.heap.len() == 0 {
				c.emitRun(joined)
			} else {
				for _, pre := range joined {
					c.heap.push(pre)
				}
			}
			c.flush()
			return
		case c.heap.len() == 0:
			k := sort.Search(len(joined), func(i int) bool { return joined[i] >= wm })
			c.emitRun(joined[:k])
			for _, pre := range joined[k:] {
				c.heap.push(pre)
			}
		default:
			for _, pre := range joined {
				c.heap.push(pre)
			}
			for c.heap.len() > 0 && c.heap.top() < wm {
				c.emit(c.heap.pop())
			}
		}
		c.adaptChunk(c.heap.len())
		if c.oi < len(c.out) {
			// The cursor drains c.out completely before the next refill, so
			// returning here is what makes reusing the stream's joined
			// buffer safe: by the next JoinChunkPres every emitted pre has
			// been copied out or consumed.
			return
		}
	}
}

// noteChunk records one executed chunk's size for the ANALYZE counters.
func (c *standoffCursor) noteChunk(n int) {
	c.chunks++
	if c.chunkMin == 0 || n < c.chunkMin {
		c.chunkMin = n
	}
	if n > c.chunkMax {
		c.chunkMax = n
	}
}

// adaptChunk re-sizes the next chunk from the merge heap's occupancy after
// this one. A heap well below the chunk size means region order is tracking
// document order (the watermark releases chunk outputs as they come), so
// larger chunks amortise the per-chunk join setup over more context rows; a
// heap outgrowing the chunk means the two orders diverge and smaller chunks
// keep the pending set — the stream's memory bound — tight. Bounded to
// [configured/4, configured*4] so a transient spike cannot run the size away
// from what the user asked for; an unbounded (Exec) run never adapts, it
// already joins everything in one chunk.
func (c *standoffCursor) adaptChunk(heapLen int) {
	cfg := c.x.cfg.ChunkSize
	if cfg <= 0 {
		return
	}
	switch {
	case heapLen > 2*c.chunk:
		if nc := max(c.chunk/2, max(cfg/4, 1)); nc != c.chunk {
			c.chunk = nc
			c.x.ev.Met.AdaptShrink()
		}
	case heapLen < c.chunk/4:
		if nc := min(c.chunk*2, cfg*4); nc != c.chunk {
			c.chunk = nc
			c.x.ev.Met.AdaptGrow()
		}
	}
}

// flush drains the heap (every pending item is final) and ends the stream.
func (c *standoffCursor) flush() {
	for c.heap.len() > 0 {
		c.emit(c.heap.pop())
	}
	c.done = true
}

// emitRun appends a sorted duplicate-free run of final pres to the output
// buffer. Runs never overlap previously emitted pres — a run is only emitted
// below a watermark that ruled its items out for every remaining chunk.
func (c *standoffCursor) emitRun(pres []int32) {
	if len(pres) == 0 {
		return
	}
	c.out = append(c.out, pres...)
	c.emitted, c.lastPre = true, pres[len(pres)-1]
	c.produced += int64(len(pres))
}

// emit appends a popped pre to the output buffer, dropping cross-chunk
// duplicates (the heap pops equal pres adjacently).
func (c *standoffCursor) emit(pre int32) {
	if c.emitted && pre == c.lastPre {
		return
	}
	c.emitted, c.lastPre = true, pre
	c.out = append(c.out, pre)
	c.produced++
}

func (c *standoffCursor) Next() bool {
	pre, ok := c.nextPre()
	if !ok {
		return false
	}
	c.cur = xqeval.NodeItem(c.d, pre)
	return true
}

// nextPre advances the stream one pre rank without materialising an item —
// the form downstream chain stages drain.
func (c *standoffCursor) nextPre() (int32, bool) {
	for {
		if c.oi < len(c.out) {
			pre := c.out[c.oi]
			c.oi++
			return pre, true
		}
		if c.done {
			c.record()
			return 0, false
		}
		c.out, c.oi = c.out[:0], 0
		c.refill()
	}
}

func (c *standoffCursor) streamDoc() *tree.Doc { return c.d }

// record reports the step's ANALYZE row counts, once — a cursor closed
// before it is drained reports what it produced.
func (c *standoffCursor) record() {
	if c.recorded {
		return
	}
	c.recorded = true
	c.x.ev.Stats.RecordStep(c.sp, c.rowsIn, c.produced)
	c.x.ev.Stats.RecordStepStream(c.sp, c.chunks, c.chunkMin, c.chunkMax)
}

func (c *standoffCursor) Item() xqeval.Item { return c.cur }
func (c *standoffCursor) Err() error        { return nil }

func (c *standoffCursor) Close() {
	c.record()
	c.done = true
	c.ctx, c.out, c.heap.pres, c.scratch = nil, nil, nil, nil
	c.i, c.oi = 0, 0
}

// rejectCursor pipelines a StandOff reject step per context chunk. Reject is
// an anti-join over the whole context (section 3.1: not contained in /
// overlapping ANY context area), so per-chunk complements cannot union;
// instead each chunk's select-side join marks the candidates it matches in
// an arena-recycled bitset, and after the last chunk one complement pass
// emits the unmarked candidates in document order. The stream is therefore
// blocking — first emission after the last chunk — but memory-bounded: one
// bit per candidate plus a single chunk's join state, against the bulk
// step's full pair materialisation. Chunks stop early once every candidate
// is marked (the result is fixed empty).
//
// Semantics mirror the bulk standOffRejectStep exactly: only element nodes
// of the stream's document make the iteration "touch" it (attributes never
// do), an untouched document contributes nothing, a touched document with an
// unmatched candidate set emits the full (post-filtered) candidate list, and
// a node test that cannot match any area yields an empty result.
type rejectCursor struct {
	x  *executor
	sp *xqplan.StepPlan
	so *xqeval.StandOffStream
	d  *tree.Doc // nil when the step is statically empty

	ctx     []soCtx // area context nodes, ascending by region start
	i       int
	chunk   int
	scratch []int32

	bits   *core.MatchBits
	areas  []int32 // candidate pres in document order; the complement universe
	ai     int     // next complement position
	chunks int64   // marking chunks executed, for the step's ANALYZE stream counters

	started  bool
	rowsIn   int64
	produced int64
	recorded bool
	cur      xqeval.Item
}

// newRejectCursor builds the chunked reject cursor over the evaluated
// context g. Returns (nil, nil) when the context spans documents — the bulk
// anti-join partitions per document; the caller falls back.
func newRejectCursor(x *executor, sp *xqplan.StepPlan, g []xqeval.Item) (*rejectCursor, error) {
	var d *tree.Doc
	for _, it := range g {
		if it.Kind != xqeval.KNode {
			continue // attributes and atomics never touch a document
		}
		if d == nil {
			d = it.D
		} else if it.D != d {
			return nil, nil
		}
	}
	c := &rejectCursor{x: x, sp: sp, rowsIn: int64(len(g)), chunk: x.chunkSize()}
	if d == nil {
		return c, nil // no element context: no document touched, empty result
	}
	// ctxRows 1 mirrors the bulk anti-join's cost input: it prices the merge
	// per iteration, and the pipeline is a single root iteration.
	so, err := x.ev.NewStandOffStream(sp, d, 1)
	if err != nil {
		return nil, err
	}
	if so == nil {
		return c, nil // no candidate exists: complement universe is empty
	}
	c.so = so
	c.d = so.Doc()
	c.ctx = make([]soCtx, 0, len(g))
	for _, it := range g {
		if s, ok := so.CtxStart(it); ok {
			c.ctx = append(c.ctx, soCtx{start: s, pre: it.Pre})
		}
	}
	sortCtxByStart(c.ctx)
	return c, nil
}

// newRejectCursorFromPres builds the chunked reject cursor over an upstream
// chain stage's drained pres (single document, document order).
func newRejectCursorFromPres(x *executor, sp *xqplan.StepPlan, d *tree.Doc, pres []int32) (*rejectCursor, error) {
	c := &rejectCursor{x: x, sp: sp, rowsIn: int64(len(pres)), chunk: x.chunkSize()}
	if d == nil || len(pres) == 0 {
		return c, nil // empty upstream: the document is not touched
	}
	so, err := x.ev.NewStandOffStream(sp, d, 1)
	if err != nil {
		return nil, err
	}
	if so == nil {
		return c, nil
	}
	c.so = so
	c.d = so.Doc()
	c.ctx = ctxFromPres(so, pres)
	return c, nil
}

// run executes the blocking phase: every context chunk's select-side join
// marks matched candidates, stopping early once all candidates are marked.
func (c *rejectCursor) run() {
	c.started = true
	if c.so == nil {
		return
	}
	c.areas = c.so.Areas()
	c.bits = c.x.ev.MatchBits(len(c.areas))
	for c.i < len(c.ctx) && c.bits.Marked() < len(c.areas) {
		n := min(c.chunk, len(c.ctx)-c.i)
		if cap(c.scratch) < n {
			c.scratch = make([]int32, 0, n)
		}
		c.scratch = c.scratch[:0]
		for j := 0; j < n; j++ {
			c.scratch = append(c.scratch, c.ctx[c.i+j].pre)
		}
		c.i += n
		c.chunks++
		c.so.MarkChunk(c.scratch, c.bits)
	}
}

func (c *rejectCursor) Next() bool {
	pre, ok := c.nextPre()
	if !ok {
		return false
	}
	c.cur = xqeval.NodeItem(c.d, pre)
	return true
}

func (c *rejectCursor) nextPre() (int32, bool) {
	if !c.started {
		c.run()
	}
	for c.ai < len(c.areas) {
		i := c.ai
		c.ai++
		if c.bits.Get(i) {
			continue
		}
		pre := c.areas[i]
		if !c.so.Keep(pre) {
			continue
		}
		c.produced++
		return pre, true
	}
	c.record()
	return 0, false
}

func (c *rejectCursor) record() {
	if c.recorded {
		return
	}
	c.recorded = true
	c.x.ev.Stats.RecordStep(c.sp, c.rowsIn, c.produced)
	c.x.ev.Stats.RecordStepStream(c.sp, c.chunks, c.chunk, c.chunk)
}

func (c *rejectCursor) streamDoc() *tree.Doc { return c.d }
func (c *rejectCursor) Item() xqeval.Item    { return c.cur }
func (c *rejectCursor) Err() error           { return nil }

func (c *rejectCursor) Close() {
	c.record()
	c.started = true
	c.ai = len(c.areas)
	if c.bits != nil {
		c.x.ev.ReleaseMatchBits(c.bits)
		c.bits = nil
	}
	c.ctx, c.scratch, c.areas = nil, nil, nil
}

// preHeap is a binary min-heap of pre ranks — the document-order heap of the
// streaming merge (all items share one document, so pre order is document
// order and equal pres are the same node).
type preHeap struct {
	pres []int32
}

func (h *preHeap) len() int   { return len(h.pres) }
func (h *preHeap) top() int32 { return h.pres[0] }

func (h *preHeap) push(pre int32) {
	h.pres = append(h.pres, pre)
	i := len(h.pres) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.pres[p] <= h.pres[i] {
			break
		}
		h.pres[p], h.pres[i] = h.pres[i], h.pres[p]
		i = p
	}
}

func (h *preHeap) pop() int32 {
	top := h.pres[0]
	last := len(h.pres) - 1
	h.pres[0] = h.pres[last]
	h.pres = h.pres[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.pres) && h.pres[l] < h.pres[small] {
			small = l
		}
		if r < len(h.pres) && h.pres[r] < h.pres[small] {
			small = r
		}
		if small == i {
			break
		}
		h.pres[i], h.pres[small] = h.pres[small], h.pres[i]
		i = small
	}
	return top
}

package xqexec

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xmlparse"
	"soxq/internal/xqeval"
	"soxq/internal/xqparse"
	"soxq/internal/xqplan"
)

// testDoc mixes plain structure with stand-off annotations: scenes and hits
// carry regions, speech nests under scenes, and a second document exercises
// cross-document contexts.
const testDoc = `<doc>
  <meta><title>corpus</title><title>alt</title></meta>
  <scene id="s1" start="0" end="99"><speech who="a">first</speech><speech who="b">second</speech></scene>
  <scene id="s2" start="100" end="199"><speech who="a">third</speech></scene>
  <scene id="s3" start="200" end="299"/>
  <hit id="h1" start="10" end="20"/>
  <hit id="h2" start="110" end="120"/>
  <hit id="h3" start="150" end="260"/>
  <hit id="h4" start="500" end="600"/>
</doc>`

const otherDoc = `<lib><book id="b1"><au>x</au></book><book id="b2"><au>y</au><au>z</au></book></lib>`

// permutedDoc is a stand-off document whose record order deliberately
// disagrees with region order (the paper's permuted conversion): the
// streaming merge of a chunked StandOff final step must re-establish
// document order across chunks through its heap, so every equivalence run
// over this document exercises the watermark logic, not just the
// already-ordered fast case. The span layer overlaps itself and crosses
// block boundaries; one word is annotated twice (w3/w3b share a region).
const permutedDoc = `<corpus>
  <word id="w9" start="80" end="89"/>
  <word id="w2" start="10" end="19"/>
  <block id="b2" start="50" end="99"/>
  <word id="w5" start="40" end="49"/>
  <span id="s2" start="45" end="85"/>
  <word id="w1" start="0" end="9"/>
  <block id="b1" start="0" end="49"/>
  <word id="w7" start="60" end="69"/>
  <span id="s1" start="5" end="55"/>
  <word id="w3" start="20" end="29"/>
  <word id="w3b" start="20" end="29"/>
  <span id="s3" start="90" end="99"/>
  <word id="w8" start="70" end="79"/>
  <word id="w4" start="30" end="39"/>
  <word id="w6" start="50" end="59"/>
  <word id="w0" start="95" end="99"/>
</corpus>`

// corpus is the query corpus every execution style must agree on. It covers
// the pipelined operators (FLWOR with for/let/where/at, paths with
// streamable and non-streamable final steps, sequences, ranges) and the
// fallback forms (order by, aggregates, constructors, quantifieds,
// conditionals), plus StandOff steps inside and outside loops.
var corpus = []string{
	// Pipelined FLWOR shapes.
	`for $s in doc("t.xml")//scene return $s`,
	`for $s in doc("t.xml")//scene return string($s/@id)`,
	`for $s in doc("t.xml")//scene where $s/@start > 50 return $s/@id`,
	`for $s at $p in doc("t.xml")//scene return $p * 10`,
	`for $s in doc("t.xml")//scene for $w in $s/speech return string($w/@who)`,
	`for $s in doc("t.xml")//scene let $n := count($s/speech) where $n > 0 return $n`,
	`let $d := doc("t.xml") for $h in $d//hit return string($h/@id)`,
	`for $i in 1 to 37 return $i * $i`,
	`for $i at $p in 3 to 40 return $p - $i`,
	`for $i in 1 to 10 for $j in 1 to $i return $j`,
	`for $i in 1 to 5 return <n v="{$i}">{$i + 1}</n>`,
	`for $s in doc("t.xml")//scene return <scene>{$s/speech}</scene>`,
	// StandOff steps inside loops (the paper's workload).
	`for $s in doc("t.xml")//scene return $s/select-narrow::hit`,
	`for $s in doc("t.xml")//scene return count($s/select-wide::hit)`,
	`for $s in doc("t.xml")//scene return $s/reject-narrow::hit`,
	`for $h in doc("t.xml")//hit return $h/reject-wide::scene/@id`,
	// Paths: streamable final steps, nested contexts, attributes.
	`doc("t.xml")//speech`,
	`doc("t.xml")//scene/speech`,
	`doc("t.xml")/doc/meta/title`,
	`doc("t.xml")//scene/@id`,
	`doc("t.xml")//scene/descendant-or-self::node()`,
	`doc("t.xml")//speech/ancestor::scene`,
	`doc("t.xml")//scene[speech]/speech[2]`,
	`doc("t.xml")//scene/select-wide::hit`,
	`(doc("t.xml")//scene, doc("o.xml")//book)/child::*`,
	// Chunked StandOff final steps over the permuted document: the merge
	// heap must reorder across chunks and dedup the doubly-annotated word.
	`doc("p.xml")//block/select-narrow::word`,
	`doc("p.xml")//span/select-wide::word`,
	`doc("p.xml")//span/select-narrow::word/@id`,
	`doc("p.xml")//word/select-wide::span`,
	`(doc("t.xml")//scene, doc("p.xml")//block)/select-narrow::hit`,
	`for $b in doc("p.xml")//block return count($b/select-wide::span)`,
	// Nested FLWOR loops over streamable bindings (cursor-valued bindings).
	`for $s in doc("t.xml")//scene for $w in $s/speech where $w/@who = "a" return string($w)`,
	`for $i in 1 to 9 for $j in 1 to $i for $k in $j to $i return $i * 100 + $j * 10 + $k`,
	`for $i at $p in 1 to 4 for $j at $q in 0 to $i return ($p, $q)`,
	`for $s in doc("t.xml")//scene for $h in $s/select-narrow::hit return ($s/@id, $h/@id)`,
	`for $b in doc("p.xml")//block for $w in doc("p.xml")//word where $w/@start >= $b/@start return ($b/@id, $w/@id)`,
	// Sequences, ranges, fallbacks.
	`(1, 2, doc("t.xml")//hit/@id, "x")`,
	`(doc("t.xml")//scene, doc("t.xml")//hit)`,
	`1 to 20`,
	`(5 to 4)`,
	`count(doc("t.xml")//hit)`,
	`sum(for $i in 1 to 100 return $i)`,
	`for $s in doc("t.xml")//scene order by $s/@id descending return $s/@id`,
	`some $h in doc("t.xml")//hit satisfies $h/@start > 400`,
	`if (count(doc("t.xml")//hit) > 2) then "many" else "few"`,
	`declare variable $g := doc("t.xml")//scene;
	 for $s in $g return count($s/select-narrow::hit)`,
	`declare function local:f($x) { $x + 1 };
	 for $i in 1 to 30 return local:f($i)`,
	// Empty results and errors.
	`for $s in doc("t.xml")//nosuch return $s`,
	`doc("t.xml")//scene/nosuch`,
	`for $i in 1 to 5 return $i div 0`,
	`doc("missing.xml")//x`,
}

type testEnv struct {
	docs    map[string]*tree.Doc
	mu      sync.Mutex
	indexes map[*tree.Doc]*core.RegionIndex
}

func newTestEnv(t testing.TB) *testEnv {
	t.Helper()
	env := &testEnv{docs: map[string]*tree.Doc{}, indexes: map[*tree.Doc]*core.RegionIndex{}}
	for name, data := range map[string]string{"t.xml": testDoc, "o.xml": otherDoc, "p.xml": permutedDoc} {
		d, err := xmlparse.Parse(name, []byte(data))
		if err != nil {
			t.Fatal(err)
		}
		env.docs[name] = d
	}
	return env
}

func (env *testEnv) resolve(uri string) (*tree.Doc, error) {
	d, ok := env.docs[uri]
	if !ok {
		return nil, fmt.Errorf("document %q is not loaded", uri)
	}
	return d, nil
}

func (env *testEnv) indexFor(d *tree.Doc) (*core.RegionIndex, error) {
	env.mu.Lock()
	defer env.mu.Unlock()
	if ix, ok := env.indexes[d]; ok {
		return ix, nil
	}
	ix, err := core.BuildIndex(d, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	env.indexes[d] = ix
	return ix, nil
}

func (env *testEnv) evaluator(t testing.TB, q string) *xqeval.Evaluator {
	t.Helper()
	m, err := xqparse.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	plan, err := xqplan.Compile(m, core.DefaultOptions())
	if err != nil {
		t.Fatalf("compile %q: %v", q, err)
	}
	return &xqeval.Evaluator{
		Plan:     plan,
		Resolver: env.resolve,
		IndexFor: env.indexFor,
		Strategy: core.StrategyAuto,
		Pushdown: true,
	}
}

// render flattens an outcome for comparison: the error string, or every item
// rendered on its own line.
func render(items []xqeval.Item, err error) string {
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var sb strings.Builder
	for _, it := range items {
		sb.WriteString(it.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// equivalenceMatrix is the configuration grid every equivalence test runs:
// chunk sizes from degenerate (1) to unbounded (0), crossed with
// single-threaded and partitioned execution. One grid, shared by the
// internal and public matrix tests, replaces the ad-hoc per-test config
// lists that used to drift apart.
func equivalenceMatrix() []Config {
	var cfgs []Config
	for _, chunk := range []int{1, 2, 7, 64, 0} {
		for _, par := range []int{1, 4} {
			cfgs = append(cfgs, Config{ChunkSize: chunk, Parallelism: par})
		}
	}
	return cfgs
}

// TestPipelineEquivalence is the central property test of the subsystem:
// for every corpus query and every cell of the chunk x parallelism matrix,
// the cursor pipeline drains to exactly the sequence the materialising
// evaluator produces, or fails with exactly the same error.
func TestPipelineEquivalence(t *testing.T) {
	env := newTestEnv(t)
	cfgs := equivalenceMatrix()
	for _, q := range corpus {
		want := render(env.evaluator(t, q).Run())
		for _, cfg := range cfgs {
			got := render(runPipeline(env.evaluator(t, q), cfg))
			if got != want {
				t.Errorf("query %q cfg %+v:\n got %q\nwant %q", q, cfg, got, want)
			}
		}
	}
}

func runPipeline(ev *xqeval.Evaluator, cfg Config) ([]xqeval.Item, error) {
	cur, err := Build(ev, cfg)
	if err != nil {
		return nil, err
	}
	return DrainAll(cur)
}

// TestParallelGateEngages pins that a loop beyond the cardinality gate
// actually takes the worker-pool path (and still agrees with the reference).
func TestParallelGateEngages(t *testing.T) {
	env := newTestEnv(t)
	q := fmt.Sprintf(`for $i in 1 to %d return $i mod 97`, 4*parallelMinTuples)
	want := render(env.evaluator(t, q).Run())
	cur, err := Build(env.evaluator(t, q), Config{ChunkSize: 64, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	fl, ok := unwrapRoot(cur).(*flworCursor)
	if !ok {
		t.Fatalf("expected flworCursor, got %T", cur)
	}
	if !fl.Next() {
		t.Fatal("empty stream")
	}
	if fl.par == nil {
		t.Fatal("parallel pool did not engage above the gate")
	}
	items := []xqeval.Item{fl.Item()}
	for fl.Next() {
		items = append(items, fl.Item())
	}
	if err := fl.Err(); err != nil {
		t.Fatal(err)
	}
	fl.Close()
	if got := render(items, nil); got != want {
		t.Fatalf("parallel result diverges:\n got %q\nwant %q", got, want)
	}

	// Below the gate the pool must stay off.
	small := `for $i in 1 to 10 return $i`
	cur, err = Build(env.evaluator(t, small), Config{ChunkSize: 64, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	fl = unwrapRoot(cur).(*flworCursor)
	for fl.Next() {
	}
	if fl.par != nil {
		t.Fatal("parallel pool engaged below the gate")
	}
	fl.Close()
}

// waitGoroutines polls until the goroutine count drops back to the baseline
// (worker teardown after Close is asynchronous: the producer and workers
// exit when they observe donech, not inside Close itself).
func waitGoroutines(t *testing.T, baseline int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines leaked (baseline %d, now %d)",
				what, runtime.NumGoroutine()-baseline, baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestEarlyClose verifies that abandoning a stream mid-way — sequential and
// parallel — releases the pipeline without deadlock, terminates every worker
// goroutine, and that Close is idempotent.
func TestEarlyClose(t *testing.T) {
	env := newTestEnv(t)
	queries := []string{
		fmt.Sprintf(`for $i in 1 to %d return $i`, 8*parallelMinTuples),
		// Nested loops: the child cursor chain must tear down too.
		fmt.Sprintf(`for $i in 1 to %d for $j in 1 to 100 return $j`, 8*parallelMinTuples),
		// Chunked StandOff final step mid-merge.
		`doc("p.xml")//span/select-wide::word`,
	}
	for _, q := range queries {
		for _, cfg := range []Config{{ChunkSize: 16}, {ChunkSize: 16, Parallelism: 4}} {
			baseline := runtime.NumGoroutine()
			cur, err := Build(env.evaluator(t, q), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if !cur.Next() {
					t.Fatalf("%q cfg %+v: stream ended after %d items", q, cfg, i)
				}
			}
			cur.Close()
			cur.Close() // idempotent
			if cur.Next() {
				t.Fatalf("%q cfg %+v: Next after Close", q, cfg)
			}
			waitGoroutines(t, baseline, fmt.Sprintf("%q cfg %+v", q, cfg))
		}
	}
}

// TestCloseBeforeNext: Close on a never-started cursor must terminate it —
// a later Next must not run init, spawn the worker pool, or re-evaluate a
// path (the database/sql.Rows contract).
func TestCloseBeforeNext(t *testing.T) {
	env := newTestEnv(t)
	for _, tc := range []struct {
		q   string
		cfg Config
	}{
		{`for $i in 1 to 100000 return $i`, Config{ChunkSize: 16, Parallelism: 4}},
		{`for $i in 1 to 100000 return $i`, Config{ChunkSize: 16}},
		{`doc("t.xml")//speech`, Config{ChunkSize: 16}},
		{`count(doc("t.xml")//hit)`, Config{}},
	} {
		before := runtime.NumGoroutine()
		cur, err := Build(env.evaluator(t, tc.q), tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur.Close()
		if cur.Next() {
			t.Errorf("%q cfg %+v: Next after pre-drain Close returned true", tc.q, tc.cfg)
		}
		if cur.Err() != nil {
			t.Errorf("%q: Err after Close = %v", tc.q, cur.Err())
		}
		// Give any wrongly spawned goroutines a moment, then compare.
		time.Sleep(10 * time.Millisecond)
		if after := runtime.NumGoroutine(); after > before {
			t.Errorf("%q cfg %+v: %d goroutines leaked by Next-after-Close", tc.q, tc.cfg, after-before)
		}
	}
}

// TestGatePathRespectsChunkSize: a loop below the parallel gate must still
// evaluate in ChunkSize slices — the memory bound is not conditional on the
// pool engaging.
func TestGatePathRespectsChunkSize(t *testing.T) {
	env := newTestEnv(t)
	q := fmt.Sprintf(`for $i in 1 to %d return $i`, parallelMinTuples-10)
	cur, err := Build(env.evaluator(t, q), Config{ChunkSize: 8, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	fl := unwrapRoot(cur).(*flworCursor)
	n := 0
	for fl.Next() {
		n++
		if len(fl.chunk) > 8 {
			t.Fatalf("gate path evaluated a %d-tuple chunk, ChunkSize 8", len(fl.chunk))
		}
	}
	if err := fl.Err(); err != nil {
		t.Fatal(err)
	}
	if fl.par != nil {
		t.Fatal("pool engaged below the gate")
	}
	if n != parallelMinTuples-10 {
		t.Fatalf("drained %d items, want %d", n, parallelMinTuples-10)
	}
	fl.Close()
}

// TestWorkDeque pins the deque discipline the stealing pool relies on: the
// owner pops newest-first, thieves steal oldest-first, and the two ends
// interleave without losing or duplicating tasks.
func TestWorkDeque(t *testing.T) {
	var d workDeque
	for i := 0; i < 6; i++ {
		d.push(chunkTask{seq: int64(i)})
	}
	if tk, ok := d.steal(); !ok || tk.seq != 0 {
		t.Fatalf("steal = (%d,%v), want oldest task 0", tk.seq, ok)
	}
	if tk, ok := d.pop(); !ok || tk.seq != 5 {
		t.Fatalf("pop = (%d,%v), want newest task 5", tk.seq, ok)
	}
	for _, w := range []int64{1, 2} {
		if tk, ok := d.steal(); !ok || tk.seq != w {
			t.Fatalf("steal = (%d,%v), want %d", tk.seq, ok, w)
		}
	}
	d.push(chunkTask{seq: 6})
	for _, w := range []int64{6, 4, 3} {
		if tk, ok := d.pop(); !ok || tk.seq != w {
			t.Fatalf("pop = (%d,%v), want %d", tk.seq, ok, w)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on an empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on an empty deque succeeded")
	}
}

// TestResultHeapOrders: results pushed in completion order pop in producer
// sequence order — the property the order-preserving merge rests on.
func TestResultHeapOrders(t *testing.T) {
	var h resultHeap
	for _, s := range []int64{5, 1, 4, 0, 3, 2} {
		h.push(chunkResult{seq: s})
	}
	for want := int64(0); want < 6; want++ {
		if got := h.pop().seq; got != want {
			t.Fatalf("pop sequence: got %d, want %d", got, want)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after draining: %d", h.len())
	}
}

// TestParallelStealOversubscribed drives the pool with far more workers than
// the loop has chunks, so most deques start empty and those workers must
// steal or sleep on the pool condition — the waking and stealing edge cases
// — while the merged stream stays item-for-item the sequential one.
func TestParallelStealOversubscribed(t *testing.T) {
	env := newTestEnv(t)
	q := fmt.Sprintf(`for $i in 1 to %d return $i mod 31`, 2*parallelMinTuples+70)
	want := render(env.evaluator(t, q).Run())
	baseline := runtime.NumGoroutine()
	cur, err := Build(env.evaluator(t, q), Config{Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	var items []xqeval.Item
	for cur.Next() {
		items = append(items, cur.Item())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if got := render(items, nil); got != want {
		t.Fatalf("oversubscribed pool diverges:\n got %q\nwant %q", got, want)
	}
	waitGoroutines(t, baseline, "oversubscribed pool")
}

// TestParallelGateInlineTail: a loop whose trailing partial chunk falls
// below the per-chunk dispatch gate takes the inline merge path — the tail
// is evaluated by the consumer, not a worker — without changing the stream.
func TestParallelGateInlineTail(t *testing.T) {
	env := newTestEnv(t)
	// 4 full 128-tuple chunks plus a 5-tuple tail, well under the gate.
	q := fmt.Sprintf(`for $i in 1 to %d return $i mod 13`, 4*parallelMinTuples+5)
	want := render(env.evaluator(t, q).Run())
	baseline := runtime.NumGoroutine()
	cur, err := Build(env.evaluator(t, q), Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	var items []xqeval.Item
	for cur.Next() {
		items = append(items, cur.Item())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if got := render(items, nil); got != want {
		t.Fatalf("inline-tail stream diverges:\n got %q\nwant %q", got, want)
	}
	waitGoroutines(t, baseline, "inline tail")
}

// TestEarlyCloseStealingPool abandons an oversubscribed stealing pool at
// several drain depths — before the first chunk boundary, mid-chunk, and
// deep enough that the re-order heap and token budget are in steady state —
// and verifies the producer, every worker, and the closer all exit.
func TestEarlyCloseStealingPool(t *testing.T) {
	env := newTestEnv(t)
	q := fmt.Sprintf(`for $i in 1 to %d return $i`, 32*parallelMinTuples)
	for _, drain := range []int{1, 7, 1000} {
		baseline := runtime.NumGoroutine()
		cur, err := Build(env.evaluator(t, q), Config{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < drain; i++ {
			if !cur.Next() {
				t.Fatalf("drain %d: stream ended after %d items", drain, i)
			}
		}
		cur.Close()
		waitGoroutines(t, baseline, fmt.Sprintf("stealing pool, drain %d", drain))
	}
}

// TestPathStreamingModes pins which final steps stream: a disjoint-context
// forward step streams, a nested context falls back, and both agree with the
// reference.
func TestPathStreamingModes(t *testing.T) {
	env := newTestEnv(t)
	stream := `doc("t.xml")//scene/speech` // disjoint scene subtrees
	nested := `doc("t.xml")//scene/descendant-or-self::node()/self::node()`
	for _, q := range []string{stream, nested} {
		want := render(env.evaluator(t, q).Run())
		got := render(runPipeline(env.evaluator(t, q), Config{ChunkSize: 4}))
		if got != want {
			t.Errorf("query %q:\n got %q\nwant %q", q, got, want)
		}
	}
	cur, err := Build(env.evaluator(t, stream), Config{ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	pc := unwrapRoot(cur).(*pathCursor)
	if !pc.Next() {
		t.Fatal("no results")
	}
	if pc.last == nil {
		t.Fatal("disjoint forward final step did not stream")
	}
	pc.Close()
}

// TestDescribeShapes sanity-checks the static pipeline description against
// the operator forms.
func TestDescribeShapes(t *testing.T) {
	env := newTestEnv(t)
	cases := []struct {
		q         string
		kind      string
		pipelined bool
	}{
		{`for $s in doc("t.xml")//scene return $s`, "flwor", true},
		{`for $s in doc("t.xml")//scene order by $s/@id return $s`, "flwor", false},
		{`doc("t.xml")//speech`, "path", true},
		{`doc("t.xml")//scene/select-narrow::hit`, "path", true},
		{`doc("t.xml")//scene/reject-narrow::hit`, "path", true},
		{`(1, 2)`, "seq", true},
		{`1 to 9`, "range", true},
		{`count(doc("t.xml")//hit)`, "materialise", false},
	}
	for _, c := range cases {
		ev := env.evaluator(t, c.q)
		op := Describe(ev.Plan)
		if op.Kind != c.kind || op.Pipelined != c.pipelined {
			t.Errorf("Describe(%q) = %s/pipelined=%v, want %s/pipelined=%v (%s)",
				c.q, op.Kind, op.Pipelined, c.kind, c.pipelined, op.Detail)
		}
	}

	// A nested streamable for clause shows up as a flwor-nested child; a
	// nested StandOff binding must not (it keeps the loop-lifted expansion).
	nested := Describe(env.evaluator(t,
		`for $s in doc("t.xml")//scene for $w in $s/speech return $w`).Plan)
	if len(nested.Children) != 2 || nested.Children[1].Kind != "flwor-nested" {
		t.Errorf("nested for: children = %+v, want [binding, flwor-nested]", nested.Children)
	}
	lifted := Describe(env.evaluator(t,
		`for $s in doc("t.xml")//scene for $h in $s/select-narrow::hit return $h`).Plan)
	if len(lifted.Children) != 1 {
		t.Errorf("StandOff inner binding: children = %+v, want only the outer binding", lifted.Children)
	}
}

// TestStandoffCursorStreams pins the routing of StandOff final steps: a
// select step over a single-document context takes the chunked cursor, the
// permuted document drains in document order with the duplicate annotation
// removed, and a multi-document context falls back to the bulk step.
func TestStandoffCursorStreams(t *testing.T) {
	env := newTestEnv(t)
	build := func(q string, chunk int) *pathCursor {
		cur, err := Build(env.evaluator(t, q), Config{ChunkSize: chunk})
		if err != nil {
			t.Fatal(err)
		}
		pc, ok := unwrapRoot(cur).(*pathCursor)
		if !ok {
			t.Fatalf("expected pathCursor for %q, got %T", q, cur)
		}
		return pc
	}

	pc := build(`doc("p.xml")//span/select-wide::word`, 2)
	if !pc.Next() {
		t.Fatal("empty stream")
	}
	if pc.soc == nil {
		t.Fatal("select final step over one document did not take the chunked cursor")
	}
	var last int32 = -1
	n := 1
	for ok := true; ok; ok = pc.Next() {
		it := pc.Item()
		if it.Pre <= last && n > 1 {
			t.Fatalf("stream out of document order: pre %d after %d", it.Pre, last)
		}
		last = it.Pre
		n++
	}
	pc.Close()

	// The doubly-annotated word (w3/w3b share a region) appears once per
	// node, deduplicated across chunks.
	pc = build(`doc("p.xml")//block/select-narrow::word`, 1)
	seen := map[int32]bool{}
	for pc.Next() {
		it := pc.Item()
		if seen[it.Pre] {
			t.Fatalf("duplicate node pre=%d in chunked stream", it.Pre)
		}
		seen[it.Pre] = true
	}
	pc.Close()

	// Multi-document context: the chunked cursor refuses and the bulk step
	// answers (soc stays nil, result still correct via materialised items).
	pc = build(`(doc("t.xml")//scene, doc("p.xml")//block)/select-narrow::hit`, 2)
	for pc.Next() {
	}
	if pc.soc != nil {
		t.Fatal("multi-document context must fall back to the bulk step")
	}
	pc.Close()
}

// TestNestedCursorEngages pins the cursor-valued-binding decision: a
// streamable inner for clause binds a child cursor under bounded chunks,
// stays expanded under unbounded chunks (Exec's drain wants the full
// loop-lifting), and a StandOff inner binding always stays expanded.
func TestNestedCursorEngages(t *testing.T) {
	env := newTestEnv(t)
	pin := func(q string, chunk int, wantNested bool) {
		t.Helper()
		cur, err := Build(env.evaluator(t, q), Config{ChunkSize: chunk})
		if err != nil {
			t.Fatal(err)
		}
		fl, ok := unwrapRoot(cur).(*flworCursor)
		if !ok {
			t.Fatalf("expected flworCursor, got %T", cur)
		}
		for fl.Next() {
		}
		if err := fl.Err(); err != nil {
			t.Fatal(err)
		}
		if (fl.inner != nil) != wantNested {
			t.Errorf("%q chunk=%d: nested=%v, want %v", q, chunk, fl.inner != nil, wantNested)
		}
		fl.Close()
	}
	pin(`for $s in doc("t.xml")//scene for $w in $s/speech return $w`, 4, true)
	pin(`for $i in 1 to 10 for $j in 1 to $i return $j`, 4, true)
	pin(`for $i in 1 to 10 for $j in 1 to $i return $j`, 0, false)
	pin(`for $s in doc("t.xml")//scene for $h in $s/select-narrow::hit return $h`, 4, false)
	pin(`for $s in doc("t.xml")//scene let $n := count($s/speech) for $w in $s/speech return $n`, 4, false)
}

// unwrapRoot strips the arena-scoping pipeline wrapper so tests can inspect
// the concrete root cursor Build produced.
func unwrapRoot(c Cursor) Cursor {
	if p, ok := c.(*pipelineCursor); ok {
		return p.Cursor
	}
	return c
}

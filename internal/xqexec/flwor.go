package xqexec

import (
	"sync"

	"soxq/internal/xqast"
	"soxq/internal/xqeval"
	"soxq/internal/xqplan"
)

// The FLWOR cursor streams a for loop chunk by chunk: the first for clause's
// binding sequence runs as its own cursor, tuples are pulled from it in
// chunks, and the rest of the FLWOR (remaining clauses, where, return) is
// evaluated loop-lifted over each chunk — so a StandOff step in the loop
// body still runs one join per chunk of iterations, not one per iteration,
// while only a chunk of tuples and its results are ever live.
//
// Nested loops compound the bound. When the clause right after the streamed
// for is itself a for over a sequence the pipeline can generate on demand
// (a range, a StandOff-free path), the inner loop is not expanded
// loop-lifted into the chunk — expansion would materialise chunk×inner
// tuples at once, unbounded by the chunk size. Instead each parent tuple
// drives a child flworCursor over the inner binding: the child pulls inner
// tuples in chunks of its own and evaluates the remaining tail loop-lifted
// per inner chunk, recursively for deeper nests, so the live tuple count
// stays proportional to ChunkSize at every nesting depth. Bindings that
// contain StandOff joins stay on the expanded path deliberately — a join in
// the inner binding wants the chunk-level loop-lifting, not a per-parent-
// tuple re-run (the Basic cost model the paper's loop-lifting avoids).
//
// Order-correctness needs no merge: tuples expand in order and where keeps
// order, so the chunk (and child-cursor) results concatenate into exactly
// the sequence the materialising path produces.

const (
	// parallelChunkSize is the partition granularity of the worker pool.
	// The chunk must be large enough that a loop-lifted join over it
	// amortises, small enough that a few hundred tuples still split
	// across workers.
	parallelChunkSize = 128
	// parallelMinTuples gates the worker pool: a binding stream that ends
	// before this many tuples runs single-threaded. It plays the same role
	// for parallelism that the PR 2 statistics cutoff plays for the
	// Basic-vs-Loop-Lifted choice — the observed cardinality has to
	// amortise the machinery.
	parallelMinTuples = 2 * parallelChunkSize
)

// flworCursor is the chunked FLWOR pipeline for one for-clause level. The
// root cursor owns the whole FLWOR (and is the only one that records the
// operator's ANALYZE invocation and may engage the worker pool); child
// cursors own the clause suffix from one nested for clause on, bound under a
// single parent tuple.
type flworCursor struct {
	x *executor
	v *xqast.FLWOR

	// clauses is the clause list this cursor level consumes: v.Clauses at
	// the root, the suffix from the nested for clause down for a child.
	clauses []xqast.Clause
	root    bool

	f     *xqeval.Frame // this level's frame, leading lets bound at init
	first *xqast.ForClause
	rest  []xqast.Clause
	bind  Cursor // stream of the first for clause's binding sequence
	// pending holds binding tuples the parallel gate buffered before
	// deciding to stay sequential; nextChunk consumes it ahead of bind,
	// in ChunkSize slices like any other input.
	pending []xqeval.Item

	// Nested cursor-valued binding: when rest starts with a streamable for
	// clause (and the pool did not engage), each tuple of the chunk drives
	// a child cursor over inner/innerRest instead of expanding into the
	// chunk frame. memo caches the decision per level: every sibling child
	// cursor shares its parent's clause suffix, so the classification walk
	// runs once per nesting level, not once per parent tuple.
	memo      *nestedDecision
	inner     *xqast.ForClause
	innerRest []xqast.Clause
	child     *flworCursor
	ti        int // next chunk tuple to drive a child with

	par *parallelFLWOR // non-nil once the worker pool engages

	started bool
	done    bool
	chunk   []xqeval.Item // reused binding scratch (sequential mode only)
	seed    []xqeval.Item // reused 1-tuple buffer driving child cursors
	basePos int64
	out     []xqeval.Item
	i       int
	cur     xqeval.Item
	err     error
}

func newFLWORCursor(x *executor, v *xqast.FLWOR, f *xqeval.Frame) *flworCursor {
	return &flworCursor{x: x, v: v, clauses: v.Clauses, root: true, f: f, memo: &nestedDecision{}}
}

// newChildCursor builds the cursor of one nested for level: clauses is the
// suffix starting at the nested for clause, f the single-tuple frame of the
// parent binding, memo the level's shared decision cache.
func newChildCursor(x *executor, v *xqast.FLWOR, clauses []xqast.Clause, f *xqeval.Frame, memo *nestedDecision) *flworCursor {
	return &flworCursor{x: x, v: v, clauses: clauses, f: f, memo: memo}
}

// nestedDecision caches one nesting level's cursor-valued-binding decision.
// A cursor and all its sibling cursors (children of one parent, one per
// parent tuple) share the same clause suffix, so the first sibling decides
// and the rest reuse — the classification walk is per level, not per tuple.
type nestedDecision struct {
	decided   bool
	inner     *xqast.ForClause
	innerRest []xqast.Clause
	child     *nestedDecision // the next level's cache, set when inner is

	// chunkBuf recycles the binding-tuple chunk buffer across the level's
	// sibling cursors (one per parent tuple, strictly one live at a time —
	// and a closed sibling has been fully drained, so every item that could
	// alias the buffer was copied out before the next sibling overwrites it).
	chunkBuf []xqeval.Item
}

// init evaluates the let clauses preceding this level's for clause (they see
// only the enclosing scope), splits the clause list there, and opens the
// binding stream. The one ANALYZE invocation record happens at the root —
// the per-chunk counters (recorded by FLWORTail) accumulate tuples and
// chunks on top of it.
func (c *flworCursor) init() {
	c.started = true
	if c.root {
		c.x.ev.Stats.RecordOp(c.v, 0, 0)
	}
	f := c.f
	for i, cl := range c.clauses {
		switch cl := cl.(type) {
		case *xqast.LetClause:
			seq, err := c.x.ev.EvalExpr(cl.Seq, f)
			if err != nil {
				c.err = err
				return
			}
			f = f.BindSeq(cl.Var, seq)
		case *xqast.ForClause:
			c.f = f
			c.first = cl
			c.rest = c.clauses[i+1:]
			c.bind = c.x.build(cl.Seq, f)
			if c.root && c.x.cfg.Parallelism > 1 {
				c.par = startParallel(c)
			}
			if c.par == nil && c.err == nil {
				c.initNested()
			}
			return
		}
	}
	// Unreachable at the root (streamableFLWOR guaranteed a for clause);
	// children always start at one.
	c.done = true
}

// initNested engages the cursor-valued-binding mode: under bounded chunks,
// an immediately following for clause over a streamable binding makes each
// parent tuple drive a child cursor. Unbounded chunks (Exec's full drain)
// keep the expanded path — there the whole loop evaluates loop-lifted in one
// chunk, which is exactly the amortisation the materialising engine wants.
func (c *flworCursor) initNested() {
	if c.x.cfg.ChunkSize <= 0 {
		return
	}
	m := c.memo
	if !m.decided {
		m.decided = true
		if len(c.rest) > 0 {
			if fc, ok := c.rest[0].(*xqast.ForClause); ok && streamableBinding(fc.Seq) {
				m.inner, m.innerRest = fc, c.rest[1:]
				m.child = &nestedDecision{}
			}
		}
	}
	c.inner, c.innerRest = m.inner, m.innerRest
}

// streamableBinding reports whether a nested for clause's binding sequence
// should drive a child cursor: a form the pipeline generates on demand
// (range, sequence, path, nested FLWOR) that evaluates no StandOff join —
// joins want the chunk-level loop-lifting of the expanded path.
func streamableBinding(e xqast.Expr) bool {
	if xqplan.ContainsStandOff(e) {
		return false
	}
	switch v := e.(type) {
	case *xqast.Binary:
		return v.Op == "to" || v.Op == ","
	case *xqast.Enclosed:
		return streamableBinding(v.X)
	case *xqast.Path:
		return true
	case *xqast.FLWOR:
		return streamableFLWOR(v)
	}
	return false
}

// nextChunk pulls up to one chunk of binding tuples. In expanded mode it
// evaluates the FLWOR tail over them at once; in nested mode it only stages
// the tuples — Next drives a child cursor per tuple.
func (c *flworCursor) nextChunk() {
	limit := c.x.chunkSize()
	if c.chunk == nil && c.memo != nil {
		// Adopt the level's recycled chunk buffer (returned on Close). The
		// previous sibling was drained before this cursor started, so its
		// contents are dead.
		c.chunk, c.memo.chunkBuf = c.memo.chunkBuf, nil
	}
	c.chunk = c.chunk[:0]
	c.ti = 0
	if n := min(limit, len(c.pending)); n > 0 {
		c.chunk = append(c.chunk, c.pending[:n]...)
		c.pending = c.pending[n:]
	}
	for len(c.chunk) < limit && c.bind.Next() {
		c.chunk = append(c.chunk, c.bind.Item())
	}
	if err := c.bind.Err(); err != nil {
		c.err = err
		return
	}
	if len(c.chunk) == 0 {
		c.done = true
		return
	}
	if c.inner != nil {
		c.basePos += int64(len(c.chunk))
		return
	}
	out, err := evalFLWORChunk(c.x.ev, c, c.chunk, c.basePos)
	if err != nil {
		c.err = err
		return
	}
	c.basePos += int64(len(c.chunk))
	c.out, c.i = out, 0
}

// evalFLWORChunk runs the FLWOR tail over one chunk of binding tuples
// (expanded mode: remaining clauses unroll loop-lifted into the chunk
// frame). FLWORTail records the chunk's tuple counters.
func evalFLWORChunk(ev *xqeval.Evaluator, c *flworCursor, tuples []xqeval.Item, basePos int64) ([]xqeval.Item, error) {
	nf := c.f.BindChunk(c.first.Var, c.first.Pos, tuples, basePos)
	ret, err := ev.FLWORTail(c.v, c.rest, nf)
	if err != nil {
		return nil, err
	}
	return ret.Items, nil
}

// startChild binds the next staged tuple into a one-iteration frame and
// opens the child cursor of the nested for clause over it.
func (c *flworCursor) startChild() {
	t := c.chunk[c.ti]
	pos := c.basePos - int64(len(c.chunk)) + int64(c.ti)
	c.ti++
	// The 1-tuple buffer is reused across children: BindChunk aliases it, but
	// the previous child was closed (hence drained — everything it produced
	// was copied out as Item values) before this overwrite.
	if cap(c.seed) == 0 {
		c.seed = make([]xqeval.Item, 1)
	}
	c.seed = c.seed[:1]
	c.seed[0] = t
	nf := c.f.BindChunk(c.first.Var, c.first.Pos, c.seed, pos)
	c.child = newChildCursor(c.x, c.v, c.rest, nf, c.memo.child)
}

func (c *flworCursor) Next() bool {
	if !c.started {
		c.init()
	}
	if c.par != nil {
		return c.par.next(c)
	}
	for c.err == nil {
		if c.child != nil {
			if c.child.Next() {
				c.cur = c.child.Item()
				return true
			}
			c.err = c.child.Err()
			c.child.Close()
			c.child = nil
			continue
		}
		if c.inner != nil && c.ti < len(c.chunk) {
			c.startChild()
			continue
		}
		if c.i < len(c.out) {
			c.cur = c.out[c.i]
			c.i++
			return true
		}
		if c.done {
			return false
		}
		c.nextChunk()
	}
	return false
}

func (c *flworCursor) Item() xqeval.Item { return c.cur }
func (c *flworCursor) Err() error        { return c.err }

func (c *flworCursor) Close() {
	// Mark the cursor started as well as done: a Next after an early
	// Close must not resurrect the pipeline by running init.
	c.started, c.done = true, true
	c.out, c.i, c.pending = nil, 0, nil
	if c.memo != nil && c.chunk != nil && c.memo.chunkBuf == nil {
		c.memo.chunkBuf = c.chunk // recycle for the next sibling cursor
	}
	c.chunk, c.ti, c.seed = nil, 0, nil
	if c.child != nil {
		c.child.Close()
		c.child = nil
	}
	if c.par != nil {
		// The producer goroutine owns (and closes) the binding cursor.
		c.par.close()
		c.par = nil
		c.bind = nil
		return
	}
	if c.bind != nil {
		c.bind.Close()
		c.bind = nil
	}
}

// parallelFLWOR partitions the binding stream across a worker pool with an
// order-preserving merge: a producer goroutine slices the stream into
// chunks, workers evaluate the FLWOR tail per chunk over forked evaluators
// (the plan is immutable and race-safe to share), and the consumer hands
// chunks out strictly in stream order. The orderq capacity bounds the number
// of chunks in flight, so memory stays proportional to
// Parallelism x chunk result, not to the loop size. Only the root cursor
// parallelises — nested levels inside a partitioned loop evaluate on the
// expanded path within their worker's chunk.
type parallelFLWOR struct {
	orderq chan chan chunkResult
	jobs   chan chunkJob
	donech chan struct{}
	wg     sync.WaitGroup // producer + workers; close joins them
	closed bool

	out []xqeval.Item
	i   int
}

type chunkJob struct {
	tuples  []xqeval.Item
	basePos int64
	res     chan chunkResult
}

type chunkResult struct {
	items []xqeval.Item
	err   error
}

// startParallel decides the partition size, applies the small-loop gate, and
// spins up the producer and workers. It returns nil when the binding stream
// ends below the gate — the caller then runs the buffered tuples through the
// ordinary sequential chunk path.
func startParallel(c *flworCursor) *parallelFLWOR {
	pchunk := parallelChunkSize
	if s := c.x.cfg.ChunkSize; s > 0 && s < pchunk {
		pchunk = s
	}
	// Gate on the observed cardinality of the binding stream.
	prefix := make([]xqeval.Item, 0, parallelMinTuples+1)
	for len(prefix) <= parallelMinTuples && c.bind.Next() {
		prefix = append(prefix, c.bind.Item())
	}
	if err := c.bind.Err(); err != nil {
		c.err = err
		return nil
	}
	if len(prefix) <= parallelMinTuples {
		// Small loop: hand the buffered tuples to the ordinary sequential
		// chunk path, which evaluates them in ChunkSize slices — the
		// memory bound holds whether or not the pool engages.
		c.pending = prefix
		return nil
	}

	workers := c.x.cfg.Parallelism
	p := &parallelFLWOR{
		orderq: make(chan chan chunkResult, workers),
		jobs:   make(chan chunkJob, workers),
		donech: make(chan struct{}),
	}
	p.wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go p.worker(c)
	}
	go p.produce(c, c.bind, prefix, pchunk)
	return p
}

// produce slices the binding stream into jobs. It owns the binding cursor
// exclusively — no other goroutine touches it once the pool starts.
func (p *parallelFLWOR) produce(c *flworCursor, bind Cursor, prefix []xqeval.Item, pchunk int) {
	defer p.wg.Done()
	defer bind.Close()
	defer close(p.jobs)
	defer close(p.orderq)
	var basePos int64
	emit := func(tuples []xqeval.Item) bool {
		job := chunkJob{tuples: tuples, basePos: basePos, res: make(chan chunkResult, 1)}
		basePos += int64(len(tuples))
		select {
		case p.orderq <- job.res:
		case <-p.donech:
			return false
		}
		select {
		case p.jobs <- job:
		case <-p.donech:
			return false
		}
		return true
	}
	for len(prefix) > 0 {
		n := min(pchunk, len(prefix))
		if !emit(prefix[:n:n]) {
			return
		}
		prefix = prefix[n:]
	}
	for {
		tuples := make([]xqeval.Item, 0, pchunk)
		for len(tuples) < pchunk && bind.Next() {
			tuples = append(tuples, bind.Item())
		}
		if err := bind.Err(); err != nil {
			res := make(chan chunkResult, 1)
			res <- chunkResult{err: err}
			select {
			case p.orderq <- res:
			case <-p.donech:
			}
			return
		}
		if len(tuples) == 0 {
			return
		}
		if !emit(tuples) {
			return
		}
	}
}

func (p *parallelFLWOR) worker(c *flworCursor) {
	defer p.wg.Done()
	// One fork per worker goroutine, with its own join arena (arenas are
	// single-goroutine; Fork drops the parent's). The fork's per-chunk
	// state (recursion depth) resets itself because evalFLWORChunk always
	// starts from depth 0.
	ev := c.x.ev.Fork()
	ev.AttachArena()
	defer ev.DetachArena()
	for {
		select {
		case job, ok := <-p.jobs:
			if !ok {
				return
			}
			items, err := evalFLWORChunk(ev, c, job.tuples, job.basePos)
			job.res <- chunkResult{items: items, err: err}
		case <-p.donech:
			return
		}
	}
}

// next is the order-preserving merge: chunk results are consumed strictly in
// the order the producer emitted them, so the parallel stream is
// item-for-item the sequential stream.
func (p *parallelFLWOR) next(c *flworCursor) bool {
	for c.err == nil {
		if p.i < len(p.out) {
			c.cur = p.out[p.i]
			p.i++
			return true
		}
		res, ok := <-p.orderq
		if !ok {
			return false
		}
		r := <-res
		if r.err != nil {
			c.err = r.err
			return false
		}
		p.out, p.i = r.items, 0
	}
	return false
}

func (p *parallelFLWOR) close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.donech)
	// Drain the order queue so the producer and workers observe donech or
	// queue space and exit; pending results are discarded.
	for range p.orderq {
	}
	// Join the pool before returning: the caller releases the parent
	// evaluator's join arena right after Close, so no goroutine that reads
	// the evaluator (Fork) or evaluates over it (the producer's binding
	// cursor) may outlive this call.
	p.wg.Wait()
}

package xqexec

import (
	"sync"

	"soxq/internal/obs"
	"soxq/internal/xqast"
	"soxq/internal/xqeval"
	"soxq/internal/xqplan"
)

// The FLWOR cursor streams a for loop chunk by chunk: the first for clause's
// binding sequence runs as its own cursor, tuples are pulled from it in
// chunks, and the rest of the FLWOR (remaining clauses, where, return) is
// evaluated loop-lifted over each chunk — so a StandOff step in the loop
// body still runs one join per chunk of iterations, not one per iteration,
// while only a chunk of tuples and its results are ever live.
//
// Nested loops compound the bound. When the clause right after the streamed
// for is itself a for over a sequence the pipeline can generate on demand
// (a range, a StandOff-free path), the inner loop is not expanded
// loop-lifted into the chunk — expansion would materialise chunk×inner
// tuples at once, unbounded by the chunk size. Instead each parent tuple
// drives a child flworCursor over the inner binding: the child pulls inner
// tuples in chunks of its own and evaluates the remaining tail loop-lifted
// per inner chunk, recursively for deeper nests, so the live tuple count
// stays proportional to ChunkSize at every nesting depth. Bindings that
// contain StandOff joins stay on the expanded path deliberately — a join in
// the inner binding wants the chunk-level loop-lifting, not a per-parent-
// tuple re-run (the Basic cost model the paper's loop-lifting avoids).
//
// Order-correctness needs no merge: tuples expand in order and where keeps
// order, so the chunk (and child-cursor) results concatenate into exactly
// the sequence the materialising path produces.

const (
	// parallelChunkSize is the partition granularity of the worker pool.
	// The chunk must be large enough that a loop-lifted join over it
	// amortises, small enough that a few hundred tuples still split
	// across workers.
	parallelChunkSize = 128
	// parallelMinTuples gates the worker pool: a binding stream that ends
	// before this many tuples runs single-threaded. It plays the same role
	// for parallelism that the PR 2 statistics cutoff plays for the
	// Basic-vs-Loop-Lifted choice — the observed cardinality has to
	// amortise the machinery.
	parallelMinTuples = 2 * parallelChunkSize
)

// flworCursor is the chunked FLWOR pipeline for one for-clause level. The
// root cursor owns the whole FLWOR (and is the only one that records the
// operator's ANALYZE invocation and may engage the worker pool); child
// cursors own the clause suffix from one nested for clause on, bound under a
// single parent tuple.
type flworCursor struct {
	x *executor
	v *xqast.FLWOR

	// clauses is the clause list this cursor level consumes: v.Clauses at
	// the root, the suffix from the nested for clause down for a child.
	clauses []xqast.Clause
	root    bool

	f     *xqeval.Frame // this level's frame, leading lets bound at init
	first *xqast.ForClause
	rest  []xqast.Clause
	bind  Cursor // stream of the first for clause's binding sequence
	// pending holds binding tuples the parallel gate buffered before
	// deciding to stay sequential; nextChunk consumes it ahead of bind,
	// in ChunkSize slices like any other input.
	pending []xqeval.Item

	// Nested cursor-valued binding: when rest starts with a streamable for
	// clause (and the pool did not engage), each tuple of the chunk drives
	// a child cursor over inner/innerRest instead of expanding into the
	// chunk frame. memo caches the decision per level: every sibling child
	// cursor shares its parent's clause suffix, so the classification walk
	// runs once per nesting level, not once per parent tuple.
	memo      *nestedDecision
	inner     *xqast.ForClause
	innerRest []xqast.Clause
	child     *flworCursor
	ti        int // next chunk tuple to drive a child with
	// childFree is the shelved previous child cursor, reset in place for the
	// next parent tuple (strictly one sibling lives at a time); bindFree is
	// this cursor's own parked binding cursor across a shelve/reset cycle.
	childFree *flworCursor
	bindFree  Cursor

	// scope is the arena scope of the current expanded-mode chunk;
	// childScope spans the current child cursor's lifetime (its frame and
	// everything evaluated at its init live exactly that long).
	scope      *xqeval.SeqScope
	childScope *xqeval.SeqScope

	par *parallelFLWOR // non-nil once the worker pool engages

	started bool
	done    bool
	chunk   []xqeval.Item // reused binding scratch (sequential mode only)
	seed    []xqeval.Item // reused 1-tuple buffer driving child cursors
	basePos int64
	out     []xqeval.Item
	i       int
	cur     xqeval.Item
	err     error
}

func newFLWORCursor(x *executor, v *xqast.FLWOR, f *xqeval.Frame) *flworCursor {
	return &flworCursor{x: x, v: v, clauses: v.Clauses, root: true, f: f, memo: &nestedDecision{}}
}

// newChildCursor builds the cursor of one nested for level: clauses is the
// suffix starting at the nested for clause, f the single-tuple frame of the
// parent binding, memo the level's shared decision cache.
func newChildCursor(x *executor, v *xqast.FLWOR, clauses []xqast.Clause, f *xqeval.Frame, memo *nestedDecision) *flworCursor {
	return &flworCursor{x: x, v: v, clauses: clauses, f: f, memo: memo}
}

// nestedDecision caches one nesting level's cursor-valued-binding decision.
// A cursor and all its sibling cursors (children of one parent, one per
// parent tuple) share the same clause suffix, so the first sibling decides
// and the rest reuse — the classification walk is per level, not per tuple.
type nestedDecision struct {
	decided   bool
	inner     *xqast.ForClause
	innerRest []xqast.Clause
	child     *nestedDecision // the next level's cache, set when inner is

	// chunkBuf recycles the binding-tuple chunk buffer across the level's
	// sibling cursors (one per parent tuple, strictly one live at a time —
	// and a closed sibling has been fully drained, so every item that could
	// alias the buffer was copied out before the next sibling overwrites it).
	chunkBuf []xqeval.Item
}

// init evaluates the let clauses preceding this level's for clause (they see
// only the enclosing scope), splits the clause list there, and opens the
// binding stream. The one ANALYZE invocation record happens at the root —
// the per-chunk counters (recorded by FLWORTail) accumulate tuples and
// chunks on top of it.
func (c *flworCursor) init() {
	c.started = true
	if c.root {
		c.x.ev.Stats.RecordOp(c.v, 0, 0)
	}
	f := c.f
	for i, cl := range c.clauses {
		switch cl := cl.(type) {
		case *xqast.LetClause:
			seq, err := c.x.ev.EvalExpr(cl.Seq, f)
			if err != nil {
				c.err = err
				return
			}
			f = f.BindSeq(cl.Var, seq)
		case *xqast.ForClause:
			c.f = f
			c.first = cl
			c.rest = c.clauses[i+1:]
			c.bind = c.x.buildReuse(cl.Seq, f, c.bindFree)
			c.bindFree = nil
			if c.root && c.x.cfg.Parallelism > 1 {
				c.par = startParallel(c)
			}
			if c.par == nil && c.err == nil {
				c.initNested()
			}
			return
		}
	}
	// Unreachable at the root (streamableFLWOR guaranteed a for clause);
	// children always start at one.
	c.done = true
}

// initNested engages the cursor-valued-binding mode: under bounded chunks,
// an immediately following for clause over a streamable binding makes each
// parent tuple drive a child cursor. Unbounded chunks (Exec's full drain)
// keep the expanded path — there the whole loop evaluates loop-lifted in one
// chunk, which is exactly the amortisation the materialising engine wants.
func (c *flworCursor) initNested() {
	if c.x.cfg.ChunkSize <= 0 {
		return
	}
	m := c.memo
	if !m.decided {
		m.decided = true
		if len(c.rest) > 0 {
			if fc, ok := c.rest[0].(*xqast.ForClause); ok && streamableBinding(fc.Seq) {
				m.inner, m.innerRest = fc, c.rest[1:]
				m.child = &nestedDecision{}
			}
		}
	}
	c.inner, c.innerRest = m.inner, m.innerRest
}

// streamableBinding reports whether a nested for clause's binding sequence
// should drive a child cursor: a form the pipeline generates on demand
// (range, sequence, path, nested FLWOR) that evaluates no StandOff join —
// joins want the chunk-level loop-lifting of the expanded path.
func streamableBinding(e xqast.Expr) bool {
	if xqplan.ContainsStandOff(e) {
		return false
	}
	switch v := e.(type) {
	case *xqast.Binary:
		return v.Op == "to" || v.Op == ","
	case *xqast.Enclosed:
		return streamableBinding(v.X)
	case *xqast.Path:
		return true
	case *xqast.FLWOR:
		return streamableFLWOR(v)
	}
	return false
}

// nextChunk pulls up to one chunk of binding tuples. In expanded mode it
// evaluates the FLWOR tail over them at once; in nested mode it only stages
// the tuples — Next drives a child cursor per tuple.
func (c *flworCursor) nextChunk() {
	if c.scope != nil {
		// Reclaim the previous chunk's scratch before pulling new tuples:
		// the chunk was fully drained (Next only refills then), and closing
		// first keeps scope turnover LIFO against the binding cursor's own
		// scope turnover during the pull below.
		c.out, c.i = nil, 0
		c.x.ev.CloseScope(c.scope)
		c.scope = nil
	}
	limit := c.x.chunkSize()
	if c.chunk == nil && c.memo != nil {
		// Adopt the level's recycled chunk buffer (returned on Close). The
		// previous sibling was drained before this cursor started, so its
		// contents are dead.
		c.chunk, c.memo.chunkBuf = c.memo.chunkBuf, nil
	}
	c.chunk = c.chunk[:0]
	c.ti = 0
	if n := min(limit, len(c.pending)); n > 0 {
		c.chunk = append(c.chunk, c.pending[:n]...)
		c.pending = c.pending[n:]
	}
	for len(c.chunk) < limit && c.bind.Next() {
		c.chunk = append(c.chunk, c.bind.Item())
	}
	if err := c.bind.Err(); err != nil {
		c.err = err
		return
	}
	if len(c.chunk) == 0 {
		c.done = true
		return
	}
	if c.inner != nil {
		c.basePos += int64(len(c.chunk))
		return
	}
	c.scope = c.x.ev.OpenScope()
	out, err := evalFLWORChunk(c.x.ev, c, c.chunk, c.basePos)
	if err != nil {
		c.err = err
		return
	}
	c.basePos += int64(len(c.chunk))
	c.out, c.i = out, 0
}

// evalFLWORChunk runs the FLWOR tail over one chunk of binding tuples
// (expanded mode: remaining clauses unroll loop-lifted into the chunk
// frame). FLWORTail records the chunk's tuple counters.
func evalFLWORChunk(ev *xqeval.Evaluator, c *flworCursor, tuples []xqeval.Item, basePos int64) ([]xqeval.Item, error) {
	nf := ev.BindChunk(c.f, c.first.Var, c.first.Pos, tuples, basePos)
	ret, err := ev.FLWORTail(c.v, c.rest, nf)
	if err != nil {
		return nil, err
	}
	return ret.Items, nil
}

// startChild binds the next staged tuple into a one-iteration frame and
// opens the child cursor of the nested for clause over it. The arena scope
// opened here spans the child's lifetime — the seed frame and everything
// evaluated at the child's init are reclaimed when the child retires — and
// the previous sibling's shelved cursor is reset in place instead of
// allocating a new one.
func (c *flworCursor) startChild() {
	t := c.chunk[c.ti]
	pos := c.basePos - int64(len(c.chunk)) + int64(c.ti)
	c.ti++
	c.childScope = c.x.ev.OpenScope()
	// The 1-tuple buffer is reused across children: BindChunk aliases it, but
	// the previous child was retired (hence drained — everything it produced
	// was copied out as Item values) before this overwrite.
	if cap(c.seed) == 0 {
		c.seed = make([]xqeval.Item, 1)
	}
	c.seed = c.seed[:1]
	c.seed[0] = t
	nf := c.x.ev.BindChunk(c.f, c.first.Var, c.first.Pos, c.seed, pos)
	if ch := c.childFree; ch != nil {
		c.childFree = nil
		ch.reset(nf)
		c.child = ch
	} else {
		c.child = newChildCursor(c.x, c.v, c.rest, nf, c.memo.child)
	}
}

// retireChild shelves a drained (or failed) child for reuse by the next
// parent tuple and closes the scope that carried its frame and init state.
func (c *flworCursor) retireChild() {
	ch := c.child
	c.child = nil
	ch.shelve()
	c.childFree = ch
	if c.childScope != nil {
		c.x.ev.CloseScope(c.childScope)
		c.childScope = nil
	}
}

// shelve deactivates a child cursor for in-place reuse: its own scopes
// close, the binding cursor parks for a reset rebuild, and the chunk/seed
// buffers and decision memo stay attached to the struct.
func (c *flworCursor) shelve() {
	c.started, c.done = true, true
	if c.child != nil { // error paths can leave a grandchild active
		c.retireChild()
	}
	if c.scope != nil {
		c.out, c.i = nil, 0
		c.x.ev.CloseScope(c.scope)
		c.scope = nil
	}
	if c.bind != nil {
		c.bind.Close()
		c.bindFree, c.bind = c.bind, nil
	}
	c.out, c.i = nil, 0
	c.pending = nil
}

// reset re-arms a shelved child under a fresh parent-tuple frame; clause
// structure, chunk and seed buffers, the decision memo, the parked binding
// cursor, and any deeper shelved descendants all carry over.
func (c *flworCursor) reset(f *xqeval.Frame) {
	c.f = f
	c.started, c.done = false, false
	c.err = nil
	c.first, c.rest = nil, nil
	c.inner, c.innerRest = nil, nil
	c.ti = 0
	c.basePos = 0
	c.out, c.i = nil, 0
}

func (c *flworCursor) Next() bool {
	if !c.started {
		c.init()
	}
	if c.par != nil {
		return c.par.next(c)
	}
	for c.err == nil {
		if c.child != nil {
			if c.child.Next() {
				c.cur = c.child.Item()
				return true
			}
			c.err = c.child.Err()
			c.retireChild()
			continue
		}
		if c.inner != nil && c.ti < len(c.chunk) {
			c.startChild()
			continue
		}
		if c.i < len(c.out) {
			c.cur = c.out[c.i]
			c.i++
			return true
		}
		if c.done {
			return false
		}
		c.nextChunk()
	}
	return false
}

func (c *flworCursor) Item() xqeval.Item { return c.cur }
func (c *flworCursor) Err() error        { return c.err }

func (c *flworCursor) Close() {
	// Mark the cursor started as well as done: a Next after an early
	// Close must not resurrect the pipeline by running init.
	c.started, c.done = true, true
	c.out, c.i, c.pending = nil, 0, nil
	if c.memo != nil && c.chunk != nil && c.memo.chunkBuf == nil {
		c.memo.chunkBuf = c.chunk // recycle for the next sibling cursor
	}
	c.chunk, c.ti, c.seed = nil, 0, nil
	if c.child != nil {
		c.child.Close()
		c.child = nil
	}
	c.childFree = nil
	// Scopes close innermost-first: the child's scopes (closed above via its
	// Close) sit on top of childScope, which sits on top of this chunk scope.
	if c.childScope != nil {
		c.x.ev.CloseScope(c.childScope)
		c.childScope = nil
	}
	if c.scope != nil {
		c.x.ev.CloseScope(c.scope)
		c.scope = nil
	}
	c.bindFree = nil // already closed when parked by shelve
	if c.par != nil {
		// The producer goroutine owns (and closes) the binding cursor.
		c.par.close()
		c.par = nil
		c.bind = nil
		return
	}
	if c.bind != nil {
		c.bind.Close()
		c.bind = nil
	}
}

// parallelFLWOR distributes the binding stream across a work-stealing worker
// pool with an order-preserving merge. The producer deals sequence-numbered
// chunk tasks round-robin into one deque per worker; each worker drains its
// own deque and steals from its siblings when that runs dry, so a skewed
// chunk (one tuple whose loop body dominates) never idles the other workers
// the way a static partition would. Workers evaluate the FLWOR tail per
// chunk over forked evaluators (the plan is immutable and race-safe to
// share) and send results to a shared channel; the consumer re-orders them
// through a sequence-keyed min-heap (the same hand-rolled heap as the
// StandOff merge's preHeap), so the parallel stream is item-for-item the
// sequential one.
//
// The deques are bounded globally rather than per-queue: the producer
// acquires an in-flight token per chunk and the consumer releases it only
// when the chunk is emitted, so tasks queued + results waiting in the
// channel or the heap never exceed the token budget and memory stays
// proportional to Parallelism x chunk result, not to the loop size. Only
// the root cursor parallelises — nested levels inside a distributed loop
// evaluate on the expanded path within their worker's chunk.
type parallelFLWOR struct {
	deqs   []workDeque
	resch  chan chunkResult
	slots  chan struct{} // in-flight tokens: producer acquires, merge releases
	donech chan struct{}
	wg     sync.WaitGroup // producer + workers; a closer joins them and closes resch
	met    *obs.ExecMetrics

	mu       sync.Mutex
	cond     *sync.Cond
	queued   int  // tasks dealt to deques and not yet claimed
	prodDone bool // producer exhausted the binding stream
	stopped  bool // close() called; workers must not start new tasks

	// Consumer-side merge state (single goroutine, never shared).
	closed  bool
	heap    resultHeap
	nextSeq int64
	iev     *xqeval.Evaluator // evaluates cost-gated inline chunks at the merge
	out     []xqeval.Item
	i       int
}

// chunkTask is one sequence-numbered slice of the binding stream, ready for
// a worker (or a thief) to evaluate.
type chunkTask struct {
	seq     int64
	tuples  []xqeval.Item
	basePos int64
}

// chunkResult carries one chunk's outcome back to the merge. An inline
// result carries the unevaluated tuples instead: the producer decided the
// chunk was too small to amortise a dispatch (the per-chunk cost gate) and
// the consumer evaluates it itself when its sequence number comes up.
type chunkResult struct {
	seq     int64
	items   []xqeval.Item
	err     error
	inline  []xqeval.Item
	basePos int64
}

// workDeque is one worker's chunk-task queue. The owner pops newest-first
// (its cache is warm with the producer's latest tuples), thieves steal
// oldest-first — the classic work-stealing discipline. A plain mutex guards
// each deque: at chunk granularity the lock is all but uncontended, and the
// pool's in-flight token budget bounds every deque's length.
type workDeque struct {
	mu    sync.Mutex
	tasks []chunkTask
	head  int
}

func (d *workDeque) push(t chunkTask) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

// pop removes the newest task (owner side).
func (d *workDeque) pop() (chunkTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.tasks) {
		return chunkTask{}, false
	}
	n := len(d.tasks) - 1
	t := d.tasks[n]
	d.tasks[n] = chunkTask{} // release the tuple slice
	d.tasks = d.tasks[:n]
	if d.head >= len(d.tasks) {
		d.tasks, d.head = d.tasks[:0], 0
	}
	return t, true
}

// steal removes the oldest task (thief side).
func (d *workDeque) steal() (chunkTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.tasks) {
		return chunkTask{}, false
	}
	t := d.tasks[d.head]
	d.tasks[d.head] = chunkTask{}
	d.head++
	if d.head >= len(d.tasks) {
		d.tasks, d.head = d.tasks[:0], 0
	}
	return t, true
}

// resultHeap orders out-of-sequence chunk results by producer sequence
// number — the same hand-rolled binary min-heap as the StandOff merge's
// preHeap, keyed on seq instead of pre rank.
type resultHeap struct {
	rs []chunkResult
}

func (h *resultHeap) len() int { return len(h.rs) }

func (h *resultHeap) push(r chunkResult) {
	h.rs = append(h.rs, r)
	i := len(h.rs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.rs[p].seq <= h.rs[i].seq {
			break
		}
		h.rs[p], h.rs[i] = h.rs[i], h.rs[p]
		i = p
	}
}

func (h *resultHeap) pop() chunkResult {
	r := h.rs[0]
	n := len(h.rs) - 1
	h.rs[0] = h.rs[n]
	h.rs[n] = chunkResult{}
	h.rs = h.rs[:n]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		s := i
		if l < n && h.rs[l].seq < h.rs[s].seq {
			s = l
		}
		if rt < n && h.rs[rt].seq < h.rs[s].seq {
			s = rt
		}
		if s == i {
			break
		}
		h.rs[i], h.rs[s] = h.rs[s], h.rs[i]
		i = s
	}
	return r
}

// startParallel decides the partition size, applies the small-loop gate, and
// spins up the producer and workers. It returns nil when the binding stream
// ends below the gate — the caller then runs the buffered tuples through the
// ordinary sequential chunk path.
func startParallel(c *flworCursor) *parallelFLWOR {
	pchunk := parallelChunkSize
	if s := c.x.cfg.ChunkSize; s > 0 && s < pchunk {
		pchunk = s
	}
	// Gate on the observed cardinality of the binding stream.
	prefix := make([]xqeval.Item, 0, parallelMinTuples+1)
	for len(prefix) <= parallelMinTuples && c.bind.Next() {
		prefix = append(prefix, c.bind.Item())
	}
	if err := c.bind.Err(); err != nil {
		c.err = err
		return nil
	}
	if len(prefix) <= parallelMinTuples {
		// Small loop: hand the buffered tuples to the ordinary sequential
		// chunk path, which evaluates them in ChunkSize slices — the
		// memory bound holds whether or not the pool engages.
		c.pending = prefix
		return nil
	}

	workers := c.x.cfg.Parallelism
	inflight := 2 * workers
	p := &parallelFLWOR{
		deqs:   make([]workDeque, workers),
		resch:  make(chan chunkResult, inflight),
		slots:  make(chan struct{}, inflight),
		donech: make(chan struct{}),
		met:    c.x.ev.Met,
		iev:    c.x.ev.Fork(),
	}
	p.cond = sync.NewCond(&p.mu)
	p.iev.AttachArena()
	p.wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go p.worker(c, w)
	}
	go p.produce(c, c.bind, prefix, pchunk)
	// The closer shuts the result channel once the producer and every
	// worker has exited — the merge reads end-of-stream from the close.
	go func() {
		p.wg.Wait()
		close(p.resch)
	}()
	return p
}

// produce slices the binding stream into sequence-numbered chunk tasks and
// deals them round-robin into the worker deques. It owns the binding cursor
// exclusively — no other goroutine touches it once the pool starts. Each
// chunk first acquires an in-flight token (released by the merge when the
// chunk is emitted), which is what bounds the deques and the result heap.
func (p *parallelFLWOR) produce(c *flworCursor, bind Cursor, prefix []xqeval.Item, pchunk int) {
	defer p.wg.Done()
	defer func() {
		p.mu.Lock()
		p.prodDone = true
		p.mu.Unlock()
		p.cond.Broadcast()
	}()
	defer bind.Close()
	// The per-chunk cost gate: dispatching a chunk costs a queue round trip
	// and a forked evaluation — the same order of machinery the cost model
	// prices as the loop-lifted setup cost. A trailing partial chunk below
	// that many tuples is cheaper to evaluate inline at the merge. Full
	// chunks are never gated, so the gate cannot serialise a configuration
	// whose ChunkSize is small.
	inlineRows := xqplan.SetupRows()
	var seq, basePos int64
	emit := func(tuples []xqeval.Item) bool {
		if !p.acquireSlot() {
			return false
		}
		t := chunkTask{seq: seq, tuples: tuples, basePos: basePos}
		seq++
		basePos += int64(len(tuples))
		if len(tuples) < pchunk && len(tuples) < inlineRows {
			select {
			case p.resch <- chunkResult{seq: t.seq, inline: t.tuples, basePos: t.basePos}:
				return true
			case <-p.donech:
				return false
			}
		}
		p.deqs[int(t.seq)%len(p.deqs)].push(t)
		p.mu.Lock()
		p.queued++
		p.mu.Unlock()
		p.cond.Signal()
		return true
	}
	for len(prefix) > 0 {
		n := min(pchunk, len(prefix))
		if !emit(prefix[:n:n]) {
			return
		}
		prefix = prefix[n:]
	}
	for {
		tuples := make([]xqeval.Item, 0, pchunk)
		for len(tuples) < pchunk && bind.Next() {
			tuples = append(tuples, bind.Item())
		}
		if err := bind.Err(); err != nil {
			// The error occupies the next sequence slot, so the merge
			// surfaces it only after every preceding chunk — exactly where
			// the sequential stream would have failed.
			if !p.acquireSlot() {
				return
			}
			select {
			case p.resch <- chunkResult{seq: seq, err: err}:
			case <-p.donech:
			}
			return
		}
		if len(tuples) == 0 {
			return
		}
		if !emit(tuples) {
			return
		}
	}
}

// acquireSlot takes one in-flight token for the producer, counting a stall
// when the budget is exhausted and the producer genuinely has to wait for
// the merge to release one — the saturation signal of the pool. Returns
// false when the pool shut down instead.
func (p *parallelFLWOR) acquireSlot() bool {
	select {
	case p.slots <- struct{}{}:
		return true
	default:
	}
	p.met.InflightWait()
	select {
	case p.slots <- struct{}{}:
		return true
	case <-p.donech:
		return false
	}
}

func (p *parallelFLWOR) worker(c *flworCursor, w int) {
	defer p.wg.Done()
	// One fork per worker goroutine, with its own join arena (arenas are
	// single-goroutine; Fork drops the parent's). The fork's per-chunk
	// state (recursion depth) resets itself because evalFLWORChunk always
	// starts from depth 0.
	ev := c.x.ev.Fork()
	ev.AttachArena()
	defer ev.DetachArena()
	for {
		t, ok := p.takeTask(w)
		if !ok {
			return
		}
		items, err := evalFLWORChunk(ev, c, t.tuples, t.basePos)
		select {
		case p.resch <- chunkResult{seq: t.seq, items: items, err: err}:
		case <-p.donech:
			return
		}
	}
}

// takeTask is the work-stealing loop for worker w: drain the own deque
// (newest first), then sweep the siblings' deques (oldest first), then sleep
// on the pool condition until the producer deals more work or the pool shuts
// down. Returns false when no task will ever arrive again.
func (p *parallelFLWOR) takeTask(w int) (chunkTask, bool) {
	for {
		select {
		case <-p.donech:
			return chunkTask{}, false
		default:
		}
		if t, ok := p.deqs[w].pop(); ok {
			p.claim()
			return t, true
		}
		for d := 1; d < len(p.deqs); d++ {
			if t, ok := p.deqs[(w+d)%len(p.deqs)].steal(); ok {
				p.met.Steal()
				p.claim()
				return t, true
			}
		}
		p.mu.Lock()
		if p.queued == 0 {
			if p.prodDone || p.stopped {
				p.mu.Unlock()
				return chunkTask{}, false
			}
			p.cond.Wait()
		}
		p.mu.Unlock()
	}
}

// claim accounts one task leaving the deques. queued is incremented only
// after the task is pushed, so a sleeping worker woken by the signal always
// finds the task it was woken for (or sleeps again after a failed sweep).
func (p *parallelFLWOR) claim() {
	p.mu.Lock()
	p.queued--
	p.mu.Unlock()
}

// next is the order-preserving merge: results arrive in completion order and
// are re-sequenced through the min-heap, so chunks are emitted strictly in
// the order the producer numbered them and the parallel stream is
// item-for-item the sequential stream.
func (p *parallelFLWOR) next(c *flworCursor) bool {
	for c.err == nil {
		if p.i < len(p.out) {
			c.cur = p.out[p.i]
			p.i++
			return true
		}
		if p.heap.len() > 0 && p.heap.rs[0].seq == p.nextSeq {
			if !p.take(c, p.heap.pop()) {
				return false
			}
			continue
		}
		r, ok := <-p.resch
		if !ok {
			// Producer and workers are done and every result was taken:
			// sequence numbers are contiguous, so the heap is empty too.
			return false
		}
		if r.seq != p.nextSeq {
			p.heap.push(r)
			continue
		}
		if !p.take(c, r) {
			return false
		}
	}
	return false
}

// take emits one in-sequence chunk result: releases its in-flight token (the
// producer may now deal the next chunk), surfaces its error, evaluates it
// here if the producer's cost gate kept it inline, and stages its items.
func (p *parallelFLWOR) take(c *flworCursor, r chunkResult) bool {
	p.nextSeq++
	<-p.slots
	if r.err != nil {
		c.err = r.err
		return false
	}
	if r.inline != nil {
		items, err := evalFLWORChunk(p.iev, c, r.inline, r.basePos)
		if err != nil {
			c.err = err
			return false
		}
		p.out, p.i = items, 0
		return true
	}
	p.out, p.i = r.items, 0
	return true
}

func (p *parallelFLWOR) close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.donech)
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
	// Drain the result channel until the closer shuts it: that happens only
	// after the producer and every worker has exited, and the caller
	// releases the parent evaluator's join arena right after Close, so no
	// goroutine that reads the evaluator (Fork) or evaluates over it (the
	// producer's binding cursor) may outlive this loop.
	for range p.resch {
	}
	p.iev.DetachArena()
	p.heap.rs = nil
}

// Package xqexec is the streaming execution subsystem: it turns a compiled
// plan into a pull-based pipeline of bounded-memory cursors instead of one
// fully materialised result sequence. The pipeline drives the same
// loop-lifted evaluator that the materialising path uses — a FLWOR's loop
// body is still evaluated for a whole chunk of tuples at once, so StandOff
// joins inside the loop keep their loop-lifted amortisation — but only one
// chunk of tuples and one chunk of results is live at a time. The bound
// compounds through nesting: an inner for clause over a streamable
// StandOff-free binding drives a child cursor per parent tuple (see
// flwor.go), and a StandOff select final path step streams per context
// chunk through a watermark-gated ordered dedup merge (see standoff.go).
// Expression forms that cannot stream (order by, aggregates, reject
// anti-joins, ...) fall back to a cursor wrapping the materialising
// evaluator, so every query works under either execution style and both
// return identical sequences.
//
// On top of the chunked pipeline, the FLWOR cursor can partition large loops
// across a worker pool (Config.Parallelism): chunks of tuples are evaluated
// concurrently over the shared immutable plan and merged back in order.
// Small loops — below the cardinality cutoff the gate observes on the
// binding stream — stay single-threaded, for the same reason the cost
// model keeps single-iteration joins on the Basic merge: parallel machinery
// only pays off once the work amortises it.
//
// The pipeline participates in EXPLAIN twice over. Describe reports the
// shape Build would construct — which operators pipeline and which
// materialise, and why — without executing anything. And when the driving
// evaluator carries an xqplan.ExecStats collector (Prepared.Analyze), the
// cursors record the streaming-path counters the materialising evaluator
// cannot see: chunks and tuples per FLWOR, and the per-context-node rows of
// a pipelined final path step.
package xqexec

import (
	"soxq/internal/xqast"
	"soxq/internal/xqeval"
)

// Cursor is a pull-based result stream. The usage contract mirrors
// database/sql.Rows: call Next until it returns false, read the current item
// with Item, then check Err; Close releases pipeline resources (worker
// goroutines) and is idempotent. A Cursor is single-consumer — it must not
// be shared between goroutines — but any number of cursors over the same
// plan may run concurrently.
type Cursor interface {
	// Next advances to the next item, returning false at the end of the
	// stream or on error (check Err).
	Next() bool
	// Item returns the current item; valid after a true Next.
	Item() xqeval.Item
	// Err returns the first error the pipeline hit, or nil.
	Err() error
	// Close tears the pipeline down. Safe to call more than once, and
	// safe to call before the stream is drained.
	Close()
}

// Config tunes the pipeline.
type Config struct {
	// ChunkSize is the number of loop tuples evaluated per pipeline chunk.
	// Larger chunks amortise the loop-lifted joins better; smaller chunks
	// bound memory tighter. <= 0 means unbounded: each operator
	// materialises fully, which is what Exec (a drain) wants.
	ChunkSize int
	// Parallelism is the number of worker goroutines large FLWOR loops are
	// partitioned across. <= 1 runs single-threaded.
	Parallelism int
}

// DefaultChunkSize is the chunk size Stream uses when the caller does not
// set one.
const DefaultChunkSize = 1024

// Build compiles the plan body into a cursor pipeline: globals are evaluated
// eagerly (so their errors surface here), then the top-level expression is
// matched against the pipelined operator forms, recursively for operators
// with streamable inputs. Anything else becomes a materialising cursor.
func Build(ev *xqeval.Evaluator, cfg Config) (Cursor, error) {
	// The pipeline owns a pooled join arena for its whole run (globals,
	// every chunk join); the wrapping cursor hands it back on Close.
	// Forked parallel workers attach their own — see parallelFLWOR.
	ev.AttachArena()
	// The seq arena recycles frames, bindings, and sequence buffers across
	// the pipeline's chunk scopes; workers fork without one and allocate
	// plainly, since their results outlive any scope the worker could close.
	ev.AttachSeqArena()
	root, err := ev.NewRootFrame()
	if err != nil {
		ev.DetachSeqArena()
		ev.DetachArena()
		return nil, err
	}
	x := &executor{ev: ev, cfg: cfg}
	return &pipelineCursor{Cursor: x.build(ev.Plan.Body(), root), ev: ev}, nil
}

// pipelineCursor wraps a pipeline's root cursor to scope the evaluator's
// join arena to the run: Close (always reached — DrainAll defers it, and
// soxq.Cursor.Close forwards) releases the arena and every buffer on loan
// from it back to the pool.
type pipelineCursor struct {
	Cursor
	ev *xqeval.Evaluator
}

func (c *pipelineCursor) Close() {
	c.Cursor.Close()
	c.ev.DetachArena()
	c.ev.DetachSeqArena()
}

// Unwrap exposes the wrapped root cursor (tests inspect its concrete type).
func (c *pipelineCursor) Unwrap() Cursor { return c.Cursor }

// takeAll forwards the materialising fast path through the wrapper so a
// non-streamable pipeline still hands its backing slice to DrainAll.
func (c *pipelineCursor) takeAll() ([]xqeval.Item, error) {
	if t, ok := c.Cursor.(interface{ takeAll() ([]xqeval.Item, error) }); ok {
		return t.takeAll()
	}
	var out []xqeval.Item
	for c.Cursor.Next() {
		out = append(out, c.Cursor.Item())
	}
	if err := c.Cursor.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// executor carries the build context shared by all cursors of one pipeline.
type executor struct {
	ev  *xqeval.Evaluator
	cfg Config
}

// chunkSize returns the effective tuples-per-chunk bound.
func (x *executor) chunkSize() int {
	if x.cfg.ChunkSize <= 0 {
		return int(^uint(0) >> 1) // unbounded: one chunk materialises all
	}
	return x.cfg.ChunkSize
}

// build constructs the cursor for one expression under a root-shaped frame
// (one iteration). It never evaluates anything: evaluation happens lazily on
// the first Next, except for globals which Build resolved already.
func (x *executor) build(e xqast.Expr, f *xqeval.Frame) Cursor {
	switch v := e.(type) {
	case *xqast.FLWOR:
		if streamableFLWOR(v) {
			return newFLWORCursor(x, v, f)
		}
	case *xqast.Path:
		return &pathCursor{x: x, p: v, f: f}
	case *xqast.Binary:
		switch v.Op {
		case ",":
			return &seqCursor{x: x, f: f, exprs: flattenSeq(v)}
		case "to":
			return newRangeCursor(x, v, f)
		}
	case *xqast.Enclosed:
		return x.build(v.X, f)
	}
	return &materialCursor{ev: x.ev, e: e, f: f}
}

// streamableFLWOR reports whether a FLWOR can run through the chunked tuple
// pipeline: at least one for clause to stream over, and no order by (a sort
// needs every tuple before the first result item).
func streamableFLWOR(v *xqast.FLWOR) bool {
	if len(v.OrderBy) > 0 {
		return false
	}
	for _, cl := range v.Clauses {
		if _, ok := cl.(*xqast.ForClause); ok {
			return true
		}
	}
	return false
}

// buildReuse rebuilds a reset level's binding cursor, reusing the shelved
// sibling's cursor in place when it was built for the same expression (the
// common shape: every parent tuple re-binds the same inner `1 to N` range).
func (x *executor) buildReuse(e xqast.Expr, f *xqeval.Frame, old Cursor) Cursor {
	if rc, ok := old.(*rangeCursor); ok {
		if v, ok2 := unwrapRange(e); ok2 && v == rc.v {
			rc.reset(f)
			return rc
		}
	}
	return x.build(e, f)
}

// unwrapRange peels Enclosed wrappers down to a `to` binary, if that is what
// the expression is.
func unwrapRange(e xqast.Expr) (*xqast.Binary, bool) {
	switch v := e.(type) {
	case *xqast.Binary:
		if v.Op == "to" {
			return v, true
		}
	case *xqast.Enclosed:
		return unwrapRange(v.X)
	}
	return nil, false
}

// flattenSeq collects the operands of a (left-leaning) `,` chain in order.
func flattenSeq(v *xqast.Binary) []xqast.Expr {
	if l, ok := v.L.(*xqast.Binary); ok && l.Op == "," {
		return append(flattenSeq(l), v.R)
	}
	return []xqast.Expr{v.L, v.R}
}

// DrainAll exhausts a cursor into a slice — the bridge Exec uses to stay a
// thin drain of Stream. Cursors that already hold their full result hand the
// backing slice over without a copy.
func DrainAll(c Cursor) ([]xqeval.Item, error) {
	defer c.Close()
	if t, ok := c.(interface{ takeAll() ([]xqeval.Item, error) }); ok {
		return t.takeAll()
	}
	var out []xqeval.Item
	for c.Next() {
		out = append(out, c.Item())
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// materialCursor is the fallback operator: it evaluates the whole expression
// with the materialising evaluator on first Next and streams the result. It
// is also what keeps the two execution styles semantically identical — any
// form the pipeline does not understand runs exactly as Exec always has.
type materialCursor struct {
	ev      *xqeval.Evaluator
	e       xqast.Expr
	f       *xqeval.Frame
	started bool
	items   []xqeval.Item
	i       int
	cur     xqeval.Item
	err     error
}

func (c *materialCursor) run() {
	c.started = true
	seq, err := c.ev.EvalExpr(c.e, c.f)
	if err != nil {
		c.err = err
		return
	}
	c.items = seq.Group(0)
}

func (c *materialCursor) Next() bool {
	if !c.started {
		c.run()
	}
	if c.err != nil || c.i >= len(c.items) {
		return false
	}
	c.cur = c.items[c.i]
	c.i++
	return true
}

func (c *materialCursor) Item() xqeval.Item { return c.cur }
func (c *materialCursor) Err() error        { return c.err }
func (c *materialCursor) Close()            { c.started, c.items, c.i = true, nil, 0 }

// takeAll lets DrainAll skip the item-by-item copy: the evaluated group is
// handed over directly, making Exec-through-the-pipeline identical in cost
// to the pre-streaming Exec for non-pipelined plans.
func (c *materialCursor) takeAll() ([]xqeval.Item, error) {
	if !c.started {
		c.run()
	}
	if c.err != nil {
		return nil, c.err
	}
	return c.items[c.i:], nil
}

// seqCursor streams a `,` sequence: each operand's cursor is built only when
// the previous operand is exhausted, so `(big-a, big-b)` holds one operand's
// pipeline at a time.
type seqCursor struct {
	x     *executor
	f     *xqeval.Frame
	exprs []xqast.Expr
	i     int
	cur   Cursor
	item  xqeval.Item
	err   error
}

func (c *seqCursor) Next() bool {
	for c.err == nil {
		if c.cur == nil {
			if c.i >= len(c.exprs) {
				return false
			}
			c.cur = c.x.build(c.exprs[c.i], c.f)
			c.i++
		}
		if c.cur.Next() {
			c.item = c.cur.Item()
			return true
		}
		c.err = c.cur.Err()
		c.cur.Close()
		c.cur = nil
	}
	return false
}

func (c *seqCursor) Item() xqeval.Item { return c.item }
func (c *seqCursor) Err() error        { return c.err }
func (c *seqCursor) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.i = len(c.exprs)
}

// rangeCursor streams `lo to hi` without materialising the range — the
// canonical unbounded generator (a for-clause over a range binds tuples
// straight out of this cursor, so a million-iteration loop never holds a
// million binding items). Bounds are evaluated once on the first Next; the
// materialising evaluator's range-size limit applies identically.
type rangeCursor struct {
	x       *executor
	v       *xqast.Binary
	f       *xqeval.Frame
	started bool
	done    bool
	next    int64
	hi      int64
	cur     xqeval.Item
	// lit caches bounds recognised as integer literals at build time, so a
	// reset-reused cursor (`for $x in 1 to N` under a nested loop) re-arms
	// without re-evaluating — and thus without allocating — anything.
	lit          bool
	litLo, litHi int64
	err          error
}

// newRangeCursor builds a range cursor, pre-resolving literal bounds.
func newRangeCursor(x *executor, v *xqast.Binary, f *xqeval.Frame) *rangeCursor {
	c := &rangeCursor{x: x, v: v, f: f}
	if l, ok := v.L.(*xqast.IntLit); ok {
		if r, ok2 := v.R.(*xqast.IntLit); ok2 {
			c.lit, c.litLo, c.litHi = true, l.V, r.V
		}
	}
	return c
}

// reset re-arms the cursor under a fresh frame for reuse by buildReuse.
func (c *rangeCursor) reset(f *xqeval.Frame) {
	c.f = f
	c.started, c.done = false, false
	c.err = nil
}

func (c *rangeCursor) init() {
	c.started = true
	var lo, hi int64
	if c.lit {
		lo, hi = c.litLo, c.litHi
	} else {
		l, err := c.x.ev.EvalExpr(c.v.L, c.f)
		if err != nil {
			c.err = err
			return
		}
		r, err := c.x.ev.EvalExpr(c.v.R, c.f)
		if err != nil {
			c.err = err
			return
		}
		var loOK, hiOK bool
		lo, loOK, err = xqeval.SingletonInt(l.Group(0))
		if err != nil {
			c.err = err
			return
		}
		hi, hiOK, err = xqeval.SingletonInt(r.Group(0))
		if err != nil {
			c.err = err
			return
		}
		if !loOK || !hiOK {
			c.done = true
			return
		}
	}
	if lo > hi {
		c.done = true
		return
	}
	if hi-lo >= xqeval.RangeLimit {
		c.err = xqeval.ErrRangeTooLarge(lo, hi)
		return
	}
	c.next, c.hi = lo, hi
}

func (c *rangeCursor) Next() bool {
	if !c.started {
		c.init()
	}
	if c.err != nil || c.done {
		return false
	}
	c.cur = xqeval.Int(c.next)
	if c.next == c.hi {
		c.done = true
	} else {
		c.next++
	}
	return true
}

func (c *rangeCursor) Item() xqeval.Item { return c.cur }
func (c *rangeCursor) Err() error        { return c.err }
func (c *rangeCursor) Close()            { c.done = true }

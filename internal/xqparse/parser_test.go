package xqparse

import (
	"fmt"
	"strings"
	"testing"

	"soxq/internal/xpath"
	"soxq/internal/xqast"
)

// dump renders an AST compactly for assertions.
func dump(e xqast.Expr) string {
	switch v := e.(type) {
	case *xqast.FLWOR:
		var sb strings.Builder
		sb.WriteString("(flwor")
		for _, c := range v.Clauses {
			switch cl := c.(type) {
			case *xqast.ForClause:
				if cl.Pos != "" {
					fmt.Fprintf(&sb, " (for $%s at $%s %s)", cl.Var, cl.Pos, dump(cl.Seq))
				} else {
					fmt.Fprintf(&sb, " (for $%s %s)", cl.Var, dump(cl.Seq))
				}
			case *xqast.LetClause:
				fmt.Fprintf(&sb, " (let $%s %s)", cl.Var, dump(cl.Seq))
			}
		}
		if v.Where != nil {
			fmt.Fprintf(&sb, " (where %s)", dump(v.Where))
		}
		for _, o := range v.OrderBy {
			dir := "asc"
			if o.Descending {
				dir = "desc"
			}
			fmt.Fprintf(&sb, " (order %s %s)", dump(o.Key), dir)
		}
		fmt.Fprintf(&sb, " (return %s))", dump(v.Return))
		return sb.String()
	case *xqast.Quantified:
		kw := "some"
		if v.Every {
			kw = "every"
		}
		return fmt.Sprintf("(%s $%s %s %s)", kw, v.Var, dump(v.Seq), dump(v.Satisfies))
	case *xqast.IfExpr:
		return fmt.Sprintf("(if %s %s %s)", dump(v.Cond), dump(v.Then), dump(v.Else))
	case *xqast.Binary:
		return fmt.Sprintf("(%s %s %s)", v.Op, dump(v.L), dump(v.R))
	case *xqast.Unary:
		if v.Neg {
			return fmt.Sprintf("(neg %s)", dump(v.X))
		}
		return fmt.Sprintf("(pos %s)", dump(v.X))
	case *xqast.Path:
		var sb strings.Builder
		sb.WriteString("(path")
		if v.Absolute {
			sb.WriteString(" abs")
		}
		if v.Start != nil {
			fmt.Fprintf(&sb, " (start %s)", dump(v.Start))
		}
		for _, s := range v.Steps {
			fmt.Fprintf(&sb, " %s", dumpStep(s))
		}
		sb.WriteString(")")
		return sb.String()
	case *xqast.Filter:
		var sb strings.Builder
		fmt.Fprintf(&sb, "(filter %s", dump(v.Base))
		for _, p := range v.Predicates {
			fmt.Fprintf(&sb, " [%s]", dump(p))
		}
		sb.WriteString(")")
		return sb.String()
	case *xqast.FuncCall:
		var sb strings.Builder
		fmt.Fprintf(&sb, "(call %s", v.Name)
		for _, a := range v.Args {
			fmt.Fprintf(&sb, " %s", dump(a))
		}
		sb.WriteString(")")
		return sb.String()
	case *xqast.VarRef:
		return "$" + v.Name
	case *xqast.ContextItem:
		return "."
	case *xqast.EmptySeq:
		return "()"
	case *xqast.StringLit:
		return fmt.Sprintf("%q", v.V)
	case *xqast.IntLit:
		return fmt.Sprintf("%d", v.V)
	case *xqast.FloatLit:
		return fmt.Sprintf("%g", v.V)
	case *xqast.DirectElem:
		var sb strings.Builder
		fmt.Fprintf(&sb, "(elem %s", v.Name)
		for _, a := range v.Attrs {
			fmt.Fprintf(&sb, " @%s=(", a.Name)
			for i, part := range a.Value {
				if i > 0 {
					sb.WriteString(" ")
				}
				sb.WriteString(dump(part))
			}
			sb.WriteString(")")
		}
		for _, c := range v.Content {
			fmt.Fprintf(&sb, " %s", dump(c))
		}
		sb.WriteString(")")
		return sb.String()
	case *xqast.Enclosed:
		return fmt.Sprintf("{%s}", dump(v.X))
	case *xqast.ComputedElem:
		if v.NameExpr != nil {
			return fmt.Sprintf("(element {%s} %s)", dump(v.NameExpr), dump(v.Content))
		}
		return fmt.Sprintf("(element %s %s)", v.Name, dump(v.Content))
	case *xqast.ComputedAttr:
		return fmt.Sprintf("(attribute %s %s)", v.Name, dump(v.Content))
	case *xqast.ComputedText:
		return fmt.Sprintf("(text %s)", dump(v.Content))
	default:
		return fmt.Sprintf("?%T", e)
	}
}

func dumpStep(s *xqast.Step) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s::%s", s.Axis, s.Test)
	for _, p := range s.Predicates {
		fmt.Fprintf(&sb, "[%s]", dump(p))
	}
	return sb.String()
}

func parseOK(t *testing.T, src string) *xqast.Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return m
}

func wantExpr(t *testing.T, src, want string) {
	t.Helper()
	m := parseOK(t, src)
	if got := dump(m.Body); got != want {
		t.Errorf("parse %q:\n got  %s\nwant %s", src, got, want)
	}
}

func TestParseLiteralsAndOperators(t *testing.T) {
	wantExpr(t, `1 + 2 * 3`, `(+ 1 (* 2 3))`)
	wantExpr(t, `(1 + 2) * 3`, `(* (+ 1 2) 3)`)
	wantExpr(t, `1 - 2 - 3`, `(- (- 1 2) 3)`)
	wantExpr(t, `-1 + 2`, `(+ (neg 1) 2)`)
	wantExpr(t, `2 idiv 3 mod 4`, `(mod (idiv 2 3) 4)`)
	wantExpr(t, `1 to 5`, `(to 1 5)`)
	wantExpr(t, `"a" = 'b'`, `("a" "b")`[:0]+`(= "a" "b")`)
	wantExpr(t, `1 < 2 and 3 >= 4 or 5 != 6`,
		`(or (and (< 1 2) (>= 3 4)) (!= 5 6))`)
	wantExpr(t, `$x eq 5`, `(eq $x 5)`)
	wantExpr(t, `$a is $b`, `(is $a $b)`)
	wantExpr(t, `1.5e2`, `150`)
	wantExpr(t, `.5`, `0.5`)
	wantExpr(t, `"it""s"`, `"it\"s"`)
	wantExpr(t, `1, 2, 3`, `(, (, 1 2) 3)`)
	wantExpr(t, `()`, `()`)
	wantExpr(t, `a | b`, `(union (path child::a) (path child::b))`)
	wantExpr(t, `a intersect b`, `(intersect (path child::a) (path child::b))`)
}

func TestParsePaths(t *testing.T) {
	wantExpr(t, `/site`, `(path abs child::site)`)
	wantExpr(t, `/`, `(path abs)`)
	wantExpr(t, `//site/people`, `(path abs descendant-or-self::node() child::site child::people)`)
	wantExpr(t, `a//b`, `(path child::a descendant-or-self::node() child::b)`)
	wantExpr(t, `child::a/descendant::b`, `(path child::a descendant::b)`)
	wantExpr(t, `a/@id`, `(path child::a attribute::id)`)
	wantExpr(t, `@*`, `(path attribute::*)`)
	wantExpr(t, `../x`, `(path parent::node() child::x)`)
	wantExpr(t, `a/text()`, `(path child::a text::text())`[:0]+`(path child::a child::text())`)
	wantExpr(t, `self::node()`, `(path self::node())`)
	wantExpr(t, `a[1]`, `(path child::a[1])`)
	wantExpr(t, `a[@id = "x"][2]`, `(path child::a[(= (path attribute::id) "x")][2])`)
	wantExpr(t, `$b/name`, `(path (start $b) child::name)`)
	wantExpr(t, `doc("x.xml")/site`, `(path (start (call doc "x.xml")) child::site)`)
	wantExpr(t, `(a, b)/.`, `(path (start (, (path child::a) (path child::b))) self::node())`)
	wantExpr(t, `.`, `.`)
	wantExpr(t, `.[a]`, `(filter . [(path child::a)])`)
	wantExpr(t, `ancestor-or-self::div`, `(path ancestor-or-self::div)`)
	wantExpr(t, `processing-instruction(tgt)`, `(path child::processing-instruction(tgt))`)
	wantExpr(t, `document-node()`, `(path child::document-node())`)
	wantExpr(t, `attribute::href`, `(path attribute::href)`)
}

func TestParseStandOffAxes(t *testing.T) {
	wantExpr(t, `//music/select-narrow::shot`,
		`(path abs descendant-or-self::node() child::music select-narrow::shot)`)
	wantExpr(t, `$b/select-wide::*`, `(path (start $b) select-wide::*)`)
	wantExpr(t, `x/reject-narrow::node()`, `(path child::x reject-narrow::node())`)
	wantExpr(t, `x/reject-wide::a[1]`, `(path child::x reject-wide::a[1])`)
	// Figure 5 of the paper: StandOff XMark query 2.
	src := `for $b in doc("xmark110MB.xml")//site/select-narrow::open_auctions
	          /select-narrow::open_auction
	        return <increase> {
	          $b/select-narrow::bidder[1]/select-narrow::increase
	        } </increase>`
	m := parseOK(t, src)
	got := dump(m.Body)
	want := `(flwor (for $b (path (start (call doc "xmark110MB.xml")) descendant-or-self::node() child::site select-narrow::open_auctions select-narrow::open_auction)) (return (elem increase {(path (start $b) select-narrow::bidder[1] select-narrow::increase)})))`
	if got != want {
		t.Errorf("Figure 5:\n got  %s\nwant %s", got, want)
	}
}

func TestParseFLWOR(t *testing.T) {
	wantExpr(t, `for $x in (1,2), $y in (3,4) return $x + $y`,
		`(flwor (for $x (, 1 2)) (for $y (, 3 4)) (return (+ $x $y)))`)
	wantExpr(t, `for $x at $i in $s return $i`,
		`(flwor (for $x at $i $s) (return $i))`)
	wantExpr(t, `let $x := 1 return $x`,
		`(flwor (let $x 1) (return $x))`)
	wantExpr(t, `for $x in $s let $y := $x where $y > 2 order by $y descending return $y`,
		`(flwor (for $x $s) (let $y $x) (where (> $y 2)) (order $y desc) (return $y))`)
	wantExpr(t, `for $x as item() in $s return $x`,
		`(flwor (for $x $s) (return $x))`)
	wantExpr(t, `some $x in (1,2) satisfies $x > 1`,
		`(some $x (, 1 2) (> $x 1))`)
	wantExpr(t, `every $x in $s, $y in $t satisfies $x = $y`,
		`(every $x $s (every $y $t (= $x $y)))`)
	wantExpr(t, `if (1) then 2 else 3`, `(if 1 2 3)`)
}

func TestParseConstructors(t *testing.T) {
	wantExpr(t, `<a/>`, `(elem a)`)
	wantExpr(t, `<a x="1" y='2'/>`, `(elem a @x=("1") @y=("2"))`)
	wantExpr(t, `<a>text</a>`, `(elem a "text")`)
	wantExpr(t, `<a>{1 + 2}</a>`, `(elem a {(+ 1 2)})`)
	wantExpr(t, `<a><b/>mid<c/></a>`, `(elem a (elem b) "mid" (elem c))`)
	wantExpr(t, `<a x="p{$v}s"/>`, `(elem a @x=("p" {$v} "s"))`)
	wantExpr(t, `<a>{{literal}}</a>`, `(elem a "{" "literal" "}")`)
	wantExpr(t, `<a>&amp;&lt;&#65;</a>`, `(elem a "&<A")`)
	wantExpr(t, `<a><![CDATA[1 < 2]]></a>`, `(elem a "1 < 2")`)
	wantExpr(t, `element foo { 1 }`, `(element foo 1)`)
	wantExpr(t, `element { $n } { 1 }`, `(element {$n} 1)`)
	wantExpr(t, `attribute id { "x" }`, `(attribute id "x")`)
	wantExpr(t, `text { "x" }`, `(text "x")`)
	// Whitespace-only boundaries are stripped.
	wantExpr(t, "<a>\n  <b/>\n</a>", `(elem a (elem b))`)
	// Nested constructor inside enclosed expression.
	wantExpr(t, `<a>{ <b>{ $x }</b> }</a>`, `(elem a {(elem b {$x})})`)
}

func TestParsePrologAndFunctions(t *testing.T) {
	src := `
	xquery version "1.0";
	declare namespace so = "http://w3c.org/tr/standoff/";
	declare option standoff-type "xs:integer";
	declare option standoff-start "from";
	declare variable $limit := 10;
	declare function local:twice($x) { $x * 2 };
	declare function so:select-narrow($input as node()*, $candidates as node()*) as node()* {
	  (for $q in $input
	   for $p in $candidates
	   where $p/@start >= $q/@start
	     and $p/@end <= $q/@end
	     and root($p) is root($q)
	   return $p)/.
	};
	local:twice($limit)`
	m := parseOK(t, src)
	if len(m.Options) != 2 || m.Options[0].Name != "standoff-type" || m.Options[1].Value != "from" {
		t.Fatalf("options = %+v", m.Options)
	}
	if len(m.Namespaces) != 1 || m.Namespaces[0].Prefix != "so" {
		t.Fatalf("namespaces = %+v", m.Namespaces)
	}
	if len(m.Variables) != 1 || m.Variables[0].Name != "limit" {
		t.Fatalf("variables = %+v", m.Variables)
	}
	if len(m.Functions) != 2 {
		t.Fatalf("functions = %d", len(m.Functions))
	}
	f := m.Functions[1]
	if f.Name != "so:select-narrow" || len(f.Params) != 2 || f.Params[0] != "input" {
		t.Fatalf("function = %+v", f)
	}
	// The UDF body: a parenthesised FLWOR followed by /. for dedup.
	body := dump(f.Body)
	if !strings.Contains(body, "self::node()") || !strings.Contains(body, "(where") {
		t.Fatalf("UDF body = %s", body)
	}
	if got := dump(m.Body); got != `(call local:twice $limit)` {
		t.Fatalf("body = %s", got)
	}
}

func TestParseComments(t *testing.T) {
	wantExpr(t, `1 (: plus (: nested :) comment :) + 2`, `(+ 1 2)`)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for $x return 1`,
		`for x in (1) return x`,
		`let $x = 1 return $x`,
		`if (1) then 2`,
		`1 +`,
		`"unterminated`,
		`(1, 2`,
		`a[1`,
		`<a>`,
		`<a></b>`,
		`<a x=1/>`,
		`<a>{1</a>`,
		`$`,
		`declare option foo;`,
		`declare banana "x"; 1`,
		`some $x in (1) return 2`,
		`//`,
		`1; 2`,
		`count(1,`,
		`foo::bar`,
		`1 2`,
		`(: unterminated`,
		`<a>}</a>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseExprEntry(t *testing.T) {
	e, err := ParseExpr(`1 + 2`)
	if err != nil || dump(e) != `(+ 1 2)` {
		t.Fatalf("ParseExpr: %v %v", e, err)
	}
	if _, err := ParseExpr(`1 +`); err == nil {
		t.Fatal("bad expr should fail")
	}
}

func TestStepAxisKinds(t *testing.T) {
	m := parseOK(t, `a/select-narrow::b`)
	p := m.Body.(*xqast.Path)
	if p.Steps[1].Axis != xpath.AxisSelectNarrow {
		t.Fatalf("axis = %v", p.Steps[1].Axis)
	}
}

func TestParseMoreConstructors(t *testing.T) {
	wantExpr(t, `<a b='{{x}}'/>`, `(elem a @b=("{x}"))`)
	wantExpr(t, `<a b="&amp;&#65;"/>`, `(elem a @b=("&A"))`)
	wantExpr(t, `<a b=""/>`, `(elem a @b=())`)
	wantExpr(t, `<a b='it""s'/>`, `(elem a @b=("it\"\"s"))`)
	wantExpr(t, `<a b="x{1}{2}y"/>`, `(elem a @b=("x" {1} {2} "y"))`)
	wantExpr(t, `<a><!-- skip --><b/></a>`, `(elem a (elem b))`)
	// Deeply nested enclosed expressions with constructors inside.
	wantExpr(t, `<a>{ if (1) then <b/> else <c/> }</a>`, `(elem a {(if 1 (elem b) (elem c))})`)
}

func TestParseConstructorErrors(t *testing.T) {
	bad := []string{
		`<a b="<"/>`,
		`<a b="&bogus;"/>`,
		`<a b="x`,
		`<a b=}/>`,
		`<a><![CDATA[x</a>`,
		`<a><!-- x</a>`,
		`<1bad/>`,
		`<a }b="1"/>`,
		`<a b="}"/>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDotSteps(t *testing.T) {
	wantExpr(t, `a/.`, `(path child::a self::node())`)
	wantExpr(t, `a/.[b]`, `(path child::a self::node()[(path child::b)])`)
	wantExpr(t, `a/..`, `(path child::a parent::node())`)
	wantExpr(t, `//a/..`, `(path abs descendant-or-self::node() child::a parent::node())`)
}

func TestParseErrorType(t *testing.T) {
	_, err := Parse("1 +")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 1 || !strings.Contains(pe.Error(), "syntax error") {
		t.Fatalf("error = %v", pe)
	}
}

func TestParseVersionDecl(t *testing.T) {
	m := parseOK(t, `xquery version "1.0"; 42`)
	if dump(m.Body) != `42` {
		t.Fatalf("body = %s", dump(m.Body))
	}
	if _, err := Parse(`xquery version 1.0; 42`); err == nil {
		t.Fatal("unquoted version must fail")
	}
}

package xqparse

import (
	"fmt"
	"strings"

	"soxq/internal/xqast"
)

// parseDirectConstructor parses a direct element constructor starting at the
// current '<' token. Constructor syntax is XML-like, so it is parsed from
// the raw source; enclosed { expressions } are handed back to the expression
// parser. On return, the token stream resumes after the constructor.
func (p *parser) parseDirectConstructor() (xqast.Expr, error) {
	dp := &directParser{p: p, src: p.lx.Src(), pos: p.tok.Pos}
	elem, err := dp.element()
	if err != nil {
		return nil, err
	}
	p.lx.SetPos(dp.pos)
	p.peeked = nil
	if err := p.next(); err != nil {
		return nil, err
	}
	return elem, nil
}

type directParser struct {
	p   *parser
	src string
	pos int
}

func (d *directParser) errf(format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < d.pos && i < len(d.src); i++ {
		if d.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (d *directParser) eof() bool { return d.pos >= len(d.src) }

func (d *directParser) hasPrefix(s string) bool {
	return strings.HasPrefix(d.src[d.pos:], s)
}

func (d *directParser) skipWS() {
	for !d.eof() {
		switch d.src[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

func isConstructorNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isConstructorNameChar(c byte) bool {
	return isConstructorNameStart(c) || c == '-' || c == '.' || c == ':' || (c >= '0' && c <= '9')
}

func (d *directParser) name() (string, error) {
	start := d.pos
	if d.eof() || !isConstructorNameStart(d.src[d.pos]) {
		return "", d.errf("expected a name in element constructor")
	}
	for !d.eof() && isConstructorNameChar(d.src[d.pos]) {
		d.pos++
	}
	return d.src[start:d.pos], nil
}

// enclosed parses an { expr } whose '{' has already been consumed.
func (d *directParser) enclosed() (xqast.Expr, error) {
	p := d.p
	p.lx.SetPos(d.pos)
	p.peeked = nil
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.isSym("}") {
		return nil, p.errf("expected '}' to close enclosed expression, found %s", p.tok)
	}
	d.pos = p.tok.Pos + 1
	return &xqast.Enclosed{X: e}, nil
}

func (d *directParser) element() (*xqast.DirectElem, error) {
	if !d.hasPrefix("<") {
		return nil, d.errf("expected '<'")
	}
	d.pos++
	name, err := d.name()
	if err != nil {
		return nil, err
	}
	el := &xqast.DirectElem{Name: name}
	// Attributes.
	for {
		d.skipWS()
		if d.eof() {
			return nil, d.errf("unterminated constructor <%s>", name)
		}
		if d.hasPrefix("/>") {
			d.pos += 2
			return el, nil
		}
		if d.hasPrefix(">") {
			d.pos++
			break
		}
		attName, err := d.name()
		if err != nil {
			return nil, err
		}
		d.skipWS()
		if !d.hasPrefix("=") {
			return nil, d.errf("expected '=' after attribute %q", attName)
		}
		d.pos++
		d.skipWS()
		val, err := d.attrValueTemplate()
		if err != nil {
			return nil, err
		}
		el.Attrs = append(el.Attrs, xqast.DirectAttr{Name: attName, Value: val})
	}
	// Content.
	for {
		if d.eof() {
			return nil, d.errf("unterminated content of <%s>", name)
		}
		switch {
		case d.hasPrefix("</"):
			d.pos += 2
			close, err := d.name()
			if err != nil {
				return nil, err
			}
			if close != name {
				return nil, d.errf("constructor end tag </%s> does not match <%s>", close, name)
			}
			d.skipWS()
			if !d.hasPrefix(">") {
				return nil, d.errf("malformed end tag </%s>", close)
			}
			d.pos++
			return el, nil
		case d.hasPrefix("<!--"):
			end := strings.Index(d.src[d.pos+4:], "-->")
			if end < 0 {
				return nil, d.errf("unterminated comment in constructor")
			}
			d.pos += 4 + end + 3
		case d.hasPrefix("<![CDATA["):
			end := strings.Index(d.src[d.pos+9:], "]]>")
			if end < 0 {
				return nil, d.errf("unterminated CDATA in constructor")
			}
			text := d.src[d.pos+9 : d.pos+9+end]
			if text != "" {
				el.Content = append(el.Content, &xqast.StringLit{V: text})
			}
			d.pos += 9 + end + 3
		case d.hasPrefix("<"):
			child, err := d.element()
			if err != nil {
				return nil, err
			}
			el.Content = append(el.Content, child)
		case d.hasPrefix("{{"):
			el.Content = append(el.Content, &xqast.StringLit{V: "{"})
			d.pos += 2
		case d.hasPrefix("}}"):
			el.Content = append(el.Content, &xqast.StringLit{V: "}"})
			d.pos += 2
		case d.hasPrefix("}"):
			return nil, d.errf("unexpected '}' in constructor content (write }} for a literal brace)")
		case d.hasPrefix("{"):
			d.pos++
			e, err := d.enclosed()
			if err != nil {
				return nil, err
			}
			el.Content = append(el.Content, e)
		default:
			text, err := d.textRun("<{}")
			if err != nil {
				return nil, err
			}
			// Boundary whitespace is stripped (XQuery default).
			if strings.TrimLeft(text, " \t\r\n") != "" {
				el.Content = append(el.Content, &xqast.StringLit{V: text})
			}
		}
	}
}

// attrValueTemplate parses a quoted attribute value that may contain
// enclosed expressions.
func (d *directParser) attrValueTemplate() ([]xqast.Expr, error) {
	if d.eof() || (d.src[d.pos] != '"' && d.src[d.pos] != '\'') {
		return nil, d.errf("attribute value must be quoted")
	}
	quote := d.src[d.pos]
	d.pos++
	var parts []xqast.Expr
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parts = append(parts, &xqast.StringLit{V: text.String()})
			text.Reset()
		}
	}
	for {
		if d.eof() {
			return nil, d.errf("unterminated attribute value")
		}
		c := d.src[d.pos]
		switch {
		case c == quote:
			if d.pos+1 < len(d.src) && d.src[d.pos+1] == quote {
				text.WriteByte(quote)
				d.pos += 2
				continue
			}
			d.pos++
			flush()
			return parts, nil
		case c == '{':
			if d.hasPrefix("{{") {
				text.WriteByte('{')
				d.pos += 2
				continue
			}
			d.pos++
			flush()
			e, err := d.enclosed()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		case c == '}':
			if d.hasPrefix("}}") {
				text.WriteByte('}')
				d.pos += 2
				continue
			}
			return nil, d.errf("unexpected '}' in attribute value")
		case c == '&':
			r, n, err := decodeEntity(d.src[d.pos:])
			if err != nil {
				return nil, d.errf("%v", err)
			}
			text.WriteString(r)
			d.pos += n
		case c == '<':
			return nil, d.errf("'<' not allowed in attribute value")
		default:
			text.WriteByte(c)
			d.pos++
		}
	}
}

// textRun consumes character data up to any byte in stop, decoding entities.
func (d *directParser) textRun(stop string) (string, error) {
	var sb strings.Builder
	for !d.eof() {
		c := d.src[d.pos]
		if strings.IndexByte(stop, c) >= 0 {
			break
		}
		if c == '&' {
			r, n, err := decodeEntity(d.src[d.pos:])
			if err != nil {
				return "", d.errf("%v", err)
			}
			sb.WriteString(r)
			d.pos += n
			continue
		}
		sb.WriteByte(c)
		d.pos++
	}
	return sb.String(), nil
}

// decodeEntity decodes a leading &...; reference, returning the replacement
// and consumed byte count.
func decodeEntity(s string) (string, int, error) {
	semi := strings.IndexByte(s, ';')
	if semi < 2 {
		return "", 0, errMalformedEntity
	}
	ent := s[1:semi]
	switch ent {
	case "amp":
		return "&", semi + 1, nil
	case "lt":
		return "<", semi + 1, nil
	case "gt":
		return ">", semi + 1, nil
	case "quot":
		return `"`, semi + 1, nil
	case "apos":
		return "'", semi + 1, nil
	}
	if strings.HasPrefix(ent, "#") {
		digits := ent[1:]
		base := 10
		if strings.HasPrefix(digits, "x") || strings.HasPrefix(digits, "X") {
			digits, base = digits[1:], 16
		}
		var v int64
		if digits == "" {
			return "", 0, errMalformedEntity
		}
		for i := 0; i < len(digits); i++ {
			c := digits[i]
			var dg int64
			switch {
			case c >= '0' && c <= '9':
				dg = int64(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				dg = int64(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				dg = int64(c-'A') + 10
			default:
				return "", 0, errMalformedEntity
			}
			v = v*int64(base) + dg
			if v > 0x10FFFF {
				return "", 0, errMalformedEntity
			}
		}
		if v == 0 {
			return "", 0, errMalformedEntity
		}
		return string(rune(v)), semi + 1, nil
	}
	return "", 0, errMalformedEntity
}

var errMalformedEntity = &Error{Msg: "malformed entity reference in constructor"}

// Package xqparse parses the XQuery subset into internal/xqast trees. It is
// a hand-written recursive-descent parser over internal/xqlex tokens;
// keyword recognition is contextual because XQuery reserves no words. Direct
// element constructors are parsed in a raw-source XML mode that hands
// enclosed { expressions } back to the expression parser.
package xqparse

import (
	"fmt"
	"strconv"

	"soxq/internal/xpath"
	"soxq/internal/xqast"
	"soxq/internal/xqlex"
)

// Error is a syntax error (error code XPST0003) with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xquery:%d:%d: syntax error: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a complete query (prolog + body).
func Parse(src string) (*xqast.Module, error) {
	p := &parser{lx: xqlex.New(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ParseExpr parses a stand-alone expression (no prolog).
func ParseExpr(src string) (xqast.Expr, error) {
	p := &parser{lx: xqlex.New(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != xqlex.EOF {
		return nil, p.errf("unexpected %s after expression", p.tok)
	}
	return e, nil
}

type parser struct {
	lx     *xqlex.Lexer
	tok    xqlex.Token
	peeked *xqlex.Token
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.Line, Col: p.tok.Col, Msg: fmt.Sprintf(format, args...)}
}

// next advances to the next token.
func (p *parser) next() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peek looks one token ahead of the current token.
func (p *parser) peek() (xqlex.Token, error) {
	if p.peeked == nil {
		t, err := p.lx.Next()
		if err != nil {
			return xqlex.Token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) isSym(s string) bool {
	return p.tok.Kind == xqlex.Symbol && p.tok.Text == s
}

func (p *parser) isName(s string) bool {
	return p.tok.Kind == xqlex.Name && p.tok.Text == s
}

func (p *parser) expectSym(s string) error {
	if !p.isSym(s) {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.next()
}

func (p *parser) expectName() (string, error) {
	if p.tok.Kind != xqlex.Name {
		return "", p.errf("expected a name, found %s", p.tok)
	}
	n := p.tok.Text
	return n, p.next()
}

func (p *parser) parseModule() (*xqast.Module, error) {
	m := &xqast.Module{}
	// Optional version declaration: xquery version "1.0";
	if p.isName("xquery") {
		nx, err := p.peek()
		if err != nil {
			return nil, err
		}
		if nx.Kind == xqlex.Name && nx.Text == "version" {
			if err := p.next(); err != nil { // 'xquery'
				return nil, err
			}
			if err := p.next(); err != nil { // 'version'
				return nil, err
			}
			if p.tok.Kind != xqlex.String {
				return nil, p.errf("expected version string")
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectSym(";"); err != nil {
				return nil, err
			}
		}
	}
	for p.isName("declare") {
		nx, err := p.peek()
		if err != nil {
			return nil, err
		}
		if nx.Kind != xqlex.Name {
			break
		}
		switch nx.Text {
		case "option", "namespace", "function", "variable":
		default:
			return nil, p.errf("unsupported declaration 'declare %s'", nx.Text)
		}
		if err := p.next(); err != nil { // 'declare'
			return nil, err
		}
		kind := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		switch kind {
		case "option":
			name, err := p.expectName()
			if err != nil {
				return nil, err
			}
			if p.tok.Kind != xqlex.String {
				return nil, p.errf("expected option value string")
			}
			m.Options = append(m.Options, xqast.OptionDecl{Name: name, Value: p.tok.Text})
			if err := p.next(); err != nil {
				return nil, err
			}
		case "namespace":
			prefix, err := p.expectName()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("="); err != nil {
				return nil, err
			}
			if p.tok.Kind != xqlex.String {
				return nil, p.errf("expected namespace URI string")
			}
			m.Namespaces = append(m.Namespaces, xqast.NamespaceDecl{Prefix: prefix, URI: p.tok.Text})
			if err := p.next(); err != nil {
				return nil, err
			}
		case "function":
			fd, err := p.parseFunctionDecl()
			if err != nil {
				return nil, err
			}
			m.Functions = append(m.Functions, fd)
		case "variable":
			if err := p.expectSym("$"); err != nil {
				return nil, err
			}
			name, err := p.expectName()
			if err != nil {
				return nil, err
			}
			if p.isName("as") {
				if err := p.skipSeqType(); err != nil {
					return nil, err
				}
			}
			if err := p.expectSym(":="); err != nil {
				return nil, err
			}
			val, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			m.Variables = append(m.Variables, &xqast.VarDecl{Name: name, Value: val})
		}
		if err := p.expectSym(";"); err != nil {
			return nil, err
		}
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != xqlex.EOF {
		return nil, p.errf("unexpected %s after query body", p.tok)
	}
	m.Body = body
	return m, nil
}

func (p *parser) parseFunctionDecl() (*xqast.FunctionDecl, error) {
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	fd := &xqast.FunctionDecl{Name: name}
	for !p.isSym(")") {
		if len(fd.Params) > 0 {
			if err := p.expectSym(","); err != nil {
				return nil, err
			}
		}
		if err := p.expectSym("$"); err != nil {
			return nil, err
		}
		pn, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if p.isName("as") {
			if err := p.skipSeqType(); err != nil {
				return nil, err
			}
		}
		fd.Params = append(fd.Params, pn)
	}
	if err := p.next(); err != nil { // ')'
		return nil, err
	}
	if p.isName("as") {
		if err := p.skipSeqType(); err != nil {
			return nil, err
		}
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// skipSeqType consumes an "as SequenceType" annotation; the engine is
// dynamically typed so the annotation is discarded.
func (p *parser) skipSeqType() error {
	if err := p.next(); err != nil { // 'as'
		return err
	}
	if p.tok.Kind != xqlex.Name {
		return p.errf("expected a type name after 'as'")
	}
	if err := p.next(); err != nil {
		return err
	}
	// Optional parenthesised kind-test arguments: item(), node(), ...
	if p.isSym("(") {
		depth := 0
		for {
			if p.isSym("(") {
				depth++
			} else if p.isSym(")") {
				depth--
			} else if p.tok.Kind == xqlex.EOF {
				return p.errf("unterminated type annotation")
			}
			if err := p.next(); err != nil {
				return err
			}
			if depth == 0 {
				break
			}
		}
	}
	// Occurrence indicator.
	for _, occ := range []string{"?", "*", "+"} {
		if p.isSym(occ) {
			return p.next()
		}
	}
	return nil
}

// parseExpr parses a comma-separated sequence expression.
func (p *parser) parseExpr() (xqast.Expr, error) {
	e, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	for p.isSym(",") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		e = &xqast.Binary{Op: ",", L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseExprSingle() (xqast.Expr, error) {
	if p.tok.Kind == xqlex.Name {
		nx, err := p.peek()
		if err != nil {
			return nil, err
		}
		nxSym := func(s string) bool { return nx.Kind == xqlex.Symbol && nx.Text == s }
		switch {
		case (p.isName("for") || p.isName("let")) && nxSym("$"):
			return p.parseFLWOR()
		case (p.isName("some") || p.isName("every")) && nxSym("$"):
			return p.parseQuantified()
		case p.isName("if") && nxSym("("):
			return p.parseIf()
		}
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (xqast.Expr, error) {
	fl := &xqast.FLWOR{}
	for {
		if !(p.tok.Kind == xqlex.Name && (p.tok.Text == "for" || p.tok.Text == "let")) {
			break
		}
		nx, err := p.peek()
		if err != nil {
			return nil, err
		}
		if !(nx.Kind == xqlex.Symbol && nx.Text == "$") {
			break
		}
		isFor := p.tok.Text == "for"
		if err := p.next(); err != nil {
			return nil, err
		}
		for {
			if err := p.expectSym("$"); err != nil {
				return nil, err
			}
			v, err := p.expectName()
			if err != nil {
				return nil, err
			}
			if p.isName("as") {
				if err := p.skipSeqType(); err != nil {
					return nil, err
				}
			}
			if isFor {
				pos := ""
				if p.isName("at") {
					if err := p.next(); err != nil {
						return nil, err
					}
					if err := p.expectSym("$"); err != nil {
						return nil, err
					}
					pos, err = p.expectName()
					if err != nil {
						return nil, err
					}
				}
				if !p.isName("in") {
					return nil, p.errf("expected 'in' in for clause, found %s", p.tok)
				}
				if err := p.next(); err != nil {
					return nil, err
				}
				seq, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				fl.Clauses = append(fl.Clauses, &xqast.ForClause{Var: v, Pos: pos, Seq: seq})
			} else {
				if err := p.expectSym(":="); err != nil {
					return nil, err
				}
				seq, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				fl.Clauses = append(fl.Clauses, &xqast.LetClause{Var: v, Seq: seq})
			}
			if p.isSym(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if len(fl.Clauses) == 0 {
		return nil, p.errf("expected for/let clause")
	}
	if p.isName("where") {
		if err := p.next(); err != nil {
			return nil, err
		}
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		fl.Where = w
	}
	if p.isName("stable") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.isName("order") {
			return nil, p.errf("expected 'order' after 'stable'")
		}
	}
	if p.isName("order") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.isName("by") {
			return nil, p.errf("expected 'by' after 'order'")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := xqast.OrderSpec{Key: key, EmptyLeast: true}
			if p.isName("ascending") {
				if err := p.next(); err != nil {
					return nil, err
				}
			} else if p.isName("descending") {
				spec.Descending = true
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if p.isName("empty") {
				if err := p.next(); err != nil {
					return nil, err
				}
				switch {
				case p.isName("greatest"):
					spec.EmptyLeast = false
				case p.isName("least"):
					spec.EmptyLeast = true
				default:
					return nil, p.errf("expected 'greatest' or 'least'")
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			fl.OrderBy = append(fl.OrderBy, spec)
			if p.isSym(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if !p.isName("return") {
		return nil, p.errf("expected 'return', found %s", p.tok)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	fl.Return = ret
	return fl, nil
}

func (p *parser) parseQuantified() (xqast.Expr, error) {
	every := p.isName("every")
	if err := p.next(); err != nil {
		return nil, err
	}
	type qbind struct {
		v   string
		seq xqast.Expr
	}
	var binds []qbind
	for {
		if err := p.expectSym("$"); err != nil {
			return nil, err
		}
		v, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if p.isName("as") {
			if err := p.skipSeqType(); err != nil {
				return nil, err
			}
		}
		if !p.isName("in") {
			return nil, p.errf("expected 'in' in quantified expression")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		seq, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		binds = append(binds, qbind{v: v, seq: seq})
		if p.isSym(",") {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if !p.isName("satisfies") {
		return nil, p.errf("expected 'satisfies', found %s", p.tok)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	cond, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	// Nest multiple bindings inner-to-outer.
	e := cond
	for i := len(binds) - 1; i >= 0; i-- {
		e = &xqast.Quantified{Every: every, Var: binds[i].v, Seq: binds[i].seq, Satisfies: e}
	}
	return e, nil
}

func (p *parser) parseIf() (xqast.Expr, error) {
	if err := p.next(); err != nil { // 'if'
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if !p.isName("then") {
		return nil, p.errf("expected 'then', found %s", p.tok)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	thenE, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if !p.isName("else") {
		return nil, p.errf("expected 'else', found %s", p.tok)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	elseE, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &xqast.IfExpr{Cond: cond, Then: thenE, Else: elseE}, nil
}

func (p *parser) parseOr() (xqast.Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isName("or") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = &xqast.Binary{Op: "or", L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseAnd() (xqast.Expr, error) {
	e, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isName("and") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		e = &xqast.Binary{Op: "and", L: e, R: r}
	}
	return e, nil
}

var valueComps = map[string]bool{"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true}

func (p *parser) parseComparison() (xqast.Expr, error) {
	e, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	var op string
	switch {
	case p.tok.Kind == xqlex.Symbol:
		switch p.tok.Text {
		case "=", "!=", "<", "<=", ">", ">=", "<<", ">>":
			op = p.tok.Text
		}
	case p.tok.Kind == xqlex.Name:
		if valueComps[p.tok.Text] || p.tok.Text == "is" {
			op = p.tok.Text
		}
	}
	if op == "" {
		return e, nil
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	r, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	return &xqast.Binary{Op: op, L: e, R: r}, nil
}

func (p *parser) parseRange() (xqast.Expr, error) {
	e, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.isName("to") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &xqast.Binary{Op: "to", L: e, R: r}, nil
	}
	return e, nil
}

func (p *parser) parseAdditive() (xqast.Expr, error) {
	e, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isSym("+") || p.isSym("-") {
		op := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		e = &xqast.Binary{Op: op, L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseMultiplicative() (xqast.Expr, error) {
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		if p.isSym("*") {
			op = "*"
		} else if p.isName("div") || p.isName("idiv") || p.isName("mod") {
			op = p.tok.Text
		} else {
			return e, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		e = &xqast.Binary{Op: op, L: e, R: r}
	}
}

func (p *parser) parseUnion() (xqast.Expr, error) {
	e, err := p.parseIntersectExcept()
	if err != nil {
		return nil, err
	}
	for p.isSym("|") || p.isName("union") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseIntersectExcept()
		if err != nil {
			return nil, err
		}
		e = &xqast.Binary{Op: "union", L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseIntersectExcept() (xqast.Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isName("intersect") || p.isName("except") {
		op := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = &xqast.Binary{Op: op, L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseUnary() (xqast.Expr, error) {
	neg := false
	any := false
	for p.isSym("-") || p.isSym("+") {
		if p.isSym("-") {
			neg = !neg
		}
		any = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	e, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if any {
		return &xqast.Unary{Neg: neg, X: e}, nil
	}
	return e, nil
}

// parsePath parses absolute and relative path expressions.
func (p *parser) parsePath() (xqast.Expr, error) {
	path := &xqast.Path{}
	switch {
	case p.isSym("/"):
		path.Absolute = true
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.startsStep() {
			// A lone "/" selects the root.
			return path, nil
		}
		if err := p.appendStep(path); err != nil {
			return nil, err
		}
	case p.isSym("//"):
		path.Absolute = true
		if err := p.next(); err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, &xqast.Step{
			Axis: xpath.AxisDescendantOrSelf, Test: xpath.Test{Kind: xpath.TestAnyNode},
		})
		if !p.startsStep() {
			return nil, p.errf("expected a step after '//'")
		}
		if err := p.appendStep(path); err != nil {
			return nil, err
		}
	default:
		// Relative path: first step may be a primary expression.
		first, firstStep, err := p.parseStepOrPrimary()
		if err != nil {
			return nil, err
		}
		if firstStep == nil {
			if !p.isSym("/") && !p.isSym("//") {
				return first, nil // plain primary expression, no path
			}
			path.Start = first
		} else {
			path.Steps = append(path.Steps, firstStep)
		}
	}
	for {
		switch {
		case p.isSym("//"):
			if err := p.next(); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, &xqast.Step{
				Axis: xpath.AxisDescendantOrSelf, Test: xpath.Test{Kind: xpath.TestAnyNode},
			})
		case p.isSym("/"):
			if err := p.next(); err != nil {
				return nil, err
			}
		default:
			if len(path.Steps) == 0 && path.Start != nil {
				return path.Start, nil
			}
			return path, nil
		}
		st, step, err := p.parseStepOrPrimary()
		if err != nil {
			return nil, err
		}
		if step != nil {
			path.Steps = append(path.Steps, step)
			continue
		}
		// "." in step position (the Figure 2 idiom "(...)/." for doc-order
		// dedup) is self::node(); likewise ".[pred]".
		if sstep, ok := contextItemAsStep(st); ok {
			path.Steps = append(path.Steps, sstep)
			continue
		}
		return nil, p.errf("expression steps other than axis steps are not supported after '/'")
	}
}

// appendStep parses one axis step (or a "."-style step) and appends it.
func (p *parser) appendStep(path *xqast.Path) error {
	st, step, err := p.parseStepOrPrimary()
	if err != nil {
		return err
	}
	if step != nil {
		path.Steps = append(path.Steps, step)
		return nil
	}
	if sstep, ok := contextItemAsStep(st); ok {
		path.Steps = append(path.Steps, sstep)
		return nil
	}
	return p.errf("expected an axis step")
}

// contextItemAsStep converts "." (optionally with predicates) into a
// self::node() step.
func contextItemAsStep(e xqast.Expr) (*xqast.Step, bool) {
	switch v := e.(type) {
	case *xqast.ContextItem:
		return &xqast.Step{Axis: xpath.AxisSelf, Test: xpath.Test{Kind: xpath.TestAnyNode}}, true
	case *xqast.Filter:
		if _, ok := v.Base.(*xqast.ContextItem); ok {
			return &xqast.Step{Axis: xpath.AxisSelf, Test: xpath.Test{Kind: xpath.TestAnyNode},
				Predicates: v.Predicates}, true
		}
	}
	return nil, false
}

// startsStep reports whether the current token can begin an axis step.
func (p *parser) startsStep() bool {
	switch p.tok.Kind {
	case xqlex.Name:
		return true
	case xqlex.Symbol:
		switch p.tok.Text {
		case "@", "..", "*", ".":
			return true
		}
	}
	return false
}

// parseStepOrPrimary parses either an axis step (step != nil) or a
// primary/filter expression (expr != nil).
func (p *parser) parseStepOrPrimary() (xqast.Expr, *xqast.Step, error) {
	// Context item "." — a primary expression; "." followed by predicates
	// is a filter.
	if p.isSym(".") {
		if err := p.next(); err != nil {
			return nil, nil, err
		}
		e, err := p.parsePredicatesInto(&xqast.ContextItem{})
		return e, nil, err
	}
	if p.isSym("..") {
		if err := p.next(); err != nil {
			return nil, nil, err
		}
		st := &xqast.Step{Axis: xpath.AxisParent, Test: xpath.Test{Kind: xpath.TestAnyNode}}
		if err := p.parseStepPredicates(st); err != nil {
			return nil, nil, err
		}
		return nil, st, nil
	}
	if p.isSym("@") {
		if err := p.next(); err != nil {
			return nil, nil, err
		}
		test, err := p.parseAttributeNameTest()
		if err != nil {
			return nil, nil, err
		}
		st := &xqast.Step{Axis: xpath.AxisAttribute, Test: test}
		if err := p.parseStepPredicates(st); err != nil {
			return nil, nil, err
		}
		return nil, st, nil
	}
	if p.isSym("*") {
		if err := p.next(); err != nil {
			return nil, nil, err
		}
		st := &xqast.Step{Axis: xpath.AxisChild, Test: xpath.AnyElement}
		if err := p.parseStepPredicates(st); err != nil {
			return nil, nil, err
		}
		return nil, st, nil
	}
	if p.tok.Kind != xqlex.Name {
		e, err := p.parseFilterExpr()
		return e, nil, err
	}

	// A name: disambiguate axis step, kind test, function call, computed
	// constructor, or plain name test.
	name := p.tok.Text
	nx, err := p.peek()
	if err != nil {
		return nil, nil, err
	}
	nxSym := func(s string) bool { return nx.Kind == xqlex.Symbol && nx.Text == s }

	if nxSym("::") {
		axis, ok := xpath.ParseAxis(name)
		if !ok {
			return nil, nil, p.errf("unknown axis %q", name)
		}
		if err := p.next(); err != nil { // axis name
			return nil, nil, err
		}
		if err := p.next(); err != nil { // '::'
			return nil, nil, err
		}
		var test xpath.Test
		if axis == xpath.AxisAttribute {
			test, err = p.parseAttributeNameTest()
		} else {
			test, err = p.parseNodeTest()
		}
		if err != nil {
			return nil, nil, err
		}
		st := &xqast.Step{Axis: axis, Test: test}
		if err := p.parseStepPredicates(st); err != nil {
			return nil, nil, err
		}
		return nil, st, nil
	}

	if nxSym("(") {
		switch name {
		case "node", "text", "comment", "processing-instruction", "element", "attribute", "document-node":
			test, err := p.parseNodeTest()
			if err != nil {
				return nil, nil, err
			}
			axis := xpath.AxisChild
			if test.Kind == xpath.TestAttribute {
				axis = xpath.AxisAttribute
			}
			st := &xqast.Step{Axis: axis, Test: test}
			if err := p.parseStepPredicates(st); err != nil {
				return nil, nil, err
			}
			return nil, st, nil
		}
		e, err := p.parseFilterExpr()
		return e, nil, err
	}

	// Computed constructors: element/attribute/text followed by a name or '{'.
	if (name == "element" || name == "attribute") && (nx.Kind == xqlex.Name || nxSym("{")) {
		e, err := p.parseComputedConstructor(name)
		return e, nil, err
	}
	if name == "text" && nxSym("{") {
		if err := p.next(); err != nil {
			return nil, nil, err
		}
		if err := p.expectSym("{"); err != nil {
			return nil, nil, err
		}
		content, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expectSym("}"); err != nil {
			return nil, nil, err
		}
		ct := &xqast.ComputedText{Content: content}
		e, err := p.parsePredicatesInto(ct)
		return e, nil, err
	}

	// Plain name test on the child axis.
	if err := p.next(); err != nil {
		return nil, nil, err
	}
	st := &xqast.Step{Axis: xpath.AxisChild, Test: xpath.NameTest(name)}
	if err := p.parseStepPredicates(st); err != nil {
		return nil, nil, err
	}
	return nil, st, nil
}

func (p *parser) parseComputedConstructor(kind string) (xqast.Expr, error) {
	if err := p.next(); err != nil { // 'element' / 'attribute'
		return nil, err
	}
	var name string
	var nameExpr xqast.Expr
	if p.tok.Kind == xqlex.Name {
		name = p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
	} else {
		if err := p.expectSym("{"); err != nil {
			return nil, err
		}
		ne, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("}"); err != nil {
			return nil, err
		}
		nameExpr = ne
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	var content xqast.Expr = &xqast.EmptySeq{}
	if !p.isSym("}") {
		var err error
		content, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	if kind == "element" {
		return &xqast.ComputedElem{Name: name, NameExpr: nameExpr, Content: content}, nil
	}
	return &xqast.ComputedAttr{Name: name, NameExpr: nameExpr, Content: content}, nil
}

// parseNodeTest parses a node test in a non-attribute axis position.
func (p *parser) parseNodeTest() (xpath.Test, error) {
	if p.isSym("*") {
		if err := p.next(); err != nil {
			return xpath.Test{}, err
		}
		return xpath.AnyElement, nil
	}
	if p.tok.Kind != xqlex.Name {
		return xpath.Test{}, p.errf("expected a node test, found %s", p.tok)
	}
	name := p.tok.Text
	nx, err := p.peek()
	if err != nil {
		return xpath.Test{}, err
	}
	if nx.Kind == xqlex.Symbol && nx.Text == "(" {
		if err := p.next(); err != nil { // test name
			return xpath.Test{}, err
		}
		if err := p.next(); err != nil { // '('
			return xpath.Test{}, err
		}
		var arg string
		if p.tok.Kind == xqlex.Name || p.tok.Kind == xqlex.String {
			arg = p.tok.Text
			if err := p.next(); err != nil {
				return xpath.Test{}, err
			}
		} else if p.isSym("*") {
			if err := p.next(); err != nil {
				return xpath.Test{}, err
			}
		}
		if err := p.expectSym(")"); err != nil {
			return xpath.Test{}, err
		}
		switch name {
		case "node":
			return xpath.Test{Kind: xpath.TestAnyNode}, nil
		case "text":
			return xpath.Test{Kind: xpath.TestText}, nil
		case "comment":
			return xpath.Test{Kind: xpath.TestComment}, nil
		case "processing-instruction":
			return xpath.Test{Kind: xpath.TestPI, Name: arg}, nil
		case "element":
			return xpath.Test{Kind: xpath.TestElement, Name: arg}, nil
		case "attribute":
			return xpath.Test{Kind: xpath.TestAttribute, Name: arg}, nil
		case "document-node":
			return xpath.Test{Kind: xpath.TestDocument}, nil
		default:
			return xpath.Test{}, p.errf("unknown kind test %q", name)
		}
	}
	if err := p.next(); err != nil {
		return xpath.Test{}, err
	}
	return xpath.NameTest(name), nil
}

// parseAttributeNameTest parses the test after '@' or attribute::.
func (p *parser) parseAttributeNameTest() (xpath.Test, error) {
	if p.isSym("*") {
		if err := p.next(); err != nil {
			return xpath.Test{}, err
		}
		return xpath.Test{Kind: xpath.TestAttribute}, nil
	}
	if p.tok.Kind != xqlex.Name {
		return xpath.Test{}, p.errf("expected an attribute name, found %s", p.tok)
	}
	name := p.tok.Text
	if err := p.next(); err != nil {
		return xpath.Test{}, err
	}
	return xpath.Test{Kind: xpath.TestAttribute, Name: name}, nil
}

func (p *parser) parseStepPredicates(st *xqast.Step) error {
	for p.isSym("[") {
		if err := p.next(); err != nil {
			return err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return err
		}
		if err := p.expectSym("]"); err != nil {
			return err
		}
		st.Predicates = append(st.Predicates, pred)
	}
	return nil
}

// parsePredicatesInto wraps base in a Filter if predicates follow.
func (p *parser) parsePredicatesInto(base xqast.Expr) (xqast.Expr, error) {
	var preds []xqast.Expr
	for p.isSym("[") {
		if err := p.next(); err != nil {
			return nil, err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("]"); err != nil {
			return nil, err
		}
		preds = append(preds, pred)
	}
	if preds == nil {
		return base, nil
	}
	return &xqast.Filter{Base: base, Predicates: preds}, nil
}

// parseFilterExpr parses a primary expression plus trailing predicates.
func (p *parser) parseFilterExpr() (xqast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePredicatesInto(e)
}

func (p *parser) parsePrimary() (xqast.Expr, error) {
	switch {
	case p.tok.Kind == xqlex.String:
		v := p.tok.Text
		return &xqast.StringLit{V: v}, p.next()
	case p.tok.Kind == xqlex.Integer:
		v, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", p.tok.Text)
		}
		return &xqast.IntLit{V: v}, p.next()
	case p.tok.Kind == xqlex.Decimal:
		v, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errf("bad numeric literal %q", p.tok.Text)
		}
		return &xqast.FloatLit{V: v}, p.next()
	case p.isSym("$"):
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		return &xqast.VarRef{Name: name}, nil
	case p.isSym("("):
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isSym(")") {
			return &xqast.EmptySeq{}, p.next()
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectSym(")")
	case p.isSym("<"):
		return p.parseDirectConstructor()
	case p.tok.Kind == xqlex.Name:
		// Function call (the only name form that reaches parsePrimary).
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		call := &xqast.FuncCall{Name: name}
		for !p.isSym(")") {
			if len(call.Args) > 0 {
				if err := p.expectSym(","); err != nil {
					return nil, err
				}
			}
			arg, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
		}
		return call, p.next()
	default:
		return nil, p.errf("unexpected %s", p.tok)
	}
}

package xqeval

import (
	"strconv"
	"strings"
	"testing"

	"soxq/internal/core"
)

// figure2UDF is the paper's Figure 2: the StandOff join as a library
// function WITHOUT a candidate sequence — matches are searched in
// root($q)//* — adjusted only in that the root comparison is implicit (the
// function only sees nodes of $q's tree) and node identity uses "is".
const figure2UDF = `
declare function local:select-narrow($input) {
  (for $q in $input
   for $p in root($q)//*
   where $p/@start >= $q/@start
     and $p/@end <= $q/@end
   return $p)/.
};
`

// TestFigure2UDFMatchesAxis: Alternative 1 (Figure 2) must agree with the
// built-in axis step followed by the same name test, on integer positions.
func TestFigure2UDFMatchesAxis(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<doc>
	  <music artist="U2" start="0" end="31"/>
	  <music artist="Bach" start="52" end="94"/>
	  <shot id="Intro" start="0" end="8"/>
	  <shot id="Interview" start="8" end="64"/>
	  <shot id="Outro" start="64" end="94"/>
	</doc>`)
	// The paper's example use: select-narrow(//music)/self::shot.
	udf := figure2UDF + `
	  for $s in local:select-narrow(doc("d.xml")//music[@artist = "U2"])/self::shot
	  return string($s/@id)`
	axis := `for $s in doc("d.xml")//music[@artist = "U2"]/select-narrow::shot
	         return string($s/@id)`
	udfItems, err := h.run(t, udf, core.StrategyLoopLifted)
	if err != nil {
		t.Fatalf("Figure 2 UDF: %v", err)
	}
	axisItems, err := h.run(t, axis, core.StrategyLoopLifted)
	if err != nil {
		t.Fatalf("axis: %v", err)
	}
	if serialize(udfItems) != serialize(axisItems) {
		t.Fatalf("Figure 2 UDF %q != axis %q", serialize(udfItems), serialize(axisItems))
	}
	if serialize(axisItems) != "Intro" {
		t.Fatalf("expected Intro, got %q", serialize(axisItems))
	}
	// The built-in one-argument function form (Alternative 3 without
	// candidates) agrees as well.
	builtin := `for $s in so:select-narrow(doc("d.xml")//music[@artist = "U2"])/self::shot
	            return string($s/@id)`
	bItems, err := h.run(t, builtin, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(bItems) != "Intro" {
		t.Fatalf("so:select-narrow one-arg = %q", serialize(bItems))
	}
}

// TestUDFQuadraticShape documents why Figure 2 style functions are the slow
// baseline: the loop-lifted cross product materialises |input| x |doc|
// iterations. This is a correctness check that large-ish inputs still work.
func TestUDFQuadraticShape(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < 120; i++ {
		sb.WriteString(`<a start="` + strconv.Itoa(i*10) + `" end="` + strconv.Itoa(i*10+9) + `"/>`)
	}
	sb.WriteString("</doc>")
	h := newHarness()
	h.addDoc(t, "d.xml", sb.String())
	q := figure2UDF + `count(local:select-narrow(doc("d.xml")//a))`
	items, err := h.run(t, q, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	// Every a contains exactly itself.
	if serialize(items) != "120" {
		t.Fatalf("self-containment count = %q, want 120", serialize(items))
	}
}

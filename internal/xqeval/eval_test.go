package xqeval

import (
	"fmt"
	"strings"
	"testing"

	"soxq/internal/blob"
	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xmlparse"
	"soxq/internal/xqparse"
	"soxq/internal/xqplan"
)

// harness wires an Evaluator over an in-memory document map, the way the
// public engine does.
type harness struct {
	docs    map[string]*tree.Doc
	indexes map[*tree.Doc]*core.RegionIndex
	blobs   map[*tree.Doc]blob.Store
	opts    core.Options
}

func newHarness() *harness {
	return &harness{
		docs:    map[string]*tree.Doc{},
		indexes: map[*tree.Doc]*core.RegionIndex{},
		blobs:   map[*tree.Doc]blob.Store{},
		opts:    core.DefaultOptions(),
	}
}

func (h *harness) addDoc(t *testing.T, name, src string) *tree.Doc {
	t.Helper()
	d, err := xmlparse.Parse(name, []byte(src))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	h.docs[name] = d
	return d
}

func (h *harness) run(t *testing.T, query string, strat core.Strategy) ([]Item, error) {
	t.Helper()
	plan, err := h.compile(query)
	if err != nil {
		return nil, err
	}
	return h.newEvaluator(plan, strat).Run()
}

// compile parses and compiles a query against the harness options, the way
// the public engine's Prepare does.
func (h *harness) compile(query string) (*xqplan.Plan, error) {
	m, err := xqparse.Parse(query)
	if err != nil {
		return nil, err
	}
	return xqplan.Compile(m, h.opts)
}

// newEvaluator builds a per-run Evaluator over the harness state.
func (h *harness) newEvaluator(plan *xqplan.Plan, strat core.Strategy) *Evaluator {
	opts := plan.Options()
	return &Evaluator{
		Plan: plan,
		Resolver: func(uri string) (*tree.Doc, error) {
			d, ok := h.docs[uri]
			if !ok {
				return nil, fmt.Errorf("no document %q", uri)
			}
			return d, nil
		},
		IndexFor: func(d *tree.Doc) (*core.RegionIndex, error) {
			if ix, ok := h.indexes[d]; ok {
				return ix, nil
			}
			ix, err := core.BuildIndex(d, opts)
			if err != nil {
				return nil, err
			}
			h.indexes[d] = ix
			return ix, nil
		},
		BlobFor:  func(d *tree.Doc) blob.Store { return h.blobs[d] },
		Strategy: strat,
		Pushdown: true,
	}
}

// serialize renders a result sequence the way a query tool would.
func serialize(items []Item) string {
	var sb strings.Builder
	for i, it := range items {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch it.Kind {
		case KNode:
			sb.WriteString(it.D.XMLString(it.Pre))
		case KAttr:
			fmt.Fprintf(&sb, `%s="%s"`, it.D.AttrName(it.Att), it.D.AttrValue(it.Att))
		default:
			sb.WriteString(it.StringValue())
		}
	}
	return sb.String()
}

func evalStr(t *testing.T, h *harness, query string) string {
	t.Helper()
	items, err := h.run(t, query, core.StrategyLoopLifted)
	if err != nil {
		t.Fatalf("eval %q: %v", query, err)
	}
	return serialize(items)
}

func wantEval(t *testing.T, h *harness, query, want string) {
	t.Helper()
	if got := evalStr(t, h, query); got != want {
		t.Errorf("eval %q:\n got  %s\nwant %s", query, got, want)
	}
}

func TestEvalBasics(t *testing.T) {
	h := newHarness()
	cases := [][2]string{
		{`1 + 2`, `3`},
		{`2 * 3 + 4`, `10`},
		{`7 div 2`, `3.5`},
		{`7 idiv 2`, `3`},
		{`7 mod 3`, `1`},
		{`-(3)`, `-3`},
		{`- 3 + 10`, `7`},
		{`1.5 + 1.5`, `3`},
		{`"a" = "a"`, `true`},
		{`"a" = "b"`, `false`},
		{`1 < 2`, `true`},
		{`2 le 2`, `true`},
		{`"b" gt "a"`, `true`},
		{`(1, 2, 3)`, `1 2 3`},
		{`()`, ``},
		{`(1, 2) = (2, 3)`, `true`},
		{`(1, 2) = (3, 4)`, `false`},
		{`1 to 4`, `1 2 3 4`},
		{`4 to 1`, ``},
		{`true() and false()`, `false`},
		{`true() or false()`, `true`},
		{`not(0)`, `true`},
		{`boolean("x")`, `true`},
		{`if (1 < 2) then "yes" else "no"`, `yes`},
		{`if (()) then "yes" else "no"`, `no`},
		{`concat("a", "b", 3)`, `ab3`},
		{`string(42)`, `42`},
		{`string(1.5)`, `1.5`},
		{`number("12")+1`, `13`},
		{`count((1, 2, 3))`, `3`},
		{`count(())`, `0`},
		{`empty(())`, `true`},
		{`exists((1))`, `true`},
		{`sum((1, 2, 3))`, `6`},
		{`sum(())`, `0`},
		{`avg((2, 4))`, `3`},
		{`min((3, 1, 2))`, `1`},
		{`max((3.5, 1, 2))`, `3.5`},
		{`abs(-4)`, `4`},
		{`floor(1.7)`, `1`},
		{`ceiling(1.2)`, `2`},
		{`round(2.5)`, `3`},
		{`contains("hello", "ell")`, `true`},
		{`starts-with("hello", "he")`, `true`},
		{`ends-with("hello", "lo")`, `true`},
		{`substring("hello", 2)`, `ello`},
		{`substring("hello", 2, 3)`, `ell`},
		{`string-length("héllo")`, `5`},
		{`normalize-space("  a   b ")`, `a b`},
		{`upper-case("abç")`, `ABÇ`},
		{`lower-case("ABÇ")`, `abç`},
		{`translate("abcabc", "abc", "AB")`, `ABAB`},
		{`string-join(("a", "b", "c"), "-")`, `a-b-c`},
		{`distinct-values((1, 2, 1, "x", "x"))`, `1 2 x`},
		{`reverse((1, 2, 3))`, `3 2 1`},
		{`subsequence((1, 2, 3, 4), 2, 2)`, `2 3`},
		{`insert-before((1, 3), 2, 2)`, `1 2 3`},
		{`remove((1, 2, 3), 2)`, `1 3`},
		{`zero-or-one(())`, ``},
		{`exactly-one(5)`, `5`},
		{`some $x in (1, 2, 3) satisfies $x > 2`, `true`},
		{`every $x in (1, 2, 3) satisfies $x > 0`, `true`},
		{`every $x in (1, 2, 3) satisfies $x > 1`, `false`},
		{`some $x in () satisfies $x`, `false`},
		{`every $x in () satisfies $x`, `true`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

func TestEvalFLWOR(t *testing.T) {
	h := newHarness()
	cases := [][2]string{
		{`for $x in (1, 2, 3) return $x * 2`, `2 4 6`},
		{`for $x in (1, 2), $y in (10, 20) return $x + $y`, `11 21 12 22`},
		{`for $x at $i in ("a", "b", "c") return $i`, `1 2 3`},
		{`let $x := (1, 2) return count($x)`, `2`},
		{`for $x in (1, 2, 3, 4) where $x mod 2 = 0 return $x`, `2 4`},
		{`for $x in (3, 1, 2) order by $x return $x`, `1 2 3`},
		{`for $x in (3, 1, 2) order by $x descending return $x`, `3 2 1`},
		{`for $x in ("b", "a") order by $x return $x`, `a b`},
		{`for $x in (1, 2) return for $y in (1, 2) return $x * 10 + $y`, `11 12 21 22`},
		{`let $x := 5 let $y := $x + 1 return $y`, `6`},
		{`for $p in (1, 2, 3) let $sq := $p * $p where $sq > 2 order by $sq descending return $sq`, `9 4`},
		{`for $x in () return $x`, ``},
		// Loop-lifted nesting from section 4.1 of the paper.
		{`for $x in ("twenty", "thirty") for $y in ("one", "two") let $z := ($x, $y) return concat($z[1], "-", $z[2])`,
			`twenty-one twenty-two thirty-one thirty-two`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

func TestEvalPaths(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "s.xml", `<site><people><person id="p0"><name>Ann</name></person><person id="p1"><name>Bob</name></person></people><regions><item/><item/><sub><item/></sub></regions></site>`)
	cases := [][2]string{
		{`doc("s.xml")/site/people/person[@id = "p0"]/name`, `<name>Ann</name>`},
		{`doc("s.xml")/site/people/person/name/text()`, `Ann Bob`},
		{`count(doc("s.xml")//item)`, `3`},
		{`count(doc("s.xml")/site//item)`, `3`},
		{`doc("s.xml")//person[1]/@id`, `id="p0"`},
		{`doc("s.xml")//person[2]/@id`, `id="p1"`},
		{`doc("s.xml")//person[last()]/@id`, `id="p1"`},
		{`doc("s.xml")//person[position() = 2]/@id`, `id="p1"`},
		{`count(doc("s.xml")/site/*)`, `2`},
		{`doc("s.xml")//name/../@id`, `id="p0" id="p1"`},
		{`doc("s.xml")//name[. = "Bob"]/parent::person/@id`, `id="p1"`},
		{`name(doc("s.xml")/site/regions/sub/item/ancestor::*[1])`, `sub`},
		{`string(doc("s.xml")/site/people/person[2])`, `Bob`},
		{`count(doc("s.xml")/site/people/person[name])`, `2`},
		{`count(doc("s.xml")/site/people/person[name = "Zed"])`, `0`},
		{`doc("s.xml")//person/@id`, `id="p0" id="p1"`},
		{`count(doc("s.xml")//@id)`, `2`},
		// Document order + dedup across context nodes.
		{`count((doc("s.xml")//item, doc("s.xml")//item))`, `6`},
		{`count((doc("s.xml")//item | doc("s.xml")//item))`, `3`},
		{`count((doc("s.xml")//* ) intersect (doc("s.xml")//item))`, `3`},
		{`count((doc("s.xml")//*) except (doc("s.xml")//item))`, `8`},
		{`doc("s.xml")//person[name = "Ann"] is doc("s.xml")//person[1]`, `true`},
		{`doc("s.xml")//person[1] << doc("s.xml")//person[2]`, `true`},
		{`(doc("s.xml")//name)[2]`, `<name>Bob</name>`},
		{`doc("s.xml")/site/people/person/self::person[1]/@id`, `id="p0" id="p1"`},
		{`count(doc("s.xml")/site/descendant-or-self::node())`, `13`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

func TestEvalConstructors(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "s.xml", `<a><b>1</b><b>2</b></a>`)
	cases := [][2]string{
		{`<out/>`, `<out/>`},
		{`<out a="1" b="x{1+1}y"/>`, `<out a="1" b="x2y"/>`},
		{`<out>{1 + 1}</out>`, `<out>2</out>`},
		{`<out>{(1, 2, 3)}</out>`, `<out>1 2 3</out>`},
		{`<out>lit{"eral"}</out>`, `<out>literal</out>`},
		{`<out>{doc("s.xml")/a/b}</out>`, `<out><b>1</b><b>2</b></out>`},
		{`<o><i>{1}</i><i>x</i></o>`, `<o><i>1</i><i>x</i></o>`},
		{`element foo { "bar" }`, `<foo>bar</foo>`},
		{`element { concat("a", "b") } { 1 }`, `<ab>1</ab>`},
		{`<out>{attribute id { "x" }}</out>`, `<out id="x"/>`},
		{`<out>{text { "plain" }}</out>`, `<out>plain</out>`},
		{`for $b in doc("s.xml")/a/b return <v n="{$b}"/>`, `<v n="1"/> <v n="2"/>`},
		{`string(<x>{"a"}{"b"}</x>)`, `a b`},
		{`count(<x/>/self::x)`, `1`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
	// Constructed nodes are copies: modifying result does not affect source.
	items, err := h.run(t, `<out>{doc("s.xml")/a/b[1]}</out>`, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].D == h.docs["s.xml"] {
		t.Fatal("constructor must copy nodes into a fresh fragment")
	}
	// Attribute-after-content is an error.
	if _, err := h.run(t, `<out>x{attribute a {"1"}}</out>`, core.StrategyLoopLifted); err == nil {
		t.Fatal("attribute after content must fail")
	}
}

func TestEvalUDFs(t *testing.T) {
	h := newHarness()
	wantEval(t, h, `declare function local:twice($x) { $x * 2 }; local:twice(21)`, `42`)
	wantEval(t, h, `declare function local:fact($n) { if ($n <= 1) then 1 else $n * local:fact($n - 1) }; local:fact(10)`, `3628800`)
	wantEval(t, h, `declare function local:fib($n) { if ($n < 2) then $n else local:fib($n - 1) + local:fib($n - 2) }; local:fib(12)`, `144`)
	// Loop-lifted UDF: called once for a whole iteration space.
	wantEval(t, h, `declare function local:sq($x) { $x * $x }; for $i in (1, 2, 3, 4) return local:sq($i)`, `1 4 9 16`)
	// Declared variables.
	wantEval(t, h, `declare variable $base := 10; for $i in (1, 2) return $base + $i`, `11 12`)
	// Unbounded recursion is caught.
	if _, err := h.run(t, `declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)`, core.StrategyLoopLifted); err == nil {
		t.Fatal("infinite recursion must be caught")
	}
}

func TestEvalErrors(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "s.xml", `<a/>`)
	bad := []string{
		`$nosuch`,
		`nosuchfunc()`,
		`count()`,
		`1 div 0`,
		`1 idiv 0`,
		`1 mod 0`,
		`"a" + 1`,
		`doc("missing.xml")`,
		`(1, 2) + 1`,
		`position()`,
		`child::a`, // no context item
		`error("boom")`,
		`exactly-one(())`,
		`one-or-more(())`,
		`zero-or-one((1, 2))`,
		`doc("s.xml")/a is 3`,
	}
	for _, q := range bad {
		if _, err := h.run(t, q, core.StrategyLoopLifted); err == nil {
			t.Errorf("eval %q should fail", q)
		}
	}
}

func TestEvalFilterExprs(t *testing.T) {
	h := newHarness()
	cases := [][2]string{
		{`(1, 2, 3)[2]`, `2`},
		{`(1, 2, 3)[. > 1]`, `2 3`},
		{`(1, 2, 3)[position() < 3]`, `1 2`},
		{`("a", "b")[.= "b"]`, `b`},
		{`(1 to 10)[. mod 3 = 0]`, `3 6 9`},
		{`for $x in (1, 2, 3)[. != 2] return $x`, `1 3`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

package xqeval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// seqSpec describes a random loop-lifted sequence.
type seqSpec struct {
	Sizes []uint8
}

// Generate implements quick.Generator.
func (seqSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(12)
	s := seqSpec{Sizes: make([]uint8, n)}
	for i := range s.Sizes {
		s.Sizes[i] = uint8(r.Intn(5))
	}
	return reflect.ValueOf(s)
}

func (s seqSpec) seq() LLSeq {
	b := newLLBuilder(len(s.Sizes))
	v := int64(0)
	for _, n := range s.Sizes {
		items := make([]Item, n)
		for i := range items {
			items[i] = Int(v)
			v++
		}
		b.add(items...)
	}
	return b.done()
}

// TestQuickLLSeqInvariants: offsets are monotone, groups partition the
// items, and Total matches.
func TestQuickLLSeqInvariants(t *testing.T) {
	f := func(spec seqSpec) bool {
		s := spec.seq()
		if s.N() != len(spec.Sizes) {
			return false
		}
		total := 0
		for i := 0; i < s.N(); i++ {
			if s.Off[i] > s.Off[i+1] {
				return false
			}
			g := s.Group(i)
			if len(g) != int(spec.Sizes[i]) {
				return false
			}
			total += len(g)
		}
		return total == s.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBindingLift: lifting a binding through an arbitrary iteration
// mapping reads exactly the mapped groups, and composes (lift then lift =
// lift of the composition); materialize agrees with group-by-group reads.
func TestQuickBindingLift(t *testing.T) {
	f := func(spec seqSpec, mapBytes []uint8, mapBytes2 []uint8) bool {
		base := newBinding(spec.seq())
		n := base.n()
		toMap := func(bs []uint8) []int32 {
			m := make([]int32, len(bs))
			for i, b := range bs {
				m[i] = int32(int(b) % n)
			}
			return m
		}
		m1 := toMap(mapBytes)
		lifted := base.lift(m1)
		if lifted.n() != len(m1) {
			return false
		}
		for j, o := range m1 {
			a := lifted.group(j)
			b := base.group(int(o))
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if a[k].I != b[k].I {
					return false
				}
			}
		}
		// Composition.
		if len(m1) > 0 {
			m2 := make([]int32, len(mapBytes2))
			for i, b := range mapBytes2 {
				m2[i] = int32(int(b) % len(m1))
			}
			twice := lifted.lift(m2)
			direct := base.lift(composeMap(m1, m2))
			if twice.n() != direct.n() {
				return false
			}
			for j := 0; j < twice.n(); j++ {
				a, b := twice.group(j), direct.group(j)
				if len(a) != len(b) {
					return false
				}
				for k := range a {
					if a[k].I != b[k].I {
						return false
					}
				}
			}
		}
		// materialize flattens to the same content.
		mat := lifted.materialize()
		for j := 0; j < lifted.n(); j++ {
			a, b := mat.Group(j), lifted.group(j)
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if a[k].I != b[k].I {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExpandForRoundTrip: expanding a sequence into a for-loop space
// and regrouping by the outer map reconstructs the original sequence.
func TestQuickExpandForRoundTrip(t *testing.T) {
	f := func(spec seqSpec) bool {
		seq := spec.seq()
		inner, outerOf, varB := expandFor(seq)
		if inner != seq.Total() || len(outerOf) != inner || varB.n() != inner {
			return false
		}
		// Each inner iteration binds exactly one item, in order.
		b := newLLBuilder(seq.N())
		j := 0
		for i := 0; i < seq.N(); i++ {
			var items []Item
			for j < inner && outerOf[j] == int32(i) {
				g := varB.group(j)
				if len(g) != 1 {
					return false
				}
				items = append(items, g[0])
				j++
			}
			b.add(items...)
		}
		round := b.done()
		if round.Total() != seq.Total() {
			return false
		}
		for k := range round.Items {
			if round.Items[k].I != seq.Items[k].I {
				return false
			}
		}
		for i := 0; i <= seq.N(); i++ {
			if round.Off[i] != seq.Off[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package xqeval

import "fmt"

// Error is a dynamic or type error with its W3C error code.
type Error struct {
	Code string // e.g. "XPDY0002", "XPTY0004", "FORG0006"
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("xquery error %s: %s", e.Code, e.Msg) }

func errf(code, format string, args ...any) error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Well-known codes used across the evaluator.
const (
	codeNoContext     = "XPDY0002" // context item absent
	codeType          = "XPTY0004" // type error
	codeEBV           = "FORG0006" // invalid argument to effective boolean value
	codeUndefVar      = "XPST0008" // undeclared variable
	codeUndefFunc     = "XPST0017" // undeclared function / wrong arity
	codeDocNotFound   = "FODC0002" // document not available
	codeDivZero       = "FOAR0001" // division by zero
	codeAttrLate      = "XQTY0024" // attribute after non-attribute content
	codeRecursion     = "SOXQ0001" // recursion depth exceeded (engine limit)
	codeCardinality   = "FORG0005" // fn:exactly-one etc. cardinality violation
	codeStandOffIndex = "SOXQ0002" // region index construction failed
)

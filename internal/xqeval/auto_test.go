package xqeval

import (
	"fmt"
	"strings"
	"testing"

	"soxq/internal/core"
	"soxq/internal/xqplan"
)

// standOffStepOf returns the single StandOff step of a compiled plan.
func standOffStepOf(t *testing.T, plan *xqplan.Plan) *xqplan.StepPlan {
	t.Helper()
	var found *xqplan.StepPlan
	for _, prog := range plan.Programs() {
		for _, sp := range prog {
			if sp.StandOff {
				if found != nil {
					t.Fatal("plan has more than one StandOff step")
				}
				found = sp
			}
		}
	}
	if found == nil {
		t.Fatal("plan has no StandOff step")
	}
	return found
}

// standoffDoc builds a document with n s-areas and n/8+1 t-areas so that at
// n=300 the two layers sit on opposite sides of the cost model's cutoff.
func standoffDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<s start="%d" end="%d"/>`, i*10, i*10+9)
	}
	for i := 0; i < n/8+1; i++ {
		fmt.Fprintf(&sb, `<t start="%d" end="%d"/>`, i*80, i*80+19)
	}
	sb.WriteString("</doc>")
	return sb.String()
}

// TestAutoStrategyMatchesForced: results under StrategyAuto are identical to
// the forced variants on both a tiny and a huge annotation layer (the cost
// model only changes the algorithm, never the answer).
func TestAutoStrategyMatchesForced(t *testing.T) {
	for _, n := range []int{8, 200} {
		for _, q := range []string{
			`doc("d.xml")//s/select-wide::t`,
			`for $x in doc("d.xml")//t return $x/select-narrow::s`,
			`count(doc("d.xml")//s/reject-narrow::t)`,
		} {
			h := newHarness()
			h.addDoc(t, "d.xml", standoffDoc(n))
			ref, err := h.run(t, q, core.StrategyLoopLifted)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, q, err)
			}
			got, err := h.run(t, q, core.StrategyAuto)
			if err != nil {
				t.Fatalf("n=%d %s auto: %v", n, q, err)
			}
			if serialize(got) != serialize(ref) {
				t.Fatalf("n=%d %s: auto %q != looplifted %q", n, q, serialize(got), serialize(ref))
			}
		}
	}
}

// TestAutoStrategyResolution pins that an auto run resolves the per-step
// choice from the index statistics, and that a forced strategy bypasses the
// cost model entirely (the engine-level override wins).
func TestAutoStrategyResolution(t *testing.T) {
	q := `doc("d.xml")//s/select-narrow::t`
	h := newHarness()
	h.addDoc(t, "d.xml", standoffDoc(300)) // s huge, t tiny

	plan, err := h.compile(q)
	if err != nil {
		t.Fatal(err)
	}
	soStep := standOffStepOf(t, plan)

	// Forced run: the memo stays empty — the cost model was never asked.
	if _, err := h.newEvaluator(plan, core.StrategyBasic).Run(); err != nil {
		t.Fatal(err)
	}
	if got := soStep.ResolvedStrategies(); len(got) != 0 {
		t.Fatalf("forced run resolved %v, want nothing", got)
	}

	// Auto run: select-narrow::t has a tiny candidate layer, but 300 s
	// context rows feed the join — cost model v2 lifts the loop (Basic
	// would rescan the candidates 300 times).
	if _, err := h.newEvaluator(plan, core.StrategyAuto).Run(); err != nil {
		t.Fatal(err)
	}
	got := soStep.ResolvedStrategies()
	if len(got) != 1 || got[0] != core.StrategyLoopLifted {
		t.Fatalf("auto run resolved %v, want [looplifted]", got)
	}

	// The converse: a single context row over the huge s layer. The v1
	// threshold (300 candidates > 64) would force Loop-Lifted; v2 sees
	// nothing to lift and keeps the one-shot Basic merge.
	plan2, err := h.compile(`doc("d.xml")/doc/select-narrow::s`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.newEvaluator(plan2, core.StrategyAuto).Run(); err != nil {
		t.Fatal(err)
	}
	got = standOffStepOf(t, plan2).ResolvedStrategies()
	if len(got) != 1 || got[0] != core.StrategyBasic {
		t.Fatalf("single-context auto run resolved %v, want [basic]", got)
	}
}

// TestAutoFunctionForm: the so:select-* function form synthesises its step
// at run time and still works under StrategyAuto.
func TestAutoFunctionForm(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", standoffDoc(20))
	q := `count(so:select-wide(doc("d.xml")//s))`
	ref, err := h.run(t, q, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.run(t, q, core.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(got) != serialize(ref) {
		t.Fatalf("auto %q != looplifted %q", serialize(got), serialize(ref))
	}
}

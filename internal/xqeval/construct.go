package xqeval

import (
	"sort"
	"strings"

	"soxq/internal/tree"
	"soxq/internal/xqast"
)

// evalDirectElem evaluates a direct element constructor, producing one new
// element (a fresh fragment document) per iteration.
func (ev *Evaluator) evalDirectElem(v *xqast.DirectElem, f *frame) (LLSeq, error) {
	// Evaluate attribute value templates and content in the current frame.
	type valuePart struct {
		lit string // literal text, used when seq is unset
		seq *LLSeq // evaluated enclosed expression
	}
	attrs := make([][]valuePart, len(v.Attrs))
	for ai, a := range v.Attrs {
		for _, part := range a.Value {
			if sl, ok := part.(*xqast.StringLit); ok {
				attrs[ai] = append(attrs[ai], valuePart{lit: sl.V})
				continue
			}
			seq, err := ev.eval(part, f)
			if err != nil {
				return LLSeq{}, err
			}
			attrs[ai] = append(attrs[ai], valuePart{seq: &seq})
		}
	}
	content := make([]LLSeq, len(v.Content))
	for ci, c := range v.Content {
		seq, err := ev.eval(c, f)
		if err != nil {
			return LLSeq{}, err
		}
		content[ci] = seq
	}
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		fb := tree.NewFragmentBuilder()
		fb.StartElement(v.Name)
		for ai, a := range v.Attrs {
			var sb strings.Builder
			for _, part := range attrs[ai] {
				if part.seq == nil {
					sb.WriteString(part.lit)
					continue
				}
				for k, it := range part.seq.Group(i) {
					if k > 0 {
						sb.WriteByte(' ')
					}
					sb.WriteString(it.Atomize().StringValue())
				}
			}
			fb.Attr(a.Name, sb.String())
		}
		sawContent := false
		prevAtomic := false
		for ci, c := range content {
			_, enclosed := v.Content[ci].(*xqast.Enclosed)
			if err := appendContent(fb, c.Group(i), enclosed, &sawContent, &prevAtomic); err != nil {
				return LLSeq{}, err
			}
		}
		fb.EndElement()
		doc, err := fb.Done()
		if err != nil {
			return LLSeq{}, errf(codeType, "element constructor: %v", err)
		}
		b.add(NodeItem(doc, 1)) // pre 1 is the constructed element
	}
	return b.done(), nil
}

// appendContent copies one evaluated content expression into the builder.
// Nodes are inserted by deep copy; atomic values become text, and adjacent
// atomic values from enclosed expressions are joined with single spaces
// (XQuery 3.7.1.3) — also across adjacent enclosed expressions, hence
// prevAtomic is threaded through consecutive calls. Literal constructor text
// is inserted verbatim and breaks atomic adjacency.
func appendContent(fb *tree.Builder, items []Item, enclosed bool, sawContent, prevAtomic *bool) error {
	for _, it := range items {
		switch it.Kind {
		case KNode:
			copyNode(fb, it.D, it.Pre)
			*sawContent = true
			*prevAtomic = false
		case KAttr:
			if *sawContent {
				return errf(codeAttrLate, "attribute %q follows non-attribute content", it.D.AttrName(it.Att))
			}
			fb.Attr(it.D.AttrName(it.Att), it.D.AttrValue(it.Att))
			*prevAtomic = false
		default:
			s := it.StringValue()
			if enclosed && *prevAtomic {
				fb.Text(" ")
			}
			fb.Text(s)
			if s != "" {
				*sawContent = true
			}
			*prevAtomic = enclosed
		}
	}
	return nil
}

// copyNode deep-copies a node (and its subtree) into the builder. Copying a
// document node copies its children.
func copyNode(fb *tree.Builder, d *tree.Doc, pre int32) {
	switch d.Kind(pre) {
	case tree.DocumentNode:
		for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
			copyNode(fb, d, c)
		}
	case tree.ElementNode:
		fb.StartElement(d.NodeName(pre))
		lo, hi := d.Attrs(pre)
		for a := lo; a < hi; a++ {
			fb.Attr(d.AttrName(a), d.AttrValue(a))
		}
		for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
			copyNode(fb, d, c)
		}
		fb.EndElement()
	case tree.TextNode:
		fb.Text(d.Value(pre))
	case tree.CommentNode:
		fb.Comment(d.Value(pre))
	case tree.PINode:
		fb.PI(d.NodeName(pre), d.Value(pre))
	}
}

func (ev *Evaluator) evalComputedElem(v *xqast.ComputedElem, f *frame) (LLSeq, error) {
	names, err := ev.constructorNames(v.Name, v.NameExpr, f)
	if err != nil {
		return LLSeq{}, err
	}
	content, err := ev.eval(v.Content, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		fb := tree.NewFragmentBuilder()
		fb.StartElement(names[i])
		saw, prevAtomic := false, false
		if err := appendContent(fb, content.Group(i), true, &saw, &prevAtomic); err != nil {
			return LLSeq{}, err
		}
		fb.EndElement()
		doc, err := fb.Done()
		if err != nil {
			return LLSeq{}, errf(codeType, "element constructor: %v", err)
		}
		b.add(NodeItem(doc, 1))
	}
	return b.done(), nil
}

func (ev *Evaluator) evalComputedAttr(v *xqast.ComputedAttr, f *frame) (LLSeq, error) {
	names, err := ev.constructorNames(v.Name, v.NameExpr, f)
	if err != nil {
		return LLSeq{}, err
	}
	content, err := ev.eval(v.Content, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		var sb strings.Builder
		for k, it := range content.Group(i) {
			if k > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(it.Atomize().StringValue())
		}
		// A free-standing attribute node lives on a carrier element in its
		// own fragment; inserting it into constructor content copies the
		// name/value pair.
		fb := tree.NewFragmentBuilder()
		fb.StartElement("attribute-carrier")
		fb.Attr(names[i], sb.String())
		fb.EndElement()
		doc, err := fb.Done()
		if err != nil {
			return LLSeq{}, errf(codeType, "attribute constructor: %v", err)
		}
		lo, _ := doc.Attrs(1)
		b.add(AttrItem(doc, 1, lo))
	}
	return b.done(), nil
}

func (ev *Evaluator) evalComputedText(v *xqast.ComputedText, f *frame) (LLSeq, error) {
	content, err := ev.eval(v.Content, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		var sb strings.Builder
		for k, it := range content.Group(i) {
			if k > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(it.Atomize().StringValue())
		}
		fb := tree.NewFragmentBuilder()
		fb.StartElement("text-carrier")
		fb.Text(sb.String())
		fb.EndElement()
		doc, err := fb.Done()
		if err != nil {
			return LLSeq{}, errf(codeType, "text constructor: %v", err)
		}
		if doc.NumNodes() < 3 {
			b.add() // empty text constructor yields the empty sequence
			continue
		}
		b.add(NodeItem(doc, 2)) // pre 2 is the text node
	}
	return b.done(), nil
}

// constructorNames resolves the element/attribute name per iteration.
func (ev *Evaluator) constructorNames(static string, nameExpr xqast.Expr, f *frame) ([]string, error) {
	names := make([]string, f.n)
	if nameExpr == nil {
		for i := range names {
			names[i] = static
		}
		return names, nil
	}
	seq, err := ev.eval(nameExpr, f)
	if err != nil {
		return nil, err
	}
	for i := 0; i < f.n; i++ {
		g := seq.Group(i)
		if len(g) != 1 {
			return nil, errf(codeType, "computed constructor name must be a single item")
		}
		name := strings.TrimSpace(g[0].StringValue())
		if name == "" {
			return nil, errf(codeType, "computed constructor name is empty")
		}
		names[i] = name
	}
	return names, nil
}

// newFragmentElem builds a single-element fragment with the given attributes
// (sorted by name for determinism) and returns it as a node item.
func newFragmentElem(name string, attrs map[string]string) Item {
	fb := tree.NewFragmentBuilder()
	fb.StartElement(name)
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fb.Attr(k, attrs[k])
	}
	fb.EndElement()
	doc, err := fb.Done()
	if err != nil {
		panic("xqeval: internal fragment construction failed: " + err.Error())
	}
	return NodeItem(doc, 1)
}

package xqeval

import "sync"

// The streaming pipeline evaluates the same loop-lifted machinery as the
// materialising path, but per chunk — which turns every per-evaluation
// scratch structure (LLSeq buffers, chunk frames, lifted bindings, builders)
// into a steady per-chunk allocation stream. The seq arena removes that
// stream the same way core.JoinArena removes the join's: recycled free lists
// behind a sync.Pool, single-goroutine by construction.
//
// Lifetimes are managed with explicit scopes instead of per-object returns:
// a cursor opens a scope before evaluating a chunk, every arena structure
// handed out while the scope is open is recorded as a loan of that scope,
// and closing the scope reclaims all of them at once. Scopes nest
// stack-like across the cursor tree (a child cursor's chunk scope closes
// before its parent's), and the pipeline's pull order keeps sibling scopes
// disjoint: a cursor closes its previous chunk's scope before pulling from
// its binding cursor, so the binding's own scope turnover happens while no
// younger scope is on the stack. Items handed to the consumer are value
// copies, so nothing the user observes aliases a reclaimed buffer.
//
// When no scope is open — the materialising Run path, evaluation during
// cursor init whose results must outlive any one chunk, parallel workers
// (whose forked evaluators carry no seq arena) — every helper falls back to
// plain allocation, byte-for-byte the pre-arena behaviour.

// SeqScope is one open allocation scope: the loans handed out since the
// scope opened. The executor treats it as an opaque handle.
type SeqScope struct {
	builders []*llBuilder
	frames   []*frame
	bindings []*binding
}

// seqArena is the per-evaluator recycler: free lists the scopes reclaim
// into. It is single-goroutine, like the evaluator that owns it.
type seqArena struct {
	freeItems    [][]Item
	freeOffs     [][]int32
	freeBuilders []*llBuilder
	freeFrames   []*frame
	freeBindings []*binding

	scopes     []*SeqScope
	freeScopes []*SeqScope
}

const (
	// seqMaxFree bounds each free list; extras beyond it are left to the GC.
	seqMaxFree = 64
	// seqMaxItemCap / seqMaxOffCap bound the buffer sizes the arena retains
	// across runs — a one-off giant chunk must not pin its buffers forever.
	seqMaxItemCap = 1 << 15
	seqMaxOffCap  = 1 << 16
)

var seqArenaPool = sync.Pool{New: func() any { return &seqArena{} }}

// AttachSeqArena equips the evaluator with a pooled scratch arena for one
// streaming run; a no-op when one is already attached. The owner must call
// DetachSeqArena when the run's cursor closes.
func (ev *Evaluator) AttachSeqArena() {
	if ev.seqs == nil {
		ev.seqs = seqArenaPool.Get().(*seqArena)
	}
}

// DetachSeqArena releases the attached arena back to the pool, dropping any
// document references the recycled buffers still hold. Safe to call
// repeatedly.
func (ev *Evaluator) DetachSeqArena() {
	if a := ev.seqs; a != nil {
		ev.seqs = nil
		a.release()
	}
}

// OpenScope starts an allocation scope: until the matching CloseScope,
// arena-aware helpers hand out recycled structures recorded as loans of
// this scope. Returns nil (and the helpers allocate plainly) when no arena
// is attached.
func (ev *Evaluator) OpenScope() *SeqScope {
	a := ev.seqs
	if a == nil {
		return nil
	}
	var s *SeqScope
	if n := len(a.freeScopes); n > 0 {
		s = a.freeScopes[n-1]
		a.freeScopes = a.freeScopes[:n-1]
	} else {
		s = &SeqScope{}
	}
	a.scopes = append(a.scopes, s)
	return s
}

// CloseScope reclaims every loan of s. Scopes close youngest-first; as a
// defensive measure any scope still open above s is reclaimed too. A nil s
// is a no-op.
func (ev *Evaluator) CloseScope(s *SeqScope) {
	a := ev.seqs
	if a == nil || s == nil {
		return
	}
	for len(a.scopes) > 0 {
		top := a.scopes[len(a.scopes)-1]
		a.scopes = a.scopes[:len(a.scopes)-1]
		a.reclaim(top)
		if top == s {
			return
		}
	}
}

// reclaim returns one scope's loans to the free lists and the scope struct
// itself to the scope pool.
func (a *seqArena) reclaim(s *SeqScope) {
	for _, b := range s.builders {
		// The builder holds the final slice headers, so buffers that grew
		// past their hint come back at their grown capacity.
		a.putItems(b.seq.Items)
		a.putOffs(b.seq.Off)
		b.seq = LLSeq{}
		if len(a.freeBuilders) < seqMaxFree {
			a.freeBuilders = append(a.freeBuilders, b)
		}
	}
	for _, f := range s.frames {
		vars := f.vars[:cap(f.vars)]
		clear(vars)
		f.vars = vars[:0]
		f.ctx, f.pos, f.last = nil, nil, nil
		f.n = 0
		if len(a.freeFrames) < seqMaxFree {
			a.freeFrames = append(a.freeFrames, f)
		}
	}
	for _, b := range s.bindings {
		*b = binding{}
		if len(a.freeBindings) < seqMaxFree {
			a.freeBindings = append(a.freeBindings, b)
		}
	}
	s.builders = s.builders[:0]
	s.frames = s.frames[:0]
	s.bindings = s.bindings[:0]
	if len(a.freeScopes) < seqMaxFree {
		a.freeScopes = append(a.freeScopes, s)
	}
}

// release prepares the arena for pool residence: leftover scopes (error or
// early-close paths) are reclaimed, and every retained buffer is cleared so
// the pool never pins a document through stale Item fields.
func (a *seqArena) release() {
	for len(a.scopes) > 0 {
		top := a.scopes[len(a.scopes)-1]
		a.scopes = a.scopes[:len(a.scopes)-1]
		a.reclaim(top)
	}
	for _, buf := range a.freeItems {
		clear(buf[:cap(buf)])
	}
	seqArenaPool.Put(a)
}

func (a *seqArena) putItems(buf []Item) {
	if buf == nil || cap(buf) > seqMaxItemCap || len(a.freeItems) >= seqMaxFree {
		return
	}
	a.freeItems = append(a.freeItems, buf[:0])
}

func (a *seqArena) putOffs(buf []int32) {
	if buf == nil || cap(buf) > seqMaxOffCap || len(a.freeOffs) >= seqMaxFree {
		return
	}
	a.freeOffs = append(a.freeOffs, buf[:0])
}

// popItems / popOffs take a free buffer with at least the hinted capacity,
// allocating when the list's candidate is too small. Per-call-site request
// sizes are stable across chunks, so the lists converge after a chunk or
// two and the steady state allocates nothing.
func (a *seqArena) popItems(capHint int) []Item {
	if n := len(a.freeItems); n > 0 {
		buf := a.freeItems[n-1]
		a.freeItems = a.freeItems[:n-1]
		if cap(buf) >= capHint {
			return buf[:0]
		}
	}
	return make([]Item, 0, capHint)
}

func (a *seqArena) popOffs(capHint int) []int32 {
	if n := len(a.freeOffs); n > 0 {
		buf := a.freeOffs[n-1]
		a.freeOffs = a.freeOffs[:n-1]
		if cap(buf) >= capHint {
			return buf[:0]
		}
	}
	return make([]int32, 0, capHint)
}

// active returns the scope new loans belong to, or nil when the helpers
// should allocate plainly.
func (ev *Evaluator) active() *SeqScope {
	if a := ev.seqs; a != nil && len(a.scopes) > 0 {
		return a.scopes[len(a.scopes)-1]
	}
	return nil
}

// scrBuilderCap is the arena-aware newLLBuilderCap: under an open scope the
// builder and both buffers are recycled loans; otherwise it is a plain
// builder. Growth past the hints is safe either way — the reclaim reads the
// builder's final slice headers.
func (ev *Evaluator) scrBuilderCap(nHint, itemsHint int) *llBuilder {
	s := ev.active()
	if s == nil {
		return newLLBuilderCap(nHint, itemsHint)
	}
	a := ev.seqs
	var b *llBuilder
	if n := len(a.freeBuilders); n > 0 {
		b = a.freeBuilders[n-1]
		a.freeBuilders = a.freeBuilders[:n-1]
	} else {
		b = &llBuilder{}
	}
	off := a.popOffs(nHint + 1)
	b.seq = LLSeq{Off: append(off, 0), Items: a.popItems(itemsHint)}
	s.builders = append(s.builders, b)
	return b
}

// scrFrame hands out a zeroed frame whose vars slice keeps its old capacity.
func (ev *Evaluator) scrFrame(n int) *frame {
	s := ev.active()
	if s == nil {
		return newFrame(n)
	}
	a := ev.seqs
	var f *frame
	if k := len(a.freeFrames); k > 0 {
		f = a.freeFrames[k-1]
		a.freeFrames = a.freeFrames[:k-1]
	} else {
		f = &frame{}
	}
	f.n = n
	s.frames = append(s.frames, f)
	return f
}

// scrBinding hands out a zeroed binding.
func (ev *Evaluator) scrBinding() *binding {
	s := ev.active()
	if s == nil {
		return &binding{}
	}
	a := ev.seqs
	var b *binding
	if k := len(a.freeBindings); k > 0 {
		b = a.freeBindings[k-1]
		a.freeBindings = a.freeBindings[:k-1]
	} else {
		b = &binding{}
	}
	s.bindings = append(s.bindings, b)
	return b
}

// scrConstLL is the arena-aware constLL (literal broadcast).
func (ev *Evaluator) scrConstLL(n int, items ...Item) LLSeq {
	if ev.active() == nil {
		return constLL(n, items...)
	}
	b := ev.scrBuilderCap(n, n*len(items))
	for i := 0; i < n; i++ {
		b.add(items...)
	}
	return b.done()
}

// scrMaterialize is the arena-aware binding.materialize: the flattened
// sequence is built into loaned buffers; the identity case still aliases
// the binding's own storage without copying.
func (ev *Evaluator) scrMaterialize(b *binding) LLSeq {
	if ev.active() == nil || (!b.bcast && b.ind == nil) {
		return b.materialize()
	}
	if b.bcast {
		g := b.seq.Group(b.bsrc)
		out := ev.scrBuilderCap(b.bn, b.bn*len(g))
		for i := 0; i < b.bn; i++ {
			out.add(g...)
		}
		return out.done()
	}
	total := 0
	for _, o := range b.ind {
		total += len(b.seq.Group(int(o)))
	}
	out := ev.scrBuilderCap(len(b.ind), total)
	for _, o := range b.ind {
		out.add(b.seq.Group(int(o))...)
	}
	return out.done()
}

// scrExpandBroadcast is the arena-aware frame.expandBroadcast (the chunk
// expansion of BindChunk). The caller guarantees f.n == 1.
func (ev *Evaluator) scrExpandBroadcast(f *frame, n int) *frame {
	if ev.active() == nil {
		return f.expandBroadcast(n)
	}
	nf := ev.scrFrame(n)
	for _, vb := range f.vars {
		nf.vars = append(nf.vars, varBind{vb.name, ev.scrLiftBroadcast(vb.b, n)})
	}
	if f.ctx != nil {
		nf.ctx = ev.scrLiftBroadcast(f.ctx, n)
	}
	if f.pos != nil {
		nf.pos = broadcastI64(f.pos[0], n)
	}
	if f.last != nil {
		nf.last = broadcastI64(f.last[0], n)
	}
	return nf
}

// scrLiftBroadcast is the arena-aware binding.liftBroadcast.
func (ev *Evaluator) scrLiftBroadcast(b *binding, n int) *binding {
	src := b.bsrc
	if !b.bcast && b.ind != nil {
		src = int(b.ind[0])
	}
	nb := ev.scrBinding()
	nb.seq, nb.bcast, nb.bn, nb.bsrc = b.seq, true, n, src
	return nb
}

// scrBind is the arena-aware frame.bind.
func (ev *Evaluator) scrBind(f *frame, name string, b *binding) *frame {
	if ev.active() == nil {
		return f.bind(name, b)
	}
	nf := ev.scrFrame(f.n)
	nf.ctx, nf.pos, nf.last = f.ctx, f.pos, f.last
	nf.vars = append(nf.vars, f.vars...)
	for i := range nf.vars {
		if nf.vars[i].name == name {
			nf.vars[i].b = b
			return nf
		}
	}
	nf.vars = append(nf.vars, varBind{name, b})
	return nf
}

// scrBindSeq wraps seq in a loaned binding and binds it.
func (ev *Evaluator) scrBindSeq(f *frame, name string, seq LLSeq) *frame {
	b := ev.scrBinding()
	b.seq = seq
	return ev.scrBind(f, name, b)
}

package xqeval

// binding is a loop-lifted variable: a base LLSeq plus an optional
// indirection so that lifting a variable into an inner loop copies an int32
// per iteration instead of duplicating item sequences (important for the
// quadratic UDF baselines, which lift whole candidate sequences).
//
// A binding with one effective group — a single-iteration sequence, or an
// already-broadcast binding — lifts into a broadcast: every iteration reads
// the same group, represented by a count instead of an indirection array.
// That makes the executor's chunk expansion (one root iteration fanned out
// to thousands of tuples per chunk) allocation-free per outer variable.
type binding struct {
	seq LLSeq
	ind []int32 // iteration i reads seq.Group(ind[i]); nil means identity

	bcast bool // every iteration reads seq.Group(bsrc); ind is unused
	bn    int  // iteration count when bcast
	bsrc  int  // the shared source group when bcast
}

func newBinding(seq LLSeq) *binding { return &binding{seq: seq} }

// group returns the item sequence bound in iteration i.
func (b *binding) group(i int) []Item {
	if b.bcast {
		return b.seq.Group(b.bsrc)
	}
	if b.ind != nil {
		i = int(b.ind[i])
	}
	return b.seq.Group(i)
}

// n returns the iteration count of the binding.
func (b *binding) n() int {
	if b.bcast {
		return b.bn
	}
	if b.ind != nil {
		return len(b.ind)
	}
	return b.seq.N()
}

// lift maps the binding into a loop with len(outerOf) iterations, where
// inner iteration j descends from outer iteration outerOf[j].
func (b *binding) lift(outerOf []int32) *binding {
	// One effective group (broadcast, or a single-iteration identity): all
	// outer groups are the same group, so the lifted binding broadcasts it —
	// no indirection array at all.
	if b.bcast || (b.ind == nil && b.seq.N() == 1) {
		return &binding{seq: b.seq, bcast: true, bn: len(outerOf), bsrc: b.bsrc}
	}
	ind := make([]int32, len(outerOf))
	if b.ind == nil {
		copy(ind, outerOf)
	} else {
		for j, o := range outerOf {
			ind[j] = b.ind[o]
		}
	}
	return &binding{seq: b.seq, ind: ind}
}

// liftBroadcast fans the binding of a single-iteration frame out to n
// descendant iterations. The caller guarantees the binding has exactly one
// effective group (f.n == 1).
func (b *binding) liftBroadcast(n int) *binding {
	src := b.bsrc
	if !b.bcast && b.ind != nil {
		src = int(b.ind[0])
	}
	return &binding{seq: b.seq, bcast: true, bn: n, bsrc: src}
}

// materialize flattens the indirection into a plain LLSeq.
func (b *binding) materialize() LLSeq {
	if b.bcast {
		g := b.seq.Group(b.bsrc)
		out := LLSeq{Off: make([]int32, b.bn+1), Items: make([]Item, 0, b.bn*len(g))}
		for i := 0; i < b.bn; i++ {
			out.Items = append(out.Items, g...)
			out.Off[i+1] = int32(len(out.Items))
		}
		return out
	}
	if b.ind == nil {
		return b.seq
	}
	total := 0
	for _, o := range b.ind {
		total += len(b.seq.Group(int(o)))
	}
	out := LLSeq{Off: make([]int32, 1, len(b.ind)+1), Items: make([]Item, 0, total)}
	for _, o := range b.ind {
		out.Items = append(out.Items, b.seq.Group(int(o))...)
		out.Off = append(out.Off, int32(len(out.Items)))
	}
	return out
}

// varBind is one entry of a frame's variable environment.
type varBind struct {
	name string
	b    *binding
}

// frame is the dynamic context of one loop scope: n iterations, the live
// variable bindings, and (inside predicates and path steps) the context
// item, position() and last() per iteration.
//
// Variables live in an association slice, looked up backwards so a shadowing
// bind wins; query environments are a handful of variables, where a linear
// scan beats a map copy per bind by a wide margin.
type frame struct {
	n    int
	vars []varBind
	ctx  *binding // 0-or-1 item per iteration; nil when no context item
	pos  []int64  // position() per iteration; nil when undefined
	last []int64  // last() per iteration; nil when undefined
}

func newFrame(n int) *frame {
	return &frame{n: n}
}

// lookup returns the binding of name, or nil.
func (f *frame) lookup(name string) *binding {
	for i := len(f.vars) - 1; i >= 0; i-- {
		if f.vars[i].name == name {
			return f.vars[i].b
		}
	}
	return nil
}

// expand lifts the frame into an inner loop described by outerOf.
func (f *frame) expand(outerOf []int32) *frame {
	nf := &frame{n: len(outerOf)}
	if len(f.vars) > 0 {
		nf.vars = make([]varBind, len(f.vars))
		for i, vb := range f.vars {
			nf.vars[i] = varBind{vb.name, vb.b.lift(outerOf)}
		}
	}
	if f.ctx != nil {
		nf.ctx = f.ctx.lift(outerOf)
	}
	if f.pos != nil {
		nf.pos = liftI64(f.pos, outerOf)
	}
	if f.last != nil {
		nf.last = liftI64(f.last, outerOf)
	}
	return nf
}

// expandBroadcast fans a single-iteration frame out to n descendant
// iterations (the executor's chunk expansion): every binding becomes a
// broadcast of its one effective group. The caller guarantees f.n == 1.
func (f *frame) expandBroadcast(n int) *frame {
	nf := &frame{n: n}
	if len(f.vars) > 0 {
		nf.vars = make([]varBind, len(f.vars))
		for i, vb := range f.vars {
			nf.vars[i] = varBind{vb.name, vb.b.liftBroadcast(n)}
		}
	}
	if f.ctx != nil {
		nf.ctx = f.ctx.liftBroadcast(n)
	}
	if f.pos != nil {
		nf.pos = broadcastI64(f.pos[0], n)
	}
	if f.last != nil {
		nf.last = broadcastI64(f.last[0], n)
	}
	return nf
}

// restrict keeps only the listed iterations (used by if/else partitioning).
func (f *frame) restrict(keep []int32) *frame {
	return f.expand(keep)
}

// bind adds (or shadows) a variable: copy-on-write of the association slice,
// replacing a same-name entry in place so repeated rebinding (chunk loops)
// does not grow the environment.
func (f *frame) bind(name string, b *binding) *frame {
	nf := &frame{n: f.n, ctx: f.ctx, pos: f.pos, last: f.last}
	nf.vars = make([]varBind, len(f.vars), len(f.vars)+1)
	copy(nf.vars, f.vars)
	for i := range nf.vars {
		if nf.vars[i].name == name {
			nf.vars[i].b = b
			return nf
		}
	}
	nf.vars = append(nf.vars, varBind{name, b})
	return nf
}

func liftI64(v []int64, outerOf []int32) []int64 {
	out := make([]int64, len(outerOf))
	for j, o := range outerOf {
		out[j] = v[o]
	}
	return out
}

func broadcastI64(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

package xqeval

// binding is a loop-lifted variable: a base LLSeq plus an optional
// indirection so that lifting a variable into an inner loop copies an int32
// per iteration instead of duplicating item sequences (important for the
// quadratic UDF baselines, which lift whole candidate sequences).
type binding struct {
	seq LLSeq
	ind []int32 // iteration i reads seq.Group(ind[i]); nil means identity
}

func newBinding(seq LLSeq) *binding { return &binding{seq: seq} }

// group returns the item sequence bound in iteration i.
func (b *binding) group(i int) []Item {
	if b.ind != nil {
		i = int(b.ind[i])
	}
	return b.seq.Group(i)
}

// n returns the iteration count of the binding.
func (b *binding) n() int {
	if b.ind != nil {
		return len(b.ind)
	}
	return b.seq.N()
}

// lift maps the binding into a loop with len(outerOf) iterations, where
// inner iteration j descends from outer iteration outerOf[j].
func (b *binding) lift(outerOf []int32) *binding {
	ind := make([]int32, len(outerOf))
	if b.ind == nil {
		copy(ind, outerOf)
	} else {
		for j, o := range outerOf {
			ind[j] = b.ind[o]
		}
	}
	return &binding{seq: b.seq, ind: ind}
}

// materialize flattens the indirection into a plain LLSeq.
func (b *binding) materialize() LLSeq {
	if b.ind == nil {
		return b.seq
	}
	out := LLSeq{Off: make([]int32, 1, len(b.ind)+1)}
	for _, o := range b.ind {
		out.Items = append(out.Items, b.seq.Group(int(o))...)
		out.Off = append(out.Off, int32(len(out.Items)))
	}
	return out
}

// frame is the dynamic context of one loop scope: n iterations, the live
// variable bindings, and (inside predicates and path steps) the context
// item, position() and last() per iteration.
type frame struct {
	n    int
	vars map[string]*binding
	ctx  *binding // 0-or-1 item per iteration; nil when no context item
	pos  []int64  // position() per iteration; nil when undefined
	last []int64  // last() per iteration; nil when undefined
}

func newFrame(n int) *frame {
	return &frame{n: n, vars: map[string]*binding{}}
}

// expand lifts the frame into an inner loop described by outerOf.
func (f *frame) expand(outerOf []int32) *frame {
	nf := &frame{n: len(outerOf), vars: make(map[string]*binding, len(f.vars))}
	for name, b := range f.vars {
		nf.vars[name] = b.lift(outerOf)
	}
	if f.ctx != nil {
		nf.ctx = f.ctx.lift(outerOf)
	}
	if f.pos != nil {
		nf.pos = liftI64(f.pos, outerOf)
	}
	if f.last != nil {
		nf.last = liftI64(f.last, outerOf)
	}
	return nf
}

// restrict keeps only the listed iterations (used by if/else partitioning).
func (f *frame) restrict(keep []int32) *frame {
	return f.expand(keep)
}

// bind adds (or shadows) a variable.
func (f *frame) bind(name string, b *binding) *frame {
	nf := &frame{n: f.n, vars: make(map[string]*binding, len(f.vars)+1), ctx: f.ctx, pos: f.pos, last: f.last}
	for k, v := range f.vars {
		nf.vars[k] = v
	}
	nf.vars[name] = b
	return nf
}

func liftI64(v []int64, outerOf []int32) []int64 {
	out := make([]int64, len(outerOf))
	for j, o := range outerOf {
		out[j] = v[o]
	}
	return out
}

package xqeval

// This file is the evaluator's bridge to internal/xqexec, the streaming
// execution subsystem. The cursor pipeline drives the same loop-lifted
// machinery the materialising Run path uses — chunk by chunk instead of all
// iterations at once — so both paths share one engine and one set of
// semantics. Everything here operates on *root-shaped* frames: frames with
// exactly one iteration (the top level of a query), which is the only place
// the executor builds pipelines.

import (
	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
	"soxq/internal/xqplan"
)

// Frame is the exported handle to a loop-lifted evaluation frame. The
// executor treats it as opaque: it obtains one from NewRootFrame, derives
// chunk frames with BindChunk/BindSeq, and passes it back into EvalExpr,
// FLWORTail and the path helpers.
type Frame = frame

// NewRootFrame builds the top-level frame of an execution: one iteration,
// with the plan's global variables evaluated and bound in declaration order.
// Run uses it internally; the executor calls it once per pipeline.
func (ev *Evaluator) NewRootFrame() (*Frame, error) {
	if ev.MaxRecursion == 0 {
		ev.MaxRecursion = 512
	}
	f := newFrame(1)
	for _, vd := range ev.Plan.Globals() {
		val, err := ev.eval(vd.Value, f)
		if err != nil {
			return nil, err
		}
		f = f.bind(vd.Name, newBinding(val))
	}
	return f, nil
}

// EvalExpr evaluates an expression under f with the full materialising
// evaluator; the result has one group per frame iteration.
func (ev *Evaluator) EvalExpr(e xqast.Expr, f *Frame) (LLSeq, error) {
	return ev.eval(e, f)
}

// Iterations returns the frame's iteration count.
func (f *Frame) Iterations() int { return f.n }

// BindSeq returns a copy of f with name bound to seq (which must have one
// group per frame iteration).
func (f *Frame) BindSeq(name string, seq LLSeq) *Frame {
	return f.bind(name, newBinding(seq))
}

// BindChunk expands a single-iteration frame into len(items) tuple
// iterations — one per item, all descending from the root iteration — with
// varName bound to the tuple's item and posName (when non-empty, the
// for-clause's `at` variable) to its 1-based position offset by basePos.
// This is how the executor turns a chunk of a for-clause's binding stream
// into the frame the loop-lifted machinery evaluates the loop body over.
// items is aliased, not copied: the caller must not mutate it while the
// returned frame (or any sequence produced under it) is still in use.
// Under an open arena scope, the chunk frames and lifted bindings are
// recycled loans of that scope — the chunk turnover allocates nothing.
func (ev *Evaluator) BindChunk(f *Frame, varName, posName string, items []Item, basePos int64) *Frame {
	n := len(items)
	// All tuples descend from root iteration 0: a broadcast expansion, so
	// the outer bindings carry over without per-tuple indirection arrays,
	// and the one-item-per-iteration offsets come from the shared table.
	nf := ev.scrExpandBroadcast(f, n)
	nf = ev.scrBindSeq(nf, varName, LLSeq{Off: ascOff(n), Items: items})
	if posName != "" {
		pb := ev.scrBuilderCap(n, n)
		for i := 0; i < n; i++ {
			pb.add(Int(basePos + int64(i) + 1))
		}
		nf = ev.scrBindSeq(nf, posName, pb.done())
	}
	return nf
}

// FLWORTail evaluates the remainder of FLWOR v over the tuples of f: the
// given clauses (those after the streamed for clause), v's where filter, and
// v's return expression. The result is grouped by the final tuple frame;
// because tuple expansion and where-restriction both preserve iteration
// order, the flat Items slice is already in result order — the executor
// streams it directly without the per-iteration regroup the materialising
// path performs. FLWORTail does not handle order by; the executor falls back
// to the materialising evaluator for FLWORs that sort.
//
// FLWORTail owns the chunk counters of the streamed FLWOR: it records one
// chunk with the tuple count after clause expansion (before where), so the
// streamed totals agree with the materialising evalFLWOR no matter how many
// for clauses the chunk expands through — the executor's callers must not
// count tuples themselves, or nested loops would double-count across the
// fallback boundary.
func (ev *Evaluator) FLWORTail(v *xqast.FLWOR, clauses []xqast.Clause, f *Frame) (LLSeq, error) {
	cur, rootOf, err := ev.flworClauses(clauses, f)
	if err != nil {
		return LLSeq{}, err
	}
	tuples := int64(cur.n)
	if v.Where != nil {
		cur, _, err = ev.flworWhere(v.Where, cur, rootOf)
		if err != nil {
			return LLSeq{}, err
		}
	}
	ret, err := ev.eval(v.Return, cur)
	if err != nil {
		return LLSeq{}, err
	}
	ev.Stats.RecordChunk(v, tuples, int64(len(ret.Items)))
	return ret, nil
}

// PathPrefix evaluates a path's starting context and every compiled step but
// the last, returning the context sequence the final step would consume plus
// that final step's plan. A nil StepPlan means the program is empty and the
// returned sequence is already the path's result.
func (ev *Evaluator) PathPrefix(p *xqast.Path, f *Frame) (LLSeq, *xqplan.StepPlan, error) {
	cur, err := ev.pathStart(p, f)
	if err != nil {
		return LLSeq{}, nil, err
	}
	prog := ev.Plan.Program(p)
	if len(prog) == 0 {
		return cur, nil, nil
	}
	for _, sp := range prog[:len(prog)-1] {
		cur, err = ev.evalStep(sp, cur, f)
		if err != nil {
			return LLSeq{}, nil, err
		}
	}
	return cur, prog[len(prog)-1], nil
}

// PathPrefixStream evaluates a path's start and the steps before its longest
// chunk-streamable suffix, returning the context sequence plus the remaining
// compiled steps. The suffix always includes the final step (whatever its
// class); earlier steps join it only while they classify StreamChunked or
// StreamChunkedReject — the executor runs those through composed pres-based
// cursors instead of the bulk evaluator. An empty step slice means the
// program is empty and the returned sequence is already the path's result.
func (ev *Evaluator) PathPrefixStream(p *xqast.Path, f *Frame) (LLSeq, []*xqplan.StepPlan, error) {
	cur, err := ev.pathStart(p, f)
	if err != nil {
		return LLSeq{}, nil, err
	}
	prog := ev.Plan.Program(p)
	if len(prog) == 0 {
		return cur, nil, nil
	}
	cut := len(prog) - 1
	for cut > 0 {
		s := prog[cut-1].Streamability()
		if s != xqplan.StreamChunked && s != xqplan.StreamChunkedReject {
			break
		}
		cut--
	}
	for _, sp := range prog[:cut] {
		cur, err = ev.evalStep(sp, cur, f)
		if err != nil {
			return LLSeq{}, nil, err
		}
	}
	return cur, prog[cut:], nil
}

// GroupSeq wraps a flat item slice as a single-group sequence — the shape a
// root frame's context takes. items is aliased, not copied.
func GroupSeq(items []Item) LLSeq {
	return LLSeq{Off: []int32{0, int32(len(items))}, Items: items}
}

// EvalStepBulk applies one compiled step to a context sequence with the
// materialising machinery (the executor's fallback when a final step is not
// order-safe to stream).
func (ev *Evaluator) EvalStepBulk(sp *xqplan.StepPlan, ctx LLSeq, f *Frame) (LLSeq, error) {
	return ev.evalStep(sp, ctx, f)
}

// TreeStepItems applies a tree-axis step to a single context node, returning
// the step's matches for that node in document order. Used by the pipelined
// final-step cursor, which has already established that per-node streaming
// is order-safe (disjoint context subtrees, forward axis, no predicates).
func (ev *Evaluator) TreeStepItems(sp *xqplan.StepPlan, it Item) ([]Item, error) {
	if !it.IsNode() {
		return nil, errf(codeType, "axis step applied to an atomic value")
	}
	res, err := ev.treeStep(sp, []stepRow{{item: it}})
	if err != nil {
		return nil, err
	}
	ev.Stats.RecordStep(sp, 1, int64(len(res[0])))
	return res[0], nil
}

// EvalStepTypeError is the error the bulk step raises for an atomic context
// item. The pipelined final-step cursors raise the identical error before
// any streaming starts, so both execution styles fail the same way.
func (ev *Evaluator) EvalStepTypeError() error {
	return errf(codeType, "axis step applied to an atomic value")
}

// SingletonInt coerces a 0/1-item group to an integer, with ok=false on an
// empty group — the `to` range-bound coercion, exported for the executor's
// pipelined range cursor.
func SingletonInt(items []Item) (int64, bool, error) {
	return singletonInt(items)
}

// RangeLimit caps the size of a `to` range. The materialising evaluator
// enforces it because it builds the whole range at once; the pipelined range
// cursor enforces the same limit so streaming and materialised executions
// fail identically.
const RangeLimit = 1 << 24

// ErrRangeTooLarge is the error both executions raise at the RangeLimit.
func ErrRangeTooLarge(lo, hi int64) error {
	return errf(codeType, "range %d to %d is too large", lo, hi)
}

// StandOffStream is the chunked execution handle of a pipelined StandOff
// step: the per-document residue — region index, candidate sequence,
// pushdown post-filter, join strategy — resolved once. For the two select
// operators the executor runs one loop-lifted join per chunk of context
// nodes (JoinChunkPres) and gates emission on the candidate-interval
// watermark. For the two reject operators — anti-joins over the whole
// context, where a union of per-chunk complements would be wrong — each
// chunk's select-side join marks matched candidates in a bitset (MarkChunk)
// and the executor complements once at the end, emitting the unmatched
// candidates (Areas, Keep) in document order.
type StandOffStream struct {
	ev         *Evaluator
	sp         *xqplan.StepPlan
	d          *tree.Doc
	ix         *core.RegionIndex
	cand       *core.Candidates
	postFilter bool
	test       xpath.Compiled
	wide       bool
	strat      core.Strategy

	// Per-stream scratch, recycled across chunks: the context-node rows
	// handed to the join and the pre buffer handed back to the cursor.
	ctxBuf  []core.CtxNode
	outPres []int32
}

// Doc returns the stream's document (the cursor materialises result items
// from pres against it).
func (s *StandOffStream) Doc() *tree.Doc { return s.d }

// NewStandOffStream resolves one StandOff select step against a single
// document for chunked execution. ctxRows is the step's full context
// cardinality — the cost model prices the whole loop, so chunking must not
// change the Basic/Loop-Lifted decision. A nil stream with a nil error means
// the step is statically or dynamically empty for this document (the node
// test can never match an area-annotation).
func (ev *Evaluator) NewStandOffStream(sp *xqplan.StepPlan, d *tree.Doc, ctxRows int) (*StandOffStream, error) {
	if ev.IndexFor == nil {
		return nil, errf(codeStandOffIndex, "no region index provider configured")
	}
	ix, err := ev.IndexFor(d)
	if err != nil {
		return nil, errf(codeStandOffIndex, "building region index for %q: %v", d.Name, err)
	}
	cand, postFilter := ev.candidatesFor(ix, sp.SO)
	if cand == nil {
		return nil, nil
	}
	s := &StandOffStream{
		ev: ev, sp: sp, d: d, ix: ix, cand: cand, postFilter: postFilter,
		wide:  sp.SO.Op == core.SelectWide || sp.SO.Op == core.RejectWide,
		strat: ev.strategyFor(sp, ix, ctxRows),
	}
	if postFilter {
		s.test = sp.CompiledTest(d)
	}
	return s, nil
}

// CtxStart returns the document-position start of a context node's area (the
// minimum region start — RegionsOf is start-ordered). ok=false means the
// node is not an area-annotation of this stream's document and can never
// produce a match.
func (s *StandOffStream) CtxStart(it Item) (int64, bool) {
	if it.Kind != KNode || it.D != s.d {
		return 0, false
	}
	return s.CtxStartPre(it.Pre)
}

// CtxStartPre is CtxStart for a bare pre rank of the stream's document — the
// composed-cursor path, where upstream stages hand pres across without ever
// materialising items.
func (s *StandOffStream) CtxStartPre(pre int32) (int64, bool) {
	regs := s.ix.RegionsOf(pre)
	if len(regs) == 0 {
		return 0, false
	}
	return regs[0].Start, true
}

// JoinChunkPres runs the step's join over one chunk of context node pres and
// returns the matching candidate pres, sorted and duplicate-free in document
// order. The returned slice is the stream's recycled buffer — valid only
// until the next JoinChunkPres call. One ANALYZE join invocation is recorded
// per chunk — the chunked run truly executes that many merges.
func (s *StandOffStream) JoinChunkPres(chunk []int32) []int32 {
	if cap(s.ctxBuf) < len(chunk) {
		s.ctxBuf = make([]core.CtxNode, len(chunk))
	}
	ctx := s.ctxBuf[:len(chunk)]
	for i, pre := range chunk {
		ctx[i] = core.CtxNode{Iter: 0, Pre: pre}
	}
	t0 := statsNow(s.ev.Stats)
	pairs := core.Join(s.ix, s.sp.SO.Op, s.strat, ctx, 1, s.cand, s.ev.JoinCfg)
	s.ev.countJoin(s.strat)
	s.ev.Stats.RecordJoin(s.sp, int64(s.cand.Len()), s.strat, int64(len(chunk)), statsSince(s.ev.Stats, t0))
	out := s.outPres[:0]
	if cap(out) < len(pairs) {
		out = make([]int32, 0, len(pairs))
	}
	for _, pr := range pairs {
		if s.postFilter && !s.test.Matches(s.d, pr.Pre) {
			continue
		}
		out = append(out, pr.Pre)
	}
	s.outPres = out
	return out
}

// Areas returns the candidate area pres in document order — the universe a
// reject stream complements over.
func (s *StandOffStream) Areas() []int32 { return s.cand.AreaPres() }

// Keep applies the step's node test to a candidate pre when the test was not
// pushed down into the candidate sequence. The bulk reject applies the same
// post-filter after its complement, so the chunked complement must too.
func (s *StandOffStream) Keep(pre int32) bool {
	return !s.postFilter || s.test.Matches(s.d, pre)
}

// MarkChunk runs the step's select-side join over one chunk of context node
// pres and marks the matched candidate positions in bits, returning how many
// were newly marked. The select-side matches of a context union are the
// union of per-chunk matches (semi-joins distribute over the context), so
// after the last chunk the unmarked candidates are exactly the bulk
// anti-join's complement. One ANALYZE join invocation is recorded per chunk.
func (s *StandOffStream) MarkChunk(chunk []int32, bits *core.MatchBits) int {
	if cap(s.ctxBuf) < len(chunk) {
		s.ctxBuf = make([]core.CtxNode, len(chunk))
	}
	ctx := s.ctxBuf[:len(chunk)]
	for i, pre := range chunk {
		ctx[i] = core.CtxNode{Iter: 0, Pre: pre}
	}
	op := core.SelectNarrow
	if s.wide {
		op = core.SelectWide
	}
	t0 := statsNow(s.ev.Stats)
	pairs := core.Join(s.ix, op, s.strat, ctx, 1, s.cand, s.ev.JoinCfg)
	s.ev.countJoin(s.strat)
	s.ev.Stats.RecordJoin(s.sp, int64(s.cand.Len()), s.strat, int64(len(chunk)), statsSince(s.ev.Stats, t0))
	return core.MarkMatched(bits, s.cand.AreaPres(), pairs)
}

// MatchBits borrows a zeroed candidate bitmap from the evaluator's join
// arena (plain allocation without one); hand it back with ReleaseMatchBits.
func (ev *Evaluator) MatchBits(n int) *core.MatchBits {
	return ev.JoinCfg.Arena.GetMatchBits(n)
}

// ReleaseMatchBits parks a bitmap's storage back in the join arena.
func (ev *Evaluator) ReleaseMatchBits(b *core.MatchBits) {
	ev.JoinCfg.Arena.PutMatchBits(b)
}

// Watermark returns the exclusive emission bound once every unprocessed
// context area starts at or after frontier: candidate pres below the bound
// cannot be produced by any remaining chunk and are final. ok=false means no
// remaining candidate can match at all — everything pending is final and the
// remaining chunks need not run.
func (s *StandOffStream) Watermark(frontier int64) (int32, bool) {
	if s.wide {
		return s.cand.MinPreEndFrom(frontier)
	}
	return s.cand.MinPreStartFrom(frontier)
}

// Fork returns a copy of the evaluator for use by a worker goroutine: all
// configuration and the shared immutable plan carry over, the per-run
// recursion depth starts fresh and the join arena is dropped — arenas are
// single-goroutine; a worker that wants one attaches its own. The parallel
// FLWOR partitioner forks one evaluator per worker.
func (ev *Evaluator) Fork() *Evaluator {
	nev := *ev
	nev.depth = 0
	nev.JoinCfg.Arena = nil
	nev.stepPres = nil // scratch is single-goroutine too
	nev.seqs = nil     // and so is the seq arena
	return &nev
}

// AttachArena equips the evaluator with a pooled join arena for one
// execution run; a no-op when one is already attached. The owner of the run
// must call DetachArena when the run's cursor closes.
func (ev *Evaluator) AttachArena() {
	if ev.JoinCfg.Arena == nil {
		ev.JoinCfg.Arena = core.AcquireJoinArena()
	}
}

// DetachArena releases the attached arena (and every buffer on loan from
// it) back to the pool. Safe to call repeatedly.
func (ev *Evaluator) DetachArena() {
	if a := ev.JoinCfg.Arena; a != nil {
		ev.JoinCfg.Arena = nil
		a.Release()
	}
}

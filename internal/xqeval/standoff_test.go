package xqeval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"soxq/internal/blob"
	"soxq/internal/core"
)

const figure1Doc = `<sample>
  <video>
    <shot id="Intro" start="0:00" end="0:08"/>
    <shot id="Interview" start="0:08" end="1:04"/>
    <shot id="Outro" start="1:04" end="1:34"/>
  </video>
  <audio>
    <music artist="U2" start="0:00" end="0:31"/>
    <music artist="Bach" start="0:52" end="1:34"/>
  </audio>
</sample>`

const timecodePreamble = `declare option standoff-type "so:timecode";
`

func figure1Harness(t *testing.T) *harness {
	h := newHarness()
	h.addDoc(t, "sample.xml", figure1Doc)
	return h
}

// TestSection31TableViaAxes runs the section 3.1 example table as XPath axis
// steps (the paper's Alternative 4) under every execution strategy.
func TestSection31TableViaAxes(t *testing.T) {
	queries := map[string]string{
		`//music[@artist = "U2"]/select-narrow::shot`: "Intro",
		`//music[@artist = "U2"]/select-wide::shot`:   "Intro Interview",
		`//music[@artist = "U2"]/reject-narrow::shot`: "Interview Outro",
		`//music[@artist = "U2"]/reject-wide::shot`:   "Outro",
	}
	for _, strat := range []core.Strategy{core.StrategyNaive, core.StrategyBasic, core.StrategyLoopLifted} {
		h := figure1Harness(t)
		for q, want := range queries {
			full := timecodePreamble +
				`for $s in doc("sample.xml")` + q + ` return string($s/@id)`
			items, err := h.run(t, full, strat)
			if err != nil {
				t.Fatalf("%v: %s: %v", strat, q, err)
			}
			if got := serialize(items); got != want {
				t.Errorf("%v: %s = %q, want %q", strat, q, got, want)
			}
		}
	}
}

// TestSection31TableViaBuiltins runs the same table through the built-in
// function form (Alternative 3), with and without candidate sequence.
func TestSection31TableViaBuiltins(t *testing.T) {
	h := figure1Harness(t)
	cases := [][2]string{
		{`so:select-narrow(doc("sample.xml")//music[@artist = "U2"])/self::shot`, "Intro"},
		{`so:select-narrow(doc("sample.xml")//music[@artist = "U2"], doc("sample.xml")//shot)`, "Intro"},
		{`so:select-wide(doc("sample.xml")//music[@artist = "U2"], doc("sample.xml")//shot)`, "Intro Interview"},
		{`so:reject-narrow(doc("sample.xml")//music[@artist = "U2"], doc("sample.xml")//shot)`, "Interview Outro"},
		{`so:reject-wide(doc("sample.xml")//music[@artist = "U2"], doc("sample.xml")//shot)`, "Outro"},
	}
	for _, c := range cases {
		full := timecodePreamble + `for $s in ` + c[0] + ` return string($s/@id)`
		items, err := h.run(t, full, core.StrategyLoopLifted)
		if err != nil {
			t.Fatalf("%s: %v", c[0], err)
		}
		if got := serialize(items); got != c[1] {
			t.Errorf("%s = %q, want %q", c[0], got, c[1])
		}
	}
}

// figure3UDF is the XQuery function with candidate sequence of the paper's
// Figure 3 (Alternative 2), adjusted only in that root() comparison uses
// "is" (node identity).
const figure3UDF = `
declare function local:select-narrow($input, $candidates) {
  (for $q in $input
   for $p in $candidates
   where $p/@start >= $q/@start
     and $p/@end <= $q/@end
     and root($p) is root($q)
   return $p)/.
};
`

// TestFigure3UDFMatchesAxis: the literal UDF from the paper must agree with
// the built-in axis step. Positions are plain integers here because the UDF
// compares @start/@end as numbers.
func TestFigure3UDFMatchesAxis(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<doc>
	  <a n="1" start="0" end="100"/>
	  <b n="2" start="10" end="20"/>
	  <b n="3" start="15" end="40"/>
	  <b n="4" start="150" end="160"/>
	  <a n="5" start="120" end="200"/>
	</doc>`)
	udf := figure3UDF + `
	  for $r in local:select-narrow(doc("d.xml")//a, doc("d.xml")//b)
	  return string($r/@n)`
	axis := `for $r in doc("d.xml")//a/select-narrow::b return string($r/@n)`

	udfItems, err := h.run(t, udf, core.StrategyLoopLifted)
	if err != nil {
		t.Fatalf("UDF: %v", err)
	}
	axisItems, err := h.run(t, axis, core.StrategyLoopLifted)
	if err != nil {
		t.Fatalf("axis: %v", err)
	}
	if serialize(udfItems) != serialize(axisItems) {
		t.Fatalf("UDF %q != axis %q", serialize(udfItems), serialize(axisItems))
	}
	if serialize(axisItems) != "2 3 4" {
		t.Fatalf("axis result = %q, want 2 3 4", serialize(axisItems))
	}
}

// TestStandOffAxisInsideLoop exercises the loop-lifted path: one join pass
// computes results for many iterations, and per-iteration results differ.
func TestStandOffAxisInsideLoop(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<doc>
	  <range n="lo" start="0" end="49"/>
	  <range n="hi" start="50" end="100"/>
	  <p v="a" start="10" end="19"/>
	  <p v="b" start="45" end="55"/>
	  <p v="c" start="60" end="70"/>
	</doc>`)
	q := `for $r in doc("d.xml")//range
	      return <hits of="{$r/@n}">{
	        for $p in $r/select-narrow::p return string($p/@v)
	      }</hits>`
	for _, strat := range []core.Strategy{core.StrategyNaive, core.StrategyBasic, core.StrategyLoopLifted} {
		items, err := h.run(t, q, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		got := serialize(items)
		want := `<hits of="lo">a</hits> <hits of="hi">c</hits>`
		if got != want {
			t.Errorf("%v:\n got  %s\nwant %s", strat, got, want)
		}
	}
	// select-wide picks up the straddling annotation for both ranges.
	q2 := `for $r in doc("d.xml")//range
	       return count($r/select-wide::p)`
	items, err := h.run(t, q2, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(items); got != "2 2" {
		t.Fatalf("select-wide counts = %q, want 2 2", got)
	}
}

// TestStandOffOptionsPreamble: custom attribute names via declare option.
func TestStandOffOptionsPreamble(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<doc><w from="0" to="100"/><x from="10" to="20"/></doc>`)
	q := `declare option standoff-start "from";
	      declare option standoff-end "to";
	      for $r in doc("d.xml")//w/select-narrow::x return name($r)`
	items, err := h.run(t, q, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(items) != "x" {
		t.Fatalf("custom names = %q", serialize(items))
	}
	// Prefixed option names are matched on the local name.
	q2 := `declare namespace so = "http://w3c.org/tr/standoff/";
	       declare option so:standoff-start "from";
	       declare option so:standoff-end "to";
	       count(doc("d.xml")//w/select-wide::x)`
	items, err = h.run(t, q2, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(items) != "1" {
		t.Fatalf("prefixed options = %q", serialize(items))
	}
}

// TestRegionElementsAndBlobText: the element representation of regions
// (non-contiguous areas) plus the so:blob-text extension.
func TestRegionElementsAndBlobText(t *testing.T) {
	h := newHarness()
	d := h.addDoc(t, "fs.xml", `<image>
	  <file name="secret.txt">
	    <region><start>0</start><end>4</end></region>
	    <region><start>10</start><end>14</end></region>
	  </file>
	  <hit term="hello">
	    <region><start>10</start><end>14</end></region>
	  </hit>
	</image>`)
	h.blobs[d] = blob.FromString("HELLO.....world.....")
	pre := `declare option standoff-region "region";
`
	q := pre + `for $f in doc("fs.xml")//file
	            where count($f/select-narrow::hit) > 0
	            return so:blob-text($f)`
	items, err := h.run(t, q, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(items); got != "HELLOworld" {
		t.Fatalf("blob-text = %q, want HELLOworld (fragmented file reassembly)", got)
	}
	// so:regions and so:start/so:end.
	q2 := pre + `for $r in so:regions(doc("fs.xml")//file) return string($r/@start)`
	items, err = h.run(t, q2, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(items); got != "0 10" {
		t.Fatalf("so:regions starts = %q", got)
	}
	q3 := pre + `(so:start(doc("fs.xml")//file), so:end(doc("fs.xml")//file))`
	items, err = h.run(t, q3, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(items); got != "0 14" {
		t.Fatalf("so:start/end = %q", got)
	}
}

// TestStrategiesAgreeOnRandomQueries is the end-to-end equivalence property:
// random stand-off documents, queried through full XQuery with all three
// strategies (and the heap ablation), must agree.
func TestStrategiesAgreeOnRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	queryTemplates := []string{
		`for $c in doc("r.xml")//%s return count($c/select-narrow::%s)`,
		`for $c in doc("r.xml")//%s return count($c/select-wide::%s)`,
		`for $c in doc("r.xml")//%s return count($c/reject-narrow::%s)`,
		`for $c in doc("r.xml")//%s return count($c/reject-wide::%s)`,
		`count(doc("r.xml")//%s/select-narrow::%s)`,
		`count(so:select-wide(doc("r.xml")//%s, doc("r.xml")//%s))`,
	}
	names := []string{"a", "b", "c"}
	for round := 0; round < 12; round++ {
		var sb strings.Builder
		sb.WriteString("<doc>")
		for i := 0; i < 3+rng.Intn(25); i++ {
			s := rng.Intn(150)
			e := s + rng.Intn(60)
			fmt.Fprintf(&sb, `<%s start="%d" end="%d"/>`, names[rng.Intn(len(names))], s, e)
		}
		sb.WriteString("</doc>")
		h := newHarness()
		h.addDoc(t, "r.xml", sb.String())
		for _, tmpl := range queryTemplates {
			q := fmt.Sprintf(tmpl, names[rng.Intn(len(names))], names[rng.Intn(len(names))])
			ref, err := h.run(t, q, core.StrategyNaive)
			if err != nil {
				t.Fatalf("naive %s: %v", q, err)
			}
			for _, strat := range []core.Strategy{core.StrategyBasic, core.StrategyLoopLifted} {
				got, err := h.run(t, q, strat)
				if err != nil {
					t.Fatalf("%v %s: %v", strat, q, err)
				}
				if serialize(got) != serialize(ref) {
					t.Fatalf("round %d: %v(%s) = %q, naive = %q\ndoc: %s",
						round, strat, q, serialize(got), serialize(ref), sb.String())
				}
			}
		}
	}
}

// TestPushdownEquivalence: with and without candidate pushdown the results
// must match (section 3.3's optimizer argument is about speed, not
// semantics).
func TestPushdownEquivalence(t *testing.T) {
	h := figure1Harness(t)
	q := timecodePreamble + `for $s in doc("sample.xml")//music/select-wide::shot return string($s/@id)`
	withPD, err := h.run(t, q, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run with pushdown disabled.
	plan, err := h.compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ev := h.newEvaluator(plan, core.StrategyLoopLifted)
	ev.Pushdown = false
	noPD, err := ev.Run()
	if err != nil {
		t.Fatal(err)
	}
	if serialize(withPD) != serialize(noPD) {
		t.Fatalf("pushdown %q != post-filter %q", serialize(withPD), serialize(noPD))
	}
}

// TestRejectIsSequenceAntiJoin pins the section 3.1 semantics: reject steps
// are anti-joins over the WHOLE context sequence, not a union of per-node
// complements.
func TestRejectIsSequenceAntiJoin(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<doc>
	  <a n="a1" start="0" end="10"/>
	  <a n="a2" start="20" end="30"/>
	  <b n="b1" start="5" end="8"/>
	  <b n="b2" start="25" end="28"/>
	  <b n="b3" start="50" end="60"/>
	</doc>`)
	for _, strat := range []core.Strategy{core.StrategyNaive, core.StrategyBasic, core.StrategyLoopLifted} {
		// Both a's in ONE context sequence: only b3 escapes containment.
		items, err := h.run(t, `for $r in doc("d.xml")//a/reject-narrow::b return string($r/@n)`, strat)
		if err != nil {
			t.Fatal(err)
		}
		if got := serialize(items); got != "b3" {
			t.Errorf("%v: reject-narrow over sequence = %q, want b3 (anti-join, not per-node union)", strat, got)
		}
		// Per-iteration contexts: each a rejects separately.
		items, err = h.run(t, `for $a in doc("d.xml")//a return count($a/reject-narrow::b)`, strat)
		if err != nil {
			t.Fatal(err)
		}
		if got := serialize(items); got != "2 2" {
			t.Errorf("%v: per-iteration reject counts = %q, want 2 2", strat, got)
		}
		// Built-in function form agrees with the axis form.
		items, err = h.run(t, `for $r in so:reject-wide(doc("d.xml")//a, doc("d.xml")//b) return string($r/@n)`, strat)
		if err != nil {
			t.Fatal(err)
		}
		if got := serialize(items); got != "b3" {
			t.Errorf("%v: so:reject-wide = %q, want b3", strat, got)
		}
	}
}

// TestRejectEmptyContextIteration: an iteration whose context sequence is
// empty yields an empty step result (XPath semantics), even though the bare
// operator over an empty S1 would return all of S2.
func TestRejectEmptyContextIteration(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<doc><a n="a1" start="0" end="10"/><b start="50" end="60"/></doc>`)
	items, err := h.run(t, `for $x in (1, 2) return count(doc("d.xml")//a[@n = "zzz"]/reject-narrow::b)`, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(items); got != "0 0" {
		t.Fatalf("empty-context reject = %q, want 0 0", got)
	}
}

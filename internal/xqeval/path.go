package xqeval

import (
	"time"

	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
	"soxq/internal/xqplan"
)

// evalPath evaluates a path expression: establish the starting context, then
// apply the path's compiled step program in bulk across all iterations, with
// per-iteration document-order deduplication after every step (XPath
// semantics, and the contract of the StandOff steps in section 3.2). The //
// fusion, name tests and stand-off decisions were all made at compile time;
// this function only executes them.
func (ev *Evaluator) evalPath(p *xqast.Path, f *frame) (LLSeq, error) {
	cur, err := ev.pathStart(p, f)
	if err != nil {
		return LLSeq{}, err
	}
	for _, sp := range ev.Plan.Program(p) {
		cur, err = ev.evalStep(sp, cur, f)
		if err != nil {
			return LLSeq{}, err
		}
	}
	ev.Stats.RecordOp(p, 0, int64(cur.Total()))
	return cur, nil
}

// pathStart establishes the starting context of a path: the start expression
// (or the frame's context item), hoisted to the document root for absolute
// paths.
func (ev *Evaluator) pathStart(p *xqast.Path, f *frame) (LLSeq, error) {
	var cur LLSeq
	if p.Start != nil {
		s, err := ev.eval(p.Start, f)
		if err != nil {
			return LLSeq{}, err
		}
		cur = s
	} else {
		if f.ctx == nil {
			return LLSeq{}, errf(codeNoContext, "path expression needs a context item")
		}
		cur = ev.scrMaterialize(f.ctx)
	}
	if p.Absolute {
		b := newLLBuilder(f.n)
		for i := 0; i < f.n; i++ {
			g := cur.Group(i)
			items := make([]Item, 0, len(g))
			for _, it := range g {
				if !it.IsNode() {
					return LLSeq{}, errf(codeType, "cannot take the root of an atomic value")
				}
				items = append(items, NodeItem(it.D, 0))
			}
			b.add(sortDedupNodes(items)...)
		}
		cur = b.done()
	}
	return cur, nil
}

// evalFilter evaluates E[p1][p2]... — predicates over an arbitrary sequence.
func (ev *Evaluator) evalFilter(v *xqast.Filter, f *frame) (LLSeq, error) {
	cur, err := ev.eval(v.Base, f)
	if err != nil {
		return LLSeq{}, err
	}
	rowsIn := int64(cur.Total())
	for _, pred := range v.Predicates {
		cur, err = ev.applyPredicate(cur, pred, f, false)
		if err != nil {
			return LLSeq{}, err
		}
	}
	ev.Stats.RecordOp(v, rowsIn, int64(cur.Total()))
	return cur, nil
}

// stepRow is one context node of a step with its originating iteration.
type stepRow struct {
	iter int32
	item Item
}

// evalStep applies one compiled axis step to the context sequence.
func (ev *Evaluator) evalStep(sp *xqplan.StepPlan, ctx LLSeq, f *frame) (LLSeq, error) {
	// Flatten the context. For forward and select steps every context node
	// becomes one "inner iteration" so positional predicates see
	// per-context-node positions; the union of per-node results equals the
	// sequence-level semi-join. The reject steps are anti-joins over the
	// *whole* context sequence of an iteration (section 3.1: "not
	// contained in ANY area-annotation in S1"), so there the group is the
	// iteration itself — a union of per-node complements would be wrong.
	perIteration := sp.Axis == xpath.AxisRejectNarrow || sp.Axis == xpath.AxisRejectWide
	if !perIteration && !sp.StandOff && len(sp.Predicates) == 0 {
		return ev.evalStepTreeFast(sp, ctx)
	}
	rows := make([]stepRow, 0, ctx.Total())
	if perIteration {
		for i := 0; i < ctx.N(); i++ {
			rows = append(rows, stepRow{iter: int32(i)})
		}
		for i := 0; i < ctx.N(); i++ {
			for _, it := range ctx.Group(i) {
				if !it.IsNode() {
					return LLSeq{}, errf(codeType, "axis step applied to an atomic value")
				}
			}
		}
	} else {
		for i := 0; i < ctx.N(); i++ {
			for _, it := range ctx.Group(i) {
				if !it.IsNode() {
					return LLSeq{}, errf(codeType, "axis step applied to an atomic value")
				}
				rows = append(rows, stepRow{iter: int32(i), item: it})
			}
		}
	}
	var results [][]Item
	var err error
	if sp.StandOff {
		if perIteration {
			results, err = ev.standOffRejectStep(sp, ctx)
		} else {
			results, err = ev.standOffStep(sp, rows)
		}
	} else {
		results, err = ev.treeStep(sp, rows)
	}
	if err != nil {
		return LLSeq{}, err
	}
	// Predicates, evaluated per context node group.
	for _, pred := range sp.Predicates {
		results, err = ev.applyStepPredicate(results, rows, pred, f, sp.Axis.Reverse())
		if err != nil {
			return LLSeq{}, err
		}
	}
	// Merge per original iteration, dedup in document order.
	b := newLLBuilder(ctx.N())
	r := 0
	for i := 0; i < ctx.N(); i++ {
		var items []Item
		for r < len(rows) && rows[r].iter == int32(i) {
			items = append(items, results[r]...)
			r++
		}
		b.add(sortDedupNodes(items)...)
	}
	out := b.done()
	ev.Stats.RecordStep(sp, int64(ctx.Total()), int64(out.Total()))
	return out, nil
}

// evalStepTreeFast is the predicate-free tree-axis step: matches are written
// straight into the output items buffer — no per-row result slices, no
// stepRow table — and each iteration's segment is sort-deduped in place. The
// per-row pre scratch lives on the evaluator (the loop below never re-enters
// eval, so the buffer cannot be in use twice).
func (ev *Evaluator) evalStepTreeFast(sp *xqplan.StepPlan, ctx LLSeq) (LLSeq, error) {
	// The output buffers come from the scoped arena during streaming runs (a
	// builder loan — its reclaim reads the final headers, so growth past the
	// context-size hint is safe); the builder is only used as a buffer pair,
	// the segments below are written directly.
	ob := ev.scrBuilderCap(ctx.N(), ctx.Total())
	out := ob.seq
	for i := 0; i < ctx.N(); i++ {
		segStart := len(out.Items)
		for _, it := range ctx.Group(i) {
			switch {
			case it.Kind == KAttr:
				res, err := attrSourceStep(sp, it)
				if err != nil {
					return LLSeq{}, err
				}
				out.Items = append(out.Items, res...)
			case !it.IsNode():
				return LLSeq{}, errf(codeType, "axis step applied to an atomic value")
			case sp.Axis == xpath.AxisAttribute:
				out.Items = appendAttrAxis(out.Items, it, sp.Test)
			default:
				ev.stepPres = xpath.AppendCompiledStep(ev.stepPres[:0], it.D, sp.Axis, sp.CompiledTest(it.D), it.Pre)
				for _, p := range ev.stepPres {
					out.Items = append(out.Items, NodeItem(it.D, p))
				}
			}
		}
		seg := sortDedupNodes(out.Items[segStart:])
		out.Items = out.Items[:segStart+len(seg)]
		out.Off = append(out.Off, int32(len(out.Items)))
	}
	ob.seq = out // write the final headers back so the reclaim sees growth
	ev.Stats.RecordStep(sp, int64(ctx.Total()), int64(len(out.Items)))
	return out, nil
}

// strategyFor resolves the join strategy of one StandOff step against one
// region index and the context cardinality this execution observed
// (iterations × context nodes — the second input of cost model v2): a
// forced engine strategy (the benchmarking modes) always wins; StrategyAuto
// defers to the step's memoized cost-model choice.
func (ev *Evaluator) strategyFor(sp *xqplan.StepPlan, ix *core.RegionIndex, ctxRows int) core.Strategy {
	if ev.Strategy != core.StrategyAuto {
		return ev.Strategy
	}
	return sp.StrategyFor(ix, ev.Pushdown, ctxRows, ev.Cal)
}

// statsNow and statsSince time a join only when an ANALYZE collector is
// attached — the plain execution paths pay a nil check, not a clock read.
func statsNow(st *xqplan.ExecStats) time.Time {
	if st == nil {
		return time.Time{}
	}
	return time.Now()
}

func statsSince(st *xqplan.ExecStats, t0 time.Time) int64 {
	if st == nil {
		return 0
	}
	return time.Since(t0).Nanoseconds()
}

// countJoin feeds the always-on per-algorithm join counter. Called at every
// core.Join call site (bulk and chunked, select and reject side), so the
// counters reflect join invocations actually run — one atomic add each.
func (ev *Evaluator) countJoin(strat core.Strategy) {
	m := ev.Met
	if m == nil {
		return
	}
	switch strat {
	case core.StrategyBasic:
		m.JoinBasic.Inc()
	case core.StrategyLoopLifted:
		m.JoinLoopLifted.Inc()
	default:
		m.JoinNaive.Inc()
	}
}

// treeStep evaluates a standard axis per context node, using the step's
// per-document pre-compiled node test.
func (ev *Evaluator) treeStep(sp *xqplan.StepPlan, rows []stepRow) ([][]Item, error) {
	results := make([][]Item, len(rows))
	for r, row := range rows {
		it := row.item
		if it.Kind == KAttr {
			res, err := attrSourceStep(sp, it)
			if err != nil {
				return nil, err
			}
			results[r] = res
			continue
		}
		if sp.Axis == xpath.AxisAttribute {
			results[r] = attrAxis(it, sp.Test)
			continue
		}
		pres := xpath.CompiledStep(it.D, sp.Axis, sp.CompiledTest(it.D), it.Pre)
		if len(pres) == 0 {
			continue
		}
		items := make([]Item, len(pres))
		for k, p := range pres {
			items[k] = NodeItem(it.D, p)
		}
		results[r] = items
	}
	return results, nil
}

// attrAxis returns the matching attribute nodes of an element.
func attrAxis(it Item, test xpath.Test) []Item {
	return appendAttrAxis(nil, it, test)
}

// appendAttrAxis appends the matching attribute nodes of an element to dst.
func appendAttrAxis(dst []Item, it Item, test xpath.Test) []Item {
	if it.D.Kind(it.Pre) != tree.ElementNode {
		return dst
	}
	if test.Kind != xpath.TestAttribute && test.Kind != xpath.TestAnyNode {
		return dst
	}
	lo, hi := it.D.Attrs(it.Pre)
	for a := lo; a < hi; a++ {
		if test.Name == "" || it.D.AttrName(a) == test.Name {
			dst = append(dst, AttrItem(it.D, it.Pre, a))
		}
	}
	return dst
}

// attrSourceStep evaluates the few axes that make sense from an attribute
// node context.
func attrSourceStep(sp *xqplan.StepPlan, it Item) ([]Item, error) {
	c := sp.CompiledTest(it.D)
	switch sp.Axis {
	case xpath.AxisParent:
		if c.Matches(it.D, it.Pre) {
			return []Item{NodeItem(it.D, it.Pre)}, nil
		}
		return nil, nil
	case xpath.AxisAncestor, xpath.AxisAncestorOrSelf:
		var out []Item
		pres := xpath.CompiledStep(it.D, xpath.AxisAncestorOrSelf, c, it.Pre)
		for _, p := range pres {
			out = append(out, NodeItem(it.D, p))
		}
		if sp.Axis == xpath.AxisAncestorOrSelf && sp.Test.Kind == xpath.TestAnyNode {
			out = append(out, it)
		}
		return out, nil
	case xpath.AxisSelf:
		if sp.Test.Kind == xpath.TestAnyNode ||
			(sp.Test.Kind == xpath.TestAttribute && (sp.Test.Name == "" || it.D.AttrName(it.Att) == sp.Test.Name)) {
			return []Item{it}, nil
		}
		return nil, nil
	default:
		// child/descendant/sibling/... of an attribute: empty.
		return nil, nil
	}
}

// standOffStep evaluates one of the four StandOff axes: partition the
// context per document fragment (section 4.4), run the step's join strategy
// against each document's region index, and map the (iter, pre) pairs back
// to items.
func (ev *Evaluator) standOffStep(sp *xqplan.StepPlan, rows []stepRow) ([][]Item, error) {
	if ev.IndexFor == nil {
		return nil, errf(codeStandOffIndex, "no region index provider configured")
	}
	op := sp.SO.Op
	results := make([][]Item, len(rows))

	// Partition context rows by document.
	byDoc := map[*tree.Doc][]core.CtxNode{}
	var docs []*tree.Doc
	for r, row := range rows {
		it := row.item
		if it.Kind != KNode { // attributes are never area-annotations
			continue
		}
		if _, seen := byDoc[it.D]; !seen {
			docs = append(docs, it.D)
		}
		byDoc[it.D] = append(byDoc[it.D], core.CtxNode{Iter: int32(r), Pre: it.Pre})
	}
	for _, d := range docs {
		ix, err := ev.IndexFor(d)
		if err != nil {
			return nil, errf(codeStandOffIndex, "building region index for %q: %v", d.Name, err)
		}
		cand, postFilter := ev.candidatesFor(ix, sp.SO)
		if cand == nil {
			continue // the test can never match an area-annotation
		}
		// ctxRows for the cost model is the iteration count the join runs
		// over — the Basic variant re-scans the candidate sequence once per
		// iteration, empty iterations included.
		strat := ev.strategyFor(sp, ix, len(rows))
		t0 := statsNow(ev.Stats)
		pairs := core.Join(ix, op, strat, byDoc[d], int32(len(rows)), cand, ev.JoinCfg)
		ev.countJoin(strat)
		ev.Stats.RecordJoin(sp, int64(cand.Len()), strat, int64(len(rows)), statsSince(ev.Stats, t0))
		var test xpath.Compiled
		if postFilter {
			test = sp.CompiledTest(d)
		}
		for _, pr := range pairs {
			if postFilter && !test.Matches(d, pr.Pre) {
				continue
			}
			results[pr.Iter] = append(results[pr.Iter], NodeItem(d, pr.Pre))
		}
	}
	return results, nil
}

// standOffRejectStep evaluates reject-narrow/reject-wide at iteration
// granularity: one anti-join per iteration over all its context nodes.
func (ev *Evaluator) standOffRejectStep(sp *xqplan.StepPlan, ctx LLSeq) ([][]Item, error) {
	if ev.IndexFor == nil {
		return nil, errf(codeStandOffIndex, "no region index provider configured")
	}
	op := sp.SO.Op
	results := make([][]Item, ctx.N())

	// Partition context nodes by document; the anti-join runs per document
	// fragment against that document's candidates (section 4.4). An
	// iteration with no context node in some document still rejects "all
	// candidates" of documents it touches; candidates of untouched
	// documents are out of scope, mirroring that XPath steps only return
	// nodes from the documents of their context nodes.
	byDoc := map[*tree.Doc][]core.CtxNode{}
	iterTouches := map[*tree.Doc][]bool{}
	var docs []*tree.Doc
	for i := 0; i < ctx.N(); i++ {
		for _, it := range ctx.Group(i) {
			if it.Kind != KNode {
				continue
			}
			if _, seen := byDoc[it.D]; !seen {
				docs = append(docs, it.D)
				iterTouches[it.D] = make([]bool, ctx.N())
			}
			byDoc[it.D] = append(byDoc[it.D], core.CtxNode{Iter: int32(i), Pre: it.Pre})
			iterTouches[it.D][i] = true
		}
	}
	for _, d := range docs {
		ix, err := ev.IndexFor(d)
		if err != nil {
			return nil, errf(codeStandOffIndex, "building region index for %q: %v", d.Name, err)
		}
		cand, postFilter := ev.candidatesFor(ix, sp.SO)
		if cand == nil {
			continue
		}
		strat := ev.strategyFor(sp, ix, ctx.N())
		t0 := statsNow(ev.Stats)
		pairs := core.Join(ix, op, strat, byDoc[d], int32(ctx.N()), cand, ev.JoinCfg)
		ev.countJoin(strat)
		ev.Stats.RecordJoin(sp, int64(cand.Len()), strat, int64(ctx.N()), statsSince(ev.Stats, t0))
		var test xpath.Compiled
		if postFilter {
			test = sp.CompiledTest(d)
		}
		for _, pr := range pairs {
			if !iterTouches[d][pr.Iter] {
				continue // iteration has no context node in this document
			}
			if postFilter && !test.Matches(d, pr.Pre) {
				continue
			}
			results[pr.Iter] = append(results[pr.Iter], NodeItem(d, pr.Pre))
		}
	}
	return results, nil
}

// candidatesFor materialises the candidate sequence for a StandOff step
// whose policy was decided at compile time (section 3.3, xqplan.Decide).
// Only the element-name to name-id resolution happens here, because it is
// per-document. A nil result means the step is statically or dynamically
// empty (the test can never match, or the name does not occur in this
// document).
func (ev *Evaluator) candidatesFor(ix *core.RegionIndex, so xqplan.SOStep) (*core.Candidates, bool) {
	switch so.Policy(ev.Pushdown) {
	case xqplan.CandAll:
		return ix.All(), false
	case xqplan.CandAllFiltered:
		return ix.All(), true
	case xqplan.CandByName:
		id, ok := ix.Doc().Dict().Lookup(so.Name)
		if !ok {
			return nil, false
		}
		return ix.FilterByName(id), false
	default: // CandImpossible: text()/comment()/... never match elements
		return nil, false
	}
}

// applyStepPredicate filters step results with one predicate. Each result
// node is an inner iteration whose context item is the node, position() its
// 1-based index within its context-node group (reversed for reverse axes),
// and last() the group size.
func (ev *Evaluator) applyStepPredicate(results [][]Item, rows []stepRow, pred xqast.Expr, f *frame, reverse bool) ([][]Item, error) {
	total := 0
	for _, g := range results {
		total += len(g)
	}
	rowIters := make([]int32, 0, total) // inner iteration -> frame iteration
	ctxSeq := LLSeq{Off: make([]int32, 1, total+1)}
	pos := make([]int64, 0, total)
	last := make([]int64, 0, total)
	for r, g := range results {
		for k, it := range g {
			rowIters = append(rowIters, rows[r].iter)
			ctxSeq.Items = append(ctxSeq.Items, it)
			ctxSeq.Off = append(ctxSeq.Off, int32(len(ctxSeq.Items)))
			p := int64(k + 1)
			if reverse {
				p = int64(len(g) - k)
			}
			pos = append(pos, p)
			last = append(last, int64(len(g)))
		}
	}
	// Lift the outer frame into the inner iterations so predicates can use
	// enclosing variables.
	frameMap := make([]int32, total)
	copy(frameMap, rowIters)
	nf := f.expand(frameMap)
	nf.ctx = newBinding(ctxSeq)
	nf.pos = pos
	nf.last = last

	verdicts, err := ev.eval(pred, nf)
	if err != nil {
		return nil, err
	}
	out := make([][]Item, len(results))
	j := 0
	for r, g := range results {
		for _, it := range g {
			keep, err := predicateKeep(verdicts.Group(j), pos[j])
			if err != nil {
				return nil, err
			}
			if keep {
				out[r] = append(out[r], it)
			}
			j++
		}
	}
	return out, nil
}

// applyPredicate filters a plain filter expression E[pred] per iteration.
func (ev *Evaluator) applyPredicate(cur LLSeq, pred xqast.Expr, f *frame, reverse bool) (LLSeq, error) {
	total := cur.Total()
	outerOf := make([]int32, 0, total)
	ctxSeq := LLSeq{Off: make([]int32, 1, total+1)}
	pos := make([]int64, 0, total)
	last := make([]int64, 0, total)
	for i := 0; i < cur.N(); i++ {
		g := cur.Group(i)
		for k, it := range g {
			outerOf = append(outerOf, int32(i))
			ctxSeq.Items = append(ctxSeq.Items, it)
			ctxSeq.Off = append(ctxSeq.Off, int32(len(ctxSeq.Items)))
			p := int64(k + 1)
			if reverse {
				p = int64(len(g) - k)
			}
			pos = append(pos, p)
			last = append(last, int64(len(g)))
		}
	}
	nf := f.expand(outerOf)
	nf.ctx = newBinding(ctxSeq)
	nf.pos = pos
	nf.last = last
	verdicts, err := ev.eval(pred, nf)
	if err != nil {
		return LLSeq{}, err
	}
	b := newLLBuilder(cur.N())
	j := 0
	for i := 0; i < cur.N(); i++ {
		var items []Item
		for range cur.Group(i) {
			keep, err := predicateKeep(verdicts.Group(j), pos[j])
			if err != nil {
				return LLSeq{}, err
			}
			if keep {
				items = append(items, ctxSeq.Items[j])
			}
			j++
		}
		b.add(items...)
	}
	return b.done(), nil
}

// predicateKeep decides a predicate verdict: a numeric singleton is a
// position test, anything else goes through the effective boolean value.
func predicateKeep(verdict []Item, position int64) (bool, error) {
	if len(verdict) == 1 && isNumeric(verdict[0]) {
		num, _ := verdict[0].NumericValue()
		return num == float64(position), nil
	}
	return ebv(verdict)
}

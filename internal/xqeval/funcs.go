package xqeval

import (
	"math"
	"strings"

	"soxq/internal/blob"
	"soxq/internal/core"
	"soxq/internal/interval"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
	"soxq/internal/xqplan"
)

// evalCall dispatches function calls: the stand-off built-ins (Alternative 3
// of section 3.2), user-declared functions, and the fn: library.
func (ev *Evaluator) evalCall(v *xqast.FuncCall, f *frame) (LLSeq, error) {
	local := v.Name
	if i := strings.IndexByte(local, ':'); i >= 0 {
		local = local[i+1:]
	}
	// User-defined functions win on exact QName+arity.
	if fd, ok := ev.Plan.Function(v.Name, len(v.Args)); ok {
		return ev.callUDF(fd, v.Args, f)
	}
	// StandOff built-ins (so:select-narrow etc., with or without candidate
	// sequence).
	if op, isSO := standOffFuncs[local]; isSO && (len(v.Args) == 1 || len(v.Args) == 2) {
		return ev.callStandOffFunc(op, v.Args, f)
	}
	args := make([]LLSeq, len(v.Args))
	for i, a := range v.Args {
		seq, err := ev.eval(a, f)
		if err != nil {
			return LLSeq{}, err
		}
		args[i] = seq
	}
	return ev.callBuiltin(v.Name, local, args, f)
}

var standOffFuncs = map[string]core.Op{
	"select-narrow": core.SelectNarrow,
	"select-wide":   core.SelectWide,
	"reject-narrow": core.RejectNarrow,
	"reject-wide":   core.RejectWide,
}

// callStandOffFunc implements the built-in function form of the StandOff
// joins. With one argument the candidates are all area-annotations of the
// context nodes' documents; with two, the second argument restricts them.
func (ev *Evaluator) callStandOffFunc(op core.Op, argExprs []xqast.Expr, f *frame) (LLSeq, error) {
	input, err := ev.eval(argExprs[0], f)
	if err != nil {
		return LLSeq{}, err
	}
	var candidates *LLSeq
	if len(argExprs) == 2 {
		c, err := ev.eval(argExprs[1], f)
		if err != nil {
			return LLSeq{}, err
		}
		candidates = &c
	}
	axis := map[core.Op]xpath.Axis{
		core.SelectNarrow: xpath.AxisSelectNarrow, core.SelectWide: xpath.AxisSelectWide,
		core.RejectNarrow: xpath.AxisRejectNarrow, core.RejectWide: xpath.AxisRejectWide,
	}[op]
	// The function form is an unrestricted axis step synthesised at run
	// time; CompileStep gives it the same compiled form module steps get.
	sp := xqplan.CompileStep(&xqast.Step{Axis: axis, Test: xpath.Test{Kind: xpath.TestAnyNode}})
	if candidates == nil {
		return ev.evalStep(sp, input, f)
	}
	// Candidate-sequence form: run the step unrestricted, then intersect
	// with the candidate node set per iteration (the node sets are small
	// compared to the index side, and semantics stay exact).
	full, err := ev.evalStep(sp, input, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		cg := append([]Item{}, candidates.Group(i)...)
		for _, it := range cg {
			if !it.IsNode() {
				return LLSeq{}, errf(codeType, "candidate sequence contains an atomic value")
			}
		}
		cs := sortDedupNodes(cg)
		var out []Item
		for _, it := range full.Group(i) {
			if containsNode(cs, it) {
				out = append(out, it)
			}
		}
		b.add(out...)
	}
	return b.done(), nil
}

// callUDF evaluates a user-defined function loop-lifted: arguments become
// parameter bindings and the body is evaluated once for all iterations.
// Recursion terminates because if-partitioning skips empty branches.
func (ev *Evaluator) callUDF(fd *xqast.FunctionDecl, argExprs []xqast.Expr, f *frame) (LLSeq, error) {
	if ev.depth >= ev.MaxRecursion {
		return LLSeq{}, errf(codeRecursion, "recursion depth %d exceeded in %s", ev.MaxRecursion, fd.Name)
	}
	nf := newFrame(f.n)
	nf.vars = make([]varBind, 0, len(fd.Params))
	for i, p := range fd.Params {
		seq, err := ev.eval(argExprs[i], f)
		if err != nil {
			return LLSeq{}, err
		}
		nf.vars = append(nf.vars, varBind{p, newBinding(seq)})
	}
	ev.depth++
	out, err := ev.eval(fd.Body, nf)
	ev.depth--
	return out, err
}

// callBuiltin evaluates a built-in function on pre-evaluated arguments.
func (ev *Evaluator) callBuiltin(name, local string, args []LLSeq, f *frame) (LLSeq, error) {
	arity := len(args)
	bad := func() (LLSeq, error) {
		return LLSeq{}, errf(codeUndefFunc, "unknown function %s#%d", name, arity)
	}
	b := newLLBuilder(f.n)
	switch local {
	case "true":
		if arity != 0 {
			return bad()
		}
		return constLL(f.n, Bool(true)), nil
	case "false":
		if arity != 0 {
			return bad()
		}
		return constLL(f.n, Bool(false)), nil
	case "position":
		if arity != 0 {
			return bad()
		}
		if f.pos == nil {
			return LLSeq{}, errf(codeNoContext, "position() outside a predicate or path step")
		}
		for i := 0; i < f.n; i++ {
			b.add(Int(f.pos[i]))
		}
		return b.done(), nil
	case "last":
		if arity != 0 {
			return bad()
		}
		if f.last == nil {
			return LLSeq{}, errf(codeNoContext, "last() outside a predicate or path step")
		}
		for i := 0; i < f.n; i++ {
			b.add(Int(f.last[i]))
		}
		return b.done(), nil
	case "doc":
		if arity != 1 {
			return bad()
		}
		if ev.Resolver == nil {
			return LLSeq{}, errf(codeDocNotFound, "no document resolver configured")
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			if len(g) == 0 {
				b.add()
				continue
			}
			uri := g[0].StringValue()
			d, err := ev.Resolver(uri)
			if err != nil {
				return LLSeq{}, errf(codeDocNotFound, "doc(%q): %v", uri, err)
			}
			b.add(NodeItem(d, 0))
		}
		return b.done(), nil
	case "root":
		if arity > 1 {
			return bad()
		}
		src := ev.contextOrArg(args, f)
		if src == nil {
			return LLSeq{}, errf(codeNoContext, "root() needs a context item")
		}
		for i := 0; i < f.n; i++ {
			var out []Item
			for _, it := range src.Group(i) {
				if !it.IsNode() {
					return LLSeq{}, errf(codeType, "root() of an atomic value")
				}
				out = append(out, NodeItem(it.D, 0))
			}
			b.add(sortDedupNodes(out)...)
		}
		return b.done(), nil
	case "count":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			b.add(Int(int64(len(args[0].Group(i)))))
		}
		return b.done(), nil
	case "empty", "exists":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			e := len(args[0].Group(i)) == 0
			if local == "exists" {
				e = !e
			}
			b.add(Bool(e))
		}
		return b.done(), nil
	case "not", "boolean":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			bv, err := ebv(args[0].Group(i))
			if err != nil {
				return LLSeq{}, err
			}
			if local == "not" {
				bv = !bv
			}
			b.add(Bool(bv))
		}
		return b.done(), nil
	case "string":
		if arity > 1 {
			return bad()
		}
		src := ev.contextOrArg(args, f)
		if src == nil {
			return LLSeq{}, errf(codeNoContext, "string() needs a context item")
		}
		return mapSingleton(*src, f.n, true, func(it Item) (Item, error) {
			return Str(it.StringValue()), nil
		})
	case "data":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			out := make([]Item, len(g))
			for k, it := range g {
				out[k] = it.Atomize()
			}
			b.add(out...)
		}
		return b.done(), nil
	case "number":
		if arity > 1 {
			return bad()
		}
		src := ev.contextOrArg(args, f)
		if src == nil {
			return LLSeq{}, errf(codeNoContext, "number() needs a context item")
		}
		return mapSingleton(*src, f.n, false, func(it Item) (Item, error) {
			v, _ := it.NumericValue()
			return Float(v), nil
		})
	case "name", "local-name":
		if arity > 1 {
			return bad()
		}
		src := ev.contextOrArg(args, f)
		if src == nil {
			return LLSeq{}, errf(codeNoContext, "%s() needs a context item", local)
		}
		for i := 0; i < f.n; i++ {
			g := src.Group(i)
			if len(g) == 0 {
				b.add(Str("")) // fn:name(()) is ""
				continue
			}
			if len(g) > 1 {
				return LLSeq{}, errf(codeType, "%s() on a sequence of %d items", local, len(g))
			}
			var n string
			switch it := g[0]; it.Kind {
			case KNode:
				n = it.D.NodeName(it.Pre)
			case KAttr:
				n = it.D.AttrName(it.Att)
			default:
				return LLSeq{}, errf(codeType, "%s() on an atomic value", local)
			}
			if local == "local-name" {
				if i := strings.IndexByte(n, ':'); i >= 0 {
					n = n[i+1:]
				}
			}
			b.add(Str(n))
		}
		return b.done(), nil
	case "concat":
		if arity < 2 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			var sb strings.Builder
			for _, a := range args {
				g := a.Group(i)
				if len(g) > 1 {
					return LLSeq{}, errf(codeType, "concat() argument is a sequence")
				}
				if len(g) == 1 {
					sb.WriteString(g[0].StringValue())
				}
			}
			b.add(Str(sb.String()))
		}
		return b.done(), nil
	case "string-join":
		if arity != 2 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			sep := ""
			if g := args[1].Group(i); len(g) == 1 {
				sep = g[0].StringValue()
			}
			parts := make([]string, 0, len(args[0].Group(i)))
			for _, it := range args[0].Group(i) {
				parts = append(parts, it.StringValue())
			}
			b.add(Str(strings.Join(parts, sep)))
		}
		return b.done(), nil
	case "contains", "starts-with", "ends-with":
		if arity != 2 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			s := optString(args[0].Group(i))
			t := optString(args[1].Group(i))
			var r bool
			switch local {
			case "contains":
				r = strings.Contains(s, t)
			case "starts-with":
				r = strings.HasPrefix(s, t)
			default:
				r = strings.HasSuffix(s, t)
			}
			b.add(Bool(r))
		}
		return b.done(), nil
	case "substring":
		if arity != 2 && arity != 3 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			s := []rune(optString(args[0].Group(i)))
			startF, _ := singletonFloat(args[1].Group(i))
			length := math.Inf(1)
			if arity == 3 {
				length, _ = singletonFloat(args[2].Group(i))
			}
			start := int(math.Round(startF))
			lo := start - 1
			hi := len(s)
			if !math.IsInf(length, 1) {
				hi = start - 1 + int(math.Round(length))
			}
			if lo < 0 {
				lo = 0
			}
			if hi > len(s) {
				hi = len(s)
			}
			if lo >= hi {
				b.add(Str(""))
				continue
			}
			b.add(Str(string(s[lo:hi])))
		}
		return b.done(), nil
	case "string-length":
		if arity > 1 {
			return bad()
		}
		src := ev.contextOrArg(args, f)
		if src == nil {
			return LLSeq{}, errf(codeNoContext, "string-length() needs a context item")
		}
		for i := 0; i < f.n; i++ {
			b.add(Int(int64(len([]rune(optString(src.Group(i)))))))
		}
		return b.done(), nil
	case "normalize-space":
		if arity > 1 {
			return bad()
		}
		src := ev.contextOrArg(args, f)
		if src == nil {
			return LLSeq{}, errf(codeNoContext, "normalize-space() needs a context item")
		}
		for i := 0; i < f.n; i++ {
			b.add(Str(strings.Join(strings.Fields(optString(src.Group(i))), " ")))
		}
		return b.done(), nil
	case "upper-case", "lower-case":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			s := optString(args[0].Group(i))
			if local == "upper-case" {
				s = strings.ToUpper(s)
			} else {
				s = strings.ToLower(s)
			}
			b.add(Str(s))
		}
		return b.done(), nil
	case "translate":
		if arity != 3 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			s := optString(args[0].Group(i))
			from := []rune(optString(args[1].Group(i)))
			to := []rune(optString(args[2].Group(i)))
			var sb strings.Builder
			for _, r := range s {
				idx := -1
				for k, fr := range from {
					if fr == r {
						idx = k
						break
					}
				}
				switch {
				case idx < 0:
					sb.WriteRune(r)
				case idx < len(to):
					sb.WriteRune(to[idx])
				}
			}
			b.add(Str(sb.String()))
		}
		return b.done(), nil
	case "sum", "avg", "min", "max":
		if arity != 1 {
			return bad()
		}
		return aggregate(local, args[0], f.n)
	case "abs", "floor", "ceiling", "round":
		if arity != 1 {
			return bad()
		}
		return mapSingleton(args[0], f.n, false, func(it Item) (Item, error) {
			a := it.Atomize()
			if a.Kind == KInt && local != "abs" {
				return a, nil
			}
			v, ok := a.NumericValue()
			if !ok {
				return Item{}, errf(codeType, "%s() on non-numeric %q", local, a.StringValue())
			}
			switch local {
			case "abs":
				if a.Kind == KInt {
					if a.I < 0 {
						return Int(-a.I), nil
					}
					return a, nil
				}
				return Float(math.Abs(v)), nil
			case "floor":
				return Float(math.Floor(v)), nil
			case "ceiling":
				return Float(math.Ceil(v)), nil
			default:
				return Float(math.Floor(v + 0.5)), nil
			}
		})
	case "distinct-values":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			seen := map[string]bool{}
			var out []Item
			for _, it := range args[0].Group(i) {
				a := it.Atomize()
				key := a.StringValue()
				if n, ok := a.NumericValue(); ok && (a.Kind == KInt || a.Kind == KFloat) {
					key = "#" + formatFloat(n)
				}
				if !seen[key] {
					seen[key] = true
					out = append(out, a)
				}
			}
			b.add(out...)
		}
		return b.done(), nil
	case "reverse":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			out := make([]Item, len(g))
			for k, it := range g {
				out[len(g)-1-k] = it
			}
			b.add(out...)
		}
		return b.done(), nil
	case "subsequence":
		if arity != 2 && arity != 3 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			startF, _ := singletonFloat(args[1].Group(i))
			length := math.Inf(1)
			if arity == 3 {
				length, _ = singletonFloat(args[2].Group(i))
			}
			var out []Item
			for k, it := range g {
				p := float64(k + 1)
				if p >= math.Round(startF) && p < math.Round(startF)+math.Round(length) {
					out = append(out, it)
				}
			}
			b.add(out...)
		}
		return b.done(), nil
	case "insert-before":
		if arity != 3 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			posF, _ := singletonFloat(args[1].Group(i))
			pos := int(posF) - 1
			if pos < 0 {
				pos = 0
			}
			if pos > len(g) {
				pos = len(g)
			}
			out := make([]Item, 0, len(g)+args[2].Total())
			out = append(out, g[:pos]...)
			out = append(out, args[2].Group(i)...)
			out = append(out, g[pos:]...)
			b.add(out...)
		}
		return b.done(), nil
	case "remove":
		if arity != 2 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			posF, _ := singletonFloat(args[1].Group(i))
			pos := int(posF)
			var out []Item
			for k, it := range g {
				if k+1 != pos {
					out = append(out, it)
				}
			}
			b.add(out...)
		}
		return b.done(), nil
	case "zero-or-one":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			if len(g) > 1 {
				return LLSeq{}, errf(codeCardinality, "zero-or-one() got %d items", len(g))
			}
			b.add(g...)
		}
		return b.done(), nil
	case "one-or-more":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			if len(g) == 0 {
				return LLSeq{}, errf(codeCardinality, "one-or-more() got an empty sequence")
			}
			b.add(g...)
		}
		return b.done(), nil
	case "exactly-one":
		if arity != 1 {
			return bad()
		}
		for i := 0; i < f.n; i++ {
			g := args[0].Group(i)
			if len(g) != 1 {
				return LLSeq{}, errf(codeCardinality, "exactly-one() got %d items", len(g))
			}
			b.add(g...)
		}
		return b.done(), nil
	case "error":
		msg := "error() called"
		if arity >= 1 && args[0].Total() > 0 {
			msg = args[0].Items[0].StringValue()
		}
		return LLSeq{}, errf("FOER0000", "%s", msg)
	case "string-value":
		// Engine extension: like string() but explicit for node arguments.
		if arity != 1 {
			return bad()
		}
		return mapSingleton(args[0], f.n, true, func(it Item) (Item, error) {
			return Str(it.StringValue()), nil
		})
	case "regions":
		// so:regions($node): one <region start end/> element per region.
		if arity != 1 {
			return bad()
		}
		return ev.soRegions(args[0], f)
	case "start", "end":
		if arity != 1 {
			return bad()
		}
		return ev.soBound(local, args[0], f)
	case "blob-text":
		if arity != 1 {
			return bad()
		}
		return ev.soBlobText(args[0], f)
	}
	return bad()
}

// contextOrArg returns the single argument or the context item sequence for
// zero-argument string()/number()/name() style calls.
func (ev *Evaluator) contextOrArg(args []LLSeq, f *frame) *LLSeq {
	if len(args) == 1 {
		return &args[0]
	}
	if f.ctx == nil {
		return nil
	}
	s := f.ctx.materialize()
	return &s
}

// mapSingleton applies fn to the 0-or-1 item of each iteration.
// emptyToEmptyString substitutes fn("") for an empty input (fn:string
// semantics); otherwise empty input maps to NaN for number() style calls.
func mapSingleton(src LLSeq, n int, emptyIsEmptyString bool, fn func(Item) (Item, error)) (LLSeq, error) {
	b := newLLBuilder(n)
	for i := 0; i < n; i++ {
		g := src.Group(i)
		switch {
		case len(g) == 0 && emptyIsEmptyString:
			out, err := fn(Str(""))
			if err != nil {
				return LLSeq{}, err
			}
			b.add(out)
		case len(g) == 0:
			b.add(Float(math.NaN()))
		case len(g) == 1:
			out, err := fn(g[0])
			if err != nil {
				return LLSeq{}, err
			}
			b.add(out)
		default:
			return LLSeq{}, errf(codeType, "expected at most one item, got %d", len(g))
		}
	}
	return b.done(), nil
}

func optString(g []Item) string {
	if len(g) == 0 {
		return ""
	}
	return g[0].StringValue()
}

func singletonFloat(g []Item) (float64, bool) {
	if len(g) == 0 {
		return math.NaN(), false
	}
	v, ok := g[0].NumericValue()
	return v, ok
}

func aggregate(kind string, seq LLSeq, n int) (LLSeq, error) {
	b := newLLBuilder(n)
	for i := 0; i < n; i++ {
		g := seq.Group(i)
		if len(g) == 0 {
			if kind == "sum" {
				b.add(Int(0))
			} else {
				b.add()
			}
			continue
		}
		allInt := true
		var sumF float64
		var sumI int64
		minV, maxV := math.Inf(1), math.Inf(-1)
		for _, it := range g {
			a := it.Atomize()
			v, ok := a.NumericValue()
			if !ok {
				return LLSeq{}, errf(codeType, "%s() on non-numeric %q", kind, a.StringValue())
			}
			if a.Kind != KInt {
				allInt = false
			}
			sumF += v
			sumI += a.I
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		switch kind {
		case "sum":
			if allInt {
				b.add(Int(sumI))
			} else {
				b.add(Float(sumF))
			}
		case "avg":
			b.add(Float(sumF / float64(len(g))))
		case "min":
			if allInt {
				b.add(Int(int64(minV)))
			} else {
				b.add(Float(minV))
			}
		case "max":
			if allInt {
				b.add(Int(int64(maxV)))
			} else {
				b.add(Float(maxV))
			}
		}
	}
	return b.done(), nil
}

// soRegions returns the region geometry of area-annotations as constructed
// <region> elements (engine extension).
func (ev *Evaluator) soRegions(src LLSeq, f *frame) (LLSeq, error) {
	opts := ev.Plan.Options()
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		var out []Item
		for _, it := range src.Group(i) {
			regs, err := ev.regionsOfItem(it)
			if err != nil {
				return LLSeq{}, err
			}
			for _, r := range regs {
				fb := newRegionFragment(opts, r)
				out = append(out, fb)
			}
		}
		b.add(out...)
	}
	return b.done(), nil
}

func newRegionFragment(opts core.Options, r interval.Region) Item {
	fb := treeFragment("region", map[string]string{
		"start": opts.FormatPosition(r.Start),
		"end":   opts.FormatPosition(r.End),
	})
	return fb
}

// soBound returns the first region start / last region end of annotations.
func (ev *Evaluator) soBound(kind string, src LLSeq, f *frame) (LLSeq, error) {
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		var out []Item
		for _, it := range src.Group(i) {
			regs, err := ev.regionsOfItem(it)
			if err != nil {
				return LLSeq{}, err
			}
			if len(regs) == 0 {
				continue
			}
			if kind == "start" {
				out = append(out, Int(regs[0].Start))
			} else {
				out = append(out, Int(regs[len(regs)-1].End))
			}
		}
		b.add(out...)
	}
	return b.done(), nil
}

// soBlobText resolves an annotation's regions against the document's BLOB
// and returns the covered content as a string (engine extension replacing
// the text nodes that stand-off conversion moved out of the document).
func (ev *Evaluator) soBlobText(src LLSeq, f *frame) (LLSeq, error) {
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		var out []Item
		for _, it := range src.Group(i) {
			if it.Kind != KNode {
				return LLSeq{}, errf(codeType, "blob-text() needs element nodes")
			}
			if ev.BlobFor == nil {
				return LLSeq{}, errf(codeDocNotFound, "no BLOB configured for blob-text()")
			}
			store := ev.BlobFor(it.D)
			if store == nil {
				return LLSeq{}, errf(codeDocNotFound, "document %q has no BLOB", it.D.Name)
			}
			regs, err := ev.regionsOfItem(it)
			if err != nil {
				return LLSeq{}, err
			}
			if len(regs) == 0 {
				continue
			}
			area, err := interval.NewArea(regs...)
			if err != nil {
				return LLSeq{}, errf(codeType, "blob-text(): %v", err)
			}
			data, err := blob.ReadArea(store, area)
			if err != nil {
				return LLSeq{}, errf(codeDocNotFound, "blob-text(): %v", err)
			}
			out = append(out, Str(string(data)))
		}
		b.add(out...)
	}
	return b.done(), nil
}

func (ev *Evaluator) regionsOfItem(it Item) ([]interval.Region, error) {
	if it.Kind != KNode {
		return nil, errf(codeType, "expected an element node")
	}
	if ev.IndexFor == nil {
		return nil, errf(codeStandOffIndex, "no region index provider configured")
	}
	ix, err := ev.IndexFor(it.D)
	if err != nil {
		return nil, errf(codeStandOffIndex, "%v", err)
	}
	return ix.RegionsOf(it.Pre), nil
}

// treeFragment builds a one-element fragment with attributes.
func treeFragment(name string, attrs map[string]string) Item {
	fb := newFragmentElem(name, attrs)
	return fb
}

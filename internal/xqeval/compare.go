package xqeval

import (
	"strings"

	"soxq/internal/xqast"
)

// evalGeneralComp implements the existentially quantified general
// comparisons (= != < <= > >=): true when any pair of atomized items from
// the two operand sequences satisfies the comparison.
func (ev *Evaluator) evalGeneralComp(v *xqast.Binary, f *frame) (LLSeq, error) {
	l, err := ev.eval(v.L, f)
	if err != nil {
		return LLSeq{}, err
	}
	r, err := ev.eval(v.R, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		found := false
		for _, li := range l.Group(i) {
			la := li.Atomize()
			for _, ri := range r.Group(i) {
				ok, err := comparePair(v.Op, la, ri.Atomize(), true)
				if err != nil {
					return LLSeq{}, err
				}
				if ok {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		b.add(Bool(found))
	}
	return b.done(), nil
}

// evalValueComp implements eq/ne/lt/le/gt/ge on singleton (or empty)
// operands; an empty operand yields the empty sequence.
func (ev *Evaluator) evalValueComp(v *xqast.Binary, f *frame) (LLSeq, error) {
	l, err := ev.eval(v.L, f)
	if err != nil {
		return LLSeq{}, err
	}
	r, err := ev.eval(v.R, f)
	if err != nil {
		return LLSeq{}, err
	}
	op := map[string]string{"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}[v.Op]
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		lg, rg := l.Group(i), r.Group(i)
		if len(lg) == 0 || len(rg) == 0 {
			b.add()
			continue
		}
		if len(lg) > 1 || len(rg) > 1 {
			return LLSeq{}, errf(codeType, "value comparison %s on a sequence", v.Op)
		}
		ok, err := comparePair(op, lg[0].Atomize(), rg[0].Atomize(), false)
		if err != nil {
			return LLSeq{}, err
		}
		b.add(Bool(ok))
	}
	return b.done(), nil
}

// comparePair compares two atomized items. In general comparisons (general
// = true) untypedAtomic adapts to the other operand's type; in value
// comparisons untypedAtomic is treated as string.
func comparePair(op string, a, b Item, general bool) (bool, error) {
	numeric := false
	switch {
	case isNumeric(a) && isNumeric(b):
		numeric = true
	case general && a.Kind == KUntyped && isNumeric(b):
		numeric = true
	case general && b.Kind == KUntyped && isNumeric(a):
		numeric = true
	case general && a.Kind == KUntyped && b.Kind == KUntyped:
		// Strict XPath 2.0 compares two untypedAtomic values as strings;
		// the paper's Figure 2/3 functions compare @start/@end regions
		// numerically, as XPath 1.0 did. We compare numerically when both
		// sides parse as numbers (region positions always do) and fall
		// back to string comparison otherwise.
		if _, okA := a.NumericValue(); okA {
			if _, okB := b.NumericValue(); okB {
				numeric = true
			}
		}
	case a.Kind == KBool || b.Kind == KBool:
		if a.Kind != KBool || b.Kind != KBool {
			if a.Kind == KUntyped || b.Kind == KUntyped {
				// untyped vs boolean: cast untyped to boolean.
				ab, err := castBool(a)
				if err != nil {
					return false, err
				}
				bb, err := castBool(b)
				if err != nil {
					return false, err
				}
				return boolCompare(op, ab, bb)
			}
			return false, errf(codeType, "cannot compare boolean with non-boolean")
		}
		return boolCompare(op, a.B, b.B)
	}
	if numeric {
		x, okx := a.NumericValue()
		y, oky := b.NumericValue()
		if !okx || !oky {
			// An unparsable untyped operand never compares equal; mimic
			// NaN semantics rather than erroring, matching general
			// comparison practice on untyped data.
			return false, nil
		}
		return numCompare(op, x, y), nil
	}
	c := strings.Compare(a.StringValue(), b.StringValue())
	return cmpResult(op, c), nil
}

func castBool(it Item) (bool, error) {
	if it.Kind == KBool {
		return it.B, nil
	}
	switch strings.TrimSpace(it.StringValue()) {
	case "true", "1":
		return true, nil
	case "false", "0":
		return false, nil
	}
	return false, errf(codeType, "cannot cast %q to xs:boolean", it.StringValue())
}

func boolCompare(op string, a, b bool) (bool, error) {
	toI := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return cmpResult(op, toI(a)-toI(b)), nil
}

func numCompare(op string, x, y float64) bool {
	switch op {
	case "=":
		return x == y
	case "!=":
		return x != y
	case "<":
		return x < y
	case "<=":
		return x <= y
	case ">":
		return x > y
	case ">=":
		return x >= y
	}
	return false
}

func cmpResult(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// evalNodeComp implements is, << and >> on singleton node operands.
func (ev *Evaluator) evalNodeComp(v *xqast.Binary, f *frame) (LLSeq, error) {
	l, err := ev.eval(v.L, f)
	if err != nil {
		return LLSeq{}, err
	}
	r, err := ev.eval(v.R, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		lg, rg := l.Group(i), r.Group(i)
		if len(lg) == 0 || len(rg) == 0 {
			b.add()
			continue
		}
		if len(lg) > 1 || len(rg) > 1 || !lg[0].IsNode() || !rg[0].IsNode() {
			return LLSeq{}, errf(codeType, "node comparison %s needs single nodes", v.Op)
		}
		switch v.Op {
		case "is":
			b.add(Bool(lg[0].SameNode(rg[0])))
		case "<<":
			b.add(Bool(CompareDocOrder(lg[0], rg[0]) < 0))
		default:
			b.add(Bool(CompareDocOrder(lg[0], rg[0]) > 0))
		}
	}
	return b.done(), nil
}

// evalSetOp implements union/intersect/except with document-order,
// duplicate-free results.
func (ev *Evaluator) evalSetOp(v *xqast.Binary, f *frame) (LLSeq, error) {
	l, err := ev.eval(v.L, f)
	if err != nil {
		return LLSeq{}, err
	}
	r, err := ev.eval(v.R, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := newLLBuilder(f.n)
	for i := 0; i < f.n; i++ {
		lg, rg := l.Group(i), r.Group(i)
		for _, it := range lg {
			if !it.IsNode() {
				return LLSeq{}, errf(codeType, "%s operand contains a non-node", v.Op)
			}
		}
		for _, it := range rg {
			if !it.IsNode() {
				return LLSeq{}, errf(codeType, "%s operand contains a non-node", v.Op)
			}
		}
		ls := sortDedupNodes(append([]Item{}, lg...))
		rs := sortDedupNodes(append([]Item{}, rg...))
		var out []Item
		switch v.Op {
		case "union":
			out = sortDedupNodes(append(ls, rs...))
		case "intersect":
			for _, it := range ls {
				if containsNode(rs, it) {
					out = append(out, it)
				}
			}
		case "except":
			for _, it := range ls {
				if !containsNode(rs, it) {
					out = append(out, it)
				}
			}
		}
		b.add(out...)
	}
	return b.done(), nil
}

func containsNode(sorted []Item, it Item) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if CompareDocOrder(sorted[mid], it) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo].SameNode(it)
}

// Package xqeval is the loop-lifted evaluator. Every expression is evaluated
// for all iterations of the enclosing for-loops at once; intermediate
// results are iter|pos|item tables (LLSeq), exactly the representation that
// MonetDB/XQuery's Pathfinder compiler produces (section 4.1 of the paper).
// This is what lets a StandOff axis step inside a for-loop run as a single
// Loop-Lifted StandOff MergeJoin instead of one merge join per iteration.
package xqeval

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"soxq/internal/tree"
)

// ItemKind tags the dynamic type of an Item.
type ItemKind uint8

const (
	// KNode is a tree node (document, element, text, comment, PI).
	KNode ItemKind = iota
	// KAttr is an attribute node (owner element pre + attribute row).
	KAttr
	// KString is xs:string.
	KString
	// KUntyped is xs:untypedAtomic (the result of atomizing nodes).
	KUntyped
	// KInt is xs:integer.
	KInt
	// KFloat is xs:double.
	KFloat
	// KBool is xs:boolean.
	KBool
)

// Item is one XDM item.
type Item struct {
	Kind ItemKind
	D    *tree.Doc
	Pre  int32
	Att  int32
	S    string
	I    int64
	F    float64
	B    bool
}

// NodeItem wraps a tree node.
func NodeItem(d *tree.Doc, pre int32) Item { return Item{Kind: KNode, D: d, Pre: pre} }

// AttrItem wraps an attribute node.
func AttrItem(d *tree.Doc, pre, att int32) Item {
	return Item{Kind: KAttr, D: d, Pre: pre, Att: att}
}

// Str wraps an xs:string.
func Str(s string) Item { return Item{Kind: KString, S: s} }

// Untyped wraps an xs:untypedAtomic.
func Untyped(s string) Item { return Item{Kind: KUntyped, S: s} }

// Int wraps an xs:integer.
func Int(i int64) Item { return Item{Kind: KInt, I: i} }

// Float wraps an xs:double.
func Float(f float64) Item { return Item{Kind: KFloat, F: f} }

// Bool wraps an xs:boolean.
func Bool(b bool) Item { return Item{Kind: KBool, B: b} }

// IsNode reports whether the item is a node (element/attr/text/...).
func (it Item) IsNode() bool { return it.Kind == KNode || it.Kind == KAttr }

// SameNode reports node identity.
func (it Item) SameNode(o Item) bool {
	return it.IsNode() && it.Kind == o.Kind && it.D == o.D && it.Pre == o.Pre && it.Att == o.Att
}

// orderKey returns the document-order sort key of a node item.
func (it Item) orderKey() (doc int64, pre int32, att int32) {
	a := int32(0)
	if it.Kind == KAttr {
		a = it.Att + 1 // attributes sort after their element, before children
	}
	return it.D.OrderKey(), it.Pre, a
}

// CompareDocOrder orders node items by document order (cross-document order
// is by document creation rank). Both items must be nodes.
func CompareDocOrder(a, b Item) int {
	ad, ap, aa := a.orderKey()
	bd, bp, ba := b.orderKey()
	switch {
	case ad != bd:
		return cmp64(ad, bd)
	case ap != bp:
		return cmp32(ap, bp)
	default:
		return cmp32(aa, ba)
	}
}

func cmp64(a, b int64) int {
	if a < b {
		return -1
	} else if a > b {
		return 1
	}
	return 0
}

func cmp32(a, b int32) int {
	if a < b {
		return -1
	} else if a > b {
		return 1
	}
	return 0
}

// StringValue returns the string value of the item (fn:string semantics).
func (it Item) StringValue() string {
	switch it.Kind {
	case KNode:
		return it.D.StringValue(it.Pre)
	case KAttr:
		return it.D.AttrValue(it.Att)
	case KString, KUntyped:
		return it.S
	case KInt:
		return strconv.FormatInt(it.I, 10)
	case KFloat:
		return formatFloat(it.F)
	case KBool:
		if it.B {
			return "true"
		}
		return "false"
	}
	return ""
}

// formatFloat renders a double the XPath way for the common cases: integral
// values print without an exponent or trailing ".0".
func formatFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'G', -1, 64)
	}
}

// Atomize converts the item to its typed value: nodes become untypedAtomic.
func (it Item) Atomize() Item {
	switch it.Kind {
	case KNode, KAttr:
		return Untyped(it.StringValue())
	default:
		return it
	}
}

// NumericValue coerces the item to a double; ok is false when it does not
// parse. Attribute nodes parse straight from the document's value bytes, so
// arithmetic over @start/@end-style stand-off attributes costs no string
// conversion per row.
func (it Item) NumericValue() (float64, bool) {
	switch it.Kind {
	case KInt:
		return float64(it.I), true
	case KFloat:
		return it.F, true
	case KBool:
		if it.B {
			return 1, true
		}
		return 0, true
	case KAttr:
		return parseNumericBytes(it.D.AttrValueBytes(it.Att))
	default:
		s := strings.TrimSpace(it.StringValue())
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN(), false
		}
		return f, true
	}
}

// parseNumericBytes parses a numeric literal from raw bytes without
// allocating. The common stand-off case — an optionally signed decimal
// integer — is parsed by hand; anything else (decimal point, exponent,
// INF/NaN spellings) falls back to strconv.ParseFloat on a transient string.
func parseNumericBytes(b []byte) (float64, bool) {
	// xs:double whitespace trim.
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r') {
		b = b[1:]
	}
	for n := len(b); n > 0 && (b[n-1] == ' ' || b[n-1] == '\t' || b[n-1] == '\n' || b[n-1] == '\r'); n = len(b) {
		b = b[:n-1]
	}
	if len(b) == 0 {
		return math.NaN(), false
	}
	i, neg := 0, false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i = 1
	}
	var v uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			// Not a plain integer: full ParseFloat semantics.
			f, err := strconv.ParseFloat(string(b), 64)
			if err != nil {
				return math.NaN(), false
			}
			return f, true
		}
		v = v*10 + uint64(c-'0')
		if v > 1<<53 {
			f, err := strconv.ParseFloat(string(b), 64)
			if err != nil {
				return math.NaN(), false
			}
			return f, true
		}
	}
	if i == 1 && (b[0] == '+' || b[0] == '-') {
		return math.NaN(), false // sign with no digits
	}
	if neg {
		return -float64(v), true
	}
	return float64(v), true
}

func (it Item) String() string {
	switch it.Kind {
	case KNode:
		return fmt.Sprintf("node(%s:%d)", it.D.Name, it.Pre)
	case KAttr:
		return fmt.Sprintf("attr(%s:%d/@%s)", it.D.Name, it.Pre, it.D.AttrName(it.Att))
	default:
		return it.StringValue()
	}
}

// LLSeq is a loop-lifted sequence: iteration i owns Items[Off[i]:Off[i+1]].
// It is the iter|pos|item table of section 4.1 with pos kept implicit.
type LLSeq struct {
	Off   []int32
	Items []Item
}

// NewLL returns an LLSeq with n empty iterations.
func NewLL(n int) LLSeq { return LLSeq{Off: make([]int32, n+1)} }

// N returns the number of iterations.
func (s LLSeq) N() int { return len(s.Off) - 1 }

// Group returns the item sequence of iteration i (aliased, do not modify).
func (s LLSeq) Group(i int) []Item { return s.Items[s.Off[i]:s.Off[i+1]] }

// Total returns the total item count across iterations.
func (s LLSeq) Total() int { return len(s.Items) }

// llBuilder assembles an LLSeq iteration by iteration.
type llBuilder struct {
	seq LLSeq
}

func newLLBuilder(nHint int) *llBuilder {
	return &llBuilder{seq: LLSeq{Off: make([]int32, 1, nHint+1)}}
}

// newLLBuilderCap additionally pre-sizes the item buffer, so hot loops with
// a known (or tightly bounded) total item count build without regrowth.
func newLLBuilderCap(nHint, itemsHint int) *llBuilder {
	return &llBuilder{seq: LLSeq{
		Off:   make([]int32, 1, nHint+1),
		Items: make([]Item, 0, itemsHint),
	}}
}

func (b *llBuilder) add(items ...Item) {
	b.seq.Items = append(b.seq.Items, items...)
	b.seq.Off = append(b.seq.Off, int32(len(b.seq.Items)))
}

// add2 appends one iteration holding the concatenation of two groups,
// without the caller materialising a temporary.
func (b *llBuilder) add2(l, r []Item) {
	b.seq.Items = append(append(b.seq.Items, l...), r...)
	b.seq.Off = append(b.seq.Off, int32(len(b.seq.Items)))
}

// appendItem / endGroup build one iteration incrementally: append any number
// of items, then seal the group.
func (b *llBuilder) appendItem(it Item) {
	b.seq.Items = append(b.seq.Items, it)
}

func (b *llBuilder) endGroup() {
	b.seq.Off = append(b.seq.Off, int32(len(b.seq.Items)))
}

func (b *llBuilder) done() LLSeq { return b.seq }

// constLL broadcasts the same items to n iterations.
func constLL(n int, items ...Item) LLSeq {
	s := LLSeq{Off: make([]int32, n+1)}
	if len(items) == 0 {
		return s
	}
	s.Items = make([]Item, 0, n*len(items))
	for i := 0; i < n; i++ {
		s.Items = append(s.Items, items...)
		s.Off[i+1] = int32(len(s.Items))
	}
	return s
}

// ascOff returns the offsets of a sequence with exactly one item per
// iteration: 0,1,...,n. All such sequences share one immutable table behind
// an atomic pointer (grown on demand), and the returned slice has zero spare
// capacity so an append by a confused caller copies instead of clobbering
// the shared array.
func ascOff(n int) []int32 {
	p := ascOffTab.Load()
	if p == nil || len(*p) < n+1 {
		ascOffMu.Lock()
		p = ascOffTab.Load()
		if p == nil || len(*p) < n+1 {
			size := n + 1
			if size < 4096 {
				size = 4096
			}
			t := make([]int32, size)
			for i := range t {
				t[i] = int32(i)
			}
			ascOffTab.Store(&t)
			p = &t
		}
		ascOffMu.Unlock()
	}
	t := *p
	return t[: n+1 : n+1]
}

var (
	ascOffTab atomic.Pointer[[]int32]
	ascOffMu  sync.Mutex
)

// sortDedupNodes sorts items (which must all be nodes) in document order and
// removes identity duplicates, in place.
func sortDedupNodes(items []Item) []Item {
	slices.SortStableFunc(items, CompareDocOrder)
	out := items[:0]
	for i, it := range items {
		if i == 0 || !it.SameNode(items[i-1]) {
			out = append(out, it)
		}
	}
	return out
}

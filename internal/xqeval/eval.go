package xqeval

import (
	"math"
	"sort"
	"strings"

	"soxq/internal/blob"
	"soxq/internal/core"
	"soxq/internal/obs"
	"soxq/internal/tree"
	"soxq/internal/xqast"
	"soxq/internal/xqplan"
)

// Evaluator is the per-run execution state for one compiled query: the
// immutable Plan (shared, cacheable, safe for any number of concurrent
// runs), the engine environment it executes against, the strategy knobs of
// one execution, and the mutable recursion depth. An Evaluator is cheap to
// construct; create a fresh one per Run — a single Evaluator must not be
// shared between goroutines or reused across runs.
type Evaluator struct {
	// Plan is the compiled query (function table, globals, folded body,
	// static StandOff step decisions, effective options).
	Plan *xqplan.Plan
	// Resolver loads a document for fn:doc.
	Resolver func(uri string) (*tree.Doc, error)
	// IndexFor returns the region index for a document under the plan's
	// stand-off options.
	IndexFor func(d *tree.Doc) (*core.RegionIndex, error)
	// BlobFor returns the BLOB a document's regions refer into (may return
	// nil); used by the so:blob-text extension function.
	BlobFor func(d *tree.Doc) blob.Store
	// Strategy picks the StandOff join algorithm (section 4.6 variants).
	// core.StrategyAuto defers the Basic vs Loop-Lifted choice to the
	// plan's per-step cost model, resolved against each region index's
	// statistics at first use; any other value forces that algorithm for
	// every step.
	Strategy core.Strategy
	// JoinCfg tunes the join (active-set structure, tracing).
	JoinCfg core.JoinConfig
	// Pushdown enables candidate-sequence pushdown of element name tests
	// into StandOff steps (section 3.3 (iii)); disabled it post-filters.
	Pushdown bool
	// Stats, when non-nil, collects the per-operator runtime counters
	// behind EXPLAIN ANALYZE (rows in/out, candidates scanned, join
	// algorithm run, FLWOR tuples). Nil disables collection; every record
	// call is nil-safe, so the hot paths pay one pointer check.
	Stats *xqplan.ExecStats
	// Cal is the engine-wide setup-cost calibration the strategy choices
	// price with; nil prices with the static default. Analyzed executions
	// feed it through Stats (ExecStats.Cal is the same pointer).
	Cal *xqplan.Calibration
	// Met is the engine-wide set of always-on metric counters (joins per
	// algorithm, work-steals, chunk adaptations). Unlike Stats it is live
	// on every execution, so recording must stay one nil check plus one
	// atomic add; nil disables it. Fork carries it over — worker forks feed
	// the same counters.
	Met *obs.ExecMetrics
	// MaxRecursion bounds user-defined function recursion.
	MaxRecursion int

	depth int

	// stepPres is the recycled per-context-node pre buffer of the fast
	// tree-step path (single-goroutine, like the evaluator itself).
	stepPres []int32

	// seqs is the scoped scratch arena of the streaming pipeline (see
	// seqarena.go); nil outside a streaming run, in which case every
	// arena-aware helper allocates plainly.
	seqs *seqArena
}

// Run executes the compiled plan and returns the result sequence.
func (ev *Evaluator) Run() ([]Item, error) {
	if ev.JoinCfg.Arena == nil {
		ev.AttachArena()
		defer ev.DetachArena()
	}
	f, err := ev.NewRootFrame()
	if err != nil {
		return nil, err
	}
	out, err := ev.eval(ev.Plan.Body(), f)
	if err != nil {
		return nil, err
	}
	return out.Group(0), nil
}

// eval dispatches on the expression type. Every case returns an LLSeq with
// exactly f.n iterations.
func (ev *Evaluator) eval(e xqast.Expr, f *frame) (LLSeq, error) {
	switch v := e.(type) {
	case *xqast.StringLit:
		return ev.scrConstLL(f.n, Str(v.V)), nil
	case *xqast.IntLit:
		return ev.scrConstLL(f.n, Int(v.V)), nil
	case *xqast.FloatLit:
		return ev.scrConstLL(f.n, Float(v.V)), nil
	case *xqast.EmptySeq:
		return NewLL(f.n), nil
	case *xqast.VarRef:
		b := f.lookup(v.Name)
		if b == nil {
			return LLSeq{}, errf(codeUndefVar, "undeclared variable $%s", v.Name)
		}
		return ev.scrMaterialize(b), nil
	case *xqast.ContextItem:
		if f.ctx == nil {
			return LLSeq{}, errf(codeNoContext, "context item is absent")
		}
		return ev.scrMaterialize(f.ctx), nil
	case *xqast.Binary:
		return ev.evalBinary(v, f)
	case *xqast.Unary:
		return ev.evalUnary(v, f)
	case *xqast.IfExpr:
		return ev.evalIf(v, f)
	case *xqast.FLWOR:
		return ev.evalFLWOR(v, f)
	case *xqast.Quantified:
		return ev.evalQuantified(v, f)
	case *xqast.Path:
		return ev.evalPath(v, f)
	case *xqast.Filter:
		return ev.evalFilter(v, f)
	case *xqast.FuncCall:
		return ev.evalCall(v, f)
	case *xqast.DirectElem:
		return ev.evalDirectElem(v, f)
	case *xqast.ComputedElem:
		return ev.evalComputedElem(v, f)
	case *xqast.ComputedAttr:
		return ev.evalComputedAttr(v, f)
	case *xqast.ComputedText:
		return ev.evalComputedText(v, f)
	case *xqast.Enclosed:
		return ev.eval(v.X, f)
	default:
		return LLSeq{}, errf(codeType, "unsupported expression %T", e)
	}
}

func (ev *Evaluator) evalBinary(v *xqast.Binary, f *frame) (LLSeq, error) {
	switch v.Op {
	case ",":
		l, err := ev.eval(v.L, f)
		if err != nil {
			return LLSeq{}, err
		}
		r, err := ev.eval(v.R, f)
		if err != nil {
			return LLSeq{}, err
		}
		b := ev.scrBuilderCap(f.n, l.Total()+r.Total())
		for i := 0; i < f.n; i++ {
			b.add2(l.Group(i), r.Group(i))
		}
		return b.done(), nil
	case "and", "or":
		return ev.evalLogical(v, f)
	case "to":
		return ev.evalRange(v, f)
	case "+", "-", "*", "div", "idiv", "mod":
		return ev.evalArith(v, f)
	case "union", "intersect", "except":
		return ev.evalSetOp(v, f)
	case "is", "<<", ">>":
		return ev.evalNodeComp(v, f)
	case "eq", "ne", "lt", "le", "gt", "ge":
		return ev.evalValueComp(v, f)
	default: // general comparisons = != < <= > >=
		return ev.evalGeneralComp(v, f)
	}
}

func (ev *Evaluator) evalLogical(v *xqast.Binary, f *frame) (LLSeq, error) {
	l, err := ev.eval(v.L, f)
	if err != nil {
		return LLSeq{}, err
	}
	r, err := ev.eval(v.R, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := ev.scrBuilderCap(f.n, f.n)
	for i := 0; i < f.n; i++ {
		lb, err := ebv(l.Group(i))
		if err != nil {
			return LLSeq{}, err
		}
		rb, err := ebv(r.Group(i))
		if err != nil {
			return LLSeq{}, err
		}
		if v.Op == "and" {
			b.add(Bool(lb && rb))
		} else {
			b.add(Bool(lb || rb))
		}
	}
	return b.done(), nil
}

func (ev *Evaluator) evalRange(v *xqast.Binary, f *frame) (LLSeq, error) {
	l, err := ev.eval(v.L, f)
	if err != nil {
		return LLSeq{}, err
	}
	r, err := ev.eval(v.R, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := ev.scrBuilderCap(f.n, 0)
	for i := 0; i < f.n; i++ {
		lo, loOK, err := singletonInt(l.Group(i))
		if err != nil {
			return LLSeq{}, err
		}
		hi, hiOK, err := singletonInt(r.Group(i))
		if err != nil {
			return LLSeq{}, err
		}
		if !loOK || !hiOK || lo > hi {
			b.add()
			continue
		}
		if hi-lo >= RangeLimit {
			return LLSeq{}, ErrRangeTooLarge(lo, hi)
		}
		for x := lo; x <= hi; x++ {
			b.appendItem(Int(x))
		}
		b.endGroup()
	}
	return b.done(), nil
}

// singletonInt coerces a 0/1-item group to an integer; ok=false on empty.
func singletonInt(items []Item) (int64, bool, error) {
	if len(items) == 0 {
		return 0, false, nil
	}
	if len(items) > 1 {
		return 0, false, errf(codeType, "expected a single integer, got %d items", len(items))
	}
	// No Atomize: the default branch coerces nodes through NumericValue,
	// which parses attribute values from bytes without a string conversion.
	a := items[0]
	switch a.Kind {
	case KInt:
		return a.I, true, nil
	case KFloat:
		if a.F != math.Trunc(a.F) {
			return 0, false, errf(codeType, "expected an integer, got %v", a.F)
		}
		return int64(a.F), true, nil
	default:
		fv, ok := a.NumericValue()
		if !ok || fv != math.Trunc(fv) {
			return 0, false, errf(codeType, "expected an integer, got %q", a.StringValue())
		}
		return int64(fv), true, nil
	}
}

func (ev *Evaluator) evalArith(v *xqast.Binary, f *frame) (LLSeq, error) {
	l, err := ev.eval(v.L, f)
	if err != nil {
		return LLSeq{}, err
	}
	r, err := ev.eval(v.R, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := ev.scrBuilderCap(f.n, f.n)
	for i := 0; i < f.n; i++ {
		lg, rg := l.Group(i), r.Group(i)
		if len(lg) == 0 || len(rg) == 0 {
			b.add()
			continue
		}
		if len(lg) > 1 || len(rg) > 1 {
			return LLSeq{}, errf(codeType, "arithmetic on a sequence of more than one item")
		}
		// Raw items go straight to arith: it only type-switches on KInt and
		// otherwise coerces via NumericValue, which parses attribute nodes
		// from their value bytes — no per-row untypedAtomic string.
		res, err := arith(v.Op, lg[0], rg[0])
		if err != nil {
			return LLSeq{}, err
		}
		b.add(res)
	}
	return b.done(), nil
}

func arith(op string, a, b Item) (Item, error) {
	// Integer fast path (div always yields a double, as xs:decimal).
	if a.Kind == KInt && b.Kind == KInt && op != "div" {
		x, y := a.I, b.I
		switch op {
		case "+":
			return Int(x + y), nil
		case "-":
			return Int(x - y), nil
		case "*":
			return Int(x * y), nil
		case "idiv":
			if y == 0 {
				return Item{}, errf(codeDivZero, "integer division by zero")
			}
			return Int(x / y), nil
		case "mod":
			if y == 0 {
				return Item{}, errf(codeDivZero, "modulus by zero")
			}
			return Int(x % y), nil
		}
	}
	x, okx := a.NumericValue()
	y, oky := b.NumericValue()
	if !okx || !oky {
		return Item{}, errf(codeType, "arithmetic on non-numeric value %q", pickBad(okx, a, b).StringValue())
	}
	switch op {
	case "+":
		return Float(x + y), nil
	case "-":
		return Float(x - y), nil
	case "*":
		return Float(x * y), nil
	case "div":
		if y == 0 {
			return Item{}, errf(codeDivZero, "division by zero")
		}
		return Float(x / y), nil
	case "idiv":
		if y == 0 {
			return Item{}, errf(codeDivZero, "integer division by zero")
		}
		return Int(int64(x / y)), nil
	case "mod":
		if y == 0 {
			return Item{}, errf(codeDivZero, "modulus by zero")
		}
		return Float(math.Mod(x, y)), nil
	}
	return Item{}, errf(codeType, "unknown arithmetic operator %q", op)
}

func pickBad(firstOK bool, a, b Item) Item {
	if firstOK {
		return b
	}
	return a
}

func (ev *Evaluator) evalUnary(v *xqast.Unary, f *frame) (LLSeq, error) {
	x, err := ev.eval(v.X, f)
	if err != nil {
		return LLSeq{}, err
	}
	b := ev.scrBuilderCap(f.n, f.n)
	for i := 0; i < f.n; i++ {
		g := x.Group(i)
		if len(g) == 0 {
			b.add()
			continue
		}
		if len(g) > 1 {
			return LLSeq{}, errf(codeType, "unary minus on a sequence")
		}
		a := g[0].Atomize()
		if !v.Neg {
			if a.Kind == KInt || a.Kind == KFloat {
				b.add(a)
				continue
			}
		}
		switch a.Kind {
		case KInt:
			b.add(Int(-a.I))
		case KFloat:
			b.add(Float(-a.F))
		default:
			fv, ok := a.NumericValue()
			if !ok {
				return LLSeq{}, errf(codeType, "unary minus on non-numeric %q", a.StringValue())
			}
			if v.Neg {
				fv = -fv
			}
			b.add(Float(fv))
		}
	}
	return b.done(), nil
}

// evalIf partitions the iterations by the condition's EBV and evaluates each
// branch only on its partition — the loop-lifted conditional that also
// guarantees recursive functions terminate (an empty partition skips the
// branch entirely).
func (ev *Evaluator) evalIf(v *xqast.IfExpr, f *frame) (LLSeq, error) {
	cond, err := ev.eval(v.Cond, f)
	if err != nil {
		return LLSeq{}, err
	}
	var thenIters, elseIters []int32
	for i := 0; i < f.n; i++ {
		bv, err := ebv(cond.Group(i))
		if err != nil {
			return LLSeq{}, err
		}
		if bv {
			thenIters = append(thenIters, int32(i))
		} else {
			elseIters = append(elseIters, int32(i))
		}
	}
	evalBranch := func(e xqast.Expr, iters []int32) (LLSeq, error) {
		if len(iters) == 0 {
			return NewLL(0), nil
		}
		return ev.eval(e, f.restrict(iters))
	}
	thenSeq, err := evalBranch(v.Then, thenIters)
	if err != nil {
		return LLSeq{}, err
	}
	elseSeq, err := evalBranch(v.Else, elseIters)
	if err != nil {
		return LLSeq{}, err
	}
	// Merge the partitions back into frame order.
	b := newLLBuilderCap(f.n, thenSeq.Total()+elseSeq.Total())
	ti, ei := 0, 0
	for i := 0; i < f.n; i++ {
		if ti < len(thenIters) && thenIters[ti] == int32(i) {
			b.add(thenSeq.Group(ti)...)
			ti++
		} else {
			b.add(elseSeq.Group(ei)...)
			ei++
		}
	}
	return b.done(), nil
}

func (ev *Evaluator) evalQuantified(v *xqast.Quantified, f *frame) (LLSeq, error) {
	seq, err := ev.eval(v.Seq, f)
	if err != nil {
		return LLSeq{}, err
	}
	inner, outerOf, varB := expandFor(seq)
	nf := f.expand(outerOf).bind(v.Var, varB)
	sat, err := ev.eval(v.Satisfies, nf)
	if err != nil {
		return LLSeq{}, err
	}
	result := make([]bool, f.n)
	for i := range result {
		result[i] = v.Every // every: vacuously true; some: vacuously false
	}
	for j := 0; j < inner; j++ {
		bv, err := ebv(sat.Group(j))
		if err != nil {
			return LLSeq{}, err
		}
		o := outerOf[j]
		if v.Every {
			result[o] = result[o] && bv
		} else {
			result[o] = result[o] || bv
		}
	}
	b := newLLBuilderCap(f.n, f.n)
	for i := 0; i < f.n; i++ {
		b.add(Bool(result[i]))
	}
	return b.done(), nil
}

// expandFor turns a binding sequence into for-loop scaffolding: the inner
// iteration count, the inner->outer mapping, and the loop variable binding
// (one item per inner iteration).
func expandFor(seq LLSeq) (inner int, outerOf []int32, varB *binding) {
	inner = seq.Total()
	outerOf = make([]int32, 0, inner)
	varSeq := LLSeq{Off: make([]int32, 1, inner+1), Items: seq.Items}
	for i := 0; i < seq.N(); i++ {
		for k := seq.Off[i]; k < seq.Off[i+1]; k++ {
			outerOf = append(outerOf, int32(i))
			varSeq.Off = append(varSeq.Off, k+1)
		}
	}
	return inner, outerOf, newBinding(varSeq)
}

// flworClauses applies a FLWOR's for/let clauses to f, returning the expanded
// tuple frame and the mapping from tuples back to f's iterations. The mapping
// is always non-decreasing: tuples expand in iteration order. A nil mapping
// means identity (no for clause expanded) — the executor's chunk tails hit
// this every chunk, so the identity is never materialised.
func (ev *Evaluator) flworClauses(clauses []xqast.Clause, f *frame) (*frame, []int32, error) {
	cur := f
	// rootOf maps the current tuple space back to f's iterations; nil is the
	// identity mapping.
	var rootOf []int32
	// Positional vars are bound as the tuples expand.
	for _, cl := range clauses {
		switch c := cl.(type) {
		case *xqast.ForClause:
			seq, err := ev.eval(c.Seq, cur)
			if err != nil {
				return nil, nil, err
			}
			inner, outerOf, varB := expandFor(seq)
			nf := cur.expand(outerOf).bind(c.Var, varB)
			if c.Pos != "" {
				posSeq := LLSeq{Off: make([]int32, 1, inner+1)}
				prev := int32(-1)
				var p int64
				for j := 0; j < inner; j++ {
					if outerOf[j] != prev {
						prev = outerOf[j]
						p = 0
					}
					p++
					posSeq.Items = append(posSeq.Items, Int(p))
					posSeq.Off = append(posSeq.Off, int32(len(posSeq.Items)))
				}
				nf = nf.bind(c.Pos, newBinding(posSeq))
			}
			rootOf = composeMap(rootOf, outerOf)
			cur = nf
		case *xqast.LetClause:
			seq, err := ev.eval(c.Seq, cur)
			if err != nil {
				return nil, nil, err
			}
			cur = ev.scrBindSeq(cur, c.Var, seq)
		}
	}
	return cur, rootOf, nil
}

// flworWhere filters the tuple frame by the where condition, composing the
// root mapping accordingly.
func (ev *Evaluator) flworWhere(where xqast.Expr, cur *frame, rootOf []int32) (*frame, []int32, error) {
	cond, err := ev.eval(where, cur)
	if err != nil {
		return nil, nil, err
	}
	var keep []int32
	for i := 0; i < cur.n; i++ {
		bv, err := ebv(cond.Group(i))
		if err != nil {
			return nil, nil, err
		}
		if bv {
			keep = append(keep, int32(i))
		}
	}
	return cur.restrict(keep), composeMap(rootOf, keep), nil
}

func (ev *Evaluator) evalFLWOR(v *xqast.FLWOR, f *frame) (LLSeq, error) {
	cur, rootOf, err := ev.flworClauses(v.Clauses, f)
	if err != nil {
		return LLSeq{}, err
	}
	tuples := int64(cur.n)
	// where: filter tuples.
	if v.Where != nil {
		cur, rootOf, err = ev.flworWhere(v.Where, cur, rootOf)
		if err != nil {
			return LLSeq{}, err
		}
	}
	// order by: stable sort of tuples within each root iteration.
	if len(v.OrderBy) > 0 {
		keys := make([][]Item, len(v.OrderBy))
		for k, spec := range v.OrderBy {
			keySeq, err := ev.eval(spec.Key, cur)
			if err != nil {
				return LLSeq{}, err
			}
			ks := make([]Item, cur.n)
			for i := 0; i < cur.n; i++ {
				g := keySeq.Group(i)
				if len(g) > 1 {
					return LLSeq{}, errf(codeType, "order by key is a sequence of %d items", len(g))
				}
				if len(g) == 0 {
					ks[i] = Item{Kind: ItemKind(255)} // marker for empty
				} else {
					ks[i] = g[0].Atomize()
				}
			}
			keys[k] = ks
		}
		perm := make([]int32, cur.n)
		for i := range perm {
			perm[i] = int32(i)
		}
		var sortErr error
		sort.SliceStable(perm, func(a, b int) bool {
			ia, ib := perm[a], perm[b]
			if ra, rb := rootAt(rootOf, int(ia)), rootAt(rootOf, int(ib)); ra != rb {
				return ra < rb
			}
			for k, spec := range v.OrderBy {
				ka, kb := keys[k][ia], keys[k][ib]
				c, err := orderCompare(ka, kb, spec.EmptyLeast)
				if err != nil && sortErr == nil {
					sortErr = err
				}
				if c == 0 {
					continue
				}
				if spec.Descending {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return LLSeq{}, sortErr
		}
		cur = cur.restrict(perm)
		rootOf = composeMap(rootOf, perm)
	}
	ret, err := ev.eval(v.Return, cur)
	if err != nil {
		return LLSeq{}, err
	}
	// Regroup tuple results back to the outer iterations. Tuples are in
	// iteration order (stable through restrict), so a single pass works, and
	// one outer iteration's tuple results are a contiguous range of ret.Items
	// — the regroup slices it out instead of accumulating a temporary.
	b := newLLBuilderCap(f.n, ret.Total())
	t := 0
	for i := 0; i < f.n; i++ {
		t0 := t
		for t < cur.n && rootAt(rootOf, t) == int32(i) {
			t++
		}
		b.add(ret.Items[ret.Off[t0]:ret.Off[t]]...)
	}
	out := b.done()
	ev.Stats.RecordOp(v, tuples, int64(out.Total()))
	return out, nil
}

// composeMap composes two iteration mappings: result[j] = outer[inner[j]].
// A nil outer is the identity, so the composition is inner itself (aliased —
// mappings are read-only once built).
func composeMap(outer []int32, inner []int32) []int32 {
	if outer == nil {
		return inner
	}
	out := make([]int32, len(inner))
	for j, o := range inner {
		out[j] = outer[o]
	}
	return out
}

// rootAt reads an iteration mapping with nil-as-identity semantics.
func rootAt(rootOf []int32, t int) int32 {
	if rootOf == nil {
		return int32(t)
	}
	return rootOf[t]
}

// orderCompare compares two atomized order-by keys. The 255 kind marks an
// empty key.
func orderCompare(a, b Item, emptyLeast bool) (int, error) {
	ae, be := a.Kind == ItemKind(255), b.Kind == ItemKind(255)
	switch {
	case ae && be:
		return 0, nil
	case ae:
		if emptyLeast {
			return -1, nil
		}
		return 1, nil
	case be:
		if emptyLeast {
			return 1, nil
		}
		return -1, nil
	}
	// Numeric if both coerce; otherwise string comparison.
	if isNumeric(a) || isNumeric(b) {
		x, okx := a.NumericValue()
		y, oky := b.NumericValue()
		if okx && oky {
			switch {
			case x < y:
				return -1, nil
			case x > y:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	return strings.Compare(a.StringValue(), b.StringValue()), nil
}

func isNumeric(a Item) bool { return a.Kind == KInt || a.Kind == KFloat }

// ebv computes the effective boolean value of one iteration's items.
func ebv(items []Item) (bool, error) {
	if len(items) == 0 {
		return false, nil
	}
	if items[0].IsNode() {
		return true, nil
	}
	if len(items) > 1 {
		return false, errf(codeEBV, "effective boolean value of a sequence of %d atomic items", len(items))
	}
	switch it := items[0]; it.Kind {
	case KBool:
		return it.B, nil
	case KInt:
		return it.I != 0, nil
	case KFloat:
		return it.F != 0 && !math.IsNaN(it.F), nil
	case KString, KUntyped:
		return len(it.S) > 0, nil
	default:
		return false, errf(codeEBV, "no effective boolean value for item kind %d", it.Kind)
	}
}

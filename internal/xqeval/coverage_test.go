package xqeval

import (
	"strings"
	"testing"

	"soxq/internal/core"
)

// TestEvalMoreAxes drives the remaining axes through full queries.
func TestEvalMoreAxes(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<r><a><b1/><b2/><b3/></a><c><d><e/></d></c></r>`)
	cases := [][2]string{
		{`name(doc("d.xml")//b2/following-sibling::*)`, `b3`},
		{`name(doc("d.xml")//b2/preceding-sibling::*)`, `b1`},
		{`for $n in doc("d.xml")//e/ancestor::* return name($n)`, `r c d`},
		{`for $n in doc("d.xml")//e/ancestor-or-self::* return name($n)`, `r c d e`},
		{`for $n in doc("d.xml")//a/following::* return name($n)`, `c d e`},
		{`for $n in doc("d.xml")//d/preceding::* return name($n)`, `a b1 b2 b3`},
		{`name(doc("d.xml")//e/ancestor::*[1])`, `d`}, // reverse axis position
		{`name(doc("d.xml")//e/ancestor::*[last()])`, `r`},
		{`count(doc("d.xml")//b2/self::node())`, `1`},
		{`count(doc("d.xml")//b2/descendant-or-self::node())`, `1`},
		{`name(doc("d.xml")//e/..)`, `d`},
		// Steps from attribute nodes.
		{`name(doc("d.xml")//a/@*)`, ``}, // no attributes: empty
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

func TestEvalAttributeContext(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<r><a id="x" n="1"/><a id="y" n="2"/></r>`)
	cases := [][2]string{
		{`for $v in doc("d.xml")//a/@id return string($v)`, `x y`},
		{`name(doc("d.xml")//a[1]/@id/..)`, `a`}, // parent of an attribute
		{`count(doc("d.xml")//a[1]/@*)`, `2`},
		// Two attribute contexts in one iteration: the shared ancestors
		// (document node — whose name is empty — and <r>) appear once
		// thanks to doc-order dedup at the step boundary.
		{`for $v in doc("d.xml")//a/@id/ancestor-or-self::node() return name($v)`, ` r a id a id`},
		{`string(doc("d.xml")//a[@n = "2"]/@id)`, `y`},
		{`data(doc("d.xml")//a[1]/@n) + 1`, `2`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

func TestOrderByVariants(t *testing.T) {
	h := newHarness()
	cases := [][2]string{
		// Multiple keys.
		{`for $p in (("b"), ("a"), ("b"), ("a")) order by $p, 1 return $p`, `a a b b`},
		// Secondary key breaks ties; order by is stable.
		{`for $x in (3, 1, 2, 1) order by $x descending return $x`, `3 2 1 1`},
		// Empty keys: default empty least.
		{`for $x in (2, 1) order by (if ($x = 1) then () else $x) return $x`, `1 2`},
		{`for $x in (2, 1) order by (if ($x = 1) then () else $x) empty greatest return $x`, `2 1`},
		// Numeric vs string keys.
		{`for $x in ("10", "9") order by number($x) return $x`, `9 10`},
		{`for $x in ("10", "9") order by $x return $x`, `10 9`},
		// order by inside a nested FLWOR sorts within the outer iteration.
		{`for $g in (1, 2) return string-join(
		    for $x in (3, 1, 2) order by $x return string($x * $g), ",")`,
			`1,2,3 2,4,6`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
	// Multi-item order keys are a type error.
	if _, err := h.run(t, `for $x in (1, 2) order by (1, 2) return $x`, core.StrategyLoopLifted); err == nil {
		t.Fatal("sequence order key must fail")
	}
}

func TestIfPartitioningIsLazy(t *testing.T) {
	h := newHarness()
	// error() only evaluates on the iterations that take the else branch;
	// none do, so the query succeeds.
	wantEval(t, h,
		`for $x in (1, 2, 3) return if ($x > 0) then $x else error("unreachable")`,
		`1 2 3`)
	// And it does fire when some iteration reaches it.
	if _, err := h.run(t,
		`for $x in (1, -2) return if ($x > 0) then $x else error("boom")`,
		core.StrategyLoopLifted); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("else branch should have fired: %v", err)
	}
}

func TestQuantifiedOverNodes(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<r><p age="30"/><p age="40"/></r>`)
	cases := [][2]string{
		{`some $p in doc("d.xml")//p satisfies $p/@age > 35`, `true`},
		{`every $p in doc("d.xml")//p satisfies $p/@age > 35`, `false`},
		{`every $p in doc("d.xml")//p satisfies $p/@age > 25`, `true`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

func TestStringValueAndData(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<r><a>one<b>two</b>three</a></r>`)
	cases := [][2]string{
		{`string(doc("d.xml")//a)`, `onetwothree`},
		{`string-value(doc("d.xml")//b)`, `two`},
		{`string(doc("d.xml"))`, `onetwothree`},
		{`count(data(doc("d.xml")//a/text()))`, `2`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

func TestNestedUDFsAndShadowing(t *testing.T) {
	h := newHarness()
	wantEval(t, h, `
	  declare function local:inc($x) { $x + 1 };
	  declare function local:twice($f) { local:inc(local:inc($f)) };
	  local:twice(40)`, `42`)
	// Parameter shadows an outer variable of the same name.
	wantEval(t, h, `
	  declare variable $x := 100;
	  declare function local:f($x) { $x * 2 };
	  (local:f(5), $x)`, `10 100`)
	// let shadows for.
	wantEval(t, h, `for $x in (1, 2) let $x := $x * 10 return $x`, `10 20`)
}

func TestComparisonMatrix(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<r><v>10</v><v>9</v></r>`)
	cases := [][2]string{
		// Node atomization: untyped vs number compares numerically.
		{`doc("d.xml")//v[1] > 9`, `true`},
		// untyped vs string compares as string.
		{`doc("d.xml")//v[1] = "10"`, `true`},
		// untyped vs untyped, both numeric: numeric comparison (the
		// Figure 2/3 region predicate behaviour).
		{`doc("d.xml")//v[1] > doc("d.xml")//v[2]`, `true`},
		// boolean general comparison.
		{`true() = true()`, `true`},
		{`(1 = 1) != false()`, `true`},
		// value comparisons on empty yield empty (EBV false).
		{`if (() eq 1) then "t" else "f"`, `f`},
		{`count((3, 1) = 1)`, `1`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
	if _, err := h.run(t, `true() lt "x"`, core.StrategyLoopLifted); err == nil {
		t.Fatal("boolean vs string value comparison must fail")
	}
}

func TestSoFunctionsErrorPaths(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "d.xml", `<r><a start="1" end="5"/></r>`)
	bad := []string{
		`so:blob-text(doc("d.xml")//a)`,                   // no BLOB configured
		`so:blob-text("not a node")`,                      // atomic argument
		`so:select-narrow(1)`,                             // atomic context
		`doc("d.xml")//a/select-narrow::b[error("pred")]`, // error in predicate
	}
	for _, q := range bad {
		if _, err := h.run(t, q, core.StrategyLoopLifted); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
	// so:start/so:end on a non-area element: empty.
	wantEval(t, h, `count(so:start(doc("d.xml")//r))`, `0`)
}

func TestDistinctDocsSameName(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "a.xml", `<r><x start="0" end="10"/><y start="2" end="3"/></r>`)
	h.addDoc(t, "b.xml", `<r><x start="0" end="10"/><y start="2" end="3"/></r>`)
	// StandOff joins match within each fragment only: context from a.xml
	// never returns nodes of b.xml.
	q := `let $both := (doc("a.xml")//x, doc("b.xml")//x)
	      return count($both/select-narrow::y)`
	items, err := h.run(t, q, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(items) != "2" {
		t.Fatalf("cross-doc join count = %q, want 2 (one y per document)", serialize(items))
	}
	// Node identity is per document.
	wantEval(t, h, `doc("a.xml")//x is doc("b.xml")//x`, `false`)
	wantEval(t, h, `count(doc("a.xml")//y | doc("b.xml")//y)`, `2`)
}

// TestDateTimePositions: the paper's conclusion proposes temporal
// annotations (MPEG-7, SMIL); positions typed as xs:dateTime map to the
// int64 domain as Unix nanoseconds and join like any other region.
func TestDateTimePositions(t *testing.T) {
	h := newHarness()
	h.addDoc(t, "tv.xml", `<schedule>
	  <programme title="News"  start="2006-06-30T18:00:00Z" end="2006-06-30T18:30:00Z"/>
	  <programme title="Match" start="2006-06-30T18:30:00Z" end="2006-06-30T20:15:00Z"/>
	  <ad brand="Cola"  start="2006-06-30T18:10:00Z" end="2006-06-30T18:11:00Z"/>
	  <ad brand="Soap"  start="2006-06-30T19:00:00Z" end="2006-06-30T19:01:00Z"/>
	  <ad brand="Car"   start="2006-06-30T20:14:00Z" end="2006-06-30T20:16:00Z"/>
	</schedule>`)
	pre := `declare option standoff-type "xs:dateTime";
`
	items, err := h.run(t, pre+
		`for $p in doc("tv.xml")//programme
		 return concat(string($p/@title), "=", string(count($p/select-narrow::ad)))`,
		core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(items); got != "News=1 Match=1" {
		t.Fatalf("ads per programme = %q (Car straddles the end and must not count)", got)
	}
	items, err = h.run(t, pre+`for $a in doc("tv.xml")//programme[@title = "Match"]/select-wide::ad
	                           return string($a/@brand)`, core.StrategyLoopLifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(items); got != "Soap Car" {
		t.Fatalf("overlapping ads = %q", got)
	}
}

// TestBuiltinEdgeCases rounds out the function library behaviour.
func TestBuiltinEdgeCases(t *testing.T) {
	h := newHarness()
	cases := [][2]string{
		{`string-join((), "-")`, ``},
		{`string-join(("a"), ())`, `a`},
		{`substring("hello", 0)`, `hello`},
		{`substring("hello", -5, 7)`, `h`},
		{`substring("hello", 99)`, ``},
		{`subsequence((1, 2, 3), -1)`, `1 2 3`},
		{`subsequence((1, 2, 3), 99)`, ``},
		{`remove((1, 2), 99)`, `1 2`},
		{`insert-before((1, 2), 99, 3)`, `1 2 3`},
		{`insert-before((1, 2), 0, 3)`, `3 1 2`},
		{`round(-2.5)`, `-2`},
		{`round(2.4)`, `2`},
		{`abs(-2.5)`, `2.5`},
		{`floor(-1.2)`, `-2`},
		{`number("nope") = number("nope")`, `false`}, // NaN never equals
		{`string(number("nope"))`, `NaN`},
		{`concat("", "")`, ``},
		{`normalize-space("")`, ``},
		{`translate("abc", "", "xyz")`, `abc`},
		{`min(())`, ``},
		{`max(())`, ``},
		{`avg(())`, ``},
		{`distinct-values(())`, ``},
		{`reverse(())`, ``},
		{`local-name(<so:x/>)`, `x`},
		{`name(<so:x/>)`, `so:x`},
	}
	for _, c := range cases {
		wantEval(t, h, c[0], c[1])
	}
}

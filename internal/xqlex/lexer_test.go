package xqlex

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	lx := New(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == EOF {
			return out
		}
		out = append(out, tok)
	}
}

func kinds(toks []Token) string {
	var parts []string
	for _, t := range toks {
		switch t.Kind {
		case Name:
			parts = append(parts, "n:"+t.Text)
		case Integer:
			parts = append(parts, "i:"+t.Text)
		case Decimal:
			parts = append(parts, "d:"+t.Text)
		case String:
			parts = append(parts, "s:"+t.Text)
		case Symbol:
			parts = append(parts, t.Text)
		}
	}
	return strings.Join(parts, " ")
}

func TestLexBasics(t *testing.T) {
	cases := [][2]string{
		{`for $x in (1, 2.5)`, `n:for $ n:x n:in ( i:1 , d:2.5 )`},
		{`a/b//c`, `n:a / n:b // n:c`},
		{`child::a[@id = "x"]`, `n:child :: n:a [ @ n:id = s:x ]`},
		{`select-narrow::shot`, `n:select-narrow :: n:shot`},
		{`1+2`, `i:1 + i:2`},
		{`x-1`, `n:x-1`}, // hyphens join names: XQuery needs spaces for minus
		{`x - 1`, `n:x - i:1`},
		{`$p:var`, `$ n:p:var`},
		{`ns:func()`, `n:ns:func ( )`},
		{`.5 .. . //`, `d:.5 .. . //`},
		{`1e3 1.5E-2`, `d:1e3 d:1.5E-2`},
		{`'it''s' "a""b"`, `s:it's s:a"b`},
		{`a << b >> c`, `n:a << n:b >> n:c`},
		{`x := y`, `n:x := n:y`},
		{`<= >= != =`, `<= >= != =`},
		{`(: comment :) 7`, `i:7`},
		{`(: nested (: inner :) outer :) x`, `n:x`},
		{`a (:c:) b`, `n:a n:b`},
		{`_under _x.y`, `n:_under n:_x.y`},
	}
	for _, c := range cases {
		if got := kinds(lexAll(t, c[0])); got != c[1] {
			t.Errorf("lex %q:\n got  %s\nwant %s", c[0], got, c[1])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`'unterminated`,
		`(: unterminated`,
		`1x`,
		`1.5e`,
		`1e+`,
		"\x01",
	} {
		lx := New(src)
		var err error
		for {
			var tok Token
			tok, err = lx.Next()
			if err != nil || tok.Kind == EOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lex %q should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	lx := New("ab\n  cd")
	tok, _ := lx.Next()
	if tok.Line != 1 || tok.Col != 1 {
		t.Fatalf("first token at %d:%d", tok.Line, tok.Col)
	}
	tok, _ = lx.Next()
	if tok.Line != 2 || tok.Col != 3 {
		t.Fatalf("second token at %d:%d", tok.Line, tok.Col)
	}
	if tok.Pos != 5 {
		t.Fatalf("second token pos = %d", tok.Pos)
	}
}

func TestLexSetPos(t *testing.T) {
	src := `aa bb cc`
	lx := New(src)
	if _, err := lx.Next(); err != nil {
		t.Fatal(err)
	}
	lx.SetPos(3)
	tok, _ := lx.Next()
	if tok.Text != "bb" || tok.Col != 4 {
		t.Fatalf("after SetPos: %q at col %d", tok.Text, tok.Col)
	}
	if lx.Src() != src {
		t.Fatal("Src() changed")
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: EOF}).String() != "end of query" {
		t.Fatal("EOF string")
	}
	if s := (Token{Kind: String, Text: "x"}).String(); !strings.Contains(s, `"x"`) {
		t.Fatalf("string token: %s", s)
	}
	if s := (Token{Kind: Name, Text: "abc"}).String(); s != `"abc"` {
		t.Fatalf("name token: %s", s)
	}
}

func TestLexError(t *testing.T) {
	e := &Error{Line: 3, Col: 9, Msg: "boom"}
	if e.Error() != "xquery:3:9: boom" {
		t.Fatalf("error format: %s", e.Error())
	}
}

// Package xqlex tokenizes XQuery source text. XQuery has no reserved words
// — "for" is a legal element name — so the lexer only distinguishes names,
// literals and punctuation; keyword recognition is the parser's job. Nested
// (: comments :) are stripped here. Direct element constructors switch the
// parser into XML parsing mode, which re-lexes the raw source, so the lexer
// exposes byte positions.
package xqlex

import (
	"fmt"
	"strings"
)

// Kind classifies a token.
type Kind int

const (
	// EOF terminates the stream.
	EOF Kind = iota
	// Name is an NCName or QName (prefix:local).
	Name
	// Integer is an integer literal.
	Integer
	// Decimal is a decimal or double literal.
	Decimal
	// String is a string literal (quotes stripped, escapes decoded).
	String
	// Symbol is punctuation or an operator glyph.
	Symbol
)

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Text string // name text, literal value, or symbol spelling
	Pos  int    // byte offset of the first character
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of query"
	case String:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a lexical error with position info.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xquery:%d:%d: %s", e.Line, e.Col, e.Msg)
}

// multi-character symbols, longest first.
var symbols = []string{
	"(:", // handled specially (comment)
	":=", "::", "..", "//", "<<", ">>", "<=", ">=", "!=",
	"{", "}", "(", ")", "[", "]", ",", ";", "$", "@", "/", ".", "*",
	"+", "-", "=", "<", ">", "|", ":", "?",
}

// Lexer produces tokens from src.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Pos returns the current byte offset (used by the parser to re-scan direct
// constructor content).
func (l *Lexer) Pos() int { return l.pos }

// SetPos rewinds or advances the lexer to byte offset pos. Line/column
// information is recomputed from the start (only used at constructor
// boundaries, never in hot paths).
func (l *Lexer) SetPos(pos int) {
	l.line, l.col = 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
	}
	l.pos = pos
}

// Src returns the full source text.
func (l *Lexer) Src() string { return l.src }

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.advance(1)
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "(:") {
			depth := 0
			for l.pos < len(l.src) {
				if strings.HasPrefix(l.src[l.pos:], "(:") {
					depth++
					l.advance(2)
				} else if strings.HasPrefix(l.src[l.pos:], ":)") {
					depth--
					l.advance(2)
					if depth == 0 {
						break
					}
				} else {
					l.advance(1)
				}
			}
			if depth != 0 {
				return l.errf("unterminated comment")
			}
			continue
		}
		return nil
	}
	return nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Pos: l.pos, Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := l.src[l.pos]

	// String literals with doubled-quote escapes.
	if c == '"' || c == '\'' {
		quote := c
		l.advance(1)
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == quote {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.advance(2)
					continue
				}
				l.advance(1)
				break
			}
			sb.WriteByte(ch)
			l.advance(1)
		}
		tok.Kind = String
		tok.Text = sb.String()
		return tok, nil
	}

	// Numbers: 12, 12.5, .5, 1e3, 1.5E-2.
	if isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])) {
		start := l.pos
		kind := Integer
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
		if l.pos < len(l.src) && l.src[l.pos] == '.' {
			kind = Decimal
			l.advance(1)
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.advance(1)
			}
		}
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			kind = Decimal
			l.advance(1)
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.advance(1)
			}
			if l.pos >= len(l.src) || !isDigit(l.src[l.pos]) {
				return Token{}, l.errf("malformed number literal")
			}
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.advance(1)
			}
		}
		if l.pos < len(l.src) && isNameStart(l.src[l.pos]) {
			return Token{}, l.errf("number immediately followed by a name")
		}
		tok.Kind = kind
		tok.Text = l.src[start:l.pos]
		return tok, nil
	}

	// Names (QName: NCName or NCName:NCName).
	if isNameStart(c) {
		start := l.pos
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.advance(1)
		}
		// A single colon joins a prefix to a local name; a double colon is
		// an axis separator and stays a symbol.
		if l.pos+1 < len(l.src) && l.src[l.pos] == ':' && l.src[l.pos+1] != ':' &&
			isNameStart(l.src[l.pos+1]) {
			l.advance(1)
			for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
				l.advance(1)
			}
		}
		tok.Kind = Name
		tok.Text = l.src[start:l.pos]
		return tok, nil
	}

	// Symbols.
	for _, s := range symbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.advance(len(s))
			tok.Kind = Symbol
			tok.Text = s
			return tok, nil
		}
	}
	return Token{}, l.errf("unexpected character %q", c)
}

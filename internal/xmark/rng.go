// Package xmark generates XMark-compatible auction documents (Schmidt et
// al., VLDB 2002 — reference [12] of the paper) and converts them to the
// StandOff form used in the paper's section 4.6 evaluation: text content
// moves to a BLOB, every element carries a [start,end] region into that
// BLOB, and the element order is permuted at a coarse level so that
// parent-child navigation no longer works — only region containment does.
package xmark

// rng is a splitmix64 generator: deterministic across platforms so that a
// scale factor + seed always produces byte-identical documents.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeIn returns a uniform value in [lo, hi].
func (r *rng) rangeIn(lo, hi int) int {
	return lo + r.intn(hi-lo+1)
}

// chance returns true with probability num/den.
func (r *rng) chance(num, den int) bool {
	return r.intn(den) < num
}

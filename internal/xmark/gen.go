package xmark

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Config parameterises document generation. Scale 1.0 corresponds to the
// paper's "110MB" document (XMark's standard factor); the paper's series is
// 0.1 / 0.5 / 1 / 5 / 10 for 11 MB ... 1100 MB.
type Config struct {
	Scale float64
	Seed  uint64
}

// continents and their share of the item population (XMark's distribution).
var continents = []struct {
	name  string
	share float64
}{
	{"africa", 0.025}, {"asia", 0.092}, {"australia", 0.101},
	{"europe", 0.276}, {"namerica", 0.460}, {"samerica", 0.046},
}

// counts returns the entity counts at a scale factor, mirroring xmlgen's
// proportions (25500 persons, 21750 items, 12000 open and 9750 closed
// auctions, 1000 categories at scale 1).
type counts struct {
	persons, items, open, closed, categories, edges int
}

func countsFor(scale float64) counts {
	n := func(base float64) int {
		v := int(base * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	return counts{
		persons:    n(25500),
		items:      n(21750),
		open:       n(12000),
		closed:     n(9750),
		categories: n(1000),
		edges:      n(10000),
	}
}

// Generate writes an XMark auction document to w.
func Generate(w io.Writer, cfg Config) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	g := &generator{w: bw, r: newRNG(cfg.Seed ^ 0x584D61726B), c: countsFor(cfg.Scale)}
	g.site()
	if g.err != nil {
		return g.err
	}
	return bw.Flush()
}

// GenerateBytes renders the document into memory.
func GenerateBytes(cfg Config) ([]byte, error) {
	var buf bytes.Buffer
	if err := Generate(&buf, cfg); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type generator struct {
	w   *bufio.Writer
	r   *rng
	c   counts
	err error
}

func (g *generator) out(s string) {
	if g.err == nil {
		_, g.err = g.w.WriteString(s)
	}
}

func (g *generator) outf(format string, args ...any) {
	if g.err == nil {
		_, g.err = fmt.Fprintf(g.w, format, args...)
	}
}

// elt writes <name>text</name>.
func (g *generator) elt(name, text string) {
	g.out("<")
	g.out(name)
	g.out(">")
	g.out(text)
	g.out("</")
	g.out(name)
	g.out(">")
}

func (g *generator) site() {
	g.out("<site>")
	g.regions()
	g.categories()
	g.catgraph()
	g.people()
	g.openAuctions()
	g.closedAuctions()
	g.out("</site>")
}

func (g *generator) regions() {
	g.out("<regions>")
	itemID := 0
	remaining := g.c.items
	for ci, cont := range continents {
		n := int(float64(g.c.items) * cont.share)
		if ci == len(continents)-1 {
			n = remaining
		}
		if n < 1 {
			n = 1
		}
		if n > remaining {
			n = remaining
		}
		remaining -= n
		g.out("<" + cont.name + ">")
		for i := 0; i < n; i++ {
			g.item(itemID)
			itemID++
		}
		g.out("</" + cont.name + ">")
	}
	g.out("</regions>")
}

var locations = []string{"United States", "Germany", "Netherlands", "Japan", "Brazil", "Kenya", "Australia", "France"}
var payments = []string{"Creditcard", "Money order", "Personal Check", "Cash"}

func (g *generator) item(id int) {
	g.outf(`<item id="item%d">`, id)
	g.elt("location", locations[g.r.intn(len(locations))])
	g.elt("quantity", fmt.Sprintf("%d", g.r.rangeIn(1, 5)))
	g.elt("name", word(g.r)+" "+word(g.r))
	g.elt("payment", payments[g.r.intn(len(payments))])
	g.description()
	g.elt("shipping", "Will ship internationally")
	for k, n := 0, g.r.rangeIn(1, 3); k < n; k++ {
		g.outf(`<incategory category="category%d"/>`, g.r.intn(g.c.categories))
	}
	g.out("<mailbox>")
	for k, n := 0, g.r.intn(4); k < n; k++ {
		g.out("<mail>")
		g.elt("from", word(g.r)+" "+word(g.r))
		g.elt("to", word(g.r)+" "+word(g.r))
		g.elt("date", g.date())
		g.elt("text", textBlock(g.r, g.r.rangeIn(40, 200)))
		g.out("</mail>")
	}
	g.out("</mailbox>")
	g.out("</item>")
}

// description emits the XMark description element: either a flat text or a
// parlist with listitems.
func (g *generator) description() {
	g.out("<description>")
	if g.r.chance(7, 10) {
		g.elt("text", textBlock(g.r, g.r.rangeIn(60, 290)))
	} else {
		g.out("<parlist>")
		for k, n := 0, g.r.rangeIn(2, 4); k < n; k++ {
			g.out("<listitem>")
			g.elt("text", textBlock(g.r, g.r.rangeIn(30, 140)))
			g.out("</listitem>")
		}
		g.out("</parlist>")
	}
	g.out("</description>")
}

func (g *generator) date() string {
	return fmt.Sprintf("%02d/%02d/%d", g.r.rangeIn(1, 12), g.r.rangeIn(1, 28), g.r.rangeIn(1998, 2001))
}

func (g *generator) categories() {
	g.out("<categories>")
	for i := 0; i < g.c.categories; i++ {
		g.outf(`<category id="category%d">`, i)
		g.elt("name", word(g.r)+" "+word(g.r))
		g.description()
		g.out("</category>")
	}
	g.out("</categories>")
}

func (g *generator) catgraph() {
	g.out("<catgraph>")
	for i := 0; i < g.c.edges; i++ {
		g.outf(`<edge from="category%d" to="category%d"/>`,
			g.r.intn(g.c.categories), g.r.intn(g.c.categories))
	}
	g.out("</catgraph>")
}

var countries = []string{"United States", "Germany", "Netherlands", "Japan", "Brazil", "Kenya"}
var educations = []string{"High School", "College", "Graduate School", "Other"}

func (g *generator) people() {
	g.out("<people>")
	for i := 0; i < g.c.persons; i++ {
		first, last := word(g.r), word(g.r)
		g.outf(`<person id="person%d">`, i)
		g.elt("name", titleCase(first)+" "+titleCase(last))
		g.elt("emailaddress", "mailto:"+first+"@"+last+".com")
		if g.r.chance(1, 2) {
			g.elt("phone", fmt.Sprintf("+%d (%d) %d", g.r.rangeIn(1, 99), g.r.rangeIn(10, 999), g.r.rangeIn(1000000, 9999999)))
		}
		if g.r.chance(1, 2) {
			g.out("<address>")
			g.elt("street", fmt.Sprintf("%d %s St", g.r.rangeIn(1, 99), titleCase(word(g.r))))
			g.elt("city", titleCase(word(g.r)))
			g.elt("country", countries[g.r.intn(len(countries))])
			g.elt("zipcode", fmt.Sprintf("%d", g.r.rangeIn(10000, 99999)))
			g.out("</address>")
		}
		if g.r.chance(1, 2) {
			g.elt("homepage", "http://www."+last+".com/~"+first)
		}
		if g.r.chance(1, 2) {
			g.elt("creditcard", fmt.Sprintf("%d %d %d %d", g.r.rangeIn(1000, 9999), g.r.rangeIn(1000, 9999), g.r.rangeIn(1000, 9999), g.r.rangeIn(1000, 9999)))
		}
		if g.r.chance(3, 4) {
			g.outf(`<profile income="%d.%02d">`, g.r.rangeIn(9000, 120000), g.r.intn(100))
			for k, n := 0, g.r.intn(4); k < n; k++ {
				g.outf(`<interest category="category%d"/>`, g.r.intn(g.c.categories))
			}
			if g.r.chance(1, 2) {
				g.elt("education", educations[g.r.intn(len(educations))])
			}
			if g.r.chance(1, 2) {
				g.elt("gender", pickStr(g.r, "male", "female"))
			}
			g.elt("business", pickStr(g.r, "Yes", "No"))
			if g.r.chance(1, 2) {
				g.elt("age", fmt.Sprintf("%d", g.r.rangeIn(18, 90)))
			}
			g.out("</profile>")
		}
		if g.r.chance(1, 3) {
			g.out("<watches>")
			for k, n := 0, g.r.rangeIn(1, 4); k < n; k++ {
				g.outf(`<watch open_auction="open_auction%d"/>`, g.r.intn(g.c.open))
			}
			g.out("</watches>")
		}
		g.out("</person>")
	}
	g.out("</people>")
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func pickStr(r *rng, a, b string) string {
	if r.chance(1, 2) {
		return a
	}
	return b
}

func (g *generator) openAuctions() {
	g.out("<open_auctions>")
	for i := 0; i < g.c.open; i++ {
		g.outf(`<open_auction id="open_auction%d">`, i)
		initial := g.r.rangeIn(1, 200)
		g.elt("initial", fmt.Sprintf("%d.%02d", initial, g.r.intn(100)))
		if g.r.chance(1, 2) {
			g.elt("reserve", fmt.Sprintf("%d.%02d", initial+g.r.rangeIn(1, 100), g.r.intn(100)))
		}
		cur := float64(initial)
		for k, n := 0, g.r.intn(10); k < n; k++ {
			inc := float64(g.r.rangeIn(1, 24)) * 1.5
			cur += inc
			g.out("<bidder>")
			g.elt("date", g.date())
			g.elt("time", fmt.Sprintf("%02d:%02d:%02d", g.r.intn(24), g.r.intn(60), g.r.intn(60)))
			g.outf(`<personref person="person%d"/>`, g.r.intn(g.c.persons))
			g.elt("increase", fmt.Sprintf("%.2f", inc))
			g.out("</bidder>")
		}
		g.elt("current", fmt.Sprintf("%.2f", cur))
		if g.r.chance(1, 2) {
			g.elt("privacy", "Yes")
		}
		g.outf(`<itemref item="item%d"/>`, g.r.intn(g.c.items))
		g.outf(`<seller person="person%d"/>`, g.r.intn(g.c.persons))
		g.annotation()
		g.elt("quantity", fmt.Sprintf("%d", g.r.rangeIn(1, 5)))
		g.elt("type", pickStr(g.r, "Regular", "Featured"))
		g.out("<interval>")
		g.elt("start", g.date())
		g.elt("end", g.date())
		g.out("</interval>")
		g.out("</open_auction>")
	}
	g.out("</open_auctions>")
}

func (g *generator) annotation() {
	g.out("<annotation>")
	g.outf(`<author person="person%d"/>`, g.r.intn(g.c.persons))
	g.description()
	g.elt("happiness", fmt.Sprintf("%d", g.r.rangeIn(1, 10)))
	g.out("</annotation>")
}

func (g *generator) closedAuctions() {
	g.out("<closed_auctions>")
	for i := 0; i < g.c.closed; i++ {
		g.out("<closed_auction>")
		g.outf(`<seller person="person%d"/>`, g.r.intn(g.c.persons))
		g.outf(`<buyer person="person%d"/>`, g.r.intn(g.c.persons))
		g.outf(`<itemref item="item%d"/>`, g.r.intn(g.c.items))
		g.elt("price", fmt.Sprintf("%d.%02d", g.r.rangeIn(1, 400), g.r.intn(100)))
		g.elt("date", g.date())
		g.elt("quantity", fmt.Sprintf("%d", g.r.rangeIn(1, 5)))
		g.elt("type", pickStr(g.r, "Regular", "Featured"))
		g.annotation()
		g.out("</closed_auction>")
	}
	g.out("</closed_auctions>")
}

package xmark

import "fmt"

// QueryNumbers lists the XMark queries the paper rewrote to stand-off form
// (section 4.6): 1, 2, 6 and 7.
var QueryNumbers = []int{1, 2, 6, 7}

// Query returns XMark query q against document uri in its original form.
// Queries 1, 2, 6 and 7 are the ones the paper rewrote to stand-off form;
// 3, 5 and 8 exercise the engine substrate further (positional predicates,
// aggregation, value joins).
func Query(q int, uri string) string {
	switch q {
	case 1:
		return fmt.Sprintf(
			`for $b in doc(%q)/site/people/person[@id = "person0"] return $b/name/text()`, uri)
	case 2:
		return fmt.Sprintf(
			`for $b in doc(%q)/site/open_auctions/open_auction
return <increase>{ $b/bidder[1]/increase/text() }</increase>`, uri)
	case 3:
		return fmt.Sprintf(
			`for $b in doc(%q)/site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
return <increase first="{$b/bidder[1]/increase/text()}" last="{$b/bidder[last()]/increase/text()}"/>`, uri)
	case 5:
		return fmt.Sprintf(
			`count(for $i in doc(%q)/site/closed_auctions/closed_auction
       where $i/price/text() >= 40
       return $i/price)`, uri)
	case 6:
		return fmt.Sprintf(
			`for $b in doc(%q)//site/regions return count($b//item)`, uri)
	case 7:
		return fmt.Sprintf(
			`for $p in doc(%q)/site
return count($p//description) + count($p//annotation) + count($p//emailaddress)`, uri)
	case 8:
		return fmt.Sprintf(
			`for $p in doc(%q)/site/people/person
let $a := for $t in doc(%q)/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{$p/name/text()}">{ count($a) }</item>`, uri, uri)
	default:
		panic(fmt.Sprintf("xmark: no query %d", q))
	}
}

// StandOffQuery returns the stand-off rewriting of XMark query q: descendant
// and child steps replaced by select-narrow steps, exactly as the paper's
// Figure 5 shows for query 2. Text retrieval drops out because text lives in
// the BLOB; the queries return the annotation elements instead.
func StandOffQuery(q int, uri string) string {
	switch q {
	case 1:
		return fmt.Sprintf(
			`for $b in doc(%q)//site/select-narrow::people/select-narrow::person[@id = "person0"]
return $b/select-narrow::name`, uri)
	case 2:
		// Figure 5, verbatim modulo the document URI.
		return fmt.Sprintf(
			`for $b in doc(%q)//site/select-narrow::open_auctions
	/select-narrow::open_auction
return <increase> {
	$b/select-narrow::bidder[1]/select-narrow::increase
} </increase>`, uri)
	case 6:
		return fmt.Sprintf(
			`for $b in doc(%q)//site/select-narrow::regions return count($b/select-narrow::item)`, uri)
	case 7:
		return fmt.Sprintf(
			`for $p in doc(%q)//site
return count($p/select-narrow::description) + count($p/select-narrow::annotation)
     + count($p/select-narrow::emailaddress)`, uri)
	default:
		panic(fmt.Sprintf("xmark: no stand-off query %d", q))
	}
}

// UDFStandOffQuery returns the stand-off query expressed through the Figure
// 3 user-defined function with candidate sequence (Alternative 2) — the
// literal XQuery baseline. It produces the same results as StandOffQuery but
// costs a quadratic nested loop per step.
func UDFStandOffQuery(q int, uri string) string {
	prolog := `declare function local:sn($input, $candidates) {
  (for $q in $input
   for $p in $candidates
   where $p/@start >= $q/@start and $p/@end <= $q/@end
     and root($p) is root($q)
   return $p)/.
};
`
	switch q {
	case 1:
		return prolog + fmt.Sprintf(
			`for $b in local:sn(local:sn(doc(%q)//site, doc(%q)//people), doc(%q)//person)[@id = "person0"]
return local:sn($b, doc(%q)//name)`, uri, uri, uri, uri)
	case 2:
		return prolog + fmt.Sprintf(
			`for $b in local:sn(local:sn(doc(%q)//site, doc(%q)//open_auctions), doc(%q)//open_auction)
return <increase>{ local:sn(local:sn($b, doc(%q)//bidder)[1], doc(%q)//increase) }</increase>`,
			uri, uri, uri, uri, uri)
	case 6:
		return prolog + fmt.Sprintf(
			`for $b in local:sn(doc(%q)//site, doc(%q)//regions) return count(local:sn($b, doc(%q)//item))`,
			uri, uri, uri)
	case 7:
		return prolog + fmt.Sprintf(
			`for $p in doc(%q)//site
return count(local:sn($p, doc(%q)//description)) + count(local:sn($p, doc(%q)//annotation))
     + count(local:sn($p, doc(%q)//emailaddress))`, uri, uri, uri, uri)
	default:
		panic(fmt.Sprintf("xmark: no UDF stand-off query %d", q))
	}
}

package xmark

import "strings"

// wordList approximates xmlgen's Shakespeare-derived vocabulary. The exact
// words are irrelevant to the joins; only the byte volume and the element
// shape matter for the reproduction.
var wordList = strings.Fields(`
the and of to a in that is was he for it with as his on be at by i this had
not are but from or have an they which one you were her all she there would
their we him been has when who will more no if out so said what up its about
into than them can only other new some could time these two may then do first
any my now such like our over man me even most made after also did many before
must through back years where much your way well down should because each just
those people mr how too little state good very make world still own see men
work long get here between both life being under never day same another know
while last might us great old year off come since against go came right used
take three states himself few house use during without again place american
around however home small found mrs thought went say part once general high
upon school every don does got united left number course war until always away
something fact though water less public put thing almost hand enough far took
head yet government system better set told nothing night end why called didn
eyes find going look asked later knew point next city business case group woman
give days young let room often seemed half sometimes ten words together shall
whole empire honour sword crown noble battle fortune kingdom majesty gracious
prince duke villain valiant wherefore thee thou thy hath doth tis twas anon
forsooth prithee sirrah knave varlet cozen fie marry troth
`)

// sentence appends n random words to sb, capitalised and terminated.
func sentence(r *rng, sb *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		w := wordList[r.intn(len(wordList))]
		if i == 0 {
			sb.WriteString(strings.ToUpper(w[:1]))
			sb.WriteString(w[1:])
		} else {
			sb.WriteByte(' ')
			sb.WriteString(w)
		}
	}
	sb.WriteByte('.')
}

// textBlock produces a paragraph of roughly the requested word count.
func textBlock(r *rng, words int) string {
	var sb strings.Builder
	remaining := words
	for remaining > 0 {
		n := r.rangeIn(5, 14)
		if n > remaining {
			n = remaining
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sentence(r, &sb, n)
		remaining -= n
	}
	return sb.String()
}

// word returns one random word.
func word(r *rng) string { return wordList[r.intn(len(wordList))] }

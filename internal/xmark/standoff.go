package xmark

import (
	"bytes"
	"fmt"

	"soxq/internal/tree"
)

// StandOffConfig controls the stand-off conversion of section 4.6: text
// content moves to the BLOB, every element gets [start,end] region
// attributes referring into it, and record elements are permuted across
// their containers so that the original parent-child relationships are no
// longer represented by the tree structure — only by region containment.
type StandOffConfig struct {
	Seed uint64
	// StartAttr/EndAttr name the region attributes (paper defaults).
	StartAttr, EndAttr string
	// RecordNames lists the element names whose subtrees are permuted. Nil
	// selects the XMark record elements.
	RecordNames []string
	// Permute can be disabled to keep the original element order (the
	// regions are identical either way).
	Permute bool
}

// DefaultStandOffConfig returns the configuration used by the paper's
// benchmark conversion.
func DefaultStandOffConfig() StandOffConfig {
	return StandOffConfig{
		StartAttr: "start",
		EndAttr:   "end",
		RecordNames: []string{
			"item", "category", "edge", "person", "open_auction", "closed_auction",
		},
		Permute: true,
	}
}

// StandOffResult holds the converted document and its BLOB.
type StandOffResult struct {
	XML  []byte
	Blob []byte
}

// StandOffize converts any parsed XML document into its stand-off form.
func StandOffize(d *tree.Doc, cfg StandOffConfig) (*StandOffResult, error) {
	if cfg.StartAttr == "" || cfg.EndAttr == "" {
		return nil, fmt.Errorf("xmark: StandOffConfig needs attribute names")
	}
	n := int32(d.NumNodes())
	for pre := int32(0); pre < n; pre++ {
		if d.Kind(pre) == tree.ElementNode {
			if _, ok := d.AttrByName(pre, cfg.StartAttr); ok {
				return nil, fmt.Errorf("xmark: element <%s> already has a %q attribute",
					d.NodeName(pre), cfg.StartAttr)
			}
		}
	}
	s := &standoffizer{d: d, cfg: cfg,
		start: make([]int64, n), end: make([]int64, n),
		records: map[int32]bool{},
	}
	root := d.FirstChild(0)
	for root >= 0 && d.Kind(root) != tree.ElementNode {
		root = d.NextSibling(root)
	}
	if root < 0 {
		return nil, fmt.Errorf("xmark: document has no root element")
	}
	s.computeRegions(root)
	s.collectRecords(root)
	s.write(root)
	return &StandOffResult{XML: s.xml.Bytes(), Blob: s.blob.Bytes()}, nil
}

type standoffizer struct {
	d    *tree.Doc
	cfg  StandOffConfig
	blob bytes.Buffer
	xml  bytes.Buffer

	start, end []int64 // per element pre: BLOB region (closed interval)
	records    map[int32]bool
	assign     map[int32][]int32 // container pre -> record pres (permuted)
}

// computeRegions walks the tree in document order, appending text content to
// the BLOB and assigning every element the byte span of its subtree. An
// element without any text gets a one-byte separator so that it owns a
// distinct point region.
func (s *standoffizer) computeRegions(pre int32) {
	d := s.d
	from := int64(s.blob.Len())
	for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
		switch d.Kind(c) {
		case tree.TextNode:
			s.blob.Write(d.ValueBytes(c))
		case tree.ElementNode:
			s.computeRegions(c)
		}
	}
	if int64(s.blob.Len()) == from {
		s.blob.WriteByte('\n') // empty element: allocate one position
	}
	s.start[pre] = from
	s.end[pre] = int64(s.blob.Len()) - 1
}

// collectRecords marks record elements and assigns them (shuffled) to the
// container elements that originally held records.
func (s *standoffizer) collectRecords(root int32) {
	d := s.d
	isRecord := map[string]bool{}
	for _, n := range s.cfg.RecordNames {
		isRecord[n] = true
	}
	var recs []int32
	var containers []int32
	seen := map[int32]bool{}
	var walk func(pre int32)
	walk = func(pre int32) {
		for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
			if d.Kind(c) != tree.ElementNode {
				continue
			}
			if isRecord[d.NodeName(c)] {
				s.records[c] = true
				recs = append(recs, c)
				if !seen[pre] {
					seen[pre] = true
					containers = append(containers, pre)
				}
				continue // do not descend into records
			}
			walk(c)
		}
	}
	walk(root)
	s.assign = map[int32][]int32{}
	if len(recs) == 0 || len(containers) == 0 {
		return
	}
	if s.cfg.Permute {
		r := newRNG(s.cfg.Seed ^ 0x53744F66)
		for i := len(recs) - 1; i > 0; i-- {
			j := r.intn(i + 1)
			recs[i], recs[j] = recs[j], recs[i]
		}
		// Round-robin redistribution across containers: a person subtree
		// may end up under <asia>, an item under <people> — exactly the
		// "permuted on a coarse level" of section 4.6.
		for i, rec := range recs {
			c := containers[i%len(containers)]
			s.assign[c] = append(s.assign[c], rec)
		}
		return
	}
	// Keep records in their original containers and order.
	for _, rec := range recs {
		s.assign[s.d.Parent(rec)] = append(s.assign[s.d.Parent(rec)], rec)
	}
}

// write serialises the stand-off document: elements only (text lives in the
// BLOB), original attributes plus the region attributes.
func (s *standoffizer) write(pre int32) {
	d := s.d
	s.xml.WriteByte('<')
	s.xml.WriteString(d.NodeName(pre))
	lo, hi := d.Attrs(pre)
	for a := lo; a < hi; a++ {
		fmt.Fprintf(&s.xml, ` %s="%s"`, d.AttrName(a), tree.EscapeAttr(d.AttrValue(a)))
	}
	fmt.Fprintf(&s.xml, ` %s="%d" %s="%d"`, s.cfg.StartAttr, s.start[pre], s.cfg.EndAttr, s.end[pre])

	var children []int32
	for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
		if d.Kind(c) == tree.ElementNode && !s.records[c] {
			children = append(children, c)
		}
	}
	assigned := s.assign[pre]
	if len(children) == 0 && len(assigned) == 0 {
		s.xml.WriteString("/>")
		return
	}
	s.xml.WriteByte('>')
	for _, c := range children {
		s.write(c)
	}
	for _, rec := range assigned {
		s.write(rec)
	}
	s.xml.WriteString("</")
	s.xml.WriteString(d.NodeName(pre))
	s.xml.WriteByte('>')
}

package xmark

import (
	"bytes"
	"strings"
	"testing"

	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xmlparse"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Scale: 0.001, Seed: 7}
	a, err := GenerateBytes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBytes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("generation is not deterministic")
	}
	c, err := GenerateBytes(Config{Scale: 0.001, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateWellFormedAndShaped(t *testing.T) {
	data, err := GenerateBytes(Config{Scale: 0.002, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := xmlparse.Parse("xmark.xml", data)
	if err != nil {
		t.Fatalf("generated document is not well-formed: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	count := func(name string) int {
		id, ok := d.Dict().Lookup(name)
		if !ok {
			return 0
		}
		return len(d.ElementsByName(id))
	}
	c := countsFor(0.002)
	for name, want := range map[string]int{
		"person": c.persons, "open_auction": c.open,
		"closed_auction": c.closed, "category": c.categories,
		"item": c.items, "edge": c.edges,
	} {
		if got := count(name); got != want {
			t.Errorf("%s count = %d, want %d", name, got, want)
		}
	}
	for _, name := range []string{"site", "regions", "people", "open_auctions",
		"closed_auctions", "categories", "catgraph", "africa", "europe"} {
		if count(name) == 0 {
			t.Errorf("missing element %s", name)
		}
	}
	// person0 must exist for XMark Q1.
	id, _ := d.Dict().Lookup("person")
	found := false
	for _, pre := range d.ElementsByName(id) {
		if v, _ := d.AttrByName(pre, "id"); v == "person0" {
			found = true
		}
	}
	if !found {
		t.Error("person0 missing")
	}
}

// TestGenerateSizeCalibration: scale maps to the paper's document sizes
// within a tolerance (scale 0.01 should be ~1.1 MB).
func TestGenerateSizeCalibration(t *testing.T) {
	data, err := GenerateBytes(Config{Scale: 0.01, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	mb := float64(len(data)) / (1 << 20)
	if mb < 0.8 || mb > 1.5 {
		t.Fatalf("scale 0.01 generated %.2f MB, want ~1.1 MB (re-calibrate the generator)", mb)
	}
}

func standoffize(t *testing.T, scale float64, permute bool) (*tree.Doc, *StandOffResult) {
	t.Helper()
	data, err := GenerateBytes(Config{Scale: scale, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := xmlparse.Parse("xmark.xml", data)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultStandOffConfig()
	cfg.Permute = permute
	res, err := StandOffize(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestStandOffizeRegions(t *testing.T) {
	orig, res := standoffize(t, 0.002, true)
	sd, err := xmlparse.Parse("xmark-so.xml", res.XML)
	if err != nil {
		t.Fatalf("stand-off document is not well-formed: %v", err)
	}
	// Same number of elements, no text nodes at all.
	var origElems, soElems, soTexts int
	for pre := int32(0); pre < int32(orig.NumNodes()); pre++ {
		if orig.Kind(pre) == tree.ElementNode {
			origElems++
		}
	}
	for pre := int32(0); pre < int32(sd.NumNodes()); pre++ {
		switch sd.Kind(pre) {
		case tree.ElementNode:
			soElems++
		case tree.TextNode:
			soTexts++
		}
	}
	if origElems != soElems {
		t.Fatalf("element count changed: %d -> %d", origElems, soElems)
	}
	if soTexts != 0 {
		t.Fatalf("stand-off document still has %d text nodes", soTexts)
	}
	// Every element is an area-annotation; the index must cover them all.
	ix, err := core.BuildIndex(sd, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumAreas() != soElems {
		t.Fatalf("region index has %d areas for %d elements", ix.NumAreas(), soElems)
	}
	// The BLOB holds the original text content: the site region spans it.
	site := int32(1)
	for sd.Kind(site) != tree.ElementNode {
		site++
	}
	regs := ix.RegionsOf(site)
	if len(regs) != 1 || regs[0].Start != 0 || regs[0].End != int64(len(res.Blob))-1 {
		t.Fatalf("site region %v does not span the BLOB (len %d)", regs, len(res.Blob))
	}
	// Concatenated original text must be a subsequence of the BLOB
	// (separator bytes may be interleaved for empty elements).
	var want bytes.Buffer
	for pre := int32(0); pre < int32(orig.NumNodes()); pre++ {
		if orig.Kind(pre) == tree.TextNode {
			want.Write(orig.ValueBytes(pre))
		}
	}
	if !isSubsequence(want.Bytes(), res.Blob) {
		t.Fatal("BLOB does not preserve the original text")
	}
}

func isSubsequence(needle, hay []byte) bool {
	i := 0
	for _, b := range hay {
		if i < len(needle) && needle[i] == b {
			i++
		}
	}
	return i == len(needle)
}

// TestStandOffizePermutes: with Permute the record elements change parents;
// without it the structure is preserved.
func TestStandOffizePermutes(t *testing.T) {
	_, res := standoffize(t, 0.002, true)
	sd, err := xmlparse.Parse("so.xml", res.XML)
	if err != nil {
		t.Fatal(err)
	}
	parentNames := map[string]map[string]bool{}
	for pre := int32(0); pre < int32(sd.NumNodes()); pre++ {
		if sd.Kind(pre) != tree.ElementNode {
			continue
		}
		name := sd.NodeName(pre)
		if name == "person" || name == "item" || name == "open_auction" {
			p := sd.Parent(pre)
			if parentNames[name] == nil {
				parentNames[name] = map[string]bool{}
			}
			parentNames[name][sd.NodeName(p)] = true
		}
	}
	if len(parentNames["person"]) < 2 {
		t.Fatalf("permutation did not scatter persons: parents = %v", parentNames["person"])
	}

	_, res2 := standoffize(t, 0.002, false)
	sd2, err := xmlparse.Parse("so2.xml", res2.XML)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := sd2.Dict().Lookup("person")
	for _, pre := range sd2.ElementsByName(id) {
		if sd2.NodeName(sd2.Parent(pre)) != "people" {
			t.Fatalf("without permutation persons must stay under people, got %s",
				sd2.NodeName(sd2.Parent(pre)))
		}
	}
}

// TestStandOffizeContainment: region containment reflects the ORIGINAL
// hierarchy even after permutation — the property the StandOff queries rely
// on.
func TestStandOffizeContainment(t *testing.T) {
	orig, res := standoffize(t, 0.002, true)
	sd, err := xmlparse.Parse("so.xml", res.XML)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(sd, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Count persons contained in the people region via the index and
	// compare with the original child count.
	peopleID, _ := sd.Dict().Lookup("people")
	personID, _ := sd.Dict().Lookup("person")
	people := sd.ElementsByName(peopleID)[0]
	cands := ix.Filter(sd.ElementsByName(personID))
	pairs := core.Join(ix, core.SelectNarrow, core.StrategyLoopLifted,
		[]core.CtxNode{{Iter: 0, Pre: people}}, 1, cands, core.JoinConfig{})

	origPersonID, _ := orig.Dict().Lookup("person")
	if len(pairs) != len(orig.ElementsByName(origPersonID)) {
		t.Fatalf("select-narrow::person from people = %d, want %d",
			len(pairs), len(orig.ElementsByName(origPersonID)))
	}
}

func TestStandOffizeRejectsExistingAttrs(t *testing.T) {
	d, err := xmlparse.Parse("x", []byte(`<a><b start="1" end="2">t</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StandOffize(d, DefaultStandOffConfig()); err == nil {
		t.Fatal("conversion must refuse documents that already use start/end attributes")
	}
	if _, err := StandOffize(d, StandOffConfig{}); err == nil {
		t.Fatal("conversion must require attribute names")
	}
}

func TestQueriesParseable(t *testing.T) {
	for _, q := range QueryNumbers {
		for _, src := range []string{Query(q, "d.xml"), StandOffQuery(q, "d.xml"), UDFStandOffQuery(q, "d.xml")} {
			if src == "" || !strings.Contains(src, "d.xml") {
				t.Fatalf("query %d text malformed: %s", q, src)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown query number must panic")
		}
	}()
	_ = Query(4, "d.xml")
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := GenerateBytes(Config{Scale: 0.01, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

func TestScaleZeroClamps(t *testing.T) {
	c := countsFor(0)
	if c.persons != 1 || c.items != 1 {
		t.Fatalf("zero scale should clamp to 1: %+v", c)
	}
}

package blob

import (
	"os"
	"path/filepath"
	"testing"

	"soxq/internal/interval"
)

func TestBytesStore(t *testing.T) {
	b := FromString("hello, world")
	if b.Size() != 12 {
		t.Fatalf("Size = %d", b.Size())
	}
	got, err := b.ReadRegion(interval.Region{Start: 7, End: 11})
	if err != nil || string(got) != "world" {
		t.Fatalf("ReadRegion = %q, %v", got, err)
	}
	got, err = b.ReadRegion(interval.Region{Start: 0, End: 0})
	if err != nil || string(got) != "h" {
		t.Fatalf("point region = %q, %v", got, err)
	}
	if _, err := b.ReadRegion(interval.Region{Start: 7, End: 12}); err == nil {
		t.Fatal("past-end region should fail")
	}
	if _, err := b.ReadRegion(interval.Region{Start: -1, End: 3}); err == nil {
		t.Fatal("negative region should fail")
	}
	if _, err := b.ReadRegion(interval.Region{Start: 5, End: 3}); err == nil {
		t.Fatal("inverted region should fail")
	}
}

func TestReadArea(t *testing.T) {
	b := FromString("AAAABBBBCCCCDDDD")
	area, err := interval.NewArea(
		interval.Region{Start: 12, End: 15},
		interval.Region{Start: 0, End: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadArea(b, area)
	if err != nil || string(got) != "AAAADDDD" {
		t.Fatalf("ReadArea = %q, %v", got, err)
	}
	bad, _ := interval.NewArea(interval.Region{Start: 14, End: 99})
	if _, err := ReadArea(b, bad); err == nil {
		t.Fatal("out-of-range area should fail")
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob.bin")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 10 {
		t.Fatalf("Size = %d", f.Size())
	}
	got, err := f.ReadRegion(interval.Region{Start: 3, End: 6})
	if err != nil || string(got) != "3456" {
		t.Fatalf("ReadRegion = %q, %v", got, err)
	}
	if _, err := f.ReadRegion(interval.Region{Start: 8, End: 12}); err == nil {
		t.Fatal("past-end region should fail")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file should fail")
	}
}

// Package blob stores the annotated objects that stand-off regions point
// into — "BLOBs" in the paper's terminology (section 2): a video stream, a
// text corpus, or the raw image of a confiscated hard drive. Annotations
// never embed BLOB content; they carry [start,end] positions, and this
// package resolves such regions back to bytes.
package blob

import (
	"errors"
	"fmt"
	"io"
	"os"

	"soxq/internal/interval"
)

// Store resolves regions of a BLOB to content.
type Store interface {
	// Size returns the number of addressable positions.
	Size() int64
	// ReadRegion returns the bytes of the closed region [r.Start, r.End].
	ReadRegion(r interval.Region) ([]byte, error)
}

// ErrOutOfRange is returned when a region falls outside the BLOB.
var ErrOutOfRange = errors.New("blob: region out of range")

// Bytes is an in-memory BLOB.
type Bytes struct {
	data []byte
}

// FromBytes wraps data as a BLOB without copying.
func FromBytes(data []byte) *Bytes { return &Bytes{data: data} }

// FromString wraps a string as a BLOB.
func FromString(s string) *Bytes { return &Bytes{data: []byte(s)} }

// Size implements Store.
func (b *Bytes) Size() int64 { return int64(len(b.data)) }

// ReadRegion implements Store.
func (b *Bytes) ReadRegion(r interval.Region) ([]byte, error) {
	if err := checkRegion(r, b.Size()); err != nil {
		return nil, err
	}
	out := make([]byte, r.Length())
	copy(out, b.data[r.Start:r.End+1])
	return out, nil
}

// ReadArea concatenates the content of every region of a (possibly
// non-contiguous) area in position order, e.g. reassembling a fragmented
// file from its disk blocks.
func ReadArea(s Store, a interval.Area) ([]byte, error) {
	var out []byte
	for _, r := range a.Regions() {
		chunk, err := s.ReadRegion(r)
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func checkRegion(r interval.Region, size int64) error {
	if !r.Valid() || r.Start < 0 || r.End >= size {
		return fmt.Errorf("%w: %s in blob of size %d", ErrOutOfRange, r, size)
	}
	return nil
}

// File is a file-backed BLOB for objects too large to hold in memory (the
// paper's >GB disk images). Reads are positioned, so a File is safe for
// concurrent readers.
type File struct {
	f    *os.File
	size int64
}

// OpenFile opens path as a BLOB.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, size: st.Size()}, nil
}

// Close releases the underlying file.
func (b *File) Close() error { return b.f.Close() }

// Size implements Store.
func (b *File) Size() int64 { return b.size }

// ReadRegion implements Store.
func (b *File) ReadRegion(r interval.Region) ([]byte, error) {
	if err := checkRegion(r, b.size); err != nil {
		return nil, err
	}
	out := make([]byte, r.Length())
	if _, err := b.f.ReadAt(out, r.Start); err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}

package interval

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Area is an area-annotation's geometry: one or more regions that neither
// overlap nor touch each other, kept sorted on Start (section 3.1 of the
// paper: "an area-annotation a consists of a set of one or more regions
// r1,..,rn (that do not overlap nor touch each other)"). A single-region
// Area is the common case produced by the attribute representation; the
// region-element representation can produce non-contiguous areas, e.g.
// fragmented files carved from a disk image.
type Area struct {
	regions []Region
}

// ErrEmptyArea is returned when constructing an area with no regions.
var ErrEmptyArea = errors.New("interval: area needs at least one region")

// ErrTouchingRegions is returned when an area's regions overlap or touch.
var ErrTouchingRegions = errors.New("interval: area regions overlap or touch")

// NewArea builds an area from the given regions. Regions may arrive in any
// order; they are sorted. An error is returned if any region is invalid, if
// no region is given, or if two regions overlap or touch (such inputs should
// be merged by the caller; Normalize does that).
func NewArea(regions ...Region) (Area, error) {
	if len(regions) == 0 {
		return Area{}, ErrEmptyArea
	}
	rs := make([]Region, len(regions))
	copy(rs, regions)
	for _, r := range rs {
		if !r.Valid() {
			return Area{}, fmt.Errorf("%w: %s", ErrInvalidRegion, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return Compare(rs[i], rs[j]) < 0 })
	for i := 1; i < len(rs); i++ {
		if rs[i-1].End+1 >= rs[i].Start {
			return Area{}, fmt.Errorf("%w: %s and %s", ErrTouchingRegions, rs[i-1], rs[i])
		}
	}
	return Area{regions: rs}, nil
}

// Normalize merges any overlapping or touching regions and returns the
// resulting well-formed area. It is the lenient counterpart of NewArea.
func Normalize(regions ...Region) (Area, error) {
	if len(regions) == 0 {
		return Area{}, ErrEmptyArea
	}
	rs := make([]Region, 0, len(regions))
	for _, r := range regions {
		if !r.Valid() {
			return Area{}, fmt.Errorf("%w: %s", ErrInvalidRegion, r)
		}
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return Compare(rs[i], rs[j]) < 0 })
	merged := rs[:1]
	for _, r := range rs[1:] {
		last := &merged[len(merged)-1]
		if r.Start <= last.End+1 { // overlapping or touching: coalesce
			if r.End > last.End {
				last.End = r.End
			}
			continue
		}
		merged = append(merged, r)
	}
	out := make([]Region, len(merged))
	copy(out, merged)
	return Area{regions: out}, nil
}

// SingleRegion builds the common one-region area without error checking
// beyond region validity.
func SingleRegion(start, end int64) (Area, error) {
	r, err := NewRegion(start, end)
	if err != nil {
		return Area{}, err
	}
	return Area{regions: []Region{r}}, nil
}

// Regions returns the area's regions in Start order. The returned slice must
// not be modified.
func (a Area) Regions() []Region { return a.regions }

// Len returns the number of regions.
func (a Area) Len() int { return len(a.regions) }

// Empty reports whether the area holds no regions (the zero Area).
func (a Area) Empty() bool { return len(a.regions) == 0 }

// Bounds returns the smallest single region covering the whole area.
func (a Area) Bounds() Region {
	if a.Empty() {
		return Region{}
	}
	return Region{Start: a.regions[0].Start, End: a.regions[len(a.regions)-1].End}
}

// Span returns the total number of positions covered by the area's regions
// (excluding gaps).
func (a Area) Span() int64 {
	var n int64
	for _, r := range a.regions {
		n += r.Length()
	}
	return n
}

// Contains implements the paper's containment predicate:
//
//	contains(a1, a2)  iff  forall r2 in a2 exists r1 in a1:
//	                       r1.start <= r2.start <= r2.end <= r1.end
//
// i.e. every region of the argument lies inside some region of the receiver.
// An empty receiver contains nothing; an empty argument is vacuously
// contained by nothing (both sides must be real annotations), so Contains
// returns false if either area is empty.
func (a Area) Contains(b Area) bool {
	if a.Empty() || b.Empty() {
		return false
	}
	// Both region lists are sorted and internally disjoint, so a merge works:
	// each b-region must fit in some a-region, and because regions within an
	// area cannot touch, the a-regions that can contain successive b-regions
	// are non-decreasing.
	i := 0
	for _, rb := range b.regions {
		for i < len(a.regions) && a.regions[i].End < rb.End {
			i++
		}
		if i == len(a.regions) || !a.regions[i].Contains(rb) {
			return false
		}
	}
	return true
}

// Overlaps implements the paper's overlap predicate:
//
//	overlaps(a1, a2)  iff  exists r2 in a2, r1 in a1:
//	                       r1.start <= r2.end && r1.end >= r2.start
//
// i.e. some region of each area shares a position.
func (a Area) Overlaps(b Area) bool {
	i, j := 0, 0
	for i < len(a.regions) && j < len(b.regions) {
		if a.regions[i].Overlaps(b.regions[j]) {
			return true
		}
		if a.regions[i].End < b.regions[j].End {
			i++
		} else {
			j++
		}
	}
	return false
}

func (a Area) String() string {
	parts := make([]string, len(a.regions))
	for i, r := range a.regions {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

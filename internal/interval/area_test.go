package interval

import (
	"math/rand"
	"testing"
)

func mustArea(t *testing.T, regions ...Region) Area {
	t.Helper()
	a, err := NewArea(regions...)
	if err != nil {
		t.Fatalf("NewArea(%v): %v", regions, err)
	}
	return a
}

func TestNewAreaValidation(t *testing.T) {
	if _, err := NewArea(); err == nil {
		t.Fatal("empty area should fail")
	}
	if _, err := NewArea(Region{5, 2}); err == nil {
		t.Fatal("invalid region should fail")
	}
	if _, err := NewArea(Region{0, 5}, Region{4, 9}); err == nil {
		t.Fatal("overlapping regions should fail")
	}
	if _, err := NewArea(Region{0, 5}, Region{6, 9}); err == nil {
		t.Fatal("touching regions should fail")
	}
	a := mustArea(t, Region{10, 20}, Region{0, 5})
	if rs := a.Regions(); rs[0] != (Region{0, 5}) || rs[1] != (Region{10, 20}) {
		t.Fatalf("regions not sorted: %v", rs)
	}
}

func TestNormalize(t *testing.T) {
	a, err := Normalize(Region{0, 5}, Region{4, 9}, Region{10, 12}, Region{20, 25})
	if err != nil {
		t.Fatal(err)
	}
	want := []Region{{0, 12}, {20, 25}}
	got := a.Regions()
	if len(got) != len(want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	if _, err := Normalize(); err == nil {
		t.Fatal("Normalize() should fail on empty input")
	}
	if _, err := Normalize(Region{9, 1}); err == nil {
		t.Fatal("Normalize should reject invalid regions")
	}
}

func TestAreaBoundsSpan(t *testing.T) {
	a := mustArea(t, Region{0, 4}, Region{10, 14})
	if a.Bounds() != (Region{0, 14}) {
		t.Fatalf("Bounds = %v", a.Bounds())
	}
	if a.Span() != 10 {
		t.Fatalf("Span = %d, want 10", a.Span())
	}
	if a.Len() != 2 || a.Empty() {
		t.Fatal("Len/Empty wrong")
	}
	var zero Area
	if !zero.Empty() || zero.Bounds() != (Region{}) {
		t.Fatal("zero area should be empty")
	}
}

func TestAreaContains(t *testing.T) {
	// A fragmented file: blocks [0,99] and [200,299].
	file := mustArea(t, Region{0, 99}, Region{200, 299})
	hit1 := mustArea(t, Region{10, 20})
	hit2 := mustArea(t, Region{210, 220})
	split := mustArea(t, Region{10, 20}, Region{210, 220})
	straddle := mustArea(t, Region{90, 205})
	outside := mustArea(t, Region{120, 150})

	if !file.Contains(hit1) || !file.Contains(hit2) {
		t.Fatal("single-region hits should be contained")
	}
	if !file.Contains(split) {
		t.Fatal("multi-region annotation with every region inside should be contained")
	}
	if file.Contains(straddle) {
		t.Fatal("region spanning the gap is not contained")
	}
	if file.Contains(outside) {
		t.Fatal("region in the gap is not contained")
	}
	if hit1.Contains(file) {
		t.Fatal("containment is not symmetric")
	}
	var zero Area
	if zero.Contains(hit1) || file.Contains(zero) {
		t.Fatal("empty areas contain nothing / are contained by nothing")
	}
}

func TestAreaOverlaps(t *testing.T) {
	file := mustArea(t, Region{0, 99}, Region{200, 299})
	if !file.Overlaps(mustArea(t, Region{90, 205})) {
		t.Fatal("straddling region overlaps")
	}
	if file.Overlaps(mustArea(t, Region{100, 199})) {
		t.Fatal("gap-only region does not overlap")
	}
	if !file.Overlaps(mustArea(t, Region{150, 400})) {
		t.Fatal("region covering second block overlaps")
	}
	if !file.Overlaps(mustArea(t, Region{99, 99})) {
		t.Fatal("endpoint touch overlaps (closed intervals)")
	}
}

// Exhaustive consistency between the merge-based Area predicates and a
// direct quadratic evaluation of the paper's definitions.
func TestAreaPredicatesMatchDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randArea := func() Area {
		n := 1 + rng.Intn(4)
		regions := make([]Region, 0, n)
		pos := int64(rng.Intn(10))
		for i := 0; i < n; i++ {
			length := int64(rng.Intn(8))
			regions = append(regions, Region{pos, pos + length})
			pos += length + 2 + int64(rng.Intn(6)) // ensure a gap >= 1
		}
		a, err := NewArea(regions...)
		if err != nil {
			t.Fatalf("randArea: %v", err)
		}
		return a
	}
	containsDef := func(a, b Area) bool {
		if a.Empty() || b.Empty() {
			return false
		}
		for _, r2 := range b.Regions() {
			found := false
			for _, r1 := range a.Regions() {
				if r1.Start <= r2.Start && r2.End <= r1.End {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	overlapsDef := func(a, b Area) bool {
		for _, r1 := range a.Regions() {
			for _, r2 := range b.Regions() {
				if r1.Start <= r2.End && r1.End >= r2.Start {
					return true
				}
			}
		}
		return false
	}
	for n := 0; n < 3000; n++ {
		a, b := randArea(), randArea()
		if got, want := a.Contains(b), containsDef(a, b); got != want {
			t.Fatalf("Contains(%s,%s) = %v, want %v", a, b, got, want)
		}
		if got, want := a.Overlaps(b), overlapsDef(a, b); got != want {
			t.Fatalf("Overlaps(%s,%s) = %v, want %v", a, b, got, want)
		}
	}
}

func TestAreaString(t *testing.T) {
	a := mustArea(t, Region{0, 4}, Region{10, 14})
	if a.String() != "{[0,4] [10,14]}" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestSingleRegion(t *testing.T) {
	a, err := SingleRegion(3, 9)
	if err != nil || a.Len() != 1 || a.Bounds() != (Region{3, 9}) {
		t.Fatalf("SingleRegion: %v %v", a, err)
	}
	if _, err := SingleRegion(9, 3); err == nil {
		t.Fatal("SingleRegion(9,3) should fail")
	}
}

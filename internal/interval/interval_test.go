package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustRegion(t *testing.T, s, e int64) Region {
	t.Helper()
	r, err := NewRegion(s, e)
	if err != nil {
		t.Fatalf("NewRegion(%d,%d): %v", s, e, err)
	}
	return r
}

func TestNewRegionValidation(t *testing.T) {
	if _, err := NewRegion(5, 4); err == nil {
		t.Fatal("NewRegion(5,4) should fail")
	}
	r := mustRegion(t, 3, 3)
	if !r.Valid() || r.Length() != 1 {
		t.Fatalf("point region: valid=%v length=%d", r.Valid(), r.Length())
	}
	if got := mustRegion(t, 2, 9).Length(); got != 8 {
		t.Fatalf("Length [2,9] = %d, want 8", got)
	}
}

func TestContainsAndOverlaps(t *testing.T) {
	cases := []struct {
		a, b               Region
		contains, overlaps bool
	}{
		{Region{0, 10}, Region{2, 5}, true, true},
		{Region{0, 10}, Region{0, 10}, true, true},
		{Region{0, 10}, Region{0, 11}, false, true},
		{Region{0, 10}, Region{10, 20}, false, true}, // touching endpoints overlap (closed)
		{Region{0, 10}, Region{11, 20}, false, false},
		{Region{5, 9}, Region{1, 4}, false, false},
		{Region{5, 9}, Region{1, 5}, false, true},
		{Region{3, 3}, Region{3, 3}, true, true},
	}
	for _, c := range cases {
		if got := c.a.Contains(c.b); got != c.contains {
			t.Errorf("%s.Contains(%s) = %v, want %v", c.a, c.b, got, c.contains)
		}
		if got := c.a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("%s.Overlaps(%s) = %v, want %v", c.a, c.b, got, c.overlaps)
		}
	}
}

func TestOverlapsIsSymmetric(t *testing.T) {
	f := func(a0, a1, b0, b1 int16) bool {
		a := normRegion(int64(a0), int64(a1))
		b := normRegion(int64(b0), int64(b1))
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsImpliesOverlaps(t *testing.T) {
	f := func(a0, a1, b0, b1 int16) bool {
		a := normRegion(int64(a0), int64(a1))
		b := normRegion(int64(b0), int64(b1))
		if a.Contains(b) {
			return a.Overlaps(b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectUnion(t *testing.T) {
	a, b := Region{0, 10}, Region{5, 20}
	got, ok := a.Intersect(b)
	if !ok || got != (Region{5, 10}) {
		t.Fatalf("Intersect = %v,%v", got, ok)
	}
	if _, ok := (Region{0, 3}).Intersect(Region{5, 9}); ok {
		t.Fatal("disjoint regions should not intersect")
	}
	u, contiguous := (Region{0, 4}).Union(Region{5, 9})
	if u != (Region{0, 9}) || !contiguous {
		t.Fatalf("touching union = %v contiguous=%v", u, contiguous)
	}
	u, contiguous = (Region{0, 3}).Union(Region{7, 9})
	if u != (Region{0, 9}) || contiguous {
		t.Fatalf("gapped union = %v contiguous=%v", u, contiguous)
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(Region{1, 5}, Region{2, 3}) != -1 ||
		Compare(Region{2, 3}, Region{1, 5}) != 1 ||
		Compare(Region{1, 3}, Region{1, 5}) != -1 ||
		Compare(Region{1, 5}, Region{1, 5}) != 0 {
		t.Fatal("Compare ordering broken")
	}
}

// The thirteen Allen relations must partition all region pairs: exactly one
// relation holds, and Classify(a,b) must be the converse of Classify(b,a).
func TestAllenRelationsPartition(t *testing.T) {
	converse := map[Relation]Relation{
		Precedes: PrecededBy, Meets: MetBy, OverlapsLeft: OverlapsRight,
		FinishedBy: Finishes, ContainsRel: During, Starts: StartedBy,
		Equals: Equals, StartedBy: Starts, During: ContainsRel,
		Finishes: FinishedBy, OverlapsRight: OverlapsLeft, MetBy: Meets,
		PrecededBy: Precedes,
	}
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 5000; n++ {
		a := normRegion(int64(rng.Intn(40)), int64(rng.Intn(40)))
		b := normRegion(int64(rng.Intn(40)), int64(rng.Intn(40)))
		ra, rb := Classify(a, b), Classify(b, a)
		if converse[ra] != rb {
			t.Fatalf("Classify(%s,%s)=%s but Classify(%s,%s)=%s (not converse)",
				a, b, ra, b, a, rb)
		}
		// Relation must be consistent with Overlaps: everything except
		// precedes/meets/met-by/preceded-by shares a position.
		wantOverlap := ra != Precedes && ra != Meets && ra != MetBy && ra != PrecededBy
		if a.Overlaps(b) != wantOverlap {
			t.Fatalf("relation %s inconsistent with Overlaps(%s,%s)=%v", ra, a, b, a.Overlaps(b))
		}
	}
}

func TestAllenExamples(t *testing.T) {
	cases := []struct {
		a, b Region
		want Relation
	}{
		{Region{0, 2}, Region{5, 9}, Precedes},
		{Region{0, 4}, Region{5, 9}, Meets},
		{Region{0, 6}, Region{4, 9}, OverlapsLeft},
		{Region{0, 9}, Region{4, 9}, FinishedBy},
		{Region{0, 9}, Region{3, 7}, ContainsRel},
		{Region{3, 5}, Region{3, 9}, Starts},
		{Region{3, 9}, Region{3, 9}, Equals},
		{Region{3, 9}, Region{3, 5}, StartedBy},
		{Region{4, 6}, Region{0, 9}, During},
		{Region{5, 9}, Region{0, 9}, Finishes},
		{Region{4, 9}, Region{0, 6}, OverlapsRight},
		{Region{5, 9}, Region{0, 4}, MetBy},
		{Region{7, 9}, Region{0, 2}, PrecededBy},
	}
	for _, c := range cases {
		if got := Classify(c.a, c.b); got != c.want {
			t.Errorf("Classify(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestRelationString(t *testing.T) {
	if Equals.String() != "equals" || Precedes.String() != "precedes" {
		t.Fatal("relation names wrong")
	}
	if Relation(99).String() != "Relation(99)" {
		t.Fatal("out-of-range relation name wrong")
	}
}

// normRegion builds a valid region from two arbitrary positions.
func normRegion(a, b int64) Region {
	if a > b {
		a, b = b, a
	}
	return Region{Start: a, End: b}
}

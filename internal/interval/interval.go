// Package interval provides the region primitives underlying stand-off
// annotation: closed integer intervals ("regions"), possibly non-contiguous
// ordered sets of regions ("areas"), the containment and overlap predicates
// of Alink et al. (XIME-P 2006, section 3.1), and Allen's thirteen interval
// relations that those predicates abstract over.
//
// Positions are int64, which covers byte offsets in multi-terabyte BLOBs as
// well as millisecond or nanosecond time-stamps (section 2 of the paper:
// "Our current implementation assumes the positions to be
// machine-representable as 64-bits integers").
package interval

import (
	"errors"
	"fmt"
)

// Region is a closed interval [Start,End] over a totally ordered position
// domain. Both endpoints are included and Start <= End must hold.
type Region struct {
	Start int64
	End   int64
}

// ErrInvalidRegion is returned when Start > End.
var ErrInvalidRegion = errors.New("interval: region start exceeds end")

// NewRegion returns the region [start,end] or ErrInvalidRegion if start > end.
func NewRegion(start, end int64) (Region, error) {
	if start > end {
		return Region{}, fmt.Errorf("%w: [%d,%d]", ErrInvalidRegion, start, end)
	}
	return Region{Start: start, End: end}, nil
}

// Valid reports whether the region is well formed (Start <= End).
func (r Region) Valid() bool { return r.Start <= r.End }

// Length returns the number of positions covered by the region. A region
// [p,p] has length 1 because both endpoints are included.
func (r Region) Length() int64 { return r.End - r.Start + 1 }

// Contains reports whether r fully contains s:
//
//	r.Start <= s.Start <= s.End <= r.End
//
// This is the single-region form of the paper's contains predicate.
func (r Region) Contains(s Region) bool {
	return r.Start <= s.Start && s.End <= r.End
}

// Overlaps reports whether r and s share at least one position:
//
//	r.Start <= s.End && r.End >= s.Start
//
// This is the single-region form of the paper's overlaps predicate. Touching
// regions ([1,5] and [5,9]) overlap because intervals are closed.
func (r Region) Overlaps(s Region) bool {
	return r.Start <= s.End && r.End >= s.Start
}

// Intersect returns the common sub-region of r and s. ok is false when the
// regions are disjoint.
func (r Region) Intersect(s Region) (Region, bool) {
	if !r.Overlaps(s) {
		return Region{}, false
	}
	return Region{Start: max64(r.Start, s.Start), End: min64(r.End, s.End)}, true
}

// Union returns the smallest single region covering both r and s, and
// whether r and s actually form a contiguous range (overlap or touch
// end-to-start) so that the union is exact.
func (r Region) Union(s Region) (Region, bool) {
	u := Region{Start: min64(r.Start, s.Start), End: max64(r.End, s.End)}
	contiguous := r.Overlaps(s) || r.End+1 == s.Start || s.End+1 == r.Start
	return u, contiguous
}

func (r Region) String() string { return fmt.Sprintf("[%d,%d]", r.Start, r.End) }

// Compare orders regions by Start, breaking ties on End. It returns -1, 0 or
// +1. This is the clustering order of the region index (section 4.3).
func Compare(a, b Region) int {
	switch {
	case a.Start < b.Start:
		return -1
	case a.Start > b.Start:
		return 1
	case a.End < b.End:
		return -1
	case a.End > b.End:
		return 1
	default:
		return 0
	}
}

// Relation is one of Allen's thirteen qualitative relations between two
// intervals (Allen, CACM 1983), which the paper cites as the full spectrum
// that the StandOff joins deliberately collapse into containment and overlap.
type Relation int

const (
	Precedes      Relation = iota // a entirely before b, with a gap
	Meets                         // a.End + 1 == b.Start (closed-interval adjacency)
	OverlapsLeft                  // a starts first, they overlap, b ends last
	FinishedBy                    // a starts first, both end together
	ContainsRel                   // a strictly contains b on both sides
	Starts                        // both start together, a ends first
	Equals                        // identical intervals
	StartedBy                     // both start together, b ends first
	During                        // b strictly contains a on both sides
	Finishes                      // b starts first, both end together
	OverlapsRight                 // b starts first, they overlap, a ends last
	MetBy                         // b.End + 1 == a.Start
	PrecededBy                    // a entirely after b, with a gap
)

var relationNames = [...]string{
	"precedes", "meets", "overlaps", "finished-by", "contains", "starts",
	"equals", "started-by", "during", "finishes", "overlapped-by", "met-by",
	"preceded-by",
}

func (rel Relation) String() string {
	if rel < 0 || int(rel) >= len(relationNames) {
		return fmt.Sprintf("Relation(%d)", int(rel))
	}
	return relationNames[rel]
}

// Classify returns the Allen relation holding between a and b. Because the
// position domain is discrete and regions are closed, "meets" is defined as
// exact adjacency (a.End+1 == b.Start); adjacent regions do not overlap in
// the continuous sense but *touch*.
func Classify(a, b Region) Relation {
	switch {
	case a.End+1 < b.Start:
		return Precedes
	case a.End+1 == b.Start:
		return Meets
	case b.End+1 < a.Start:
		return PrecededBy
	case b.End+1 == a.Start:
		return MetBy
	}
	// The intervals share at least one position from here on.
	switch {
	case a.Start == b.Start && a.End == b.End:
		return Equals
	case a.Start == b.Start && a.End < b.End:
		return Starts
	case a.Start == b.Start: // a.End > b.End
		return StartedBy
	case a.End == b.End && a.Start < b.Start:
		return FinishedBy
	case a.End == b.End: // a.Start > b.Start
		return Finishes
	case a.Start < b.Start && a.End > b.End:
		return ContainsRel
	case a.Start > b.Start && a.End < b.End:
		return During
	case a.Start < b.Start: // overlapping, a first
		return OverlapsLeft
	default:
		return OverlapsRight
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Package xqast defines the abstract syntax tree of the XQuery subset the
// engine evaluates (see DESIGN.md section 3 for the exact coverage). The
// tree is produced by internal/xqparse and consumed by internal/xqeval.
package xqast

import "soxq/internal/xpath"

// Module is a parsed query: prolog declarations plus the body expression.
type Module struct {
	Options    []OptionDecl
	Namespaces []NamespaceDecl
	Functions  []*FunctionDecl
	Variables  []*VarDecl
	Body       Expr
}

// OptionDecl is `declare option name "value"`. The name keeps its prefix
// verbatim; the stand-off options are matched on their local name.
type OptionDecl struct {
	Name  string
	Value string
}

// NamespaceDecl is `declare namespace prefix = "uri"`.
type NamespaceDecl struct {
	Prefix string
	URI    string
}

// FunctionDecl is `declare function name($p1, $p2, ...) { body }`. Type
// annotations are parsed and discarded (the engine is dynamically typed, as
// the paper's Figure 2/3 functions only need sequence semantics).
type FunctionDecl struct {
	Name   string
	Params []string
	Body   Expr
}

// VarDecl is `declare variable $name := expr`.
type VarDecl struct {
	Name  string
	Value Expr
}

// Expr is any expression node.
type Expr interface{ exprNode() }

// FLWOR is a for/let/where/order by/return expression.
type FLWOR struct {
	Clauses []Clause
	Where   Expr // nil when absent
	OrderBy []OrderSpec
	Return  Expr
}

// Clause is a for or let clause.
type Clause interface{ clauseNode() }

// ForClause is `for $Var at $Pos in Seq` (Pos may be empty).
type ForClause struct {
	Var string
	Pos string
	Seq Expr
}

// LetClause is `let $Var := Seq`.
type LetClause struct {
	Var string
	Seq Expr
}

func (*ForClause) clauseNode() {}
func (*LetClause) clauseNode() {}

// OrderSpec is one `order by` key.
type OrderSpec struct {
	Key        Expr
	Descending bool
	EmptyLeast bool
}

// Quantified is `some/every $Var in Seq satisfies Cond`. Multiple bindings
// are parsed into nested Quantified nodes.
type Quantified struct {
	Every     bool
	Var       string
	Seq       Expr
	Satisfies Expr
}

// IfExpr is `if (Cond) then Then else Else`.
type IfExpr struct {
	Cond, Then, Else Expr
}

// Binary is a binary operator expression. Op is one of:
// "or" "and" | "=" "!=" "<" "<=" ">" ">=" (general comparisons)
// | "eq" "ne" "lt" "le" "gt" "ge" (value comparisons)
// | "is" "<<" ">>" (node comparisons)
// | "to" | "+" "-" "*" "div" "idiv" "mod"
// | "union" "intersect" "except" | "," (sequence construction).
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is unary plus/minus.
type Unary struct {
	Neg bool
	X   Expr
}

// Path is a path expression. Start is the input expression (nil for a
// relative path starting at the context item); Absolute paths start at the
// root of the context item's tree. Each Step applies an axis, a node test
// and predicates.
type Path struct {
	Start    Expr
	Absolute bool
	Steps    []*Step
}

// Step is one axis step.
type Step struct {
	Axis       xpath.Axis
	Test       xpath.Test
	Predicates []Expr
}

// Filter is a primary expression with predicates: E[p1][p2].
type Filter struct {
	Base       Expr
	Predicates []Expr
}

// FuncCall is a (possibly prefixed) function call.
type FuncCall struct {
	Name string
	Args []Expr
}

// VarRef is `$name`.
type VarRef struct{ Name string }

// ContextItem is `.`.
type ContextItem struct{}

// EmptySeq is `()`.
type EmptySeq struct{}

// StringLit, IntLit and FloatLit are literals.
type StringLit struct{ V string }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a decimal or double literal.
type FloatLit struct{ V float64 }

// DirectElem is a direct element constructor <name attr="...">{...}</name>.
// Content interleaves literal text (StringLit), nested constructors and
// enclosed expressions (marked by Enclosed).
type DirectElem struct {
	Name    string
	Attrs   []DirectAttr
	Content []Expr
}

// DirectAttr is one attribute of a direct constructor; its value is a
// template of literal strings and enclosed expressions.
type DirectAttr struct {
	Name  string
	Value []Expr
}

// Enclosed marks an expression that appeared inside { } in constructor
// content (its items are inserted rather than texturised verbatim).
type Enclosed struct{ X Expr }

// ComputedElem is `element name { content }` or `element { nameExpr } { content }`.
type ComputedElem struct {
	Name     string
	NameExpr Expr
	Content  Expr
}

// ComputedAttr is `attribute name { content }`.
type ComputedAttr struct {
	Name     string
	NameExpr Expr
	Content  Expr
}

// ComputedText is `text { content }`.
type ComputedText struct{ Content Expr }

func (*FLWOR) exprNode()        {}
func (*Quantified) exprNode()   {}
func (*IfExpr) exprNode()       {}
func (*Binary) exprNode()       {}
func (*Unary) exprNode()        {}
func (*Path) exprNode()         {}
func (*Filter) exprNode()       {}
func (*FuncCall) exprNode()     {}
func (*VarRef) exprNode()       {}
func (*ContextItem) exprNode()  {}
func (*EmptySeq) exprNode()     {}
func (*StringLit) exprNode()    {}
func (*IntLit) exprNode()       {}
func (*FloatLit) exprNode()     {}
func (*DirectElem) exprNode()   {}
func (*Enclosed) exprNode()     {}
func (*ComputedElem) exprNode() {}
func (*ComputedAttr) exprNode() {}
func (*ComputedText) exprNode() {}

// Package plancache provides the bounded LRU cache the engine keeps its
// compiled query plans in. The cache is safe for concurrent use: lookups
// from many query goroutines interleave with invalidation from Declare and
// Unload. Values are expected to be immutable (compiled plans are), so a
// value handed out by Get stays valid after eviction or Purge.
package plancache

import (
	"container/list"
	"errors"
	"sync"
)

// Cache is a bounded, concurrency-safe LRU map.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	items    map[K]*list.Element
	inflight map[K]*flight[V]
	hits     uint64
	misses   uint64

	// Eviction accounting keeps the two ways an entry can die apart: LRU
	// pressure (the cache is too small for the working set — a capacity
	// signal) versus Purge invalidation (Declare/Unload dropped every plan
	// on purpose — a correctness event). Lumping them together would make a
	// hot Declare path look like an undersized cache.
	evictionsLRU uint64
	invalidated  uint64
	coalesced    uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// flight is one in-progress computation that concurrent misses on the same
// key wait on instead of computing again.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a cache holding at most max entries; max <= 0 means a
// default capacity of 256.
func New[K comparable, V any](max int) *Cache[K, V] {
	if max <= 0 {
		max = 256
	}
	return &Cache[K, V]{max: max, ll: list.New(), items: map[K]*list.Element{}, inflight: map[K]*flight[V]{}}
}

// Get returns the cached value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when the cache is full.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, v)
}

func (c *Cache[K, V]) putLocked(k K, v V) {
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
		c.evictionsLRU++
	}
}

// GetOrCompute returns the cached value for k, or computes and caches it.
// Concurrent misses on the same key are collapsed (singleflight): one caller
// runs compute, the others block until it finishes and share its result.
// Errors are returned to every waiter but never cached, so a later call
// retries. Each collapsed waiter still counts as one miss in Stats — it paid
// (part of) a compile wait.
//
// A Purge racing an in-flight compute does not cancel it; the computed value
// is inserted afterwards. That is sound for the engine's use because a key
// fully determines its value (query text + options), so a post-purge insert
// equals what an immediate recompute would produce.
func (c *Cache[K, V]) GetOrCompute(k K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v := el.Value.(*entry[K, V]).val
		c.mu.Unlock()
		return v, nil
	}
	c.misses++
	if f, ok := c.inflight[k]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.inflight[k] = f
	c.mu.Unlock()

	// Pre-set the error so waiters see a failure (not a zero value with a
	// nil error) if compute panics; the deferred cleanup runs either way,
	// so a panic cannot wedge the key for every later caller.
	f.err = errComputePanicked
	defer func() {
		c.mu.Lock()
		delete(c.inflight, k)
		if f.err == nil {
			c.putLocked(k, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	return f.val, f.err
}

// errComputePanicked is what singleflight waiters receive when the caller
// running compute panicked out of GetOrCompute. The panic itself propagates
// on the computing goroutine; a later call simply retries.
var errComputePanicked = errors.New("plancache: compute panicked")

// Purge drops every entry (cache invalidation on Declare/Unload). Hit and
// miss counters survive so long-running engines keep meaningful stats; the
// dropped entries count as invalidations, not LRU evictions.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidated += uint64(c.ll.Len())
	c.ll.Init()
	clear(c.items)
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns how many entries were dropped by LRU pressure and how
// many by Purge invalidation, separately — capacity problems and deliberate
// invalidation are different operational signals.
func (c *Cache[K, V]) Evictions() (lru, invalidated uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictionsLRU, c.invalidated
}

// Coalesced returns how many GetOrCompute callers joined another caller's
// in-flight compute instead of computing themselves (singleflight
// collapses). Each coalesced caller also counted one miss in Stats.
func (c *Cache[K, V]) Coalesced() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// Package plancache provides the bounded LRU cache the engine keeps its
// compiled query plans in. The cache is safe for concurrent use: lookups
// from many query goroutines interleave with invalidation from Declare and
// Unload. Values are expected to be immutable (compiled plans are), so a
// value handed out by Get stays valid after eviction or Purge.
package plancache

import (
	"container/list"
	"sync"
)

// Cache is a bounded, concurrency-safe LRU map.
type Cache[K comparable, V any] struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	items  map[K]*list.Element
	hits   uint64
	misses uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding at most max entries; max <= 0 means a
// default capacity of 256.
func New[K comparable, V any](max int) *Cache[K, V] {
	if max <= 0 {
		max = 256
	}
	return &Cache[K, V]{max: max, ll: list.New(), items: map[K]*list.Element{}}
}

// Get returns the cached value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when the cache is full.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Purge drops every entry (cache invalidation on Declare/Unload). Hit and
// miss counters survive so long-running engines keep meaningful stats.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

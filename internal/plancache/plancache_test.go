package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v %v", v, ok)
	}
	c.Put("a", 2) // refresh
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("refresh lost: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](3)
	for i := 0; i < 3; i++ {
		c.Put(i, i)
	}
	c.Get(0) // 0 is now most recent; 1 is the LRU victim
	c.Put(3, 3)
	if _, ok := c.Get(1); ok {
		t.Fatal("1 should have been evicted")
	}
	for _, k := range []int{0, 2, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d should survive", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := New[string, string](8)
	c.Put("x", "y")
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get("x"); ok {
		t.Fatal("purged entry returned")
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 300; i++ {
		c.Put(i, i)
	}
	if c.Len() != 256 {
		t.Fatalf("default capacity = %d, want 256", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Put(k, i)
				c.Get(k)
				if i%100 == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
}

package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v %v", v, ok)
	}
	c.Put("a", 2) // refresh
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("refresh lost: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](3)
	for i := 0; i < 3; i++ {
		c.Put(i, i)
	}
	c.Get(0) // 0 is now most recent; 1 is the LRU victim
	c.Put(3, 3)
	if _, ok := c.Get(1); ok {
		t.Fatal("1 should have been evicted")
	}
	for _, k := range []int{0, 2, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d should survive", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := New[string, string](8)
	c.Put("x", "y")
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get("x"); ok {
		t.Fatal("purged entry returned")
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 300; i++ {
		c.Put(i, i)
	}
	if c.Len() != 256 {
		t.Fatalf("default capacity = %d, want 256", c.Len())
	}
}

func TestGetOrComputeCachesValue(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute("k", compute)
		if err != nil || v != 42 {
			t.Fatalf("GetOrCompute = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", hits, misses)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New[string, int](4)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute("k", func() (int, error) { return 0, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result must not be cached")
	}
	// A later call retries and can succeed.
	v, err := c.GetOrCompute("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %v, %v", v, err)
	}
}

// TestSingleflight pins that concurrent misses on the same key collapse into
// one compute: the first caller blocks inside compute while the rest arrive,
// and all of them observe the single result.
func TestSingleflight(t *testing.T) {
	c := New[string, int](4)
	const waiters = 8
	var calls atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	results := make(chan int, waiters)

	go func() {
		v, _ := c.GetOrCompute("k", func() (int, error) {
			calls.Add(1)
			close(entered)
			<-release
			return 99, nil
		})
		results <- v
	}()
	<-entered // the leader is inside compute; everyone else must wait on it
	var wg sync.WaitGroup
	for i := 0; i < waiters-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _ := c.GetOrCompute("k", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
			results <- v
		}()
	}
	close(release)
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if v := <-results; v != 99 {
			t.Fatalf("waiter got %d, want 99", v)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
}

// TestGetOrComputePanicDoesNotWedge: a panicking compute must not leave the
// key permanently inflight — waiters get an error and a later call retries.
func TestGetOrComputePanicDoesNotWedge(t *testing.T) {
	c := New[string, int](4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.GetOrCompute("k", func() (int, error) { panic("boom") })
	}()
	if c.Len() != 0 {
		t.Fatal("panicked compute must not cache")
	}
	v, err := c.GetOrCompute("k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("retry after panic = %v, %v", v, err)
	}
}

func TestSingleflightDistinctKeys(t *testing.T) {
	// Distinct keys do not serialize behind each other.
	c := New[string, int](8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("k%d", i)
			v, err := c.GetOrCompute(k, func() (int, error) { return i, nil })
			if err != nil || v != i {
				t.Errorf("key %s = %v, %v", k, v, err)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Put(k, i)
				c.Get(k)
				if i%100 == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEvictionAccounting pins the eviction split: capacity-pressure drops
// count as LRU evictions, Purge (the Declare/Unload invalidation path) counts
// every resident entry as invalidated, and the two never mix.
func TestEvictionAccounting(t *testing.T) {
	c := New[int, int](2)
	if lru, inv := c.Evictions(); lru != 0 || inv != 0 {
		t.Fatalf("fresh cache evictions = %d/%d", lru, inv)
	}
	c.Put(0, 0)
	c.Put(1, 1)
	c.Put(2, 2) // evicts 0 under capacity pressure
	if lru, inv := c.Evictions(); lru != 1 || inv != 0 {
		t.Fatalf("after overflow: lru=%d inv=%d, want 1/0", lru, inv)
	}
	c.Put(1, 10) // refresh, not an eviction
	if lru, _ := c.Evictions(); lru != 1 {
		t.Fatalf("refresh counted as eviction: lru=%d", lru)
	}
	c.Purge() // both resident entries invalidated
	if lru, inv := c.Evictions(); lru != 1 || inv != 2 {
		t.Fatalf("after purge: lru=%d inv=%d, want 1/2", lru, inv)
	}
	c.Purge() // empty purge invalidates nothing
	if _, inv := c.Evictions(); inv != 2 {
		t.Fatalf("empty purge moved the count: inv=%d", inv)
	}
}

// TestCoalescedAccounting: every GetOrCompute waiter that joins an in-flight
// compute counts as one coalesced lookup.
func TestCoalescedAccounting(t *testing.T) {
	c := New[string, int](4)
	release := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.GetOrCompute("k", func() (int, error) {
			close(entered)
			<-release
			return 7, nil
		})
	}()
	<-entered
	const waiters = 3
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, _ := c.GetOrCompute("k", func() (int, error) { return -1, nil }); v != 7 {
				t.Errorf("coalesced waiter got %d, want 7", v)
			}
		}()
	}
	// Wait until all waiters have joined the in-flight entry, then release.
	for c.Coalesced() < waiters {
	}
	close(release)
	wg.Wait()
	if got := c.Coalesced(); got != waiters {
		t.Fatalf("coalesced = %d, want %d", got, waiters)
	}
}

package core

import (
	"sync"
	"sync/atomic"
)

// JoinArena recycles the allocation-heavy scratch of the StandOff joins
// across invocations: []Pair outputs, the counting-sort offset and fill
// arrays of sortDedupPairs, the iter|start|end context rows, and the active
// sets. One arena belongs to exactly one execution run (one Exec/Stream
// drain); the evaluator threads it through JoinConfig and releases it when
// the run's cursor closes. Arenas are not goroutine-safe — parallel FLWOR
// workers each acquire their own.
//
// Ownership contract: the []Pair returned by Join is on loan from the arena
// and stays valid only until the next Join call with the same arena (which
// reclaims it). Every Join call site consumes its pairs before joining
// again, so the loan is invisible above the core layer. A nil *JoinArena is
// valid everywhere and degrades to plain allocation.
type JoinArena struct {
	pairFree [][]Pair // recycled pair buffers (len 0, spare capacity)
	loaned   []Pair   // the last Join result, reclaimed on the next Join

	ctxRows  []ctxRow
	pseudo   []int32
	ctxNodes []CtxNode // joinBasic per-iteration context remap
	csOff    []int32   // counting-sort bucket offsets
	csFill   []int32   // counting-sort fill positions
	bitWords []uint64  // parked MatchBits storage (chunked rejects)

	list listActive
	heap heapActive
}

// maxFreePairBufs bounds the free list; a join pipeline holds at most a
// handful of pair buffers at a time, so anything beyond this is leak-shaped.
const maxFreePairBufs = 8

var arenaPool = sync.Pool{New: func() any {
	arenaMisses.Add(1)
	return new(JoinArena)
}}

// arenaAcquires/arenaMisses are process-wide pool telemetry: every acquire
// counts, and the pool's New func counts the ones that had to allocate. The
// GC empties sync.Pools, so a nonzero steady-state miss rate under constant
// load is the pool being collected between runs, not a leak.
var (
	arenaAcquires atomic.Uint64
	arenaMisses   atomic.Uint64
)

// ArenaPoolStats returns the cumulative arena-pool hit and miss counts
// (acquires served from the pool vs freshly allocated), process-wide.
func ArenaPoolStats() (hits, misses uint64) {
	a, m := arenaAcquires.Load(), arenaMisses.Load()
	if m > a { // a racing acquire has bumped misses but not acquires yet
		m = a
	}
	return a - m, m
}

// AcquireJoinArena fetches an arena from the package pool. Pair it with
// Release when the run owning it ends.
func AcquireJoinArena() *JoinArena {
	arenaAcquires.Add(1)
	return arenaPool.Get().(*JoinArena)
}

// Release reclaims the loaned result and returns the arena to the package
// pool. The caller must not use the arena — or any []Pair borrowed from it —
// afterwards. Safe on a nil arena.
func (a *JoinArena) Release() {
	if a == nil {
		return
	}
	a.reclaim()
	arenaPool.Put(a)
}

// reclaim takes back the buffer loaned to the previous Join caller.
func (a *JoinArena) reclaim() {
	if a == nil || a.loaned == nil {
		return
	}
	a.putPairs(a.loaned)
	a.loaned = nil
}

// loan records the buffer handed to the Join caller so the next Join (or
// Release) can recycle it.
func (a *JoinArena) loan(p []Pair) {
	if a != nil {
		a.loaned = p
	}
}

// getPairs pops a recycled pair buffer (length 0), or returns nil so the
// caller grows a fresh one.
func (a *JoinArena) getPairs() []Pair {
	if a == nil || len(a.pairFree) == 0 {
		return nil
	}
	n := len(a.pairFree) - 1
	b := a.pairFree[n]
	a.pairFree[n] = nil
	a.pairFree = a.pairFree[:n]
	return b
}

// getPairsCap returns an empty pair buffer with at least the given capacity.
func (a *JoinArena) getPairsCap(c int) []Pair {
	b := a.getPairs()
	if cap(b) < c {
		return make([]Pair, 0, c)
	}
	return b
}

// getPairsLen returns a pair buffer of exactly the given length (contents
// arbitrary — the caller overwrites every slot).
func (a *JoinArena) getPairsLen(n int) []Pair {
	return a.getPairsCap(n)[:n]
}

// putPairs recycles a pair buffer. The caller must hold no other alias.
func (a *JoinArena) putPairs(p []Pair) {
	if a == nil || cap(p) == 0 || len(a.pairFree) >= maxFreePairBufs {
		return
	}
	a.pairFree = append(a.pairFree, p[:0])
}

// getCtxRows returns an empty ctxRow buffer with capacity for n rows. The
// buffer is valid until the next getCtxRows call on this arena.
func (a *JoinArena) getCtxRows(n int) []ctxRow {
	if a == nil {
		return make([]ctxRow, 0, n)
	}
	if cap(a.ctxRows) < n {
		a.ctxRows = make([]ctxRow, 0, n)
	}
	return a.ctxRows[:0]
}

// putCtxRows stores the (possibly regrown) row buffer back for reuse.
func (a *JoinArena) putCtxRows(rows []ctxRow) {
	if a != nil {
		a.ctxRows = rows
	}
}

// getPseudo returns an empty int32 buffer for pseudo-iteration maps, valid
// until the next getPseudo call.
func (a *JoinArena) getPseudo(n int) []int32 {
	if a == nil {
		return make([]int32, 0, n)
	}
	if cap(a.pseudo) < n {
		a.pseudo = make([]int32, 0, n)
	}
	return a.pseudo[:0]
}

func (a *JoinArena) putPseudo(p []int32) {
	if a != nil {
		a.pseudo = p
	}
}

// getOff returns a zeroed int32 buffer of length n (counting-sort offsets).
func (a *JoinArena) getOff(n int) []int32 {
	var b []int32
	if a != nil {
		b = a.csOff
	}
	if cap(b) < n {
		b = make([]int32, n)
	} else {
		b = b[:n]
		clear(b)
	}
	if a != nil {
		a.csOff = b
	}
	return b
}

// getFill returns an int32 buffer of length n with arbitrary contents
// (counting-sort fill positions — the caller copies the offsets in).
func (a *JoinArena) getFill(n int) []int32 {
	var b []int32
	if a != nil {
		b = a.csFill
	}
	if cap(b) < n {
		b = make([]int32, n)
	} else {
		b = b[:n]
	}
	if a != nil {
		a.csFill = b
	}
	return b
}

// getCtxNodes returns an empty CtxNode buffer with capacity for n nodes.
func (a *JoinArena) getCtxNodes(n int) []CtxNode {
	if a == nil {
		return make([]CtxNode, 0, n)
	}
	if cap(a.ctxNodes) < n {
		a.ctxNodes = make([]CtxNode, 0, n)
	}
	return a.ctxNodes[:0]
}

func (a *JoinArena) putCtxNodes(p []CtxNode) {
	if a != nil {
		a.ctxNodes = p
	}
}

package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// regionSpec is a generatable description of an annotated document.
type regionSpec struct {
	Starts  []uint16
	Lengths []uint8
}

// Generate implements quick.Generator: up to 48 random single-region areas.
func (regionSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(48)
	s := regionSpec{Starts: make([]uint16, n), Lengths: make([]uint8, n)}
	for i := 0; i < n; i++ {
		s.Starts[i] = uint16(r.Intn(500))
		s.Lengths[i] = uint8(r.Intn(120))
	}
	return reflect.ValueOf(s)
}

func (s regionSpec) doc(t *testing.T) *RegionIndex {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := range s.Starts {
		fmt.Fprintf(&sb, `<a start="%d" end="%d"/>`,
			int(s.Starts[i]), int(s.Starts[i])+int(s.Lengths[i]))
	}
	sb.WriteString("</doc>")
	return buildIx(t, sb.String(), DefaultOptions())
}

// TestQuickIndexInvariants: for arbitrary inputs the region index is
// clustered on start, covers every annotation, and its end permutation is
// ordered on end.
func TestQuickIndexInvariants(t *testing.T) {
	f := func(spec regionSpec) bool {
		ix := spec.doc(t)
		if ix.NumAreas() != len(spec.Starts) || ix.NumRegions() != len(spec.Starts) {
			return false
		}
		for i := 1; i < len(ix.rStart); i++ {
			if ix.rStart[i] < ix.rStart[i-1] {
				return false
			}
			if ix.rStart[i] == ix.rStart[i-1] && ix.rEnd[i] < ix.rEnd[i-1] {
				return false
			}
		}
		perm := ix.endPerm()
		for i := 1; i < len(perm); i++ {
			if ix.rEnd[perm[i]] < ix.rEnd[perm[i-1]] {
				return false
			}
		}
		// areas are ascending pres and each one resolves to its region.
		if !sort.SliceIsSorted(ix.areas, func(a, b int) bool { return ix.areas[a] < ix.areas[b] }) {
			return false
		}
		for _, pre := range ix.areas {
			if len(ix.RegionsOf(pre)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJoinInvariants: join outputs are always sorted by (Iter, Pre),
// duplicate-free, within the candidate set, and select/reject partition the
// candidates per iteration.
func TestQuickJoinInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(spec regionSpec, sel uint8) bool {
		ix := spec.doc(t)
		areas := ix.Areas()
		nIters := int32(1 + rng.Intn(4))
		var ctx []CtxNode
		for i := 0; i < rng.Intn(8); i++ {
			ctx = append(ctx, CtxNode{Iter: rng.Int31n(nIters), Pre: areas[rng.Intn(len(areas))]})
		}
		cand := ix.All()
		if sel%2 == 0 {
			var sub []int32
			for _, a := range areas {
				if rng.Intn(2) == 0 {
					sub = append(sub, a)
				}
			}
			cand = ix.Filter(sub)
		}
		candSet := map[int32]bool{}
		for _, p := range cand.AreaPres() {
			candSet[p] = true
		}
		for op := SelectNarrow; op <= RejectWide; op++ {
			pairs := Join(ix, op, StrategyLoopLifted, ctx, nIters, cand, JoinConfig{})
			for i, pr := range pairs {
				if pr.Iter < 0 || pr.Iter >= nIters || !candSet[pr.Pre] {
					return false
				}
				if i > 0 {
					prev := pairs[i-1]
					if prev.Iter > pr.Iter || (prev.Iter == pr.Iter && prev.Pre >= pr.Pre) {
						return false
					}
				}
			}
		}
		// select + reject partition the candidates per iteration.
		for _, pairOps := range [][2]Op{{SelectNarrow, RejectNarrow}, {SelectWide, RejectWide}} {
			sel := Join(ix, pairOps[0], StrategyLoopLifted, ctx, nIters, cand, JoinConfig{})
			rej := Join(ix, pairOps[1], StrategyLoopLifted, ctx, nIters, cand, JoinConfig{})
			if len(sel)+len(rej) != int(nIters)*len(cand.AreaPres()) {
				return false
			}
			seen := map[Pair]bool{}
			for _, p := range sel {
				seen[p] = true
			}
			for _, p := range rej {
				if seen[p] {
					return false // overlap between select and reject
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortDedupPairs: the counting-sort path agrees with a direct sort
// for arbitrary pair multisets.
func TestQuickSortDedupPairs(t *testing.T) {
	f := func(iters []uint8, pres []uint16) bool {
		n := len(iters)
		if len(pres) < n {
			n = len(pres)
		}
		pairs := make([]Pair, n)
		for i := 0; i < n; i++ {
			pairs[i] = Pair{Iter: int32(iters[i] % 16), Pre: int32(pres[i] % 64)}
		}
		ref := map[Pair]bool{}
		for _, p := range pairs {
			ref[p] = true
		}
		got := append([]Pair(nil), pairs...)
		sortDedupPairs(&got, nil)
		if len(got) != len(ref) {
			return false
		}
		for i, p := range got {
			if !ref[p] {
				return false
			}
			if i > 0 && (got[i-1].Iter > p.Iter || (got[i-1].Iter == p.Iter && got[i-1].Pre >= p.Pre)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Force the large counting-sort path explicitly.
	var big []Pair
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		big = append(big, Pair{Iter: rng.Int31n(20), Pre: rng.Int31n(40)})
	}
	cp := append([]Pair(nil), big...)
	sortDedupPairs(&cp, nil)
	direct := append([]Pair(nil), big...)
	sortPairsDirect(direct)
	out := direct[:0]
	for i, p := range direct {
		if i == 0 || p != direct[i-1] {
			out = append(out, p)
		}
	}
	if !pairsEqual(cp, out) {
		t.Fatalf("counting sort diverges:\n%v\n%v", cp, out)
	}
}

// TestQuickParseIntBytes: parseIntBytes agrees with the standard library on
// arbitrary int64 values.
func TestQuickParseIntBytes(t *testing.T) {
	f := func(v int64) bool {
		s := fmt.Sprintf("%d", v)
		got, err := parseIntBytes([]byte(s))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTimecodeRoundTrip: formatting then parsing a timecode is the
// identity on non-negative millisecond values.
func TestQuickTimecodeRoundTrip(t *testing.T) {
	o := Options{Type: TypeTimecode}
	f := func(raw uint32) bool {
		ms := int64(raw) % (99 * 3600000)
		s := o.FormatPosition(ms)
		back, err := o.ParsePosition(s)
		return err == nil && back == ms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickActiveSetsAgree: the sorted list and the heap expose identical
// forEach behaviour under a random operation mix with non-decreasing expiry
// cutoffs (the list's contract).
func TestQuickActiveSetsAgree(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nKeys = 8
		l := newListActive(nKeys)
		h := newHeapActive(nKeys)
		cutoff := int64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0: // insert
				key, end := int32(op%nKeys), int64(op/3)+cutoff
				li := l.insert(key, end)
				hi := h.insert(key, end)
				if li != hi {
					return false
				}
			case 1: // expire with a non-decreasing cutoff
				cutoff += int64(op % 7)
				l.expire(cutoff)
				h.expire(cutoff)
			case 2: // forEach at a threshold >= cutoff
				thresh := cutoff + int64(rng.Intn(20))
				var lk, hk []int32
				l.forEach(thresh, func(k int32) { lk = append(lk, k) })
				h.forEach(thresh, func(k int32) { hk = append(hk, k) })
				sort.Slice(lk, func(i, j int) bool { return lk[i] < lk[j] })
				sort.Slice(hk, func(i, j int) bool { return hk[i] < hk[j] })
				if fmt.Sprint(lk) != fmt.Sprint(hk) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

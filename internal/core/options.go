// Package core implements the paper's primary contribution: the stand-off
// region index (section 4.3), the four StandOff joins select-narrow,
// select-wide, reject-narrow and reject-wide (section 3.1), and their three
// evaluation strategies — naive nested loop (the Figure 2/3 XQuery
// functions), Basic StandOff MergeJoin (section 4.4) and Loop-Lifted
// StandOff MergeJoin (section 4.5, Listing 1).
package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"
)

// PositionType selects how the textual start/end values found in documents
// are mapped to the int64 position domain ("declare option standoff-type").
type PositionType int

const (
	// TypeInteger parses positions as decimal 64-bit integers (the paper's
	// default "xs:integer"): byte offsets, word positions, block numbers.
	TypeInteger PositionType = iota
	// TypeDateTime parses positions as XSD dateTime / RFC 3339 timestamps
	// and maps them to Unix nanoseconds.
	TypeDateTime
	// TypeTimecode parses positions as [hh:]mm:ss[.mmm] media timecodes
	// (the "0:08", "1:04" notation of the paper's Figure 1) and maps them
	// to milliseconds.
	TypeTimecode
)

func (t PositionType) String() string {
	switch t {
	case TypeInteger:
		return "xs:integer"
	case TypeDateTime:
		return "xs:dateTime"
	case TypeTimecode:
		return "so:timecode"
	default:
		return fmt.Sprintf("PositionType(%d)", int(t))
	}
}

// Options mirrors the query preamble of section 2:
//
//	declare option standoff-type   "qualified-name"
//	declare option standoff-start  "qualified-name"
//	declare option standoff-end    "qualified-name"
//	declare option standoff-region "qualified-name"
//
// With UseRegionElements unset, regions are read from the Start/End
// *attributes* of area-annotation elements. When set, regions are read from
// child elements named Region that in turn hold Start and End child
// elements, which also enables non-contiguous (multi-region) areas.
type Options struct {
	Type              PositionType
	Start             string // attribute or element name holding the start position
	End               string // attribute or element name holding the end position
	Region            string // region child-element name (element representation)
	UseRegionElements bool
}

// DefaultOptions returns the paper's default settings: integer positions in
// "start"/"end" attributes.
func DefaultOptions() Options {
	return Options{Type: TypeInteger, Start: "start", End: "end"}
}

// String renders the options in the compact form the planner's EXPLAIN
// output uses: "@name" marks the attribute representation, "<name>" the
// region-element representation.
func (o Options) String() string {
	if o.UseRegionElements {
		return fmt.Sprintf("type=%v region=<%s> start=<%s> end=<%s>", o.Type, o.Region, o.Start, o.End)
	}
	return fmt.Sprintf("type=%v start=@%s end=@%s", o.Type, o.Start, o.End)
}

// ErrBadOption reports an invalid standoff option value.
var ErrBadOption = errors.New("core: invalid standoff option")

// Set applies one "declare option" from a query preamble. Known names are
// standoff-type, standoff-start, standoff-end, standoff-region; ok is false
// for other names so callers can pass every option through.
func (o *Options) Set(name, value string) (ok bool, err error) {
	switch name {
	case "standoff-type":
		switch value {
		case "xs:integer", "xs:int", "xs:long":
			o.Type = TypeInteger
		case "xs:dateTime":
			o.Type = TypeDateTime
		case "so:timecode":
			o.Type = TypeTimecode
		default:
			return true, fmt.Errorf("%w: standoff-type %q (want xs:integer, xs:dateTime or so:timecode)", ErrBadOption, value)
		}
	case "standoff-start":
		if value == "" {
			return true, fmt.Errorf("%w: empty standoff-start", ErrBadOption)
		}
		o.Start = value
	case "standoff-end":
		if value == "" {
			return true, fmt.Errorf("%w: empty standoff-end", ErrBadOption)
		}
		o.End = value
	case "standoff-region":
		if value == "" {
			return true, fmt.Errorf("%w: empty standoff-region", ErrBadOption)
		}
		o.Region = value
		o.UseRegionElements = true
	default:
		return false, nil
	}
	return true, nil
}

// ParsePosition converts a textual position into the int64 domain according
// to the configured type.
func (o Options) ParsePosition(s string) (int64, error) {
	switch o.Type {
	case TypeInteger:
		return strconv.ParseInt(s, 10, 64)
	case TypeDateTime:
		return parseDateTime(s)
	case TypeTimecode:
		return parseTimecode(s)
	default:
		return 0, fmt.Errorf("core: unknown position type %v", o.Type)
	}
}

// FormatPosition renders an int64 position back to text.
func (o Options) FormatPosition(v int64) string {
	switch o.Type {
	case TypeDateTime:
		return time.Unix(0, v).UTC().Format(time.RFC3339Nano)
	case TypeTimecode:
		ms := v % 1000
		sec := (v / 1000) % 60
		min := (v / 60000) % 60
		h := v / 3600000
		switch {
		case ms != 0:
			return fmt.Sprintf("%d:%02d:%02d.%03d", h, min, sec, ms)
		case h != 0:
			return fmt.Sprintf("%d:%02d:%02d", h, min, sec)
		default:
			return fmt.Sprintf("%d:%02d", min, sec)
		}
	default:
		return strconv.FormatInt(v, 10)
	}
}

func parseDateTime(s string) (int64, error) {
	for _, layout := range []string{time.RFC3339Nano, "2006-01-02T15:04:05", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixNano(), nil
		}
	}
	return 0, fmt.Errorf("core: cannot parse dateTime %q", s)
}

// parseTimecode accepts m:ss, mm:ss, h:mm:ss and an optional .mmm fraction,
// returning milliseconds.
func parseTimecode(s string) (int64, error) {
	var parts [3]int64
	var n int
	var ms int64
	rest := s
	// Split off the fractional milliseconds.
	for i := 0; i < len(rest); i++ {
		if rest[i] == '.' {
			frac := rest[i+1:]
			if len(frac) == 0 || len(frac) > 3 {
				return 0, fmt.Errorf("core: bad timecode fraction in %q", s)
			}
			v, err := strconv.ParseInt(frac, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("core: bad timecode %q", s)
			}
			for j := len(frac); j < 3; j++ {
				v *= 10
			}
			ms = v
			rest = rest[:i]
			break
		}
	}
	start := 0
	for i := 0; i <= len(rest); i++ {
		if i == len(rest) || rest[i] == ':' {
			if n == 3 || i == start {
				return 0, fmt.Errorf("core: bad timecode %q", s)
			}
			v, err := strconv.ParseInt(rest[start:i], 10, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("core: bad timecode %q", s)
			}
			parts[n] = v
			n++
			start = i + 1
		}
	}
	switch n {
	case 2: // mm:ss
		return parts[0]*60000 + parts[1]*1000 + ms, nil
	case 3: // h:mm:ss
		return parts[0]*3600000 + parts[1]*60000 + parts[2]*1000 + ms, nil
	default:
		return 0, fmt.Errorf("core: bad timecode %q (want mm:ss or h:mm:ss)", s)
	}
}

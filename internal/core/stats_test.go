package core

import (
	"testing"

	"soxq/internal/xmlparse"
)

func TestStats(t *testing.T) {
	d, err := xmlparse.Parse("d.xml", []byte(`<doc>
	  <scene start="0" end="99"/>
	  <scene start="100" end="199"/>
	  <hit start="10" end="20"/>
	  <plain/>
	</doc>`))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Areas != 3 || st.Regions != 3 {
		t.Fatalf("Areas=%d Regions=%d, want 3/3", st.Areas, st.Regions)
	}
	if st.MultiRegion {
		t.Fatal("MultiRegion must be false for attribute regions")
	}
	if st.DocNodes != d.NumNodes() {
		t.Fatalf("DocNodes = %d, want %d", st.DocNodes, d.NumNodes())
	}
	// Per-tag element cardinalities from the tree dictionary: all elements
	// count, not only area-annotations.
	for name, want := range map[string]int{"doc": 1, "scene": 2, "hit": 1, "plain": 1, "ghost": 0} {
		if got := st.Card(name); got != want {
			t.Errorf("Card(%q) = %d, want %d", name, got, want)
		}
	}
	// Attribute names never appear as element cardinalities.
	if got := st.Card("start"); got != 0 {
		t.Errorf("Card(start) = %d, want 0", got)
	}
	// The computation is memoized: a second call returns the same values.
	if st2 := ix.Stats(); st2.Areas != st.Areas || st2.Card("scene") != st.Card("scene") {
		t.Fatal("Stats not stable across calls")
	}
}

func TestStatsMultiRegion(t *testing.T) {
	d, err := xmlparse.Parse("d.xml", []byte(`<doc>
	  <ann><r><s>0</s><e>10</e></r><r><s>20</s><e>30</e></r></ann>
	</doc>`))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Type: TypeInteger, Start: "s", End: "e", Region: "r", UseRegionElements: true}
	ix, err := BuildIndex(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Areas != 1 || st.Regions != 2 || !st.MultiRegion {
		t.Fatalf("Areas=%d Regions=%d MultiRegion=%v, want 1/2/true", st.Areas, st.Regions, st.MultiRegion)
	}
}

package core

// Stats summarises a region index for the planner's per-step cost model: the
// area and region counts of the annotation layer, whether any area is
// non-contiguous, the document size, and the per-tag element cardinalities
// taken from the tree dictionary. The planner uses these to choose between
// the Basic and Loop-Lifted StandOff MergeJoin per step (layered-annotation
// workloads mix tiny and huge annotation layers in one query, which is where
// a static per-query strategy loses).
//
// Stats is computed once per index and shared; callers must treat
// ElementCard as read-only.
type Stats struct {
	// Areas is the number of area-annotations (NumAreas).
	Areas int
	// Regions is the number of region rows (NumRegions, >= Areas).
	Regions int
	// MultiRegion reports whether any area has more than one region.
	MultiRegion bool
	// DocNodes is the node count of the indexed document.
	DocNodes int
	// ElementCard maps each element name that occurs in the document to its
	// element cardinality (per the tree dictionary's element-name index).
	// Names that never occur as elements are absent.
	ElementCard map[string]int
}

// Card returns the element cardinality of name (0 when absent).
func (s Stats) Card(name string) int { return s.ElementCard[name] }

// IndexGen is the generation token of a region index: a comparable value
// identifying the (document, options) pair the index was built from. Two
// indexes built over the same document under the same options carry equal
// tokens — and, the index being a pure function of both, identical
// statistics. The planner keys its per-step strategy memos on this token
// rather than on index identity, so a warm statistics-based choice survives
// an index rebuild for the same document (an engine evicting and rebuilding
// indexes does not re-cool every plan), and the memo holds no pointer that
// would pin a dead document or index.
// Annotation writes derive new document snapshots sharing the ancestor's
// order key but bumping a mutation sequence number; seq folds that in, so a
// write invalidates every memo keyed on the generation while compaction
// (same snapshot, same options) keeps them warm.
type IndexGen struct {
	doc  int64  // tree.Doc.OrderKey: unique per document construction
	seq  uint64 // tree.Doc.MutSeq: bumped by every snapshot derivation
	opts Options
}

// Gen returns the index's generation token.
func (ix *RegionIndex) Gen() IndexGen {
	return IndexGen{doc: ix.doc.OrderKey(), seq: ix.doc.MutSeq(), opts: ix.opts}
}

// Stats returns the index statistics, computed on first use. The result is
// safe to share: the index is immutable after Build.
func (ix *RegionIndex) Stats() Stats {
	ix.materialize()
	ix.statsOnce.Do(func() {
		d := ix.doc
		card := map[string]int{}
		for id := int32(0); id < int32(d.Dict().Len()); id++ {
			if n := len(d.ElementsByName(id)); n > 0 {
				card[d.Dict().Name(id)] = n
			}
		}
		ix.stats = Stats{
			Areas:       ix.NumAreas(),
			Regions:     ix.NumRegions(),
			MultiRegion: ix.multiRegion,
			DocNodes:    d.NumNodes(),
			ElementCard: card,
		}
	})
	return ix.stats
}

package core

// MatchBits is a bitmap over the positions of a candidate sequence's
// document-ordered area list. The chunked reject execution accumulates the
// candidates matched by each context chunk here: reject is an anti-join over
// the whole context, so per-chunk complements must not union — instead the
// select-side matches of every chunk union into the bitmap and one
// complement pass at the end yields the anti-join. The bitmap is the only
// whole-result state the chunked reject holds (one bit per candidate),
// against the bulk path's full per-iteration pair materialisation.
type MatchBits struct {
	words  []uint64
	n      int
	marked int
}

// GetMatchBits returns a zeroed bitmap over n candidate positions, reusing
// the arena's parked bitmap storage when it is large enough. Pair with
// PutMatchBits when the reject stream closes. A nil arena degrades to plain
// allocation, like every other arena entry point.
func (a *JoinArena) GetMatchBits(n int) *MatchBits {
	words := (n + 63) / 64
	b := &MatchBits{n: n}
	if a != nil && cap(a.bitWords) >= words {
		b.words = a.bitWords[:words]
		clear(b.words)
		a.bitWords = nil
	} else {
		b.words = make([]uint64, words)
	}
	return b
}

// PutMatchBits parks a bitmap's storage for reuse by the next GetMatchBits.
func (a *JoinArena) PutMatchBits(b *MatchBits) {
	if a == nil || b == nil {
		return
	}
	if cap(b.words) > cap(a.bitWords) {
		a.bitWords = b.words[:0]
	}
	b.words = nil
}

// Get reports whether position i is marked.
func (b *MatchBits) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Marked returns how many positions are marked so far. Once every candidate
// is marked the reject result is fixed (empty) and remaining chunks can be
// skipped.
func (b *MatchBits) Marked() int { return b.marked }

// Len returns the bitmap's position count.
func (b *MatchBits) Len() int { return b.n }

// MarkMatched marks the candidate positions whose pre occurs in pairs and
// returns how many were newly marked. areas is the candidate pre list in
// document (= ascending pre) order; pairs is a single-iteration join result,
// sorted by pre and duplicate-free — the two-pointer walk is O(len(areas) +
// len(pairs)) per chunk.
func MarkMatched(b *MatchBits, areas []int32, pairs []Pair) int {
	newly := 0
	i := 0
	for _, pr := range pairs {
		for i < len(areas) && areas[i] < pr.Pre {
			i++
		}
		if i < len(areas) && areas[i] == pr.Pre {
			w, bit := i>>6, uint64(1)<<(uint(i)&63)
			if b.words[w]&bit == 0 {
				b.words[w] |= bit
				newly++
			}
			i++
		}
	}
	b.marked += newly
	return newly
}

package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"soxq/internal/interval"
	"soxq/internal/tree"
)

// RegionIndex is the paper's region index (section 4.3): a start|end|id
// table clustered on start, where id is the pre-order rank of the
// area-annotation element. Non-contiguous areas are represented by repeating
// the same id in several rows. In addition the index keeps, per annotated
// node, its region list (for context fetch) and a bounds table with one row
// per area (used by the containment fast path), plus a lazily built
// end-ordered permutation used by the overlap joins.
//
// A RegionIndex is immutable after Build and safe for concurrent use.
// Annotation writes derive new index layers instead of mutating (see
// delta.go): a delta index carries the base pointer and its delta columns,
// and materialises the merged orderings below on first read.
type RegionIndex struct {
	doc  *tree.Doc
	opts Options

	// Delta layers (nil/empty on a base index; see delta.go). insPre[i] owns
	// insRegs[insOff[i]:insOff[i+1]]; delPre lists every tombstoned area.
	// The columns extend the parent layer's columns in place, so derivation
	// must be linear and serialized (engine write lock).
	base            *RegionIndex
	insPre, insName []int32
	insOff          []int32
	insRegs         []interval.Region
	delPre, delName []int32
	mergeOnce       sync.Once
	insRank         map[int32]int32    // live inserted pre -> insPre rank
	deadSet         map[int32]struct{} // tombstoned area pres
	dRows           regionRows         // live delta region rows, (start, end, id)-sorted

	// Region rows, sorted by (start, end, id).
	rStart []int64
	rEnd   []int64
	rID    []int32

	// Bounds rows: one row per area (covering region), sorted by
	// (start, end, id). Aliases the region rows when every area is
	// single-region.
	bStart []int64
	bEnd   []int64
	bID    []int32

	// Per-area geometry: areas is the ascending pre list of annotated
	// nodes; area i owns areaRegs[areaOff[i]:areaOff[i+1]].
	areas    []int32
	areaOff  []int32
	areaRegs []interval.Region
	areaRank map[int32]int32

	multiRegion bool

	endPermOnce sync.Once
	eDone       atomic.Bool // end-ordered columns built (guards delta-aware derivation)
	rEndPerm    []int32     // region row indices ordered by (end, start, id)
	endIdxOnce  sync.Once   // derives rEndPerm from the end columns when the merge path skipped it
	// Flat region columns in (end, start, id) order — the overlap joins scan
	// these contiguously instead of dereferencing rEndPerm per row.
	eStart []int64
	eEnd   []int64
	eID    []int32

	suffixOnce sync.Once
	bSuffixMin []int32 // suffix-min of bID over the bounds rows (start order)
	eSuffixMin []int32 // suffix-min of rID over the end-ordered region rows

	statsOnce sync.Once
	stats     Stats // planner statistics, built lazily (see stats.go)

	nameCands sync.Map // element name id -> *Candidates (FilterByName cache)
}

// BuildIndex scans doc for area-annotations according to opts and builds the
// region index. In attribute mode an element is an area-annotation iff it
// carries both the start and end attributes; having only one of the two is a
// configuration or data error and is rejected. In region-element mode an
// element is an area-annotation iff it has one or more region child
// elements, each holding start and end child elements.
func BuildIndex(doc *tree.Doc, opts Options) (*RegionIndex, error) {
	ix := &RegionIndex{doc: doc, opts: opts, areaRank: make(map[int32]int32)}
	var err error
	if opts.UseRegionElements {
		err = ix.scanRegionElements()
	} else {
		err = ix.scanAttributes()
	}
	if err != nil {
		return nil, err
	}
	ix.sortRows()
	return ix, nil
}

func (ix *RegionIndex) scanAttributes() error {
	d := ix.doc
	startID, ok1 := d.Dict().Lookup(ix.opts.Start)
	endID, ok2 := d.Dict().Lookup(ix.opts.End)
	if !ok1 || !ok2 {
		// The document has no such attributes at all: an empty index.
		if ok1 != ok2 {
			return fmt.Errorf("core: document %q has %q attributes but no %q attributes",
				d.Name, pick(ok1, ix.opts.Start, ix.opts.End), pick(ok1, ix.opts.End, ix.opts.Start))
		}
		return nil
	}
	n := int32(d.NumNodes())
	for pre := int32(0); pre < n; pre++ {
		if d.Kind(pre) != tree.ElementNode || !d.Alive(pre) {
			continue
		}
		si := d.Attr(pre, startID)
		ei := d.Attr(pre, endID)
		if si < 0 && ei < 0 {
			continue
		}
		if si < 0 || ei < 0 {
			return fmt.Errorf("core: element <%s> (pre %d) has only one of %q/%q",
				d.NodeName(pre), pre, ix.opts.Start, ix.opts.End)
		}
		start, err := ix.parsePos(d.AttrValueBytes(si))
		if err != nil {
			return fmt.Errorf("core: element <%s> (pre %d): bad %s: %v", d.NodeName(pre), pre, ix.opts.Start, err)
		}
		end, err := ix.parsePos(d.AttrValueBytes(ei))
		if err != nil {
			return fmt.Errorf("core: element <%s> (pre %d): bad %s: %v", d.NodeName(pre), pre, ix.opts.End, err)
		}
		if start > end {
			return fmt.Errorf("core: element <%s> (pre %d): region start %d > end %d",
				d.NodeName(pre), pre, start, end)
		}
		ix.addArea(pre, []interval.Region{{Start: start, End: end}})
	}
	return nil
}

func (ix *RegionIndex) scanRegionElements() error {
	d := ix.doc
	regionID, ok := d.Dict().Lookup(ix.opts.Region)
	if !ok {
		return nil
	}
	startID, _ := d.Dict().Lookup(ix.opts.Start)
	endID, _ := d.Dict().Lookup(ix.opts.End)
	n := int32(d.NumNodes())
	for pre := int32(0); pre < n; pre++ {
		if d.Kind(pre) != tree.ElementNode || d.NameID(pre) == regionID || !d.Alive(pre) {
			continue
		}
		var regions []interval.Region
		for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
			if d.Kind(c) != tree.ElementNode || d.NameID(c) != regionID {
				continue
			}
			r, err := ix.readRegionElement(c, startID, endID)
			if err != nil {
				return err
			}
			regions = append(regions, r)
		}
		if len(regions) == 0 {
			continue
		}
		area, err := interval.NewArea(regions...)
		if err != nil {
			return fmt.Errorf("core: element <%s> (pre %d): %v", d.NodeName(pre), pre, err)
		}
		ix.addArea(pre, area.Regions())
	}
	return nil
}

func (ix *RegionIndex) readRegionElement(pre, startID, endID int32) (interval.Region, error) {
	d := ix.doc
	var startStr, endStr string
	var haveStart, haveEnd bool
	for c := d.FirstChild(pre); c >= 0; c = d.NextSibling(c) {
		if d.Kind(c) != tree.ElementNode {
			continue
		}
		switch d.NameID(c) {
		case startID:
			startStr, haveStart = d.StringValue(c), true
		case endID:
			endStr, haveEnd = d.StringValue(c), true
		}
	}
	if !haveStart || !haveEnd {
		return interval.Region{}, fmt.Errorf("core: <%s> region (pre %d) misses <%s> or <%s>",
			ix.opts.Region, pre, ix.opts.Start, ix.opts.End)
	}
	start, err := ix.opts.ParsePosition(trimSpace(startStr))
	if err != nil {
		return interval.Region{}, fmt.Errorf("core: region (pre %d): %v", pre, err)
	}
	end, err := ix.opts.ParsePosition(trimSpace(endStr))
	if err != nil {
		return interval.Region{}, fmt.Errorf("core: region (pre %d): %v", pre, err)
	}
	return interval.NewRegion(start, end)
}

func (ix *RegionIndex) addArea(pre int32, regions []interval.Region) {
	ix.areaRank[pre] = int32(len(ix.areas))
	ix.areas = append(ix.areas, pre)
	ix.areaOff = append(ix.areaOff, int32(len(ix.areaRegs)))
	ix.areaRegs = append(ix.areaRegs, regions...)
	for _, r := range regions {
		ix.rStart = append(ix.rStart, r.Start)
		ix.rEnd = append(ix.rEnd, r.End)
		ix.rID = append(ix.rID, pre)
	}
	if len(regions) > 1 {
		ix.multiRegion = true
	}
}

func (ix *RegionIndex) sortRows() {
	ix.areaOff = append(ix.areaOff, int32(len(ix.areaRegs)))
	perm := make([]int32, len(ix.rStart))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		i, j := perm[a], perm[b]
		if ix.rStart[i] != ix.rStart[j] {
			return ix.rStart[i] < ix.rStart[j]
		}
		if ix.rEnd[i] != ix.rEnd[j] {
			return ix.rEnd[i] < ix.rEnd[j]
		}
		return ix.rID[i] < ix.rID[j]
	})
	ix.rStart = permute64(ix.rStart, perm)
	ix.rEnd = permute64(ix.rEnd, perm)
	ix.rID = permute32(ix.rID, perm)

	if !ix.multiRegion {
		ix.bStart, ix.bEnd, ix.bID = ix.rStart, ix.rEnd, ix.rID
		return
	}
	// Bounds table: one covering region per area.
	nA := len(ix.areas)
	ix.bStart = make([]int64, nA)
	ix.bEnd = make([]int64, nA)
	ix.bID = make([]int32, nA)
	bperm := make([]int32, nA)
	for i := 0; i < nA; i++ {
		regs := ix.areaRegs[ix.areaOff[i]:ix.areaOff[i+1]]
		ix.bStart[i] = regs[0].Start
		ix.bEnd[i] = regs[len(regs)-1].End
		ix.bID[i] = ix.areas[i]
		bperm[i] = int32(i)
	}
	sort.Slice(bperm, func(a, b int) bool {
		i, j := bperm[a], bperm[b]
		if ix.bStart[i] != ix.bStart[j] {
			return ix.bStart[i] < ix.bStart[j]
		}
		if ix.bEnd[i] != ix.bEnd[j] {
			return ix.bEnd[i] < ix.bEnd[j]
		}
		return ix.bID[i] < ix.bID[j]
	})
	ix.bStart = permute64(ix.bStart, bperm)
	ix.bEnd = permute64(ix.bEnd, bperm)
	ix.bID = permute32(ix.bID, bperm)
}

// endPerm returns region row indices ordered ascending by (end, start, id).
func (ix *RegionIndex) endPerm() []int32 {
	ix.materialize()
	ix.endPermOnce.Do(ix.buildEndOrder)
	ix.endIdxOnce.Do(ix.buildEndPermIdx)
	return ix.rEndPerm
}

// endCols returns the flat region columns in (end, start, id) order.
func (ix *RegionIndex) endCols() (start, end []int64, id []int32) {
	ix.materialize()
	ix.endPermOnce.Do(ix.buildEndOrder)
	return ix.eStart, ix.eEnd, ix.eID
}

func (ix *RegionIndex) buildEndOrder() {
	defer ix.eDone.Store(true)
	if b := ix.base; b != nil && b.eDone.Load() {
		// Delta-aware path: the base already paid for its end-ordering, so
		// derive the merged one by the same run-copy merge the start ordering
		// used, O(n + d log n) instead of a fresh O(n log n) sort. Swapping
		// the start/end columns turns (end, start, id) order into the
		// (start, end, id) order mergeRows preserves. rEndPerm is left for
		// endPerm() to derive on demand — the joins scan the flat columns.
		d := regionRows{
			start: append([]int64(nil), ix.dRows.end...),
			end:   append([]int64(nil), ix.dRows.start...),
			id:    append([]int32(nil), ix.dRows.id...),
		}
		sort.Sort(&d)
		e, s, id := mergeRows(b.eEnd, b.eStart, b.eID, ix.deadSet, &d)
		ix.eStart, ix.eEnd, ix.eID = s, e, id
		return
	}
	p := make([]int32, len(ix.rStart))
	for i := range p {
		p[i] = int32(i)
	}
	sort.Slice(p, func(a, b int) bool {
		i, j := p[a], p[b]
		if ix.rEnd[i] != ix.rEnd[j] {
			return ix.rEnd[i] < ix.rEnd[j]
		}
		if ix.rStart[i] != ix.rStart[j] {
			return ix.rStart[i] < ix.rStart[j]
		}
		return ix.rID[i] < ix.rID[j]
	})
	ix.rEndPerm = p
	ix.eStart = permute64(ix.rStart, p)
	ix.eEnd = permute64(ix.rEnd, p)
	ix.eID = permute32(ix.rID, p)
}

// buildEndPermIdx recovers the end-order permutation from the flat end
// columns when the delta-aware merge in buildEndOrder skipped building it:
// each end-ordered row's index in the start-ordered rows is found by binary
// search, with equal (start, end, id) runs assigned ascending indices.
func (ix *RegionIndex) buildEndPermIdx() {
	if ix.rEndPerm != nil || ix.eID == nil {
		return
	}
	p := make([]int32, len(ix.eID))
	run := 0
	for k := range p {
		s, e, id := ix.eStart[k], ix.eEnd[k], ix.eID[k]
		if k > 0 && ix.eStart[k-1] == s && ix.eEnd[k-1] == e && ix.eID[k-1] == id {
			run++
		} else {
			run = 0
		}
		lo := sort.Search(len(ix.rID), func(m int) bool {
			return !rowLess(ix.rStart[m], ix.rEnd[m], ix.rID[m], s, e, id)
		})
		p[k] = int32(lo + run)
	}
	ix.rEndPerm = p
}

// suffixMins returns the whole-index suffix-min id arrays backing the
// streaming-merge watermarks (see Candidates.MinPreStartFrom/MinPreEndFrom):
// bSuffixMin[k] is the smallest area id among bounds rows k.. in start order,
// eSuffixMin[k] the smallest region id among end-ordered rows k.. . Built
// once; the index is immutable so the arrays are shareable.
func (ix *RegionIndex) suffixMins() (bMin, eMin []int32) {
	ix.materialize()
	ix.suffixOnce.Do(func() {
		ix.bSuffixMin = suffixMinIDs(len(ix.bID), func(k int) int32 { return ix.bID[k] })
		_, _, eid := ix.endCols()
		ix.eSuffixMin = suffixMinIDs(len(eid), func(k int) int32 { return eid[k] })
	})
	return ix.bSuffixMin, ix.eSuffixMin
}

// suffixMinIDs builds the suffix-min array of n ids.
func suffixMinIDs(n int, id func(int) int32) []int32 {
	out := make([]int32, n)
	m := int32(1<<31 - 1)
	for k := n - 1; k >= 0; k-- {
		if v := id(k); v < m {
			m = v
		}
		out[k] = m
	}
	return out
}

// Doc returns the indexed document.
func (ix *RegionIndex) Doc() *tree.Doc { return ix.doc }

// Options returns the options the index was built with.
func (ix *RegionIndex) Options() Options { return ix.opts }

// NumAreas returns the number of area-annotations in the document.
func (ix *RegionIndex) NumAreas() int { ix.materialize(); return len(ix.areas) }

// NumRegions returns the number of region rows (>= NumAreas).
func (ix *RegionIndex) NumRegions() int { ix.materialize(); return len(ix.rStart) }

// MultiRegion reports whether any area has more than one region.
func (ix *RegionIndex) MultiRegion() bool { ix.materialize(); return ix.multiRegion }

// Areas returns the ascending pre list of all area-annotations. The returned
// slice must not be modified.
func (ix *RegionIndex) Areas() []int32 { ix.materialize(); return ix.areas }

// IsArea reports whether node pre is an area-annotation. On a delta index the
// lookup routes tombstone -> delta -> base without merged per-area geometry.
func (ix *RegionIndex) IsArea(pre int32) bool {
	if ix.base != nil {
		ix.materialize()
		if _, gone := ix.deadSet[pre]; gone {
			return false
		}
		if _, ok := ix.insRank[pre]; ok {
			return true
		}
		return ix.base.IsArea(pre)
	}
	_, ok := ix.areaRank[pre]
	return ok
}

// RegionsOf returns the regions of area pre (start-ordered), or nil when pre
// is not an area-annotation. The returned slice must not be modified.
func (ix *RegionIndex) RegionsOf(pre int32) []interval.Region {
	if ix.base != nil {
		ix.materialize()
		if _, gone := ix.deadSet[pre]; gone {
			return nil
		}
		if rank, ok := ix.insRank[pre]; ok {
			return ix.insRegs[ix.insOff[rank]:ix.insOff[rank+1]]
		}
		return ix.base.RegionsOf(pre)
	}
	rank, ok := ix.areaRank[pre]
	if !ok {
		return nil
	}
	return ix.areaRegs[ix.areaOff[rank]:ix.areaOff[rank+1]]
}

// AreaOf returns the area geometry of node pre.
func (ix *RegionIndex) AreaOf(pre int32) (interval.Area, bool) {
	regs := ix.RegionsOf(pre)
	if regs == nil {
		return interval.Area{}, false
	}
	a, err := interval.NewArea(regs...)
	if err != nil {
		return interval.Area{}, false
	}
	return a, true
}

// regionCount returns the number of regions of area pre.
func (ix *RegionIndex) regionCount(pre int32) int32 {
	if ix.base != nil {
		return int32(len(ix.RegionsOf(pre)))
	}
	rank := ix.areaRank[pre]
	return ix.areaOff[rank+1] - ix.areaOff[rank]
}

func (ix *RegionIndex) parsePos(b []byte) (int64, error) {
	if ix.opts.Type == TypeInteger {
		return parseIntBytes(b)
	}
	return ix.opts.ParsePosition(string(b))
}

// parseIntBytes parses a decimal int64 from bytes without allocating.
func parseIntBytes(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty integer")
	}
	neg := false
	i := 0
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, fmt.Errorf("bare sign")
		}
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q in %q", c, b)
		}
		d := int64(c - '0')
		if v > (1<<63-1-d)/10 {
			return 0, fmt.Errorf("integer overflow in %q", b)
		}
		v = v*10 + d
	}
	if neg {
		return -v, nil
	}
	return v, nil
}

func trimSpace(s string) string {
	i, j := 0, len(s)
	for i < j && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	for j > i && (s[j-1] == ' ' || s[j-1] == '\t' || s[j-1] == '\n' || s[j-1] == '\r') {
		j--
	}
	return s[i:j]
}

func pick(cond bool, a, b string) string {
	if cond {
		return a
	}
	return b
}

func permute64(v []int64, perm []int32) []int64 {
	out := make([]int64, len(v))
	for i, p := range perm {
		out[i] = v[p]
	}
	return out
}

func permute32(v []int32, perm []int32) []int32 {
	out := make([]int32, len(v))
	for i, p := range perm {
		out[i] = v[p]
	}
	return out
}

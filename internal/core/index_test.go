package core

import (
	"strings"
	"testing"

	"soxq/internal/interval"
	"soxq/internal/tree"
	"soxq/internal/xmlparse"
)

func parseDoc(t *testing.T, src string) *tree.Doc {
	t.Helper()
	d, err := xmlparse.Parse("test.xml", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func buildIx(t *testing.T, src string, opts Options) *RegionIndex {
	t.Helper()
	ix, err := BuildIndex(parseDoc(t, src), opts)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return ix
}

func TestBuildIndexAttributes(t *testing.T) {
	ix := buildIx(t, `<doc>
	  <a start="10" end="20"/>
	  <b start="5" end="8"><c start="1" end="100"/></b>
	  <plain/>
	</doc>`, DefaultOptions())
	if ix.NumAreas() != 3 || ix.NumRegions() != 3 {
		t.Fatalf("areas=%d regions=%d", ix.NumAreas(), ix.NumRegions())
	}
	// Rows must be clustered on start: (1,100,c), (5,8,b), (10,20,a).
	wantStart := []int64{1, 5, 10}
	for i, s := range wantStart {
		if ix.rStart[i] != s {
			t.Fatalf("row %d start = %d, want %d (rows %v)", i, ix.rStart[i], s, ix.rStart)
		}
	}
	if ix.MultiRegion() {
		t.Fatal("attribute mode cannot be multi-region")
	}
	// Sub-annotations need not be contained in their ancestors (<c> sticks
	// out of <b>) — the index stores them regardless (section 2).
	c := ix.RegionsOf(idOf(t, ix.doc, "c"))
	if len(c) != 1 || c[0] != (interval.Region{Start: 1, End: 100}) {
		t.Fatalf("RegionsOf(c) = %v", c)
	}
	if ix.IsArea(idOf(t, ix.doc, "plain")) {
		t.Fatal("plain element must not be an area")
	}
	if _, ok := ix.AreaOf(idOf(t, ix.doc, "plain")); ok {
		t.Fatal("AreaOf(plain) should report not-an-area")
	}
}

func TestBuildIndexCustomNames(t *testing.T) {
	opts := DefaultOptions()
	opts.Start, opts.End = "from", "to"
	ix := buildIx(t, `<doc><x from="3" to="9"/><y start="1" end="2"/></doc>`, opts)
	if ix.NumAreas() != 1 {
		t.Fatalf("NumAreas = %d, want 1 (only from/to counts)", ix.NumAreas())
	}
}

func TestBuildIndexRegionElements(t *testing.T) {
	opts := DefaultOptions()
	_, err := opts.Set("standoff-region", "region")
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, `<doc>
	  <file name="f1">
	    <region><start>0</start><end>99</end></region>
	    <region><start>200</start><end>299</end></region>
	  </file>
	  <hit><region><start>210</start><end>220</end></region></hit>
	  <nofile/>
	</doc>`, opts)
	if ix.NumAreas() != 2 || ix.NumRegions() != 3 {
		t.Fatalf("areas=%d regions=%d", ix.NumAreas(), ix.NumRegions())
	}
	if !ix.MultiRegion() {
		t.Fatal("expected multi-region index")
	}
	file := idOf(t, ix.doc, "file")
	regs := ix.RegionsOf(file)
	if len(regs) != 2 || regs[0] != (interval.Region{Start: 0, End: 99}) {
		t.Fatalf("file regions = %v", regs)
	}
	if ix.regionCount(file) != 2 {
		t.Fatalf("regionCount(file) = %d", ix.regionCount(file))
	}
	// Bounds table has one row per area.
	if len(ix.bID) != 2 {
		t.Fatalf("bounds rows = %d", len(ix.bID))
	}
}

func TestBuildIndexErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts func() Options
		want string
	}{
		{"only start", `<d><a start="1"/><b start="1" end="2"/></d>`, DefaultOptions, "only one of"},
		{"only end", `<d><a end="1"/><b start="1" end="2"/></d>`, DefaultOptions, "only one of"},
		{"inverted", `<d><a start="9" end="1"/></d>`, DefaultOptions, "start 9 > end 1"},
		{"bad int", `<d><a start="x" end="2"/></d>`, DefaultOptions, "bad start"},
		{"start attr only in doc", `<d><a start="1"/></d>`, DefaultOptions, "has \"start\" attributes but no"},
		{"region missing end", `<d><a><region><start>1</start></region></a></d>`, func() Options {
			o := DefaultOptions()
			o.Region = "region"
			o.UseRegionElements = true
			return o
		}, "misses"},
		{"region overlap", `<d><a><region><start>1</start><end>5</end></region><region><start>4</start><end>9</end></region></a></d>`, func() Options {
			o := DefaultOptions()
			o.Region = "region"
			o.UseRegionElements = true
			return o
		}, "overlap"},
	}
	for _, c := range cases {
		_, err := BuildIndex(parseDoc(t, c.src), c.opts())
		if err == nil {
			t.Errorf("%s: BuildIndex should fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestBuildIndexNoAnnotations(t *testing.T) {
	ix := buildIx(t, `<doc><a/><b/></doc>`, DefaultOptions())
	if ix.NumAreas() != 0 || ix.NumRegions() != 0 {
		t.Fatal("index of plain document must be empty")
	}
}

func TestIndexTimecode(t *testing.T) {
	opts := DefaultOptions()
	opts.Type = TypeTimecode
	ix := buildIx(t, `<doc><shot start="0:08" end="1:04"/></doc>`, opts)
	regs := ix.RegionsOf(idOf(t, ix.doc, "shot"))
	if len(regs) != 1 || regs[0].Start != 8000 || regs[0].End != 64000 {
		t.Fatalf("timecode regions = %v", regs)
	}
}

func TestCandidatesFilter(t *testing.T) {
	ix := buildIx(t, `<doc>
	  <a start="1" end="10"/>
	  <b start="2" end="3"/>
	  <a start="5" end="6"/>
	  <plain/>
	</doc>`, DefaultOptions())
	d := ix.doc
	aID, _ := d.Dict().Lookup("a")
	as := d.ElementsByName(aID)
	cand := ix.Filter(as)
	if cand.Len() != 2 || cand.regionLen() != 2 {
		t.Fatalf("filtered candidates: len=%d regions=%d", cand.Len(), cand.regionLen())
	}
	// Start order preserved (index intersection, section 4.3).
	s0, _, _ := cand.regionRow(0)
	s1, _, _ := cand.regionRow(1)
	if s0 > s1 {
		t.Fatal("filtered rows not in start order")
	}
	// Filtering by a non-area keeps nothing.
	if ix.Filter([]int32{idOf(t, d, "plain")}).Len() != 0 {
		t.Fatal("non-area filter should be empty")
	}
	if ix.Filter(nil).Len() != 0 {
		t.Fatal("empty filter should be empty")
	}
	all := ix.All()
	if all.Len() != 3 {
		t.Fatalf("All().Len() = %d", all.Len())
	}
}

func TestEndPermOrder(t *testing.T) {
	ix := buildIx(t, `<doc><a start="1" end="50"/><b start="2" end="3"/><c start="4" end="10"/></doc>`, DefaultOptions())
	var prev int64 = -1 << 62
	for k := 0; k < ix.All().regionLen(); k++ {
		_, e, _ := ix.All().regionRowByEnd(k)
		if e < prev {
			t.Fatal("end permutation not sorted by end")
		}
		prev = e
	}
}

// idOf returns the pre of the first element named name.
func idOf(t *testing.T, d *tree.Doc, name string) int32 {
	t.Helper()
	id, ok := d.Dict().Lookup(name)
	if !ok {
		t.Fatalf("no element named %q", name)
	}
	pres := d.ElementsByName(id)
	if len(pres) == 0 {
		t.Fatalf("no element named %q", name)
	}
	return pres[0]
}

func TestParseIntBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true}, {"42", 42, true}, {"-7", -7, true}, {"+9", 9, true},
		{"9223372036854775807", 1<<63 - 1, true},
		{"9223372036854775808", 0, false},
		{"", 0, false}, {"-", 0, false}, {"1x", 0, false}, {"1.5", 0, false},
	}
	for _, c := range cases {
		got, err := parseIntBytes([]byte(c.in))
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("parseIntBytes(%q) = %d, %v", c.in, got, err)
		}
	}
}

func TestOptionsSetAndPositions(t *testing.T) {
	o := DefaultOptions()
	for _, c := range []struct{ n, v string }{
		{"standoff-start", "from"}, {"standoff-end", "to"},
		{"standoff-type", "xs:integer"}, {"standoff-region", "reg"},
	} {
		ok, err := o.Set(c.n, c.v)
		if !ok || err != nil {
			t.Fatalf("Set(%s,%s) = %v,%v", c.n, c.v, ok, err)
		}
	}
	if o.Start != "from" || o.End != "to" || !o.UseRegionElements || o.Region != "reg" {
		t.Fatalf("options = %+v", o)
	}
	if ok, _ := o.Set("unrelated-option", "x"); ok {
		t.Fatal("unknown option should report ok=false")
	}
	if _, err := o.Set("standoff-type", "xs:string"); err == nil {
		t.Fatal("bad type must fail")
	}
	if _, err := o.Set("standoff-start", ""); err == nil {
		t.Fatal("empty start must fail")
	}

	// Position round trips.
	o2 := Options{Type: TypeTimecode}
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"0:00", 0}, {"0:08", 8000}, {"1:04", 64000}, {"1:34", 94000},
		{"1:02:03", 3723000}, {"0:01.5", 1500}, {"0:00.042", 42},
	} {
		got, err := o2.ParsePosition(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("timecode %q = %d, %v (want %d)", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "5", "x:y", "1:2:3:4", "-1:00", "1:0.1234"} {
		if _, err := o2.ParsePosition(bad); err == nil {
			t.Errorf("timecode %q should fail", bad)
		}
	}
	o3 := Options{Type: TypeDateTime}
	v, err := o3.ParsePosition("2006-06-30T12:00:00Z")
	if err != nil || v <= 0 {
		t.Fatalf("dateTime parse: %d, %v", v, err)
	}
	if _, err := o3.ParsePosition("not a date"); err == nil {
		t.Fatal("bad dateTime should fail")
	}
	if s := o3.FormatPosition(v); !strings.HasPrefix(s, "2006-06-30T12:00:00") {
		t.Fatalf("FormatPosition = %q", s)
	}
	if s := o2.FormatPosition(64000); s != "1:04" {
		t.Fatalf("timecode format = %q", s)
	}
	if s := o2.FormatPosition(3723042); s != "1:02:03.042" {
		t.Fatalf("timecode format = %q", s)
	}
	if s := DefaultOptions().FormatPosition(17); s != "17" {
		t.Fatalf("integer format = %q", s)
	}
}

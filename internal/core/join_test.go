package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// figure1Doc is the multimedia example of the paper's Figure 1.
const figure1Doc = `<sample>
  <video>
    <shot id="Intro" start="0:00" end="0:08"/>
    <shot id="Interview" start="0:08" end="1:04"/>
    <shot id="Outro" start="1:04" end="1:34"/>
  </video>
  <audio>
    <music artist="U2" start="0:00" end="0:31"/>
    <music artist="Bach" start="0:52" end="1:34"/>
  </audio>
</sample>`

func figure1Index(t *testing.T) *RegionIndex {
	t.Helper()
	opts := DefaultOptions()
	opts.Type = TypeTimecode
	return buildIx(t, figure1Doc, opts)
}

// TestSection31Table reproduces the example table of section 3.1:
//
//	select-narrow(//music[artist="U2"], //shot)  = Intro
//	select-wide(...)                             = Intro Interview
//	reject-narrow(...)                           = Interview Outro
//	reject-wide(...)                             = Outro
func TestSection31Table(t *testing.T) {
	ix := figure1Index(t)
	d := ix.doc
	var u2 int32 = -1
	musicID, _ := d.Dict().Lookup("music")
	for _, pre := range d.ElementsByName(musicID) {
		if v, _ := d.AttrByName(pre, "artist"); v == "U2" {
			u2 = pre
		}
	}
	if u2 < 0 {
		t.Fatal("U2 music not found")
	}
	shotID, _ := d.Dict().Lookup("shot")
	shots := ix.Filter(d.ElementsByName(shotID))
	ctx := []CtxNode{{Iter: 0, Pre: u2}}

	want := map[Op][]string{
		SelectNarrow: {"Intro"},
		SelectWide:   {"Intro", "Interview"},
		RejectNarrow: {"Interview", "Outro"},
		RejectWide:   {"Outro"},
	}
	for _, strat := range []Strategy{StrategyNaive, StrategyBasic, StrategyLoopLifted} {
		for op, expected := range want {
			pairs := Join(ix, op, strat, ctx, 1, shots, JoinConfig{})
			var got []string
			for _, p := range pairs {
				id, _ := d.AttrByName(p.Pre, "id")
				got = append(got, id)
			}
			if strings.Join(got, " ") != strings.Join(expected, " ") {
				t.Errorf("%s/%s = %v, want %v", op, strat, got, expected)
			}
		}
	}
}

// TestFigure4Trace replays the exact context and candidate tables of the
// paper's Figure 4 through the loop-lifted select-narrow join and checks
// both the produced matches — (iter 1, r1) and (iter 1, r4) — and the
// algorithm's event trace. Our active-set bookkeeping differs slightly from
// Listing 1 (we keep one dominant region per iteration and expire from the
// tail), so "remove c1/c2 from list" steps appear as expiries, but the
// algorithm visits the same items in the same order and emits the same
// results.
func TestFigure4Trace(t *testing.T) {
	// Candidates r1..r4 and contexts c1..c4 share one document; context
	// nodes are fed by pre, candidates are restricted to the r elements.
	src := `<doc>
	  <r n="r1" start="5" end="10"/>
	  <r n="r2" start="22" end="45"/>
	  <r n="r3" start="40" end="60"/>
	  <r n="r4" start="65" end="70"/>
	  <c n="c1" start="0" end="15"/>
	  <c n="c2" start="12" end="35"/>
	  <c n="c3" start="20" end="30"/>
	  <c n="c4" start="55" end="80"/>
	</doc>`
	ix := buildIx(t, src, DefaultOptions())
	d := ix.doc
	pre := map[string]int32{}
	for _, name := range []string{"r", "c"} {
		id, _ := d.Dict().Lookup(name)
		for _, p := range d.ElementsByName(id) {
			n, _ := d.AttrByName(p, "n")
			pre[n] = p
		}
	}
	ctx := []CtxNode{
		{Iter: 1, Pre: pre["c1"]},
		{Iter: 2, Pre: pre["c2"]},
		{Iter: 1, Pre: pre["c3"]},
		{Iter: 1, Pre: pre["c4"]},
	}
	rID, _ := d.Dict().Lookup("r")
	cands := ix.Filter(d.ElementsByName(rID))

	var events []string
	cfg := JoinConfig{Trace: func(ev TraceEvent) {
		switch ev.Kind {
		case "add-context":
			events = append(events, fmt.Sprintf("add iter%d end%d", ev.Key, ev.End))
		case "skip-context":
			events = append(events, fmt.Sprintf("dominated iter%d end%d", ev.Key, ev.End))
		case "emit":
			n, _ := d.AttrByName(ev.Pre, "n")
			events = append(events, fmt.Sprintf("emit iter%d %s", ev.Key, n))
		case "skip-candidate":
			n, _ := d.AttrByName(ev.Pre, "n")
			events = append(events, "skip "+n)
		case "break":
			events = append(events, "break")
		}
	}}
	pairs := Join(ix, SelectNarrow, StrategyLoopLifted, ctx, 3, cands, cfg)

	if len(pairs) != 2 || pairs[0] != (Pair{Iter: 1, Pre: pre["r1"]}) || pairs[1] != (Pair{Iter: 1, Pre: pre["r4"]}) {
		t.Fatalf("Figure 4 matches = %v, want [(1,r1) (1,r4)]", pairs)
	}
	wantTrace := []string{
		"add iter1 end15", // step 1: add c1 to the active list
		"emit iter1 r1",   // step 2: (iter1, r1) result
		"add iter2 end35", // step 3: push c2
		"add iter1 end30", // c3 becomes iter1's dominant item (paper skips it against c1; both are sound)
		"skip r2",         // step 6: no active item contains r2
		"skip r3",         // step 8: skip r3
		"add iter1 end80", // step 7: add c4
		"emit iter1 r4",   // step 9: (iter1, r4) result
	}
	if strings.Join(events, "; ") != strings.Join(wantTrace, "; ") {
		t.Fatalf("trace mismatch:\n got  %v\nwant %v", events, wantTrace)
	}
}

// TestFigure4AllStrategies confirms every strategy agrees on the Figure 4
// input.
func TestFigure4AllStrategies(t *testing.T) {
	src := `<doc>
	  <r n="r1" start="5" end="10"/><r n="r2" start="22" end="45"/>
	  <r n="r3" start="40" end="60"/><r n="r4" start="65" end="70"/>
	  <c n="c1" start="0" end="15"/><c n="c2" start="12" end="35"/>
	  <c n="c3" start="20" end="30"/><c n="c4" start="55" end="80"/>
	</doc>`
	ix := buildIx(t, src, DefaultOptions())
	d := ix.doc
	cID, _ := d.Dict().Lookup("c")
	rID, _ := d.Dict().Lookup("r")
	cs := d.ElementsByName(cID)
	ctx := []CtxNode{{Iter: 1, Pre: cs[0]}, {Iter: 2, Pre: cs[1]}, {Iter: 1, Pre: cs[2]}, {Iter: 1, Pre: cs[3]}}
	cands := ix.Filter(d.ElementsByName(rID))
	ref := Join(ix, SelectNarrow, StrategyNaive, ctx, 3, cands, JoinConfig{})
	for _, strat := range []Strategy{StrategyBasic, StrategyLoopLifted} {
		for _, heap := range []bool{false, true} {
			got := Join(ix, SelectNarrow, strat, ctx, 3, cands, JoinConfig{UseHeap: heap})
			if !pairsEqual(got, ref) {
				t.Errorf("%v(heap=%v) = %v, want %v", strat, heap, got, ref)
			}
		}
	}
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomSingleRegionIndex builds a document with n annotated elements at
// random positions.
func randomSingleRegionIndex(t *testing.T, rng *rand.Rand, n int, maxPos int64) *RegionIndex {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < n; i++ {
		s := rng.Int63n(maxPos)
		e := s + rng.Int63n(maxPos/4+1)
		fmt.Fprintf(&sb, `<a i="%d" start="%d" end="%d"/>`, i, s, e)
	}
	sb.WriteString("</doc>")
	return buildIx(t, sb.String(), DefaultOptions())
}

// TestStrategiesAgreeSingleRegion is the central property test: on random
// single-region data, all three strategies (and both active-set structures)
// must return identical results for all four operators.
func TestStrategiesAgreeSingleRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 60; round++ {
		nAreas := 1 + rng.Intn(40)
		ix := randomSingleRegionIndex(t, rng, nAreas, 200)
		areas := ix.Areas()
		nIters := int32(1 + rng.Intn(5))
		var ctx []CtxNode
		for i := 0; i < rng.Intn(12); i++ {
			ctx = append(ctx, CtxNode{
				Iter: rng.Int31n(nIters),
				Pre:  areas[rng.Intn(len(areas))],
			})
		}
		// Randomly restrict candidates to a subset.
		cand := ix.All()
		if rng.Intn(2) == 0 {
			var sub []int32
			for _, a := range areas {
				if rng.Intn(2) == 0 {
					sub = append(sub, a)
				}
			}
			cand = ix.Filter(sub)
		}
		for op := SelectNarrow; op <= RejectWide; op++ {
			ref := Join(ix, op, StrategyNaive, ctx, nIters, cand, JoinConfig{})
			for _, strat := range []Strategy{StrategyBasic, StrategyLoopLifted} {
				for _, heap := range []bool{false, true} {
					got := Join(ix, op, strat, ctx, nIters, cand, JoinConfig{UseHeap: heap})
					if !pairsEqual(got, ref) {
						t.Fatalf("round %d: %v/%v(heap=%v) disagrees with naive:\n got  %v\nwant %v\nctx %v",
							round, op, strat, heap, got, ref, ctx)
					}
				}
			}
		}
	}
}

// TestStrategiesAgreeMultiRegion stresses the exact multi-region paths
// (region-element representation, non-contiguous areas).
func TestStrategiesAgreeMultiRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	opts := DefaultOptions()
	opts.Region = "region"
	opts.UseRegionElements = true
	for round := 0; round < 40; round++ {
		var sb strings.Builder
		sb.WriteString("<doc>")
		nAreas := 1 + rng.Intn(20)
		for i := 0; i < nAreas; i++ {
			sb.WriteString("<a>")
			pos := rng.Int63n(50)
			for r, nr := 0, 1+rng.Intn(3); r < nr; r++ {
				length := rng.Int63n(30)
				fmt.Fprintf(&sb, "<region><start>%d</start><end>%d</end></region>", pos, pos+length)
				pos += length + 2 + rng.Int63n(20)
			}
			sb.WriteString("</a>")
		}
		sb.WriteString("</doc>")
		ix := buildIx(t, sb.String(), opts)
		areas := ix.Areas()
		nIters := int32(1 + rng.Intn(4))
		var ctx []CtxNode
		for i := 0; i < rng.Intn(8); i++ {
			ctx = append(ctx, CtxNode{Iter: rng.Int31n(nIters), Pre: areas[rng.Intn(len(areas))]})
		}
		for op := SelectNarrow; op <= RejectWide; op++ {
			ref := Join(ix, op, StrategyNaive, ctx, nIters, ix.All(), JoinConfig{})
			for _, strat := range []Strategy{StrategyBasic, StrategyLoopLifted} {
				for _, heap := range []bool{false, true} {
					got := Join(ix, op, strat, ctx, nIters, ix.All(), JoinConfig{UseHeap: heap})
					if !pairsEqual(got, ref) {
						t.Fatalf("round %d: %v/%v(heap=%v) disagrees:\n got  %v\nwant %v\ndoc %s\nctx %v",
							round, op, strat, heap, got, ref, sb.String(), ctx)
					}
				}
			}
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	ix := figure1Index(t)
	// Empty context: selects yield nothing, rejects yield everything.
	for _, strat := range []Strategy{StrategyNaive, StrategyBasic, StrategyLoopLifted} {
		if got := Join(ix, SelectNarrow, strat, nil, 2, ix.All(), JoinConfig{}); len(got) != 0 {
			t.Fatalf("%v: select-narrow with empty context = %v", strat, got)
		}
		got := Join(ix, RejectWide, strat, nil, 2, ix.All(), JoinConfig{})
		if len(got) != 2*ix.NumAreas() {
			t.Fatalf("%v: reject-wide with empty context: %d pairs, want %d", strat, len(got), 2*ix.NumAreas())
		}
	}
	// Context nodes that are not areas contribute nothing.
	d := ix.doc
	video := idOf(t, d, "video")
	for _, strat := range []Strategy{StrategyNaive, StrategyBasic, StrategyLoopLifted} {
		if got := Join(ix, SelectWide, strat, []CtxNode{{Iter: 0, Pre: video}}, 1, ix.All(), JoinConfig{}); len(got) != 0 {
			t.Fatalf("%v: non-area context must not match, got %v", strat, got)
		}
	}
	// Empty candidates.
	if got := Join(ix, SelectWide, StrategyLoopLifted, []CtxNode{{Iter: 0, Pre: idOf(t, d, "music")}}, 1, ix.Filter(nil), JoinConfig{}); len(got) != 0 {
		t.Fatalf("empty candidates must match nothing, got %v", got)
	}
}

// TestSelfContainment: an area always select-narrow-matches itself when it
// is both context and candidate (the Figure 2 function has the same
// property).
func TestSelfContainment(t *testing.T) {
	ix := buildIx(t, `<d><a start="3" end="9"/></d>`, DefaultOptions())
	a := ix.Areas()[0]
	for _, strat := range []Strategy{StrategyNaive, StrategyBasic, StrategyLoopLifted} {
		got := Join(ix, SelectNarrow, strat, []CtxNode{{Iter: 0, Pre: a}}, 1, ix.All(), JoinConfig{})
		if len(got) != 1 || got[0].Pre != a {
			t.Fatalf("%v: self containment = %v", strat, got)
		}
	}
}

// TestDuplicateContextNodes: the same node bound in several iterations must
// match independently per iteration.
func TestDuplicateContextNodes(t *testing.T) {
	ix := figure1Index(t)
	d := ix.doc
	musicID, _ := d.Dict().Lookup("music")
	u2 := d.ElementsByName(musicID)[0]
	shotID, _ := d.Dict().Lookup("shot")
	shots := ix.Filter(d.ElementsByName(shotID))
	ctx := []CtxNode{{Iter: 0, Pre: u2}, {Iter: 2, Pre: u2}}
	got := Join(ix, SelectWide, StrategyLoopLifted, ctx, 3, shots, JoinConfig{})
	// Iter 0 and iter 2 each match Intro and Interview; iter 1 matches nothing.
	if len(got) != 4 || got[0].Iter != 0 || got[2].Iter != 2 {
		t.Fatalf("duplicate-context join = %v", got)
	}
}

// TestActiveListMiddleDeletion exercises the list structure directly: a new
// dominant region for a key must replace the key's older entry even when it
// sits in the middle of the list.
func TestActiveListMiddleDeletion(t *testing.T) {
	l := newListActive(3)
	l.insert(0, 50)
	l.insert(1, 40)
	l.insert(2, 30)
	if l.len() != 3 || l.maxEnd() != 50 {
		t.Fatalf("len=%d maxEnd=%d", l.len(), l.maxEnd())
	}
	if l.insert(1, 35) {
		t.Fatal("dominated insert must be rejected")
	}
	if !l.insert(1, 60) {
		t.Fatal("dominant insert must be accepted")
	}
	if l.len() != 3 {
		t.Fatalf("middle deletion failed, len=%d", l.len())
	}
	var keys []int32
	l.forEach(0, func(k int32) { keys = append(keys, k) })
	if fmt.Sprint(keys) != "[1 0 2]" {
		t.Fatalf("order after middle deletion = %v", keys)
	}
	l.expire(35)
	if l.len() != 2 {
		t.Fatalf("expire failed, len=%d", l.len())
	}
	keys = nil
	l.forEach(45, func(k int32) { keys = append(keys, k) })
	if fmt.Sprint(keys) != "[1 0]" {
		t.Fatalf("forEach(45) = %v", keys)
	}
}

// TestHeapActiveLazyStaleness exercises the heap structure's lazy deletion.
func TestHeapActiveLazyStaleness(t *testing.T) {
	h := newHeapActive(2)
	h.insert(0, 10)
	h.insert(1, 20)
	h.insert(0, 30) // supersedes (0,10)
	if h.len() != 2 {
		t.Fatalf("live = %d", h.len())
	}
	var got []string
	h.forEach(5, func(k int32) { got = append(got, fmt.Sprint(k)) })
	if strings.Join(got, ",") != "0,1" {
		t.Fatalf("forEach = %v (stale entry leaked?)", got)
	}
	// Re-run: items must have been pushed back.
	got = nil
	h.forEach(15, func(k int32) { got = append(got, fmt.Sprint(k)) })
	if strings.Join(got, ",") != "0,1" {
		t.Fatalf("second forEach = %v", got)
	}
	got = nil
	h.forEach(25, func(k int32) { got = append(got, fmt.Sprint(k)) })
	if strings.Join(got, ",") != "0" {
		t.Fatalf("forEach(25) = %v", got)
	}
}

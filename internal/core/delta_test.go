package core

import (
	"reflect"
	"testing"

	"soxq/internal/interval"
	"soxq/internal/tree"
	"soxq/internal/xmlparse"
)

// mutateDoc applies n scripted inserts and deletes to doc, mirroring them
// onto ix via ApplyInsert/ApplyDelete, and returns the final snapshot and
// delta index.
func applyInsert(t *testing.T, d *tree.Doc, ix *RegionIndex, elem string, start, end int64) (*tree.Doc, *RegionIndex) {
	t.Helper()
	a, err := tree.NewAppender(d)
	if err != nil {
		t.Fatalf("NewAppender: %v", err)
	}
	pre := a.StartElement(elem)
	a.Attr("start", FormatInt(start))
	a.Attr("end", FormatInt(end))
	a.EndElement()
	d2, err := a.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	nameID, _ := d2.Dict().Lookup(elem)
	return d2, ix.ApplyInsert(d2, pre, nameID, []interval.Region{{Start: start, End: end}})
}

func applyDelete(t *testing.T, d *tree.Doc, ix *RegionIndex, pre int32) (*tree.Doc, *RegionIndex) {
	t.Helper()
	d2, err := d.WithTombstones([]int32{pre})
	if err != nil {
		t.Fatalf("WithTombstones: %v", err)
	}
	var killedPre, killedName []int32
	for _, p := range ix.Areas() {
		if p >= pre && p <= pre+d.Size(pre) {
			killedPre = append(killedPre, p)
			killedName = append(killedName, d.NameID(p))
		}
	}
	return d2, ix.ApplyDelete(d2, killedPre, killedName)
}

// FormatInt is a tiny helper for attribute values in tests.
func FormatInt(v int64) string { return DefaultOptions().FormatPosition(v) }

const deltaBase = `<doc>
  <scene start="0" end="100"/>
  <scene start="100" end="200"/>
  <hit start="10" end="20"/>
  <hit start="110" end="130"/>
  <hit start="150" end="160"/>
</doc>`

func buildDelta(t *testing.T) (*tree.Doc, *RegionIndex) {
	t.Helper()
	d, err := xmlparse.Parse("d.xml", []byte(deltaBase))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ix, err := BuildIndex(d, DefaultOptions())
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return d, ix
}

// assertIndexEqual compares every observable ordering of two indexes: region
// rows, bounds rows, document-order area list, per-area geometry, the
// end-ordered columns, the watermark suffix-mins, and the multi-region flag.
func assertIndexEqual(t *testing.T, got, want *RegionIndex) {
	t.Helper()
	if g, w := got.Areas(), want.Areas(); !reflect.DeepEqual(g, w) {
		t.Fatalf("areas: %v != %v", g, w)
	}
	if got.NumRegions() != want.NumRegions() || got.MultiRegion() != want.MultiRegion() {
		t.Fatalf("regions=%d/%d multi=%v/%v", got.NumRegions(), want.NumRegions(), got.MultiRegion(), want.MultiRegion())
	}
	if !reflect.DeepEqual(got.rStart, want.rStart) || !reflect.DeepEqual(got.rEnd, want.rEnd) || !reflect.DeepEqual(got.rID, want.rID) {
		t.Fatalf("region rows differ:\n%v %v %v\n%v %v %v", got.rStart, got.rEnd, got.rID, want.rStart, want.rEnd, want.rID)
	}
	if !reflect.DeepEqual(got.bStart, want.bStart) || !reflect.DeepEqual(got.bEnd, want.bEnd) || !reflect.DeepEqual(got.bID, want.bID) {
		t.Fatalf("bounds rows differ")
	}
	for _, pre := range want.Areas() {
		if !reflect.DeepEqual(got.RegionsOf(pre), want.RegionsOf(pre)) {
			t.Fatalf("RegionsOf(%d): %v != %v", pre, got.RegionsOf(pre), want.RegionsOf(pre))
		}
		if !got.IsArea(pre) {
			t.Fatalf("IsArea(%d) = false", pre)
		}
	}
	gs, ge, gi := got.endCols()
	ws, we, wi := want.endCols()
	if !reflect.DeepEqual(gs, ws) || !reflect.DeepEqual(ge, we) || !reflect.DeepEqual(gi, wi) {
		t.Fatalf("end-ordered columns differ")
	}
	gb, gev := got.suffixMins()
	wb, wev := want.suffixMins()
	if !reflect.DeepEqual(gb, wb) || !reflect.DeepEqual(gev, wev) {
		t.Fatalf("suffix-mins differ: %v/%v != %v/%v", gb, gev, wb, wev)
	}
	gp, wp := got.endPerm(), want.endPerm()
	if len(gp) != len(wp) {
		t.Fatalf("end permutation length: %d != %d", len(gp), len(wp))
	}
	for k := range gp {
		if gp[k] != wp[k] {
			t.Fatalf("end permutation differs at %d: %v != %v", k, gp, wp)
		}
	}
}

func TestDeltaInsertMatchesRebuild(t *testing.T) {
	d, ix := buildDelta(t)
	d, delta := applyInsert(t, d, ix, "hit", 55, 65)
	d, delta = applyInsert(t, d, delta, "mark", 5, 95)

	if ins, del := delta.DeltaStats(); ins != 2 || del != 0 {
		t.Fatalf("DeltaStats = %d/%d", ins, del)
	}
	fresh, err := BuildIndex(d, DefaultOptions())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	assertIndexEqual(t, delta, fresh)
}

// TestDeltaWarmBaseEndOrder exercises the delta-aware end-ordering: when the
// base index has already built its end columns (a previously queried corpus),
// the merged ordering is derived by run-copy merge instead of a fresh sort —
// and must still be identical to a rebuild, with and without tombstones.
func TestDeltaWarmBaseEndOrder(t *testing.T) {
	d, ix := buildDelta(t)
	ix.endCols()
	ix.suffixMins()

	// Insert-only delta (empty dead set takes the bulk-copy merge).
	d2, delta := applyInsert(t, d, ix, "hit", 55, 65)
	d2, delta = applyInsert(t, d2, delta, "mark", 5, 95)
	fresh, err := BuildIndex(d2, DefaultOptions())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	assertIndexEqual(t, delta, fresh)

	// Mixed delta with a tombstone on top of the warmed base.
	d3, delta2 := applyDelete(t, d2, delta, delta.Areas()[1])
	fresh2, err := BuildIndex(d3, DefaultOptions())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	assertIndexEqual(t, delta2, fresh2)
}

func TestDeltaDeleteMatchesRebuild(t *testing.T) {
	d, ix := buildDelta(t)
	// Delete the middle hit (pre of third area row in doc order).
	target := ix.Areas()[3]
	d, delta := applyDelete(t, d, ix, target)
	if ins, del := delta.DeltaStats(); ins != 0 || del != 1 {
		t.Fatalf("DeltaStats = %d/%d", ins, del)
	}
	if delta.IsArea(target) {
		t.Fatal("deleted area still IsArea")
	}
	if delta.RegionsOf(target) != nil {
		t.Fatal("deleted area still has regions")
	}
	fresh, err := BuildIndex(d, DefaultOptions())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	assertIndexEqual(t, delta, fresh)
}

func TestDeltaInsertDeleteInterleavedMatchesRebuild(t *testing.T) {
	d, ix := buildDelta(t)
	cur := ix
	var inserted []int32
	for i := 0; i < 8; i++ {
		s := int64(i * 13)
		d, cur = applyInsert(t, d, cur, "hit", s, s+9)
		cur.materialize()
		inserted = append(inserted, cur.Areas()[len(cur.Areas())-1])
	}
	// Delete two originals and two of the fresh inserts.
	d, cur = applyDelete(t, d, cur, ix.Areas()[2])
	d, cur = applyDelete(t, d, cur, inserted[3])
	d, cur = applyDelete(t, d, cur, inserted[6])

	fresh, err := BuildIndex(d, DefaultOptions())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	assertIndexEqual(t, cur, fresh)

	if ins, del := cur.DeltaStats(); ins != 8 || del != 3 {
		t.Fatalf("DeltaStats = %d/%d", ins, del)
	}
}

// TestCompactIdenticalToFreshBuild is the compaction property test: after a
// delta-heavy history, Compact() must be byte-identical to BuildIndex over
// the same snapshot — including internal orderings and per-area geometry.
func TestCompactIdenticalToFreshBuild(t *testing.T) {
	d, ix := buildDelta(t)
	cur := ix
	for i := 0; i < 20; i++ {
		s := int64(i * 7)
		d, cur = applyInsert(t, d, cur, "hit", s, s+int64(i%5)+1)
	}
	cur.materialize()
	d, cur = applyDelete(t, d, cur, cur.Areas()[4])
	d, cur = applyDelete(t, d, cur, cur.Areas()[10])

	compacted := cur.Compact()
	if ins, del := compacted.DeltaStats(); ins != 0 || del != 0 {
		t.Fatalf("compacted DeltaStats = %d/%d", ins, del)
	}
	fresh, err := BuildIndex(d, DefaultOptions())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	// Byte-identical internals: force every lazy structure on both sides and
	// compare the full struct contents.
	compacted.endPerm()
	fresh.endPerm()
	compacted.suffixMins()
	fresh.suffixMins()
	if !reflect.DeepEqual(compacted.rEndPerm, fresh.rEndPerm) {
		t.Fatalf("end permutation differs")
	}
	if !reflect.DeepEqual(compacted.areaOff, fresh.areaOff) || !reflect.DeepEqual(compacted.areaRegs, fresh.areaRegs) {
		t.Fatalf("area geometry differs")
	}
	if !reflect.DeepEqual(compacted.areaRank, fresh.areaRank) {
		t.Fatalf("area ranks differ")
	}
	assertIndexEqual(t, compacted, fresh)

	// Compaction preserves the generation (same snapshot, same options);
	// mutation bumps it.
	if compacted.Gen() != cur.Gen() {
		t.Fatal("compaction changed the index generation")
	}
	if cur.Gen() == ix.Gen() {
		t.Fatal("mutation kept the index generation")
	}

	// Compact on a base index is the identity.
	if fresh.Compact() != fresh {
		t.Fatal("Compact on a base index rebuilt it")
	}
}

// TestCompactMultiRegion pins the multi-region flag and bounds table across
// delta merge and compaction in region-element mode.
func TestCompactMultiRegion(t *testing.T) {
	src := `<doc>
  <mark><region><start>10</start><end>20</end></region><region><start>40</start><end>50</end></region></mark>
  <mark><region><start>60</start><end>70</end></region></mark>
</doc>`
	d, err := xmlparse.Parse("m.xml", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	opts := DefaultOptions()
	if _, err := opts.Set("standoff-region", "region"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	opts.Start, opts.End = "start", "end"
	ix, err := BuildIndex(d, opts)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if !ix.MultiRegion() {
		t.Fatal("base not multi-region")
	}
	// Insert a two-region area via the tree, then mirror it on the index.
	a, err := tree.NewAppender(d)
	if err != nil {
		t.Fatalf("NewAppender: %v", err)
	}
	pre := a.StartElement("note")
	for _, r := range [][2]string{{"0", "5"}, {"80", "90"}} {
		a.StartElement("region")
		a.StartElement("start")
		a.Text(r[0])
		a.EndElement()
		a.StartElement("end")
		a.Text(r[1])
		a.EndElement()
		a.EndElement()
	}
	a.EndElement()
	d2, err := a.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	nameID, _ := d2.Dict().Lookup("note")
	delta := ix.ApplyInsert(d2, pre, nameID, []interval.Region{{Start: 0, End: 5}, {Start: 80, End: 90}})

	fresh, err := BuildIndex(d2, opts)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	assertIndexEqual(t, delta, fresh)
	assertIndexEqual(t, delta.Compact(), fresh)
}

func TestFilterByNameDelegation(t *testing.T) {
	d, ix := buildDelta(t)
	sceneID, _ := d.Dict().Lookup("scene")
	baseCands := ix.FilterByName(sceneID)

	// Inserting hits never touches the scene layer: the delta index serves
	// the base's cached candidate object unchanged.
	d2, delta := applyInsert(t, d, ix, "hit", 42, 43)
	if got := delta.FilterByName(sceneID); got != baseCands {
		t.Fatal("untouched name did not delegate to the base candidate cache")
	}
	// The touched name re-intersects against the merged columns.
	hitID, _ := d2.Dict().Lookup("hit")
	hits := delta.FilterByName(hitID)
	if hits.Len() != 4 {
		t.Fatalf("hit candidates = %d, want 4", hits.Len())
	}
	fresh, err := BuildIndex(d2, DefaultOptions())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if want := fresh.FilterByName(hitID); !reflect.DeepEqual(hits.AreaPres(), want.AreaPres()) {
		t.Fatalf("hit candidates %v != %v", hits.AreaPres(), want.AreaPres())
	}

	// Deleting a scene touches the layer: no more delegation afterwards.
	target := ix.Areas()[0]
	_, delta2 := applyDelete(t, d2, delta, target)
	got := delta2.FilterByName(sceneID)
	if got == baseCands {
		t.Fatal("touched name still delegated")
	}
	if got.Len() != 1 {
		t.Fatalf("scene candidates after delete = %d, want 1", got.Len())
	}
}

func TestDeltaWatermarks(t *testing.T) {
	d, ix := buildDelta(t)
	d, delta := applyInsert(t, d, ix, "hit", 55, 65)
	fresh, err := BuildIndex(d, DefaultOptions())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	dc, fc := delta.All(), fresh.All()
	for _, s := range []int64{-1, 0, 10, 55, 56, 100, 150, 200, 1000} {
		gp, gok := dc.MinPreStartFrom(s)
		wp, wok := fc.MinPreStartFrom(s)
		if gp != wp || gok != wok {
			t.Fatalf("MinPreStartFrom(%d) = %d/%v, want %d/%v", s, gp, gok, wp, wok)
		}
		gp, gok = dc.MinPreEndFrom(s)
		wp, wok = fc.MinPreEndFrom(s)
		if gp != wp || gok != wok {
			t.Fatalf("MinPreEndFrom(%d) = %d/%v, want %d/%v", s, gp, gok, wp, wok)
		}
	}
}

package core

import "math"

// activeSet holds the "active context items" of the StandOff MergeJoin
// (section 4.4/4.5): per key (an iteration, or a pseudo-iteration standing
// for one multi-region context area), the dominant context region seen so
// far. A region dominates another of the same key when it was inserted no
// later (hence its start is <=) and its end is >=: whenever the dominated
// region satisfies a join condition, the dominant one does too, so keeping
// one region per key is exact for the semi-join.
type activeSet interface {
	// insert offers a context region; dominated regions are ignored.
	// Returns whether the region was kept.
	insert(key int32, end int64) bool
	// forEach invokes f once per key whose dominant end is >= thresh.
	forEach(thresh int64, f func(key int32))
	// expire drops items with end < cutoff. Only valid when cutoffs are
	// non-decreasing over the life of the set (select-narrow's candidate
	// start values). Implementations may ignore it.
	expire(cutoff int64)
	// maxEnd returns an upper bound for the largest active end, or
	// math.MinInt64 when empty.
	maxEnd() int64
	// len returns the number of live items (diagnostics).
	len() int
}

type activeEntry struct {
	key int32
	end int64
}

// listActive is the paper's structure: a list of active items sorted
// descending on end, "from which we currently may delete elements in the
// middle – so it really is a list" (section 5). Tail entries expire as the
// candidate scan advances; a fresh dominant region for a key deletes the
// key's stale middle entry.
type listActive struct {
	items []activeEntry // sorted descending by end
	best  []int64       // per key: dominant end, MinInt64 when none
}

func newListActive(nKeys int32) *listActive {
	return (&listActive{}).reset(nKeys)
}

// reset reinitialises the set for nKeys keys, keeping the backing arrays —
// the arena-recycled construction path.
func (l *listActive) reset(nKeys int32) *listActive {
	if cap(l.best) < int(nKeys) {
		l.best = make([]int64, nKeys)
	}
	l.best = l.best[:nKeys]
	for i := range l.best {
		l.best[i] = math.MinInt64
	}
	l.items = l.items[:0]
	return l
}

func (l *listActive) insert(key int32, end int64) bool {
	old := l.best[key]
	if old >= end {
		return false // dominated by an earlier region of the same key
	}
	if old != math.MinInt64 {
		l.deleteEntry(key, old)
	}
	l.best[key] = end
	// Binary search for the first position whose end < end (descending).
	lo, hi := 0, len(l.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.items[mid].end >= end {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l.items = append(l.items, activeEntry{})
	copy(l.items[lo+1:], l.items[lo:])
	l.items[lo] = activeEntry{key: key, end: end}
	return true
}

// deleteEntry removes the (key,end) entry if still present (it may have been
// expired from the tail already).
func (l *listActive) deleteEntry(key int32, end int64) {
	lo, hi := 0, len(l.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.items[mid].end > end {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(l.items) && l.items[i].end == end; i++ {
		if l.items[i].key == key {
			copy(l.items[i:], l.items[i+1:])
			l.items = l.items[:len(l.items)-1]
			return
		}
	}
}

func (l *listActive) forEach(thresh int64, f func(key int32)) {
	for _, it := range l.items {
		if it.end < thresh {
			return
		}
		f(it.key)
	}
}

func (l *listActive) expire(cutoff int64) {
	n := len(l.items)
	for n > 0 && l.items[n-1].end < cutoff {
		n--
	}
	l.items = l.items[:n]
}

func (l *listActive) maxEnd() int64 {
	if len(l.items) == 0 {
		return math.MinInt64
	}
	return l.items[0].end
}

func (l *listActive) len() int { return len(l.items) }

// heapActive is the heap replacement suggested by the paper's section 5 for
// data distributions that let the active list grow long: a binary max-heap
// on end with lazy deletion of superseded entries. forEach pops matching
// entries and pushes the live ones back, so each emission costs O(log n)
// instead of the list's O(n) middle deletions and insert shifts.
type heapActive struct {
	heap    []activeEntry
	best    []int64
	live    int
	scratch []activeEntry
}

func newHeapActive(nKeys int32) *heapActive {
	return (&heapActive{}).reset(nKeys)
}

// reset reinitialises the heap for nKeys keys, keeping the backing arrays.
func (h *heapActive) reset(nKeys int32) *heapActive {
	if cap(h.best) < int(nKeys) {
		h.best = make([]int64, nKeys)
	}
	h.best = h.best[:nKeys]
	for i := range h.best {
		h.best[i] = math.MinInt64
	}
	h.heap = h.heap[:0]
	h.scratch = h.scratch[:0]
	h.live = 0
	return h
}

func (h *heapActive) insert(key int32, end int64) bool {
	if h.best[key] >= end {
		return false
	}
	if h.best[key] != math.MinInt64 {
		h.live-- // the old entry becomes stale in place
	}
	h.best[key] = end
	h.push(activeEntry{key: key, end: end})
	h.live++
	return true
}

func (h *heapActive) push(e activeEntry) {
	h.heap = append(h.heap, e)
	i := len(h.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.heap[p].end >= h.heap[i].end {
			break
		}
		h.heap[p], h.heap[i] = h.heap[i], h.heap[p]
		i = p
	}
}

func (h *heapActive) pop() activeEntry {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap = h.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.heap) && h.heap[l].end > h.heap[big].end {
			big = l
		}
		if r < len(h.heap) && h.heap[r].end > h.heap[big].end {
			big = r
		}
		if big == i {
			break
		}
		h.heap[i], h.heap[big] = h.heap[big], h.heap[i]
		i = big
	}
	return top
}

func (h *heapActive) forEach(thresh int64, f func(key int32)) {
	h.scratch = h.scratch[:0]
	for len(h.heap) > 0 && h.heap[0].end >= thresh {
		e := h.pop()
		if h.best[e.key] != e.end {
			continue // stale: superseded by a later dominant region
		}
		f(e.key)
		h.scratch = append(h.scratch, e)
	}
	for _, e := range h.scratch {
		h.push(e)
	}
}

func (h *heapActive) expire(int64) {} // lazy: expired entries never reach forEach

func (h *heapActive) maxEnd() int64 {
	if len(h.heap) == 0 {
		return math.MinInt64
	}
	return h.heap[0].end
}

func (h *heapActive) len() int { return h.live }

package core

import (
	"sort"

	"soxq/internal/interval"
	"soxq/internal/tree"
)

// LSM-style write path for the region index.
//
// A freshly built RegionIndex is the *base* layer. Annotation inserts and
// deletes do not rebuild it: ApplyInsert/ApplyDelete derive a cheap wrapper
// index that records the mutation in sorted per-layer delta columns and keeps
// a pointer to the base. The first read materialises the wrapper by merging
// the delta into the base orderings — a columnar two-way merge over the
// struct-of-arrays region and bounds columns, after which the lazily built
// end-ordered permutation and watermark suffix-mins are delta-aware for free
// (they derive from the merged columns). Point lookups (IsArea/RegionsOf)
// never merge per-area geometry: they route tombstone → delta → base.
//
// Derivation must be linear: always derive from the newest index, under the
// engine's write lock (delta columns extend the parent's columns in place,
// beyond the parent's slice lengths — the same append-beyond-len snapshot
// discipline as tree.Appender). Readers of any layer are lock-free.
//
// Compact folds the deltas into a new base identical to a fresh
// BuildIndex over the current document snapshot, resetting delta sizes to
// zero without changing the index generation.

// ApplyInsert derives an index for snapshot doc with the area-annotation
// (pre, nameID, regs) added. regs must be in normalised interval.Area order
// (ascending, as Area.Regions returns them). doc must be the snapshot that
// contains the inserted element at pre.
func (ix *RegionIndex) ApplyInsert(doc *tree.Doc, pre, nameID int32, regs []interval.Region) *RegionIndex {
	n := ix.derive(doc)
	n.insPre = append(n.insPre, pre)
	n.insName = append(n.insName, nameID)
	n.insRegs = append(n.insRegs, regs...)
	n.insOff = append(n.insOff, int32(len(n.insRegs)))
	return n
}

// ApplyDelete derives an index for snapshot doc with the given
// area-annotations removed. The caller passes every area killed by the
// tombstone — the deleted annotation and any annotation inside its subtree —
// with the element name of each (deleting a subtree that nests annotations of
// other layers must drop their rows too, and the names keep FilterByName's
// per-name delegation exact).
func (ix *RegionIndex) ApplyDelete(doc *tree.Doc, pres, names []int32) *RegionIndex {
	n := ix.derive(doc)
	n.delPre = append(n.delPre, pres...)
	n.delName = append(n.delName, names...)
	return n
}

// derive starts a new delta layer on top of ix's lineage.
func (ix *RegionIndex) derive(doc *tree.Doc) *RegionIndex {
	n := &RegionIndex{doc: doc, opts: ix.opts}
	if ix.base != nil {
		n.base = ix.base
		n.insPre, n.insName, n.insOff, n.insRegs = ix.insPre, ix.insName, ix.insOff, ix.insRegs
		n.delPre, n.delName = ix.delPre, ix.delName
	} else {
		n.base = ix
		n.insOff = []int32{0}
	}
	return n
}

// DeltaStats returns the number of inserted and deleted annotations pending
// in the delta layers (0, 0 for a compacted/fresh index).
func (ix *RegionIndex) DeltaStats() (inserted, deleted int) {
	if ix.base == nil {
		return 0, 0
	}
	return len(ix.insPre), len(ix.delPre)
}

// materialize merges the delta layers into the base orderings on first read.
// No-op for a base index.
func (ix *RegionIndex) materialize() {
	if ix.base != nil {
		ix.mergeOnce.Do(ix.merge)
	}
}

func (ix *RegionIndex) merge() {
	b := ix.base
	dead := make(map[int32]struct{}, len(ix.delPre))
	for _, p := range ix.delPre {
		dead[p] = struct{}{}
	}
	ix.deadSet = dead
	ix.insRank = make(map[int32]int32, len(ix.insPre))

	// Sorted delta rows from the live inserts (an annotation inserted and
	// later deleted within the same delta window contributes nothing).
	var dAreas []int32
	var dr, db regionRows
	multi := b.multiRegion
	for i, pre := range ix.insPre {
		if _, gone := dead[pre]; gone {
			continue
		}
		ix.insRank[pre] = int32(i)
		regs := ix.insRegs[ix.insOff[i]:ix.insOff[i+1]]
		dAreas = append(dAreas, pre) // insert pres ascend: appended nodes
		for _, r := range regs {
			dr.push(r.Start, r.End, pre)
		}
		db.push(regs[0].Start, regs[len(regs)-1].End, pre)
		if len(regs) > 1 {
			multi = true
		}
	}
	sort.Sort(&dr)
	sort.Sort(&db)
	ix.multiRegion = multi
	ix.dRows = dr

	// Document-order area list: base areas (minus tombstones) then the delta
	// areas, whose pres all exceed the base document's node count.
	areas := make([]int32, 0, len(b.areas)+len(dAreas))
	if len(dead) == 0 {
		areas = append(areas, b.areas...)
	} else {
		for _, p := range b.areas {
			if _, gone := dead[p]; !gone {
				areas = append(areas, p)
			}
		}
	}
	ix.areas = append(areas, dAreas...)

	// Columnar two-way merges on (start, end, id).
	ix.rStart, ix.rEnd, ix.rID = mergeRows(b.rStart, b.rEnd, b.rID, dead, &dr)
	if !ix.multiRegion {
		ix.bStart, ix.bEnd, ix.bID = ix.rStart, ix.rEnd, ix.rID
	} else {
		ix.bStart, ix.bEnd, ix.bID = mergeRows(b.bStart, b.bEnd, b.bID, dead, &db)
	}
}

// nameTouched reports whether any delta insert or delete concerns an
// annotation with the given element name.
func (ix *RegionIndex) nameTouched(nameID int32) bool {
	for _, n := range ix.insName {
		if n == nameID {
			return true
		}
	}
	for _, n := range ix.delName {
		if n == nameID {
			return true
		}
	}
	return false
}

// Compact folds the delta layers into a fresh base index over the current
// document snapshot. The result is identical — orderings, per-area geometry,
// multi-region flag — to BuildIndex over the same snapshot, and carries the
// same generation token (same document, same options), so strategy memos and
// calibration stay warm across compaction. Returns ix unchanged when there is
// nothing to fold.
func (ix *RegionIndex) Compact() *RegionIndex {
	if ix.base == nil {
		return ix
	}
	ix.materialize()
	n := &RegionIndex{doc: ix.doc, opts: ix.opts, areaRank: make(map[int32]int32, len(ix.areas))}
	for _, pre := range ix.areas {
		n.addArea(pre, ix.RegionsOf(pre))
	}
	n.sortRows()
	return n
}

// regionRows is a sortable (start, end, id) column triple.
type regionRows struct {
	start, end []int64
	id         []int32
}

func (r *regionRows) push(s, e int64, id int32) {
	r.start = append(r.start, s)
	r.end = append(r.end, e)
	r.id = append(r.id, id)
}

func (r *regionRows) Len() int { return len(r.id) }

func (r *regionRows) Less(i, j int) bool {
	return rowLess(r.start[i], r.end[i], r.id[i], r.start[j], r.end[j], r.id[j])
}

func (r *regionRows) Swap(i, j int) {
	r.start[i], r.start[j] = r.start[j], r.start[i]
	r.end[i], r.end[j] = r.end[j], r.end[i]
	r.id[i], r.id[j] = r.id[j], r.id[i]
}

func rowLess(s1, e1 int64, id1 int32, s2, e2 int64, id2 int32) bool {
	if s1 != s2 {
		return s1 < s2
	}
	if e1 != e2 {
		return e1 < e2
	}
	return id1 < id2
}

// mergeRows merges the base columns (skipping tombstoned ids) with the sorted
// delta rows, preserving (start, end, id) order.
func mergeRows(bs, be []int64, bid []int32, dead map[int32]struct{}, d *regionRows) (start, end []int64, id []int32) {
	n := len(bid) + d.Len()
	start = make([]int64, 0, n)
	end = make([]int64, 0, n)
	id = make([]int32, 0, n)
	if len(dead) == 0 {
		// Insert-only delta: the base survives whole, so instead of a
		// per-element walk (122k bounds-checked appends on the benchmark
		// corpus), binary-search each delta row's slot and bulk-copy the base
		// run before it. O(d log n) searches + O(n) memmove.
		i := 0
		for j := 0; j < d.Len(); j++ {
			k := i + sort.Search(len(bid)-i, func(m int) bool {
				return !rowLess(bs[i+m], be[i+m], bid[i+m], d.start[j], d.end[j], d.id[j])
			})
			start = append(start, bs[i:k]...)
			end = append(end, be[i:k]...)
			id = append(id, bid[i:k]...)
			start = append(start, d.start[j])
			end = append(end, d.end[j])
			id = append(id, d.id[j])
			i = k
		}
		start = append(start, bs[i:]...)
		end = append(end, be[i:]...)
		id = append(id, bid[i:]...)
		return start, end, id
	}
	i, j := 0, 0
	for i < len(bid) {
		if _, gone := dead[bid[i]]; gone {
			i++
			continue
		}
		if j < d.Len() && rowLess(d.start[j], d.end[j], d.id[j], bs[i], be[i], bid[i]) {
			start = append(start, d.start[j])
			end = append(end, d.end[j])
			id = append(id, d.id[j])
			j++
			continue
		}
		start = append(start, bs[i])
		end = append(end, be[i])
		id = append(id, bid[i])
		i++
	}
	for ; j < d.Len(); j++ {
		start = append(start, d.start[j])
		end = append(end, d.end[j])
		id = append(id, d.id[j])
	}
	return start, end, id
}

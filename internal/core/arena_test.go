package core

import (
	"math/rand"
	"testing"
)

// TestJoinArenaEquivalence pins the arena's ownership contract: joins that
// share one arena across many invocations (recycled pair buffers, reused
// active sets and context rows) return exactly what arena-free joins return,
// for every operator, strategy, and active-set structure.
func TestJoinArenaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	arena := AcquireJoinArena()
	defer arena.Release()
	for round := 0; round < 40; round++ {
		nAreas := 1 + rng.Intn(40)
		ix := randomSingleRegionIndex(t, rng, nAreas, 200)
		areas := ix.Areas()
		nIters := int32(1 + rng.Intn(5))
		var ctx []CtxNode
		for i := 0; i < rng.Intn(12); i++ {
			ctx = append(ctx, CtxNode{Iter: rng.Int31n(nIters), Pre: areas[rng.Intn(len(areas))]})
		}
		cand := ix.All()
		if rng.Intn(2) == 0 {
			var sub []int32
			for _, a := range areas {
				if rng.Intn(2) == 0 {
					sub = append(sub, a)
				}
			}
			cand = ix.Filter(sub)
		}
		for op := SelectNarrow; op <= RejectWide; op++ {
			for _, strat := range []Strategy{StrategyNaive, StrategyBasic, StrategyLoopLifted} {
				for _, heap := range []bool{false, true} {
					ref := Join(ix, op, strat, ctx, nIters, cand, JoinConfig{UseHeap: heap})
					got := Join(ix, op, strat, ctx, nIters, cand, JoinConfig{UseHeap: heap, Arena: arena})
					if !pairsEqual(got, ref) {
						t.Fatalf("round %d: %v/%v(heap=%v) with arena disagrees:\n got  %v\nwant %v\nctx %v",
							round, op, strat, heap, got, ref, ctx)
					}
					// got is on loan until the next arena Join — compared
					// above, not referenced below.
				}
			}
		}
	}
}

// TestComplementDenseMatch pins complement's exact capacity accounting on a
// dense corpus: when every candidate is matched in every iteration, the
// reject remainder is empty (the former nIters*len(areas)-len(matched)
// arithmetic hits exactly zero — the boundary the stale hint got wrong), and
// partially dense contexts produce exactly the unmatched grid cells.
func TestComplementDenseMatch(t *testing.T) {
	// One umbrella area [0,100] containing every other area.
	src := `<doc><a start="0" end="100"/><a start="5" end="10"/><a start="10" end="20"/><a start="30" end="40"/><a start="90" end="100"/></doc>`
	ix := buildIx(t, src, DefaultOptions())
	areas := ix.Areas()
	umbrella := areas[0]
	nIters := int32(3)
	ctx := []CtxNode{{Iter: 0, Pre: umbrella}, {Iter: 1, Pre: umbrella}, {Iter: 2, Pre: umbrella}}
	for _, heap := range []bool{false, true} {
		for _, arena := range []*JoinArena{nil, AcquireJoinArena()} {
			cfg := JoinConfig{UseHeap: heap, Arena: arena}
			sel := Join(ix, SelectNarrow, StrategyLoopLifted, ctx, nIters, ix.All(), cfg)
			if len(sel) != int(nIters)*len(areas) {
				t.Fatalf("heap=%v arena=%v: dense select-narrow returned %d pairs, want %d",
					heap, arena != nil, len(sel), int(nIters)*len(areas))
			}
			rej := Join(ix, RejectNarrow, StrategyLoopLifted, ctx, nIters, ix.All(), cfg)
			if len(rej) != 0 {
				t.Fatalf("heap=%v arena=%v: dense reject-narrow returned %d pairs, want 0: %v",
					heap, arena != nil, len(rej), rej)
			}
			// Partially dense: one iteration has no context at all, so its
			// whole candidate row set is the complement.
			part := []CtxNode{{Iter: 0, Pre: umbrella}, {Iter: 2, Pre: umbrella}}
			rej = Join(ix, RejectNarrow, StrategyLoopLifted, part, nIters, ix.All(), cfg)
			if len(rej) != len(areas) {
				t.Fatalf("heap=%v arena=%v: partial reject-narrow returned %d pairs, want %d",
					heap, arena != nil, len(rej), len(areas))
			}
			for i, p := range rej {
				if p.Iter != 1 || p.Pre != areas[i] {
					t.Fatalf("heap=%v arena=%v: partial reject pair %d = %v, want {1 %d}",
						heap, arena != nil, i, p, areas[i])
				}
			}
			arena.Release()
		}
	}
}

// TestComplementContractViolation pins the clamp: duplicated matched pairs
// (a contract violation) must degrade to growth, not panic on a negative
// make capacity.
func TestComplementContractViolation(t *testing.T) {
	areas := []int32{1}
	matched := []Pair{{Iter: 0, Pre: 1}, {Iter: 0, Pre: 1}, {Iter: 0, Pre: 1}}
	out := complement(matched, 1, areas, nil) // 1*1-3 < 0 without the clamp
	if len(out) != 0 {
		t.Fatalf("complement on duplicated matches: got %v, want empty", out)
	}
}

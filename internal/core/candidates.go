package core

import "sort"

// Candidates is the candidate sequence of a StandOff join (sections 3.2 and
// 4.3): the set of area-annotations that may appear in the result. Without a
// selection, the entire region index is the candidate sequence; with a
// pushed-down selection (e.g. an element name test), an index intersection
// on node id is performed that preserves the start ordering of the region
// index.
type Candidates struct {
	ix  *RegionIndex
	all bool

	// Filtered views, used when !all. Region/bounds rows are indices into
	// the index tables, in the table's own (start) order.
	rows  []int32
	bRows []int32
	areas []int32

	endRows []int32 // region rows in end order (filtered); lazy

	// Suffix-min id arrays over the two row orders, backing the
	// streaming-merge watermarks; lazy (see MinPreStartFrom/MinPreEndFrom).
	startMin []int32
	endMin   []int32
}

// All returns the unrestricted candidate sequence (the whole index).
func (ix *RegionIndex) All() *Candidates {
	return &Candidates{ix: ix, all: true}
}

// Filter returns the candidate sequence restricted to the given node pres,
// which must be sorted ascending and duplicate-free (document order, as an
// element-name index delivers them). Nodes that are not area-annotations are
// dropped silently: they can never be returned by a StandOff step. The
// intersection scans the region index once, preserving its start order
// (section 4.3).
func (ix *RegionIndex) Filter(pres []int32) *Candidates {
	c := &Candidates{ix: ix}
	if len(pres) == 0 {
		return c
	}
	bits := make([]uint64, (ix.doc.NumNodes()+63)/64)
	for _, p := range pres {
		if ix.IsArea(p) {
			bits[p>>6] |= 1 << (uint(p) & 63)
			c.areas = append(c.areas, p)
		}
	}
	if !sort.SliceIsSorted(c.areas, func(i, j int) bool { return c.areas[i] < c.areas[j] }) {
		sort.Slice(c.areas, func(i, j int) bool { return c.areas[i] < c.areas[j] })
	}
	for i := int32(0); i < int32(len(ix.rID)); i++ {
		if id := ix.rID[i]; bits[id>>6]&(1<<(uint(id)&63)) != 0 {
			c.rows = append(c.rows, i)
		}
	}
	if !ix.multiRegion {
		c.bRows = c.rows
		return c
	}
	for i := int32(0); i < int32(len(ix.bID)); i++ {
		if id := ix.bID[i]; bits[id>>6]&(1<<(uint(id)&63)) != 0 {
			c.bRows = append(c.bRows, i)
		}
	}
	return c
}

// FilterByName returns the candidate sequence of all area-annotations with
// the given element name id, caching the intersection per name: repeated
// StandOff steps with the same name test (every query re-run, every loop)
// then skip the index scan — the "pre-created effective indices" that
// section 3.3 argues per-document steps make possible.
func (ix *RegionIndex) FilterByName(nameID int32) *Candidates {
	if v, ok := ix.nameCands.Load(nameID); ok {
		return v.(*Candidates)
	}
	c := ix.Filter(ix.doc.ElementsByName(nameID))
	// Pre-build the end-order permutation and the watermark suffix-mins, so
	// cached candidates are immediately usable by the overlap joins and the
	// streaming merge without a lazy write after publication.
	c.endPerm()
	c.startSuffixMin()
	c.endSuffixMin()
	actual, _ := ix.nameCands.LoadOrStore(nameID, c)
	return actual.(*Candidates)
}

// AreaPres returns the candidate area-annotation pres in document order.
func (c *Candidates) AreaPres() []int32 {
	if c.all {
		return c.ix.areas
	}
	return c.areas
}

// Len returns the number of candidate areas.
func (c *Candidates) Len() int { return len(c.AreaPres()) }

func (c *Candidates) regionLen() int {
	if c.all {
		return len(c.ix.rStart)
	}
	return len(c.rows)
}

// regionRow returns the k-th candidate region row in start order.
func (c *Candidates) regionRow(k int) (start, end int64, id int32) {
	i := int32(k)
	if !c.all {
		i = c.rows[k]
	}
	return c.ix.rStart[i], c.ix.rEnd[i], c.ix.rID[i]
}

// regionRowByEnd returns the k-th candidate region row in end order.
func (c *Candidates) regionRowByEnd(k int) (start, end int64, id int32) {
	perm := c.endPerm()
	i := perm[k]
	return c.ix.rStart[i], c.ix.rEnd[i], c.ix.rID[i]
}

func (c *Candidates) endPerm() []int32 {
	if c.all {
		return c.ix.endPerm()
	}
	if c.endRows == nil {
		p := make([]int32, len(c.rows))
		copy(p, c.rows)
		ix := c.ix
		sort.Slice(p, func(a, b int) bool {
			i, j := p[a], p[b]
			if ix.rEnd[i] != ix.rEnd[j] {
				return ix.rEnd[i] < ix.rEnd[j]
			}
			if ix.rStart[i] != ix.rStart[j] {
				return ix.rStart[i] < ix.rStart[j]
			}
			return ix.rID[i] < ix.rID[j]
		})
		c.endRows = p
	}
	return c.endRows
}

// MinPreStartFrom returns the smallest candidate area pre whose bounding
// region starts at or after s (ok=false when no candidate starts there).
// This is the containment-join watermark of the chunked StandOff stream: a
// candidate contained in a context area whose regions all start at or after
// s must itself start at or after s, so every candidate pre below the
// returned value is final once the remaining context frontier reaches s.
func (c *Candidates) MinPreStartFrom(s int64) (int32, bool) {
	mins := c.startSuffixMin()
	k := sort.Search(c.boundsLen(), func(k int) bool {
		start, _, _ := c.boundsRow(k)
		return start >= s
	})
	if k >= len(mins) {
		return 0, false
	}
	return mins[k], true
}

// MinPreEndFrom returns the smallest candidate area pre having a region that
// ends at or after e (ok=false when none does) — the overlap-join watermark:
// a candidate overlapping a context area whose regions all start at or after
// e must have a region ending at or after e.
func (c *Candidates) MinPreEndFrom(e int64) (int32, bool) {
	mins := c.endSuffixMin()
	k := sort.Search(c.regionLen(), func(k int) bool {
		_, end, _ := c.regionRowByEnd(k)
		return end >= e
	})
	if k >= len(mins) {
		return 0, false
	}
	return mins[k], true
}

// startSuffixMin returns the suffix-min of area ids over the bounds rows in
// start order. Unfiltered candidates share the index's array; filtered ones
// build their own lazily (a filtered Candidates cached by FilterByName has it
// pre-built, like the end permutation, so cached candidates stay read-only).
func (c *Candidates) startSuffixMin() []int32 {
	if c.all {
		bMin, _ := c.ix.suffixMins()
		return bMin
	}
	if c.startMin == nil {
		c.startMin = suffixMinIDs(c.boundsLen(), func(k int) int32 {
			_, _, id := c.boundsRow(k)
			return id
		})
	}
	return c.startMin
}

// endSuffixMin returns the suffix-min of region ids over the end-ordered
// region rows.
func (c *Candidates) endSuffixMin() []int32 {
	if c.all {
		_, eMin := c.ix.suffixMins()
		return eMin
	}
	if c.endMin == nil {
		c.endMin = suffixMinIDs(c.regionLen(), func(k int) int32 {
			_, _, id := c.regionRowByEnd(k)
			return id
		})
	}
	return c.endMin
}

func (c *Candidates) boundsLen() int {
	if c.all {
		return len(c.ix.bStart)
	}
	return len(c.bRows)
}

// boundsRow returns the k-th candidate bounds row (one per area) in start
// order.
func (c *Candidates) boundsRow(k int) (start, end int64, id int32) {
	i := int32(k)
	if !c.all {
		i = c.bRows[k]
	}
	return c.ix.bStart[i], c.ix.bEnd[i], c.ix.bID[i]
}

package core

import "sort"

// Candidates is the candidate sequence of a StandOff join (sections 3.2 and
// 4.3): the set of area-annotations that may appear in the result. Without a
// selection, the entire region index is the candidate sequence; with a
// pushed-down selection (e.g. an element name test), an index intersection
// on node id is performed that preserves the start ordering of the region
// index.
//
// The sequence is stored struct-of-arrays: parallel start/end/id columns in
// each of the orders the joins consume, so the merge loops scan contiguous
// memory instead of chasing per-row indirections. The unrestricted view
// aliases the index's own columns; filtered views materialise their own.
type Candidates struct {
	ix  *RegionIndex
	all bool

	areas []int32 // candidate area pres, document order

	// Region columns, sorted by (start, end, id).
	rStart, rEnd []int64
	rID          []int32

	// Bounds columns: one row per area (covering region), sorted by
	// (start, end, id). Alias the region columns when every candidate is
	// single-region.
	bStart, bEnd []int64
	bID          []int32

	// Region columns sorted by (end, start, id); lazy for filtered views
	// (see endCols), pre-built for FilterByName-cached ones.
	eStart, eEnd []int64
	eID          []int32

	// Suffix-min id arrays over the start- and end-ordered columns, backing
	// the streaming-merge watermarks; lazy (see MinPreStartFrom/MinPreEndFrom).
	startMin []int32
	endMin   []int32
}

// All returns the unrestricted candidate sequence (the whole index).
func (ix *RegionIndex) All() *Candidates {
	ix.materialize()
	return &Candidates{
		ix: ix, all: true,
		areas:  ix.areas,
		rStart: ix.rStart, rEnd: ix.rEnd, rID: ix.rID,
		bStart: ix.bStart, bEnd: ix.bEnd, bID: ix.bID,
	}
}

// Filter returns the candidate sequence restricted to the given node pres,
// which must be sorted ascending and duplicate-free (document order, as an
// element-name index delivers them). Nodes that are not area-annotations are
// dropped silently: they can never be returned by a StandOff step. The
// intersection scans the region index once, preserving its start order
// (section 4.3).
func (ix *RegionIndex) Filter(pres []int32) *Candidates {
	ix.materialize()
	c := &Candidates{ix: ix}
	if len(pres) == 0 {
		return c
	}
	bits := make([]uint64, (ix.doc.NumNodes()+63)/64)
	for _, p := range pres {
		if ix.IsArea(p) {
			bits[p>>6] |= 1 << (uint(p) & 63)
			c.areas = append(c.areas, p)
		}
	}
	if !sort.SliceIsSorted(c.areas, func(i, j int) bool { return c.areas[i] < c.areas[j] }) {
		sort.Slice(c.areas, func(i, j int) bool { return c.areas[i] < c.areas[j] })
	}
	for i := range ix.rID {
		if id := ix.rID[i]; bits[id>>6]&(1<<(uint(id)&63)) != 0 {
			c.rStart = append(c.rStart, ix.rStart[i])
			c.rEnd = append(c.rEnd, ix.rEnd[i])
			c.rID = append(c.rID, id)
		}
	}
	if !ix.multiRegion {
		c.bStart, c.bEnd, c.bID = c.rStart, c.rEnd, c.rID
		return c
	}
	for i := range ix.bID {
		if id := ix.bID[i]; bits[id>>6]&(1<<(uint(id)&63)) != 0 {
			c.bStart = append(c.bStart, ix.bStart[i])
			c.bEnd = append(c.bEnd, ix.bEnd[i])
			c.bID = append(c.bID, id)
		}
	}
	return c
}

// FilterByName returns the candidate sequence of all area-annotations with
// the given element name id, caching the intersection per name: repeated
// StandOff steps with the same name test (every query re-run, every loop)
// then skip the index scan — the "pre-created effective indices" that
// section 3.3 argues per-document steps make possible.
func (ix *RegionIndex) FilterByName(nameID int32) *Candidates {
	if v, ok := ix.nameCands.Load(nameID); ok {
		return v.(*Candidates)
	}
	// On a delta index, a name no insert or delete ever touched has exactly
	// the base's candidate set (inserted areas carry touched names; deletes
	// record every killed area's name) — delegate to the base's per-name
	// cache instead of re-intersecting the merged columns.
	if ix.base != nil && !ix.nameTouched(nameID) {
		return ix.base.FilterByName(nameID)
	}
	c := ix.Filter(ix.doc.ElementsByName(nameID))
	// Pre-build the end-ordered columns and the watermark suffix-mins, so
	// cached candidates are immediately usable by the overlap joins and the
	// streaming merge without a lazy write after publication.
	c.endCols()
	c.startSuffixMin()
	c.endSuffixMin()
	actual, _ := ix.nameCands.LoadOrStore(nameID, c)
	return actual.(*Candidates)
}

// AreaPres returns the candidate area-annotation pres in document order.
func (c *Candidates) AreaPres() []int32 { return c.areas }

// Len returns the number of candidate areas.
func (c *Candidates) Len() int { return len(c.areas) }

// boundsCols returns the bounds columns (one row per area) in start order.
func (c *Candidates) boundsCols() (start, end []int64, id []int32) {
	return c.bStart, c.bEnd, c.bID
}

// regionCols returns the region columns in start order.
func (c *Candidates) regionCols() (start, end []int64, id []int32) {
	return c.rStart, c.rEnd, c.rID
}

// endCols returns the region columns in (end, start, id) order. The
// unrestricted view shares the index's lazily built columns; a filtered view
// sorts its own once.
func (c *Candidates) endCols() (start, end []int64, id []int32) {
	if c.all {
		return c.ix.endCols()
	}
	if c.eID == nil && len(c.rID) > 0 {
		perm := make([]int32, len(c.rID))
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.Slice(perm, func(a, b int) bool {
			i, j := perm[a], perm[b]
			if c.rEnd[i] != c.rEnd[j] {
				return c.rEnd[i] < c.rEnd[j]
			}
			if c.rStart[i] != c.rStart[j] {
				return c.rStart[i] < c.rStart[j]
			}
			return c.rID[i] < c.rID[j]
		})
		c.eStart = permute64(c.rStart, perm)
		c.eEnd = permute64(c.rEnd, perm)
		c.eID = permute32(c.rID, perm)
	}
	return c.eStart, c.eEnd, c.eID
}

// regionLen returns the number of candidate region rows.
func (c *Candidates) regionLen() int { return len(c.rID) }

// regionRow returns the k-th candidate region row in start order.
func (c *Candidates) regionRow(k int) (start, end int64, id int32) {
	return c.rStart[k], c.rEnd[k], c.rID[k]
}

// regionRowByEnd returns the k-th candidate region row in end order.
func (c *Candidates) regionRowByEnd(k int) (start, end int64, id int32) {
	es, ee, eid := c.endCols()
	return es[k], ee[k], eid[k]
}

func (c *Candidates) boundsLen() int { return len(c.bID) }

// boundsRow returns the k-th candidate bounds row (one per area) in start
// order.
func (c *Candidates) boundsRow(k int) (start, end int64, id int32) {
	return c.bStart[k], c.bEnd[k], c.bID[k]
}

// MinPreStartFrom returns the smallest candidate area pre whose bounding
// region starts at or after s (ok=false when no candidate starts there).
// This is the containment-join watermark of the chunked StandOff stream: a
// candidate contained in a context area whose regions all start at or after
// s must itself start at or after s, so every candidate pre below the
// returned value is final once the remaining context frontier reaches s.
func (c *Candidates) MinPreStartFrom(s int64) (int32, bool) {
	mins := c.startSuffixMin()
	bs := c.bStart
	k := sort.Search(len(bs), func(k int) bool { return bs[k] >= s })
	if k >= len(mins) {
		return 0, false
	}
	return mins[k], true
}

// MinPreEndFrom returns the smallest candidate area pre having a region that
// ends at or after e (ok=false when none does) — the overlap-join watermark:
// a candidate overlapping a context area whose regions all start at or after
// e must have a region ending at or after e.
func (c *Candidates) MinPreEndFrom(e int64) (int32, bool) {
	mins := c.endSuffixMin()
	_, ee, _ := c.endCols()
	k := sort.Search(len(ee), func(k int) bool { return ee[k] >= e })
	if k >= len(mins) {
		return 0, false
	}
	return mins[k], true
}

// startSuffixMin returns the suffix-min of area ids over the bounds rows in
// start order. Unfiltered candidates share the index's array; filtered ones
// build their own lazily (a filtered Candidates cached by FilterByName has it
// pre-built, like the end-ordered columns, so cached candidates stay
// read-only).
func (c *Candidates) startSuffixMin() []int32 {
	if c.all {
		bMin, _ := c.ix.suffixMins()
		return bMin
	}
	if c.startMin == nil {
		c.startMin = suffixMinIDs(len(c.bID), func(k int) int32 { return c.bID[k] })
	}
	return c.startMin
}

// endSuffixMin returns the suffix-min of region ids over the end-ordered
// region rows.
func (c *Candidates) endSuffixMin() []int32 {
	if c.all {
		_, eMin := c.ix.suffixMins()
		return eMin
	}
	if c.endMin == nil {
		_, _, eid := c.endCols()
		c.endMin = suffixMinIDs(len(eid), func(k int) int32 { return eid[k] })
	}
	return c.endMin
}

package core

import (
	"fmt"
	"slices"
	"sort"
)

// Op selects one of the four StandOff joins of section 3.1.
type Op int

const (
	// SelectNarrow returns candidates contained by some context area
	// (containment semi-join).
	SelectNarrow Op = iota
	// SelectWide returns candidates overlapping some context area
	// (overlap semi-join).
	SelectWide
	// RejectNarrow returns candidates not contained in any context area
	// (containment anti-join).
	RejectNarrow
	// RejectWide returns candidates not overlapping any context area
	// (overlap anti-join).
	RejectWide
)

func (op Op) String() string {
	switch op {
	case SelectNarrow:
		return "select-narrow"
	case SelectWide:
		return "select-wide"
	case RejectNarrow:
		return "reject-narrow"
	case RejectWide:
		return "reject-wide"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Strategy selects the evaluation algorithm, mirroring the three variants of
// the paper's section 4.6 experiment.
type Strategy int

const (
	// StrategyNaive evaluates the join as a quadratic nested loop per
	// iteration — the cost model of the Figure 2/3 XQuery functions.
	StrategyNaive Strategy = iota
	// StrategyBasic runs the Basic StandOff MergeJoin (section 4.4) once
	// per iteration; every invocation scans the candidate sequence anew.
	StrategyBasic
	// StrategyLoopLifted runs the Loop-Lifted StandOff MergeJoin
	// (section 4.5): a single pass over context and candidates computes
	// the join for all iterations at once.
	StrategyLoopLifted
	// StrategyAuto is not an algorithm: it asks the evaluator to resolve
	// the Basic vs Loop-Lifted choice per step from the region index
	// statistics (the planner's cost model). Join treats it as
	// StrategyLoopLifted should it ever reach the join layer unresolved.
	StrategyAuto
)

func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyBasic:
		return "basic"
	case StrategyLoopLifted:
		return "looplifted"
	case StrategyAuto:
		return "auto"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// CtxNode is one context item of a loop-lifted StandOff step: node Pre bound
// in iteration Iter. The paper's iter|start|end context table is derived
// from these by fetching each node's regions from the index.
type CtxNode struct {
	Iter int32
	Pre  int32
}

// Pair is one result row: candidate node Pre matches in iteration Iter.
// Join results are sorted by (Iter, Pre) and duplicate-free — node sequences
// in document order per iteration, as XPath steps require.
type Pair struct {
	Iter int32
	Pre  int32
}

// TraceEvent reports one step of the merge join for diagnostics and for the
// paper's Figure 4 execution-trace reproduction.
type TraceEvent struct {
	Kind string // "add-context", "skip-context", "expire", "emit", "break"
	Key  int32  // iteration (or pseudo-iteration) of the context item
	Pre  int32  // candidate pre for "emit"
	End  int64  // region end for context events
}

// Tracer receives TraceEvents; nil disables tracing.
type Tracer func(TraceEvent)

// JoinConfig tunes the join execution.
type JoinConfig struct {
	// UseHeap replaces the sorted active list by the max-heap suggested in
	// the paper's section 5 (future work; see the ablation benchmarks).
	UseHeap bool
	// Trace receives execution events (Figure 4); nil disables tracing.
	Trace Tracer
	// Arena recycles join scratch and output buffers across invocations
	// within one execution run; nil disables recycling. See JoinArena for
	// the ownership contract of the returned pairs.
	Arena *JoinArena
}

// Join evaluates one StandOff join. ctx holds the context nodes of all
// iterations (any order); nIters is the iteration count (every ctx.Iter must
// be < nIters); cand is the candidate sequence. The result is sorted by
// (Iter, Pre) and duplicate-free. Context nodes that are not
// area-annotations simply produce no matches.
//
// With cfg.Arena set, the returned slice is borrowed from the arena and is
// valid only until the next Join call carrying the same arena.
func Join(ix *RegionIndex, op Op, strat Strategy, ctx []CtxNode, nIters int32, cand *Candidates, cfg JoinConfig) []Pair {
	cfg.Arena.reclaim()
	var out []Pair
	switch strat {
	case StrategyNaive:
		out = joinNaive(ix, op, ctx, nIters, cand)
	case StrategyBasic:
		out = joinBasic(ix, op, ctx, nIters, cand, cfg)
	default:
		out = joinLoopLifted(ix, op, ctx, nIters, cand, cfg)
	}
	cfg.Arena.loan(out)
	return out
}

// ctxRow is one region of a context area in the iter|start|end table.
type ctxRow struct {
	key        int32 // iteration, or pseudo-iteration in exact-narrow mode
	start, end int64
}

// buildCtxRows fetches the regions of every context node and reports whether
// any context area is multi-region. When pseudoKeys is true each ctx entry
// becomes its own key (exact containment needs to know *which* context area
// matched); pseudoToIter maps keys back to iterations.
func buildCtxRows(ix *RegionIndex, ctx []CtxNode, pseudoKeys bool, a *JoinArena) (rows []ctxRow, pseudoToIter []int32, multi bool) {
	rows = a.getCtxRows(len(ctx))
	if pseudoKeys {
		pseudoToIter = a.getPseudo(len(ctx))
	}
	for _, cn := range ctx {
		regs := ix.RegionsOf(cn.Pre)
		if regs == nil {
			continue
		}
		if len(regs) > 1 {
			multi = true
		}
		key := cn.Iter
		if pseudoKeys {
			key = int32(len(pseudoToIter))
			pseudoToIter = append(pseudoToIter, cn.Iter)
		}
		for _, r := range regs {
			rows = append(rows, ctxRow{key: key, start: r.Start, end: r.End})
		}
	}
	slices.SortFunc(rows, func(x, y ctxRow) int {
		if x.start != y.start {
			return cmpI64(x.start, y.start)
		}
		return cmpI64(x.end, y.end)
	})
	a.putCtxRows(rows)
	if pseudoKeys {
		a.putPseudo(pseudoToIter)
	}
	return rows, pseudoToIter, multi
}

// ctxHasMultiRegion reports whether any context node is a multi-region area.
func ctxHasMultiRegion(ix *RegionIndex, ctx []CtxNode) bool {
	if !ix.multiRegion {
		return false
	}
	for _, cn := range ctx {
		if regs := ix.RegionsOf(cn.Pre); len(regs) > 1 {
			return true
		}
	}
	return false
}

func newActiveSet(nKeys int32, cfg JoinConfig) activeSet {
	if a := cfg.Arena; a != nil {
		if cfg.UseHeap {
			return a.heap.reset(nKeys)
		}
		return a.list.reset(nKeys)
	}
	if cfg.UseHeap {
		return newHeapActive(nKeys)
	}
	return newListActive(nKeys)
}

// joinLoopLifted is the entry point of the Loop-Lifted StandOff MergeJoin.
func joinLoopLifted(ix *RegionIndex, op Op, ctx []CtxNode, nIters int32, cand *Candidates, cfg JoinConfig) []Pair {
	a := cfg.Arena
	var matched []Pair
	switch op {
	case SelectNarrow, RejectNarrow:
		matched = matchNarrow(ix, ctx, cand, cfg, false)
	case SelectWide, RejectWide:
		matched = matchWide(ix, ctx, cand, cfg)
	}
	sortDedupPairs(&matched, a)
	if op == RejectNarrow || op == RejectWide {
		out := complement(matched, nIters, cand.AreaPres(), a)
		a.putPairs(matched)
		return out
	}
	return matched
}

// matchNarrow computes the containment semi-join pairs (unsorted, possibly
// with duplicates in exact mode). fullScan forces visiting every candidate
// row (Basic behaviour: no early break).
func matchNarrow(ix *RegionIndex, ctx []CtxNode, cand *Candidates, cfg JoinConfig, fullScan bool) []Pair {
	if ctxHasMultiRegion(ix, ctx) {
		return matchNarrowExact(ix, ctx, cand, cfg, fullScan)
	}
	// Fast path: every context area is a single region, so containment of a
	// candidate area reduces to containment of its bounding region, and one
	// dominant context region per iteration is exact.
	rows, _, _ := buildCtxRows(ix, ctx, false, cfg.Arena)
	nKeys := int32(0)
	for _, r := range rows {
		if r.key+1 > nKeys {
			nKeys = r.key + 1
		}
	}
	as := newActiveSet(nKeys, cfg)
	tr := cfg.Trace
	emit := emitState{out: cfg.Arena.getPairs()}
	i := 0
	bStart, bEnd, bID := cand.boundsCols()
	for k := 0; k < len(bID); k++ {
		cs := bStart[k]
		for i < len(rows) && rows[i].start <= cs {
			if as.insert(rows[i].key, rows[i].end) {
				if tr != nil {
					tr(TraceEvent{Kind: "add-context", Key: rows[i].key, End: rows[i].end})
				}
			} else if tr != nil {
				tr(TraceEvent{Kind: "skip-context", Key: rows[i].key, End: rows[i].end})
			}
			i++
		}
		as.expire(cs)
		if !fullScan && tr == nil && as.len() == 0 {
			// Empty staircase: nothing can emit until the next context region
			// enters, so fast-forward to the first candidate that admits it
			// (rows[i].start > cs here — the merge loop above consumed every
			// earlier row). With the context exhausted this is the early
			// break. Tracing keeps the plain per-candidate walk so the event
			// stream (skip-candidate per candidate) stays byte-identical.
			if i == len(rows) {
				break
			}
			next := rows[i].start
			lo := k + 1
			k = lo + sort.Search(len(bID)-lo, func(j int) bool { return bStart[lo+j] >= next }) - 1
			continue
		}
		cid := bID[k]
		before := len(emit.out)
		emit.pre = cid
		as.forEach(bEnd[k], emit.callback())
		if tr != nil {
			if len(emit.out) > before {
				for _, p := range emit.out[before:] {
					tr(TraceEvent{Kind: "emit", Key: p.Iter, Pre: cid})
				}
			} else {
				tr(TraceEvent{Kind: "skip-candidate", Pre: cid})
			}
		}
		if !fullScan && i == len(rows) && as.maxEnd() < cs {
			if tr != nil {
				tr(TraceEvent{Kind: "break"})
			}
			break // no remaining candidate can be contained (section 4.5, lines 37-38)
		}
	}
	return emit.out
}

// emitState collects join output through a single reusable closure so the
// merge loops do not allocate one closure per candidate row.
type emitState struct {
	out []Pair
	pre int32
	cb  func(key int32)
}

func (e *emitState) callback() func(key int32) {
	if e.cb == nil {
		e.cb = func(key int32) {
			e.out = append(e.out, Pair{Iter: key, Pre: e.pre})
		}
	}
	return e.cb
}

// matchNarrowExact handles multi-region context areas: each context area
// becomes its own pseudo-iteration, the join runs at region granularity, and
// a candidate matches a context area only if *all* its regions were matched
// by that same area (the paper's omitted post-processing, section 4.5).
func matchNarrowExact(ix *RegionIndex, ctx []CtxNode, cand *Candidates, cfg JoinConfig, fullScan bool) []Pair {
	a := cfg.Arena
	rows, pseudoToIter, _ := buildCtxRows(ix, ctx, true, a)
	as := newActiveSet(int32(len(pseudoToIter)), cfg)
	emit := emitState{out: a.getPairs()}
	i := 0
	rStart, rEnd, rID := cand.regionCols()
	for k := 0; k < len(rID); k++ {
		cs := rStart[k]
		for i < len(rows) && rows[i].start <= cs {
			as.insert(rows[i].key, rows[i].end)
			i++
		}
		as.expire(cs)
		if !fullScan && as.len() == 0 {
			if i == len(rows) {
				break
			}
			next := rows[i].start
			lo := k + 1
			k = lo + sort.Search(len(rID)-lo, func(j int) bool { return rStart[lo+j] >= next }) - 1
			continue
		}
		emit.pre = rID[k]
		as.forEach(rEnd[k], emit.callback())
		if !fullScan && i == len(rows) && as.maxEnd() < cs {
			break
		}
	}
	hits := emit.out
	// Aggregate: a candidate area qualifies for a pseudo-iteration when the
	// number of matched regions equals its region count.
	slices.SortFunc(hits, func(x, y Pair) int {
		if x.Iter != y.Iter {
			return int(x.Iter) - int(y.Iter)
		}
		return int(x.Pre) - int(y.Pre)
	})
	out := a.getPairs()
	for s := 0; s < len(hits); {
		e := s
		for e < len(hits) && hits[e] == hits[s] {
			e++
		}
		// Regions of one candidate are distinct rows, so equal (key,pre)
		// hits count matched regions of that candidate.
		if int32(e-s) == ix.regionCount(hits[s].Pre) {
			out = append(out, Pair{Iter: pseudoToIter[hits[s].Iter], Pre: hits[s].Pre})
		}
		s = e
	}
	a.putPairs(hits)
	return out
}

// matchWide computes the overlap semi-join pairs (unsorted, may contain
// duplicates for multi-region candidates). Candidates are consumed in end
// order so that the context insertion threshold (ctx.start <= cand.end) is
// monotone; the per-iteration dominant context region is exact because the
// overlap test only constrains start from above and end from below.
func matchWide(ix *RegionIndex, ctx []CtxNode, cand *Candidates, cfg JoinConfig) []Pair {
	rows, _, _ := buildCtxRows(ix, ctx, false, cfg.Arena)
	nKeys := int32(0)
	for _, r := range rows {
		if r.key+1 > nKeys {
			nKeys = r.key + 1
		}
	}
	as := newActiveSet(nKeys, cfg)
	emit := emitState{out: cfg.Arena.getPairs()}
	i := 0
	eStart, eEnd, eID := cand.endCols()
	for k := 0; k < len(eID); k++ {
		ce := eEnd[k]
		for i < len(rows) && rows[i].start <= ce {
			as.insert(rows[i].key, rows[i].end)
			i++
		}
		if as.len() == 0 {
			// Nothing active (no context region admitted yet — matchWide
			// never removes entries, so this only holds on the leading
			// candidate run): fast-forward to the first candidate whose end
			// reaches the next context region's start.
			if i == len(rows) {
				break
			}
			next := rows[i].start
			lo := k + 1
			k = lo + sort.Search(len(eID)-lo, func(j int) bool { return eEnd[lo+j] >= next }) - 1
			continue
		}
		emit.pre = eID[k]
		as.forEach(eStart[k], emit.callback())
	}
	return emit.out
}

// complement turns matched select pairs into reject pairs: per iteration,
// all candidate areas that were not matched. matched must be sorted by
// (Iter, Pre) and duplicate-free; areas is the candidate pre list in
// document order.
func complement(matched []Pair, nIters int32, areas []int32, a *JoinArena) []Pair {
	// The matched pairs are a sorted, duplicate-free subset of the
	// iteration × area grid, so the remainder count is the exact output
	// size. Clamp at zero so a contract-violating caller (duplicates in
	// matched) degrades to append growth instead of a negative-capacity
	// panic.
	want := int(nIters)*len(areas) - len(matched)
	if want < 0 {
		want = 0
	}
	out := a.getPairsCap(want)
	m := 0
	for iter := int32(0); iter < nIters; iter++ {
		for _, pre := range areas {
			if m < len(matched) && matched[m].Iter == iter && matched[m].Pre == pre {
				m++
				continue
			}
			out = append(out, Pair{Iter: iter, Pre: pre})
		}
	}
	return out
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// sortDedupPairs sorts pairs by (Iter, Pre) and removes duplicates. Large
// inputs use a counting sort over the iteration column (the joins emit in
// candidate order, so iterations arrive interleaved but each iteration's
// bucket is small and cheap to sort).
func sortDedupPairs(pairs *[]Pair, a *JoinArena) {
	p := *pairs
	if len(p) >= 64 {
		maxIter := int32(0)
		for _, x := range p {
			if x.Iter > maxIter {
				maxIter = x.Iter
			}
		}
		if int(maxIter) < 4*len(p) { // counting sort pays off
			off := a.getOff(int(maxIter) + 2)
			for _, x := range p {
				off[x.Iter+1]++
			}
			for i := 1; i < len(off); i++ {
				off[i] += off[i-1]
			}
			sorted := a.getPairsLen(len(p))
			fill := a.getFill(int(maxIter) + 1)
			copy(fill, off[:len(off)-1])
			for _, x := range p {
				sorted[fill[x.Iter]] = x
				fill[x.Iter]++
			}
			for i := int32(0); i <= maxIter; i++ {
				bucket := sorted[off[i]:off[i+1]]
				slices.SortFunc(bucket, func(x, y Pair) int { return int(x.Pre) - int(y.Pre) })
			}
			a.putPairs(p)
			p = sorted
		} else {
			sortPairsDirect(p)
		}
	} else {
		sortPairsDirect(p)
	}
	out := p[:0]
	for i, pr := range p {
		if i == 0 || pr != p[i-1] {
			out = append(out, pr)
		}
	}
	*pairs = out
}

func sortPairsDirect(p []Pair) {
	slices.SortFunc(p, func(a, b Pair) int {
		if a.Iter != b.Iter {
			return int(a.Iter) - int(b.Iter)
		}
		return int(a.Pre) - int(b.Pre)
	})
}

// joinBasic evaluates the join with the Basic StandOff MergeJoin: the merge
// is re-run for every iteration, so every iteration pays a fresh scan of the
// candidate sequence (the behaviour that makes XMark Q2 DNF in Figure 6).
func joinBasic(ix *RegionIndex, op Op, ctx []CtxNode, nIters int32, cand *Candidates, cfg JoinConfig) []Pair {
	a := cfg.Arena
	byIter := make([][]CtxNode, nIters)
	for _, cn := range ctx {
		byIter[cn.Iter] = append(byIter[cn.Iter], cn)
	}
	all := a.getPairs()
	local := a.getCtxNodes(len(ctx))
	for iter := int32(0); iter < nIters; iter++ {
		group := byIter[iter]
		// Remap the group to a single iteration and run the full merge.
		local = local[:0]
		for _, cn := range group {
			local = append(local, CtxNode{Iter: 0, Pre: cn.Pre})
		}
		var matched []Pair
		switch op {
		case SelectNarrow, RejectNarrow:
			matched = matchNarrow(ix, local, cand, cfg, true)
		default:
			matched = matchWide(ix, local, cand, cfg)
		}
		sortDedupPairs(&matched, a)
		if op == RejectNarrow || op == RejectWide {
			comp := complement(matched, 1, cand.AreaPres(), a)
			a.putPairs(matched)
			matched = comp
		}
		for _, p := range matched {
			all = append(all, Pair{Iter: iter, Pre: p.Pre})
		}
		a.putPairs(matched)
	}
	a.putCtxNodes(local)
	return all
}

// joinNaive evaluates the join exactly like the XQuery functions of Figures
// 2 and 3: per iteration, a nested loop compares every context area with
// every candidate area.
func joinNaive(ix *RegionIndex, op Op, ctx []CtxNode, nIters int32, cand *Candidates) []Pair {
	byIter := make([][]CtxNode, nIters)
	for _, cn := range ctx {
		byIter[cn.Iter] = append(byIter[cn.Iter], cn)
	}
	areas := cand.AreaPres()
	var out []Pair
	for iter := int32(0); iter < nIters; iter++ {
		for _, pre := range areas {
			candArea, ok := ix.AreaOf(pre)
			if !ok {
				continue
			}
			match := false
			for _, cn := range byIter[iter] {
				ctxArea, ok := ix.AreaOf(cn.Pre)
				if !ok {
					continue
				}
				var hit bool
				switch op {
				case SelectNarrow, RejectNarrow:
					hit = ctxArea.Contains(candArea)
				default:
					hit = ctxArea.Overlaps(candArea)
				}
				if hit {
					match = true
					break
				}
			}
			if match == (op == SelectNarrow || op == SelectWide) {
				out = append(out, Pair{Iter: iter, Pre: pre})
			}
		}
	}
	return out
}

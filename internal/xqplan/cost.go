package xqplan

import (
	"math/bits"

	"soxq/internal/core"
)

// This file is cost model v2: the Basic vs Loop-Lifted choice for a StandOff
// step, made from the index statistics AND the context cardinality observed
// at execution time. Version 1 compared the candidate estimate against a
// fixed 64-candidate threshold, which ignores the one quantity the
// Loop-Lifted join exists to amortise — how many loop iterations share the
// scan. With one context row the Basic merge is always right no matter how
// many candidates there are (there is no loop to lift); with thousands of
// iterations even a five-candidate scan is worth lifting, because Basic
// re-runs the merge per iteration.
//
// The model prices the two algorithms in visited rows:
//
//	basic      = ctxRows·candidates + ctxRows
//	looplifted = candidates + ctxRows + llSetupRows
//
// Basic runs one full merge per iteration (no early break — fullScan in
// core.joinBasic), so it scans the candidate sequence once per context row
// plus the row itself. Loop-Lifted scans candidates and context once, but
// pays a fixed machinery cost (pseudo-key bookkeeping, the counting sort and
// dedup over all iterations' pairs) modelled as llSetupRows. The cutoff is
// therefore not a constant candidate count: Basic wins exactly while
// (ctxRows-1)·candidates <= llSetupRows.

// llSetupRows is the Loop-Lifted join's fixed machinery cost expressed in
// scanned-row equivalents. Calibrated with `sobench -calibrate` (synthetic
// layers, forced basic vs forced looplifted, doubling the context
// cardinality until Loop-Lifted wins, crossover expressed as (ctx-1)·cand):
// on the reference container the measured crossovers bracket the overhead
// between ~16 (cand=16 still Basic at ctx=2) and ~64 (cand=64 already
// Loop-Lifted at ctx=2) row-equivalents; 32 is the geometric middle. The
// small value matches the paper's finding that loop-lifting pays off almost
// immediately — Basic survives only for genuinely tiny loops and the
// single-iteration case. Re-run the calibration when the join inner loops
// change materially.
const llSetupRows = 32

// SetupRows reports the loop-lifted setup cost in scanned-row equivalents.
// The parallel pool reuses it as its per-chunk dispatch gate: handing a
// chunk to a worker costs a queue round trip plus a forked evaluation — the
// same order of fixed machinery — so a trailing chunk below this many tuples
// evaluates inline at the merge instead of being dealt to a deque.
func SetupRows() int { return llSetupRows }

// CostEstimate is one cost-model decision: the candidate estimate taken from
// the region index statistics, the context cardinality observed at
// execution, the per-strategy cost estimates, and the chosen strategy.
// EXPLAIN renders it so every strategy choice is auditable.
type CostEstimate struct {
	// Candidates is the estimated candidate-area cardinality: the per-tag
	// element count under the by-name pushdown policy, the full area count
	// otherwise. An upper bound on what the join will scan.
	Candidates int
	// CtxRows is the observed context cardinality the decision was made
	// for: iterations × context nodes, flattened — the row count of the
	// paper's iter|start|end context table.
	CtxRows int
	// Basic and LoopLifted are the modelled costs, in scanned-row
	// equivalents.
	Basic      float64
	LoopLifted float64
	// SetupRows is the Loop-Lifted setup cost the estimate was priced with:
	// the static llSetupRows default, or the ANALYZE-calibrated value.
	SetupRows int
	// EstOut is the predicted output cardinality of the step: the candidate
	// upper bound from the index statistics until the step has observed
	// executions, then observed-selectivity × ctxRows (the EXPLAIN ANALYZE
	// feedback, see StepPlan.observeOutput). It is what a later step's
	// context-cardinality prediction propagates from.
	EstOut int
	// Strategy is the chosen algorithm (the cheaper estimate).
	Strategy core.Strategy
	// DeltaIns and DeltaDead are the annotation write-path delta sizes of
	// the index the estimate was priced against (both zero for a
	// compacted/fresh index): candidates stream through the LSM-style
	// delta merge rather than a plain base scan. EXPLAIN renders them as
	// the merge{...} operator annotation.
	DeltaIns  int
	DeltaDead int
}

// estimateCandidates bounds the candidate cardinality of a step from the
// index statistics (the section 3.3 estimate): with a pushed-down name test
// the per-tag element cardinality, otherwise every area-annotation.
func estimateCandidates(policy CandPolicy, name string, ix *core.RegionIndex) int {
	st := ix.Stats()
	est := st.Areas
	if policy == CandByName {
		if card := st.Card(name); card < est {
			est = card
		}
	}
	return est
}

// EstimateCost prices both join algorithms for one (step policy, index,
// observed context cardinality) combination and picks the cheaper one.
// ctxRows < 1 is treated as 1: a step always joins at least one context row.
// setupRows is the Loop-Lifted setup cost to price with — pass
// Calibration.SetupRows() for the feedback-calibrated value; zero or
// negative means the static default.
func EstimateCost(policy CandPolicy, name string, ix *core.RegionIndex, ctxRows, setupRows int) CostEstimate {
	if ctxRows < 1 {
		ctxRows = 1
	}
	if setupRows <= 0 {
		setupRows = llSetupRows
	}
	est := estimateCandidates(policy, name, ix)
	ce := CostEstimate{
		Candidates: est,
		CtxRows:    ctxRows,
		Basic:      float64(ctxRows)*float64(est) + float64(ctxRows),
		LoopLifted: float64(est) + float64(ctxRows) + float64(setupRows),
		SetupRows:  setupRows,
		// Prior output prediction: a StandOff step cannot produce more
		// distinct areas than its candidate sequence holds. Observed
		// selectivity replaces this bound once the step has executed under
		// ANALYZE (StrategyFor).
		EstOut: est,
	}
	ce.DeltaIns, ce.DeltaDead = ix.DeltaStats()
	if ce.Basic <= ce.LoopLifted {
		ce.Strategy = core.StrategyBasic
	} else {
		ce.Strategy = core.StrategyLoopLifted
	}
	return ce
}

// ctxBand buckets a context cardinality for the strategy memo: cardinalities
// in the same power-of-two band share one memoized decision. The cost
// crossover moves smoothly with ctxRows, so two cardinalities within 2x of
// each other virtually always price to the same strategy; banding keeps the
// memo bounded (at most 64 bands) while still re-deciding when a plan's
// observed cardinality genuinely changes between executions.
func ctxBand(ctxRows int) uint8 {
	if ctxRows < 1 {
		ctxRows = 1
	}
	return uint8(bits.Len(uint(ctxRows)))
}

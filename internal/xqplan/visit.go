package xqplan

import (
	"strings"

	"soxq/internal/xqast"
)

// ContainsStandOff reports whether e can evaluate a StandOff join: a path
// step (or step predicate, or nested expression) with a StandOff axis, or a
// call into a user-defined or so: function whose body this walk cannot see
// (treated conservatively as containing one). The executor's nested-cursor
// gate uses it at execution time over the shared immutable plan, so the
// walk must be strictly read-only (visitChildren, not rewriteChildren —
// even an identity rewrite is a write under concurrent executions).
func ContainsStandOff(e xqast.Expr) bool {
	found := false
	var walk func(x xqast.Expr)
	walk = func(x xqast.Expr) {
		if x == nil || found {
			return
		}
		switch v := x.(type) {
		case *xqast.Path:
			for _, st := range v.Steps {
				if st.Axis.StandOff() {
					found = true
					return
				}
			}
		case *xqast.FuncCall:
			if !strings.HasPrefix(v.Name, "fn:") && strings.Contains(v.Name, ":") {
				found = true
				return
			}
		}
		visitChildren(x, walk)
	}
	walk(e)
	return found
}

// visitChildren calls f on every direct child expression of e without
// writing anything back — the read-only sibling of rewriteChildren, for
// analyses that run at execution time over the shared immutable plan.
// (Routing through rewriteChildren with an identity function would not do:
// it stores every result back into the AST, and even an identical-pointer
// store is a write — a data race once plans are shared by concurrent
// executions.) Its case list must stay in lockstep with rewriteChildren;
// TestVisitChildrenMatchesRewrite pins that.
func visitChildren(e xqast.Expr, f func(xqast.Expr)) {
	switch v := e.(type) {
	case *xqast.FLWOR:
		for _, cl := range v.Clauses {
			switch c := cl.(type) {
			case *xqast.ForClause:
				f(c.Seq)
			case *xqast.LetClause:
				f(c.Seq)
			}
		}
		if v.Where != nil {
			f(v.Where)
		}
		for i := range v.OrderBy {
			f(v.OrderBy[i].Key)
		}
		f(v.Return)
	case *xqast.Quantified:
		f(v.Seq)
		f(v.Satisfies)
	case *xqast.IfExpr:
		f(v.Cond)
		f(v.Then)
		f(v.Else)
	case *xqast.Binary:
		f(v.L)
		f(v.R)
	case *xqast.Unary:
		f(v.X)
	case *xqast.Path:
		if v.Start != nil {
			f(v.Start)
		}
		for _, step := range v.Steps {
			for i := range step.Predicates {
				f(step.Predicates[i])
			}
		}
	case *xqast.Filter:
		f(v.Base)
		for i := range v.Predicates {
			f(v.Predicates[i])
		}
	case *xqast.FuncCall:
		for i := range v.Args {
			f(v.Args[i])
		}
	case *xqast.DirectElem:
		for ai := range v.Attrs {
			for i := range v.Attrs[ai].Value {
				f(v.Attrs[ai].Value[i])
			}
		}
		for i := range v.Content {
			f(v.Content[i])
		}
	case *xqast.Enclosed:
		f(v.X)
	case *xqast.ComputedElem:
		if v.NameExpr != nil {
			f(v.NameExpr)
		}
		f(v.Content)
	case *xqast.ComputedAttr:
		if v.NameExpr != nil {
			f(v.NameExpr)
		}
		f(v.Content)
	case *xqast.ComputedText:
		f(v.Content)
	}
}

// rewriteChildren applies f to every direct child expression of e, storing
// the (possibly rewritten) result back in place. It is the single canonical
// child enumeration of the compiler: constant folding and step-program
// construction both ride Plan.pass, which recurses through this function, so
// a new AST node needs exactly one case here to be seen by every compile
// analysis. (PR 1 kept two divergent traversals — walk for StandOff analysis
// and fold for rewriting — that had to be updated in lockstep and walked
// every expression twice.)
func rewriteChildren(e xqast.Expr, f func(xqast.Expr) xqast.Expr) {
	switch v := e.(type) {
	case *xqast.FLWOR:
		for _, cl := range v.Clauses {
			switch c := cl.(type) {
			case *xqast.ForClause:
				c.Seq = f(c.Seq)
			case *xqast.LetClause:
				c.Seq = f(c.Seq)
			}
		}
		if v.Where != nil {
			v.Where = f(v.Where)
		}
		for i := range v.OrderBy {
			v.OrderBy[i].Key = f(v.OrderBy[i].Key)
		}
		v.Return = f(v.Return)
	case *xqast.Quantified:
		v.Seq = f(v.Seq)
		v.Satisfies = f(v.Satisfies)
	case *xqast.IfExpr:
		v.Cond = f(v.Cond)
		v.Then = f(v.Then)
		v.Else = f(v.Else)
	case *xqast.Binary:
		v.L = f(v.L)
		v.R = f(v.R)
	case *xqast.Unary:
		v.X = f(v.X)
	case *xqast.Path:
		if v.Start != nil {
			v.Start = f(v.Start)
		}
		for _, step := range v.Steps {
			for i := range step.Predicates {
				step.Predicates[i] = f(step.Predicates[i])
			}
		}
	case *xqast.Filter:
		v.Base = f(v.Base)
		for i := range v.Predicates {
			v.Predicates[i] = f(v.Predicates[i])
		}
	case *xqast.FuncCall:
		for i := range v.Args {
			v.Args[i] = f(v.Args[i])
		}
	case *xqast.DirectElem:
		for ai := range v.Attrs {
			for i := range v.Attrs[ai].Value {
				v.Attrs[ai].Value[i] = f(v.Attrs[ai].Value[i])
			}
		}
		for i := range v.Content {
			v.Content[i] = f(v.Content[i])
		}
	case *xqast.Enclosed:
		v.X = f(v.X)
	case *xqast.ComputedElem:
		if v.NameExpr != nil {
			v.NameExpr = f(v.NameExpr)
		}
		v.Content = f(v.Content)
	case *xqast.ComputedAttr:
		if v.NameExpr != nil {
			v.NameExpr = f(v.NameExpr)
		}
		v.Content = f(v.Content)
	case *xqast.ComputedText:
		v.Content = f(v.Content)
	}
}

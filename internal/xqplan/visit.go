package xqplan

import "soxq/internal/xqast"

// rewriteChildren applies f to every direct child expression of e, storing
// the (possibly rewritten) result back in place. It is the single canonical
// child enumeration of the compiler: constant folding and step-program
// construction both ride Plan.pass, which recurses through this function, so
// a new AST node needs exactly one case here to be seen by every compile
// analysis. (PR 1 kept two divergent traversals — walk for StandOff analysis
// and fold for rewriting — that had to be updated in lockstep and walked
// every expression twice.)
func rewriteChildren(e xqast.Expr, f func(xqast.Expr) xqast.Expr) {
	switch v := e.(type) {
	case *xqast.FLWOR:
		for _, cl := range v.Clauses {
			switch c := cl.(type) {
			case *xqast.ForClause:
				c.Seq = f(c.Seq)
			case *xqast.LetClause:
				c.Seq = f(c.Seq)
			}
		}
		if v.Where != nil {
			v.Where = f(v.Where)
		}
		for i := range v.OrderBy {
			v.OrderBy[i].Key = f(v.OrderBy[i].Key)
		}
		v.Return = f(v.Return)
	case *xqast.Quantified:
		v.Seq = f(v.Seq)
		v.Satisfies = f(v.Satisfies)
	case *xqast.IfExpr:
		v.Cond = f(v.Cond)
		v.Then = f(v.Then)
		v.Else = f(v.Else)
	case *xqast.Binary:
		v.L = f(v.L)
		v.R = f(v.R)
	case *xqast.Unary:
		v.X = f(v.X)
	case *xqast.Path:
		if v.Start != nil {
			v.Start = f(v.Start)
		}
		for _, step := range v.Steps {
			for i := range step.Predicates {
				step.Predicates[i] = f(step.Predicates[i])
			}
		}
	case *xqast.Filter:
		v.Base = f(v.Base)
		for i := range v.Predicates {
			v.Predicates[i] = f(v.Predicates[i])
		}
	case *xqast.FuncCall:
		for i := range v.Args {
			v.Args[i] = f(v.Args[i])
		}
	case *xqast.DirectElem:
		for ai := range v.Attrs {
			for i := range v.Attrs[ai].Value {
				v.Attrs[ai].Value[i] = f(v.Attrs[ai].Value[i])
			}
		}
		for i := range v.Content {
			v.Content[i] = f(v.Content[i])
		}
	case *xqast.Enclosed:
		v.X = f(v.X)
	case *xqast.ComputedElem:
		if v.NameExpr != nil {
			v.NameExpr = f(v.NameExpr)
		}
		v.Content = f(v.Content)
	case *xqast.ComputedAttr:
		if v.NameExpr != nil {
			v.NameExpr = f(v.NameExpr)
		}
		v.Content = f(v.Content)
	case *xqast.ComputedText:
		v.Content = f(v.Content)
	}
}

package xqplan

import "soxq/internal/core"

// Explain is the structured description of a compiled plan: the effective
// options, the fold count, and one entry per path expression in discovery
// order (post-order of the compile pass: a predicate's path precedes the
// path of the step it filters). The engine renders it for Prepared.Explain
// and the CLI's -explain flag.
type Explain struct {
	Options core.Options
	Folds   int
	Paths   []PathExplain
}

// PathExplain describes one path expression's step program.
type PathExplain struct {
	Steps []StepExplain
}

// StepExplain describes one compiled step.
type StepExplain struct {
	Axis       string
	Test       string
	Fused      bool // produced by the compile-time // fusion
	Predicates int

	// StandOff step description; zero values for tree axes.
	StandOff     bool
	Op           string
	PushPolicy   string // candidate policy with pushdown enabled
	NoPushPolicy string // candidate policy with pushdown disabled
	Name         string // element name for the by-name policy
	// Resolved lists the strategies the cost model has actually chosen so
	// far, one entry per distinct choice across the region indexes this
	// plan has executed against in auto mode (empty before the first auto
	// execution, and for executions that forced a strategy).
	Resolved []string
}

// Strategy renders the step's strategy: "auto" while unresolved, with the
// cost model's choices appended once executions resolved them, e.g.
// "auto(looplifted)".
func (s StepExplain) Strategy() string {
	if !s.StandOff {
		return ""
	}
	if len(s.Resolved) == 0 {
		return "auto"
	}
	out := "auto("
	for i, r := range s.Resolved {
		if i > 0 {
			out += ","
		}
		out += r
	}
	return out + ")"
}

// Explain returns the structured description of the plan's compiled form.
// The strategy fields reflect the cost-model choices memoized so far, so an
// Explain taken after an execution reports the strategies actually used.
func (p *Plan) Explain() *Explain {
	ex := &Explain{Options: p.opts, Folds: p.folds}
	for _, path := range p.paths {
		var pe PathExplain
		for _, sp := range p.programs[path] {
			se := StepExplain{
				Axis:       sp.Axis.String(),
				Test:       sp.Test.String(),
				Fused:      sp.Fused,
				Predicates: len(sp.Predicates),
				StandOff:   sp.StandOff,
			}
			if sp.StandOff {
				se.Op = sp.SO.Op.String()
				se.PushPolicy = sp.SO.Push.String()
				se.NoPushPolicy = sp.SO.NoPush.String()
				se.Name = sp.SO.Name
				for _, st := range sp.ResolvedStrategies() {
					se.Resolved = append(se.Resolved, st.String())
				}
			}
			pe.Steps = append(pe.Steps, se)
		}
		ex.Paths = append(ex.Paths, pe)
	}
	return ex
}

package xqplan

import (
	"fmt"
	"strconv"
	"strings"

	"soxq/internal/core"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
)

// Explain is the structured description of a compiled plan: the effective
// options, the fold count, the flat per-path step list (kept for
// programmatic consumers), and the operator tree of the whole query —
// FLWOR/filter/conditional structure included, not just paths. Built by
// Plan.Explain (estimates only) or Plan.ExplainWith (estimates plus the
// observed counters of one execution: EXPLAIN ANALYZE).
type Explain struct {
	Options core.Options
	Folds   int
	Paths   []PathExplain
	// Root is the operator tree: a synthetic "query" node whose children
	// are the user function declarations followed by the query body.
	Root *Node
	// Analyzed reports whether observed counters were attached (an
	// ExecStats collector was supplied).
	Analyzed bool
}

// Node is one operator of the rendered plan tree. Label is the fully
// rendered line (including the standoff{...}, est{...} and observed (...)
// annotations); the structured fields carry the same information for
// programmatic use.
type Node struct {
	// Kind classifies the operator: "query", "declare", "flwor", "for",
	// "let", "where", "order by", "return", "path", "step", "predicate",
	// "filter", "if", "then", "else", "quantified", "satisfies",
	// "function", "constructor", "op", "seq", "expr".
	Kind string
	// Label is the rendered line for this node.
	Label string
	// Step is set for Kind "step": the compiled step description.
	Step *StepExplain
	// Est is set for StandOff steps once the cost model has resolved: the
	// most recent estimate (candidates, observed context rows, modelled
	// costs, chosen strategy).
	Est *CostEstimate
	// StepObs / OpObs carry the observed counters when the Explain was
	// built with an ExecStats collector and the operator executed.
	StepObs *StepObs
	OpObs   *OpObs
	// Children are the operator's structural inputs, in evaluation order.
	Children []*Node
}

// PathExplain describes one path expression's step program (flat form).
type PathExplain struct {
	Steps []StepExplain
}

// StepExplain describes one compiled step.
type StepExplain struct {
	Axis       string
	Test       string
	Fused      bool // produced by the compile-time // fusion
	Predicates int

	// StandOff step description; zero values for tree axes.
	StandOff     bool
	Op           string
	PushPolicy   string // candidate policy with pushdown enabled
	NoPushPolicy string // candidate policy with pushdown disabled
	Name         string // element name for the by-name policy
	// Resolved lists the strategies the cost model has actually chosen so
	// far, one entry per distinct choice across the region indexes this
	// plan has executed against in auto mode (empty before the first auto
	// execution, and for executions that forced a strategy).
	Resolved []string
}

// Strategy renders the step's strategy: "auto" while unresolved, with the
// cost model's choices appended once executions resolved them, e.g.
// "auto(looplifted)".
func (s StepExplain) Strategy() string {
	if !s.StandOff {
		return ""
	}
	if len(s.Resolved) == 0 {
		return "auto"
	}
	out := "auto("
	for i, r := range s.Resolved {
		if i > 0 {
			out += ","
		}
		out += r
	}
	return out + ")"
}

// Explain returns the structured description of the plan's compiled form
// with cost estimates only (EXPLAIN). The strategy and estimate fields
// reflect the cost-model choices memoized so far, so an Explain taken after
// an execution reports the strategies actually used.
func (p *Plan) Explain() *Explain { return p.ExplainWith(nil) }

// ExplainWith builds the plan description and, when st is non-nil, attaches
// the observed per-operator counters of the execution st collected —
// EXPLAIN ANALYZE.
func (p *Plan) ExplainWith(st *ExecStats) *Explain {
	ex := &Explain{Options: p.opts, Folds: p.folds, Analyzed: st != nil}
	for _, path := range p.paths {
		var pe PathExplain
		for _, sp := range p.programs[path] {
			pe.Steps = append(pe.Steps, stepExplain(sp))
		}
		ex.Paths = append(ex.Paths, pe)
	}
	b := &treeBuilder{plan: p, st: st}
	root := &Node{Kind: "query", Label: "query"}
	for _, fd := range p.declOrder {
		decl := &Node{
			Kind:  "declare",
			Label: fmt.Sprintf("declare function %s#%d", fd.Name, len(fd.Params)),
		}
		decl.Children = append(decl.Children, b.node(fd.Body))
		root.Children = append(root.Children, decl)
	}
	for _, vd := range p.globals {
		root.Children = append(root.Children,
			b.labeled("declare", "declare variable $"+vd.Name+" :=", vd.Value))
	}
	root.Children = append(root.Children, b.node(p.body))
	ex.Root = root
	return ex
}

func stepExplain(sp *StepPlan) StepExplain {
	se := StepExplain{
		Axis:       sp.Axis.String(),
		Test:       sp.Test.String(),
		Fused:      sp.Fused,
		Predicates: len(sp.Predicates),
		StandOff:   sp.StandOff,
	}
	if sp.StandOff {
		se.Op = sp.SO.Op.String()
		se.PushPolicy = sp.SO.Push.String()
		se.NoPushPolicy = sp.SO.NoPush.String()
		se.Name = sp.SO.Name
		for _, st := range sp.ResolvedStrategies() {
			se.Resolved = append(se.Resolved, st.String())
		}
	}
	return se
}

// treeBuilder walks the compiled body and builds the operator tree.
type treeBuilder struct {
	plan *Plan
	st   *ExecStats
}

// node builds the tree node of one expression. Compact expressions (ones
// renderExpr can print on one line) become "expr" leaves; structural forms
// get a node per operator.
func (b *treeBuilder) node(e xqast.Expr) *Node {
	if s, ok := renderExpr(e); ok {
		return &Node{Kind: "expr", Label: s}
	}
	switch v := e.(type) {
	case *xqast.FLWOR:
		n := &Node{Kind: "flwor", Label: "flwor"}
		if o, ok := b.st.OpObs(v); ok {
			n.OpObs = &o
			n.Label += " " + renderFLWORObs(&o)
		}
		for _, cl := range v.Clauses {
			switch c := cl.(type) {
			case *xqast.ForClause:
				prefix := "for $" + c.Var
				if c.Pos != "" {
					prefix += " at $" + c.Pos
				}
				n.Children = append(n.Children, b.labeled("for", prefix+" in", c.Seq))
			case *xqast.LetClause:
				n.Children = append(n.Children, b.labeled("let", "let $"+c.Var+" :=", c.Seq))
			}
		}
		if v.Where != nil {
			n.Children = append(n.Children, b.labeled("where", "where", v.Where))
		}
		if len(v.OrderBy) > 0 {
			ob := &Node{Kind: "order by", Label: "order by"}
			for _, spec := range v.OrderBy {
				suffix := ""
				if spec.Descending {
					suffix = " descending"
				}
				ob.Children = append(ob.Children, b.labeled("key", "key"+suffix+":", spec.Key))
			}
			n.Children = append(n.Children, ob)
		}
		n.Children = append(n.Children, b.labeled("return", "return", v.Return))
		return n
	case *xqast.Path:
		return b.pathNode(v)
	case *xqast.Filter:
		n := &Node{Kind: "filter", Label: "filter"}
		if o, ok := b.st.OpObs(v); ok {
			n.OpObs = &o
			n.Label += fmt.Sprintf(" (in=%d out=%d)", o.RowsIn, o.RowsOut)
		}
		n.Children = append(n.Children, b.node(v.Base))
		for _, pred := range v.Predicates {
			n.Children = append(n.Children, b.labeled("predicate", "predicate", pred))
		}
		return n
	case *xqast.IfExpr:
		n := b.labeled("if", "if", v.Cond)
		n.Children = append(n.Children, b.labeled("then", "then", v.Then))
		n.Children = append(n.Children, b.labeled("else", "else", v.Else))
		return n
	case *xqast.Quantified:
		kw := "some"
		if v.Every {
			kw = "every"
		}
		n := b.labeled("quantified", kw+" $"+v.Var+" in", v.Seq)
		n.Children = append(n.Children, b.labeled("satisfies", "satisfies", v.Satisfies))
		return n
	case *xqast.FuncCall:
		n := &Node{Kind: "function", Label: fmt.Sprintf("function %s#%d", v.Name, len(v.Args))}
		for _, a := range v.Args {
			n.Children = append(n.Children, b.node(a))
		}
		return n
	case *xqast.Binary:
		if v.Op == "," {
			n := &Node{Kind: "seq", Label: "seq"}
			for _, part := range flattenSeqExpr(v) {
				n.Children = append(n.Children, b.node(part))
			}
			return n
		}
		n := &Node{Kind: "op", Label: "op " + strconv.Quote(v.Op)}
		n.Children = append(n.Children, b.node(v.L), b.node(v.R))
		return n
	case *xqast.Unary:
		op := "+"
		if v.Neg {
			op = "-"
		}
		n := &Node{Kind: "op", Label: "op " + strconv.Quote(op)}
		n.Children = append(n.Children, b.node(v.X))
		return n
	case *xqast.Enclosed:
		return b.node(v.X)
	case *xqast.DirectElem:
		n := &Node{Kind: "constructor", Label: "element <" + v.Name + ">"}
		for _, at := range v.Attrs {
			for _, part := range at.Value {
				if enc, ok := part.(*xqast.Enclosed); ok {
					n.Children = append(n.Children, b.labeled("attribute", "@"+at.Name+" :=", enc.X))
				}
			}
		}
		for _, part := range v.Content {
			if _, lit := part.(*xqast.StringLit); lit {
				continue // literal text between tags is not an operator
			}
			n.Children = append(n.Children, b.node(part))
		}
		return n
	case *xqast.ComputedElem:
		return b.computedNode("element", v.Name, v.NameExpr, v.Content)
	case *xqast.ComputedAttr:
		return b.computedNode("attribute", v.Name, v.NameExpr, v.Content)
	case *xqast.ComputedText:
		return b.computedNode("text", "", nil, v.Content)
	default:
		return &Node{Kind: "expr", Label: fmt.Sprintf("%T", e)}
	}
}

func (b *treeBuilder) computedNode(kw, name string, nameExpr xqast.Expr, content xqast.Expr) *Node {
	label := "computed " + kw
	if name != "" {
		label += " " + name
	}
	n := &Node{Kind: "constructor", Label: label}
	if nameExpr != nil {
		n.Children = append(n.Children, b.labeled("name", "name:", nameExpr))
	}
	if content != nil {
		n.Children = append(n.Children, b.node(content))
	}
	return n
}

// labeled builds a node for a clause-shaped operator: when the operand is
// compact it folds into the label ("return string($s/@id)"), otherwise the
// operand becomes the node's subtree.
func (b *treeBuilder) labeled(kind, prefix string, e xqast.Expr) *Node {
	if s, ok := renderExpr(e); ok {
		return &Node{Kind: kind, Label: prefix + " " + s}
	}
	return &Node{Kind: kind, Label: prefix, Children: []*Node{b.node(e)}}
}

// pathNode builds the node of a path expression: the start rendering in the
// label when compact, one child per compiled step, observed row counts
// attached when analyzing.
func (b *treeBuilder) pathNode(v *xqast.Path) *Node {
	n := &Node{Kind: "path", Label: "path"}
	start, startCompact := renderPathStart(v)
	if startCompact && start != "" {
		n.Label += " " + start
	}
	if o, ok := b.st.OpObs(v); ok {
		n.OpObs = &o
		n.Label += fmt.Sprintf(" (out=%d)", o.RowsOut)
	}
	if !startCompact {
		n.Children = append(n.Children, b.node(v.Start))
	}
	for _, sp := range b.plan.Program(v) {
		n.Children = append(n.Children, b.stepNode(sp))
	}
	return n
}

// stepNode renders one compiled step: axis::test, inline compact predicates,
// the fusion marker, the standoff{...} block with the resolved strategy, the
// est{...} cost-model record, and the observed (...) counters.
func (b *treeBuilder) stepNode(sp *StepPlan) *Node {
	se := stepExplain(sp)
	n := &Node{Kind: "step", Step: &se}
	var sb strings.Builder
	sb.WriteString("step ")
	sb.WriteString(se.Axis)
	sb.WriteString("::")
	sb.WriteString(se.Test)
	for _, pred := range sp.Predicates {
		if s, ok := renderExpr(pred); ok {
			sb.WriteString("[" + s + "]")
		} else {
			n.Children = append(n.Children, b.labeled("predicate", "predicate", pred))
		}
	}
	if se.Fused {
		sb.WriteString(" (fused //)")
	}
	if se.StandOff {
		fmt.Fprintf(&sb, " standoff{op=%s push=%s nopush=%s strategy=%s}",
			se.Op, PolicyString(se.PushPolicy, se.Name), PolicyString(se.NoPushPolicy, se.Name), se.Strategy())
		if ce := sp.LastCost(); ce != nil {
			n.Est = ce
			fmt.Fprintf(&sb, " est{cand=%d ctx=%d out=%d basic=%s ll=%s}",
				ce.Candidates, ce.CtxRows, ce.EstOut, renderCost(ce.Basic), renderCost(ce.LoopLifted))
			if ce.DeltaIns > 0 || ce.DeltaDead > 0 {
				fmt.Fprintf(&sb, " merge{+ins=%d -del=%d}", ce.DeltaIns, ce.DeltaDead)
			}
		}
	}
	if o, ok := b.st.StepObs(sp); ok {
		n.StepObs = &o
		sb.WriteString(" " + renderStepObs(&o, se.StandOff))
		if se.StandOff {
			sb.WriteString(renderDrift(sp.LastCost(), &o))
		}
	}
	n.Label = sb.String()
	return n
}

// renderDrift flags a step whose observed output selectivity strayed at
// least selDriftFactor from the cost model's prediction — the same test that
// invalidates the strategy memo, so EXPLAIN ANALYZE shows exactly the
// feedback the planner acted on. Everything here is row counts, never
// timings, so analyzed plans stay deterministic.
func renderDrift(ce *CostEstimate, o *StepObs) string {
	if ce == nil || ce.EstOut <= 0 || ce.CtxRows <= 0 || o.RowsIn < selMinRows {
		return ""
	}
	est := float64(ce.EstOut) / float64(ce.CtxRows)
	obs := float64(o.RowsOut) / float64(o.RowsIn)
	if obs > est*selDriftFactor || obs < est/selDriftFactor {
		return fmt.Sprintf(" drift{est=%s obs=%s}", renderCost(est), renderCost(obs))
	}
	return ""
}

// PolicyString renders a candidate policy with its element name attached
// ("by-name(shot)"); shared by the internal plan labels and the public
// explain surface.
func PolicyString(policy, name string) string {
	if policy == "by-name" {
		return "by-name(" + name + ")"
	}
	return policy
}

func renderCost(c float64) string { return strconv.FormatFloat(c, 'g', -1, 64) }

func renderFLWORObs(o *OpObs) string {
	s := fmt.Sprintf("(tuples=%d out=%d", o.RowsIn, o.RowsOut)
	if o.Chunks > 0 {
		s += fmt.Sprintf(" chunks=%d", o.Chunks)
	}
	return s + ")"
}

func renderStepObs(o *StepObs, standoff bool) string {
	s := fmt.Sprintf("(in=%d out=%d", o.RowsIn, o.RowsOut)
	if standoff {
		s += fmt.Sprintf(" cand=%d", o.Candidates)
		if joins := o.JoinsString(); joins != "" {
			s += " joins=" + joins
		}
		if o.StreamChunks > 0 {
			s += fmt.Sprintf(" stream{chunks=%d chunk=%d..%d}", o.StreamChunks, o.ChunkMin, o.ChunkMax)
		}
	}
	return s + ")"
}

// flattenSeqExpr collects the operands of a (left-leaning) `,` chain.
func flattenSeqExpr(v *xqast.Binary) []xqast.Expr {
	if l, ok := v.L.(*xqast.Binary); ok && l.Op == "," {
		return append(flattenSeqExpr(l), v.R)
	}
	return []xqast.Expr{v.L, v.R}
}

// renderExpr renders a "compact" expression on one line: literals,
// variables, trivial paths ($s/@id), and operators/calls over compact
// operands. Structural forms — FLWORs, filters, conditionals, constructors,
// and any path with a non-trivial step — report ok=false and get tree nodes
// instead, so their operators stay annotatable with estimates and counters.
func renderExpr(e xqast.Expr) (string, bool) {
	switch v := e.(type) {
	case *xqast.StringLit:
		return `"` + v.V + `"`, true
	case *xqast.IntLit:
		return strconv.FormatInt(v.V, 10), true
	case *xqast.FloatLit:
		return strconv.FormatFloat(v.V, 'g', -1, 64), true
	case *xqast.VarRef:
		return "$" + v.Name, true
	case *xqast.ContextItem:
		return ".", true
	case *xqast.EmptySeq:
		return "()", true
	case *xqast.Unary:
		x, ok := renderExpr(v.X)
		if !ok {
			return "", false
		}
		if v.Neg {
			return "-" + x, true
		}
		return "+" + x, true
	case *xqast.Binary:
		l, ok := renderExpr(v.L)
		if !ok {
			return "", false
		}
		r, ok := renderExpr(v.R)
		if !ok {
			return "", false
		}
		if v.Op == "," {
			return l + ", " + r, true
		}
		return l + " " + v.Op + " " + r, true
	case *xqast.FuncCall:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			s, ok := renderExpr(a)
			if !ok {
				return "", false
			}
			parts[i] = s
		}
		return v.Name + "(" + strings.Join(parts, ", ") + ")", true
	case *xqast.Enclosed:
		return renderExpr(v.X)
	case *xqast.Path:
		return renderCompactPath(v)
	}
	return "", false
}

// renderCompactPath renders a path inline when every step is trivial — an
// attribute or self axis with no predicates. Anything that walks or joins
// the tree keeps its own node so its per-step counters stay visible.
func renderCompactPath(v *xqast.Path) (string, bool) {
	start, ok := renderPathStart(v)
	if !ok {
		return "", false
	}
	if start == "." && len(v.Steps) > 0 {
		start = "" // @artist, not ./@artist: a step list implies the context
	}
	var sb strings.Builder
	sb.WriteString(start)
	// No separator before the first step when there is nothing to separate
	// from: a bare relative path, or an absolute one ("/@id", not "//@id").
	first := start == "" || start == "/"
	for _, step := range v.Steps {
		if len(step.Predicates) > 0 {
			return "", false
		}
		sep := "/"
		if first {
			sep, first = "", false
		}
		switch step.Axis {
		case xpath.AxisAttribute:
			if step.Test.Name == "" {
				sb.WriteString(sep + "@*")
			} else {
				sb.WriteString(sep + "@" + step.Test.Name)
			}
		case xpath.AxisSelf:
			if step.Test.Kind == xpath.TestAnyNode {
				sb.WriteString(sep + ".")
			} else {
				sb.WriteString(sep + "self::" + step.Test.String())
			}
		default:
			return "", false
		}
	}
	return sb.String(), true
}

// renderPathStart renders a path's starting context: the start expression
// when compact, "/" for absolute paths, "." for context-relative ones.
func renderPathStart(v *xqast.Path) (string, bool) {
	if v.Start == nil {
		if v.Absolute {
			return "/", true
		}
		return ".", true
	}
	s, ok := renderExpr(v.Start)
	if !ok {
		return "", false
	}
	if v.Absolute {
		return "root(" + s + ")", true
	}
	return s, true
}

package xqplan

import (
	"strings"
	"testing"

	"soxq/internal/core"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
	"soxq/internal/xqparse"
)

func compile(t *testing.T, q string) *Plan {
	t.Helper()
	m, err := xqparse.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Compile(m, core.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestFuncKeyEncoding(t *testing.T) {
	// The old rune encoding ('0'+arity) broke past arity 9 and could not
	// round-trip; the name/arity form is unambiguous.
	if got := FuncKey("local:f", 12); got != "local:f/12" {
		t.Fatalf("FuncKey = %q", got)
	}
	if FuncKey("f", 10) == FuncKey("f", 1) {
		t.Fatal("keys must differ per arity")
	}
}

func TestCompileFunctionTable(t *testing.T) {
	p := compile(t, `
		declare function local:one($a) { $a };
		declare function local:one($a, $b) { ($a, $b) };
		local:one(1)`)
	if p.NumFunctions() != 2 {
		t.Fatalf("NumFunctions = %d, want 2", p.NumFunctions())
	}
	if _, ok := p.Function("local:one", 1); !ok {
		t.Fatal("local:one#1 missing")
	}
	if _, ok := p.Function("local:one", 2); !ok {
		t.Fatal("local:one#2 missing")
	}
	if _, ok := p.Function("local:one", 3); ok {
		t.Fatal("local:one#3 must not resolve")
	}
}

func TestCompileDuplicateFunction(t *testing.T) {
	m, err := xqparse.Parse(`
		declare function local:f($a) { $a };
		declare function local:f($x) { $x };
		local:f(1)`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(m, core.DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "XQST0034") {
		t.Fatalf("want duplicate-function error, got %v", err)
	}
}

func TestCompileDuplicateParam(t *testing.T) {
	m, err := xqparse.Parse(`declare function local:f($a, $a) { $a }; 1`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(m, core.DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "XQST0039") {
		t.Fatalf("want duplicate-parameter error, got %v", err)
	}
}

func TestCompileResolvesPreambleOptions(t *testing.T) {
	p := compile(t, `declare option so:standoff-type "so:timecode"; 1`)
	if p.Options().Type != core.TypeTimecode {
		t.Fatalf("preamble option not applied: %+v", p.Options())
	}
	// Engine-wide defaults survive when the preamble is silent.
	base := core.DefaultOptions()
	base.Start = "s0"
	m, err := xqparse.Parse(`1`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(m, base)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Options().Start != "s0" {
		t.Fatalf("base options lost: %+v", p2.Options())
	}
}

func TestCompileBadOption(t *testing.T) {
	m, err := xqparse.Parse(`declare option so:standoff-type "xs:string"; 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m, core.DefaultOptions()); err == nil {
		t.Fatal("want bad-option error")
	}
}

func TestConstantFolding(t *testing.T) {
	for _, tc := range []struct {
		q    string
		want xqast.Expr
	}{
		{`1 + 2 * 3`, &xqast.IntLit{V: 7}},
		{`-(4 - 6)`, &xqast.IntLit{V: 2}},
		{`7 idiv 2`, &xqast.IntLit{V: 3}},
		{`7 mod 2`, &xqast.IntLit{V: 1}},
		{`1 div 2`, &xqast.FloatLit{V: 0.5}},
		{`1.5 + 0.25`, &xqast.FloatLit{V: 1.75}},
	} {
		p := compile(t, tc.q)
		switch want := tc.want.(type) {
		case *xqast.IntLit:
			got, ok := p.Body().(*xqast.IntLit)
			if !ok || got.V != want.V {
				t.Errorf("%s: body = %#v, want IntLit %d", tc.q, p.Body(), want.V)
			}
		case *xqast.FloatLit:
			got, ok := p.Body().(*xqast.FloatLit)
			if !ok || got.V != want.V {
				t.Errorf("%s: body = %#v, want FloatLit %v", tc.q, p.Body(), want.V)
			}
		}
	}
}

func TestFoldingPreservesDynamicErrors(t *testing.T) {
	// Division by zero must stay a runtime error, not a compile crash or a
	// silently folded value.
	p := compile(t, `1 idiv 0`)
	if _, folded := p.Body().(*xqast.IntLit); folded {
		t.Fatal("1 idiv 0 must not fold")
	}
}

func TestFoldingReachesNestedScopes(t *testing.T) {
	p := compile(t, `
		declare variable $g := 2 + 3;
		declare function local:f($x) { $x + (1 + 1) };
		for $i in 1 to (2 * 2) where $i > (0 + 1) return local:f($i)`)
	if g, ok := p.Globals()[0].Value.(*xqast.IntLit); !ok || g.V != 5 {
		t.Fatalf("global not folded: %#v", p.Globals()[0].Value)
	}
	fd, _ := p.Function("local:f", 1)
	body, ok := fd.Body.(*xqast.Binary)
	if !ok {
		t.Fatalf("function body shape: %#v", fd.Body)
	}
	if r, ok := body.R.(*xqast.IntLit); !ok || r.V != 2 {
		t.Fatalf("function body constant not folded: %#v", body.R)
	}
}

func TestStandOffDecisions(t *testing.T) {
	p := compile(t, `doc("d.xml")//music/select-narrow::shot`)
	if p.NumStandOffSteps() != 1 {
		t.Fatalf("NumStandOffSteps = %d, want 1", p.NumStandOffSteps())
	}
	var so SOStep
	var found bool
	for _, path := range p.paths {
		for _, sp := range p.programs[path] {
			if sp.StandOff {
				so, found = sp.SO, true
			}
		}
	}
	if !found {
		t.Fatal("no StandOff step in any program")
	}
	if so.Op != core.SelectNarrow {
		t.Fatalf("Op = %v", so.Op)
	}
	if so.Policy(true) != CandByName || so.Name != "shot" {
		t.Fatalf("pushdown policy = %v name %q", so.Policy(true), so.Name)
	}
	if so.Policy(false) != CandAllFiltered {
		t.Fatalf("no-pushdown policy = %v", so.Policy(false))
	}
}

func TestStandOffDecisionKinds(t *testing.T) {
	for _, tc := range []struct {
		test         xpath.Test
		push, noPush CandPolicy
	}{
		{xpath.Test{Kind: xpath.TestText}, CandImpossible, CandImpossible},
		{xpath.Test{Kind: xpath.TestAnyNode}, CandAll, CandAll},
		{xpath.Test{Kind: xpath.TestElement}, CandAll, CandAll},
		{xpath.NameTest("x"), CandByName, CandAllFiltered},
	} {
		so := Decide(&xqast.Step{Axis: xpath.AxisSelectWide, Test: tc.test})
		if so.Push != tc.push || so.NoPush != tc.noPush {
			t.Errorf("Decide(%v) = %v/%v, want %v/%v", tc.test, so.Push, so.NoPush, tc.push, tc.noPush)
		}
		if so.Op != core.SelectWide {
			t.Errorf("Decide(%v).Op = %v", tc.test, so.Op)
		}
	}
}

// TestStandOffStepsInsidePredicatesAndConstructors pins that analysis walks
// the whole tree, not just top-level paths.
func TestStandOffStepsEverywhere(t *testing.T) {
	p := compile(t, `
		declare function local:f($s) { $s/select-wide::b };
		for $x in doc("d.xml")//a[./select-narrow::c]
		return <r>{ local:f($x), $x/reject-wide::d }</r>`)
	if got := p.NumStandOffSteps(); got != 3 {
		t.Fatalf("NumStandOffSteps = %d, want 3", got)
	}
}

package xqplan

import (
	"math"
	"testing"

	"soxq/internal/core"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
)

// seedPerRow establishes a per-row baseline of exactly 1ns/row via one Basic
// observation: rows = ctx·cand + ctx = 1010, nanos = 1010.
func seedPerRow(c *Calibration) {
	c.ObserveJoin(core.StrategyBasic, 10, 100, 1010)
}

// llSample feeds one Loop-Lifted observation whose residue over the linear
// rows (cand+ctx = 128) implies the given setup cost, assuming the 1ns/row
// baseline from seedPerRow.
func llSample(c *Calibration, setup int64) {
	c.ObserveJoin(core.StrategyLoopLifted, 28, 100, 128+setup)
}

// TestCalibrationDefaultUntilSampled pins the calMinSamples gate: the
// calibrated setup cost only replaces the static default once enough samples
// accumulate, so short analyzed runs never perturb strategy choices.
func TestCalibrationDefaultUntilSampled(t *testing.T) {
	var c Calibration
	seedPerRow(&c)
	for i := 0; i < calMinSamples-1; i++ {
		llSample(&c, 64)
		if got := c.SetupRows(); got != llSetupRows {
			t.Fatalf("after %d samples SetupRows = %d, want static %d", i+1, got, llSetupRows)
		}
	}
	if g := c.Gen(); g != 0 {
		t.Fatalf("gen before threshold = %d, want 0", g)
	}
	llSample(&c, 64) // sample #calMinSamples crosses the gate
	if got := c.SetupRows(); got != 64 {
		t.Fatalf("calibrated SetupRows = %d, want 64", got)
	}
	// 64 sits in a different power-of-two band than the static 32, so the
	// generation bumps exactly when the reported value first changes.
	if g := c.Gen(); g != 1 {
		t.Fatalf("gen after threshold = %d, want 1", g)
	}
}

// TestCalibrationClamp pins the [calMinSetup, calMaxSetup] clamp: absurd
// residues (mis-measured baselines) never push the calibrated cost outside
// the plausible range.
func TestCalibrationClamp(t *testing.T) {
	var hi Calibration
	seedPerRow(&hi)
	for i := 0; i < calMinSamples; i++ {
		llSample(&hi, 1_000_000_000)
	}
	if got := hi.SetupRows(); got != calMaxSetup {
		t.Fatalf("huge residue SetupRows = %d, want clamp %d", got, calMaxSetup)
	}
	var lo Calibration
	seedPerRow(&lo)
	for i := 0; i < calMinSamples; i++ {
		// nanos below the linear rows: raw residue is negative.
		lo.ObserveJoin(core.StrategyLoopLifted, 28, 100, 100)
	}
	if got := lo.SetupRows(); got != calMinSetup {
		t.Fatalf("negative residue SetupRows = %d, want clamp %d", got, calMinSetup)
	}
}

// TestCalibrationIgnoresNoise pins the significance floors: joins below
// calMinRows scanned rows, zero timings, and Loop-Lifted joins without a
// per-row baseline all leave the calibration untouched.
func TestCalibrationIgnoresNoise(t *testing.T) {
	var c Calibration
	c.ObserveJoin(core.StrategyBasic, 2, 4, 1000) // rows = 10 < calMinRows
	if b := c.perRow.Load(); b != 0 {
		t.Fatalf("small basic join seeded perRow = %v", math.Float64frombits(b))
	}
	c.ObserveJoin(core.StrategyLoopLifted, 28, 100, 192) // no baseline yet
	if c.samples.Load() != 0 {
		t.Fatal("loop-lifted join without baseline counted a sample")
	}
	seedPerRow(&c)
	c.ObserveJoin(core.StrategyLoopLifted, 10, 20, 192) // linear = 30 < calMinRows
	if c.samples.Load() != 0 {
		t.Fatal("small loop-lifted join counted a sample")
	}
	c.ObserveJoin(core.StrategyBasic, 10, 100, 0) // zero nanos
	var nilCal *Calibration
	nilCal.ObserveJoin(core.StrategyBasic, 10, 100, 1010) // nil-safe
	if nilCal.SetupRows() != llSetupRows || nilCal.Gen() != 0 {
		t.Fatal("nil Calibration must price the static default")
	}
}

// TestCalibrationGenRekeysMemo pins that the strategy memo keys on the
// calibration generation: a band change re-prices the decision instead of
// serving an estimate computed under a stale setup cost.
func TestCalibrationGenRekeysMemo(t *testing.T) {
	ix := indexWith(t, 10, 0)
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisSelectNarrow, Test: xpath.Test{Kind: xpath.TestAnyNode}})
	var c Calibration
	sp.StrategyFor(ix, true, 4, &c)
	sp.StrategyFor(ix, true, 4, &c) // warm
	n := 0
	sp.strategies.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("memo entries = %d, want 1", n)
	}
	c.gen.Add(1)
	sp.StrategyFor(ix, true, 4, &c)
	n = 0
	sp.strategies.Range(func(_, _ any) bool { n++; return true })
	if n != 2 {
		t.Fatalf("memo entries after gen bump = %d, want 2 (re-priced)", n)
	}
}

// TestObserveOutputFeedback pins the output-selectivity half of the feedback
// loop: ANALYZE observations accumulate into an EWMA, a drift beyond
// selDriftFactor drops the strategy memo, and the next StrategyFor predicts
// output from the observed selectivity instead of the statistics upper bound.
func TestObserveOutputFeedback(t *testing.T) {
	ix := indexWith(t, 10, 0)
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisSelectNarrow, Test: xpath.Test{Kind: xpath.TestAnyNode}})
	sp.StrategyFor(ix, true, 64, nil)
	ce := sp.LastCost()
	if ce == nil || ce.EstOut != ce.Candidates {
		t.Fatalf("prior EstOut = %+v, want the candidate upper bound", ce)
	}

	// Below the significance floor: no observation is recorded.
	sp.observeOutput(selMinRows-1, selMinRows-1)
	if _, seen := sp.ObservedSelectivity(); seen {
		t.Fatal("sub-floor invocation recorded a selectivity")
	}

	// Every context row produced a row: sel=1.0 against a predicted
	// 10/64 ≈ 0.16 — beyond the 4x drift, so the memo must drop.
	sp.observeOutput(64, 64)
	if sel, seen := sp.ObservedSelectivity(); !seen || sel != 1.0 {
		t.Fatalf("ObservedSelectivity = %v,%v, want 1.0,true", sel, seen)
	}
	n := 0
	sp.strategies.Range(func(_, _ any) bool { n++; return true })
	if n != 0 || sp.nStrategies.Load() != 0 {
		t.Fatalf("memo entries after drift = %d (count %d), want 0", n, sp.nStrategies.Load())
	}

	// Re-resolving predicts from the observation: round(1.0 × 64).
	sp.StrategyFor(ix, true, 64, nil)
	if ce := sp.LastCost(); ce == nil || ce.EstOut != 64 {
		t.Fatalf("refined EstOut = %+v, want 64", ce)
	}

	// A second observation folds in by EWMA: 0.75·1.0 + 0.25·0.5 = 0.875.
	sp.observeOutput(64, 32)
	if sel, _ := sp.ObservedSelectivity(); math.Abs(sel-0.875) > 1e-9 {
		t.Fatalf("EWMA selectivity = %v, want 0.875", sel)
	}
}

// TestRecordJoinFeedsCalibration pins the wiring: a collector with an
// attached Calibration forwards its timed joins into it.
func TestRecordJoinFeedsCalibration(t *testing.T) {
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisSelectNarrow, Test: xpath.Test{Kind: xpath.TestAnyNode}})
	st := NewExecStats()
	var c Calibration
	st.Cal = &c
	st.RecordJoin(sp, 100, core.StrategyBasic, 10, 1010)
	if per := math.Float64frombits(c.perRow.Load()); per != 1.0 {
		t.Fatalf("perRow after RecordJoin = %v, want 1.0", per)
	}
	o, ok := st.StepObs(sp)
	if !ok || o.JoinRows != 10 || o.JoinNanos != 1010 {
		t.Fatalf("StepObs join counters = %+v, want rows=10 nanos=1010", o)
	}
}

package xqplan

import (
	"testing"

	"soxq/internal/xqast"
	"soxq/internal/xqparse"
)

// kitchenSink exercises every expression form both child enumerations must
// know about: FLWOR (for/let/where/order by), quantified, if, binary, unary,
// paths with predicates and a start expression, filters, function calls,
// direct and computed constructors, enclosed expressions.
const kitchenSink = `
declare function local:f($x) { $x + 1 };
for $a in doc("d.xml")//s[@start > 1][2]
let $n := count($a/w)
where some $q in (1, 2) satisfies $q > -$n
order by $a/@id descending
return if ($n > 0)
  then <r id="{$a/@id}">{local:f($n)}, element e { $n }, attribute k { $n }, text { "t" }</r>
  else ($a/select-narrow::w)[1]`

// TestVisitChildrenMatchesRewrite pins that the read-only visitChildren
// enumerates exactly the children rewriteChildren rewrites, over the whole
// kitchen-sink AST — the two case lists must not drift apart, or an
// execution-time analysis would silently skip expression forms.
func TestVisitChildrenMatchesRewrite(t *testing.T) {
	m, err := xqparse.Parse(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	var exprs []xqast.Expr
	for _, fd := range m.Functions {
		exprs = append(exprs, fd.Body)
	}
	exprs = append(exprs, m.Body)

	checked := 0
	var check func(e xqast.Expr)
	check = func(e xqast.Expr) {
		if e == nil {
			return
		}
		var rewriteSeen []xqast.Expr
		rewriteChildren(e, func(c xqast.Expr) xqast.Expr {
			rewriteSeen = append(rewriteSeen, c)
			return c
		})
		var visitSeen []xqast.Expr
		visitChildren(e, func(c xqast.Expr) { visitSeen = append(visitSeen, c) })
		if len(rewriteSeen) != len(visitSeen) {
			t.Fatalf("%T: rewriteChildren saw %d children, visitChildren %d",
				e, len(rewriteSeen), len(visitSeen))
		}
		for i := range rewriteSeen {
			if rewriteSeen[i] != visitSeen[i] {
				t.Fatalf("%T child %d: rewrite saw %T, visit saw %T",
					e, i, rewriteSeen[i], visitSeen[i])
			}
		}
		checked++
		for _, c := range visitSeen {
			check(c)
		}
	}
	for _, e := range exprs {
		check(e)
	}
	if checked < 30 {
		t.Fatalf("kitchen sink walked only %d expressions — generator too small to pin the case lists", checked)
	}
}

// TestContainsStandOff pins the execution-time classifier: StandOff axes
// anywhere under the expression (including predicates) count, user/extension
// function calls are conservatively treated as containing one, and plain
// tree-axis forms do not.
func TestContainsStandOff(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{`1 to 5`, false},
		{`doc("d.xml")//a/b`, false},
		{`doc("d.xml")//a/select-narrow::b`, true},
		{`doc("d.xml")//a[select-wide::b]/c`, true},
		{`for $x in doc("d.xml")//a return $x/reject-wide::b`, true},
		{`count(doc("d.xml")//a)`, false},
		{`local:f(1)`, true},
		{`(1, 2, doc("d.xml")//a/@id)`, false},
	}
	for _, c := range cases {
		m, err := xqparse.Parse(`declare function local:f($x) { $x }; ` + c.q)
		if err != nil {
			t.Fatalf("parse %q: %v", c.q, err)
		}
		if got := ContainsStandOff(m.Body); got != c.want {
			t.Errorf("ContainsStandOff(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

package xqplan

import (
	"math"
	"math/bits"
	"sync/atomic"

	"soxq/internal/core"
)

// Calibration auto-recalibrates the cost model's llSetupRows constant from
// joins timed under EXPLAIN ANALYZE. The static constant was measured once
// with `sobench -calibrate` on a reference container; the calibrated value
// tracks the machine the engine actually runs on. Basic joins reveal the
// per-row scan cost — their time is almost purely rows visited
// (ctx·cand + ctx) — and Loop-Lifted joins then reveal the fixed machinery
// cost as the residue of their time over their linear rows (cand + ctx).
//
// One Calibration is engine-wide and lives as long as the engine; all
// fields are atomics, so concurrent analyzed executions feed it without
// locks, and every method is nil-safe (an evaluator without a calibration
// prices with the static default).
type Calibration struct {
	perRow  atomic.Uint64 // EWMA ns per scanned row, float64 bits; 0 = unseen
	setup   atomic.Uint64 // EWMA setup cost in row equivalents, float64 bits; 0 = unseen
	samples atomic.Uint32 // setup samples folded in so far
	gen     atomic.Uint32 // bumped when the reported value changes band
}

const (
	// calMinRows: joins below this many scanned rows are timer granularity
	// and fixed overhead, not signal; they never feed the calibration.
	calMinRows = 64
	// calAlpha is the EWMA weight of a new sample.
	calAlpha = 0.25
	// calMinSamples is how many setup samples must accumulate before the
	// calibrated value replaces the static default. A handful of joins says
	// more about scheduler noise than about the join machinery — and the
	// threshold keeps short analyzed runs (tests, one-off EXPLAINs) from
	// perturbing the memoized strategy choices nondeterministically.
	calMinSamples = 32
	// calMinSetup/calMaxSetup clamp the calibrated setup cost; estimates
	// outside [8,256] row equivalents are artefacts of mis-measured
	// baselines, not plausible machinery costs.
	calMinSetup = 8
	calMaxSetup = 256
)

// SetupRows returns the calibrated Loop-Lifted setup cost in scanned-row
// equivalents, or the static default while uncalibrated.
func (c *Calibration) SetupRows() int {
	if c == nil || c.samples.Load() < calMinSamples {
		return llSetupRows
	}
	if s := math.Float64frombits(c.setup.Load()); s > 0 {
		return int(math.Round(s))
	}
	return llSetupRows
}

// Samples returns how many Loop-Lifted setup observations have been folded
// into the calibration so far — each is one llSetupRows update; the
// calibrated value only replaces the static default past calMinSamples.
func (c *Calibration) Samples() uint32 {
	if c == nil {
		return 0
	}
	return c.samples.Load()
}

// Gen returns the calibration generation. The strategy memo keys on it, so
// a band change re-prices memoized decisions instead of serving estimates
// computed under a stale setup cost.
func (c *Calibration) Gen() uint32 {
	if c == nil {
		return 0
	}
	return c.gen.Load()
}

// ObserveJoin feeds one timed join invocation into the calibration. Only
// EXPLAIN ANALYZE executions time joins, so the plain execution paths never
// pay for the feedback loop.
func (c *Calibration) ObserveJoin(strat core.Strategy, ctxRows, candidates int, nanos int64) {
	if c == nil || nanos <= 0 || ctxRows <= 0 || candidates <= 0 {
		return
	}
	switch strat {
	case core.StrategyBasic:
		rows := float64(ctxRows)*float64(candidates) + float64(ctxRows)
		if rows < calMinRows {
			return
		}
		ewma(&c.perRow, float64(nanos)/rows)
	case core.StrategyLoopLifted:
		per := math.Float64frombits(c.perRow.Load())
		linear := float64(candidates) + float64(ctxRows)
		if per <= 0 || linear < calMinRows {
			return // no per-row baseline yet, or too small to resolve
		}
		setup := float64(nanos)/per - linear
		setup = math.Min(math.Max(setup, calMinSetup), calMaxSetup)
		before := c.SetupRows()
		ewma(&c.setup, setup)
		c.samples.Add(1)
		if setupBand(before) != setupBand(c.SetupRows()) {
			c.gen.Add(1)
		}
	}
}

// setupBand buckets a setup cost the way ctxBand buckets cardinalities: the
// Basic-vs-Loop-Lifted crossover moves smoothly with the setup cost, so
// re-pricing the strategy memo is only worth it when the calibrated value
// moves a power-of-two band.
func setupBand(s int) int { return bits.Len(uint(s)) }

// ewma folds a sample into an atomic float64 EWMA; the first sample seeds
// it.
func ewma(a *atomic.Uint64, sample float64) {
	for {
		ob := a.Load()
		old := math.Float64frombits(ob)
		nv := sample
		if old > 0 {
			nv = (1-calAlpha)*old + calAlpha*sample
		}
		if a.CompareAndSwap(ob, math.Float64bits(nv)) {
			return
		}
	}
}

// Package xqplan is the compile stage between internal/xqparse and
// internal/xqeval. Compile turns a parsed xqast.Module plus the engine's
// stand-off options into an immutable Plan: preamble options resolved, the
// function table built and arity-checked once, global variables ordered,
// constant subexpressions folded, and every path expression compiled into a
// step program — per step, the axis with the // fusion applied, the node
// test, the stand-off classification with the section 3.3 candidate-pushdown
// decision, and the join-strategy selection hook (resolved against region
// index statistics at first execution, since documents bind after Prepare).
//
// A Plan carries no mutable state besides per-step memo tables of resolved
// (document, index) residue and no references to documents or indexes, so
// one Plan can back any number of concurrent executions and can be cached
// across queries (the engine keys its plan cache on query text + effective
// options).
//
// The package also owns the two observability pieces that close the loop
// between planning and execution. Cost model v2 (cost.go) prices the Basic
// vs Loop-Lifted StandOff join per step from the index statistics AND the
// context cardinality the executing evaluator observes, memoized per (index
// generation, pushdown, cardinality band) on the step (step.go); the cutoff
// is calibrated by `sobench -calibrate`, not hard-coded. ExecStats
// (stats.go) collects one execution's per-operator counters — rows in/out,
// candidates scanned, join algorithm run, FLWOR tuples and chunks — and
// Plan.Explain / Plan.ExplainWith (explain.go) render the operator tree
// with the estimates and, given an ExecStats, the observed counts: the
// EXPLAIN and EXPLAIN ANALYZE surfaces (docs/EXPLAIN.md).
package xqplan

import (
	"fmt"
	"strconv"
	"strings"

	"soxq/internal/core"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
)

// Error is a static (compile-time) error with its W3C error code.
type Error struct {
	Code string // e.g. "XQST0034", "XQST0039"
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("xquery error %s: %s", e.Code, e.Msg) }

func errf(code, format string, args ...any) error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

const (
	codeDupFunc   = "XQST0034" // duplicate function declaration
	codeDupParam  = "XQST0039" // duplicate parameter name
	codeBadOption = "XQST0013" // invalid option value
)

// CandPolicy is the statically decided candidate-sequence policy of one
// StandOff step (the section 3.3 optimizer decision).
type CandPolicy int

const (
	// CandImpossible: the node test can never match an area-annotation
	// (text(), comment(), attribute tests); the step is statically empty.
	CandImpossible CandPolicy = iota
	// CandAll: every area-annotation is a candidate, no residual filter.
	CandAll
	// CandAllFiltered: every area-annotation is a candidate and the node
	// test is applied to the join output (pushdown disabled).
	CandAllFiltered
	// CandByName: the element-name index is intersected with the region
	// index before the join (section 4.3 pushdown).
	CandByName
)

func (c CandPolicy) String() string {
	switch c {
	case CandImpossible:
		return "impossible"
	case CandAll:
		return "all"
	case CandAllFiltered:
		return "all+filter"
	case CandByName:
		return "by-name"
	default:
		return fmt.Sprintf("CandPolicy(%d)", int(c))
	}
}

// SOStep is the compiled form of one StandOff axis step: the join operator
// plus the candidate policy under both optimizer settings. The element-name
// to name-id resolution stays at run time because it is per-document.
type SOStep struct {
	Op     core.Op
	Push   CandPolicy // policy with candidate pushdown enabled
	NoPush CandPolicy // policy with candidate pushdown disabled
	Name   string     // element name for CandByName
}

// Policy returns the candidate policy for the given pushdown setting.
func (s SOStep) Policy(pushdown bool) CandPolicy {
	if pushdown {
		return s.Push
	}
	return s.NoPush
}

// soOps maps the four StandOff axes to their join operators.
var soOps = map[xpath.Axis]core.Op{
	xpath.AxisSelectNarrow: core.SelectNarrow,
	xpath.AxisSelectWide:   core.SelectWide,
	xpath.AxisRejectNarrow: core.RejectNarrow,
	xpath.AxisRejectWide:   core.RejectWide,
}

// Decide computes the compiled form of a StandOff step; CompileStep calls it
// for every StandOff step, whether found in the module or synthesised at run
// time for the function form of the joins.
func Decide(step *xqast.Step) SOStep {
	so := SOStep{Op: soOps[step.Axis]}
	switch step.Test.Kind {
	case xpath.TestElement, xpath.TestAnyNode:
	default:
		// Area-annotations are always elements.
		so.Push, so.NoPush = CandImpossible, CandImpossible
		return so
	}
	if step.Test.Name == "" {
		so.Push, so.NoPush = CandAll, CandAll
		return so
	}
	so.Push, so.NoPush = CandByName, CandAllFiltered
	so.Name = step.Test.Name
	return so
}

// FuncKey is the function-table key: the (possibly prefixed) name and the
// arity, encoded unambiguously as "name/arity".
func FuncKey(name string, arity int) string {
	return name + "/" + strconv.Itoa(arity)
}

// Plan is an immutable compiled query.
type Plan struct {
	body      xqast.Expr
	globals   []*xqast.VarDecl
	opts      core.Options
	funcs     map[string]*xqast.FunctionDecl
	declOrder []*xqast.FunctionDecl // declaration order, for deterministic EXPLAIN
	programs  map[*xqast.Path]Program
	paths     []*xqast.Path // discovery order, for deterministic EXPLAIN
	folds     int           // number of constant-folding rewrites applied
}

// Compile builds a Plan from a parsed module. base is the engine-wide option
// set; the module's preamble overrides it (option names are matched on their
// local name, as in section 2). The module is consumed: Compile may rewrite
// its expressions in place (constant folding), so callers must not share the
// module or evaluate it directly afterwards.
func Compile(m *xqast.Module, base core.Options) (*Plan, error) {
	p := &Plan{
		opts:     base,
		funcs:    make(map[string]*xqast.FunctionDecl, len(m.Functions)),
		programs: map[*xqast.Path]Program{},
	}
	// (1) Resolve preamble options against the engine defaults.
	for _, o := range m.Options {
		name := o.Name
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[i+1:]
		}
		if _, err := p.opts.Set(name, o.Value); err != nil {
			return nil, errf(codeBadOption, "%v", err)
		}
	}
	// (2) Build the function table once, checking name/arity collisions and
	// duplicate parameters. This happens before the expression pass so that
	// folding can tell built-ins from user declarations that shadow them.
	for _, fd := range m.Functions {
		key := FuncKey(fd.Name, len(fd.Params))
		if _, dup := p.funcs[key]; dup {
			return nil, errf(codeDupFunc, "duplicate function %s#%d", fd.Name, len(fd.Params))
		}
		seen := make(map[string]bool, len(fd.Params))
		for _, param := range fd.Params {
			if seen[param] {
				return nil, errf(codeDupParam, "duplicate parameter $%s in function %s#%d", param, fd.Name, len(fd.Params))
			}
			seen[param] = true
		}
		p.funcs[key] = fd
		p.declOrder = append(p.declOrder, fd)
	}
	// (3) The single expression pass: fold constants and compile the step
	// program of every path, function bodies and globals included.
	for _, fd := range m.Functions {
		fd.Body = p.pass(fd.Body)
	}
	for _, vd := range m.Variables {
		vd.Value = p.pass(vd.Value)
	}
	m.Body = p.pass(m.Body)
	p.body = m.Body
	p.globals = m.Variables
	return p, nil
}

// pass is the one compile-time traversal: post-order over each expression
// (children first, through the shared rewriteChildren enumeration), folding
// constants and compiling path step programs on the way back up. Each
// expression is walked exactly once per Compile.
func (p *Plan) pass(e xqast.Expr) xqast.Expr {
	if e == nil {
		return nil
	}
	rewriteChildren(e, p.pass)
	switch v := e.(type) {
	case *xqast.Binary:
		if folded, ok := foldArith(v); ok {
			p.folds++
			return folded
		}
		if folded, ok := p.foldComparison(v); ok {
			p.folds++
			return folded
		}
		if v.Op == "and" || v.Op == "or" {
			if folded, ok := p.foldLogical(v); ok {
				p.folds++
				return folded
			}
		}
	case *xqast.Unary:
		if folded, ok := foldUnary(v); ok {
			p.folds++
			return folded
		}
	case *xqast.IfExpr:
		if bv, ok := p.litEBV(v.Cond); ok {
			p.folds++
			if bv {
				p.prune(v.Else)
				return v.Then
			}
			p.prune(v.Then)
			return v.Else
		}
	case *xqast.FuncCall:
		if folded, ok := p.foldConcat(v); ok {
			p.folds++
			return folded
		}
		if folded, ok := p.foldBooleanWrap(v); ok {
			p.folds++
			return folded
		}
		if folded, ok := p.foldStringNumber(v); ok {
			p.folds++
			return folded
		}
	case *xqast.Path:
		p.paths = append(p.paths, v)
		p.programs[v] = compileProgram(v)
	}
	return e
}

// prune unregisters the step programs of a subtree a fold rule discarded
// (a dead if-branch, the skipped operand of a decided and/or), so EXPLAIN
// and NumStandOffSteps only describe steps that can actually execute.
// Discards are rare, so the extra walk stays off the common path.
func (p *Plan) prune(e xqast.Expr) xqast.Expr {
	if e == nil {
		return nil
	}
	rewriteChildren(e, p.prune)
	if path, ok := e.(*xqast.Path); ok {
		if _, registered := p.programs[path]; registered {
			delete(p.programs, path)
			for i, q := range p.paths {
				if q == path {
					p.paths = append(p.paths[:i], p.paths[i+1:]...)
					break
				}
			}
		}
	}
	return e
}

// Body returns the compiled query body.
func (p *Plan) Body() xqast.Expr { return p.body }

// Globals returns the global variable declarations in declaration order.
func (p *Plan) Globals() []*xqast.VarDecl { return p.globals }

// Options returns the effective stand-off options (engine defaults with the
// query preamble applied).
func (p *Plan) Options() core.Options { return p.opts }

// Function resolves a user-declared function by name and arity.
func (p *Plan) Function(name string, arity int) (*xqast.FunctionDecl, bool) {
	fd, ok := p.funcs[FuncKey(name, arity)]
	return fd, ok
}

// NumFunctions returns the size of the function table.
func (p *Plan) NumFunctions() int { return len(p.funcs) }

// NumStandOffSteps returns how many StandOff axis steps were compiled.
func (p *Plan) NumStandOffSteps() int {
	n := 0
	for _, prog := range p.programs {
		n += prog.NumStandOff()
	}
	return n
}

// Folds returns the number of constant-folding rewrites Compile applied.
func (p *Plan) Folds() int { return p.folds }

// Programs returns every compiled step program in path discovery order
// (post-order of the compile pass). Used by EXPLAIN and by tests; the
// evaluator looks programs up per path via Program.
func (p *Plan) Programs() []Program {
	out := make([]Program, len(p.paths))
	for i, path := range p.paths {
		out[i] = p.programs[path]
	}
	return out
}

// Program returns the compiled step program of a path expression. Paths that
// were not part of the compiled module are compiled on the fly (uncached);
// today no caller synthesises whole paths at run time, only single steps via
// CompileStep.
func (p *Plan) Program(path *xqast.Path) Program {
	if prog, ok := p.programs[path]; ok {
		return prog
	}
	return compileProgram(path)
}

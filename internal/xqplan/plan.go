// Package xqplan is the compile stage between internal/xqparse and
// internal/xqeval. Compile turns a parsed xqast.Module plus the engine's
// stand-off options into an immutable Plan: preamble options resolved, the
// function table built and arity-checked once, global variables ordered, the
// section 3.3 candidate-pushdown decision made statically for every StandOff
// axis step, and constant subexpressions folded.
//
// A Plan carries no mutable state and no references to documents or indexes,
// so one Plan can back any number of concurrent executions and can be cached
// across queries (the engine keys its plan cache on query text + effective
// options).
package xqplan

import (
	"fmt"
	"strconv"
	"strings"

	"soxq/internal/core"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
)

// Error is a static (compile-time) error with its W3C error code.
type Error struct {
	Code string // e.g. "XQST0034", "XQST0039"
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("xquery error %s: %s", e.Code, e.Msg) }

func errf(code, format string, args ...any) error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

const (
	codeDupFunc   = "XQST0034" // duplicate function declaration
	codeDupParam  = "XQST0039" // duplicate parameter name
	codeBadOption = "XQST0013" // invalid option value
)

// CandPolicy is the statically decided candidate-sequence policy of one
// StandOff step (the section 3.3 optimizer decision).
type CandPolicy int

const (
	// CandImpossible: the node test can never match an area-annotation
	// (text(), comment(), attribute tests); the step is statically empty.
	CandImpossible CandPolicy = iota
	// CandAll: every area-annotation is a candidate, no residual filter.
	CandAll
	// CandAllFiltered: every area-annotation is a candidate and the node
	// test is applied to the join output (pushdown disabled).
	CandAllFiltered
	// CandByName: the element-name index is intersected with the region
	// index before the join (section 4.3 pushdown).
	CandByName
)

// SOStep is the compiled form of one StandOff axis step: the join operator
// plus the candidate policy under both optimizer settings. The element-name
// to name-id resolution stays at run time because it is per-document.
type SOStep struct {
	Op     core.Op
	Push   CandPolicy // policy with candidate pushdown enabled
	NoPush CandPolicy // policy with candidate pushdown disabled
	Name   string     // element name for CandByName
}

// Policy returns the candidate policy for the given pushdown setting.
func (s SOStep) Policy(pushdown bool) CandPolicy {
	if pushdown {
		return s.Push
	}
	return s.NoPush
}

// soOps maps the four StandOff axes to their join operators.
var soOps = map[xpath.Axis]core.Op{
	xpath.AxisSelectNarrow: core.SelectNarrow,
	xpath.AxisSelectWide:   core.SelectWide,
	xpath.AxisRejectNarrow: core.RejectNarrow,
	xpath.AxisRejectWide:   core.RejectWide,
}

// Decide computes the compiled form of a StandOff step. Compile calls it for
// every step found in the module; the evaluator falls back to it for steps
// synthesised at run time (the so:select-narrow(...) function form).
func Decide(step *xqast.Step) SOStep {
	so := SOStep{Op: soOps[step.Axis]}
	switch step.Test.Kind {
	case xpath.TestElement, xpath.TestAnyNode:
	default:
		// Area-annotations are always elements.
		so.Push, so.NoPush = CandImpossible, CandImpossible
		return so
	}
	if step.Test.Name == "" {
		so.Push, so.NoPush = CandAll, CandAll
		return so
	}
	so.Push, so.NoPush = CandByName, CandAllFiltered
	so.Name = step.Test.Name
	return so
}

// FuncKey is the function-table key: the (possibly prefixed) name and the
// arity, encoded unambiguously as "name/arity".
func FuncKey(name string, arity int) string {
	return name + "/" + strconv.Itoa(arity)
}

// Plan is an immutable compiled query.
type Plan struct {
	body    xqast.Expr
	globals []*xqast.VarDecl
	opts    core.Options
	funcs   map[string]*xqast.FunctionDecl
	so      map[*xqast.Step]SOStep
}

// Compile builds a Plan from a parsed module. base is the engine-wide option
// set; the module's preamble overrides it (option names are matched on their
// local name, as in section 2). The module is consumed: Compile may rewrite
// its expressions in place (constant folding), so callers must not share the
// module or evaluate it directly afterwards.
func Compile(m *xqast.Module, base core.Options) (*Plan, error) {
	p := &Plan{
		opts:  base,
		funcs: make(map[string]*xqast.FunctionDecl, len(m.Functions)),
		so:    map[*xqast.Step]SOStep{},
	}
	// (1) Resolve preamble options against the engine defaults.
	for _, o := range m.Options {
		name := o.Name
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[i+1:]
		}
		if _, err := p.opts.Set(name, o.Value); err != nil {
			return nil, errf(codeBadOption, "%v", err)
		}
	}
	// (2) Build the function table once, checking name/arity collisions and
	// duplicate parameters.
	for _, fd := range m.Functions {
		key := FuncKey(fd.Name, len(fd.Params))
		if _, dup := p.funcs[key]; dup {
			return nil, errf(codeDupFunc, "duplicate function %s#%d", fd.Name, len(fd.Params))
		}
		seen := make(map[string]bool, len(fd.Params))
		for _, param := range fd.Params {
			if seen[param] {
				return nil, errf(codeDupParam, "duplicate parameter $%s in function %s#%d", param, fd.Name, len(fd.Params))
			}
			seen[param] = true
		}
		p.funcs[key] = fd
	}
	// (3) Fold constants, then record the compiled decision for every
	// StandOff step of the folded tree (function bodies included).
	for _, fd := range m.Functions {
		fd.Body = fold(fd.Body)
		p.analyze(fd.Body)
	}
	for _, vd := range m.Variables {
		vd.Value = fold(vd.Value)
		p.analyze(vd.Value)
	}
	m.Body = fold(m.Body)
	p.analyze(m.Body)
	p.body = m.Body
	p.globals = m.Variables
	return p, nil
}

// Body returns the compiled query body.
func (p *Plan) Body() xqast.Expr { return p.body }

// Globals returns the global variable declarations in declaration order.
func (p *Plan) Globals() []*xqast.VarDecl { return p.globals }

// Options returns the effective stand-off options (engine defaults with the
// query preamble applied).
func (p *Plan) Options() core.Options { return p.opts }

// Function resolves a user-declared function by name and arity.
func (p *Plan) Function(name string, arity int) (*xqast.FunctionDecl, bool) {
	fd, ok := p.funcs[FuncKey(name, arity)]
	return fd, ok
}

// NumFunctions returns the size of the function table.
func (p *Plan) NumFunctions() int { return len(p.funcs) }

// NumStandOffSteps returns how many StandOff axis steps were compiled.
func (p *Plan) NumStandOffSteps() int { return len(p.so) }

// StandOff returns the compiled decision for a StandOff step. Steps that
// were not part of the compiled module (the evaluator synthesises steps for
// the function form of the joins) are decided on the fly.
func (p *Plan) StandOff(step *xqast.Step) SOStep {
	if so, ok := p.so[step]; ok {
		return so
	}
	return Decide(step)
}

// analyze walks an expression recording the compiled form of every StandOff
// axis step.
func (p *Plan) analyze(e xqast.Expr) {
	walk(e, func(x xqast.Expr) {
		path, ok := x.(*xqast.Path)
		if !ok {
			return
		}
		for _, step := range path.Steps {
			if step.Axis.StandOff() {
				p.so[step] = Decide(step)
			}
		}
	})
}

// walk calls fn on e and every nested expression, including step and filter
// predicates and constructor content.
func walk(e xqast.Expr, fn func(xqast.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *xqast.FLWOR:
		for _, cl := range v.Clauses {
			switch c := cl.(type) {
			case *xqast.ForClause:
				walk(c.Seq, fn)
			case *xqast.LetClause:
				walk(c.Seq, fn)
			}
		}
		walk(v.Where, fn)
		for _, spec := range v.OrderBy {
			walk(spec.Key, fn)
		}
		walk(v.Return, fn)
	case *xqast.Quantified:
		walk(v.Seq, fn)
		walk(v.Satisfies, fn)
	case *xqast.IfExpr:
		walk(v.Cond, fn)
		walk(v.Then, fn)
		walk(v.Else, fn)
	case *xqast.Binary:
		walk(v.L, fn)
		walk(v.R, fn)
	case *xqast.Unary:
		walk(v.X, fn)
	case *xqast.Path:
		walk(v.Start, fn)
		for _, step := range v.Steps {
			for _, pred := range step.Predicates {
				walk(pred, fn)
			}
		}
	case *xqast.Filter:
		walk(v.Base, fn)
		for _, pred := range v.Predicates {
			walk(pred, fn)
		}
	case *xqast.FuncCall:
		for _, a := range v.Args {
			walk(a, fn)
		}
	case *xqast.DirectElem:
		for _, attr := range v.Attrs {
			for _, part := range attr.Value {
				walk(part, fn)
			}
		}
		for _, c := range v.Content {
			walk(c, fn)
		}
	case *xqast.Enclosed:
		walk(v.X, fn)
	case *xqast.ComputedElem:
		walk(v.NameExpr, fn)
		walk(v.Content, fn)
	case *xqast.ComputedAttr:
		walk(v.NameExpr, fn)
		walk(v.Content, fn)
	case *xqast.ComputedText:
		walk(v.Content, fn)
	}
}

package xqplan

import (
	"fmt"
	"strings"
	"testing"

	"soxq/internal/core"
	"soxq/internal/xmlparse"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
)

// program returns the step program of the n-th path (discovery order) of a
// compiled query.
func program(t *testing.T, p *Plan, n int) Program {
	t.Helper()
	if n >= len(p.paths) {
		t.Fatalf("plan has %d paths, want index %d", len(p.paths), n)
	}
	return p.programs[p.paths[n]]
}

func TestFusionCompiled(t *testing.T) {
	// doc("d.xml")//music: descendant-or-self::node()/child::music fuses
	// into one descendant::music step at compile time.
	p := compile(t, `doc("d.xml")//music`)
	prog := program(t, p, 0)
	if len(prog) != 1 {
		t.Fatalf("program length = %d, want 1 (fused)", len(prog))
	}
	sp := prog[0]
	if sp.Axis != xpath.AxisDescendant || !sp.Fused || sp.Test.Name != "music" {
		t.Fatalf("fused step = %v::%v fused=%v", sp.Axis, sp.Test, sp.Fused)
	}
}

func TestNoFusionWithPredicates(t *testing.T) {
	// A predicate on the child step blocks the fusion: positional
	// predicates count per parent, and descendant flattening would break
	// that.
	p := compile(t, `doc("d.xml")//music[1]`)
	prog := program(t, p, 0)
	if len(prog) != 2 {
		t.Fatalf("program length = %d, want 2 (unfused)", len(prog))
	}
	if prog[0].Axis != xpath.AxisDescendantOrSelf || prog[1].Axis != xpath.AxisChild {
		t.Fatalf("axes = %v, %v", prog[0].Axis, prog[1].Axis)
	}
	if len(prog[1].Predicates) != 1 {
		t.Fatalf("child step predicates = %d, want 1", len(prog[1].Predicates))
	}
}

func TestStandOffStepCompiled(t *testing.T) {
	p := compile(t, `doc("d.xml")//music/select-narrow::shot`)
	prog := program(t, p, 0)
	if len(prog) != 2 {
		t.Fatalf("program length = %d, want 2", len(prog))
	}
	so := prog[1]
	if !so.StandOff || so.SO.Op != core.SelectNarrow || so.SO.Name != "shot" {
		t.Fatalf("standoff step = %+v", so.SO)
	}
}

// indexWith builds a region index over a generated document holding `dense`
// areas named dense and `rare` areas named rare.
func indexWith(t *testing.T, dense, rare int) *core.RegionIndex {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < dense; i++ {
		fmt.Fprintf(&sb, `<dense start="%d" end="%d"/>`, i*10, i*10+9)
	}
	for i := 0; i < rare; i++ {
		fmt.Fprintf(&sb, `<rare start="%d" end="%d"/>`, i*100, i*100+50)
	}
	sb.WriteString("</doc>")
	d, err := xmlparse.Parse("d.xml", []byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestStrategySelection pins cost model v2: the Basic vs Loop-Lifted choice
// moves with BOTH the candidate estimate from the index statistics and the
// context cardinality observed at execution. Basic wins exactly while
// (ctxRows-1)·candidates <= llSetupRows.
func TestStrategySelection(t *testing.T) {
	step := func(name string) *StepPlan {
		test := xpath.Test{Kind: xpath.TestAnyNode}
		if name != "" {
			test = xpath.NameTest(name)
		}
		return CompileStep(&xqast.Step{Axis: xpath.AxisSelectNarrow, Test: test})
	}
	for _, tc := range []struct {
		name        string
		dense, rare int
		test        string // element name test; "" = node()
		pushdown    bool
		ctxRows     int
		want        core.Strategy
	}{
		// One context row: no loop to lift, Basic regardless of candidates
		// (v1's fixed threshold would have forced Loop-Lifted here).
		{"single iteration, huge layer", 500, 0, "", true, 1, core.StrategyBasic},
		{"tiny layer, tiny loop", 10, 0, "", true, 3, core.StrategyBasic},
		{"tiny layer, big loop", 10, 0, "", true, 100, core.StrategyLoopLifted},
		{"huge layer, small loop", 500, 0, "", true, 5, core.StrategyLoopLifted},
		// Exact crossover: (ctx-1)·cand == llSetupRows chooses Basic, one
		// more candidate tips over.
		{"crossover boundary", llSetupRows, 0, "", true, 2, core.StrategyBasic},
		{"just past crossover", llSetupRows + 1, 0, "", true, 2, core.StrategyLoopLifted},
		{"rare tag in huge layer, pushdown", 500, 3, "rare", true, 10, core.StrategyBasic},
		{"dense tag in huge layer, pushdown", 500, 3, "dense", true, 10, core.StrategyLoopLifted},
		// Without pushdown the name test is post-filtered, so the
		// candidate set is the whole layer: the same rare-tag step flips
		// back to Loop-Lifted.
		{"rare tag, no pushdown", 500, 3, "rare", false, 10, core.StrategyLoopLifted},
		{"absent tag, pushdown", 500, 0, "ghost", true, 10, core.StrategyBasic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := indexWith(t, tc.dense, tc.rare)
			sp := step(tc.test)
			if got := sp.StrategyFor(ix, tc.pushdown, tc.ctxRows, nil); got != tc.want {
				t.Fatalf("StrategyFor = %v, want %v (areas=%d ctx=%d)", got, tc.want, ix.Stats().Areas, tc.ctxRows)
			}
			// Memoized: the second call answers from the step's cache.
			if got := sp.StrategyFor(ix, tc.pushdown, tc.ctxRows, nil); got != tc.want {
				t.Fatalf("memoized StrategyFor = %v, want %v", got, tc.want)
			}
			// The decision record is retained for EXPLAIN.
			ce := sp.LastCost()
			if ce == nil || ce.Strategy != tc.want || ce.CtxRows != tc.ctxRows {
				t.Fatalf("LastCost = %+v, want strategy %v ctx %d", ce, tc.want, tc.ctxRows)
			}
		})
	}
}

// TestStrategyFlipsWithContextCardinality is the headline cost-model-v2
// case: identical step, identical index — identical candidate estimate —
// yet the strategy flips from Basic to Loop-Lifted purely because the
// observed context cardinality grows. The v1 fixed-64 threshold (candidates
// here are far below 64) would have answered Basic for both.
func TestStrategyFlipsWithContextCardinality(t *testing.T) {
	ix := indexWith(t, 5, 0) // five candidate areas: v1 says Basic, always
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisSelectWide, Test: xpath.Test{Kind: xpath.TestAnyNode}})
	if got := sp.StrategyFor(ix, true, 2, nil); got != core.StrategyBasic {
		t.Fatalf("2 context rows: %v, want basic", got)
	}
	if got := sp.StrategyFor(ix, true, 1000, nil); got != core.StrategyLoopLifted {
		t.Fatalf("1000 context rows: %v, want looplifted", got)
	}
	// Distinct cardinality bands hold distinct memo entries.
	n := 0
	sp.strategies.Range(func(_, _ any) bool { n++; return true })
	if n != 2 {
		t.Fatalf("memo entries = %d, want 2 (one per cardinality band)", n)
	}
}

// TestStrategyPerIndex pins that one step resolves independently per region
// index: the same plan bound to a tiny and a huge layer uses Basic for one
// and Loop-Lifted for the other.
func TestStrategyPerIndex(t *testing.T) {
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisSelectWide, Test: xpath.Test{Kind: xpath.TestAnyNode}})
	tiny := indexWith(t, 3, 0)
	huge := indexWith(t, 300, 0)
	if got := sp.StrategyFor(tiny, true, 4, nil); got != core.StrategyBasic {
		t.Fatalf("tiny index: %v", got)
	}
	if got := sp.StrategyFor(huge, true, 4, nil); got != core.StrategyLoopLifted {
		t.Fatalf("huge index: %v", got)
	}
	resolved := sp.ResolvedStrategies()
	if len(resolved) != 2 || resolved[0] != core.StrategyBasic || resolved[1] != core.StrategyLoopLifted {
		t.Fatalf("ResolvedStrategies = %v", resolved)
	}
}

// TestStrategyMemoSurvivesIndexRebuild pins the generation-token keying: a
// fresh index built over the same document under the same options must hit
// the warm memo (one entry, not two), while an index over a different
// document of identical shape resolves its own entry.
func TestStrategyMemoSurvivesIndexRebuild(t *testing.T) {
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisSelectNarrow, Test: xpath.Test{Kind: xpath.TestAnyNode}})
	memoLen := func() int {
		n := 0
		sp.strategies.Range(func(_, _ any) bool { n++; return true })
		return n
	}
	d, err := xmlparse.Parse("d.xml", []byte(`<doc><a start="0" end="5"/><a start="6" end="9"/></doc>`))
	if err != nil {
		t.Fatal(err)
	}
	ix1, err := core.BuildIndex(d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := core.BuildIndex(d, core.DefaultOptions()) // rebuild, same doc+opts
	if err != nil {
		t.Fatal(err)
	}
	if s1, s2 := sp.StrategyFor(ix1, true, 4, nil), sp.StrategyFor(ix2, true, 4, nil); s1 != s2 {
		t.Fatalf("rebuilt index resolved differently: %v vs %v", s1, s2)
	}
	if n := memoLen(); n != 1 {
		t.Fatalf("memo entries after rebuild = %d, want 1 (warm hit)", n)
	}
	d2, err := xmlparse.Parse("d2.xml", []byte(`<doc><a start="0" end="5"/><a start="6" end="9"/></doc>`))
	if err != nil {
		t.Fatal(err)
	}
	ix3, err := core.BuildIndex(d2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sp.StrategyFor(ix3, true, 4, nil)
	if n := memoLen(); n != 2 {
		t.Fatalf("memo entries after distinct document = %d, want 2", n)
	}
}

func TestResolvedStrategiesEmptyBeforeUse(t *testing.T) {
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisSelectNarrow, Test: xpath.Test{Kind: xpath.TestAnyNode}})
	if got := sp.ResolvedStrategies(); len(got) != 0 {
		t.Fatalf("ResolvedStrategies = %v, want empty", got)
	}
}

// TestStepMemoBounded: the per-step memo tables reset past stepMemoLimit so
// a long-lived plan cannot pin every document it ever bound to.
func TestStepMemoBounded(t *testing.T) {
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisChild, Test: xpath.NameTest("a")})
	for i := 0; i < 3*stepMemoLimit; i++ {
		d, err := xmlparse.Parse(fmt.Sprintf("d%d.xml", i), []byte(`<doc><a/></doc>`))
		if err != nil {
			t.Fatal(err)
		}
		sp.CompiledTest(d)
	}
	n := 0
	sp.tests.Range(func(_, _ any) bool { n++; return true })
	if n > stepMemoLimit {
		t.Fatalf("memo holds %d entries, limit %d", n, stepMemoLimit)
	}
}

func TestCompiledTestMemoized(t *testing.T) {
	d, err := xmlparse.Parse("d.xml", []byte(`<doc><a/><b/></doc>`))
	if err != nil {
		t.Fatal(err)
	}
	sp := CompileStep(&xqast.Step{Axis: xpath.AxisChild, Test: xpath.NameTest("a")})
	c1 := sp.CompiledTest(d)
	c2 := sp.CompiledTest(d)
	if c1 != c2 {
		t.Fatalf("CompiledTest not stable: %+v vs %+v", c1, c2)
	}
	// pre 0 is the document node, 1 <doc>, 2 <a>, 3 <b>.
	if !c1.Matches(d, 2) || c1.Matches(d, 3) {
		t.Fatal("compiled test matches wrong nodes")
	}
}

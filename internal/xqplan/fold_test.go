package xqplan

import (
	"math"
	"testing"

	"soxq/internal/xqast"
)

// boolCall asserts the expression is a zero-argument true()/false() call.
func boolCall(t *testing.T, e xqast.Expr, want bool) {
	t.Helper()
	fc, ok := e.(*xqast.FuncCall)
	if !ok || len(fc.Args) != 0 {
		t.Fatalf("body = %#v, want %v() call", e, want)
	}
	name := "false"
	if want {
		name = "true"
	}
	if fc.Name != name {
		t.Fatalf("body = %s(), want %s()", fc.Name, name)
	}
}

func TestFoldConcat(t *testing.T) {
	p := compile(t, `concat("foo", "-", "bar")`)
	s, ok := p.Body().(*xqast.StringLit)
	if !ok || s.V != "foo-bar" {
		t.Fatalf("body = %#v, want StringLit foo-bar", p.Body())
	}
	if p.Folds() != 1 {
		t.Fatalf("Folds = %d, want 1", p.Folds())
	}
	// Non-literal arguments stay a call.
	p = compile(t, `concat("a", string(doc("x.xml")))`)
	if fc, ok := p.Body().(*xqast.FuncCall); !ok || fc.Name != "concat" {
		t.Fatalf("body = %#v, want unfolded call", p.Body())
	}
}

func TestFoldStringNumber(t *testing.T) {
	for _, tc := range []struct {
		q    string
		want string
	}{
		{`string(5)`, "5"},
		{`string(-7)`, "-7"},
		{`string(1.5)`, "1.5"},
		// Integral doubles render without a trailing ".0", as at runtime.
		{`string(2.0)`, "2"},
		{`string("x")`, "x"},
	} {
		p := compile(t, tc.q)
		s, ok := p.Body().(*xqast.StringLit)
		if !ok || s.V != tc.want {
			t.Fatalf("%s: body = %#v, want StringLit %q", tc.q, p.Body(), tc.want)
		}
		if p.Folds() < 1 { // string(-7) also counts the unary-minus fold
			t.Fatalf("%s: Folds = %d, want >= 1", tc.q, p.Folds())
		}
	}
	for _, tc := range []struct {
		q    string
		want float64
	}{
		{`number("3.5")`, 3.5},
		{`number(" 2 ")`, 2}, // whitespace trimmed, as at runtime
		{`number(7)`, 7},
		{`number(1.5)`, 1.5},
	} {
		p := compile(t, tc.q)
		f, ok := p.Body().(*xqast.FloatLit)
		if !ok || f.V != tc.want {
			t.Fatalf("%s: body = %#v, want FloatLit %v", tc.q, p.Body(), tc.want)
		}
	}
	// Unparseable strings fold to NaN, matching fn:number's runtime result.
	p := compile(t, `number("abc")`)
	if f, ok := p.Body().(*xqast.FloatLit); !ok || !math.IsNaN(f.V) {
		t.Fatalf("number(\"abc\") = %#v, want FloatLit NaN", p.Body())
	}
	// The folded literal feeds the other folds: string(5) is a literal to
	// concat, number("2") a literal to arithmetic.
	p = compile(t, `concat("a", string(5))`)
	if s, ok := p.Body().(*xqast.StringLit); !ok || s.V != "a5" {
		t.Fatalf("cascade = %#v, want StringLit a5", p.Body())
	}
	p = compile(t, `number("2") + 1`)
	if f, ok := p.Body().(*xqast.FloatLit); !ok || f.V != 3 {
		t.Fatalf("cascade = %#v, want FloatLit 3", p.Body())
	}
	// Dynamic arguments and the zero-argument context forms stay calls.
	for _, q := range []string{`string(doc("x.xml"))`, `number(doc("x.xml"))`} {
		p := compile(t, q)
		if _, ok := p.Body().(*xqast.FuncCall); !ok {
			t.Fatalf("%s: body = %#v, want unfolded call", q, p.Body())
		}
	}
	// A user declaration shadows the built-in; folding would be wrong.
	p = compile(t, `declare function string($x) { 0 }; string(5)`)
	if fc, ok := p.Body().(*xqast.FuncCall); !ok || fc.Name != "string" {
		t.Fatalf("shadowed string = %#v, want call kept", p.Body())
	}
}

func TestFoldConcatShadowed(t *testing.T) {
	// A user function named concat with matching arity hides the built-in;
	// folding the built-in semantics would be wrong.
	p := compile(t, `declare function concat($a, $b) { 0 }; concat("a", "b")`)
	if _, ok := p.Body().(*xqast.StringLit); ok {
		t.Fatal("shadowed concat must not fold")
	}
}

func TestFoldLogical(t *testing.T) {
	for _, tc := range []struct {
		q    string
		want bool
	}{
		{`true() and false()`, false},
		{`true() and true()`, true},
		{`false() or true()`, true},
		{`false() or false()`, false},
		// Deciding literal short-circuits even with a non-literal other
		// operand (XQuery section 3.6 allows skipping its evaluation).
		{`false() and doc("x.xml")`, false},
		{`doc("x.xml") and false()`, false},
		{`true() or doc("x.xml")`, true},
		{`doc("x.xml") or true()`, true},
		// Literal operands that are not boolean calls fold through EBV.
		{`1 and "x"`, true},
		{`0 or ""`, false},
		{`() or 1`, true},
	} {
		p := compile(t, tc.q)
		boolCall(t, p.Body(), tc.want)
	}
}

func TestFoldLogicalNeutralLiteral(t *testing.T) {
	// true() and E must keep returning a boolean, so it folds to
	// boolean(E), not to E.
	p := compile(t, `true() and doc("x.xml")`)
	fc, ok := p.Body().(*xqast.FuncCall)
	if !ok || fc.Name != "boolean" || len(fc.Args) != 1 {
		t.Fatalf("body = %#v, want boolean(E)", p.Body())
	}
}

func TestFoldIfDeadBranch(t *testing.T) {
	p := compile(t, `if (true()) then 1 + 1 else doc("x.xml")`)
	if got, ok := p.Body().(*xqast.IntLit); !ok || got.V != 2 {
		t.Fatalf("body = %#v, want IntLit 2", p.Body())
	}
	p = compile(t, `if (0) then 1 else 3`)
	if got, ok := p.Body().(*xqast.IntLit); !ok || got.V != 3 {
		t.Fatalf("body = %#v, want IntLit 3", p.Body())
	}
	// A non-literal condition keeps both branches.
	p = compile(t, `if (doc("x.xml")) then 1 else 2`)
	if _, ok := p.Body().(*xqast.IfExpr); !ok {
		t.Fatalf("body = %#v, want IfExpr", p.Body())
	}
}

// TestFoldPrunesDeadPrograms: paths inside a folded-away subtree (dead if
// branch, skipped and/or operand) must not linger in the plan — EXPLAIN and
// NumStandOffSteps describe only steps that can execute.
func TestFoldPrunesDeadPrograms(t *testing.T) {
	for _, q := range []string{
		`if (false()) then doc("d.xml")//a/select-narrow::b else 1`,
		`if (true()) then 1 else doc("d.xml")//a/select-narrow::b`,
		`false() and doc("d.xml")//a/select-narrow::b`,
		`true() or doc("d.xml")//a/select-narrow::b`,
	} {
		p := compile(t, q)
		if got := p.NumStandOffSteps(); got != 0 {
			t.Errorf("%s: NumStandOffSteps = %d, want 0 (dead subtree)", q, got)
		}
		if got := len(p.Programs()); got != 0 {
			t.Errorf("%s: %d programs survive, want 0", q, got)
		}
	}
	// The surviving branch's path stays registered.
	p := compile(t, `if (true()) then doc("d.xml")//a/select-narrow::b else 1`)
	if got := p.NumStandOffSteps(); got != 1 {
		t.Fatalf("live branch: NumStandOffSteps = %d, want 1", got)
	}
}

func TestFoldComparison(t *testing.T) {
	for _, tc := range []struct {
		q    string
		want bool
	}{
		{`1 = 1`, true},
		{`1 != 1`, false},
		{`2 > 1`, true},
		{`1.5 <= 1`, false},
		{`2 >= 2.0`, true},
		{`"a" != "b"`, true},
		{`"a" < "b"`, true},
		{`"x" = "x"`, true},
		// Value comparisons on literals behave identically.
		{`1 eq 1`, true},
		{`"a" lt "b"`, true},
		{`3 ge 4`, false},
	} {
		p := compile(t, tc.q)
		boolCall(t, p.Body(), tc.want)
		if p.Folds() != 1 {
			t.Errorf("%s: Folds = %d, want 1", tc.q, p.Folds())
		}
	}
	// Mixed literal kinds and non-literal operands stay unfolded.
	for _, q := range []string{`"1" = 1`, `doc("d.xml")//a = 1`, `1 = doc("d.xml")//a`} {
		p := compile(t, q)
		if _, ok := p.Body().(*xqast.Binary); !ok {
			t.Errorf("%s: body = %#v, want unfolded Binary", q, p.Body())
		}
	}
}

// TestFoldComparisonCascades: a folded comparison becomes a boolean literal
// that feeds the logical and conditional folds — `1 = 1 and E` reduces all
// the way to boolean(E), and to E itself when E is predicate-shaped.
func TestFoldComparisonCascades(t *testing.T) {
	p := compile(t, `if (1 = 1) then "y" else doc("d.xml")//a`)
	if got, ok := p.Body().(*xqast.StringLit); !ok || got.V != "y" {
		t.Fatalf("body = %#v, want StringLit y", p.Body())
	}
	p = compile(t, `1 = 1 and doc("d.xml")//a`)
	fc, ok := p.Body().(*xqast.FuncCall)
	if !ok || fc.Name != "boolean" {
		t.Fatalf("body = %#v, want boolean(path)", p.Body())
	}
}

func TestFoldBooleanWrap(t *testing.T) {
	// boolean() around a general comparison is redundant: the wrapper
	// drops, leaving the comparison itself.
	p := compile(t, `boolean(doc("d.xml")//a = 1)`)
	if b, ok := p.Body().(*xqast.Binary); !ok || b.Op != "=" {
		t.Fatalf("body = %#v, want bare comparison", p.Body())
	}
	// Likewise around not(), exists() and a half-folded logical.
	p = compile(t, `boolean(not(doc("d.xml")//a))`)
	if fc, ok := p.Body().(*xqast.FuncCall); !ok || fc.Name != "not" {
		t.Fatalf("body = %#v, want not(...)", p.Body())
	}
	p = compile(t, `1 = 1 and (doc("d.xml")//a > 2)`)
	if b, ok := p.Body().(*xqast.Binary); !ok || b.Op != ">" {
		t.Fatalf("body = %#v, want bare > comparison (boolean() dropped)", p.Body())
	}
	// boolean(literal) folds outright.
	p = compile(t, `boolean("nonempty")`)
	boolCall(t, p.Body(), true)
	p = compile(t, `boolean(())`)
	boolCall(t, p.Body(), false)
	// A value comparison can be empty, so its wrapper must stay.
	p = compile(t, `boolean(doc("d.xml")//a/@x eq 1)`)
	if fc, ok := p.Body().(*xqast.FuncCall); !ok || fc.Name != "boolean" {
		t.Fatalf("body = %#v, want boolean(...) kept around value comparison", p.Body())
	}
	// A shadowed boolean() must not be touched.
	p = compile(t, `declare function boolean($x) { 0 }; boolean(1 = 1)`)
	if fc, ok := p.Body().(*xqast.FuncCall); !ok || fc.Name != "boolean" {
		t.Fatalf("body = %#v, want shadowed boolean call kept", p.Body())
	}
}

func TestFoldCountsCascade(t *testing.T) {
	// Folds cascade bottom-up in the single pass: 1+1 folds, making the
	// if-condition literal, which folds the if, leaving the then branch.
	p := compile(t, `if (1 + 1) then concat("a", "b") else 0`)
	if got, ok := p.Body().(*xqast.StringLit); !ok || got.V != "ab" {
		t.Fatalf("body = %#v, want StringLit ab", p.Body())
	}
	if p.Folds() != 3 { // arith, concat, if
		t.Fatalf("Folds = %d, want 3", p.Folds())
	}
}

package xqplan

import (
	"math"
	"sync"
	"sync/atomic"

	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
)

// StepPlan is the compiled form of one path step: the axis with the
// descendant-or-self::node()/child::T fusion already applied, the node test,
// the predicate list, and — for StandOff axes — the section 3.3 candidate
// policy plus the join-strategy choice. Everything statically knowable is
// decided here, once, at compile time; the evaluator consumes StepPlans
// without re-deriving any of it per evaluation.
//
// The two memo tables hold the per-document residue that cannot be decided
// before a plan binds to documents: the node test resolved against a
// document's dictionary, and the statistics-based Basic vs Loop-Lifted
// choice per index generation (the document/options token, so a rebuilt
// index for the same document stays warm). Both are resolved at first use
// and cached, with the table reset once it outgrows stepMemoLimit — a plan
// held across many document reload cycles must not pin every dead document
// tree its test-memo keys reference. A StepPlan is shared by every
// concurrent execution of its plan; use pointers, never copy one.
type StepPlan struct {
	Axis       xpath.Axis
	Test       xpath.Test
	Predicates []xqast.Expr
	// Fused marks a descendant step produced by merging the
	// descendant-or-self::node()/child::T pair (the // abbreviation) at
	// compile time.
	Fused bool
	// StandOff reports whether Axis is one of the four StandOff steps; SO
	// is only meaningful when it is.
	StandOff bool
	SO       SOStep

	tests       sync.Map // *tree.Doc -> xpath.Compiled
	nTests      atomic.Int32
	strategies  sync.Map // strategyKey -> *CostEstimate
	nStrategies atomic.Int32
	lastCost    atomic.Pointer[CostEstimate]
	// obsSel is the EWMA of the step's observed output selectivity
	// (rows out per context row), fed by EXPLAIN ANALYZE executions
	// (ExecStats.RecordStep). Stored as the float64 bits of
	// (1 + selectivity), so the zero value means "never observed" even when
	// the genuine selectivity is zero.
	obsSel atomic.Uint64
}

// stepMemoLimit bounds each StepPlan memo table. The memos are pure caches
// keyed by document / index pointers; resetting one merely costs a
// recompute, while letting it grow would keep every document a long-lived
// plan ever bound to reachable.
const stepMemoLimit = 128

// memoStore inserts into a memo table, resetting the table when it outgrows
// stepMemoLimit. A concurrent reset may drop a freshly stored entry — that
// only means one extra recompute later.
func memoStore(m *sync.Map, n *atomic.Int32, k, v any) {
	if n.Add(1) > stepMemoLimit {
		n.Store(0)
		m.Range(func(key, _ any) bool {
			m.Delete(key)
			return true
		})
	}
	m.Store(k, v)
}

// strategyKey memoizes the cost-model choice per (index generation, pushdown
// setting, context-cardinality band) triple: the candidate estimate differs
// when the name test is pushed down versus post-filtered, and the
// Basic-vs-Loop-Lifted crossover moves with the observed context
// cardinality, so executions in different cardinality bands re-decide.
// Keying on the generation token rather than the *RegionIndex identity means
// a rebuilt index for the same document under the same options hits the warm
// memo — the statistics are identical by construction — and the memo pins
// neither the document nor the index.
type strategyKey struct {
	gen      core.IndexGen
	pushdown bool
	band     uint8
	// cal is the calibration generation the decision was priced under: when
	// the ANALYZE feedback loop moves the calibrated setup cost a band, old
	// keys stop matching and the choice is re-priced instead of served
	// stale.
	cal uint32
}

// Streamability classifies how a step may execute as the final operator of a
// pipelined path: not at all, per context node (forward tree axes), or per
// context chunk through the StandOff join plus ordered dedup merge. The
// classification is static — the run time still has to check the conditions
// only it can see (disjoint context subtrees for StreamTree, a
// single-document node context for StreamChunked) and falls back to the bulk
// step when they fail.
type Streamability int

const (
	// StreamNone: the step materialises (predicates re-rank positions per
	// context group; reject steps are anti-joins over the whole context).
	StreamNone Streamability = iota
	// StreamTree: a forward tree axis whose per-node results stay inside
	// the context node's subtree — streams one context node at a time when
	// the context subtrees are disjoint.
	StreamTree
	// StreamChunked: a StandOff select step — the loop-lifted join runs per
	// chunk of context nodes and the chunk outputs merge through a
	// document-order heap with cross-chunk dedup, emission gated by the
	// candidate-interval watermark.
	StreamChunked
	// StreamChunkedReject: a StandOff reject step — an anti-join over the
	// whole context, so per-chunk results cannot merge directly; instead the
	// select-side join of each chunk marks matched candidates in a bitset
	// and one complement at the end emits the unmatched candidates in
	// document order. Blocking (first emission after the last chunk) but
	// memory-bounded: one bit per candidate plus one chunk's join state.
	StreamChunkedReject
)

func (s Streamability) String() string {
	switch s {
	case StreamTree:
		return "per-node"
	case StreamChunked:
		return "chunked"
	case StreamChunkedReject:
		return "chunked-reject"
	default:
		return "none"
	}
}

// Streamability returns the step's static streaming classification.
func (sp *StepPlan) Streamability() Streamability {
	if len(sp.Predicates) > 0 {
		return StreamNone
	}
	if sp.StandOff {
		if sp.Axis == xpath.AxisSelectNarrow || sp.Axis == xpath.AxisSelectWide {
			return StreamChunked
		}
		return StreamChunkedReject
	}
	switch sp.Axis {
	case xpath.AxisChild, xpath.AxisDescendant, xpath.AxisDescendantOrSelf,
		xpath.AxisSelf, xpath.AxisAttribute:
		return StreamTree
	default:
		return StreamNone
	}
}

// Program is the compiled step sequence of one path expression, with the //
// fusion applied (a Program can be shorter than the source step list).
type Program []*StepPlan

// NumStandOff returns how many StandOff steps the program contains.
func (pr Program) NumStandOff() int {
	n := 0
	for _, sp := range pr {
		if sp.StandOff {
			n++
		}
	}
	return n
}

// CompileStep compiles a single step. Compile uses it for every step of the
// module; the evaluator uses it for steps synthesised at run time (the
// so:select-narrow(...) function form).
func CompileStep(step *xqast.Step) *StepPlan {
	sp := &StepPlan{Axis: step.Axis, Test: step.Test, Predicates: step.Predicates}
	if step.Axis.StandOff() {
		sp.StandOff = true
		sp.SO = Decide(step)
	}
	return sp
}

// compileProgram compiles a path's step list, fusing each
// descendant-or-self::node()/child::T pair (both predicate-free) into a
// single descendant::T step so the subtree is never materialised node by
// node. This decision was previously re-made by the evaluator on every
// evaluation of the path.
func compileProgram(v *xqast.Path) Program {
	prog := make(Program, 0, len(v.Steps))
	for si := 0; si < len(v.Steps); si++ {
		step := v.Steps[si]
		if step.Axis == xpath.AxisDescendantOrSelf && step.Test.Kind == xpath.TestAnyNode &&
			len(step.Predicates) == 0 && si+1 < len(v.Steps) {
			next := v.Steps[si+1]
			if next.Axis == xpath.AxisChild && len(next.Predicates) == 0 {
				sp := CompileStep(&xqast.Step{Axis: xpath.AxisDescendant, Test: next.Test})
				sp.Fused = true
				prog = append(prog, sp)
				si++
				continue
			}
		}
		prog = append(prog, CompileStep(step))
	}
	return prog
}

// CompiledTest returns the step's node test resolved against d's dictionary,
// memoized per document so repeated executions of a cached plan skip the
// string lookup entirely.
func (sp *StepPlan) CompiledTest(d *tree.Doc) xpath.Compiled {
	if c, ok := sp.tests.Load(d); ok {
		return c.(xpath.Compiled)
	}
	c := xpath.Compile(d, sp.Test)
	memoStore(&sp.tests, &sp.nTests, d, c)
	return c
}

// StrategyFor resolves the Basic vs Loop-Lifted choice for this step against
// one region index and the context cardinality observed by the calling
// execution (iterations × context nodes — cost model v2's second input),
// memoized per (index generation, pushdown, cardinality band, calibration
// generation): plans can bind to documents loaded after Prepare, so the
// statistics-based choice happens at first execution rather than at compile
// time, and each execution's observed cardinality feeds back into the memo.
// cal may be nil (price with the static setup cost). The most recent
// estimate is retained for EXPLAIN (LastCost). Tree-axis steps never call
// this.
func (sp *StepPlan) StrategyFor(ix *core.RegionIndex, pushdown bool, ctxRows int, cal *Calibration) core.Strategy {
	k := strategyKey{gen: ix.Gen(), pushdown: pushdown, band: ctxBand(ctxRows), cal: cal.Gen()}
	if v, ok := sp.strategies.Load(k); ok {
		// Refresh the EXPLAIN record on warm hits too, so est{} always
		// describes the decision of the most recent execution, not of
		// whichever execution happened to miss the memo last. Compaction
		// folds an index's delta without bumping its generation (the memo
		// stays warm on purpose), so the delta counts are re-read from the
		// live index rather than served from the memoized record.
		ce := v.(*CostEstimate)
		if ins, del := ix.DeltaStats(); ins != ce.DeltaIns || del != ce.DeltaDead {
			cp := *ce
			cp.DeltaIns, cp.DeltaDead = ins, del
			sp.lastCost.Store(&cp)
		} else {
			sp.lastCost.Store(ce)
		}
		return ce.Strategy
	}
	ce := EstimateCost(sp.SO.Policy(pushdown), sp.SO.Name, ix, ctxRows, cal.SetupRows())
	if sel, ok := sp.ObservedSelectivity(); ok {
		// The feedback loop's output prediction: once ANALYZE has observed
		// the step, predicted output is selectivity × context rows rather
		// than the statistics upper bound.
		ce.EstOut = int(math.Round(sel * float64(ctxRows)))
	}
	sp.lastCost.Store(&ce)
	memoStore(&sp.strategies, &sp.nStrategies, k, &ce)
	return ce.Strategy
}

// Feedback-loop constants.
const (
	// selDriftFactor: when the observed selectivity drifts this far (in
	// either direction) from what the memoized estimate predicted, the
	// strategy memo is dropped so the next execution re-prices against
	// reality instead of serving a decision made from a stale prediction.
	selDriftFactor = 4
	// selMinRows: invocations below this many context rows are too noisy to
	// steer the feedback loop.
	selMinRows = 16
)

// ObservedSelectivity returns the EWMA of the step's observed output rows
// per context row; ok=false before the first ANALYZE observation.
func (sp *StepPlan) ObservedSelectivity() (float64, bool) {
	b := sp.obsSel.Load()
	if b == 0 {
		return 0, false
	}
	return math.Float64frombits(b) - 1, true
}

// observeOutput folds one invocation's output selectivity into the step's
// EWMA (the est-vs-obs feedback of EXPLAIN ANALYZE) and invalidates the
// strategy memo when the observation has drifted selDriftFactor away from
// the selectivity the memoized estimate predicted. Called by
// ExecStats.RecordStep, so only analyzed executions feed it.
func (sp *StepPlan) observeOutput(rowsIn, rowsOut int64) {
	if rowsIn < selMinRows {
		return
	}
	sel := float64(rowsOut) / float64(rowsIn)
	nv := sel
	if old, seen := sp.ObservedSelectivity(); seen {
		nv = 0.75*old + 0.25*sel
	}
	sp.obsSel.Store(math.Float64bits(1 + nv))
	ce := sp.lastCost.Load()
	if ce == nil || ce.CtxRows <= 0 || ce.EstOut <= 0 {
		return
	}
	pred := float64(ce.EstOut) / float64(ce.CtxRows)
	if nv > pred*selDriftFactor || nv < pred/selDriftFactor {
		driftInvalidations.Add(1)
		sp.invalidateStrategies()
	}
}

// driftInvalidations counts strategy-memo drops triggered by est-vs-obs
// selectivity drift, process-wide (memos live on shared plans, so a
// per-engine attribution would be arbitrary anyway). Scraped by the metrics
// registry.
var driftInvalidations atomic.Uint64

// DriftInvalidations returns the cumulative drift-triggered strategy-memo
// invalidation count.
func DriftInvalidations() uint64 { return driftInvalidations.Load() }

// invalidateStrategies drops every memoized strategy decision; the next
// execution re-prices with the current observed selectivity and calibrated
// setup cost.
func (sp *StepPlan) invalidateStrategies() {
	sp.nStrategies.Store(0)
	sp.strategies.Range(func(k, _ any) bool {
		sp.strategies.Delete(k)
		return true
	})
}

// LastCost returns the most recent cost-model estimate resolved for this
// step, or nil before the first auto-mode execution. A step that has
// executed against several indexes (or in several cardinality bands) reports
// the latest decision; ResolvedStrategies lists every distinct outcome.
func (sp *StepPlan) LastCost() *CostEstimate { return sp.lastCost.Load() }

// ResolvedStrategies returns the distinct strategies the cost model has
// chosen for this step so far (empty before the first auto-mode execution,
// or when every execution forced a strategy). Sorted ascending for
// deterministic EXPLAIN output.
func (sp *StepPlan) ResolvedStrategies() []core.Strategy {
	seen := map[core.Strategy]bool{}
	sp.strategies.Range(func(_, v any) bool {
		seen[v.(*CostEstimate).Strategy] = true
		return true
	})
	var out []core.Strategy
	for _, s := range []core.Strategy{core.StrategyNaive, core.StrategyBasic, core.StrategyLoopLifted} {
		if seen[s] {
			out = append(out, s)
		}
	}
	return out
}

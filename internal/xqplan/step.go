package xqplan

import (
	"sync"
	"sync/atomic"

	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xpath"
	"soxq/internal/xqast"
)

// StepPlan is the compiled form of one path step: the axis with the
// descendant-or-self::node()/child::T fusion already applied, the node test,
// the predicate list, and — for StandOff axes — the section 3.3 candidate
// policy plus the join-strategy choice. Everything statically knowable is
// decided here, once, at compile time; the evaluator consumes StepPlans
// without re-deriving any of it per evaluation.
//
// The two memo tables hold the per-document residue that cannot be decided
// before a plan binds to documents: the node test resolved against a
// document's dictionary, and the statistics-based Basic vs Loop-Lifted
// choice per index generation (the document/options token, so a rebuilt
// index for the same document stays warm). Both are resolved at first use
// and cached, with the table reset once it outgrows stepMemoLimit — a plan
// held across many document reload cycles must not pin every dead document
// tree its test-memo keys reference. A StepPlan is shared by every
// concurrent execution of its plan; use pointers, never copy one.
type StepPlan struct {
	Axis       xpath.Axis
	Test       xpath.Test
	Predicates []xqast.Expr
	// Fused marks a descendant step produced by merging the
	// descendant-or-self::node()/child::T pair (the // abbreviation) at
	// compile time.
	Fused bool
	// StandOff reports whether Axis is one of the four StandOff steps; SO
	// is only meaningful when it is.
	StandOff bool
	SO       SOStep

	tests       sync.Map // *tree.Doc -> xpath.Compiled
	nTests      atomic.Int32
	strategies  sync.Map // strategyKey -> core.Strategy
	nStrategies atomic.Int32
}

// stepMemoLimit bounds each StepPlan memo table. The memos are pure caches
// keyed by document / index pointers; resetting one merely costs a
// recompute, while letting it grow would keep every document a long-lived
// plan ever bound to reachable.
const stepMemoLimit = 128

// memoStore inserts into a memo table, resetting the table when it outgrows
// stepMemoLimit. A concurrent reset may drop a freshly stored entry — that
// only means one extra recompute later.
func memoStore(m *sync.Map, n *atomic.Int32, k, v any) {
	if n.Add(1) > stepMemoLimit {
		n.Store(0)
		m.Range(func(key, _ any) bool {
			m.Delete(key)
			return true
		})
	}
	m.Store(k, v)
}

// strategyKey memoizes the cost-model choice per (index generation, pushdown
// setting) pair: the candidate estimate differs when the name test is pushed
// down versus post-filtered. Keying on the generation token rather than the
// *RegionIndex identity means a rebuilt index for the same document under
// the same options hits the warm memo — the statistics are identical by
// construction — and the memo pins neither the document nor the index.
type strategyKey struct {
	gen      core.IndexGen
	pushdown bool
}

// Program is the compiled step sequence of one path expression, with the //
// fusion applied (a Program can be shorter than the source step list).
type Program []*StepPlan

// NumStandOff returns how many StandOff steps the program contains.
func (pr Program) NumStandOff() int {
	n := 0
	for _, sp := range pr {
		if sp.StandOff {
			n++
		}
	}
	return n
}

// CompileStep compiles a single step. Compile uses it for every step of the
// module; the evaluator uses it for steps synthesised at run time (the
// so:select-narrow(...) function form).
func CompileStep(step *xqast.Step) *StepPlan {
	sp := &StepPlan{Axis: step.Axis, Test: step.Test, Predicates: step.Predicates}
	if step.Axis.StandOff() {
		sp.StandOff = true
		sp.SO = Decide(step)
	}
	return sp
}

// compileProgram compiles a path's step list, fusing each
// descendant-or-self::node()/child::T pair (both predicate-free) into a
// single descendant::T step so the subtree is never materialised node by
// node. This decision was previously re-made by the evaluator on every
// evaluation of the path.
func compileProgram(v *xqast.Path) Program {
	prog := make(Program, 0, len(v.Steps))
	for si := 0; si < len(v.Steps); si++ {
		step := v.Steps[si]
		if step.Axis == xpath.AxisDescendantOrSelf && step.Test.Kind == xpath.TestAnyNode &&
			len(step.Predicates) == 0 && si+1 < len(v.Steps) {
			next := v.Steps[si+1]
			if next.Axis == xpath.AxisChild && len(next.Predicates) == 0 {
				sp := CompileStep(&xqast.Step{Axis: xpath.AxisDescendant, Test: next.Test})
				sp.Fused = true
				prog = append(prog, sp)
				si++
				continue
			}
		}
		prog = append(prog, CompileStep(step))
	}
	return prog
}

// CompiledTest returns the step's node test resolved against d's dictionary,
// memoized per document so repeated executions of a cached plan skip the
// string lookup entirely.
func (sp *StepPlan) CompiledTest(d *tree.Doc) xpath.Compiled {
	if c, ok := sp.tests.Load(d); ok {
		return c.(xpath.Compiled)
	}
	c := xpath.Compile(d, sp.Test)
	memoStore(&sp.tests, &sp.nTests, d, c)
	return c
}

// basicCandidateCutoff is the cost-model threshold: with at most this many
// candidate areas, the Basic StandOff MergeJoin's per-iteration rescan is
// cheaper than the Loop-Lifted variant's cross-iteration machinery
// (pseudo-key bookkeeping, counting sort and dedup over all iterations at
// once). Beyond it, rescanning per iteration is what makes XMark Q2 DNF in
// the paper's Figure 6, and Loop-Lifted wins.
const basicCandidateCutoff = 64

// StrategyFor resolves the Basic vs Loop-Lifted choice for this step against
// one region index, memoized per (index, pushdown) pair: plans can bind to
// documents loaded after Prepare, so the statistics-based choice happens at
// first execution rather than at compile time. Tree-axis steps never call
// this.
func (sp *StepPlan) StrategyFor(ix *core.RegionIndex, pushdown bool) core.Strategy {
	k := strategyKey{gen: ix.Gen(), pushdown: pushdown}
	if v, ok := sp.strategies.Load(k); ok {
		return v.(core.Strategy)
	}
	s := chooseStrategy(sp.SO.Policy(pushdown), sp.SO.Name, ix)
	memoStore(&sp.strategies, &sp.nStrategies, k, s)
	return s
}

// chooseStrategy is the cost model: estimate the candidate cardinality of
// the step from the index statistics and pick the join variant. With a
// pushed-down name test the estimate is the per-tag element cardinality from
// the tree dictionary (an upper bound on the candidate areas); otherwise it
// is the full area count.
func chooseStrategy(policy CandPolicy, name string, ix *core.RegionIndex) core.Strategy {
	st := ix.Stats()
	est := st.Areas
	if policy == CandByName {
		if card := st.Card(name); card < est {
			est = card
		}
	}
	if est <= basicCandidateCutoff {
		return core.StrategyBasic
	}
	return core.StrategyLoopLifted
}

// ResolvedStrategies returns the distinct strategies the cost model has
// chosen for this step so far (empty before the first auto-mode execution,
// or when every execution forced a strategy). Sorted ascending for
// deterministic EXPLAIN output.
func (sp *StepPlan) ResolvedStrategies() []core.Strategy {
	seen := map[core.Strategy]bool{}
	sp.strategies.Range(func(_, v any) bool {
		seen[v.(core.Strategy)] = true
		return true
	})
	var out []core.Strategy
	for _, s := range []core.Strategy{core.StrategyNaive, core.StrategyBasic, core.StrategyLoopLifted} {
		if seen[s] {
			out = append(out, s)
		}
	}
	return out
}

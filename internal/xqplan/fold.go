package xqplan

import (
	"math"
	"strconv"
	"strings"

	"soxq/internal/xqast"
)

// This file holds the constant-folding rules applied by Plan.pass (plan.go):
// arithmetic and unary minus over numeric literals, string concatenation
// over string literals, and/or with literal operands, and dead-branch
// elimination of if with a literal condition. Folding reproduces the
// evaluator's semantics exactly and leaves anything that would raise a
// dynamic error — division by zero, for example — unfolded so errors still
// surface at run time. The one sanctioned exception: a logical expression
// whose result is decided by one literal operand (false and E, true or E)
// folds to that result even though E might raise an error; XQuery section
// 3.6 explicitly allows a processor to not evaluate the other operand.

// numLit extracts a numeric literal value.
func numLit(e xqast.Expr) (i int64, f float64, isInt, ok bool) {
	switch v := e.(type) {
	case *xqast.IntLit:
		return v.V, float64(v.V), true, true
	case *xqast.FloatLit:
		return 0, v.V, false, true
	}
	return 0, 0, false, false
}

// foldArith folds a binary arithmetic operator over two numeric literals.
func foldArith(v *xqast.Binary) (xqast.Expr, bool) {
	switch v.Op {
	case "+", "-", "*", "div", "idiv", "mod":
	default:
		return nil, false
	}
	li, lf, lInt, ok := numLit(v.L)
	if !ok {
		return nil, false
	}
	ri, rf, rInt, ok := numLit(v.R)
	if !ok {
		return nil, false
	}
	// Integer fast path, mirroring the evaluator: div always yields a
	// double; zero divisors are left for the runtime to report.
	if lInt && rInt && v.Op != "div" {
		switch v.Op {
		case "+":
			return &xqast.IntLit{V: li + ri}, true
		case "-":
			return &xqast.IntLit{V: li - ri}, true
		case "*":
			return &xqast.IntLit{V: li * ri}, true
		case "idiv":
			if ri == 0 {
				return nil, false
			}
			return &xqast.IntLit{V: li / ri}, true
		case "mod":
			if ri == 0 {
				return nil, false
			}
			return &xqast.IntLit{V: li % ri}, true
		}
	}
	if rf == 0 && (v.Op == "div" || v.Op == "idiv" || v.Op == "mod") {
		return nil, false
	}
	switch v.Op {
	case "+":
		return &xqast.FloatLit{V: lf + rf}, true
	case "-":
		return &xqast.FloatLit{V: lf - rf}, true
	case "*":
		return &xqast.FloatLit{V: lf * rf}, true
	case "div":
		return &xqast.FloatLit{V: lf / rf}, true
	case "idiv":
		return &xqast.IntLit{V: int64(lf / rf)}, true
	case "mod":
		return &xqast.FloatLit{V: math.Mod(lf, rf)}, true
	}
	return nil, false
}

// foldUnary folds unary plus/minus over a numeric literal.
func foldUnary(v *xqast.Unary) (xqast.Expr, bool) {
	i, f, isInt, ok := numLit(v.X)
	if !ok {
		return nil, false
	}
	if !v.Neg {
		return v.X, true
	}
	if isInt {
		return &xqast.IntLit{V: -i}, true
	}
	return &xqast.FloatLit{V: -f}, true
}

// localName strips an optional namespace prefix.
func localName(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// litEBV computes the effective boolean value of a literal expression:
// string/number literals, the empty sequence, and true()/false() calls (the
// AST has no boolean literal — the parser emits the function form). Calls
// only count when the name is not shadowed by a user declaration, matching
// the evaluator's UDF-first dispatch.
func (p *Plan) litEBV(e xqast.Expr) (val, ok bool) {
	switch v := e.(type) {
	case *xqast.StringLit:
		return v.V != "", true
	case *xqast.IntLit:
		return v.V != 0, true
	case *xqast.FloatLit:
		return v.V != 0 && !math.IsNaN(v.V), true
	case *xqast.EmptySeq:
		return false, true
	case *xqast.FuncCall:
		if len(v.Args) != 0 || p.shadowed(v.Name, 0) {
			return false, false
		}
		switch localName(v.Name) {
		case "true":
			return true, true
		case "false":
			return false, true
		}
	}
	return false, false
}

// shadowed reports whether a user-declared function hides the built-in of
// the same name and arity (the evaluator resolves UDFs first on the exact
// QName, so folding the built-in semantics would be wrong).
func (p *Plan) shadowed(name string, arity int) bool {
	_, ok := p.funcs[FuncKey(name, arity)]
	return ok
}

// boolExpr builds a true()/false() call, the AST's boolean literal form.
// ok is false when the name is shadowed by a user declaration.
func (p *Plan) boolExpr(v bool) (xqast.Expr, bool) {
	name := "false"
	if v {
		name = "true"
	}
	if p.shadowed(name, 0) {
		return nil, false
	}
	return &xqast.FuncCall{Name: name}, true
}

// booleanCall wraps e in fn:boolean so a half-folded logical expression
// (true() and E) keeps returning a boolean, not E's value. When E already
// yields a single boolean the wrapper would be redundant (the rewrite
// foldBooleanWrap undoes), so none is added.
func (p *Plan) booleanCall(e xqast.Expr) (xqast.Expr, bool) {
	if p.staticBoolean(e) {
		return e, true
	}
	if p.shadowed("boolean", 1) {
		return nil, false
	}
	return &xqast.FuncCall{Name: "boolean", Args: []xqast.Expr{e}}, true
}

// foldLogical folds and/or when at least one operand is a literal: both
// literal folds fully; a deciding literal (false and E, true or E)
// short-circuits; a neutral literal (true and E, false or E) reduces to
// boolean(E).
func (p *Plan) foldLogical(v *xqast.Binary) (xqast.Expr, bool) {
	and := v.Op == "and"
	lv, lok := p.litEBV(v.L)
	rv, rok := p.litEBV(v.R)
	switch {
	case lok && rok:
		if and {
			return p.boolExpr(lv && rv)
		}
		return p.boolExpr(lv || rv)
	case lok:
		if lv != and { // false and E | true or E: decided, E discarded
			if folded, ok := p.boolExpr(lv); ok {
				p.prune(v.R)
				return folded, true
			}
			return nil, false
		}
		return p.booleanCall(v.R) // true and E | false or E
	case rok:
		if rv != and {
			if folded, ok := p.boolExpr(rv); ok {
				p.prune(v.L)
				return folded, true
			}
			return nil, false
		}
		return p.booleanCall(v.L)
	}
	return nil, false
}

// compFoldOps maps the foldable comparison operators to their general-
// comparison form (value comparisons on singleton literals behave
// identically — a literal operand is never empty and never a sequence).
var compFoldOps = map[string]string{
	"=": "=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
	"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}

// foldComparison folds a general or value comparison over two literals when
// both are numeric (numeric comparison, as the evaluator would) or both are
// string literals (codepoint string comparison). Mixed literal kinds are
// left to the runtime: their semantics route through string-value rendering,
// which folding must not re-implement.
func (p *Plan) foldComparison(v *xqast.Binary) (xqast.Expr, bool) {
	op, foldable := compFoldOps[v.Op]
	if !foldable {
		return nil, false
	}
	_, lf, _, lNum := numLit(v.L)
	_, rf, _, rNum := numLit(v.R)
	var res bool
	switch {
	case lNum && rNum:
		res = numCompareFold(op, lf, rf)
	default:
		ls, lok := v.L.(*xqast.StringLit)
		rs, rok := v.R.(*xqast.StringLit)
		if !lok || !rok {
			return nil, false
		}
		res = cmpResultFold(op, strings.Compare(ls.V, rs.V))
	}
	return p.boolExpr(res)
}

func numCompareFold(op string, x, y float64) bool {
	switch op {
	case "=":
		return x == y
	case "!=":
		return x != y
	case "<":
		return x < y
	case "<=":
		return x <= y
	case ">":
		return x > y
	default:
		return x >= y
	}
}

func cmpResultFold(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default:
		return c >= 0
	}
}

// staticBoolean reports whether an expression statically yields exactly one
// xs:boolean per iteration, making a boolean() wrapper around it redundant.
// Value comparisons are excluded: an empty operand makes them empty, which
// boolean() would turn into false.
func (p *Plan) staticBoolean(e xqast.Expr) bool {
	switch v := e.(type) {
	case *xqast.Binary:
		switch v.Op {
		case "and", "or", "=", "!=", "<", "<=", ">", ">=":
			return true
		}
	case *xqast.Quantified:
		return true
	case *xqast.FuncCall:
		if p.shadowed(v.Name, len(v.Args)) {
			return false
		}
		switch localName(v.Name) {
		case "true", "false":
			return len(v.Args) == 0
		case "not", "boolean", "empty", "exists":
			return len(v.Args) == 1
		}
	}
	return false
}

// foldBooleanWrap drops a redundant fn:boolean wrapper: boolean(E) == E
// whenever E already yields a single boolean. The half-folded logical
// rewrites (true and E -> boolean(E)) produce exactly these wrappers, so
// this fold cleans up after foldLogical when E is itself a predicate-shaped
// expression.
func (p *Plan) foldBooleanWrap(v *xqast.FuncCall) (xqast.Expr, bool) {
	if localName(v.Name) != "boolean" || len(v.Args) != 1 || p.shadowed(v.Name, 1) {
		return nil, false
	}
	if bv, ok := p.litEBV(v.Args[0]); ok { // boolean(literal) folds outright
		return p.boolExpr(bv)
	}
	if !p.staticBoolean(v.Args[0]) {
		return nil, false
	}
	return v.Args[0], true
}

// foldStringNumber folds fn:string and fn:number over a single literal
// argument, reproducing the evaluator's conversions exactly: integers render
// via FormatInt, doubles via the XPath float rendering (no trailing ".0",
// NaN/INF spelled out), and fn:number parses through the same
// TrimSpace+ParseFloat route the runtime uses, yielding NaN for
// unparseable strings. The zero-argument context-item forms are left to the
// runtime.
func (p *Plan) foldStringNumber(v *xqast.FuncCall) (xqast.Expr, bool) {
	if len(v.Args) != 1 || p.shadowed(v.Name, 1) {
		return nil, false
	}
	switch localName(v.Name) {
	case "string":
		switch a := v.Args[0].(type) {
		case *xqast.StringLit:
			return a, true
		case *xqast.IntLit:
			return &xqast.StringLit{V: strconv.FormatInt(a.V, 10)}, true
		case *xqast.FloatLit:
			return &xqast.StringLit{V: formatFoldedFloat(a.V)}, true
		}
	case "number":
		switch a := v.Args[0].(type) {
		case *xqast.FloatLit:
			return a, true
		case *xqast.IntLit:
			// fn:number returns xs:double; an integer literal widens.
			return &xqast.FloatLit{V: float64(a.V)}, true
		case *xqast.StringLit:
			f, err := strconv.ParseFloat(strings.TrimSpace(a.V), 64)
			if err != nil {
				f = math.NaN()
			}
			return &xqast.FloatLit{V: f}, true
		}
	}
	return nil, false
}

// formatFoldedFloat renders a double the way Item.StringValue does (kept in
// sync with xqeval's formatFloat): integral values without exponent or
// trailing ".0", NaN/INF spelled the XPath way.
func formatFoldedFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'G', -1, 64)
	}
}

// foldConcat folds fn:concat over all-literal string arguments.
func (p *Plan) foldConcat(v *xqast.FuncCall) (xqast.Expr, bool) {
	if localName(v.Name) != "concat" || len(v.Args) < 2 || p.shadowed(v.Name, len(v.Args)) {
		return nil, false
	}
	var sb strings.Builder
	for _, a := range v.Args {
		s, ok := a.(*xqast.StringLit)
		if !ok {
			return nil, false
		}
		sb.WriteString(s.V)
	}
	return &xqast.StringLit{V: sb.String()}, true
}

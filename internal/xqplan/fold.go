package xqplan

import (
	"math"

	"soxq/internal/xqast"
)

// fold rewrites an expression with constant subexpressions evaluated:
// arithmetic and unary minus over numeric literals. Folding reproduces the
// evaluator's semantics exactly (integer ops stay integers, div always
// yields a double) and leaves anything that would raise a dynamic error —
// division by zero, for example — unfolded so errors still surface at run
// time. Child expressions of every container are folded in place.
func fold(e xqast.Expr) xqast.Expr {
	switch v := e.(type) {
	case *xqast.FLWOR:
		for _, cl := range v.Clauses {
			switch c := cl.(type) {
			case *xqast.ForClause:
				c.Seq = fold(c.Seq)
			case *xqast.LetClause:
				c.Seq = fold(c.Seq)
			}
		}
		if v.Where != nil {
			v.Where = fold(v.Where)
		}
		for i := range v.OrderBy {
			v.OrderBy[i].Key = fold(v.OrderBy[i].Key)
		}
		v.Return = fold(v.Return)
	case *xqast.Quantified:
		v.Seq = fold(v.Seq)
		v.Satisfies = fold(v.Satisfies)
	case *xqast.IfExpr:
		v.Cond = fold(v.Cond)
		v.Then = fold(v.Then)
		v.Else = fold(v.Else)
	case *xqast.Binary:
		v.L = fold(v.L)
		v.R = fold(v.R)
		if folded, ok := foldArith(v); ok {
			return folded
		}
	case *xqast.Unary:
		v.X = fold(v.X)
		if folded, ok := foldUnary(v); ok {
			return folded
		}
	case *xqast.Path:
		if v.Start != nil {
			v.Start = fold(v.Start)
		}
		for _, step := range v.Steps {
			for i := range step.Predicates {
				step.Predicates[i] = fold(step.Predicates[i])
			}
		}
	case *xqast.Filter:
		v.Base = fold(v.Base)
		for i := range v.Predicates {
			v.Predicates[i] = fold(v.Predicates[i])
		}
	case *xqast.FuncCall:
		for i := range v.Args {
			v.Args[i] = fold(v.Args[i])
		}
	case *xqast.DirectElem:
		for ai := range v.Attrs {
			for i := range v.Attrs[ai].Value {
				v.Attrs[ai].Value[i] = fold(v.Attrs[ai].Value[i])
			}
		}
		for i := range v.Content {
			v.Content[i] = fold(v.Content[i])
		}
	case *xqast.Enclosed:
		v.X = fold(v.X)
	case *xqast.ComputedElem:
		if v.NameExpr != nil {
			v.NameExpr = fold(v.NameExpr)
		}
		v.Content = fold(v.Content)
	case *xqast.ComputedAttr:
		if v.NameExpr != nil {
			v.NameExpr = fold(v.NameExpr)
		}
		v.Content = fold(v.Content)
	case *xqast.ComputedText:
		v.Content = fold(v.Content)
	}
	return e
}

// numLit extracts a numeric literal value.
func numLit(e xqast.Expr) (i int64, f float64, isInt, ok bool) {
	switch v := e.(type) {
	case *xqast.IntLit:
		return v.V, float64(v.V), true, true
	case *xqast.FloatLit:
		return 0, v.V, false, true
	}
	return 0, 0, false, false
}

// foldArith folds a binary arithmetic operator over two numeric literals.
func foldArith(v *xqast.Binary) (xqast.Expr, bool) {
	switch v.Op {
	case "+", "-", "*", "div", "idiv", "mod":
	default:
		return nil, false
	}
	li, lf, lInt, ok := numLit(v.L)
	if !ok {
		return nil, false
	}
	ri, rf, rInt, ok := numLit(v.R)
	if !ok {
		return nil, false
	}
	// Integer fast path, mirroring the evaluator: div always yields a
	// double; zero divisors are left for the runtime to report.
	if lInt && rInt && v.Op != "div" {
		switch v.Op {
		case "+":
			return &xqast.IntLit{V: li + ri}, true
		case "-":
			return &xqast.IntLit{V: li - ri}, true
		case "*":
			return &xqast.IntLit{V: li * ri}, true
		case "idiv":
			if ri == 0 {
				return nil, false
			}
			return &xqast.IntLit{V: li / ri}, true
		case "mod":
			if ri == 0 {
				return nil, false
			}
			return &xqast.IntLit{V: li % ri}, true
		}
	}
	if rf == 0 && (v.Op == "div" || v.Op == "idiv" || v.Op == "mod") {
		return nil, false
	}
	switch v.Op {
	case "+":
		return &xqast.FloatLit{V: lf + rf}, true
	case "-":
		return &xqast.FloatLit{V: lf - rf}, true
	case "*":
		return &xqast.FloatLit{V: lf * rf}, true
	case "div":
		return &xqast.FloatLit{V: lf / rf}, true
	case "idiv":
		return &xqast.IntLit{V: int64(lf / rf)}, true
	case "mod":
		return &xqast.FloatLit{V: math.Mod(lf, rf)}, true
	}
	return nil, false
}

// foldUnary folds unary plus/minus over a numeric literal.
func foldUnary(v *xqast.Unary) (xqast.Expr, bool) {
	i, f, isInt, ok := numLit(v.X)
	if !ok {
		return nil, false
	}
	if !v.Neg {
		return v.X, true
	}
	if isInt {
		return &xqast.IntLit{V: -i}, true
	}
	return &xqast.FloatLit{V: -f}, true
}

package xqplan

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"soxq/internal/core"
	"soxq/internal/xqast"
)

// ExecStats collects the per-operator runtime counters behind EXPLAIN
// ANALYZE: rows in and out per compiled step, candidates scanned and join
// algorithm actually run per StandOff join, tuple/chunk counts per FLWOR,
// and row counts for the structural operators (paths, filters). One
// ExecStats describes ONE execution — the engine creates a fresh collector
// per analyzed run and hands it to the evaluator; the plan itself stays
// immutable and shareable.
//
// All record methods are safe on a nil receiver (a no-op), so the hot paths
// carry a single nil check per operator, and safe for concurrent use — the
// parallel FLWOR workers of one execution share the collector.
type ExecStats struct {
	mu    sync.Mutex
	steps map[*StepPlan]*StepObs
	ops   map[xqast.Expr]*OpObs

	// Cal, when set, receives every timed join observation this collector
	// records — the engine hangs its engine-wide Calibration here, so
	// analyzed executions feed the cost model's setup-cost feedback loop.
	Cal *Calibration
}

// NewExecStats returns an empty collector for one execution.
func NewExecStats() *ExecStats {
	return &ExecStats{steps: map[*StepPlan]*StepObs{}, ops: map[xqast.Expr]*OpObs{}}
}

// StepObs aggregates the observed counters of one compiled step across its
// invocations within a single execution (a step inside a nested loop body
// is invoked once per outer evaluation; counts accumulate).
type StepObs struct {
	// Invocations is how many times the step executed.
	Invocations int64
	// RowsIn is the total context rows fed to the step (iterations ×
	// context nodes, the cost model's ctxRows).
	RowsIn int64
	// RowsOut is the total result rows the step produced, after
	// predicates and per-iteration dedup.
	RowsOut int64
	// Candidates is the total candidate-area cardinality the step's
	// StandOff joins consumed (one candidate-sequence length per join
	// invocation; zero for tree-axis steps).
	Candidates int64
	// Joins counts StandOff join invocations per algorithm actually run —
	// the observed counterpart of the plan's chosen strategy (a forced
	// mode shows up here even though the memoized choice stays untouched).
	Joins map[core.Strategy]int64
	// JoinRows and JoinNanos total the context rows and the wall time of
	// the step's StandOff joins (joins are timed only under ANALYZE); they
	// are what the setup-cost calibration consumes.
	JoinRows  int64
	JoinNanos int64
	// StreamChunks, ChunkMin and ChunkMax describe a chunk-streamed run of
	// the step: how many chunk refills executed and the smallest/largest
	// chunk size the adaptive sizing used (zero when the step ran in bulk).
	StreamChunks int64
	ChunkMin     int
	ChunkMax     int
}

// OpObs aggregates the observed counters of one structural operator (FLWOR,
// path, filter) within a single execution.
type OpObs struct {
	// Invocations is how many times the operator was evaluated.
	Invocations int64
	// RowsIn is operator-specific: FLWOR tuples after clause expansion
	// (before where), filter input rows. Zero for paths.
	RowsIn int64
	// RowsOut is the total result items produced.
	RowsOut int64
	// Chunks is how many pipeline chunks a streamed FLWOR evaluated; zero
	// when the operator ran through the materialising path.
	Chunks int64
}

// RecordStep accumulates one step invocation's row counts and feeds the
// observed output selectivity back into the plan's feedback loop.
func (s *ExecStats) RecordStep(sp *StepPlan, rowsIn, rowsOut int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	o := s.steps[sp]
	if o == nil {
		o = &StepObs{}
		s.steps[sp] = o
	}
	o.Invocations++
	o.RowsIn += rowsIn
	o.RowsOut += rowsOut
	s.mu.Unlock()
	sp.observeOutput(rowsIn, rowsOut)
}

// RecordJoin accumulates one StandOff join invocation — the candidate
// cardinality it scanned, the algorithm that actually ran, the context rows
// it joined, and its wall time — and forwards the timing to the engine's
// setup-cost calibration when one is attached.
func (s *ExecStats) RecordJoin(sp *StepPlan, candidates int64, strat core.Strategy, ctxRows, nanos int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	o := s.steps[sp]
	if o == nil {
		o = &StepObs{}
		s.steps[sp] = o
	}
	o.Candidates += candidates
	if o.Joins == nil {
		o.Joins = map[core.Strategy]int64{}
	}
	o.Joins[strat]++
	o.JoinRows += ctxRows
	o.JoinNanos += nanos
	s.mu.Unlock()
	s.Cal.ObserveJoin(strat, int(ctxRows), int(candidates), nanos)
}

// RecordStepStream accumulates the chunk counters of one chunk-streamed run
// of a step: refills executed and the adaptive chunk-size extremes.
func (s *ExecStats) RecordStepStream(sp *StepPlan, chunks int64, chunkMin, chunkMax int) {
	if s == nil || chunks == 0 {
		return
	}
	s.mu.Lock()
	o := s.steps[sp]
	if o == nil {
		o = &StepObs{}
		s.steps[sp] = o
	}
	o.StreamChunks += chunks
	if o.ChunkMin == 0 || (chunkMin > 0 && chunkMin < o.ChunkMin) {
		o.ChunkMin = chunkMin
	}
	if chunkMax > o.ChunkMax {
		o.ChunkMax = chunkMax
	}
	s.mu.Unlock()
}

// RecordOp accumulates one evaluation of a structural operator.
func (s *ExecStats) RecordOp(e xqast.Expr, rowsIn, rowsOut int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	o := s.op(e)
	o.Invocations++
	o.RowsIn += rowsIn
	o.RowsOut += rowsOut
	s.mu.Unlock()
}

// RecordChunk accumulates one streamed FLWOR chunk: the tuples it bound and
// the items it produced. Chunked evaluations count rows here instead of
// RecordOp, so streamed and materialised totals stay comparable.
func (s *ExecStats) RecordChunk(e xqast.Expr, tuples, rowsOut int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	o := s.op(e)
	o.Chunks++
	o.RowsIn += tuples
	o.RowsOut += rowsOut
	s.mu.Unlock()
}

// op returns (creating if needed) the operator entry. Callers hold mu.
func (s *ExecStats) op(e xqast.Expr) *OpObs {
	o := s.ops[e]
	if o == nil {
		o = &OpObs{}
		s.ops[e] = o
	}
	return o
}

// StepObs returns a copy of the step's observed counters (ok=false when the
// step never executed under this collector).
func (s *ExecStats) StepObs(sp *StepPlan) (StepObs, bool) {
	if s == nil {
		return StepObs{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.steps[sp]
	if o == nil {
		return StepObs{}, false
	}
	out := *o
	if o.Joins != nil {
		out.Joins = make(map[core.Strategy]int64, len(o.Joins))
		for k, v := range o.Joins {
			out.Joins[k] = v
		}
	}
	return out, true
}

// JoinsString renders the observed join algorithms as "name:count" pairs in
// ascending strategy order, e.g. "basic:1" or "basic:1,looplifted:3" — the
// single source for both the internal plan labels and the public explain.
func (o *StepObs) JoinsString() string {
	if len(o.Joins) == 0 {
		return ""
	}
	strats := make([]core.Strategy, 0, len(o.Joins))
	for k := range o.Joins {
		strats = append(strats, k)
	}
	sort.Slice(strats, func(i, j int) bool { return strats[i] < strats[j] })
	parts := make([]string, len(strats))
	for i, k := range strats {
		parts[i] = fmt.Sprintf("%s:%d", k, o.Joins[k])
	}
	return strings.Join(parts, ",")
}

// OpObs returns a copy of a structural operator's observed counters
// (ok=false when the operator never executed under this collector).
func (s *ExecStats) OpObs(e xqast.Expr) (OpObs, bool) {
	if s == nil {
		return OpObs{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.ops[e]
	if o == nil {
		return OpObs{}, false
	}
	return *o, true
}

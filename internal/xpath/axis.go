// Package xpath evaluates XPath axis steps over the shredded document store:
// the twelve standard tree axes plus the identification of the four StandOff
// axes this paper adds (their evaluation lives in internal/core; this
// package owns the Axis vocabulary). Descendant steps can run either
// per-context-node through the element-name index or as a loop-lifted
// staircase join, the algorithm family the paper benchmarks StandOff
// MergeJoin against.
package xpath

import (
	"fmt"

	"soxq/internal/tree"
)

// Axis enumerates the XPath axes, including the four new StandOff axis
// steps proposed in section 3.3 of the paper.
type Axis int

const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisAttribute
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisFollowing
	AxisPrecedingSibling
	AxisPreceding
	// The StandOff axes (section 3.3).
	AxisSelectNarrow
	AxisSelectWide
	AxisRejectNarrow
	AxisRejectWide
)

var axisNames = map[Axis]string{
	AxisChild: "child", AxisDescendant: "descendant",
	AxisDescendantOrSelf: "descendant-or-self", AxisSelf: "self",
	AxisAttribute: "attribute", AxisParent: "parent",
	AxisAncestor: "ancestor", AxisAncestorOrSelf: "ancestor-or-self",
	AxisFollowingSibling: "following-sibling", AxisFollowing: "following",
	AxisPrecedingSibling: "preceding-sibling", AxisPreceding: "preceding",
	AxisSelectNarrow: "select-narrow", AxisSelectWide: "select-wide",
	AxisRejectNarrow: "reject-narrow", AxisRejectWide: "reject-wide",
}

func (a Axis) String() string {
	if s, ok := axisNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// ParseAxis resolves an axis name as written in a query ("child",
// "select-narrow", ...).
func ParseAxis(name string) (Axis, bool) {
	for a, s := range axisNames {
		if s == name {
			return a, true
		}
	}
	return 0, false
}

// StandOff reports whether the axis is one of the four StandOff steps.
func (a Axis) StandOff() bool {
	return a >= AxisSelectNarrow && a <= AxisRejectWide
}

// Reverse reports whether the axis is a reverse axis (positional predicates
// count backwards from the context node).
func (a Axis) Reverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisPrecedingSibling, AxisPreceding:
		return true
	}
	return false
}

// TestKind classifies a node test.
type TestKind int

const (
	// TestAnyNode is node(): any node kind.
	TestAnyNode TestKind = iota
	// TestElement is a name test or element()/ *.
	TestElement
	// TestText is text().
	TestText
	// TestComment is comment().
	TestComment
	// TestPI is processing-instruction() with optional target.
	TestPI
	// TestDocument is document-node().
	TestDocument
	// TestAttribute is used on the attribute axis: name test or *.
	TestAttribute
)

// Test is a node test: a kind plus an optional name ("" is a wildcard).
type Test struct {
	Kind TestKind
	Name string
}

// NameTest builds the common element name test.
func NameTest(name string) Test { return Test{Kind: TestElement, Name: name} }

// AnyElement matches element(*).
var AnyElement = Test{Kind: TestElement}

func (t Test) String() string {
	switch t.Kind {
	case TestAnyNode:
		return "node()"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	case TestPI:
		if t.Name != "" {
			return "processing-instruction(" + t.Name + ")"
		}
		return "processing-instruction()"
	case TestDocument:
		return "document-node()"
	default:
		if t.Name == "" {
			return "*"
		}
		return t.Name
	}
}

// Compiled is a Test resolved against one document's dictionary so the hot
// loops compare int32 name ids instead of strings.
type Compiled struct {
	kind   TestKind
	nameID int32 // -1 = wildcard, -2 = name absent from the document
}

// Compile resolves t against d.
func Compile(d *tree.Doc, t Test) Compiled {
	c := Compiled{kind: t.Kind, nameID: -1}
	if t.Name != "" {
		if id, ok := d.Dict().Lookup(t.Name); ok {
			c.nameID = id
		} else {
			c.nameID = -2
		}
	}
	return c
}

// Matches reports whether node pre passes the test.
func (c Compiled) Matches(d *tree.Doc, pre int32) bool {
	// Tombstoned nodes (annotation deletes) never match any test. Scanning
	// axes route every candidate through here, so this single check hides
	// deleted subtrees from evaluation; parent/ancestor moves from a live node
	// need no check because tombstones always cover whole subtrees.
	if !d.Alive(pre) {
		return false
	}
	switch c.kind {
	case TestAnyNode:
		return true
	case TestElement:
		return d.Kind(pre) == tree.ElementNode && (c.nameID == -1 || d.NameID(pre) == c.nameID)
	case TestText:
		return d.Kind(pre) == tree.TextNode
	case TestComment:
		return d.Kind(pre) == tree.CommentNode
	case TestPI:
		return d.Kind(pre) == tree.PINode && (c.nameID == -1 || d.NameID(pre) == c.nameID)
	case TestDocument:
		return d.Kind(pre) == tree.DocumentNode
	default:
		return false
	}
}

// isElementNameTest reports whether the compiled test is an element name
// test that can use the element-name index.
func (c Compiled) isElementNameTest() bool {
	return c.kind == TestElement && c.nameID >= 0
}

// Step returns the result of one axis step from a single context node, in
// document order. The attribute axis and the StandOff axes are evaluated
// elsewhere (they do not return tree nodes resp. need the region index);
// calling Step with them panics, which would be an evaluator bug.
func Step(d *tree.Doc, axis Axis, test Test, pre int32) []int32 {
	return CompiledStep(d, axis, Compile(d, test), pre)
}

// CompiledStep is Step with a pre-compiled test. A descendant name test
// returns a slice of the element-name index directly — zero-copy, so callers
// must treat the result as read-only.
func CompiledStep(d *tree.Doc, axis Axis, c Compiled, pre int32) []int32 {
	if axis == AxisDescendant && c.isElementNameTest() {
		return indexRange(d, c.nameID, pre+1, pre+d.Size(pre))
	}
	return AppendCompiledStep(nil, d, axis, c, pre)
}

// AppendCompiledStep appends the step result to dst and returns the extended
// slice — the allocation-free form of CompiledStep for hot loops that
// evaluate one step over many context nodes into a recycled buffer.
func AppendCompiledStep(dst []int32, d *tree.Doc, axis Axis, c Compiled, pre int32) []int32 {
	switch axis {
	case AxisChild:
		for ch := d.FirstChild(pre); ch >= 0; ch = d.NextSibling(ch) {
			if c.Matches(d, ch) {
				dst = append(dst, ch)
			}
		}
	case AxisDescendant:
		dst = appendDescendants(dst, d, c, pre, false)
	case AxisDescendantOrSelf:
		dst = appendDescendants(dst, d, c, pre, true)
	case AxisSelf:
		if c.Matches(d, pre) {
			dst = append(dst, pre)
		}
	case AxisParent:
		if p := d.Parent(pre); p >= 0 && c.Matches(d, p) {
			dst = append(dst, p)
		}
	case AxisAncestor, AxisAncestorOrSelf:
		start := d.Parent(pre)
		if axis == AxisAncestorOrSelf {
			start = pre
		}
		mark := len(dst)
		for p := start; p >= 0; p = d.Parent(p) {
			if c.Matches(d, p) {
				dst = append(dst, p)
			}
		}
		reverse(dst[mark:]) // collected innermost-first; report document order
	case AxisFollowingSibling:
		for s := d.NextSibling(pre); s >= 0; s = d.NextSibling(s) {
			if c.Matches(d, s) {
				dst = append(dst, s)
			}
		}
	case AxisPrecedingSibling:
		parent := d.Parent(pre)
		if parent < 0 {
			break
		}
		for s := d.FirstChild(parent); s >= 0 && s < pre; s = d.NextSibling(s) {
			if c.Matches(d, s) {
				dst = append(dst, s)
			}
		}
	case AxisFollowing:
		dst = appendScanRange(dst, d, c, pre+d.Size(pre)+1, int32(d.NumNodes())-1)
	case AxisPreceding:
		if c.isElementNameTest() {
			for _, p := range indexRange(d, c.nameID, 0, pre-1) {
				if !d.IsAncestorOf(p, pre) {
					dst = append(dst, p)
				}
			}
			break
		}
		for p := int32(0); p <= pre-1; p++ {
			if c.Matches(d, p) && !d.IsAncestorOf(p, pre) {
				dst = append(dst, p)
			}
		}
	default:
		panic(fmt.Sprintf("xpath: Step cannot evaluate axis %v", axis))
	}
	return dst
}

// appendDescendants appends matching nodes in (pre, pre+size] (plus pre
// itself with orSelf), using the element-name index when the test allows.
func appendDescendants(dst []int32, d *tree.Doc, c Compiled, pre int32, orSelf bool) []int32 {
	if orSelf && c.Matches(d, pre) {
		dst = append(dst, pre)
	}
	lo, hi := pre+1, pre+d.Size(pre)
	if c.isElementNameTest() {
		return append(dst, indexRange(d, c.nameID, lo, hi)...)
	}
	for p := lo; p <= hi; p++ {
		if c.Matches(d, p) {
			dst = append(dst, p)
		}
	}
	return dst
}

// appendScanRange appends matching nodes in [lo, hi].
func appendScanRange(dst []int32, d *tree.Doc, c Compiled, lo, hi int32) []int32 {
	if lo < 0 {
		lo = 0
	}
	if c.isElementNameTest() {
		return append(dst, indexRange(d, c.nameID, lo, hi)...)
	}
	for p := lo; p <= hi; p++ {
		if c.Matches(d, p) {
			dst = append(dst, p)
		}
	}
	return dst
}

// indexRange slices the element-name index to pres within [lo, hi].
func indexRange(d *tree.Doc, nameID, lo, hi int32) []int32 {
	pres := d.ElementsByName(nameID)
	a := lowerBound(pres, lo)
	b := lowerBound(pres, hi+1)
	if a >= b {
		return nil
	}
	return pres[a:b]
}

// lowerBound returns the first index i with pres[i] >= v.
func lowerBound(pres []int32, v int32) int {
	lo, hi := 0, len(pres)
	for lo < hi {
		mid := (lo + hi) / 2
		if pres[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func reverse(s []int32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

package xpath

import (
	"slices"

	"soxq/internal/tree"
)

// Row tags a node with the loop iteration it belongs to, the iter|item
// representation of section 4.1.
type Row struct {
	Iter int32
	Pre  int32
}

// LLDescendant is the loop-lifted staircase join for the descendant axis
// (Grust et al., cited as [9] and [5] in the paper): it computes the
// descendant step for the context nodes of *all* iterations in a single
// sequential pass instead of one scan per iteration. Contexts nested within
// a same-iteration context are pruned first (the "staircase"), which also
// guarantees duplicate-free output per iteration because the remaining
// subtree ranges of one iteration are disjoint.
//
// The result is sorted by (Iter, Pre). This is the tree-aware sibling of the
// Loop-Lifted StandOff MergeJoin: identical sweep structure, but it can
// exploit that subtree ranges never partially overlap.
func LLDescendant(d *tree.Doc, test Test, ctx []Row) []Row {
	c := Compile(d, test)
	if len(ctx) == 0 {
		return nil
	}
	// Staircase pruning per iteration.
	sorted := make([]Row, len(ctx))
	copy(sorted, ctx)
	slices.SortFunc(sorted, func(a, b Row) int {
		if a.Iter != b.Iter {
			return int(a.Iter) - int(b.Iter)
		}
		return int(a.Pre) - int(b.Pre)
	})
	type rng struct {
		iter   int32
		lo, hi int32
	}
	ranges := make([]rng, 0, len(sorted))
	lastIter := int32(-1)
	var lastHi int32
	for _, r := range sorted {
		if r.Iter == lastIter && r.Pre <= lastHi {
			continue // nested in the previous context of the same iteration
		}
		lo, hi := r.Pre+1, r.Pre+d.Size(r.Pre)
		if lo > hi {
			// Leaf context: still advances the staircase (duplicates of the
			// same context node in one iteration are pruned by it).
			if r.Iter != lastIter || r.Pre > lastHi {
				lastIter, lastHi = r.Iter, r.Pre
			}
			continue
		}
		ranges = append(ranges, rng{iter: r.Iter, lo: lo, hi: hi})
		lastIter, lastHi = r.Iter, hi
	}
	// Merge the ranges (sorted by lo across all iterations) with the
	// candidate node list in one pass, keeping a min-heap of active range
	// ends.
	slices.SortFunc(ranges, func(a, b rng) int { return int(a.lo) - int(b.lo) })

	var cands []int32
	if c.isElementNameTest() {
		cands = d.ElementsByName(c.nameID)
	} else {
		cands = allMatching(d, c)
	}

	var out []Row
	type active struct {
		iter int32
		hi   int32
	}
	var heap []active // min-heap on hi
	push := func(a active) {
		heap = append(heap, a)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].hi <= heap[i].hi {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() {
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].hi < heap[small].hi {
				small = l
			}
			if r < len(heap) && heap[r].hi < heap[small].hi {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	ri := 0
	for _, p := range cands {
		for ri < len(ranges) && ranges[ri].lo <= p {
			push(active{iter: ranges[ri].iter, hi: ranges[ri].hi})
			ri++
		}
		for len(heap) > 0 && heap[0].hi < p {
			pop()
		}
		for _, a := range heap {
			if a.hi >= p { // all heap entries have lo <= p already
				out = append(out, Row{Iter: a.iter, Pre: p})
			}
		}
		if ri == len(ranges) && len(heap) == 0 {
			break
		}
	}
	slices.SortFunc(out, func(a, b Row) int {
		if a.Iter != b.Iter {
			return int(a.Iter) - int(b.Iter)
		}
		return int(a.Pre) - int(b.Pre)
	})
	return out
}

// allMatching scans the whole node table for test matches (no usable index).
func allMatching(d *tree.Doc, c Compiled) []int32 {
	n := int32(d.NumNodes())
	var out []int32
	for p := int32(0); p < n; p++ {
		if c.Matches(d, p) {
			out = append(out, p)
		}
	}
	return out
}

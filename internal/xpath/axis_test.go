package xpath

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"soxq/internal/tree"
	"soxq/internal/xmlparse"
)

func parse(t *testing.T, src string) *tree.Doc {
	t.Helper()
	d, err := xmlparse.Parse("test.xml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sample document and its pre numbering:
//
//	<r><a><b/><c>t1</c></a><a><b/></a><d>t2</d></r>
//	 doc=0 r=1 a=2 b=3 c=4 t1=5 a=6 b=7 d=8 t2=9
const sampleSrc = `<r><a><b/><c>t1</c></a><a><b/></a><d>t2</d></r>`

func TestAxisSteps(t *testing.T) {
	d := parse(t, sampleSrc)
	cases := []struct {
		axis Axis
		test Test
		pre  int32
		want []int32
	}{
		{AxisChild, AnyElement, 2, []int32{3, 4}},
		{AxisChild, NameTest("b"), 2, []int32{3}},
		{AxisChild, Test{Kind: TestText}, 4, []int32{5}},
		{AxisDescendant, NameTest("b"), 0, []int32{3, 7}},
		{AxisDescendant, Test{Kind: TestAnyNode}, 2, []int32{3, 4, 5}},
		{AxisDescendantOrSelf, NameTest("a"), 2, []int32{2}},
		{AxisSelf, NameTest("a"), 2, []int32{2}},
		{AxisSelf, NameTest("b"), 2, nil},
		{AxisParent, AnyElement, 3, []int32{2}},
		{AxisParent, NameTest("r"), 1, nil}, // parent of <r> is the document node
		{AxisAncestor, AnyElement, 5, []int32{1, 2, 4}},
		{AxisAncestorOrSelf, AnyElement, 4, []int32{1, 2, 4}},
		{AxisFollowingSibling, AnyElement, 2, []int32{6, 8}},
		{AxisFollowingSibling, NameTest("d"), 2, []int32{8}},
		{AxisPrecedingSibling, AnyElement, 8, []int32{2, 6}},
		{AxisFollowing, AnyElement, 2, []int32{6, 7, 8}},
		{AxisFollowing, Test{Kind: TestAnyNode}, 3, []int32{4, 5, 6, 7, 8, 9}},
		{AxisPreceding, AnyElement, 8, []int32{2, 3, 4, 6, 7}},
		{AxisPreceding, NameTest("b"), 7, []int32{3}},
	}
	for _, c := range cases {
		got := Step(d, c.axis, c.test, c.pre)
		if !equal32(got, c.want) {
			t.Errorf("%v::%v from %d = %v, want %v", c.axis, c.test, c.pre, got, c.want)
		}
	}
}

func TestAncestorAxisElementTestExcludesDocument(t *testing.T) {
	d := parse(t, sampleSrc)
	// An element test on the ancestor axis must not match the document node.
	got := Step(d, AxisAncestor, AnyElement, 5)
	for _, p := range got {
		if d.Kind(p) == tree.DocumentNode {
			t.Fatalf("element test matched the document node: %v", got)
		}
	}
	got = Step(d, AxisAncestor, Test{Kind: TestAnyNode}, 5)
	if !equal32(got, []int32{0, 1, 2, 4}) {
		t.Fatalf("ancestor::node() = %v", got)
	}
}

func TestParseAxisNames(t *testing.T) {
	for a, name := range axisNames {
		got, ok := ParseAxis(name)
		if !ok || got != a {
			t.Fatalf("ParseAxis(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := ParseAxis("sideways"); ok {
		t.Fatal("unknown axis parsed")
	}
	if !AxisSelectNarrow.StandOff() || AxisChild.StandOff() {
		t.Fatal("StandOff classification wrong")
	}
	if !AxisAncestor.Reverse() || AxisFollowing.Reverse() {
		t.Fatal("Reverse classification wrong")
	}
}

func TestCompiledTestMissingName(t *testing.T) {
	d := parse(t, sampleSrc)
	got := Step(d, AxisDescendant, NameTest("zzz"), 0)
	if len(got) != 0 {
		t.Fatalf("unknown name matched %v", got)
	}
}

func TestPITest(t *testing.T) {
	d := parse(t, `<r><?one a?><?two b?></r>`)
	if got := Step(d, AxisChild, Test{Kind: TestPI}, 1); len(got) != 2 {
		t.Fatalf("pi() children = %v", got)
	}
	if got := Step(d, AxisChild, Test{Kind: TestPI, Name: "two"}, 1); len(got) != 1 {
		t.Fatalf("pi(two) children = %v", got)
	}
	if got := Step(d, AxisChild, Test{Kind: TestComment}, 1); len(got) != 0 {
		t.Fatalf("comment() children = %v", got)
	}
}

// naiveStep computes an axis step straight from the axis definitions, as the
// test oracle.
func naiveStep(d *tree.Doc, axis Axis, test Test, pre int32) []int32 {
	c := Compile(d, test)
	var out []int32
	n := int32(d.NumNodes())
	for p := int32(0); p < n; p++ {
		if !c.Matches(d, p) {
			continue
		}
		ok := false
		switch axis {
		case AxisChild:
			ok = d.Parent(p) == pre
		case AxisDescendant:
			ok = d.IsAncestorOf(pre, p)
		case AxisDescendantOrSelf:
			ok = p == pre || d.IsAncestorOf(pre, p)
		case AxisSelf:
			ok = p == pre
		case AxisParent:
			ok = d.Parent(pre) == p
		case AxisAncestor:
			ok = d.IsAncestorOf(p, pre)
		case AxisAncestorOrSelf:
			ok = p == pre || d.IsAncestorOf(p, pre)
		case AxisFollowingSibling:
			ok = d.Parent(p) == d.Parent(pre) && p > pre
		case AxisPrecedingSibling:
			ok = d.Parent(p) == d.Parent(pre) && p < pre && pre != 0
		case AxisFollowing:
			ok = p > pre+d.Size(pre)
		case AxisPreceding:
			ok = p < pre && !d.IsAncestorOf(p, pre)
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

func randomTree(rng *rand.Rand) string {
	names := []string{"a", "b", "c", "d"}
	var sb strings.Builder
	var emit func(depth int)
	emit = func(depth int) {
		n := names[rng.Intn(len(names))]
		sb.WriteString("<" + n + ">")
		if depth < 4 {
			for i, k := 0, rng.Intn(4); i < k; i++ {
				if rng.Intn(5) == 0 {
					sb.WriteString("x")
				} else {
					emit(depth + 1)
				}
			}
		}
		sb.WriteString("</" + n + ">")
	}
	emit(0)
	return sb.String()
}

// TestAxesAgainstNaive compares every axis implementation against the
// direct definition on random trees.
func TestAxesAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	axes := []Axis{AxisChild, AxisDescendant, AxisDescendantOrSelf, AxisSelf,
		AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisFollowingSibling,
		AxisFollowing, AxisPrecedingSibling, AxisPreceding}
	tests := []Test{AnyElement, NameTest("a"), NameTest("b"),
		{Kind: TestAnyNode}, {Kind: TestText}}
	for round := 0; round < 50; round++ {
		d := parse(t, randomTree(rng))
		for pre := int32(0); pre < int32(d.NumNodes()); pre++ {
			for _, ax := range axes {
				for _, ts := range tests {
					got := Step(d, ax, ts, pre)
					want := naiveStep(d, ax, ts, pre)
					if !equal32(got, want) {
						t.Fatalf("%v::%v from pre %d = %v, want %v\ndoc: %s",
							ax, ts, pre, got, want, d.XMLString(0))
					}
				}
			}
		}
	}
}

// TestLLDescendantAgainstPerNode: the loop-lifted staircase join must agree
// with per-node descendant evaluation plus per-iteration dedup.
func TestLLDescendantAgainstPerNode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tests := []Test{AnyElement, NameTest("a"), {Kind: TestAnyNode}}
	for round := 0; round < 50; round++ {
		d := parse(t, randomTree(rng))
		n := int32(d.NumNodes())
		nIters := int32(1 + rng.Intn(4))
		var ctx []Row
		for i := 0; i < rng.Intn(10); i++ {
			ctx = append(ctx, Row{Iter: rng.Int31n(nIters), Pre: rng.Int31n(n)})
		}
		for _, ts := range tests {
			got := LLDescendant(d, ts, ctx)
			// Oracle: per-node union, dedup per iter, sort.
			seen := map[Row]bool{}
			var want []Row
			for _, r := range ctx {
				for _, p := range naiveStep(d, AxisDescendant, ts, r.Pre) {
					k := Row{Iter: r.Iter, Pre: p}
					if !seen[k] {
						seen[k] = true
						want = append(want, k)
					}
				}
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].Iter != want[j].Iter {
					return want[i].Iter < want[j].Iter
				}
				return want[i].Pre < want[j].Pre
			})
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("LLDescendant(%v) =\n%v, want\n%v\nctx %v doc %s",
					ts, got, want, ctx, d.XMLString(0))
			}
		}
	}
}

func TestLLDescendantEmpty(t *testing.T) {
	d := parse(t, sampleSrc)
	if got := LLDescendant(d, AnyElement, nil); got != nil {
		t.Fatalf("empty context = %v", got)
	}
	// Leaf contexts produce nothing.
	if got := LLDescendant(d, AnyElement, []Row{{Iter: 0, Pre: 3}}); len(got) != 0 {
		t.Fatalf("leaf context = %v", got)
	}
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

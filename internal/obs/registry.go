package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics and renders them for scraping. Metrics are
// either owned (Counter/Gauge/Histogram handles the instrumented code
// updates directly) or scraped (a callback read at render time — for
// counters that already live elsewhere, like the plan cache's hit count).
//
// A metric name may carry a Prometheus label suffix, e.g.
// `soxq_query_nanos{mode="exec"}`; metrics sharing the part before the
// brace form one family and render under one TYPE/HELP header. Registration
// is idempotent: registering a name again returns the existing handle.
//
// All methods are safe for concurrent use, and safe on a nil Registry
// (registration returns nil handles, which discard updates).
type Registry struct {
	mu     sync.Mutex
	ms     []*metric
	byName map[string]*metric
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	name   string // full name, label suffix included
	family string // name up to the label brace
	labels string // label list without braces ("" when unlabeled)
	help   string
	kind   metricKind

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() int64 // scraped counter/gauge; nil for owned metrics
}

// value reads the metric's current scalar (owned or scraped).
func (m *metric) value() int64 {
	switch {
	case m.fn != nil:
		return m.fn()
	case m.c != nil:
		return m.c.Value()
	case m.g != nil:
		return m.g.Value()
	}
	return 0
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// register adds m under its name, or returns the previously registered
// metric of the same name.
func (r *Registry) register(name, help string, kind metricKind, build func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := build()
	m.name = name
	m.family, m.labels = splitName(name)
	m.help = help
	m.kind = kind
	r.ms = append(r.ms, m)
	r.byName[name] = m
	return m
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, func() *metric { return &metric{g: &Gauge{}} }).g
}

// Histogram registers (or returns) the named log₂-bucketed histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, func() *metric { return &metric{h: &Histogram{}} }).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for cumulative counts that already live elsewhere in the engine.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, func() *metric { return &metric{fn: fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, func() *metric { return &metric{fn: fn} })
}

// snapshotMetrics copies the metric list under the lock; values are read
// outside it (scrape callbacks may take other locks).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.ms...)
}

// histExpMin/histExpMax bound the bucket exponents rendered to Prometheus:
// le=2^10 ns (≈1µs) up to le=2^34 ns (≈17s). The histogram still counts
// outliers — they land in the first bucket or +Inf cumulatively.
const (
	histExpMin = 10
	histExpMax = 34
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format, in registration order, one HELP/TYPE header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	seenFamily := map[string]bool{}
	for _, m := range r.snapshotMetrics() {
		if !seenFamily[m.family] {
			seenFamily[m.family] = true
			if m.help != "" {
				pr("# HELP %s %s\n", m.family, m.help)
			}
			pr("# TYPE %s %s\n", m.family, m.kind)
		}
		if m.kind != kindHistogram {
			pr("%s %d\n", m.name, m.value())
			continue
		}
		var counts [histBuckets]int64
		count, sum := m.h.snapshot(&counts)
		var cum int64
		for exp := 0; exp < histBuckets; exp++ {
			cum += counts[exp]
			if exp < histExpMin || exp > histExpMax {
				continue
			}
			pr("%s_bucket{%sle=\"%d\"} %d\n", m.family, labelPrefix(m.labels), int64(1)<<exp, cum)
		}
		pr("%s_bucket{%sle=\"+Inf\"} %d\n", m.family, labelPrefix(m.labels), count)
		pr("%s_sum%s %d\n", m.family, braced(m.labels), sum)
		pr("%s_count%s %d\n", m.family, braced(m.labels), count)
	}
	return err
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// WriteJSON renders every metric as one flat JSON object (the expvar
// convention: GET /debug/vars returns a JSON map). Scalar metrics map name
// to value; histograms map name to {count, sum, buckets} with only occupied
// buckets listed, keyed by their upper bound.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	ms := r.snapshotMetrics()
	pr("{")
	for i, m := range ms {
		if i > 0 {
			pr(",")
		}
		pr("\n%q: ", m.name)
		if m.kind != kindHistogram {
			pr("%d", m.value())
			continue
		}
		var counts [histBuckets]int64
		count, sum := m.h.snapshot(&counts)
		pr(`{"count": %d, "sum": %d, "buckets": {`, count, sum)
		first := true
		for exp := 0; exp < histBuckets; exp++ {
			if counts[exp] == 0 {
				continue
			}
			if !first {
				pr(", ")
			}
			first = false
			pr(`"%d": %d`, upperBound(exp), counts[exp])
		}
		pr("}}")
	}
	pr("\n}\n")
	return err
}

// upperBound is the exclusive upper value of log₂ bucket exp (observations v
// with bits.Len64(v) == exp satisfy v < 2^exp).
func upperBound(exp int) int64 {
	if exp >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1) << exp
}

// Families returns the registered family names in registration order,
// deduplicated — handy for coverage assertions in tests.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, m := range r.snapshotMetrics() {
		if !seen[m.family] {
			seen[m.family] = true
			out = append(out, m.family)
		}
	}
	return out
}

// SortedNames returns every full metric name sorted (test helper surface).
func (r *Registry) SortedNames() []string {
	if r == nil {
		return nil
	}
	var out []string
	for _, m := range r.snapshotMetrics() {
		out = append(out, m.name)
	}
	sort.Strings(out)
	return out
}

// Package obs is the engine's telemetry layer: a dependency-free metrics
// registry (atomic counters, gauges and log₂-bucketed histograms), a bounded
// ring of query-lifecycle traces, a slow-query log, and the ops HTTP surface
// that serves all three (Prometheus text /metrics, expvar-style /debug/vars,
// /debug/queries). The package sits below every engine package — it imports
// only the standard library — so instrumentation points anywhere in the
// engine can hold its handles.
//
// Everything is nil-safe: a nil *Counter, *Histogram, *TraceRing or *SlowLog
// no-ops, so instrumented code never branches on "is telemetry configured"
// beyond a pointer check, and hot paths pay one atomic add per event, zero
// allocations.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter discards increments.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use; a
// nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log₂ buckets a histogram keeps: bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// 64 buckets cover the whole non-negative int64 range.
const histBuckets = 64

// Histogram is a log₂-bucketed distribution of non-negative int64
// observations (latencies in nanoseconds, sizes in rows). Observation is one
// atomic add on the bucket plus two on the sum/count — no locks, no
// allocation — so it is safe on query hot paths. The zero value is ready to
// use; a nil Histogram discards observations.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe folds one observation into the histogram. Negative values are
// ignored.
func (h *Histogram) Observe(v int64) {
	if h == nil || v < 0 {
		return
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot copies the bucket counts into dst (which must have histBuckets
// room) and returns count and sum. The copy is not atomic across buckets —
// scrapes tolerate observations landing mid-snapshot.
func (h *Histogram) snapshot(dst *[histBuckets]int64) (count, sum int64) {
	if h == nil {
		return 0, 0
	}
	for i := range h.buckets {
		dst[i] = h.buckets[i].Load()
	}
	return h.count.Load(), h.sum.Load()
}

package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one key=value annotation on a trace span (row counts, chunk
// counts, strategy names — never durations; durations live in Span.Nanos so
// renderings can include or omit them as one decision).
type Attr struct {
	Key string
	Val string
}

// Span is one node of a query-lifecycle trace: a pipeline phase (parse,
// compile, execute) or one operator of the executed plan. Attrs carry the
// deterministic annotations (counts, structure); Nanos carries the measured
// duration, zero when the phase was not timed (e.g. compile served from the
// plan cache).
type Span struct {
	Name     string
	Attrs    []Attr
	Nanos    int64
	Children []*Span
}

// Attr appends one annotation.
func (s *Span) Attr(key, val string) *Span {
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
	return s
}

// AttrInt appends one integer annotation.
func (s *Span) AttrInt(key string, val int64) *Span {
	return s.Attr(key, fmt.Sprintf("%d", val))
}

// Child appends (and returns) a child span.
func (s *Span) Child(name string) *Span {
	c := &Span{Name: name}
	s.Children = append(s.Children, c)
	return c
}

// QueryTrace is the recorded lifecycle of one query execution: the query
// text, the execution mode, the wall-clock start, the end-to-end duration
// and the span tree.
type QueryTrace struct {
	Query string
	Mode  string
	Start time.Time
	Nanos int64
	Root  *Span
}

// Render writes the trace as an indented span tree. With live=false the
// output is fully deterministic — span structure and count attributes only —
// which is what golden tests pin; live=true appends the measured durations
// and the wall-clock start, the form the ops endpoints serve.
func (t *QueryTrace) Render(live bool) string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %s\n", t.Query)
	fmt.Fprintf(&sb, "mode: %s\n", t.Mode)
	if live {
		fmt.Fprintf(&sb, "start: %s\n", t.Start.Format(time.RFC3339Nano))
		fmt.Fprintf(&sb, "total: %s\n", time.Duration(t.Nanos))
	}
	if t.Root != nil {
		for _, ch := range t.Root.Children {
			renderSpan(&sb, ch, 1, live)
		}
	}
	return sb.String()
}

func renderSpan(sb *strings.Builder, s *Span, depth int, live bool) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(s.Name)
	for _, a := range s.Attrs {
		fmt.Fprintf(sb, " %s=%s", a.Key, a.Val)
	}
	if live && s.Nanos > 0 {
		fmt.Fprintf(sb, " [%s]", time.Duration(s.Nanos))
	}
	sb.WriteByte('\n')
	for _, ch := range s.Children {
		renderSpan(sb, ch, depth+1, live)
	}
}

// DefaultTraceRingSize bounds the engine's retained traces.
const DefaultTraceRingSize = 64

// TraceRing is a bounded ring buffer of recent query traces: adding beyond
// the capacity overwrites the oldest entry, so a long-running engine retains
// the newest window at fixed memory. Safe for concurrent use; a nil ring
// discards adds.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*QueryTrace
	next int
	n    int
}

// NewTraceRing returns a ring retaining up to size traces (size <= 0 uses
// DefaultTraceRingSize).
func NewTraceRing(size int) *TraceRing {
	if size <= 0 {
		size = DefaultTraceRingSize
	}
	return &TraceRing{buf: make([]*QueryTrace, size)}
}

// Add records one trace, evicting the oldest when full.
func (r *TraceRing) Add(t *QueryTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns how many traces are retained.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns the retained traces, oldest first.
func (r *TraceRing) Snapshot() []*QueryTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*QueryTrace, 0, r.n)
	start := r.next - r.n
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i+len(r.buf))%len(r.buf)])
	}
	return out
}

package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SlowQuery is one slow-query log entry: a query whose end-to-end latency
// crossed the configured threshold, together with the plan the engine can
// attach (the EXPLAIN ANALYZE operator tree when execution collected
// counters, plain EXPLAIN otherwise) and a one-line trace summary.
type SlowQuery struct {
	Query string
	Mode  string
	Start time.Time
	Nanos int64
	// Plan is the rendered operator tree of the query.
	Plan string
	// Trace is the trace-span summary ("" when tracing was off for the
	// run).
	Trace string
}

// String renders the entry as a single structured log line (key=value
// pairs, plan and trace flattened), the default form the pluggable callback
// receives.
func (q SlowQuery) String() string {
	return fmt.Sprintf("slow-query mode=%s dur=%s query=%q plan=%q trace=%q",
		q.Mode, time.Duration(q.Nanos), q.Query, q.Plan, q.Trace)
}

// DefaultSlowLogSize bounds the retained slow-query entries.
const DefaultSlowLogSize = 64

// SlowLog retains queries slower than a configurable threshold in a bounded
// ring and forwards each entry to a pluggable callback (a structured logger,
// a test hook). The zero threshold disables the log entirely — Observe
// becomes two atomic loads — so the always-on engine pays nothing until an
// operator turns it on. Safe for concurrent use; a nil SlowLog no-ops.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 = disabled
	fn        atomic.Value // func(SlowQuery); may be unset

	mu   sync.Mutex
	buf  []SlowQuery
	next int
	n    int
}

// NewSlowLog returns a log retaining up to size entries (size <= 0 uses
// DefaultSlowLogSize), disabled until SetThreshold.
func NewSlowLog(size int) *SlowLog {
	if size <= 0 {
		size = DefaultSlowLogSize
	}
	return &SlowLog{buf: make([]SlowQuery, size)}
}

// SetThreshold sets the latency above which queries are logged; 0 disables.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l != nil {
		l.threshold.Store(int64(d))
	}
}

// Threshold returns the current threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold.Load())
}

// SetLogger installs the callback each logged entry is forwarded to
// synchronously (keep it fast or hand off to a channel). nil removes it;
// the ring keeps retaining either way.
func (l *SlowLog) SetLogger(fn func(SlowQuery)) {
	if l == nil {
		return
	}
	l.fn.Store(loggerBox{fn})
}

// loggerBox wraps the callback so atomic.Value accepts a nil function
// (stored values must share one concrete type).
type loggerBox struct{ fn func(SlowQuery) }

// Exceeds reports whether a run of the given duration should be logged —
// the cheap pre-check callers use before building the (allocation-heavy)
// plan rendering an entry carries.
func (l *SlowLog) Exceeds(nanos int64) bool {
	if l == nil {
		return false
	}
	t := l.threshold.Load()
	return t > 0 && nanos >= t
}

// Observe records one entry (the caller has already checked Exceeds) and
// forwards it to the callback.
func (l *SlowLog) Observe(q SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = q
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
	if box, ok := l.fn.Load().(loggerBox); ok && box.fn != nil {
		box.fn(q)
	}
}

// Snapshot returns the retained entries, oldest first.
func (l *SlowLog) Snapshot() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.n)
	start := l.next - l.n
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(start+i+len(l.buf))%len(l.buf)])
	}
	return out
}

// RenderEntries renders slow-query entries for /debug/queries: one block
// per entry, durations only when live.
func RenderEntries(entries []SlowQuery, live bool) string {
	var sb strings.Builder
	for _, q := range entries {
		fmt.Fprintf(&sb, "slow-query mode=%s query=%q\n", q.Mode, q.Query)
		if live {
			fmt.Fprintf(&sb, "  start=%s dur=%s\n", q.Start.Format(time.RFC3339Nano), time.Duration(q.Nanos))
		}
		for _, line := range strings.Split(strings.TrimRight(q.Plan, "\n"), "\n") {
			sb.WriteString("  " + line + "\n")
		}
	}
	return sb.String()
}

package obs

import (
	"fmt"
	"net/http"
	"strings"
)

// Handler returns the ops HTTP surface over a registry, a trace ring and a
// slow-query log (any of which may be nil — the endpoint then serves its
// empty form):
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/vars     the registry as one JSON object (the expvar convention)
//	/debug/queries  recent traces from the ring + slow-query entries
//
// /debug/queries renders durations by default (it is a live endpoint);
// ?live=0 switches to the deterministic counts-only rendering golden tests
// pin. The handler is stateless — it spawns no goroutines and holds no
// connection state beyond the request — so it can be mounted in any server
// mux (soxq -ops, sobench, the future soxqd).
func Handler(reg *Registry, ring *TraceRing, slow *SlowLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		live := r.URL.Query().Get("live") != "0"
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var sb strings.Builder
		traces := ring.Snapshot()
		fmt.Fprintf(&sb, "# recent traces (%d)\n", len(traces))
		for _, t := range traces {
			sb.WriteString(t.Render(live))
		}
		entries := slow.Snapshot()
		fmt.Fprintf(&sb, "# slow queries (%d)\n", len(entries))
		sb.WriteString(RenderEntries(entries, live))
		_, _ = w.Write([]byte(sb.String()))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprint(w, "soxq ops endpoints:\n  /metrics\n  /debug/vars\n  /debug/queries\n")
	})
	return mux
}

package obs

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(100)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}

	real := &Counter{}
	real.Inc()
	real.Add(2)
	real.Add(-7) // ignored: counters only go up
	if got := real.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)    // bits.Len64(0) == 0 → bucket 0
	h.Observe(1)    // bucket 1
	h.Observe(1023) // bucket 10
	h.Observe(1024) // bucket 11
	h.Observe(-5)   // ignored
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 0+1+1023+1024 {
		t.Fatalf("sum = %d, want %d", got, 0+1+1023+1024)
	}
	var buckets [histBuckets]int64
	count, _ := h.snapshot(&buckets)
	if count != 4 {
		t.Fatalf("snapshot count = %d, want 4", count)
	}
	for i, want := range map[int]int64{0: 1, 1: 1, 10: 1, 11: 1} {
		if buckets[i] != want {
			t.Errorf("bucket[%d] = %d, want %d", i, buckets[i], want)
		}
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("re-registering the same counter name should return the same handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("a", "") != nil || r.Gauge("b", "") != nil || r.Histogram("c", "") != nil {
		t.Fatal("nil registry should hand out nil handles")
	}
	r.CounterFunc("d", "", func() int64 { return 1 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatal("nil registry renders nothing")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`q_total{mode="exec"}`, "queries by mode").Add(3)
	r.Counter(`q_total{mode="stream"}`, "").Add(5)
	r.Gauge("entries", "live entries").Set(7)
	r.CounterFunc("scraped_total", "from a callback", func() int64 { return 11 })
	h := r.Histogram("lat_nanos", "latency")
	h.Observe(2000) // bucket 11, cumulative from le=2048 up
	h.Observe(3000) // bucket 12

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP q_total queries by mode\n",
		"# TYPE q_total counter\n",
		`q_total{mode="exec"} 3` + "\n",
		`q_total{mode="stream"} 5` + "\n",
		"entries 7\n",
		"scraped_total 11\n",
		"# TYPE lat_nanos histogram\n",
		`lat_nanos_bucket{le="1024"} 0` + "\n",
		`lat_nanos_bucket{le="2048"} 1` + "\n",
		`lat_nanos_bucket{le="4096"} 2` + "\n",
		`lat_nanos_bucket{le="+Inf"} 2` + "\n",
		"lat_nanos_sum 5000\n",
		"lat_nanos_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// One TYPE header per family, even with two labeled members.
	if got := strings.Count(out, "# TYPE q_total counter"); got != 1 {
		t.Errorf("TYPE header for q_total appears %d times, want 1", got)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Histogram("h_nanos", "").Observe(1500)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"a_total": 2`, `"h_nanos": {"count": 1, "sum": 1500, "buckets": {"2048": 1}}`} {
		if !strings.Contains(out, want) {
			t.Errorf("json output missing %q\n%s", want, out)
		}
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(&QueryTrace{Query: fmt.Sprintf("q%d", i)})
	}
	if r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	want := []string{"q2", "q3", "q4"}
	for i, tr := range got {
		if tr.Query != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, tr.Query, want[i])
		}
	}
	var nilRing *TraceRing
	nilRing.Add(&QueryTrace{})
	if nilRing.Len() != 0 || nilRing.Snapshot() != nil {
		t.Fatal("nil ring should no-op")
	}
}

func TestTraceRenderDeterminism(t *testing.T) {
	root := &Span{Name: "query"}
	root.Child("parse").Nanos = 1000
	ex := root.Child("execute")
	ex.Nanos = 5000
	st := ex.Child("step child::a")
	st.AttrInt("in", 2)
	st.AttrInt("out", 4)
	tr := &QueryTrace{Query: "q", Mode: "exec", Start: time.Unix(0, 0), Nanos: 6000, Root: root}

	det := tr.Render(false)
	want := "trace: q\nmode: exec\n  parse\n  execute\n    step child::a in=2 out=4\n"
	if det != want {
		t.Fatalf("deterministic render:\n%q\nwant:\n%q", det, want)
	}
	live := tr.Render(true)
	for _, s := range []string{"total: 6µs", "[1µs]", "[5µs]", "start: "} {
		if !strings.Contains(live, s) {
			t.Errorf("live render missing %q\n%s", s, live)
		}
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(2)
	if l.Exceeds(1 << 40) {
		t.Fatal("disabled slow log should never trip")
	}
	l.SetThreshold(time.Millisecond)
	if l.Exceeds(int64(time.Millisecond) - 1) {
		t.Fatal("below threshold should not trip")
	}
	if !l.Exceeds(int64(time.Millisecond)) {
		t.Fatal("at threshold should trip")
	}

	var mu sync.Mutex
	var logged []SlowQuery
	l.SetLogger(func(q SlowQuery) {
		mu.Lock()
		logged = append(logged, q)
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		l.Observe(SlowQuery{Query: fmt.Sprintf("q%d", i), Mode: "exec", Nanos: int64(time.Second)})
	}
	mu.Lock()
	n := len(logged)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("logger called %d times, want 3", n)
	}
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Query != "q1" || snap[1].Query != "q2" {
		t.Fatalf("snapshot = %+v, want [q1 q2]", snap)
	}
	l.SetLogger(nil) // removable without disabling the ring
	l.Observe(SlowQuery{Query: "q3"})
	if got := len(l.Snapshot()); got != 2 {
		t.Fatalf("ring len after logger removal = %d, want 2", got)
	}
}

func TestExecMetricsNilSafe(t *testing.T) {
	var m *ExecMetrics
	m.Steal()
	m.InflightWait()
	m.AdaptGrow()
	m.AdaptShrink()
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "a counter").Add(9)
	ring := NewTraceRing(4)
	root := &Span{Name: "query"}
	root.Child("parse")
	ring.Add(&QueryTrace{Query: "trace-q", Mode: "exec", Nanos: 100, Root: root})
	slow := NewSlowLog(4)
	slow.Observe(SlowQuery{Query: "slow-q", Mode: "stream", Nanos: int64(time.Second), Plan: "plan:\n  flwor"})

	before := runtime.NumGoroutine()
	h := Handler(reg, ring, slow)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "c_total 9") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, `"c_total": 9`) {
		t.Errorf("/debug/vars: code=%d body=%q", code, body)
	}
	code, body := get("/debug/queries?live=0")
	if code != 200 {
		t.Fatalf("/debug/queries: code=%d", code)
	}
	for _, want := range []string{"# recent traces (1)", "trace: trace-q", "# slow queries (1)", `slow-query mode=stream query="slow-q"`, "  plan:"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/queries missing %q\n%s", want, body)
		}
	}
	if strings.Contains(body, "start=") || strings.Contains(body, "total:") {
		t.Errorf("?live=0 output should omit durations:\n%s", body)
	}
	if code, body := get("/debug/queries"); code != 200 || !strings.Contains(body, "start=") {
		t.Errorf("live /debug/queries should include durations: code=%d\n%s", code, body)
	}
	if code, _ := get("/"); code != 200 {
		t.Errorf("index: code=%d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path should 404, got %d", code)
	}

	// The handler must not leave goroutines behind.
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew across handler use: before=%d after=%d", before, after)
	}

	// Nil components serve empty forms rather than crashing.
	h = Handler(nil, nil, nil)
	if code, _ := get("/metrics"); code != 200 {
		t.Errorf("nil-component /metrics: code=%d", code)
	}
}

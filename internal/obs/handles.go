package obs

// ExecMetrics is the pre-resolved set of counter handles the engine threads
// through every evaluator (and, via the evaluator, through the cursor
// pipeline and its worker forks — the struct is carried by pointer, so
// Fork-ed evaluators feed the same counters). Resolving the handles once at
// engine construction keeps the hot paths free of name lookups: recording an
// event is a single atomic add.
//
// A nil *ExecMetrics disables all of them; every field is individually
// nil-safe too.
type ExecMetrics struct {
	// Joins per algorithm actually run (all four StandOff join call
	// sites: bulk select, bulk reject, chunked select, chunked reject).
	JoinBasic      *Counter
	JoinLoopLifted *Counter
	JoinNaive      *Counter

	// Work-stealing pool: tasks taken from a sibling's deque, and producer
	// stalls on the in-flight token budget.
	WorkSteals    *Counter
	InflightWaits *Counter

	// Chunk-size adaptation events of the streamed StandOff merge.
	ChunkGrow   *Counter
	ChunkShrink *Counter
}

// Steal records one stolen chunk task.
func (m *ExecMetrics) Steal() {
	if m != nil {
		m.WorkSteals.Inc()
	}
}

// InflightWait records one producer stall on the in-flight token budget.
func (m *ExecMetrics) InflightWait() {
	if m != nil {
		m.InflightWaits.Inc()
	}
}

// AdaptGrow records one chunk-size doubling.
func (m *ExecMetrics) AdaptGrow() {
	if m != nil {
		m.ChunkGrow.Inc()
	}
}

// AdaptShrink records one chunk-size halving.
func (m *ExecMetrics) AdaptShrink() {
	if m != nil {
		m.ChunkShrink.Inc()
	}
}

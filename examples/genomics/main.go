// Genome annotation: the bioinformatics application the paper's conclusion
// proposes ("genome sequence annotations in bioinformatics"). Genes,
// sequencing reads and variant calls annotate base-pair regions of one
// chromosome; the hierarchies overlap freely (a read can straddle a gene
// boundary, a variant can fall between genes), so stand-off regions — not
// element nesting — carry the structure.
//
//	go run ./examples/genomics
package main

import (
	"fmt"
	"log"

	"soxq"
)

// Coordinates are base-pair offsets on a toy chromosome.
const chromosome = `<chromosome name="chr21">
  <genes>
    <gene id="APP"    start="1000" end="4999"/>
    <gene id="SOD1"   start="7000" end="8999"/>
    <gene id="DYRK1A" start="12000" end="15999"/>
  </genes>
  <reads>
    <read id="r1" start="900"   end="1400"/>
    <read id="r2" start="4800"  end="5300"/>
    <read id="r3" start="7100"  end="7600"/>
    <read id="r4" start="9500"  end="9900"/>
    <read id="r5" start="15800" end="16300"/>
  </reads>
  <variants>
    <variant id="v1" type="snp" start="1200"  end="1200"/>
    <variant id="v2" type="del" start="5100"  end="5160"/>
    <variant id="v3" type="snp" start="8999"  end="8999"/>
    <variant id="v4" type="ins" start="13500" end="13500"/>
  </variants>
</chromosome>`

func main() {
	eng := soxq.New()
	if err := eng.LoadXML("chr21.xml", []byte(chromosome)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Genome annotations on chr21: genes, reads, variant calls")
	fmt.Println()

	show(eng, "Variants inside genes, with the gene they hit",
		`for $g in doc("chr21.xml")//gene
		 for $v in $g/select-narrow::variant
		 return concat(string($v/@id), " in ", string($g/@id))`)

	show(eng, "Intergenic variants (reject-narrow from all genes)",
		`for $v in doc("chr21.xml")//gene/reject-narrow::variant
		 return string($v/@id)`)

	show(eng, "Reads straddling a gene boundary: not contained in any gene\n  (reject-narrow) intersected with overlapping some gene (select-wide)",
		`for $r in doc("chr21.xml")//gene/reject-narrow::read
		   intersect doc("chr21.xml")//gene/select-wide::read
		 return string($r/@id)`)

	show(eng, "Coverage: reads per gene (overlap join in one pass)",
		`for $g in doc("chr21.xml")//gene
		 return concat(string($g/@id), "=", string(count($g/select-wide::read)))`)

	show(eng, "Genes containing a variant that no read covers",
		`for $g in doc("chr21.xml")//gene
		 where some $v in $g/select-narrow::variant
		       satisfies empty($v/select-wide::read)
		 return string($g/@id)`)
}

func show(eng *soxq.Engine, label, q string) {
	res, err := eng.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("%s:\n  -> %v\n\n", label, res.Strings())
}

// Multimedia retrieval: speech transcripts, shot boundaries and face
// detections annotating the same broadcast stream — three overlapping
// annotation hierarchies over one BLOB, the scenario that motivates
// stand-off annotation in the paper's introduction (LMNL-style inline markup
// cannot express this without duplication).
//
//	go run ./examples/multimedia
package main

import (
	"fmt"
	"log"

	"soxq"
)

// Three tools annotated the same 10-minute broadcast independently:
// a shot-boundary detector, a speech recogniser (per speaker turn), and a
// face detector. Regions are millisecond timecodes.
const broadcast = `<broadcast>
  <shots>
    <shot no="1" start="0:00" end="0:45"/>
    <shot no="2" start="0:45" end="3:10"/>
    <shot no="3" start="3:10" end="6:20"/>
    <shot no="4" start="6:20" end="10:00"/>
  </shots>
  <speech>
    <turn speaker="anchor"   start="0:02" end="0:44"/>
    <turn speaker="reporter" start="0:50" end="2:58"/>
    <turn speaker="minister" start="3:15" end="4:50"/>
    <turn speaker="reporter" start="4:52" end="6:15"/>
    <turn speaker="anchor"   start="6:25" end="9:58"/>
  </speech>
  <faces>
    <face who="minister" start="3:05" end="5:00"/>
    <face who="reporter" start="0:40" end="1:20"/>
    <face who="anchor"   start="0:00" end="0:44"/>
    <face who="anchor"   start="6:20" end="10:00"/>
  </faces>
</broadcast>`

func run(eng *soxq.Engine, label, q string) {
	res, err := eng.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("%s\n  -> %v\n\n", label, res.Strings())
}

func main() {
	eng := soxq.New()
	if err := eng.Declare("standoff-type", "so:timecode"); err != nil {
		log.Fatal(err)
	}
	if err := eng.LoadXML("broadcast.xml", []byte(broadcast)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Querying three overlapping annotation hierarchies of one stream")
	fmt.Println()

	run(eng, `Shots in which the minister speaks (select-wide = overlap):
  //turn[@speaker="minister"]/select-wide::shot`,
		`for $s in doc("broadcast.xml")//turn[@speaker = "minister"]/select-wide::shot
		 return concat("shot ", $s/@no)`)

	run(eng, `Speaker turns fully inside shot 3 (select-narrow = containment):
  //shot[@no="3"]/select-narrow::turn`,
		`for $t in doc("broadcast.xml")//shot[@no = "3"]/select-narrow::turn
		 return string($t/@speaker)`)

	run(eng, `Faces on screen while their owner is NOT speaking (reject-wide):
  faces whose region does not overlap any same-person turn`,
		`for $f in doc("broadcast.xml")//face
		 where empty($f/select-wide::turn[@speaker = $f/@who])
		 return concat(string($f/@who), " at ", string($f/@start))`)

	run(eng, `Shots in which the anchor's face never appears (reject-wide is an
  anti-join over the WHOLE context sequence, section 3.1):
  //face[@who="anchor"]/reject-wide::shot`,
		`for $s in doc("broadcast.xml")//face[@who = "anchor"]/reject-wide::shot
		 return concat("shot ", $s/@no)`)

	run(eng, `Cross-hierarchy join: speakers whose turn overlaps a face of
  someone else (interview situations)`,
		`for $t in doc("broadcast.xml")//turn
		 where exists($t/select-wide::face[@who != $t/@speaker])
		 return concat(string($t/@speaker), "@", string($t/@start))`)
}

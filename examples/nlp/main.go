// Natural language processing: concurrent markup over one text corpus — the
// TEI/CONCUR problem the paper cites. The physical hierarchy (pages, lines)
// and the linguistic hierarchy (sentences, named entities) overlap freely,
// which inline XML cannot represent; stand-off annotation handles it
// naturally, with word positions as the region domain.
//
//	go run ./examples/nlp
package main

import (
	"fmt"
	"log"
	"strings"

	"soxq"
	"soxq/internal/blob"
)

func main() {
	// The corpus: 24 words; regions below are word offsets (not bytes),
	// demonstrating that the position domain is configurable data, not
	// always byte offsets.
	words := strings.Fields(`
	  mr holmes examined the letter carefully before he spoke the
	  envelope bore a london postmark and the seal of sir charles
	  baskerville himself indeed`)
	corpus := strings.Join(words, " ")

	// Two independent hierarchies over the same word range:
	//  - physical: two pages, the page break falls INSIDE sentence 2;
	//  - linguistic: three sentences and named entities; the entity "sir
	//    charles baskerville" also straddles the page break.
	annotations := `<corpus>
	  <physical>
	    <page no="1" start="0" end="19"/>
	    <page no="2" start="20" end="23"/>
	  </physical>
	  <linguistic>
	    <sentence id="s1" start="0" end="9"/>
	    <sentence id="s2" start="10" end="22"/>
	    <sentence id="s3" start="23" end="23"/>
	    <entity type="person" id="holmes" start="0" end="1"/>
	    <entity type="location" id="london" start="13" end="13"/>
	    <entity type="person" id="baskerville" start="19" end="21"/>
	  </linguistic>
	</corpus>`

	eng := soxq.New()
	if err := eng.LoadStandOff("corpus.xml", []byte(annotations), blob.FromString(corpus)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Concurrent markup: physical pages vs. linguistic structure")
	fmt.Println()

	show(eng, "Entities fully on page 1 (select-narrow)",
		`for $e in doc("corpus.xml")//page[@no = "1"]/select-narrow::entity
		 return string($e/@id)`)

	show(eng, "Sentences that straddle the page break (overlap both pages)",
		`for $s in doc("corpus.xml")//sentence
		 where count($s/select-wide::page) > 1
		 return string($s/@id)`)

	show(eng, "Entities not contained in any single page (reject-narrow)",
		`for $e in doc("corpus.xml")//page/reject-narrow::entity
		 return string($e/@id)`)

	show(eng, "Sentences containing a person entity",
		`for $s in doc("corpus.xml")//sentence
		 where exists($s/select-narrow::entity[@type = "person"])
		 return string($s/@id)`)

	show(eng, "Pages on which each sentence appears (overlap join per sentence)",
		`for $s in doc("corpus.xml")//sentence
		 return concat(string($s/@id), ":",
		   string-join(for $p in $s/select-wide::page return string($p/@no), "+"))`)

	// Recover the annotated words through the BLOB. The region domain is
	// word offsets, so regions are mapped to byte spans by the caller —
	// here we simply split the corpus again.
	res, err := eng.Query(`for $e in doc("corpus.xml")//entity
	                       return concat(string($e/@id), "=", string(so:start($e)), "..", string(so:end($e)))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Entity word ranges resolved back to text:")
	for _, spec := range res.Strings() {
		idPart, rangePart, _ := strings.Cut(spec, "=")
		lohi := strings.SplitN(rangePart, "..", 2)
		var lo, hi int
		fmt.Sscanf(lohi[0], "%d", &lo)
		fmt.Sscanf(lohi[1], "%d", &hi)
		fmt.Printf("  %-12s %q\n", idPart, strings.Join(words[lo:hi+1], " "))
	}
}

func show(eng *soxq.Engine, label, q string) {
	res, err := eng.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("%s:\n  -> %v\n\n", label, res.Strings())
}

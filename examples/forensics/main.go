// Digital forensics: the XIRAF scenario of the paper (its first author built
// XIRAF at the Netherlands Forensic Institute). Multiple analysis tools
// annotate byte regions of a confiscated disk image: a filesystem parser
// (files may be fragmented — non-contiguous areas!), a keyword scanner and a
// file-type carver. The stand-off queries combine the tools' outputs.
//
//	go run ./examples/forensics
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"soxq"
	"soxq/internal/blob"
)

func main() {
	// ---- Synthesise a tiny "disk image" BLOB -------------------------
	// Layout (offsets in bytes):
	//     0- 511: boot sector (zeros)
	//   512-1023: report.txt, fragment 1
	//  1024-1535: deleted region with a stray credit card number
	//  1536-2047: report.txt, fragment 2 (fragmented file!)
	//  2048-3071: cat.jpg (carved JPEG signature at 2048)
	img := make([]byte, 3072)
	copy(img[512:], []byte("QUARTERLY REPORT: the transfer of 4111 1111 1111 1111 was "))
	copy(img[1024:], []byte("...deleted space... card 5500 0000 0000 0004 appears here ..."))
	copy(img[1536:], []byte("approved by the board. END OF REPORT."))
	copy(img[2048:], []byte{0xFF, 0xD8, 0xFF, 0xE0}) // JPEG magic
	disk := blob.FromBytes(img)

	// ---- Annotation documents produced by three tools ----------------
	// The filesystem tool uses the region-element representation because
	// report.txt is fragmented across two block runs.
	annotations := `<image>
	  <filesystem>
	    <file name="report.txt" owner="alice">
	      <region><start>512</start><end>1023</end></region>
	      <region><start>1536</start><end>2047</end></region>
	    </file>
	    <file name="cat.jpg" owner="bob">
	      <region><start>2048</start><end>3071</end></region>
	    </file>
	    <unallocated>
	      <region><start>1024</start><end>1535</end></region>
	    </unallocated>
	  </filesystem>
	  <keywords>
	    <hit term="4111 1111 1111 1111"><region><start>546</start><end>564</end></region></hit>
	    <hit term="5500 0000 0000 0004"><region><start>1049</start><end>1067</end></region></hit>
	    <hit term="REPORT"><region><start>522</start><end>527</end></region></hit>
	    <hit term="REPORT"><region><start>1566</start><end>1571</end></region></hit>
	  </keywords>
	  <carver>
	    <jpeg><region><start>2048</start><end>2051</end></region></jpeg>
	  </carver>
	</image>`

	eng := soxq.New()
	// Regions are <region><start/><end/></region> children, enabling
	// non-contiguous areas (paper section 2, element representation).
	if err := eng.Declare("standoff-region", "region"); err != nil {
		log.Fatal(err)
	}
	if err := eng.LoadStandOff("image.xml", []byte(annotations), disk); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Forensic queries over one disk image, three annotation tools")
	fmt.Println()

	// Which files contain credit-card-like keyword hits? Containment must
	// respect fragmentation: the hit must lie inside SOME fragment.
	q1 := `for $f in doc("image.xml")//file
	       where exists($f/select-narrow::hit[contains(@term, "1111") or contains(@term, "0000")])
	       return string($f/@name)`
	show(eng, "Files containing card-number hits (select-narrow over fragmented areas)", q1)

	// Hits in unallocated (deleted) space: classic evidence recovery.
	q2 := `for $h in doc("image.xml")//unallocated/select-narrow::hit
	       return string($h/@term)`
	show(eng, "Keyword hits inside unallocated space", q2)

	// Hits NOT inside any file: reject-narrow from all files.
	q3 := `for $h in doc("image.xml")//file/reject-narrow::hit
	       return string($h/@term)`
	show(eng, "Hits outside every file (reject-narrow)", q3)

	// Files whose content region overlaps a carved JPEG signature.
	q4 := `for $f in doc("image.xml")//jpeg/select-wide::file
	       return string($f/@name)`
	show(eng, "Files overlapping a carved JPEG signature (select-wide)", q4)

	// Reassemble the fragmented file through the BLOB.
	q5 := `so:blob-text(doc("image.xml")//file[@name = "report.txt"])`
	res, err := eng.Query(q5)
	if err != nil {
		log.Fatal(err)
	}
	content := bytes.TrimRight([]byte(res.Strings()[0]), "\x00")
	fmt.Printf("Reassembled report.txt (fragments joined in position order):\n  %q\n",
		strings.ReplaceAll(string(content), "\x00", "."))
}

func show(eng *soxq.Engine, label, q string) {
	res, err := eng.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("%s:\n  -> %v\n\n", label, res.Strings())
}

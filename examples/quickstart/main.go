// Quickstart: load the multimedia annotation document of the paper's
// Figure 1 and run the four StandOff joins of its section 3.1 table.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"soxq"
)

// The stand-off annotations of Figure 1: video shots and music tracks
// annotate time regions of the same video BLOB. Regions use the paper's
// timecode notation.
const sample = `<sample>
  <video>
    <shot id="Intro" start="0:00" end="0:08"/>
    <shot id="Interview" start="0:08" end="1:04"/>
    <shot id="Outro" start="1:04" end="1:34"/>
  </video>
  <audio>
    <music artist="U2" start="0:00" end="0:31"/>
    <music artist="Bach" start="0:52" end="1:34"/>
  </audio>
</sample>`

func main() {
	eng := soxq.New()
	// Positions are [hh:]mm:ss timecodes rather than integers.
	if err := eng.Declare("standoff-type", "so:timecode"); err != nil {
		log.Fatal(err)
	}
	if err := eng.LoadXML("sample.xml", []byte(sample)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("StandOff joins between U2 music and video shots (paper section 3.1):")
	fmt.Println()
	for _, axis := range []string{"select-narrow", "select-wide", "reject-narrow", "reject-wide"} {
		q := fmt.Sprintf(
			`for $s in doc("sample.xml")//music[@artist = "U2"]/%s::shot
			 return string($s/@id)`, axis)
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-45s %v\n", axis+"(//music[artist=\"U2\"], //shot)", res.Strings())
	}

	fmt.Println()
	fmt.Println(`Reading of the table:
  select-narrow : shots during which U2 played the whole time
  select-wide   : shots during which U2 played at some point
  reject-narrow : shots during which U2 paused at some point
  reject-wide   : shots entirely without U2`)
}

package soxq

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"soxq/internal/blob"
	"soxq/internal/xmark"
)

func sortStrings(s []string) { sort.Strings(s) }

const figure1Doc = `<sample>
  <video>
    <shot id="Intro" start="0:00" end="0:08"/>
    <shot id="Interview" start="0:08" end="1:04"/>
    <shot id="Outro" start="1:04" end="1:34"/>
  </video>
  <audio>
    <music artist="U2" start="0:00" end="0:31"/>
    <music artist="Bach" start="0:52" end="1:34"/>
  </audio>
</sample>`

func figure1Engine(t *testing.T) *Engine {
	t.Helper()
	eng := New()
	if err := eng.Declare("standoff-type", "so:timecode"); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadXML("sample.xml", []byte(figure1Doc)); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestQuickstart is the README example.
func TestQuickstart(t *testing.T) {
	eng := New()
	err := eng.LoadXML("sample.xml", []byte(`<doc>
	  <scene id="s1" start="0" end="99"/>
	  <hit start="10" end="20"/>
	</doc>`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`doc("sample.xml")//scene/select-narrow::hit`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Value(0).IsNode() {
		t.Fatalf("quickstart result: %s", res)
	}
}

// TestSection31TableAllModes reproduces the paper's section 3.1 table
// through the public API in every execution mode.
func TestSection31TableAllModes(t *testing.T) {
	want := map[string]string{
		"select-narrow": "Intro",
		"select-wide":   "Intro Interview",
		"reject-narrow": "Interview Outro",
		"reject-wide":   "Outro",
	}
	for _, mode := range []Mode{ModeLoopLifted, ModeBasic, ModeUDF} {
		eng := figure1Engine(t)
		for axis, expected := range want {
			q := fmt.Sprintf(
				`for $s in doc("sample.xml")//music[@artist = "U2"]/%s::shot return string($s/@id)`, axis)
			res, err := eng.QueryWith(q, Config{Mode: mode})
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, axis, err)
			}
			if got := strings.Join(res.Strings(), " "); got != expected {
				t.Errorf("%v/%s = %q, want %q", mode, axis, got, expected)
			}
		}
	}
}

func TestEngineBasics(t *testing.T) {
	eng := New()
	if err := eng.LoadXML("a.xml", []byte(`<a><b>1</b></a>`)); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadXML("bad.xml", []byte(`<a>`)); err == nil {
		t.Fatal("malformed XML must fail to load")
	}
	res, err := eng.Query(`doc("a.xml")/a/b + 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "2" {
		t.Fatalf("result = %s", res.String())
	}
	if _, err := eng.Query(`doc("missing.xml")`); err == nil {
		t.Fatal("missing document must fail")
	}
	if _, err := eng.Query(`1 +`); err == nil {
		t.Fatal("syntax error must fail")
	}
	if err := eng.Declare("standoff-start", "from"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Declare("no-such-option", "x"); err == nil {
		t.Fatal("unknown option must fail")
	}
	if err := eng.Declare("standoff-type", "bogus"); err == nil {
		t.Fatal("bad option value must fail")
	}
	docs := eng.Documents()
	if len(docs) != 1 || docs[0] != "a.xml" {
		t.Fatalf("Documents = %v", docs)
	}
	eng.Unload("a.xml")
	if len(eng.Documents()) != 0 {
		t.Fatal("Unload failed")
	}
}

func TestResultAccessors(t *testing.T) {
	eng := figure1Engine(t)
	res, err := eng.Query(`doc("sample.xml")//music[@artist = "Bach"]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("Len = %d", res.Len())
	}
	v := res.Value(0)
	if !v.IsNode() {
		t.Fatal("expected a node")
	}
	if !strings.Contains(v.XML(), `artist="Bach"`) {
		t.Fatalf("XML = %s", v.XML())
	}
	vals := res.Values()
	if len(vals) != 1 || vals[0].XML() != v.XML() {
		t.Fatal("Values mismatch")
	}
	res2, err := eng.Query(`doc("sample.xml")//music/@artist`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.String() != `artist="U2" artist="Bach"` {
		t.Fatalf("attr serialization = %s", res2.String())
	}
	if got := res2.Strings(); got[0] != "U2" || got[1] != "Bach" {
		t.Fatalf("Strings = %v", got)
	}
}

func TestIndexCachingAcrossQueries(t *testing.T) {
	eng := figure1Engine(t)
	if err := eng.BuildIndex("sample.xml"); err == nil {
		// Index under timecode options must parse 0:00 values; building
		// eagerly succeeds.
		_ = err
	} else {
		t.Fatalf("BuildIndex: %v", err)
	}
	if len(eng.indexes) != 1 {
		t.Fatalf("index cache size = %d", len(eng.indexes))
	}
	if _, err := eng.Query(`count(doc("sample.xml")//music/select-wide::shot)`); err != nil {
		t.Fatal(err)
	}
	if len(eng.indexes) != 1 {
		t.Fatalf("index cache grew unexpectedly: %d", len(eng.indexes))
	}
	// Different per-query options build a separate index... with integer
	// positions the timecode values fail, which must surface as an error.
	if _, err := eng.Query(`declare option standoff-type "xs:integer";
		count(doc("sample.xml")//music/select-wide::shot)`); err == nil {
		t.Fatal("integer options over timecode data must fail index construction")
	}
}

func TestLoadStandOffAndBlobText(t *testing.T) {
	eng := New()
	err := eng.LoadStandOff("notes.xml",
		[]byte(`<doc start="0" end="10"><note start="0" end="4"/><note start="6" end="10"/></doc>`),
		blob.FromString("Hello world"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`for $n in doc("notes.xml")//note return so:blob-text($n)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Strings(), "|"); got != "Hello|world" {
		t.Fatalf("blob-text = %q", got)
	}
}

// TestXMarkStandOffEquivalence is the central integration test: the plain
// XMark queries on the original document and the stand-off rewritings on the
// converted (permuted!) document must agree, with text retrieved back
// through the BLOB.
func TestXMarkStandOffEquivalence(t *testing.T) {
	data, err := xmark.GenerateBytes(xmark.Config{Scale: 0.004, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	eng := New()
	if err := eng.LoadXML("xmark.xml", data); err != nil {
		t.Fatal(err)
	}
	if err := eng.ConvertToStandOff("xmark.xml", "xmark-so.xml", true, 5); err != nil {
		t.Fatal(err)
	}

	// Q1: same person, name text via BLOB.
	plain, err := eng.Query(xmark.Query(1, "xmark.xml"))
	if err != nil {
		t.Fatal(err)
	}
	so, err := eng.Query(`for $n in (` + stripReturn(xmark.StandOffQuery(1, "xmark-so.xml")) + `) return so:blob-text($n)`)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != so.String() {
		t.Fatalf("Q1: plain %q != standoff %q", plain.String(), so.String())
	}

	// Q2: increases of first bidders, text via BLOB.
	plain2, err := eng.Query(`for $b in doc("xmark.xml")/site/open_auctions/open_auction
		return string($b/bidder[1]/increase)`)
	if err != nil {
		t.Fatal(err)
	}
	so2, err := eng.Query(`for $b in doc("xmark-so.xml")//site/select-narrow::open_auctions/select-narrow::open_auction
		return string-join(
		  for $i in $b/select-narrow::bidder[1]/select-narrow::increase
		  return so:blob-text($i), "")`)
	if err != nil {
		t.Fatal(err)
	}
	// The permutation changes the document order of the auctions, so the
	// result sequences agree as multisets, not in order (the stand-off step
	// returns nodes in the stand-off document's order, section 3.2).
	ps, ss := plain2.Strings(), so2.Strings()
	sortStrings(ps)
	sortStrings(ss)
	if strings.Join(ps, "|") != strings.Join(ss, "|") {
		t.Fatalf("Q2 mismatch:\nplain %v\nso    %v", ps, ss)
	}

	// Q6 and Q7 are counts; compare directly across all modes.
	for _, q := range []int{6, 7} {
		plainRes, err := eng.Query(xmark.Query(q, "xmark.xml"))
		if err != nil {
			t.Fatalf("Q%d plain: %v", q, err)
		}
		for _, mode := range []Mode{ModeLoopLifted, ModeBasic, ModeUDF} {
			soRes, err := eng.QueryWith(xmark.StandOffQuery(q, "xmark-so.xml"), Config{Mode: mode})
			if err != nil {
				t.Fatalf("Q%d %v: %v", q, mode, err)
			}
			if plainRes.String() != soRes.String() {
				t.Fatalf("Q%d (%v): plain %q != standoff %q", q, mode, plainRes.String(), soRes.String())
			}
		}
	}

	// The UDF-form stand-off queries (Figure 3 baseline) agree too.
	for _, q := range []int{6, 7} {
		udfRes, err := eng.Query(xmark.UDFStandOffQuery(q, "xmark-so.xml"))
		if err != nil {
			t.Fatalf("Q%d UDF: %v", q, err)
		}
		plainRes, _ := eng.Query(xmark.Query(q, "xmark.xml"))
		if udfRes.String() != plainRes.String() {
			t.Fatalf("Q%d UDF: %q != %q", q, udfRes.String(), plainRes.String())
		}
	}
}

// stripReturn extracts the body of "for $b in X return Y" queries as a plain
// path so the test can wrap it; crude but sufficient for Q1's shape.
func stripReturn(q string) string {
	q = strings.ReplaceAll(q, "\n", " ")
	i := strings.Index(q, "for ")
	return q[i:]
}

// TestConcurrentQueries: the engine must be safe for parallel use.
func TestConcurrentQueries(t *testing.T) {
	eng := figure1Engine(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			res, err := eng.Query(`count(doc("sample.xml")//music/select-wide::shot)`)
			if err == nil && res.String() != "3" {
				err = fmt.Errorf("got %s", res.String())
			}
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if ModeAuto.String() != "auto" || ModeLoopLifted.String() != "looplifted" ||
		ModeBasic.String() != "basic" || ModeUDF.String() != "udf" {
		t.Fatal("mode names wrong")
	}
	if ModeAuto != 0 {
		t.Fatal("ModeAuto must be the zero value: Config{} means statistics-driven execution")
	}
}

// TestXMarkSubstrateQueries runs the additional XMark queries (3, 5, 8) on a
// generated document, validating the engine substrate beyond the four
// queries the paper rewrote: positional last(), aggregation over a filtered
// sequence, and a value join between people and closed auctions.
func TestXMarkSubstrateQueries(t *testing.T) {
	data, err := xmark.GenerateBytes(xmark.Config{Scale: 0.004, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	eng := New()
	if err := eng.LoadXML("x.xml", data); err != nil {
		t.Fatal(err)
	}

	// Q3: every result element has first <= last/2... i.e. 2*first <= last.
	res3, err := eng.Query(xmark.Query(3, "x.xml"))
	if err != nil {
		t.Fatalf("Q3: %v", err)
	}
	for _, v := range res3.Values() {
		if !strings.Contains(v.XML(), "first=") || !strings.Contains(v.XML(), "last=") {
			t.Fatalf("Q3 item malformed: %s", v.XML())
		}
	}

	// Q5 must agree with a hand-rolled count.
	res5, err := eng.Query(xmark.Query(5, "x.xml"))
	if err != nil {
		t.Fatalf("Q5: %v", err)
	}
	manual, err := eng.Query(`count(doc("x.xml")//closed_auction[price >= 40])`)
	if err != nil {
		t.Fatal(err)
	}
	if res5.String() != manual.String() {
		t.Fatalf("Q5 = %s, manual count = %s", res5.String(), manual.String())
	}

	// Q8: one result element per person; the total of the counts equals the
	// number of closed auctions whose buyer exists.
	res8, err := eng.Query(xmark.Query(8, "x.xml"))
	if err != nil {
		t.Fatalf("Q8: %v", err)
	}
	persons, err := eng.Query(`count(doc("x.xml")/site/people/person)`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res8.Len()) != persons.String() {
		t.Fatalf("Q8 results = %d, persons = %s", res8.Len(), persons.String())
	}
	sum, err := eng.Query(`sum(for $p in doc("x.xml")/site/people/person
		return count(doc("x.xml")/site/closed_auctions/closed_auction[buyer/@person = $p/@id]))`)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := eng.Query(`count(doc("x.xml")//closed_auction)`)
	if err != nil {
		t.Fatal(err)
	}
	if sum.String() != closed.String() {
		t.Fatalf("Q8 join total = %s, closed auctions = %s (every buyer must resolve)", sum.String(), closed.String())
	}
}

package soxq

import (
	"fmt"
	"sort"

	"soxq/internal/core"
	"soxq/internal/tree"
	"soxq/internal/xqexec"
)

// Corpus layer: a corpus is a named, ordered set of loaded documents, and a
// corpus query is the same compiled plan fanned out across the per-document
// region indexes — one shard per member document, executed in parallel when
// configured, merged back in corpus (document) order. Inside a shard the
// corpus URI resolves to that shard's member, so a query written as
//
//	doc("news")//scene/select-narrow::hit
//
// over a corpus named "news" runs once per member with doc("news") bound to
// each member in turn, exactly as if the member's own name had been written.
// Per-shard strategy memos, plan caching and the bounded-memory cursor
// pipeline all apply unchanged; what the corpus layer adds is the fan-out,
// the document-order merge (internal/xqexec.MergeShards) and a result cache
// keyed by the catalog generation.

// CreateCorpus defines (or redefines) a corpus: an ordered list of loaded
// documents queried as one collection. Members must be loaded, distinct, and
// the corpus name must not shadow a loaded document — inside a corpus run the
// corpus URI resolves to each member in turn, so a same-named document could
// never be addressed. Redefinition replaces the member list atomically.
func (e *Engine) CreateCorpus(name string, members ...string) error {
	if name == "" {
		return fmt.Errorf("soxq: empty corpus name")
	}
	if len(members) == 0 {
		return fmt.Errorf("soxq: corpus %q needs at least one member document", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.docs[name]; ok {
		return fmt.Errorf("soxq: corpus name %q collides with a loaded document", name)
	}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if _, ok := e.docs[m]; !ok {
			return fmt.Errorf("soxq: corpus %q: member document %q is not loaded", name, m)
		}
		if seen[m] {
			return fmt.Errorf("soxq: corpus %q: duplicate member %q", name, m)
		}
		seen[m] = true
	}
	e.corpora[name] = append([]string(nil), members...)
	e.gen.Add(1)
	return nil
}

// DropCorpus removes a corpus definition. The member documents stay loaded.
func (e *Engine) DropCorpus(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.corpora[name]; !ok {
		return fmt.Errorf("soxq: no corpus %q", name)
	}
	delete(e.corpora, name)
	e.gen.Add(1)
	return nil
}

// Corpora returns the names of all defined corpora, sorted.
func (e *Engine) Corpora() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.corpora))
	for n := range e.corpora {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CorpusMembers returns the member documents of a corpus in corpus order —
// the order shard results merge back in.
func (e *Engine) CorpusMembers(name string) ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	members, ok := e.corpora[name]
	if !ok {
		return nil, fmt.Errorf("soxq: no corpus %q", name)
	}
	return append([]string(nil), members...), nil
}

// CatalogGeneration returns the engine's catalog generation: a counter bumped
// by every document load/unload, annotation mutation, corpus definition, blob
// attach and Declare. The corpus result cache keys on it, so any of those
// events implicitly invalidates every cached result; compaction does not bump
// it (results are byte-identical across a compaction).
func (e *Engine) CatalogGeneration() uint64 { return e.gen.Load() }

// shard is one member document pinned for a corpus run.
type shard struct {
	name string
	doc  *tree.Doc
}

// corpusShards snapshots a corpus under one read lock: the member list, each
// member's current document snapshot, and the catalog generation the snapshot
// belongs to. Every shard of the run drains this one generation even while
// writers land new ones.
func (e *Engine) corpusShards(corpus string) ([]shard, uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	members, ok := e.corpora[corpus]
	if !ok {
		return nil, 0, fmt.Errorf("soxq: no corpus %q", corpus)
	}
	shards := make([]shard, len(members))
	for i, m := range members {
		d, ok := e.docs[m]
		if !ok {
			return nil, 0, fmt.Errorf("soxq: corpus %q: member document %q is not loaded", corpus, m)
		}
		shards[i] = shard{name: m, doc: d}
	}
	return shards, e.gen.Load(), nil
}

// corpusMerge builds the fan-out/merge cursor of one corpus run: one lazily
// built shard pipeline per member, drained through the cross-document merge.
// cfg.Parallelism governs the shard pool (one worker drains one shard's
// pipeline at a time); shard-internal FLWOR partitioning stays off under the
// pool so a run's goroutine count is bounded by the shard workers, while a
// sequential run (Parallelism <= 1) keeps the single-document behaviour and
// hands cfg.Parallelism to each shard pipeline instead.
func (p *Prepared) corpusMerge(corpus string, cfg Config, chunk int, ro runObs) (xqexec.Cursor, error) {
	shards, _, err := p.eng.corpusShards(corpus)
	if err != nil {
		return nil, err
	}
	p.eng.tel.corpusRun(len(shards))
	shardWorkers := cfg.Parallelism
	innerParallel := 0
	if shardWorkers <= 1 {
		innerParallel = cfg.Parallelism
	}
	sources := make([]xqexec.ShardSource, len(shards))
	for i, sh := range shards {
		sources[i] = func() (xqexec.Cursor, error) {
			// The run view is pre-seeded so both the corpus URI and the
			// member's own name resolve to the pinned member snapshot; any
			// other document reference falls through to the engine.
			rv := &runView{eng: p.eng, opts: p.plan.Options(),
				docs: map[string]*tree.Doc{corpus: sh.doc, sh.name: sh.doc}}
			ev := p.evaluatorWith(cfg, rv)
			ev.Stats = ro.st
			return xqexec.Build(ev, xqexec.Config{ChunkSize: chunk, Parallelism: innerParallel})
		}
	}
	return xqexec.MergeShards(sources, shardWorkers, chunk, p.eng.met()), nil
}

// StreamCorpus executes the compiled query once per member document of the
// named corpus and returns one cursor over the merged result: shard streams
// concatenate in corpus order, item-for-item identical to running the query
// against each member in turn. With cfg.Parallelism > 1 the shards execute
// on a bounded worker pool; memory stays proportional to Parallelism x chunk,
// never to the corpus size, and Close mid-stream tears the pool down without
// leaking a goroutine.
func (p *Prepared) StreamCorpus(corpus string, cfg Config) (*Cursor, error) {
	chunk := cfg.StreamChunk
	if chunk <= 0 {
		chunk = xqexec.DefaultChunkSize
	}
	ro := p.beginRun(cfg, "stream")
	cur, err := p.corpusMerge(corpus, cfg, chunk, ro)
	if err != nil {
		return nil, err
	}
	return &Cursor{cur: cur, ro: ro}, nil
}

// ExecCorpus is the materialising form of StreamCorpus: the merged corpus
// stream drained into a Result.
func (p *Prepared) ExecCorpus(corpus string, cfg Config) (*Result, error) {
	ro := p.beginRun(cfg, "exec")
	cur, err := p.corpusMerge(corpus, cfg, xqexec.DefaultChunkSize, ro)
	if err != nil {
		return nil, err
	}
	items, err := xqexec.DrainAll(cur)
	ro.finish()
	if err != nil {
		return nil, err
	}
	return &Result{items: items}, nil
}

// resultKey identifies one cached corpus result. The catalog generation is
// part of the key, so a load/unload/mutation — which bumps the generation —
// orphans every older entry instead of requiring an explicit purge; orphans
// age out of the bounded LRU. Options are included because they change what
// a query means; execution tunables (mode, parallelism, chunking) are not,
// because every execution style returns the identical sequence (pinned by
// the differential fuzz harness).
type resultKey struct {
	query  string
	corpus string
	gen    uint64
	opts   core.Options
}

// QueryCorpus runs q over the named corpus through both caches: the plan
// cache (shared with every other query path) and the corpus result cache. A
// result-cache hit skips execution entirely; concurrent misses on the same
// (query, corpus, generation) collapse into one execution via the cache's
// singleflight. Results are materialised — this is the endpoint for hot,
// repeated catalog queries; unbounded result sets should use StreamCorpus.
func (e *Engine) QueryCorpus(q, corpus string, cfg Config) (*Result, error) {
	p, err := e.preparedCached(q)
	if err != nil {
		return nil, err
	}
	// Snapshot the generation before fanning out: a mutation landing during
	// the run bumps the generation, so the entry written here is already
	// orphaned — the cache can serve stale entries only for runs that began
	// before the mutation, which is exactly the snapshot the in-flight
	// cursors drain anyway.
	key := resultKey{query: q, corpus: corpus, gen: e.gen.Load(), opts: p.plan.Options()}
	return e.results.GetOrCompute(key, func() (*Result, error) {
		return p.ExecCorpus(corpus, cfg)
	})
}

// StreamQueryCorpus is StreamCorpus through the plan cache — the soxqd
// streaming path, where the query text arrives per request.
func (e *Engine) StreamQueryCorpus(q, corpus string, cfg Config) (*Cursor, error) {
	p, err := e.preparedCached(q)
	if err != nil {
		return nil, err
	}
	return p.StreamCorpus(corpus, cfg)
}

// ResultCacheStats reports the corpus result cache's cumulative hit and miss
// counts and its current size.
func (e *Engine) ResultCacheStats() (hits, misses uint64, size int) {
	hits, misses = e.results.Stats()
	return hits, misses, e.results.Len()
}

// Command sobench reproduces Figure 6 of the paper: the StandOff XMark
// queries 1, 2, 6 and 7 over document sizes 11 MB … 1100 MB, comparing the
// three implementation strategies
//
//	udf         "XQuery Function with Candidate Sequence" (nested loop)
//	udf-nocand  the same without a candidate sequence (the all-DNF variant)
//	basic       Basic StandOff MergeJoin (one merge per iteration)
//	looplifted  Loop-Lifted StandOff MergeJoin (the paper's contribution)
//
// Example (the paper's full sweep is -scales 0.1,0.5,1,5,10):
//
//	sobench -scales 0.1,0.5,1 -timeout 300 -dir /tmp/soxq-bench
//
// Each measurement runs in a subprocess so that a timed-out cell can be
// killed cleanly (the paper's DNF, there with a one-hour budget). Data files
// are generated once per scale and reused.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"soxq"
	"soxq/internal/xmark"
	"soxq/internal/xmlparse"
)

var paperScaleNames = map[string]string{
	"0.1": "11MB", "0.5": "55MB", "1": "110MB", "5": "550MB", "10": "1100MB",
}

func main() {
	scales := flag.String("scales", "0.1,0.5,1", "comma-separated XMark scale factors")
	queries := flag.String("queries", "1,2,6,7", "comma-separated XMark query numbers")
	variants := flag.String("variants", "udf,basic,looplifted", "comma-separated variants (udf,udf-nocand,basic,looplifted,auto,stream,parallel)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-cell budget before declaring DNF (paper: 1h)")
	dir := flag.String("dir", "soxq-bench-data", "directory for generated data files")
	seed := flag.Uint64("seed", 42, "generator seed")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	prepare := flag.Bool("prepare", false,
		"prepare each query before timing so cells measure pure execution (excludes parse+compile)")

	// Internal flags for the subprocess cell runner.
	cellDoc := flag.String("run-cell-doc", "", "internal: stand-off document path")
	cellQuery := flag.Int("run-cell-query", 0, "internal: query number")
	cellVariant := flag.String("run-cell-variant", "", "internal: variant name")
	flag.Parse()

	if *cellDoc != "" {
		runCell(*cellDoc, *cellQuery, *cellVariant, *prepare)
		return
	}

	scaleList := splitFloats(*scales)
	queryList := splitInts(*queries)
	variantList := strings.Split(*variants, ",")

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal("%v", err)
	}
	type key struct {
		scale   float64
		query   int
		variant string
	}
	results := map[key]string{}

	for _, scale := range scaleList {
		soPath, err := ensureData(*dir, scale, *seed)
		if err != nil {
			fatal("generating scale %g: %v", scale, err)
		}
		for _, q := range queryList {
			for _, variant := range variantList {
				secs, ok := runCellSubprocess(soPath, q, variant, *timeout, *prepare)
				k := key{scale, q, variant}
				if !ok {
					results[k] = "DNF"
					fmt.Fprintf(os.Stderr, "scale %g Q%d %-10s DNF (> %v)\n", scale, q, variant, *timeout)
				} else {
					results[k] = fmt.Sprintf("%.3f", secs)
					fmt.Fprintf(os.Stderr, "scale %g Q%d %-10s %8.3fs\n", scale, q, variant, secs)
				}
			}
		}
	}

	// Paper-style output: one block per query, variants as rows, sizes as
	// columns (Figure 6 shows the same grid as four log-scale plots).
	var csv strings.Builder
	csv.WriteString("query,variant,scale,size,seconds\n")
	for _, q := range queryList {
		fmt.Printf("\nStandOff XMark Q%d (seconds; DNF = did not finish within %v)\n", q, *timeout)
		fmt.Printf("%-34s", "variant \\ size")
		for _, s := range scaleList {
			fmt.Printf("%12s", sizeName(s))
		}
		fmt.Println()
		for _, variant := range variantList {
			fmt.Printf("%-34s", variantLabel(variant))
			for _, s := range scaleList {
				cell := results[key{s, q, variant}]
				fmt.Printf("%12s", cell)
				fmt.Fprintf(&csv, "%d,%s,%g,%s,%s\n", q, variant, s, sizeName(s), cell)
			}
			fmt.Println()
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fatal("writing CSV: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

func variantLabel(v string) string {
	switch v {
	case "udf":
		return "XQuery Function w/ Candidate Seq."
	case "udf-nocand":
		return "XQuery Function (no candidates)"
	case "basic":
		return "Basic StandOff MergeJoin"
	case "looplifted":
		return "Loop-Lifted StandOff MergeJoin"
	case "auto":
		return "Per-Step Cost Model (auto)"
	case "stream":
		return "Streamed Cursor Pipeline"
	case "parallel":
		return "Parallel Partitioned FLWOR"
	}
	return v
}

func sizeName(scale float64) string {
	s := strconv.FormatFloat(scale, 'g', -1, 64)
	if n, ok := paperScaleNames[s]; ok {
		return n
	}
	return s + "x"
}

// ensureData generates (once) the stand-off XMark files for a scale and
// returns the stand-off document path.
func ensureData(dir string, scale float64, seed uint64) (string, error) {
	base := filepath.Join(dir, fmt.Sprintf("xmark-%s", strconv.FormatFloat(scale, 'g', -1, 64)))
	soPath := base + ".standoff.xml"
	if _, err := os.Stat(soPath); err == nil {
		return soPath, nil
	}
	fmt.Fprintf(os.Stderr, "generating %s (scale %g)...\n", soPath, scale)
	plain := base + ".xml"
	f, err := os.Create(plain)
	if err != nil {
		return "", err
	}
	if err := xmark.Generate(f, xmark.Config{Scale: scale, Seed: seed}); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	doc, err := xmlparse.ParseFile(plain)
	if err != nil {
		return "", err
	}
	cfg := xmark.DefaultStandOffConfig()
	cfg.Seed = seed
	res, err := xmark.StandOffize(doc, cfg)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(soPath, res.XML, 0o644); err != nil {
		return "", err
	}
	return soPath, os.WriteFile(base+".blob", res.Blob, 0o644)
}

// runCellSubprocess executes one measurement in a child process and kills it
// at the timeout (DNF).
func runCellSubprocess(soPath string, q int, variant string, timeout time.Duration, prepare bool) (float64, bool) {
	args := []string{
		"-run-cell-doc", soPath,
		"-run-cell-query", strconv.Itoa(q),
		"-run-cell-variant", variant,
	}
	if prepare {
		args = append(args, "-prepare")
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		fatal("%v", err)
	}
	if err := cmd.Start(); err != nil {
		fatal("%v", err)
	}
	done := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		var last string
		for sc.Scan() {
			last = sc.Text()
		}
		done <- last
	}()
	timer := time.AfterFunc(timeout, func() { _ = cmd.Process.Kill() })
	last := <-done
	waitErr := cmd.Wait()
	timedOut := !timer.Stop()
	if timedOut || waitErr != nil || !strings.HasPrefix(last, "seconds=") {
		return 0, false
	}
	secs, err := strconv.ParseFloat(strings.TrimPrefix(last, "seconds="), 64)
	if err != nil {
		return 0, false
	}
	return secs, true
}

// runCell is the subprocess body: load the document, build the index, run
// the query once, print the evaluation seconds. With prepare set, the query
// is compiled before the clock starts, so the cell times the join strategy
// alone (the paper-figure mode); otherwise the cell includes parse+compile,
// matching the pre-pipeline measurements.
func runCell(soPath string, q int, variant string, prepare bool) {
	cfg := soxq.Config{}
	streamed := false
	switch variant {
	case "auto":
		cfg.Mode = soxq.ModeAuto
	case "udf":
		cfg.Mode = soxq.ModeUDF
	case "udf-nocand":
		cfg.Mode = soxq.ModeUDF
		cfg.NoPushdown = true
	case "basic":
		cfg.Mode = soxq.ModeBasic
	case "looplifted":
		cfg.Mode = soxq.ModeLoopLifted
	case "stream":
		// Drain the query through the cursor pipeline: same auto-mode
		// joins, bounded-memory execution.
		streamed = true
	case "parallel":
		// Auto-mode joins with large FLWOR loops partitioned across all
		// cores (order-preserving merge).
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	default:
		fatal("unknown variant %q", variant)
	}
	eng := soxq.New()
	if err := eng.LoadXMLFile("doc.xml", soPath); err != nil {
		fatal("%v", err)
	}
	if err := eng.BuildIndex("doc.xml"); err != nil {
		fatal("%v", err)
	}
	query := xmark.StandOffQuery(q, "doc.xml")
	run := func(prep *soxq.Prepared) (int, error) {
		if streamed {
			cur, err := prep.Stream(cfg)
			if err != nil {
				return 0, err
			}
			n := 0
			for cur.Next() {
				n++
			}
			return n, cur.Close()
		}
		res, err := prep.Exec(cfg)
		if err != nil {
			return 0, err
		}
		return res.Len(), nil
	}
	// With -prepare the clock starts after parse+compile (the paper-figure
	// mode, measuring the join strategy alone); without it the cell pays
	// the whole pipeline, matching the pre-pipeline measurements.
	var prep *soxq.Prepared
	var err error
	start := time.Now()
	if prepare {
		if prep, err = eng.Prepare(query); err != nil {
			fatal("Q%d (%s): %v", q, variant, err)
		}
		start = time.Now()
	} else if prep, err = eng.Prepare(query); err != nil {
		fatal("Q%d (%s): %v", q, variant, err)
	}
	items, err := run(prep)
	if err != nil {
		fatal("Q%d (%s): %v", q, variant, err)
	}
	secs := time.Since(start).Seconds()
	fmt.Fprintf(os.Stderr, "  [cell] Q%d %s: %d items in %.3fs\n", q, variant, items, secs)
	fmt.Printf("seconds=%.6f\n", secs)
}

func splitFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal("bad scale %q", part)
		}
		out = append(out, v)
	}
	return out
}

func splitInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal("bad query number %q", part)
		}
		out = append(out, v)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sobench: "+format+"\n", args...)
	os.Exit(1)
}

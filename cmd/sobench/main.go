// Command sobench reproduces Figure 6 of the paper: the StandOff XMark
// queries 1, 2, 6 and 7 over document sizes 11 MB … 1100 MB, comparing the
// three implementation strategies
//
//	udf         "XQuery Function with Candidate Sequence" (nested loop)
//	udf-nocand  the same without a candidate sequence (the all-DNF variant)
//	basic       Basic StandOff MergeJoin (one merge per iteration)
//	looplifted  Loop-Lifted StandOff MergeJoin (the paper's contribution)
//
// Example (the paper's full sweep is -scales 0.1,0.5,1,5,10):
//
//	sobench -scales 0.1,0.5,1 -timeout 300 -dir /tmp/soxq-bench
//
// Each measurement runs in a subprocess so that a timed-out cell can be
// killed cleanly (the paper's DNF, there with a one-hour budget). Data files
// are generated once per scale and reused.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"time"

	"soxq"
	"soxq/internal/xmark"
	"soxq/internal/xmlparse"
)

var paperScaleNames = map[string]string{
	"0.1": "11MB", "0.5": "55MB", "1": "110MB", "5": "550MB", "10": "1100MB",
}

func main() {
	scales := flag.String("scales", "0.1,0.5,1", "comma-separated XMark scale factors")
	queries := flag.String("queries", "1,2,6,7", "comma-separated XMark query numbers")
	variants := flag.String("variants", "udf,basic,looplifted", "comma-separated variants (udf,udf-nocand,basic,looplifted,auto,stream,parallel)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-cell budget before declaring DNF (paper: 1h)")
	dir := flag.String("dir", "soxq-bench-data", "directory for generated data files")
	seed := flag.Uint64("seed", 42, "generator seed")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	prepare := flag.Bool("prepare", false,
		"prepare each query before timing so cells measure pure execution (excludes parse+compile)")
	analyze := flag.Bool("analyze", false,
		"print per-step estimated vs observed cardinalities (EXPLAIN ANALYZE, auto mode) instead of the timing grid")
	calibrate := flag.Bool("calibrate", false,
		"measure the Basic vs Loop-Lifted crossover on synthetic layers and report the implied cost-model overhead")
	streamChunk := flag.Int("stream-chunk", 0,
		"tuples (and StandOff context areas) per pipeline chunk for the stream variant (0 = default 1024)")
	cpuProfile := flag.String("cpuprofile", "",
		"write a CPU profile of each cell's measured run to this path plus a .qN.variant suffix")
	memProfile := flag.String("memprofile", "",
		"write a post-run heap profile of each cell to this path plus a .qN.variant suffix")
	metrics := flag.Bool("metrics", false,
		"dump each cell engine's metrics registry (Prometheus text: join counts, latency histograms, cache and pool counters) to stderr after the run")
	mutateN := flag.Int("mutate", 0,
		"insert this many annotations into each cell's document after index build, so cells measure queries over LSM delta layers instead of a pristine index")

	// Internal flags for the subprocess cell runner.
	cellDoc := flag.String("run-cell-doc", "", "internal: stand-off document path")
	cellQuery := flag.Int("run-cell-query", 0, "internal: query number")
	cellVariant := flag.String("run-cell-variant", "", "internal: variant name")
	flag.Parse()

	if *cellDoc != "" {
		runCell(*cellDoc, *cellQuery, *cellVariant, *prepare, *streamChunk, *mutateN, *cpuProfile, *memProfile, *metrics)
		return
	}
	if *calibrate {
		runCalibrate()
		return
	}

	scaleList := splitFloats(*scales)
	queryList := splitInts(*queries)
	variantList := strings.Split(*variants, ",")

	if *analyze {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal("%v", err)
		}
		runAnalyze(*dir, scaleList, queryList, *seed)
		return
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal("%v", err)
	}
	type key struct {
		scale   float64
		query   int
		variant string
	}
	results := map[key]string{}

	for _, scale := range scaleList {
		soPath, err := ensureData(*dir, scale, *seed)
		if err != nil {
			fatal("generating scale %g: %v", scale, err)
		}
		for _, q := range queryList {
			for _, variant := range variantList {
				secs, ok := runCellSubprocess(soPath, q, variant, *timeout, *prepare, *streamChunk, *mutateN, *cpuProfile, *memProfile, *metrics)
				k := key{scale, q, variant}
				if !ok {
					results[k] = "DNF"
					fmt.Fprintf(os.Stderr, "scale %g Q%d %-10s DNF (> %v)\n", scale, q, variant, *timeout)
				} else {
					results[k] = fmt.Sprintf("%.3f", secs)
					fmt.Fprintf(os.Stderr, "scale %g Q%d %-10s %8.3fs\n", scale, q, variant, secs)
				}
			}
		}
	}

	// Paper-style output: one block per query, variants as rows, sizes as
	// columns (Figure 6 shows the same grid as four log-scale plots).
	var csv strings.Builder
	csv.WriteString("query,variant,scale,size,seconds\n")
	for _, q := range queryList {
		fmt.Printf("\nStandOff XMark Q%d (seconds; DNF = did not finish within %v)\n", q, *timeout)
		fmt.Printf("%-34s", "variant \\ size")
		for _, s := range scaleList {
			fmt.Printf("%12s", sizeName(s))
		}
		fmt.Println()
		for _, variant := range variantList {
			fmt.Printf("%-34s", variantLabel(variant))
			for _, s := range scaleList {
				cell := results[key{s, q, variant}]
				fmt.Printf("%12s", cell)
				fmt.Fprintf(&csv, "%d,%s,%g,%s,%s\n", q, variant, s, sizeName(s), cell)
			}
			fmt.Println()
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fatal("writing CSV: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

func variantLabel(v string) string {
	switch v {
	case "udf":
		return "XQuery Function w/ Candidate Seq."
	case "udf-nocand":
		return "XQuery Function (no candidates)"
	case "basic":
		return "Basic StandOff MergeJoin"
	case "looplifted":
		return "Loop-Lifted StandOff MergeJoin"
	case "auto":
		return "Per-Step Cost Model (auto)"
	case "stream":
		return "Streamed Cursor Pipeline"
	case "parallel":
		return "Parallel Partitioned FLWOR"
	}
	return v
}

func sizeName(scale float64) string {
	s := strconv.FormatFloat(scale, 'g', -1, 64)
	if n, ok := paperScaleNames[s]; ok {
		return n
	}
	return s + "x"
}

// ensureData generates (once) the stand-off XMark files for a scale and
// returns the stand-off document path.
func ensureData(dir string, scale float64, seed uint64) (string, error) {
	base := filepath.Join(dir, fmt.Sprintf("xmark-%s", strconv.FormatFloat(scale, 'g', -1, 64)))
	soPath := base + ".standoff.xml"
	if _, err := os.Stat(soPath); err == nil {
		return soPath, nil
	}
	fmt.Fprintf(os.Stderr, "generating %s (scale %g)...\n", soPath, scale)
	plain := base + ".xml"
	f, err := os.Create(plain)
	if err != nil {
		return "", err
	}
	if err := xmark.Generate(f, xmark.Config{Scale: scale, Seed: seed}); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	doc, err := xmlparse.ParseFile(plain)
	if err != nil {
		return "", err
	}
	cfg := xmark.DefaultStandOffConfig()
	cfg.Seed = seed
	res, err := xmark.StandOffize(doc, cfg)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(soPath, res.XML, 0o644); err != nil {
		return "", err
	}
	return soPath, os.WriteFile(base+".blob", res.Blob, 0o644)
}

// runCellSubprocess executes one measurement in a child process and kills it
// at the timeout (DNF).
func runCellSubprocess(soPath string, q int, variant string, timeout time.Duration, prepare bool, streamChunk, mutateN int, cpuProfile, memProfile string, metrics bool) (float64, bool) {
	args := []string{
		"-run-cell-doc", soPath,
		"-run-cell-query", strconv.Itoa(q),
		"-run-cell-variant", variant,
	}
	if prepare {
		args = append(args, "-prepare")
	}
	if streamChunk > 0 {
		args = append(args, "-stream-chunk", strconv.Itoa(streamChunk))
	}
	if mutateN > 0 {
		args = append(args, "-mutate", strconv.Itoa(mutateN))
	}
	// Profiles go to one file per cell — a shared path would be overwritten
	// by every later cell of the grid.
	if cpuProfile != "" {
		args = append(args, "-cpuprofile", cellProfilePath(cpuProfile, q, variant))
	}
	if memProfile != "" {
		args = append(args, "-memprofile", cellProfilePath(memProfile, q, variant))
	}
	if metrics {
		args = append(args, "-metrics")
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		fatal("%v", err)
	}
	if err := cmd.Start(); err != nil {
		fatal("%v", err)
	}
	done := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		var last string
		for sc.Scan() {
			last = sc.Text()
		}
		done <- last
	}()
	timer := time.AfterFunc(timeout, func() { _ = cmd.Process.Kill() })
	last := <-done
	waitErr := cmd.Wait()
	timedOut := !timer.Stop()
	if timedOut || waitErr != nil || !strings.HasPrefix(last, "seconds=") {
		return 0, false
	}
	secs, err := strconv.ParseFloat(strings.TrimPrefix(last, "seconds="), 64)
	if err != nil {
		return 0, false
	}
	return secs, true
}

// runCell is the subprocess body: load the document, build the index, run
// the query once, print the evaluation seconds. With prepare set, the query
// is compiled before the clock starts, so the cell times the join strategy
// alone (the paper-figure mode); otherwise the cell includes parse+compile,
// matching the pre-pipeline measurements.
// cellProfilePath derives the per-cell profile filename.
func cellProfilePath(base string, q int, variant string) string {
	return fmt.Sprintf("%s.q%d.%s", base, q, variant)
}

func runCell(soPath string, q int, variant string, prepare bool, streamChunk, mutateN int, cpuProfile, memProfile string, metrics bool) {
	cfg := soxq.Config{StreamChunk: streamChunk}
	streamed := false
	switch variant {
	case "auto":
		cfg.Mode = soxq.ModeAuto
	case "udf":
		cfg.Mode = soxq.ModeUDF
	case "udf-nocand":
		cfg.Mode = soxq.ModeUDF
		cfg.NoPushdown = true
	case "basic":
		cfg.Mode = soxq.ModeBasic
	case "looplifted":
		cfg.Mode = soxq.ModeLoopLifted
	case "stream":
		// Drain the query through the cursor pipeline: same auto-mode
		// joins, bounded-memory execution.
		streamed = true
	case "parallel":
		// Auto-mode joins with large FLWOR loops partitioned across all
		// cores (order-preserving merge).
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	default:
		fatal("unknown variant %q", variant)
	}
	eng := soxq.New()
	if err := eng.LoadXMLFile("doc.xml", soPath); err != nil {
		fatal("%v", err)
	}
	if err := eng.BuildIndex("doc.xml"); err != nil {
		fatal("%v", err)
	}
	// With -mutate, land deterministic annotation inserts on the built index
	// so the measured query runs over pending LSM delta layers (the engine
	// still auto-compacts at its threshold, as production writers would).
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < mutateN; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		start := int64(rng>>33) % 1_000_000
		if err := eng.InsertAnnotation("doc.xml", "bench-delta", soxq.Region{Start: start, End: start + 64}); err != nil {
			fatal("%v", err)
		}
	}
	query := xmark.StandOffQuery(q, "doc.xml")
	run := func(prep *soxq.Prepared) (int, error) {
		if streamed {
			cur, err := prep.Stream(cfg)
			if err != nil {
				return 0, err
			}
			n := 0
			for cur.Next() {
				n++
			}
			return n, cur.Close()
		}
		res, err := prep.Exec(cfg)
		if err != nil {
			return 0, err
		}
		return res.Len(), nil
	}
	// With -prepare the clock starts after parse+compile (the paper-figure
	// mode, measuring the join strategy alone); without it the cell pays
	// the whole pipeline, matching the pre-pipeline measurements.
	var prep *soxq.Prepared
	var err error
	start := time.Now()
	if prepare {
		if prep, err = eng.Prepare(query); err != nil {
			fatal("Q%d (%s): %v", q, variant, err)
		}
		start = time.Now()
	} else if prep, err = eng.Prepare(query); err != nil {
		fatal("Q%d (%s): %v", q, variant, err)
	}
	// The CPU profile covers exactly the timed region; the heap profile is
	// taken right after it (post-GC), so it shows what the run left live —
	// retained pipeline state, not transient garbage.
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fatal("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("starting CPU profile: %v", err)
		}
		defer f.Close()
	}
	items, err := run(prep)
	if err != nil {
		fatal("Q%d (%s): %v", q, variant, err)
	}
	secs := time.Since(start).Seconds()
	if cpuProfile != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "  [cell] wrote CPU profile %s\n", cpuProfile)
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			fatal("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("writing heap profile: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "  [cell] wrote heap profile %s\n", memProfile)
	}
	fmt.Fprintf(os.Stderr, "  [cell] Q%d %s: %d items in %.3fs\n", q, variant, items, secs)
	if metrics {
		// The registry dump shows what the cell actually did — which join
		// algorithm ran and how often, the latency histogram of the mode,
		// arena pool and plan-cache behaviour — next to the wall-clock
		// number the grid reports.
		fmt.Fprintf(os.Stderr, "  [cell] Q%d %s metrics:\n", q, variant)
		if err := eng.WriteMetrics(os.Stderr); err != nil {
			fatal("dumping metrics: %v", err)
		}
	}
	fmt.Printf("seconds=%.6f\n", secs)
}

// runAnalyze prints the EXPLAIN ANALYZE cardinality table: one row per
// StandOff step of each query, with the cost model's candidate estimate and
// the chosen strategy next to the observed candidates, context rows and
// output rows of an auto-mode run — the estimated-vs-observed comparison
// that keeps the cost model honest.
func runAnalyze(dir string, scales []float64, queries []int, seed uint64) {
	for _, scale := range scales {
		soPath, err := ensureData(dir, scale, seed)
		if err != nil {
			fatal("generating scale %g: %v", scale, err)
		}
		eng := soxq.New()
		if err := eng.LoadXMLFile("doc.xml", soPath); err != nil {
			fatal("%v", err)
		}
		if err := eng.BuildIndex("doc.xml"); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("\nEXPLAIN ANALYZE cardinalities, scale %g (%s)\n", scale, sizeName(scale))
		fmt.Printf("%-6s %-34s %-12s %10s %10s %10s %10s\n",
			"query", "step", "strategy", "est.cand", "obs.cand", "ctx.rows", "rows.out")
		for _, q := range queries {
			prep, err := eng.Prepare(xmark.StandOffQuery(q, "doc.xml"))
			if err != nil {
				fatal("Q%d: %v", q, err)
			}
			_, pe, err := prep.Analyze(soxq.Config{})
			if err != nil {
				fatal("Q%d: %v", q, err)
			}
			for _, row := range standOffRows(pe.Plan) {
				fmt.Printf("%-6s %-34s %-12s %10d %10d %10d %10d\n",
					fmt.Sprintf("Q%d", q), row.step, row.strategy,
					row.estCand, row.obsCand, row.ctxRows, row.rowsOut)
			}
		}
	}
}

// analyzeRow is one StandOff step's estimated-vs-observed summary.
type analyzeRow struct {
	step, strategy   string
	estCand, ctxRows int
	obsCand, rowsOut int64
}

// standOffRows walks an analyzed plan tree and collects its StandOff steps.
func standOffRows(nodes []*soxq.OpNode) []analyzeRow {
	var out []analyzeRow
	for _, n := range nodes {
		if n.Step != nil && n.Step.StandOff {
			row := analyzeRow{
				step:     n.Step.Axis + "::" + n.Step.Test,
				strategy: n.Step.Strategy,
			}
			if n.Est != nil {
				row.estCand = n.Est.Candidates
				row.ctxRows = n.Est.CtxRows
				row.strategy = n.Est.Strategy
			}
			if n.Obs != nil {
				row.obsCand = n.Obs.Candidates
				row.rowsOut = n.Obs.RowsOut
			}
			out = append(out, row)
		}
		out = append(out, standOffRows(n.Children)...)
	}
	return out
}

// runCalibrate measures the real Basic vs Loop-Lifted crossover the cost
// model approximates: for a grid of candidate-layer sizes, it doubles the
// context cardinality until the forced Loop-Lifted run beats the forced
// Basic run, and reports (ctx-1)·cand at that point — the observed value of
// the model's llSetupRows overhead term (internal/xqplan/cost.go). Run it
// after changing the join inner loops and update the constant if the
// reported range moves materially.
func runCalibrate() {
	fmt.Println("cost-model calibration: smallest context cardinality where forced Loop-Lifted beats forced Basic")
	fmt.Printf("%10s %10s %14s %14s %16s\n", "candidates", "ctx.rows", "basic", "looplifted", "(ctx-1)*cand")
	for _, cand := range []int{16, 64, 256, 1024} {
		for ctx := 2; ctx <= 4096; ctx *= 2 {
			tb := timeCalibrationCell(ctx, cand, soxq.ModeBasic)
			tl := timeCalibrationCell(ctx, cand, soxq.ModeLoopLifted)
			if tl < tb || ctx == 4096 {
				fmt.Printf("%10d %10d %14s %14s %16d\n",
					cand, ctx, tb.Round(time.Microsecond), tl.Round(time.Microsecond), (ctx-1)*cand)
				break
			}
		}
	}
}

// timeCalibrationCell times one forced-mode run of a select-wide join over a
// synthetic document with ctx context areas and cand candidate areas
// (median of five runs, index prebuilt, query prepared).
func timeCalibrationCell(ctx, cand int, mode soxq.Mode) time.Duration {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < ctx; i++ {
		fmt.Fprintf(&sb, `<c start="%d" end="%d"/>`, i*97, i*97+96)
	}
	for i := 0; i < cand; i++ {
		fmt.Fprintf(&sb, `<w start="%d" end="%d"/>`, i*13, i*13+12)
	}
	sb.WriteString("</doc>")
	eng := soxq.New()
	if err := eng.LoadXML("d.xml", []byte(sb.String())); err != nil {
		fatal("%v", err)
	}
	if err := eng.BuildIndex("d.xml"); err != nil {
		fatal("%v", err)
	}
	prep, err := eng.Prepare(`doc("d.xml")//c/select-wide::w`)
	if err != nil {
		fatal("%v", err)
	}
	cfg := soxq.Config{Mode: mode}
	if _, err := prep.Exec(cfg); err != nil { // warm the strategy memo and caches
		fatal("%v", err)
	}
	times := make([]time.Duration, 5)
	for i := range times {
		start := time.Now()
		if _, err := prep.Exec(cfg); err != nil {
			fatal("%v", err)
		}
		times[i] = time.Since(start)
	}
	slices.Sort(times)
	return times[len(times)/2]
}

func splitFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal("bad scale %q", part)
		}
		out = append(out, v)
	}
	return out
}

func splitInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal("bad query number %q", part)
		}
		out = append(out, v)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sobench: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"fmt"
	"os"
	"strings"

	"soxq"
)

// applyMutations runs the -mutate script against the engine: one operation
// per line, '#' comments and blank lines skipped. Returns the number of
// operations applied.
func applyMutations(eng *soxq.Engine, path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	ops := 0
	for lineNo, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := applyMutationLine(eng, fields); err != nil {
			return ops, fmt.Errorf("%s:%d: %v", path, lineNo+1, err)
		}
		ops++
	}
	return ops, nil
}

func applyMutationLine(eng *soxq.Engine, fields []string) error {
	switch op := fields[0]; op {
	case "insert":
		// insert <doc> <elem> <start> <end> [<start> <end> ...]
		if len(fields) < 5 || len(fields)%2 == 0 {
			return fmt.Errorf("insert wants <doc> <elem> <start> <end> [<start> <end> ...], got %d args", len(fields)-1)
		}
		regions := make([]soxq.Region, 0, (len(fields)-3)/2)
		for i := 3; i < len(fields); i += 2 {
			start, err := eng.ParsePosition(fields[i])
			if err != nil {
				return fmt.Errorf("bad start %q: %v", fields[i], err)
			}
			end, err := eng.ParsePosition(fields[i+1])
			if err != nil {
				return fmt.Errorf("bad end %q: %v", fields[i+1], err)
			}
			regions = append(regions, soxq.Region{Start: start, End: end})
		}
		return eng.InsertAnnotation(fields[1], fields[2], regions...)
	case "delete":
		// delete <doc> <elem> <start> <end>
		if len(fields) != 5 {
			return fmt.Errorf("delete wants <doc> <elem> <start> <end>, got %d args", len(fields)-1)
		}
		start, err := eng.ParsePosition(fields[3])
		if err != nil {
			return fmt.Errorf("bad start %q: %v", fields[3], err)
		}
		end, err := eng.ParsePosition(fields[4])
		if err != nil {
			return fmt.Errorf("bad end %q: %v", fields[4], err)
		}
		n, err := eng.DeleteAnnotation(fields[1], fields[2], start, end)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("no %s annotation [%s,%s] in %q", fields[2], fields[3], fields[4], fields[1])
		}
		return nil
	case "compact":
		// compact <doc>
		if len(fields) != 2 {
			return fmt.Errorf("compact wants <doc>, got %d args", len(fields)-1)
		}
		return eng.CompactAnnotations(fields[1])
	default:
		return fmt.Errorf("unknown mutation op %q (want insert, delete or compact)", op)
	}
}

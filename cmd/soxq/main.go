// Command soxq runs XQuery with stand-off annotation support from the
// command line:
//
//	soxq -doc sample.xml=testdata/sample.xml \
//	     -q 'doc("sample.xml")//music/select-wide::shot'
//
//	soxq -doc fs.xml=image.xml -blob fs.xml=disk.img \
//	     -declare standoff-region=region \
//	     -f query.xq -mode basic
//
// Documents are registered under the name given before '='; queries address
// them with fn:doc. -mode selects the execution strategy: auto (the default;
// the planner picks Basic vs Loop-Lifted per step from the region index
// statistics) or one of the paper's forced variants (looplifted, basic,
// udf). -explain executes the query and prints the compiled plan — the
// operator tree (FLWOR, filter and path structure) with per-step candidate
// policies, cost estimates and the join strategy the cost model actually
// chose, plus which pipeline operators stream — instead of the query
// results. -analyze is EXPLAIN ANALYZE: the same tree annotated with the
// observed per-operator counters of the run (rows in/out, candidates
// scanned, join algorithm, FLWOR tuples and chunks). See docs/EXPLAIN.md
// for the output reference.
//
// -stream serialises results through the cursor pipeline as they are
// produced instead of materialising the full sequence first (constant
// memory for arbitrarily large results); -stream-chunk N sets the tuples
// evaluated per pipeline chunk (the memory/amortisation trade-off: StandOff
// final steps join per chunk of context areas and nested for clauses bind
// child cursors, so the bound compounds through nested loops); -parallel N
// partitions large FLWOR loops across N workers.
//
// -mutate FILE applies a scripted sequence of annotation writes after the
// documents are loaded and before the query runs. The script holds one
// operation per line ('#' comments and blank lines skipped):
//
//	insert <doc> <elem> <start> <end> [<start> <end> ...]
//	delete <doc> <elem> <start> <end>
//	compact <doc>
//
// Positions are written in the engine's configured standoff-type (so a
// dateTime corpus takes RFC 3339 values). Multiple start/end pairs on an
// insert write a multi-region area (requires standoff-region).
//
// -trace executes the query with lifecycle tracing and prints the recorded
// span tree — parse, compile, strategy resolution, and the executed operator
// tree with per-operator row/chunk counts that line up with -analyze output —
// instead of the results; -trace-durations adds the measured wall-clock
// numbers. -ops ADDR serves the engine's ops HTTP surface (/metrics in
// Prometheus text, /debug/vars, /debug/queries) after the query, for
// scraping a long-lived session. See docs/OBSERVABILITY.md.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soxq"
	"soxq/internal/blob"
	"soxq/internal/httpserve"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var docs, blobs, declares repeated
	flag.Var(&docs, "doc", "load a document: name=path (repeatable)")
	flag.Var(&blobs, "blob", "attach a BLOB to a document: name=path (repeatable)")
	flag.Var(&declares, "declare", "engine-wide stand-off option: option=value (repeatable)")
	query := flag.String("q", "", "query text")
	queryFile := flag.String("f", "", "file containing the query")
	mode := flag.String("mode", "auto", "execution mode: auto, looplifted, basic or udf")
	noPushdown := flag.Bool("no-pushdown", false, "disable candidate-sequence pushdown")
	heap := flag.Bool("heap", false, "use the heap-based active set (paper section 5)")
	timing := flag.Bool("time", false, "print load and evaluation timing to stderr")
	explain := flag.Bool("explain", false, "print the compiled plan (with resolved join strategies) instead of results")
	analyze := flag.Bool("analyze", false, "run the query and print the plan annotated with observed per-operator counters (EXPLAIN ANALYZE)")
	stream := flag.Bool("stream", false, "stream results through the cursor pipeline instead of materialising them")
	streamChunk := flag.Int("stream-chunk", 0, "tuples (and StandOff context areas) per pipeline chunk for -stream/-analyze (0 = default 1024)")
	parallel := flag.Int("parallel", 0, "partition large FLWOR loops across N workers (0 = single-threaded)")
	trace := flag.Bool("trace", false, "run the query with lifecycle tracing and print the span tree (parse/compile/strategy/execute with per-operator counts) after the results")
	traceDurations := flag.Bool("trace-durations", false, "include measured durations and timestamps in the -trace rendering (non-deterministic output)")
	ops := flag.String("ops", "", "serve the ops HTTP surface (/metrics, /debug/vars, /debug/queries) on this address, e.g. :6060, and wait for interrupt after the query")
	mutate := flag.String("mutate", "", "apply a scripted annotation mutation file (insert/delete/compact lines) before running the query")
	flag.Parse()

	if (*query == "") == (*queryFile == "") {
		fatal("exactly one of -q or -f is required")
	}
	q := *query
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		fatalIf(err)
		q = string(data)
	}
	cfg := soxq.Config{NoPushdown: *noPushdown, HeapActiveList: *heap,
		Parallelism: *parallel, StreamChunk: *streamChunk,
		Trace: *trace || *traceDurations}
	switch *mode {
	case "auto":
		cfg.Mode = soxq.ModeAuto
	case "looplifted":
		cfg.Mode = soxq.ModeLoopLifted
	case "basic":
		cfg.Mode = soxq.ModeBasic
	case "udf":
		cfg.Mode = soxq.ModeUDF
	default:
		fatal("unknown -mode %q", *mode)
	}

	eng := soxq.New()
	for _, d := range declares {
		opt, val, ok := strings.Cut(d, "=")
		if !ok {
			fatal("-declare wants option=value, got %q", d)
		}
		fatalIf(eng.Declare(opt, val))
	}
	loadStart := time.Now()
	for _, spec := range docs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("-doc wants name=path, got %q", spec)
		}
		fatalIf(eng.LoadXMLFile(name, path))
	}
	for _, spec := range blobs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("-blob wants name=path, got %q", spec)
		}
		store, err := blob.OpenFile(path)
		fatalIf(err)
		defer store.Close()
		eng.SetBlob(name, store)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "load: %v\n", time.Since(loadStart))
	}
	if *mutate != "" {
		mutStart := time.Now()
		n, err := applyMutations(eng, *mutate)
		fatalIf(err)
		if *timing {
			fmt.Fprintf(os.Stderr, "mutate: %d ops in %v\n", n, time.Since(mutStart))
		}
	}

	// The pipeline is parse -> compile -> execute: Prepare covers the first
	// two stages, Exec the third, so -time reports them separately.
	compileStart := time.Now()
	prep, err := eng.Prepare(q)
	fatalIf(err)
	if *timing {
		fmt.Fprintf(os.Stderr, "compile: %v\n", time.Since(compileStart))
	}
	evalStart := time.Now()
	if *analyze {
		// EXPLAIN ANALYZE: execute, then print the plan annotated with the
		// run's observed per-operator counters next to the estimates.
		_, pe, err := prep.Analyze(cfg)
		fatalIf(err)
		if *timing {
			fmt.Fprintf(os.Stderr, "eval: %v\n", time.Since(evalStart))
		}
		fmt.Print(pe.String())
		serveOps(eng, *ops)
		return
	}
	if cfg.Trace && !*explain && !*stream {
		// -trace mirrors -explain/-analyze: execute, then print the recorded
		// span tree instead of the results. Without -trace-durations the
		// rendering is deterministic (structure and counts only), so its
		// per-operator numbers line up with -analyze output for the same
		// query.
		_, err := prep.Exec(cfg)
		fatalIf(err)
		if *timing {
			fmt.Fprintf(os.Stderr, "eval: %v\n", time.Since(evalStart))
		}
		fmt.Print(prep.TraceLast().Render(*traceDurations))
		serveOps(eng, *ops)
		return
	}
	if *stream && !*explain {
		// Streamed execution: items are serialised as the pipeline
		// produces them, so memory stays bounded by the chunk size no
		// matter the result cardinality.
		cur, err := prep.Stream(cfg)
		fatalIf(err)
		w := bufio.NewWriter(os.Stdout)
		for cur.Next() {
			w.WriteString(cur.Value().XML())
			w.WriteByte('\n')
		}
		fatalIf(cur.Close())
		fatalIf(w.Flush())
		if *timing {
			fmt.Fprintf(os.Stderr, "eval: %v\n", time.Since(evalStart))
		}
		if cfg.Trace {
			fmt.Print(prep.TraceLast().Render(*traceDurations))
		}
		serveOps(eng, *ops)
		return
	}
	res, err := prep.Exec(cfg)
	fatalIf(err)
	if *timing {
		fmt.Fprintf(os.Stderr, "eval: %v\n", time.Since(evalStart))
	}
	if *explain {
		// The query ran above, so the plan's strategy memos hold the
		// choices the cost model actually made.
		fmt.Print(prep.Explain().String())
		return
	}
	for _, v := range res.Values() {
		fmt.Println(v.XML())
	}
	serveOps(eng, *ops)
}

// serveOps blocks serving the engine's ops HTTP surface when -ops was given;
// with the flag unset it is a no-op and the command exits as usual. The
// server carries read/header/idle timeouts and an interrupt (or SIGTERM)
// triggers a graceful drain — an in-flight scrape finishes before the
// process exits, instead of dying mid-response.
func serveOps(eng *soxq.Engine, addr string) {
	if addr == "" {
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "soxq: serving /metrics, /debug/vars, /debug/queries on %s (interrupt to stop)\n", addr)
	// Ops responses are bounded renderings, so a write timeout is safe here
	// (soxqd, which streams query results, leaves it unset).
	fatalIf(httpserve.ListenAndServe(ctx, addr, eng.OpsHandler(), httpserve.Options{
		WriteTimeout: time.Minute,
	}))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "soxq: "+format+"\n", args...)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soxq"
)

const mutateTestDoc = `<doc>
  <scene start="0" end="100"/>
  <hit id="h1" start="10" end="20"/>
</doc>`

func mutateTestEngine(t *testing.T) *soxq.Engine {
	t.Helper()
	eng := soxq.New()
	if err := eng.LoadXML("m.xml", []byte(mutateTestDoc)); err != nil {
		t.Fatal(err)
	}
	return eng
}

func writeScript(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "script.mut")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func queryCount(t *testing.T, eng *soxq.Engine, q string) string {
	t.Helper()
	res, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.String()
}

func TestApplyMutationsScript(t *testing.T) {
	eng := mutateTestEngine(t)
	script := writeScript(t,
		"# seed a couple of marks, then retract one",
		"",
		"insert m.xml mark 5 15",
		"insert m.xml mark 30 40   # trailing comment",
		"  ",
		"delete m.xml mark 5 15",
		"compact m.xml",
	)
	ops, err := applyMutations(eng, script)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 4 {
		t.Fatalf("ops = %d, want 4", ops)
	}
	if got := queryCount(t, eng, `count(doc("m.xml")//mark)`); got != "1" {
		t.Fatalf("mark count after script = %s, want 1", got)
	}
	if got := queryCount(t, eng, `doc("m.xml")//scene/select-narrow::mark/@start`); got != `start="30"` {
		t.Fatalf("surviving mark = %s", got)
	}
}

func TestApplyMutationsErrors(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
		want  string // substring of the error, which must also carry the line number
		line  string
	}{
		{"unknown op", []string{"insert m.xml mark 5 15", "frobnicate m.xml"}, "unknown mutation op", ":2:"},
		{"insert arity", []string{"insert m.xml mark 5"}, "insert wants", ":1:"},
		{"insert even args", []string{"insert m.xml mark 5 15 30"}, "insert wants", ":1:"},
		{"insert bad start", []string{"insert m.xml mark five 15"}, "bad start", ":1:"},
		{"insert bad end", []string{"insert m.xml mark 5 teen"}, "bad end", ":1:"},
		{"delete arity", []string{"delete m.xml mark 5"}, "delete wants", ":1:"},
		{"delete no match", []string{"", "delete m.xml mark 5 15"}, "no mark annotation", ":2:"},
		{"compact arity", []string{"compact m.xml twice"}, "compact wants", ":1:"},
		{"unloaded doc", []string{"insert other.xml mark 5 15"}, "other.xml", ":1:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := mutateTestEngine(t)
			_, err := applyMutations(eng, writeScript(t, tc.lines...))
			if err == nil {
				t.Fatalf("no error, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), tc.line) {
				t.Fatalf("error %q, want substrings %q and %q", err, tc.want, tc.line)
			}
		})
	}
}

func TestApplyMutationsStopsAtFirstError(t *testing.T) {
	eng := mutateTestEngine(t)
	script := writeScript(t,
		"insert m.xml mark 5 15",
		"delete m.xml mark 99 100", // no such annotation
		"insert m.xml mark 30 40",  // must not run
	)
	ops, err := applyMutations(eng, script)
	if err == nil {
		t.Fatal("no error from failing script")
	}
	if ops != 1 {
		t.Fatalf("ops before failure = %d, want 1", ops)
	}
	if got := queryCount(t, eng, `count(doc("m.xml")//mark)`); got != "1" {
		t.Fatalf("mark count = %s, want 1 (line after the failure must not apply)", got)
	}
}

func TestApplyMutationsMissingFile(t *testing.T) {
	eng := mutateTestEngine(t)
	if _, err := applyMutations(eng, filepath.Join(t.TempDir(), "nope.mut")); err == nil {
		t.Fatal("no error for missing script file")
	}
}

package main

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"testing"

	"soxq"
)

// Server throughput benchmark corpus: 8 members x 250 scenes x 60 hits =
// 122k regions across the corpus (the same scene/hit shape as the engine's
// BenchmarkStreamExec corpus, sharded across documents).
const (
	benchDocs          = 8
	benchScenes        = 250
	benchHitsPerScene  = 60
	benchRowsPerMember = benchScenes * benchHitsPerScene
)

func benchDoc(scenes, hitsPerScene int) string {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for s := 0; s < scenes; s++ {
		base := s * 1000
		fmt.Fprintf(&sb, `<scene id="s%d" start="%d" end="%d"/>`, s, base, base+999)
		for h := 0; h < hitsPerScene; h++ {
			off := base + 10 + h*10
			fmt.Fprintf(&sb, `<hit start="%d" end="%d"/>`, off, off+5)
		}
	}
	sb.WriteString("</doc>")
	return sb.String()
}

// BenchmarkServerThroughput measures one full HTTP query round trip over the
// 122k-region corpus: request in, 120k NDJSON rows streamed out, connection
// reused across iterations. The sequential cell (shards drained one after
// another) is the memory-guarded baseline cell in BENCH_stream.json; the
// parallel cell fans the eight shards across four workers and self-skips on
// a single-core runner, where there is no parallelism to measure.
func BenchmarkServerThroughput(b *testing.B) {
	eng := soxq.New()
	doc := benchDoc(benchScenes, benchHitsPerScene)
	members := make([]string, benchDocs)
	for i := range members {
		members[i] = fmt.Sprintf("doc%02d.xml", i)
		if err := eng.LoadXML(members[i], []byte(doc)); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.CreateCorpus("bench", members...); err != nil {
		b.Fatal(err)
	}
	s := newServer(eng, serverConfig{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	q := url.QueryEscape(`doc("bench")//scene/select-narrow::hit`)
	wantRows := benchDocs * benchRowsPerMember

	run := func(b *testing.B, parallel int) {
		b.ReportAllocs()
		client := &http.Client{}
		defer client.CloseIdleConnections()
		url := fmt.Sprintf("%s/query?corpus=bench&parallel=%d&q=%s", ts.URL, parallel, q)
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != 200 {
				resp.Body.Close()
				b.Fatalf("status %d", resp.StatusCode)
			}
			rows := -1 // the trailer line is not a row
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				rows++
			}
			if err := sc.Err(); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if rows != wantRows {
				b.Fatalf("%d rows, want %d", rows, wantRows)
			}
		}
	}

	b.Run("sequential", func(b *testing.B) { run(b, 0) })
	b.Run("parallel", func(b *testing.B) {
		if runtime.GOMAXPROCS(0) < 2 {
			b.Skip("single-core runner: shard-parallel fan-out has nothing to run on")
		}
		run(b, 4)
	})
}

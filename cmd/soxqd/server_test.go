package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"soxq"
)

// testDoc builds member i's document: 3 scenes with 2 contained hits each,
// ids tagged with the member index (mirrors the engine's corpus test corpus).
func testDoc(i int) string {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for s := 0; s < 3; s++ {
		base := s * 100
		fmt.Fprintf(&sb, `<scene id="d%d-s%d" start="%d" end="%d"/>`, i, s, base, base+99)
		fmt.Fprintf(&sb, `<hit id="d%d-s%d-a" start="%d" end="%d"/>`, i, s, base+10, base+20)
		fmt.Fprintf(&sb, `<hit id="d%d-s%d-b" start="%d" end="%d"/>`, i, s, base+30, base+40)
	}
	sb.WriteString("</doc>")
	return sb.String()
}

const testQuery = `for $h in doc("news")//scene/select-narrow::hit return string($h/@id)`

// hitsPerDoc is testQuery's row count per member: 3 scenes x 2 narrow hits.
const hitsPerDoc = 6

// newTestServer loads n corpus members, defines corpus "news", and serves
// the soxqd handler from an httptest server.
func newTestServer(t testing.TB, n int, cfg serverConfig) (*soxq.Engine, *server, *httptest.Server) {
	t.Helper()
	eng := soxq.New()
	members := make([]string, n)
	for i := 0; i < n; i++ {
		members[i] = fmt.Sprintf("doc%02d.xml", i)
		if err := eng.LoadXML(members[i], []byte(testDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.CreateCorpus("news", members...); err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, cfg)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return eng, s, ts
}

// getJSON GETs url and decodes the JSON body into out, returning the status.
func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// request performs one request and returns the status and body; unlike the
// t.Fatal-based helpers it is safe to call from exercise goroutines.
func request(method, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

func doReq(t testing.TB, method, url string, body []byte) (int, []byte) {
	t.Helper()
	code, b, err := request(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return code, b
}

// parseNDJSON reads an NDJSON query response: the data rows and the trailer.
func parseNDJSON(body io.Reader) (rows []string, trailer ndjsonTrailer, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row struct {
			XML   string `json:"xml"`
			Done  bool   `json:"done"`
			Rows  int    `json:"rows"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return rows, trailer, fmt.Errorf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if row.Done || row.Error != "" {
			trailer = ndjsonTrailer{Done: row.Done, Rows: row.Rows, Error: row.Error}
			continue
		}
		rows = append(rows, row.XML)
	}
	return rows, trailer, sc.Err()
}

func drainNDJSON(t testing.TB, body io.Reader) ([]string, ndjsonTrailer) {
	t.Helper()
	rows, trailer, err := parseNDJSON(body)
	if err != nil {
		t.Fatal(err)
	}
	return rows, trailer
}

// TestServerCatalog covers the catalog lifecycle over HTTP: listing, loading
// a document, defining and dropping a corpus, unloading, and the generation
// moving on every change.
func TestServerCatalog(t *testing.T) {
	_, _, ts := newTestServer(t, 2, serverConfig{})

	var cat struct {
		Generation uint64         `json:"generation"`
		Documents  []string       `json:"documents"`
		Corpora    []catalogEntry `json:"corpora"`
	}
	if code := getJSON(t, ts.URL+"/catalog", &cat); code != 200 {
		t.Fatalf("GET /catalog = %d", code)
	}
	if len(cat.Documents) != 2 || cat.Documents[0] != "doc00.xml" || cat.Documents[1] != "doc01.xml" {
		t.Fatalf("documents = %v, want sorted doc00/doc01", cat.Documents)
	}
	if len(cat.Corpora) != 1 || cat.Corpora[0].Name != "news" || len(cat.Corpora[0].Members) != 2 {
		t.Fatalf("corpora = %+v", cat.Corpora)
	}
	gen0 := cat.Generation

	// Load a third document over HTTP; the generation must move.
	if code, body := doReq(t, http.MethodPut, ts.URL+"/documents/doc02.xml", []byte(testDoc(2))); code != 200 {
		t.Fatalf("PUT document = %d: %s", code, body)
	}
	if code, body := doReq(t, http.MethodPut, ts.URL+"/corpora/all",
		[]byte(`{"members":["doc00.xml","doc01.xml","doc02.xml"]}`)); code != 200 {
		t.Fatalf("PUT corpus = %d: %s", code, body)
	}
	if code := getJSON(t, ts.URL+"/catalog", &cat); code != 200 {
		t.Fatal("catalog after load")
	}
	if len(cat.Documents) != 3 || len(cat.Corpora) != 2 {
		t.Fatalf("after load: %d documents, %d corpora", len(cat.Documents), len(cat.Corpora))
	}
	if cat.Generation <= gen0 {
		t.Fatalf("generation %d did not move past %d", cat.Generation, gen0)
	}

	// Malformed document: engine parse error surfaces as 400.
	if code, _ := doReq(t, http.MethodPut, ts.URL+"/documents/bad.xml", []byte("<doc>")); code != 400 {
		t.Fatalf("PUT malformed document = %d, want 400", code)
	}
	// Corpus over a missing member: 400.
	if code, _ := doReq(t, http.MethodPut, ts.URL+"/corpora/broken", []byte(`{"members":["nope.xml"]}`)); code != 400 {
		t.Fatalf("PUT bad corpus = %d, want 400", code)
	}

	// Drop the corpus, unload the document; unknown names 404.
	if code, _ := doReq(t, http.MethodDelete, ts.URL+"/corpora/all", nil); code != 200 {
		t.Fatalf("DELETE corpus = %d", code)
	}
	if code, _ := doReq(t, http.MethodDelete, ts.URL+"/corpora/all", nil); code != 404 {
		t.Fatalf("DELETE dropped corpus = %d, want 404", code)
	}
	if code, _ := doReq(t, http.MethodDelete, ts.URL+"/documents/doc02.xml", nil); code != 200 {
		t.Fatalf("DELETE document = %d", code)
	}
	if code, _ := doReq(t, http.MethodDelete, ts.URL+"/documents/doc02.xml", nil); code != 404 {
		t.Fatalf("DELETE unloaded document = %d, want 404", code)
	}
}

// TestServerQueryNDJSON pins the streamed NDJSON wire format for both the
// corpus and single-document paths: one {"xml":...} row per item in corpus
// order, then {"done":true,"rows":N}.
func TestServerQueryNDJSON(t *testing.T) {
	_, _, ts := newTestServer(t, 3, serverConfig{})
	resp, err := http.Get(ts.URL + "/query?corpus=news&q=" + queryParam(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /query = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	rows, trailer := drainNDJSON(t, resp.Body)
	if !trailer.Done || trailer.Rows != 3*hitsPerDoc || len(rows) != 3*hitsPerDoc {
		t.Fatalf("rows = %d, trailer = %+v, want %d rows", len(rows), trailer, 3*hitsPerDoc)
	}
	// Corpus order: member 0's hits first, member 2's last.
	if rows[0] != "d0-s0-a" || rows[len(rows)-1] != "d2-s2-b" {
		t.Fatalf("merge order wrong: first %q last %q", rows[0], rows[len(rows)-1])
	}

	// Single-document path (no corpus), query via POST body.
	q := strings.ReplaceAll(testQuery, `doc("news")`, `doc("doc01.xml")`)
	resp2, err := http.Post(ts.URL+"/query", "application/xquery", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rows, trailer = drainNDJSON(t, resp2.Body)
	if !trailer.Done || len(rows) != hitsPerDoc || rows[0] != "d1-s0-a" {
		t.Fatalf("single-doc rows = %v, trailer = %+v", rows, trailer)
	}
}

// TestServerQueryXML pins the chunked-XML wire format.
func TestServerQueryXML(t *testing.T) {
	_, _, ts := newTestServer(t, 2, serverConfig{})
	resp, err := http.Get(ts.URL + "/query?corpus=news&format=xml&q=" +
		queryParam(`doc("news")//scene/select-narrow::hit`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	if !strings.HasPrefix(body, "<results>\n") || !strings.HasSuffix(body, "</results>\n") {
		t.Fatalf("not a <results> document: %q", body)
	}
	if n := strings.Count(body, "<hit "); n != 2*hitsPerDoc {
		t.Fatalf("%d hit elements, want %d", n, 2*hitsPerDoc)
	}
}

func queryParam(q string) string { return url.QueryEscape(q) }

// TestServerQueryErrors covers the 4xx surface of /query.
func TestServerQueryErrors(t *testing.T) {
	_, _, ts := newTestServer(t, 1, serverConfig{})
	cases := []struct {
		name string
		url  string
		want int
	}{
		{"missing q", "/query", 400},
		{"syntax error", "/query?q=for%20%24x%20in", 400},
		{"unknown corpus", "/query?corpus=nope&q=" + queryParam(testQuery), 400},
		{"cache without corpus", "/query?cache=1&q=" + queryParam(testQuery), 400},
		{"bad format", "/query?format=yaml&q=" + queryParam(testQuery), 400},
		{"bad parallel", "/query?parallel=many&q=" + queryParam(testQuery), 400},
	}
	for _, c := range cases {
		var e struct {
			Error string `json:"error"`
		}
		if code := getJSON(t, ts.URL+c.url, &e); code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
		if e.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}
}

// TestServerQueryCached pins the result-cache path end to end: a repeated
// cache=1 corpus query hits the engine's result cache (no re-execution), and
// an annotation write through the server invalidates it.
func TestServerQueryCached(t *testing.T) {
	eng, _, ts := newTestServer(t, 2, serverConfig{})
	url := ts.URL + "/query?cache=1&corpus=news&q=" + queryParam(testQuery)
	get := func() ndjsonTrailer {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		_, trailer := drainNDJSON(t, resp.Body)
		return trailer
	}
	if tr := get(); tr.Rows != 2*hitsPerDoc {
		t.Fatalf("first run: %+v", tr)
	}
	h0, m0, _ := eng.ResultCacheStats()
	if tr := get(); tr.Rows != 2*hitsPerDoc {
		t.Fatalf("second run: %+v", tr)
	}
	h1, m1, _ := eng.ResultCacheStats()
	if h1 != h0+1 || m1 != m0 {
		t.Fatalf("second run hits/misses %d/%d -> %d/%d, want a pure cache hit", h0, m0, h1, m1)
	}

	// An annotation insert through the server bumps the generation, so the
	// next cached query misses and sees the new row.
	if code, body := doReq(t, http.MethodPost, ts.URL+"/documents/doc00.xml/annotations",
		[]byte(`{"op":"insert","elem":"hit","regions":[{"start":41,"end":45}]}`)); code != 200 {
		t.Fatalf("POST annotation = %d: %s", code, body)
	}
	if tr := get(); tr.Rows != 2*hitsPerDoc+1 {
		t.Fatalf("post-mutation run rows = %d, want %d", tr.Rows, 2*hitsPerDoc+1)
	}
	_, m2, _ := eng.ResultCacheStats()
	if m2 != m1+1 {
		t.Fatalf("mutation did not invalidate: misses %d -> %d", m1, m2)
	}

	// Delete it again; the row count returns to the base.
	code, body := doReq(t, http.MethodPost, ts.URL+"/documents/doc00.xml/annotations",
		[]byte(`{"op":"delete","elem":"hit","start":41,"end":45}`))
	if code != 200 {
		t.Fatalf("POST delete = %d: %s", code, body)
	}
	var del struct {
		Removed int `json:"removed"`
	}
	if err := json.Unmarshal(body, &del); err != nil || del.Removed != 1 {
		t.Fatalf("delete response %s (err %v)", body, err)
	}
	if tr := get(); tr.Rows != 2*hitsPerDoc {
		t.Fatalf("post-delete rows = %d", tr.Rows)
	}

	// Annotation errors: unknown document 404, bad op 400.
	if code, _ := doReq(t, http.MethodPost, ts.URL+"/documents/nope.xml/annotations",
		[]byte(`{"op":"insert","elem":"x","start":1,"end":2}`)); code != 404 {
		t.Fatalf("annotation on unknown doc = %d, want 404", code)
	}
	if code, _ := doReq(t, http.MethodPost, ts.URL+"/documents/doc00.xml/annotations",
		[]byte(`{"op":"upsert"}`)); code != 400 {
		t.Fatalf("bad op = %d, want 400", code)
	}
}

// TestServerAdmission pins the admission gate: with every slot held, a query
// waits QueueTimeout and then gets 503 with Retry-After; once a slot frees,
// queries run again and the rejection is visible on /healthz.
func TestServerAdmission(t *testing.T) {
	_, s, ts := newTestServer(t, 1, serverConfig{MaxQueries: 1, QueueTimeout: 50 * time.Millisecond})
	// Occupy the only slot directly — equivalent to a long-running query.
	s.sem <- struct{}{}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/query?corpus=news&q="+queryParam(testQuery), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated query = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	<-s.sem
	resp2, err := http.Get(ts.URL + "/query?corpus=news&q=" + queryParam(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("freed query = %d, want 200", resp2.StatusCode)
	}
	if _, trailer := drainNDJSON(t, resp2.Body); !trailer.Done {
		t.Fatalf("freed query trailer %+v", trailer)
	}
	var health struct {
		Rejected uint64 `json:"rejected"`
		Admitted uint64 `json:"admitted"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Rejected == 0 || health.Admitted == 0 {
		t.Fatalf("healthz counters %+v", health)
	}
}

// TestServerDisconnectNoLeak pins the mid-stream disconnect contract: a
// client that walks away after the first rows must not leave the query
// pipeline's goroutines (or its admission slot) behind.
func TestServerDisconnectNoLeak(t *testing.T) {
	_, s, ts := newTestServer(t, 4, serverConfig{})
	baseline := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/query?corpus=news&parallel=4&chunk=1&q="+queryParam(testQuery), nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		client := &http.Client{}
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Read one row, then abandon the stream.
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
		cancel()
		resp.Body.Close()
		client.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != 0 || runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("after disconnects: %d goroutines (baseline %d), %d inflight",
				runtime.NumGoroutine(), baseline, s.inflight.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerConcurrentExercise is the issue's concurrent server test: N
// clients stream corpus queries (some disconnecting mid-stream) while one
// writer mutates annotations over HTTP and another loads/unloads a spare
// document, all against one engine. Row counts must stay within the
// mutation envelope, every completed stream must end with a clean trailer,
// and nothing may leak afterwards.
func TestServerConcurrentExercise(t *testing.T) {
	const members = 3
	_, s, ts := newTestServer(t, members, serverConfig{MaxQueries: 32})
	baseline := runtime.NumGoroutine()
	base := members * hitsPerDoc

	errc := make(chan error, 64)
	stop := make(chan struct{})
	var readers, churn sync.WaitGroup

	// Readers: stream the corpus query with varying parallelism and chunk
	// sizes, disconnecting mid-stream every third iteration.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rnd := rand.New(rand.NewSource(int64(r)))
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < 25; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				url := fmt.Sprintf("%s/query?corpus=news&parallel=%d&chunk=%d&q=%s",
					ts.URL, rnd.Intn(4), 1+rnd.Intn(8), queryParam(testQuery))
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
				resp, err := client.Do(req)
				if err != nil {
					cancel()
					errc <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if resp.StatusCode != 200 {
					resp.Body.Close()
					cancel()
					errc <- fmt.Errorf("reader %d: status %d", r, resp.StatusCode)
					return
				}
				if i%3 == 2 {
					// Abandon mid-stream.
					bufio.NewReader(resp.Body).ReadString('\n')
					cancel()
					resp.Body.Close()
					continue
				}
				rows, trailer, err := parseNDJSON(resp.Body)
				resp.Body.Close()
				cancel()
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if trailer.Error != "" {
					errc <- fmt.Errorf("reader %d: stream error %q", r, trailer.Error)
					return
				}
				// The writer adds at most one extra hit per member at a time.
				if len(rows) < base || len(rows) > base+members {
					errc <- fmt.Errorf("reader %d: %d rows outside [%d,%d]", r, len(rows), base, base+members)
					return
				}
			}
		}(r)
	}

	// Writer: insert/delete one annotation per member through the server.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			doc := fmt.Sprintf("doc%02d.xml", i%members)
			code, body, err := request(http.MethodPost, ts.URL+"/documents/"+doc+"/annotations",
				[]byte(`{"op":"insert","elem":"hit","regions":[{"start":41,"end":45}]}`))
			if err != nil || code != 200 {
				errc <- fmt.Errorf("writer insert: %d %s %v", code, body, err)
				return
			}
			code, body, err = request(http.MethodPost, ts.URL+"/documents/"+doc+"/annotations",
				[]byte(`{"op":"delete","elem":"hit","start":41,"end":45}`))
			if err != nil || code != 200 {
				errc <- fmt.Errorf("writer delete: %d %s %v", code, body, err)
				return
			}
		}
	}()

	// Catalog churn: load and unload a document that is not a corpus member,
	// so streams keep working while the catalog generation races forward.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, body, err := request(http.MethodPut, ts.URL+"/documents/spare.xml", []byte(testDoc(99)))
			if err != nil || code != 200 {
				errc <- fmt.Errorf("loader: %d %s %v", code, body, err)
				return
			}
			code, body, err = request(http.MethodDelete, ts.URL+"/documents/spare.xml", nil)
			if err != nil || code != 200 {
				errc <- fmt.Errorf("unloader: %d %s %v", code, body, err)
				return
			}
		}
	}()

	readers.Wait()
	close(stop)
	churn.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.inflight.Load() != 0 || runtime.NumGoroutine() > baseline {
		// The churn helpers ride http.DefaultClient; its idle keep-alive
		// connections hold client-side goroutines that are not leaks.
		http.DefaultClient.CloseIdleConnections()
		if time.Now().After(deadline) {
			t.Fatalf("after exercise: %d goroutines (baseline %d), %d inflight",
				runtime.NumGoroutine(), baseline, s.inflight.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

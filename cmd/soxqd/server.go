package main

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"soxq"
)

// serverConfig tunes the corpus server's admission control and per-query
// resource budget.
type serverConfig struct {
	// MaxQueries is the number of queries allowed to execute concurrently.
	// Queries beyond it wait up to QueueTimeout for a slot, then get 503.
	MaxQueries int
	// QueueTimeout is how long an over-limit query waits for a slot.
	QueueTimeout time.Duration
	// MaxChunk caps the per-query stream chunk (Config.StreamChunk): the
	// server's memory budget per query is proportional to chunk x parallel
	// workers, so requests asking for a larger chunk are clamped here.
	MaxChunk int
	// MaxParallel caps the per-query worker count a request may ask for.
	MaxParallel int
	// DefaultParallel is the shard/loop parallelism used when a request
	// does not pass an explicit parallel parameter.
	DefaultParallel int
}

func (c serverConfig) withDefaults() serverConfig {
	if c.MaxQueries <= 0 {
		c.MaxQueries = 16
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.MaxChunk <= 0 {
		c.MaxChunk = 4096
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = 64
	}
	return c
}

// server is the soxqd HTTP surface over one Engine: catalog management
// (documents, corpora, annotations), streamed query execution, and the
// engine's ops endpoints, behind a bounded-concurrency admission gate.
type server struct {
	eng *soxq.Engine
	cfg serverConfig

	// sem holds one token per running query; acquisition is the admission
	// gate of handleQuery.
	sem      chan struct{}
	admitted atomic.Uint64
	rejected atomic.Uint64
	inflight atomic.Int64
}

func newServer(eng *soxq.Engine, cfg serverConfig) *server {
	cfg = cfg.withDefaults()
	return &server{eng: eng, cfg: cfg, sem: make(chan struct{}, cfg.MaxQueries)}
}

// handler builds the route table. Catalog mutations are PUT/DELETE/POST on
// the resource they change; queries stream from GET or POST /query; the
// engine's ops surface (/metrics, /debug/...) mounts on the same mux so one
// listener serves both the data plane and the scrape plane.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /catalog", s.handleCatalog)
	mux.HandleFunc("PUT /documents/{name}", s.handlePutDocument)
	mux.HandleFunc("DELETE /documents/{name}", s.handleDeleteDocument)
	mux.HandleFunc("POST /documents/{name}/annotations", s.handleAnnotations)
	mux.HandleFunc("PUT /corpora/{name}", s.handlePutCorpus)
	mux.HandleFunc("DELETE /corpora/{name}", s.handleDeleteCorpus)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("POST /query", s.handleQuery)
	ops := s.eng.OpsHandler()
	mux.Handle("GET /metrics", ops)
	mux.Handle("GET /debug/", ops)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": s.eng.CatalogGeneration(),
		"inflight":   s.inflight.Load(),
		"admitted":   s.admitted.Load(),
		"rejected":   s.rejected.Load(),
	})
}

// catalogEntry is one corpus in the catalog listing.
type catalogEntry struct {
	Name    string   `json:"name"`
	Members []string `json:"members"`
}

func (s *server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	corpora := []catalogEntry{}
	for _, name := range s.eng.Corpora() {
		members, err := s.eng.CorpusMembers(name)
		if err != nil {
			continue // dropped between the two calls; the generation shows it
		}
		corpora = append(corpora, catalogEntry{Name: name, Members: members})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": s.eng.CatalogGeneration(),
		"documents":  s.eng.Documents(),
		"corpora":    corpora,
	})
}

// maxDocumentBytes bounds a PUT /documents body; parse errors come from the
// engine, this guard only stops unbounded uploads from buffering in memory.
const maxDocumentBytes = 64 << 20

func (s *server) handlePutDocument(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxDocumentBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading document body: %v", err)
		return
	}
	if err := s.eng.LoadXML(name, data); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"document":   name,
		"generation": s.eng.CatalogGeneration(),
	})
}

func (s *server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !slices.Contains(s.eng.Documents(), name) {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	s.eng.Unload(name)
	writeJSON(w, http.StatusOK, map[string]any{
		"document":   name,
		"generation": s.eng.CatalogGeneration(),
	})
}

// annotationRequest is the body of POST /documents/{name}/annotations: an
// insert (elem + one or more regions) or a delete (elem + the exact region).
type annotationRequest struct {
	Op      string `json:"op"`
	Elem    string `json:"elem"`
	Regions []struct {
		Start int64 `json:"start"`
		End   int64 `json:"end"`
	} `json:"regions"`
	Start *int64 `json:"start"`
	End   *int64 `json:"end"`
}

func (s *server) handleAnnotations(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !slices.Contains(s.eng.Documents(), name) {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	var req annotationRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding annotation request: %v", err)
		return
	}
	switch req.Op {
	case "insert":
		regions := make([]soxq.Region, 0, len(req.Regions)+1)
		for _, reg := range req.Regions {
			regions = append(regions, soxq.Region{Start: reg.Start, End: reg.End})
		}
		if len(regions) == 0 && req.Start != nil && req.End != nil {
			regions = append(regions, soxq.Region{Start: *req.Start, End: *req.End})
		}
		if err := s.eng.InsertAnnotation(name, req.Elem, regions...); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": s.eng.CatalogGeneration(),
		})
	case "delete":
		if req.Start == nil || req.End == nil {
			writeError(w, http.StatusBadRequest, "delete needs start and end")
			return
		}
		n, err := s.eng.DeleteAnnotation(name, req.Elem, *req.Start, *req.End)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"removed":    n,
			"generation": s.eng.CatalogGeneration(),
		})
	default:
		writeError(w, http.StatusBadRequest, "unknown op %q (want insert or delete)", req.Op)
	}
}

func (s *server) handlePutCorpus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req struct {
		Members []string `json:"members"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding corpus request: %v", err)
		return
	}
	if err := s.eng.CreateCorpus(name, req.Members...); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpus":     name,
		"members":    req.Members,
		"generation": s.eng.CatalogGeneration(),
	})
}

func (s *server) handleDeleteCorpus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.eng.DropCorpus(name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpus":     name,
		"generation": s.eng.CatalogGeneration(),
	})
}

// admit acquires a query slot: immediately if one is free, otherwise by
// waiting up to QueueTimeout. The false return is the 503 path. The
// release func must be called exactly once when the query finishes.
func (s *server) admit(r *http.Request) (release func(), ok bool) {
	acquired := func() func() {
		s.admitted.Add(1)
		s.inflight.Add(1)
		return func() {
			s.inflight.Add(-1)
			<-s.sem
		}
	}
	select {
	case s.sem <- struct{}{}:
		return acquired(), true
	default:
	}
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return acquired(), true
	case <-t.C:
	case <-r.Context().Done():
	}
	s.rejected.Add(1)
	return nil, false
}

// queryText extracts the query: the q form/URL parameter, or — for POSTs
// whose body is not a form — the raw request body.
func queryText(r *http.Request) string {
	if q := r.FormValue("q"); q != "" {
		return q
	}
	if r.Method == http.MethodPost {
		ct := r.Header.Get("Content-Type")
		if !strings.HasPrefix(ct, "application/x-www-form-urlencoded") && !strings.HasPrefix(ct, "multipart/") {
			b, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			return strings.TrimSpace(string(b))
		}
	}
	return ""
}

// intParam parses an integer query parameter, returning def when absent.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.FormValue(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return n, nil
}

// handleQuery runs one query and streams the result. Parameters:
//
//	q         the query text (or the POST body)
//	corpus    fan the query out across this corpus (optional)
//	format    ndjson (default) or xml
//	parallel  shard/loop workers for this query (clamped to -max-parallel)
//	chunk     stream chunk size — the per-query memory budget knob,
//	          clamped to the server's -chunk ceiling
//	cache     cache=1 serves a corpus query from the engine's result cache
//	          (materialised; hits skip execution entirely)
//
// Results stream as they are produced: NDJSON emits one {"xml":...} object
// per item and a trailing {"done":true,"rows":N} (or {"error":...}) record;
// XML wraps the items in a <results> element. The response status is
// committed before execution finishes, so mid-stream failures surface in
// the stream's trailer, not the status code.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := queryText(r)
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing query: pass q= or a POST body")
		return
	}
	corpus := r.FormValue("corpus")
	format := r.FormValue("format")
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "xml" {
		writeError(w, http.StatusBadRequest, "unknown format %q (want ndjson or xml)", format)
		return
	}
	parallel, err := intParam(r, "parallel", s.cfg.DefaultParallel)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	parallel = min(parallel, s.cfg.MaxParallel)
	chunk, err := intParam(r, "chunk", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if chunk <= 0 {
		chunk = 1024
	}
	chunk = min(chunk, s.cfg.MaxChunk)
	useCache := r.FormValue("cache") == "1"
	if useCache && corpus == "" {
		writeError(w, http.StatusBadRequest, "cache=1 applies to corpus queries only")
		return
	}

	release, ok := s.admit(r)
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "query capacity exhausted, retry later")
		return
	}
	defer release()

	cfg := soxq.Config{Parallelism: parallel, StreamChunk: chunk}
	if useCache {
		res, err := s.eng.QueryCorpus(q, corpus, cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.writeResult(w, r, format, res)
		return
	}
	var cur *soxq.Cursor
	if corpus != "" {
		cur, err = s.eng.StreamQueryCorpus(q, corpus, cfg)
	} else {
		cur, err = s.eng.StreamQuery(q, cfg)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cur.Close()
	s.writeStream(w, r, format, cur)
}

// flushEvery is how many rows a streamed response buffers before an explicit
// flush — frequent enough that a slowly-produced stream reaches the client
// incrementally, rare enough not to defeat response buffering.
const flushEvery = 64

type ndjsonRow struct {
	XML string `json:"xml"`
}

type ndjsonTrailer struct {
	Done  bool   `json:"done,omitempty"`
	Rows  int    `json:"rows"`
	Error string `json:"error,omitempty"`
}

// writeStream drains the cursor into the response. Client disconnects are
// detected through the request context and write failures; either way the
// drain stops and the deferred Close in the caller tears the pipeline down.
func (s *server) writeStream(w http.ResponseWriter, r *http.Request, format string, cur *soxq.Cursor) {
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	enc := json.NewEncoder(w)
	xmlOut := format == "xml"
	if xmlOut {
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		if _, err := io.WriteString(w, "<results>\n"); err != nil {
			return
		}
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	rows := 0
	for cur.Next() {
		if ctx.Err() != nil {
			return
		}
		var err error
		if xmlOut {
			_, err = io.WriteString(w, cur.Value().XML()+"\n")
		} else {
			err = enc.Encode(ndjsonRow{XML: cur.Value().XML()})
		}
		if err != nil {
			return // client gone; nothing sensible left to write
		}
		rows++
		if rows%flushEvery == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if err := cur.Err(); err != nil {
		if xmlOut {
			var b strings.Builder
			xml.EscapeText(&b, []byte(err.Error()))
			fmt.Fprintf(w, "<error>%s</error>\n</results>\n", b.String())
		} else {
			enc.Encode(ndjsonTrailer{Rows: rows, Error: err.Error()})
		}
		return
	}
	if xmlOut {
		io.WriteString(w, "</results>\n")
	} else {
		enc.Encode(ndjsonTrailer{Done: true, Rows: rows})
	}
}

// writeResult writes a materialised (cached) result in the same wire formats
// as writeStream, so clients need not care which path served them.
func (s *server) writeResult(w http.ResponseWriter, r *http.Request, format string, res *soxq.Result) {
	if format == "xml" {
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		io.WriteString(w, "<results>\n")
		for i := 0; i < res.Len(); i++ {
			if _, err := io.WriteString(w, res.Value(i).XML()+"\n"); err != nil {
				return
			}
		}
		io.WriteString(w, "</results>\n")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := 0; i < res.Len(); i++ {
		if err := enc.Encode(ndjsonRow{XML: res.Value(i).XML()}); err != nil {
			return
		}
	}
	enc.Encode(ndjsonTrailer{Done: true, Rows: res.Len()})
}

// Command soxqd is the soxq corpus server: a long-running process that
// holds a catalog of stand-off annotated documents and named corpora and
// serves streamed XQuery over HTTP.
//
//	soxqd -addr :8080 \
//	      -doc a.xml=testdata/a.xml -doc b.xml=testdata/b.xml \
//	      -corpus news=a.xml,b.xml
//
// The HTTP surface (see docs/SERVER.md for the full reference):
//
//	GET  /catalog                         the catalog: generation, documents, corpora
//	PUT  /documents/{name}                load the XML request body as a document
//	DELETE /documents/{name}              unload a document
//	POST /documents/{name}/annotations    insert or delete an annotation
//	PUT  /corpora/{name}                  define a corpus over loaded documents
//	DELETE /corpora/{name}                drop a corpus definition
//	GET|POST /query                       run a query, results streamed
//	GET  /healthz                         liveness + admission counters
//	GET  /metrics, /debug/...             the engine's ops surface
//
// Queries stream: results are written as NDJSON rows (or a chunked XML
// document with format=xml) while the cursor pipeline produces them, so a
// result of millions of items never materialises server-side. A corpus
// query fans out one shard per member document — in parallel when the
// request (or -parallel) asks for it — and merges shard streams back in
// corpus order. Admission control bounds concurrent queries at -max-queries
// with a -queue-timeout wait; the per-query stream chunk (the memory
// budget) is clamped to -chunk.
//
// Shutdown is graceful: SIGINT/SIGTERM stops the listener immediately and
// gives in-flight streams -drain to finish before force-closing them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soxq"
	"soxq/internal/blob"
	"soxq/internal/httpserve"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var docs, blobs, declares, corpora repeated
	addr := flag.String("addr", ":8080", "listen address")
	flag.Var(&docs, "doc", "load a document at startup: name=path (repeatable)")
	flag.Var(&blobs, "blob", "attach a BLOB to a document: name=path (repeatable)")
	flag.Var(&declares, "declare", "engine-wide stand-off option: option=value (repeatable)")
	flag.Var(&corpora, "corpus", "define a corpus at startup: name=member,member,... (repeatable)")
	maxQueries := flag.Int("max-queries", 16, "queries allowed to run concurrently; more wait, then get 503")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "how long an over-limit query waits for a slot before 503")
	maxChunk := flag.Int("chunk", 4096, "ceiling for a query's stream chunk size (the per-query memory budget)")
	maxParallel := flag.Int("max-parallel", 64, "ceiling for a query's parallel worker count")
	parallel := flag.Int("parallel", 0, "default shard/loop parallelism for queries that do not pass parallel=")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown grace for in-flight streams")
	flag.Parse()

	eng := soxq.New()
	for _, d := range declares {
		opt, val, ok := strings.Cut(d, "=")
		if !ok {
			fatal("-declare wants option=value, got %q", d)
		}
		fatalIf(eng.Declare(opt, val))
	}
	for _, spec := range docs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("-doc wants name=path, got %q", spec)
		}
		fatalIf(eng.LoadXMLFile(name, path))
	}
	for _, spec := range blobs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("-blob wants name=path, got %q", spec)
		}
		store, err := blob.OpenFile(path)
		fatalIf(err)
		defer store.Close()
		eng.SetBlob(name, store)
	}
	for _, spec := range corpora {
		name, members, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("-corpus wants name=member,member,..., got %q", spec)
		}
		fatalIf(eng.CreateCorpus(name, strings.Split(members, ",")...))
	}

	srv := newServer(eng, serverConfig{
		MaxQueries:      *maxQueries,
		QueueTimeout:    *queueTimeout,
		MaxChunk:        *maxChunk,
		MaxParallel:     *maxParallel,
		DefaultParallel: *parallel,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "soxqd: serving %d documents, %d corpora on %s (interrupt to stop)\n",
		len(eng.Documents()), len(eng.Corpora()), *addr)
	// WriteTimeout stays 0: query streams legitimately run as long as the
	// client keeps reading; abandonment is detected per-row via the request
	// context instead of a wall clock.
	fatalIf(httpserve.ListenAndServe(ctx, *addr, srv.handler(), httpserve.Options{
		ShutdownGrace: *drain,
	}))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "soxqd: "+format+"\n", args...)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

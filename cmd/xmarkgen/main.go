// Command xmarkgen generates XMark auction documents and their stand-off
// conversions (document + BLOB), the workload of the paper's section 4.6:
//
//	xmarkgen -scale 0.1 -o xmark11MB.xml
//	xmarkgen -scale 0.1 -standoff -o xmark11MB.xml
//
// With -standoff, three files are written: the plain document (-o), the
// stand-off document (<o>.standoff.xml) and the BLOB (<o>.blob).
package main

import (
	"flag"
	"fmt"
	"os"

	"soxq/internal/xmark"
	"soxq/internal/xmlparse"
)

func main() {
	scale := flag.Float64("scale", 0.1, "XMark scale factor (1.0 = the paper's 110MB document)")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "xmark.xml", "output file")
	standoff := flag.Bool("standoff", false, "also write the stand-off conversion and BLOB")
	permute := flag.Bool("permute", true, "permute record elements in the stand-off document (section 4.6)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	logf("generating XMark at scale %g (seed %d)...", *scale, *seed)
	f, err := os.Create(*out)
	fatalIf(err)
	err = xmark.Generate(f, xmark.Config{Scale: *scale, Seed: *seed})
	fatalIf(err)
	fatalIf(f.Close())
	st, _ := os.Stat(*out)
	logf("wrote %s (%.1f MB)", *out, float64(st.Size())/(1<<20))

	if !*standoff {
		return
	}
	logf("converting to stand-off form...")
	doc, err := xmlparse.ParseFile(*out)
	fatalIf(err)
	cfg := xmark.DefaultStandOffConfig()
	cfg.Permute = *permute
	cfg.Seed = *seed
	res, err := xmark.StandOffize(doc, cfg)
	fatalIf(err)
	soName := *out + ".standoff.xml"
	blobName := *out + ".blob"
	fatalIf(os.WriteFile(soName, res.XML, 0o644))
	fatalIf(os.WriteFile(blobName, res.Blob, 0o644))
	logf("wrote %s (%.1f MB) and %s (%.1f MB)", soName,
		float64(len(res.XML))/(1<<20), blobName, float64(len(res.Blob))/(1<<20))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
}
